/// Tests for the experiment harness: suite construction, the run matrix,
/// aborted accounting, scatter pairing, and the PBO engine used by the
/// "pbo" table column.

#include <gtest/gtest.h>

#include <sstream>

#include "cnf/oracle.h"
#include "gen/random_cnf.h"
#include "harness/factory.h"
#include "harness/runner.h"
#include "harness/suite.h"
#include "harness/tables.h"
#include "pbo/maxsat_pbo.h"
#include "pbo/pbo_solver.h"

namespace msu {
namespace {

TEST(Suite, MixedSuiteFamiliesAndDeterminism) {
  SuiteParams p;
  p.perFamily = 2;
  p.sizeScale = 0.3;
  const std::vector<Instance> a = buildMixedSuite(p);
  const std::vector<Instance> b = buildMixedSuite(p);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_GE(a.size(), 8u);  // 4 families x 2 + php
  std::set<std::string> families;
  for (std::size_t i = 0; i < a.size(); ++i) {
    families.insert(a[i].family);
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].wcnf.numSoft(), b[i].wcnf.numSoft());
    EXPECT_GT(a[i].wcnf.numSoft() + a[i].wcnf.numHard(), 0);
  }
  EXPECT_TRUE(families.contains("equivalence"));
  EXPECT_TRUE(families.contains("bmc"));
  EXPECT_TRUE(families.contains("debug"));
  EXPECT_TRUE(families.contains("random"));
  EXPECT_TRUE(families.contains("php"));
}

TEST(Suite, DebugSuiteIsPlainMaxSat) {
  SuiteParams p;
  p.perFamily = 3;
  p.sizeScale = 0.3;
  const std::vector<Instance> suite = buildDebugSuite(p);
  ASSERT_GE(suite.size(), 3u);
  for (const Instance& inst : suite) {
    EXPECT_EQ(inst.family, "debug");
    EXPECT_EQ(inst.wcnf.numHard(), 0);  // plain MaxSAT, as in Table 2
  }
}

TEST(Runner, RecordsAndCrossCheck) {
  // Tiny suite, two engines that must agree.
  std::vector<Instance> suite;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    suite.push_back(Instance{
        "rnd-" + std::to_string(seed), "random",
        WcnfFormula::allSoft(randomKSat({.numVars = 10, .numClauses = 50,
                                         .clauseLen = 3, .seed = seed}))});
  }
  RunConfig config;
  config.timeoutSeconds = 5.0;
  const std::vector<std::string> solvers{"msu4-v2", "maxsatz"};
  const std::vector<RunRecord> records = runMatrix(solvers, suite, config);
  ASSERT_EQ(records.size(), 6u);
  for (const RunRecord& r : records) {
    EXPECT_FALSE(r.aborted) << r.solver << " on " << r.instance;
    EXPECT_EQ(r.status, MaxSatStatus::Optimum);
    EXPECT_GE(r.seconds, 0.0);
  }
  std::ostringstream diag;
  EXPECT_EQ(crossCheckOptima(records, diag), 0) << diag.str();
}

TEST(Runner, AbortedAccountingUnderTinyBudget) {
  std::vector<Instance> suite;
  suite.push_back(Instance{
      "php-9-8", "php",
      WcnfFormula::allSoft(
          randomKSat({.numVars = 60, .numClauses = 500, .clauseLen = 3,
                      .seed = 3}))});
  RunConfig config;
  config.timeoutSeconds = 0.01;
  const std::vector<std::string> solvers{"maxsatz"};
  const std::vector<RunRecord> records = runSolver("maxsatz", suite, config);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(records[0].aborted);
}

TEST(Tables, ScatterPairingAndCsv) {
  std::vector<RunRecord> records;
  auto add = [&](std::string solver, std::string inst, double t, bool ab) {
    RunRecord r;
    r.solver = std::move(solver);
    r.instance = std::move(inst);
    r.family = "f";
    r.seconds = t;
    r.aborted = ab;
    r.status = ab ? MaxSatStatus::Unknown : MaxSatStatus::Optimum;
    records.push_back(std::move(r));
  };
  add("a", "i1", 0.5, false);
  add("a", "i2", 1.0, true);
  add("b", "i1", 0.1, false);
  add("b", "i2", 0.2, false);
  add("b", "i3", 0.2, false);  // unmatched: no record for "a"

  const std::vector<ScatterPoint> pts = makeScatter(records, "b", "a");
  ASSERT_EQ(pts.size(), 2u);

  std::ostringstream csv;
  writeScatterCsv(csv, pts, "b", "a");
  EXPECT_NE(csv.str().find("instance,family,b_seconds,a_seconds"),
            std::string::npos);
  EXPECT_NE(csv.str().find("i1"), std::string::npos);

  std::ostringstream summary;
  printScatterSummary(summary, pts, "b", "a");
  EXPECT_NE(summary.str().find("aborted=1"), std::string::npos);
}

TEST(Tables, AbortedTableFormat) {
  std::vector<RunRecord> records;
  RunRecord r;
  r.solver = "solverx";
  r.instance = "i";
  r.family = "f";
  r.aborted = true;
  r.status = MaxSatStatus::Unknown;
  records.push_back(r);
  std::ostringstream out;
  const std::vector<std::string> order{"solverx"};
  printAbortedTable(out, records, order, "T");
  EXPECT_NE(out.str().find("solverx"), std::string::npos);
  EXPECT_NE(out.str().find("1"), std::string::npos);
}

// ---- PBO engine ----------------------------------------------------------

TEST(Pbo, TranslationShape) {
  WcnfFormula w(2);
  w.addHard({posLit(0)});
  w.addSoft({posLit(1)}, 2);
  w.addSoft({negLit(1)}, 1);
  const PboProblem p = PboMaxSatSolver::toPbo(w);
  EXPECT_EQ(p.numVars, 4);  // 2 original + 2 blocking
  ASSERT_EQ(p.clauses.size(), 3u);
  EXPECT_EQ(p.clauses[0].size(), 1u);   // hard unchanged
  EXPECT_EQ(p.clauses[1].size(), 2u);   // soft + blocking var
  ASSERT_EQ(p.objective.size(), 2u);
  EXPECT_EQ(p.objective[0].coeff, 2);
  EXPECT_EQ(p.objective[1].coeff, 1);
}

TEST(Pbo, SolvesWeightedObjective) {
  // minimize 2*b0 + b1 subject to (b0 | b1).
  PboProblem p;
  p.numVars = 2;
  p.clauses.push_back(Clause{posLit(0), posLit(1)});
  p.objective = {PbTerm{posLit(0), 2}, PbTerm{posLit(1), 1}};
  PboSolver solver;
  const PboResult r = solver.solve(p);
  ASSERT_EQ(r.status, PboStatus::Optimum);
  EXPECT_EQ(r.objective, 1);
  EXPECT_EQ(r.model[1], lbool::True);
}

TEST(Pbo, InfeasibleDetected) {
  PboProblem p;
  p.numVars = 1;
  p.clauses.push_back(Clause{posLit(0)});
  p.clauses.push_back(Clause{negLit(0)});
  p.objective = {PbTerm{posLit(0), 1}};
  PboSolver solver;
  EXPECT_EQ(solver.solve(p).status, PboStatus::Infeasible);
}

TEST(Pbo, RespectsPbConstraints) {
  // minimize b0 subject to b0 + b1 + b2 >= 2 encoded as
  // (-1)*... : use sum(~b) <= 1  ==  sum(b) >= 2.
  PboProblem p;
  p.numVars = 3;
  PbConstraint pc;
  pc.terms = {PbTerm{negLit(0), 1}, PbTerm{negLit(1), 1},
              PbTerm{negLit(2), 1}};
  pc.bound = 1;
  p.constraints.push_back(pc);
  p.objective = {PbTerm{posLit(0), 1}, PbTerm{posLit(1), 1},
                 PbTerm{posLit(2), 1}};
  PboSolver solver;
  const PboResult r = solver.solve(p);
  ASSERT_EQ(r.status, PboStatus::Optimum);
  EXPECT_EQ(r.objective, 2);
}

TEST(Pbo, AdderEncodingAgrees) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const WcnfFormula w = WcnfFormula::allSoft(randomKSat(
        {.numVars = 8, .numClauses = 40, .clauseLen = 3, .seed = seed * 5}));
    const OracleResult truth = oracleMaxSat(w);
    PboMaxSatOptions o;
    o.encoding = PbEncoding::Adder;
    PboMaxSatSolver solver(o);
    const MaxSatResult r = solver.solve(w);
    ASSERT_EQ(r.status, MaxSatStatus::Optimum);
    EXPECT_EQ(r.cost, *truth.optimumCost) << "seed " << seed;
  }
}

TEST(WeightedSuiteTest, DeterministicStructuredAndWeighted) {
  SuiteParams sp;
  sp.perFamily = 3;
  const std::vector<Instance> a = buildWeightedSuite(sp);
  const std::vector<Instance> b = buildWeightedSuite(sp);
  ASSERT_EQ(a.size(), 9u);  // three families x perFamily
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].wcnf.numVars(), b[i].wcnf.numVars());
    EXPECT_EQ(a[i].wcnf.numSoft(), b[i].wcnf.numSoft());
  }
  bool sawWeighted = false;
  bool sawHard = false;
  for (const Instance& inst : a) {
    sawWeighted = sawWeighted || !inst.wcnf.isUnweighted();
    sawHard = sawHard || inst.wcnf.numHard() > 0;
    EXPECT_GT(inst.wcnf.numSoft(), 0) << inst.name;
  }
  EXPECT_TRUE(sawWeighted);
  EXPECT_TRUE(sawHard);
}

TEST(WeightedSuiteTest, EveryInstanceSolvableByOll) {
  SuiteParams sp;
  sp.perFamily = 2;
  sp.sizeScale = 0.5;
  for (const Instance& inst : buildWeightedSuite(sp)) {
    auto solver = makeSolver("oll");
    const MaxSatResult r = solver->solve(inst.wcnf);
    EXPECT_TRUE(r.status == MaxSatStatus::Optimum ||
                r.status == MaxSatStatus::UnsatisfiableHard)
        << inst.name;
    if (r.status == MaxSatStatus::Optimum) {
      const std::optional<Weight> c = inst.wcnf.cost(r.model);
      ASSERT_TRUE(c.has_value()) << inst.name;
      EXPECT_EQ(*c, r.cost) << inst.name;
    }
  }
}

}  // namespace
}  // namespace msu
