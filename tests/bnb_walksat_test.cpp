/// Tests for the branch-and-bound (maxsatz-like) engine and the WalkSAT
/// local search: oracle agreement, bound validity, budget behaviour and
/// the incompleteness contract of local search.

#include <gtest/gtest.h>

#include "bnb/bnb_solver.h"
#include "cnf/oracle.h"
#include "gen/pigeonhole.h"
#include "gen/random_cnf.h"
#include "localsearch/walksat.h"

namespace msu {
namespace {

WcnfFormula randomPlain(int n, int m, std::uint64_t seed) {
  return WcnfFormula::allSoft(
      randomKSat({.numVars = n, .numClauses = m, .clauseLen = 3,
                  .seed = seed}));
}

TEST(Bnb, AgreesWithOracleOnRandomInstances) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    const WcnfFormula w = randomPlain(9, 42, seed * 367);
    const OracleResult truth = oracleMaxSat(w);
    BnbSolver solver;
    const MaxSatResult r = solver.solve(w);
    ASSERT_EQ(r.status, MaxSatStatus::Optimum) << "seed " << seed;
    EXPECT_EQ(r.cost, *truth.optimumCost) << "seed " << seed;
    const auto modelCost = w.cost(r.model);
    ASSERT_TRUE(modelCost.has_value());
    EXPECT_EQ(*modelCost, r.cost);
  }
}

TEST(Bnb, WithoutUpBoundStillCorrect) {
  BnbOptions o;
  o.upLowerBound = false;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const WcnfFormula w = randomPlain(8, 36, seed * 569);
    const OracleResult truth = oracleMaxSat(w);
    BnbSolver solver(o);
    const MaxSatResult r = solver.solve(w);
    ASSERT_EQ(r.status, MaxSatStatus::Optimum);
    EXPECT_EQ(r.cost, *truth.optimumCost) << "seed " << seed;
  }
}

TEST(Bnb, WithoutWalksatSeedStillCorrect) {
  BnbOptions o;
  o.walksatInitialUb = false;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const WcnfFormula w = randomPlain(8, 36, seed * 1013);
    const OracleResult truth = oracleMaxSat(w);
    BnbSolver solver(o);
    const MaxSatResult r = solver.solve(w);
    ASSERT_EQ(r.status, MaxSatStatus::Optimum);
    EXPECT_EQ(r.cost, *truth.optimumCost) << "seed " << seed;
  }
}

TEST(Bnb, PartialMaxSatWithHardClauses) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    // Build a partial instance with a satisfiable hard part.
    const CnfFormula f = randomKSat(
        {.numVars = 8, .numClauses = 30, .clauseLen = 3, .seed = seed * 89});
    WcnfFormula w(f.numVars());
    CnfFormula hardPart(f.numVars());
    for (int i = 0; i < f.numClauses(); ++i) {
      if (i < 5) {
        hardPart.addClause(f.clause(i));
        if (oracleSat(hardPart)) {
          w.addHard(f.clause(i));
          continue;
        }
      }
      w.addSoft(f.clause(i), 1);
    }
    const OracleResult truth = oracleMaxSat(w);
    ASSERT_TRUE(truth.optimumCost.has_value());
    BnbSolver solver;
    const MaxSatResult r = solver.solve(w);
    ASSERT_EQ(r.status, MaxSatStatus::Optimum);
    EXPECT_EQ(r.cost, *truth.optimumCost) << "seed " << seed;
  }
}

TEST(Bnb, HardUnsatDetected) {
  WcnfFormula w(1);
  w.addHard({posLit(0)});
  w.addHard({negLit(0)});
  w.addSoft({posLit(0)}, 1);
  BnbSolver solver;
  EXPECT_EQ(solver.solve(w).status, MaxSatStatus::UnsatisfiableHard);
}

TEST(Bnb, NodeBudgetAborts) {
  BnbOptions o;
  o.budget.setMaxNodes(50);
  o.walksatInitialUb = false;
  BnbSolver solver(o);
  const WcnfFormula w = WcnfFormula::allSoft(pigeonhole(8, 7));
  const MaxSatResult r = solver.solve(w);
  EXPECT_EQ(r.status, MaxSatStatus::Unknown);
  EXPECT_LE(r.lowerBound, r.upperBound);
}

TEST(Bnb, UpLowerBoundNeverOverestimates) {
  // With a fresh (large) upper bound, the UP-based lower bound must not
  // exceed the true optimum — otherwise optima would be pruned away.
  for (std::uint64_t seed = 100; seed <= 110; ++seed) {
    const WcnfFormula w = randomPlain(8, 44, seed);
    const OracleResult truth = oracleMaxSat(w);
    BnbSolver solver;
    const MaxSatResult r = solver.solve(w);
    ASSERT_EQ(r.status, MaxSatStatus::Optimum);
    EXPECT_EQ(r.cost, *truth.optimumCost)
        << "seed " << seed << " (lower bound unsound?)";
  }
}

TEST(WalkSat, FindsSatisfyingAssignmentWhenEasy) {
  // A satisfiable, under-constrained instance: local search should reach
  // cost 0 almost surely.
  const CnfFormula f = randomKSat(
      {.numVars = 30, .numClauses = 60, .clauseLen = 3, .seed = 5});
  const WalkSatResult r = walksatMaxSat(WcnfFormula::allSoft(f));
  ASSERT_TRUE(r.hardFeasible);
  EXPECT_EQ(r.bestCost, 0);
  EXPECT_TRUE(f.satisfies(r.model));
}

TEST(WalkSat, CostIsUpperBoundOnOptimum) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const WcnfFormula w = randomPlain(9, 45, seed * 47);
    const OracleResult truth = oracleMaxSat(w);
    const WalkSatResult r = walksatMaxSat(w);
    ASSERT_TRUE(r.hardFeasible);
    EXPECT_GE(r.bestCost, *truth.optimumCost) << "seed " << seed;
    const auto modelCost = w.cost(r.model);
    ASSERT_TRUE(modelCost.has_value());
    EXPECT_EQ(*modelCost, r.bestCost) << "seed " << seed;
  }
}

TEST(WalkSat, RespectsHardClauses) {
  WcnfFormula w(3);
  w.addHard({posLit(0)});
  w.addHard({negLit(0), posLit(1)});
  w.addSoft({negLit(1)}, 1);  // conflicts with the hards
  w.addSoft({posLit(2)}, 1);
  const WalkSatResult r = walksatMaxSat(w);
  ASSERT_TRUE(r.hardFeasible);
  EXPECT_EQ(r.bestCost, 1);
  EXPECT_EQ(r.model[0], lbool::True);
  EXPECT_EQ(r.model[1], lbool::True);
}

TEST(WalkSat, HardUnsatNeverFeasible) {
  WcnfFormula w(1);
  w.addHard({posLit(0)});
  w.addHard({negLit(0)});
  WalkSatOptions o;
  o.maxFlips = 2000;
  const WalkSatResult r = walksatMaxSat(w, o);
  EXPECT_FALSE(r.hardFeasible);
}

TEST(WalkSat, EmptySoftClausesCounted) {
  WcnfFormula w(1);
  w.addSoft(std::initializer_list<Lit>{}, 2);
  w.addSoft({posLit(0)}, 1);
  const WalkSatResult r = walksatMaxSat(w);
  ASSERT_TRUE(r.hardFeasible);
  EXPECT_EQ(r.bestCost, 2);
}

TEST(WalkSat, DeterministicForFixedSeed) {
  const WcnfFormula w = randomPlain(12, 60, 77);
  WalkSatOptions o;
  o.seed = 123;
  o.maxFlips = 5000;
  const WalkSatResult a = walksatMaxSat(w, o);
  const WalkSatResult b = walksatMaxSat(w, o);
  EXPECT_EQ(a.bestCost, b.bestCost);
  EXPECT_EQ(a.flips, b.flips);
}

}  // namespace
}  // namespace msu
