/// Tests for the zero-copy parser core (cnf/fastparse.h): differential
/// fuzz against the legacy istream tokenizers across all three formats,
/// the adversarial inputs the legacy leading-'c' heuristic got wrong,
/// competition conventions ('%' terminator, CRLF, malformed headers),
/// mmap-vs-fallback equivalence, and the direct buffer-to-solver bulk
/// loader.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>

#include "cnf/dimacs.h"
#include "cnf/fastparse.h"
#include "cnf/formula.h"
#include "cnf/wcnf.h"
#include "gen/bigfile.h"
#include "gen/random_cnf.h"
#include "pbo/opb.h"
#include "sat/solver.h"

namespace msu {
namespace {

void expectSameCnf(const CnfFormula& a, const CnfFormula& b) {
  ASSERT_EQ(a.numVars(), b.numVars());
  ASSERT_EQ(a.numClauses(), b.numClauses());
  for (int i = 0; i < a.numClauses(); ++i) {
    EXPECT_EQ(a.clause(i), b.clause(i)) << "clause " << i;
  }
}

void expectSameWcnf(const WcnfFormula& a, const WcnfFormula& b) {
  ASSERT_EQ(a.numVars(), b.numVars());
  ASSERT_EQ(a.numHard(), b.numHard());
  ASSERT_EQ(a.numSoft(), b.numSoft());
  for (int i = 0; i < a.numHard(); ++i) {
    EXPECT_EQ(a.hard()[i], b.hard()[i]) << "hard " << i;
  }
  for (int i = 0; i < a.numSoft(); ++i) {
    EXPECT_EQ(a.soft()[i].lits, b.soft()[i].lits) << "soft " << i;
    EXPECT_EQ(a.soft()[i].weight, b.soft()[i].weight) << "soft " << i;
  }
}

void expectSamePbo(const PboProblem& a, const PboProblem& b) {
  ASSERT_EQ(a.numVars, b.numVars);
  ASSERT_EQ(a.clauses.size(), b.clauses.size());
  ASSERT_EQ(a.constraints.size(), b.constraints.size());
  ASSERT_EQ(a.objective.size(), b.objective.size());
  EXPECT_EQ(a.objectiveOffset, b.objectiveOffset);
  for (std::size_t i = 0; i < a.objective.size(); ++i) {
    EXPECT_EQ(a.objective[i].coeff, b.objective[i].coeff);
    EXPECT_EQ(a.objective[i].lit, b.objective[i].lit);
  }
  for (std::size_t i = 0; i < a.constraints.size(); ++i) {
    ASSERT_EQ(a.constraints[i].terms.size(), b.constraints[i].terms.size());
    EXPECT_EQ(a.constraints[i].bound, b.constraints[i].bound);
    for (std::size_t j = 0; j < a.constraints[i].terms.size(); ++j) {
      EXPECT_EQ(a.constraints[i].terms[j].coeff,
                b.constraints[i].terms[j].coeff);
      EXPECT_EQ(a.constraints[i].terms[j].lit, b.constraints[i].terms[j].lit);
    }
  }
}

// ---- Differential fuzz vs the legacy tokenizers --------------------------

TEST(FastParse, CnfRoundTripFuzzMatchesLegacy) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    RandomCnfParams p;
    p.numVars = 5 + static_cast<int>(seed) * 3;
    p.numClauses = 20 + static_cast<int>(seed) * 17;
    p.seed = seed;
    const CnfFormula f = randomKSat(p);
    const std::string text = toDimacsString(f);
    std::istringstream in(text);
    const CnfFormula viaLegacy = readDimacsCnfLegacy(in);
    const CnfFormula viaFast = parseDimacsCnf(text);
    expectSameCnf(viaLegacy, viaFast);
    expectSameCnf(f, viaFast);
  }
}

TEST(FastParse, WcnfRoundTripFuzzMatchesLegacy) {
  std::mt19937_64 rng(7);
  for (int round = 0; round < 10; ++round) {
    WcnfFormula w(8 + round);
    const int clauses = 25 + round * 13;
    for (int i = 0; i < clauses; ++i) {
      Clause c;
      const int len = 1 + static_cast<int>(rng() % 4);
      for (int k = 0; k < len; ++k) {
        const Var v = static_cast<Var>(rng() % static_cast<unsigned>(
                                                   w.numVars()));
        c.push_back((rng() & 1) != 0 ? posLit(v) : negLit(v));
      }
      if (rng() % 3 == 0) {
        w.addHard(c);
      } else {
        w.addSoft(c, 1 + static_cast<Weight>(rng() % 9));
      }
    }
    std::ostringstream os;
    writeDimacsWcnf(os, w);
    const std::string text = os.str();
    std::istringstream in(text);
    const WcnfFormula viaLegacy = readDimacsWcnfLegacy(in);
    const WcnfFormula viaFast = parseDimacsWcnf(text);
    expectSameWcnf(viaLegacy, viaFast);
  }
}

TEST(FastParse, OpbFuzzMatchesLegacy) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    BigFileParams p;
    p.target_bytes = 4000;
    p.vars = 40;
    p.seed = seed;
    const std::string text = makeBigOpbText(p);
    std::istringstream in(text);
    expectSamePbo(readOpbLegacy(in), parseOpb(text));
  }
}

// ---- Line-anchored comments (the legacy heuristic's failure modes) -------

TEST(FastParse, CommentOnlyAtLineStart) {
  // A full comment line between clauses is skipped...
  const CnfFormula ok = parseDimacsCnf(
      "c header comment\np cnf 3 2\n1 -2 0\nc interlude, even c-words\n2 3 "
      "0\n");
  EXPECT_EQ(ok.numClauses(), 2);
  // ...but a stray word inside a clause is an error, never a comment.
  EXPECT_THROW(parseDimacsCnf("p cnf 3 1\n1 cat 0\n"), DimacsError);
  // The legacy tokenizer silently ate "cat ... 0" as a comment-to-EOL —
  // the fragile heuristic this parser fixes. Pin the old behaviour so
  // the difference stays documented.
  std::istringstream in("p cnf 3 1\n1 cat 0\n2 0\n");
  const CnfFormula legacy = readDimacsCnfLegacy(in);
  EXPECT_EQ(legacy.numClauses(), 1);  // "1 ... 2 0" fused into one clause
  EXPECT_EQ(legacy.clause(0), (Clause{posLit(0), posLit(1)}));
}

TEST(FastParse, PercentTerminatorEndsInput) {
  // SAT-competition trailer: "%" line, then junk that must be ignored.
  const CnfFormula f = parseDimacsCnf("p cnf 2 1\n1 -2 0\n%\n0\n");
  EXPECT_EQ(f.numClauses(), 1);
  // Mid-token '%' is not a terminator (only line-anchored).
  EXPECT_THROW(parseDimacsCnf("p cnf 2 1\n1 %x 0\n"), DimacsError);
}

TEST(FastParse, CrlfAndBlankLines) {
  const CnfFormula f =
      parseDimacsCnf("c win\r\np cnf 3 2\r\n\r\n1 2 0\r\n-1 -3 0\r\n");
  EXPECT_EQ(f.numVars(), 3);
  EXPECT_EQ(f.numClauses(), 2);
  EXPECT_EQ(f.clause(0), (Clause{posLit(0), posLit(1)}));
}

// ---- Headers -------------------------------------------------------------

TEST(FastParse, HeaderErrors) {
  EXPECT_THROW(parseDimacsCnf(""), DimacsError);
  EXPECT_THROW(parseDimacsCnf("c only comments\n"), DimacsError);
  EXPECT_THROW(parseDimacsCnf("1 2 0\n"), DimacsError);        // missing p
  EXPECT_THROW(parseDimacsCnf("p cnf 3\n1 0\n"), DimacsError);  // short
  EXPECT_THROW(parseDimacsCnf("p cnf 3 1 9\n1 0\n"), DimacsError);  // long
  EXPECT_THROW(parseDimacsCnf("p dnf 3 1\n1 0\n"), DimacsError);
  EXPECT_THROW(parseDimacsCnf("p cnf -3 1\n1 0\n"), DimacsError);
  EXPECT_THROW(parseDimacsCnf("p wcnf 2 1 5\n5 1 0\n"), DimacsError);
}

TEST(FastParse, LiteralRangeAndOverflow) {
  EXPECT_THROW(parseDimacsCnf("p cnf 2 1\n3 0\n"), DimacsError);
  EXPECT_THROW(parseDimacsCnf("p cnf 2 1\n-3 0\n"), DimacsError);
  // 10+ digits take the slow re-parse path; still range-checked.
  EXPECT_THROW(parseDimacsCnf("p cnf 2 1\n1000000000 0\n"), DimacsError);
  // 20 digits overflow int64 outright.
  EXPECT_THROW(parseDimacsCnf("p cnf 2 1\n99999999999999999999 0\n"),
               DimacsError);
  EXPECT_THROW(parseDimacsCnf("p cnf 2 1\n1 2\n"), DimacsError);  // no 0
  EXPECT_THROW(parseDimacsCnf("p cnf 2 1\n- 1 0\n"), DimacsError);
}

// ---- WCNF formats --------------------------------------------------------

TEST(FastParse, WcnfOldFormatSplitsOnTop) {
  const WcnfFormula w =
      parseDimacsWcnf("p wcnf 3 3 10\n10 1 2 0\n4 -1 0\n1 3 0\n");
  EXPECT_EQ(w.numHard(), 1);
  EXPECT_EQ(w.numSoft(), 2);
  EXPECT_EQ(w.soft()[0].weight, 4);
}

TEST(FastParse, Wcnf2022HLineFormat) {
  const WcnfFormula w = parseDimacsWcnf(
      "c 2022 format\nh 1 2 0\n3 -1 0\nh -2 3 0\n1 -3 0\n");
  EXPECT_EQ(w.numHard(), 2);
  EXPECT_EQ(w.numSoft(), 2);
  EXPECT_EQ(w.soft()[0].weight, 3);
  EXPECT_EQ(w.soft()[1].weight, 1);
  EXPECT_THROW(parseDimacsWcnf("h 1 0\n0 2 0\n"), DimacsError);  // w == 0
}

TEST(FastParse, WcnfHugeTopTakesSlowWeightPath) {
  // 11-digit weights overflow the quick scanner's 9-digit fast path and
  // must fall back to readInt with identical values.
  const WcnfFormula w = parseDimacsWcnf(
      "p wcnf 2 2 99999999999\n99999999999 1 0\n12345678901 2 0\n");
  EXPECT_EQ(w.numHard(), 1);
  ASSERT_EQ(w.numSoft(), 1);
  EXPECT_EQ(w.soft()[0].weight, 12345678901ll);
}

// ---- InputBuffer: mmap, fallback, moves ----------------------------------

class TempFile {
 public:
  explicit TempFile(const std::string& text)
      : path_((std::filesystem::temp_directory_path() /
               ("fastparse_test_" + std::to_string(::getpid()) + "_" +
                std::to_string(counter_++)))
                  .string()) {
    std::ofstream out(path_, std::ios::binary);
    out.write(text.data(), static_cast<std::streamsize>(text.size()));
  }
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  static inline int counter_ = 0;
  std::string path_;
};

TEST(FastParse, MmapAndFallbackAgree) {
  BigFileParams p;
  p.target_bytes = 60000;
  p.vars = 120;
  const std::string text = makeBigCnfText(p);
  const TempFile file(text);

  const InputBuffer mapped = InputBuffer::fromFile(file.path());
  EXPECT_TRUE(mapped.mapped());
  std::ifstream in(file.path(), std::ios::binary);
  const InputBuffer slurped = InputBuffer::fromStream(in);
  EXPECT_FALSE(slurped.mapped());

  expectSameCnf(fastParseDimacsCnf(mapped), fastParseDimacsCnf(slurped));
  expectSameCnf(loadDimacsCnf(file.path()), parseDimacsCnf(text));
}

TEST(FastParse, InputBufferMoveKeepsSsoStringsValid) {
  // Small owned strings live in the SSO buffer, so a move relocates the
  // bytes; the view must be re-derived, not copied.
  InputBuffer a = InputBuffer::fromString("p cnf 1 1\n1 0\n");
  InputBuffer b = std::move(a);
  InputBuffer c;
  c = std::move(b);
  const CnfFormula f = fastParseDimacsCnf(c);
  EXPECT_EQ(f.numClauses(), 1);
}

TEST(FastParse, MissingFileThrows) {
  EXPECT_THROW(loadDimacsCnf("/nonexistent/definitely_missing.cnf"),
               DimacsError);
}

// ---- Direct buffer-to-solver bulk load -----------------------------------

TEST(FastParse, FastLoadIntoSolverMatchesFormulaLoad) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    // Ratio sweeps from satisfiable to over-constrained, so both solve
    // outcomes are exercised.
    RandomCnfParams p;
    p.numVars = 20;
    p.numClauses = 50 + static_cast<int>(seed) * 25;
    p.seed = seed;
    const CnfFormula f = randomKSat(p);
    const std::string text = toDimacsString(f);

    Solver viaFormula;
    while (viaFormula.numVars() < f.numVars()) {
      static_cast<void>(viaFormula.newVar());
    }
    bool okA = true;
    for (const Clause& c : f.clauses()) okA = okA && viaFormula.addClause(c);

    Solver direct;
    const bool okB = fastLoadDimacsCnfInto(
        InputBuffer::borrow(text.data(), text.size()), direct);

    EXPECT_EQ(direct.numVars(), viaFormula.numVars());
    EXPECT_EQ(viaFormula.okay(), okB);
    if (okA && okB) {
      EXPECT_EQ(viaFormula.solve(), direct.solve());
    }
  }
}

}  // namespace
}  // namespace msu
