/// Unit tests for the cnf module: literals, formulas, WCNF, DIMACS I/O
/// and the exhaustive oracle.

#include <gtest/gtest.h>

#include <sstream>

#include "cnf/dimacs.h"
#include "cnf/formula.h"
#include "cnf/literal.h"
#include "cnf/oracle.h"
#include "cnf/wcnf.h"

namespace msu {
namespace {

TEST(Literal, EncodingRoundTrip) {
  const Lit p = posLit(3);
  EXPECT_EQ(p.var(), 3);
  EXPECT_TRUE(p.positive());
  EXPECT_FALSE(p.negative());
  EXPECT_EQ(p.index(), 6);
  const Lit n = ~p;
  EXPECT_EQ(n.var(), 3);
  EXPECT_TRUE(n.negative());
  EXPECT_EQ(n.index(), 7);
  EXPECT_EQ(~n, p);
}

TEST(Literal, DimacsConversion) {
  EXPECT_EQ(Lit::fromDimacs(5), posLit(4));
  EXPECT_EQ(Lit::fromDimacs(-5), negLit(4));
  EXPECT_EQ(posLit(4).toDimacs(), 5);
  EXPECT_EQ(negLit(4).toDimacs(), -5);
}

TEST(Literal, UndefIsNotDefined) {
  EXPECT_FALSE(kUndefLit.defined());
  EXPECT_TRUE(posLit(0).defined());
}

TEST(Literal, Ordering) {
  EXPECT_LT(posLit(0), negLit(0));
  EXPECT_LT(negLit(0), posLit(1));
}

TEST(Lbool, NegationAndSign) {
  EXPECT_EQ(~lbool::True, lbool::False);
  EXPECT_EQ(~lbool::False, lbool::True);
  EXPECT_EQ(~lbool::Undef, lbool::Undef);
  EXPECT_EQ(applySign(lbool::True, negLit(0)), lbool::False);
  EXPECT_EQ(applySign(lbool::False, negLit(0)), lbool::True);
  EXPECT_EQ(applySign(lbool::Undef, negLit(0)), lbool::Undef);
}

TEST(CnfFormula, AddClauseGrowsVariables) {
  CnfFormula f;
  f.addClause({posLit(2), negLit(5)});
  EXPECT_EQ(f.numVars(), 6);
  EXPECT_EQ(f.numClauses(), 1);
  EXPECT_EQ(f.numLiterals(), 2);
}

TEST(CnfFormula, SatisfactionCounting) {
  CnfFormula f(2);
  f.addClause({posLit(0)});
  f.addClause({negLit(0), posLit(1)});
  f.addClause({negLit(1)});
  Assignment a{lbool::True, lbool::True};
  EXPECT_EQ(f.numSatisfied(a), 2);
  EXPECT_FALSE(f.satisfies(a));
  Assignment b{lbool::True, lbool::False};
  EXPECT_EQ(f.numSatisfied(b), 2);
}

TEST(CnfFormula, NormalizedRemovesTautologiesAndDuplicates) {
  CnfFormula f(3);
  f.addClause({posLit(0), negLit(0)});          // tautology
  f.addClause({posLit(1), posLit(2), posLit(1)});  // dup literal
  f.addClause({posLit(2), posLit(1)});          // dup clause (reordered)
  const CnfFormula n = f.normalized();
  EXPECT_EQ(n.numClauses(), 1);
  EXPECT_EQ(n.clause(0).size(), 2u);
}

TEST(CnfFormula, EmptyClauseAllowed) {
  CnfFormula f;
  f.addClause(std::initializer_list<Lit>{});
  EXPECT_EQ(f.numClauses(), 1);
  EXPECT_FALSE(f.satisfies(Assignment{}));
}

TEST(Wcnf, AllSoftLiftsEveryClause) {
  CnfFormula f(2);
  f.addClause({posLit(0)});
  f.addClause({negLit(0), posLit(1)});
  const WcnfFormula w = WcnfFormula::allSoft(f);
  EXPECT_EQ(w.numSoft(), 2);
  EXPECT_EQ(w.numHard(), 0);
  EXPECT_TRUE(w.isPlain());
  EXPECT_TRUE(w.isUnweighted());
}

TEST(Wcnf, CostCountsFalsifiedSoftWeight) {
  WcnfFormula w(2);
  w.addHard({posLit(0)});
  w.addSoft({posLit(1)}, 3);
  w.addSoft({negLit(1)}, 2);
  Assignment a{lbool::True, lbool::True};
  EXPECT_EQ(w.cost(a), 2);
  Assignment b{lbool::True, lbool::False};
  EXPECT_EQ(w.cost(b), 3);
  Assignment c{lbool::False, lbool::True};
  EXPECT_FALSE(w.cost(c).has_value());  // hard violated
}

TEST(Wcnf, UnweightedDuplication) {
  WcnfFormula w(1);
  w.addSoft({posLit(0)}, 3);
  const auto u = w.unweighted();
  ASSERT_TRUE(u.has_value());
  EXPECT_EQ(u->numSoft(), 3);
  EXPECT_TRUE(u->isUnweighted());
  EXPECT_FALSE(w.unweighted(2).has_value());  // exceeds the cap
}

TEST(Wcnf, NumSoftSatisfiedMatchesPaperObjective) {
  WcnfFormula w(1);
  w.addSoft({posLit(0)}, 1);
  w.addSoft({negLit(0)}, 1);
  Assignment a{lbool::True};
  EXPECT_EQ(w.numSoftSatisfied(a), 1);
}

TEST(Dimacs, ParseSimpleCnf) {
  const std::string text = R"(c a comment
p cnf 3 2
1 -2 0
2 3 0
)";
  const CnfFormula f = parseDimacsCnf(text);
  EXPECT_EQ(f.numVars(), 3);
  EXPECT_EQ(f.numClauses(), 2);
  EXPECT_EQ(f.clause(0), (Clause{posLit(0), negLit(1)}));
}

TEST(Dimacs, RoundTripCnf) {
  CnfFormula f(4);
  f.addClause({posLit(0), negLit(3)});
  f.addClause({posLit(1), posLit(2), negLit(0)});
  const CnfFormula g = parseDimacsCnf(toDimacsString(f));
  EXPECT_EQ(g.numVars(), f.numVars());
  ASSERT_EQ(g.numClauses(), f.numClauses());
  for (int i = 0; i < f.numClauses(); ++i) {
    EXPECT_EQ(g.clause(i), f.clause(i));
  }
}

TEST(Dimacs, ParseWcnfWithTop) {
  const std::string text = R"(p wcnf 2 3 10
10 1 0
1 2 0
3 -2 0
)";
  const WcnfFormula w = parseDimacsWcnf(text);
  EXPECT_EQ(w.numHard(), 1);
  EXPECT_EQ(w.numSoft(), 2);
  EXPECT_EQ(w.soft()[1].weight, 3);
}

TEST(Dimacs, PlainCnfReadAsWcnfBecomesAllSoft) {
  const std::string text = "p cnf 2 2\n1 0\n-1 2 0\n";
  const WcnfFormula w = parseDimacsWcnf(text);
  EXPECT_EQ(w.numHard(), 0);
  EXPECT_EQ(w.numSoft(), 2);
}

TEST(Dimacs, RoundTripWcnf) {
  WcnfFormula w(3);
  w.addHard({posLit(0), posLit(1)});
  w.addSoft({negLit(2)}, 2);
  w.addSoft({posLit(2), negLit(0)}, 1);
  const WcnfFormula v = parseDimacsWcnf(toDimacsString(w));
  EXPECT_EQ(v.numHard(), 1);
  EXPECT_EQ(v.numSoft(), 2);
  EXPECT_EQ(v.soft()[0].weight, 2);
  EXPECT_EQ(v.hard()[0], w.hard()[0]);
}

TEST(Dimacs, ErrorOnMissingHeader) {
  EXPECT_THROW(parseDimacsCnf("1 2 0\n"), DimacsError);
}

TEST(Dimacs, ErrorOnLiteralOutOfRange) {
  EXPECT_THROW(parseDimacsCnf("p cnf 2 1\n3 0\n"), DimacsError);
}

TEST(Dimacs, ErrorOnUnterminatedClause) {
  EXPECT_THROW(parseDimacsCnf("p cnf 2 1\n1 2\n"), DimacsError);
}

TEST(Oracle, SatAndUnsat) {
  CnfFormula sat(2);
  sat.addClause({posLit(0), posLit(1)});
  EXPECT_TRUE(oracleSat(sat).has_value());

  CnfFormula unsat(1);
  unsat.addClause({posLit(0)});
  unsat.addClause({negLit(0)});
  EXPECT_TRUE(oracleUnsat(unsat));
}

TEST(Oracle, MaxSatOptimum) {
  // The paper's Example 1: (x1)(x2 + ~x1)(~x2) — one clause must fall.
  CnfFormula f(2);
  f.addClause({posLit(0)});
  f.addClause({posLit(1), negLit(0)});
  f.addClause({negLit(1)});
  const OracleResult r = oracleMaxSat(WcnfFormula::allSoft(f));
  ASSERT_TRUE(r.optimumCost.has_value());
  EXPECT_EQ(*r.optimumCost, 1);
}

TEST(Oracle, MaxSatRespectsHardClauses) {
  WcnfFormula w(1);
  w.addHard({posLit(0)});
  w.addSoft({negLit(0)}, 1);
  const OracleResult r = oracleMaxSat(w);
  ASSERT_TRUE(r.optimumCost.has_value());
  EXPECT_EQ(*r.optimumCost, 1);
  EXPECT_EQ(r.model[0], lbool::True);
}

TEST(Oracle, MaxSatUnsatHard) {
  WcnfFormula w(1);
  w.addHard({posLit(0)});
  w.addHard({negLit(0)});
  w.addSoft({posLit(0)}, 1);
  EXPECT_FALSE(oracleMaxSat(w).optimumCost.has_value());
}

TEST(Oracle, SubsetUnsat) {
  CnfFormula f(2);
  f.addClause({posLit(0)});
  f.addClause({negLit(0)});
  f.addClause({posLit(1)});
  const std::vector<int> core{0, 1};
  EXPECT_TRUE(oracleSubsetUnsat(f, core));
  const std::vector<int> notCore{0, 2};
  EXPECT_FALSE(oracleSubsetUnsat(f, notCore));
}

}  // namespace
}  // namespace msu
