/// Tests of the parallel portfolio subsystem: the shared clause pool's
/// endpoint semantics (cursors, self-import exclusion, dedup), the
/// solver's export filter (nothing above the shared variable prefix —
/// in particular no scope-tagged clause — ever leaves a worker), budget
/// interruption, single-thread determinism, and answer agreement
/// between the portfolio and sequential engines on fuzzed WCNFs.

#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <type_traits>

#include "cnf/oracle.h"
#include "encodings/cardinality.h"
#include "encodings/sink.h"
#include "gen/pigeonhole.h"
#include "gen/random_cnf.h"
#include "harness/factory.h"
#include "par/clause_pool.h"
#include "par/portfolio.h"
#include "sat/solver.h"

namespace msu {
namespace {

// ScopeHandle is a deliberate type wall: literals must not silently
// become scopes or vice versa.
static_assert(!std::is_convertible_v<Lit, ScopeHandle>);
static_assert(!std::is_convertible_v<ScopeHandle, Lit>);

std::vector<Lit> clauseOf(std::initializer_list<int> dimacs) {
  std::vector<Lit> out;
  for (int d : dimacs) out.push_back(Lit::fromDimacs(d));
  return out;
}

TEST(SharedClausePool, EndpointCursorsAndSelfExclusion) {
  SharedClausePool pool(3, 10);
  const std::vector<Lit> c1 = clauseOf({1, -2});
  const std::vector<Lit> c2 = clauseOf({3, 4, -5});
  EXPECT_TRUE(pool.endpoint(0)->exportClause(c1, 2));
  EXPECT_TRUE(pool.endpoint(1)->exportClause(c2, 3));

  const auto drain = [&](int w) {
    std::vector<std::vector<Lit>> got;
    pool.endpoint(w)->importClauses(
        [&](std::span<const Lit> lits) {
          got.emplace_back(lits.begin(), lits.end());
        },
        /*maxClauses=*/-1);
    return got;
  };

  // Worker 0 sees only worker 1's clause; worker 2 sees both.
  const auto got0 = drain(0);
  ASSERT_EQ(got0.size(), 1u);
  EXPECT_EQ(got0[0], c2);
  const auto got2 = drain(2);
  ASSERT_EQ(got2.size(), 2u);
  EXPECT_EQ(got2[0], c1);
  EXPECT_EQ(got2[1], c2);

  // Cursors advance: a second drain is empty until new clauses arrive,
  // and the hasPending hint agrees.
  EXPECT_TRUE(drain(0).empty());
  EXPECT_FALSE(pool.endpoint(0)->hasPending());
  EXPECT_TRUE(drain(2).empty());
  EXPECT_TRUE(pool.endpoint(2)->exportClause(clauseOf({6}), 1));
  EXPECT_TRUE(pool.endpoint(0)->hasPending());
  const auto again0 = drain(0);
  ASSERT_EQ(again0.size(), 1u);
  EXPECT_EQ(again0[0], clauseOf({6}));
}

TEST(SharedClausePool, ImportBudgetCapsADrainAndTheRestStaysQueued) {
  SharedClausePool pool(2, 10);
  for (int i = 1; i <= 5; ++i) {
    EXPECT_TRUE(pool.endpoint(0)->exportClause(clauseOf({i}), 1));
  }
  int got = 0;
  const int scanned = pool.endpoint(1)->importClauses(
      [&](std::span<const Lit>) { ++got; }, /*maxClauses=*/2);
  EXPECT_EQ(got, 2);
  EXPECT_EQ(scanned, 2);
  EXPECT_TRUE(pool.endpoint(1)->hasPending());
  got = 0;
  pool.endpoint(1)->importClauses([&](std::span<const Lit>) { ++got; },
                                  /*maxClauses=*/-1);
  EXPECT_EQ(got, 3);  // remainder delivered, nothing lost
  EXPECT_FALSE(pool.endpoint(1)->hasPending());
}

TEST(SharedClausePool, DeduplicatesPerEndpointAcrossOrders) {
  SharedClausePool pool(2, 10);
  EXPECT_TRUE(pool.endpoint(0)->exportClause(clauseOf({1, 2, 3}), 3));
  // Same clause, different literal order, different producer: the
  // lock-free store keeps both publications (dedup is per endpoint,
  // not global), but no endpoint ever *delivers* a clause twice.
  EXPECT_TRUE(pool.endpoint(1)->exportClause(clauseOf({3, 1, 2}), 3));
  EXPECT_EQ(pool.numClauses(), 2);
  // Worker 1 already knows the clause (it published it): worker 0's
  // copy is scanned but skipped as an endpoint-duplicate.
  int seen = 0;
  const int scanned = pool.endpoint(1)->importClauses(
      [&](std::span<const Lit>) { ++seen; }, /*maxClauses=*/-1);
  EXPECT_EQ(seen, 0);
  EXPECT_EQ(scanned, 1);
  EXPECT_EQ(pool.numDuplicates(), 1);
  // Worker 1 re-exporting its own clause is dropped at the endpoint.
  EXPECT_FALSE(pool.endpoint(1)->exportClause(clauseOf({1, 2, 3}), 3));
  EXPECT_EQ(pool.numClauses(), 2);
  EXPECT_EQ(pool.numDuplicates(), 2);
}

/// Capturing exchange for export-filter tests.
class CapturingShare final : public ClauseShare {
 public:
  bool exportClause(std::span<const Lit> lits, int glue) override {
    exported.emplace_back(lits.begin(), lits.end());
    glues.push_back(glue);
    return true;
  }
  int importClauses(const std::function<void(std::span<const Lit>)>& consume,
                    int /*maxClauses*/) override {
    const int scanned = static_cast<int>(pending.size());
    for (const auto& c : pending) consume(c);
    pending.clear();
    return scanned;
  }
  [[nodiscard]] bool hasPending() const override { return !pending.empty(); }

  std::vector<std::vector<Lit>> exported;
  std::vector<int> glues;
  std::vector<std::vector<Lit>> pending;
};

TEST(ClauseSharing, ExportsStayBelowSharedPrefixEvenWithScopes) {
  // Unsatisfiable core problem (php) plus a scoped cardinality
  // constraint over the first variables: the solver learns clauses
  // touching scope auxiliaries and the activator, but everything it
  // exports must lie inside the original-variable prefix — no
  // activator-tagged scope variable ever leaks into the pool.
  const CnfFormula php = pigeonhole(5, 4);
  CapturingShare share;
  Solver::Options so;
  so.share = &share;
  so.share_num_vars = php.numVars();
  Solver s(so);
  SolverSink sink(s);
  while (s.numVars() < php.numVars()) static_cast<void>(s.newVar());
  for (const Clause& c : php.clauses()) ASSERT_TRUE(s.addClause(c));

  std::vector<Lit> firstVars;
  for (Var v = 0; v < 6; ++v) firstVars.push_back(posLit(v));
  const ScopeHandle sc = sink.beginScope();
  encodeAtMost(sink, firstVars, 2, CardEncoding::Sequential);
  sink.endScope(sc);

  EXPECT_EQ(s.solve(), lbool::False);
  EXPECT_GT(s.stats().shared_exported, 0);
  EXPECT_EQ(s.stats().shared_exported,
            static_cast<std::int64_t>(share.exported.size()));
  for (const auto& clause : share.exported) {
    EXPECT_LE(static_cast<int>(clause.size()), so.share_max_size);
    for (const Lit p : clause) {
      EXPECT_LT(p.var(), php.numVars())
          << "exported clause leaked a non-original variable";
    }
  }
}

TEST(ClauseSharing, ImportsAttachAtRestartBoundaries) {
  // A solvable instance plus a pre-loaded foreign unit: the import must
  // be attached before search and constrain the model.
  CapturingShare share;
  Solver::Options so;
  so.share = &share;
  so.share_num_vars = 3;
  Solver s(so);
  for (int i = 0; i < 3; ++i) static_cast<void>(s.newVar());
  ASSERT_TRUE(s.addClause({posLit(0), posLit(1)}));
  share.pending.push_back(clauseOf({-1}));        // unit ~x0
  share.pending.push_back(clauseOf({-2, 3}));     // binary
  share.pending.push_back(clauseOf({1, 2, 3}));   // long (satisfied later)
  ASSERT_EQ(s.solve(), lbool::True);
  EXPECT_GE(s.stats().shared_imported, 2);
  EXPECT_EQ(s.modelValue(posLit(0)), lbool::False);  // unit enforced
  EXPECT_EQ(s.modelValue(posLit(1)), lbool::True);
}

TEST(ClauseSharing, BudgetInterruptStopsTheSolver) {
  std::atomic<bool> stop{false};
  Budget b;
  b.setInterrupt(&stop);
  EXPECT_FALSE(b.isUnlimited());
  EXPECT_FALSE(b.timeExpired());
  stop.store(true);
  EXPECT_TRUE(b.interrupted());
  EXPECT_TRUE(b.timeExpired());

  // A pre-raised flag makes solve return Undef immediately.
  const CnfFormula php = pigeonhole(7, 6);
  Solver s;
  while (s.numVars() < php.numVars()) static_cast<void>(s.newVar());
  for (const Clause& c : php.clauses()) ASSERT_TRUE(s.addClause(c));
  s.setBudget(b);
  EXPECT_EQ(s.solve(), lbool::Undef);
}

TEST(CrossScopeChecker, AbortsOnReferenceToClosedScope) {
  const auto misuse = [] {
    Solver::Options so;
    so.check_cross_scope = true;
    Solver s(so);
    SolverSink sink(s);
    std::vector<Lit> xs;
    for (int i = 0; i < 4; ++i) xs.push_back(posLit(s.newVar()));
    const ScopeHandle sc = sink.beginScope();
    encodeAtMost(sink, xs, 1, CardEncoding::Sequential);
    sink.endScope(sc);
    // The scope's auxiliary variables must not be referenced by later
    // clauses; the checker fails fast naming the owning scope.
    const Var aux = static_cast<Var>(s.numVars() - 1);
    static_cast<void>(s.addClause({posLit(aux), xs[0]}));
  };
  EXPECT_DEATH(misuse(), "cross-scope reference");
}

TEST(CrossScopeChecker, AllowsLayeredScopesOverOlderStructures) {
  // OLL builds totalizers whose inputs are the outputs of *earlier*
  // totalizers (nested soft cardinality). That layering is legitimate —
  // the checker only rejects references to scopes that are neither open
  // nor older — and OLL pins dependencies so the older structure cannot
  // retire from under its dependents.
  const WcnfFormula w =
      WcnfFormula::allSoft(randomUnsat3Sat(24, 5.4, 2024));
  MaxSatOptions o;
  o.sat.check_cross_scope = true;
  auto oll = makeSolver("oll", o);
  const MaxSatResult r = oll->solve(w);
  ASSERT_EQ(r.status, MaxSatStatus::Optimum);
  auto reference = makeSolver("msu4-v2", MaxSatOptions{});
  EXPECT_EQ(r.cost, reference->solve(w).cost);
}

TEST(Portfolio, SingleThreadIsDeterministicAndMatchesBaseEngine) {
  const WcnfFormula w =
      WcnfFormula::allSoft(randomUnsat3Sat(26, 5.2, 421));
  PortfolioOptions po;
  po.threads = 1;
  PortfolioSolver a(po);
  PortfolioSolver b(po);
  const MaxSatResult ra = a.solve(w);
  const MaxSatResult rb = b.solve(w);
  ASSERT_EQ(ra.status, MaxSatStatus::Optimum);
  ASSERT_EQ(rb.status, MaxSatStatus::Optimum);
  EXPECT_EQ(ra.cost, rb.cost);
  EXPECT_EQ(ra.satCalls, rb.satCalls);
  EXPECT_EQ(ra.iterations, rb.iterations);
  EXPECT_EQ(ra.satStats.conflicts, rb.satStats.conflicts);
  EXPECT_EQ(ra.satStats.decisions, rb.satStats.decisions);
  EXPECT_EQ(ra.satStats.propagations, rb.satStats.propagations);
  EXPECT_EQ(ra.satStats.shared_exported, 0);
  EXPECT_EQ(ra.satStats.shared_imported, 0);

  // And the 1-thread portfolio is the base engine, bit for bit.
  auto base = makeSolver("msu4-v2", MaxSatOptions{});
  const MaxSatResult rc = base->solve(w);
  EXPECT_EQ(rc.cost, ra.cost);
  EXPECT_EQ(rc.satStats.conflicts, ra.satStats.conflicts);
  EXPECT_EQ(rc.satStats.decisions, ra.satStats.decisions);
}

TEST(Portfolio, FuzzAgreesWithSequentialOptimum) {
  // Random WCNFs (unweighted and weighted): the racing portfolio with
  // clause sharing must report the same optimum as the exhaustive
  // oracle, regardless of which worker wins. The cross-scope checker
  // runs inside every worker to police the scope contract under load.
  std::mt19937_64 rng(7);
  for (int round = 0; round < 6; ++round) {
    const CnfFormula base =
        randomKSat({.numVars = 9,
                    .numClauses = 40,
                    .clauseLen = 3,
                    .seed = 900 + static_cast<std::uint64_t>(round)});
    WcnfFormula w(base.numVars());
    const bool weighted = (round % 2) == 1;
    for (int i = 0; i < base.numClauses(); ++i) {
      if (i % 5 == 0) {
        w.addHard(base.clause(i));
      } else {
        w.addSoft(base.clause(i),
                  weighted ? static_cast<Weight>(1 + rng() % 4) : 1);
      }
    }
    const OracleResult truth = oracleMaxSat(w);
    if (!truth.optimumCost.has_value()) continue;  // hards unsat: skip

    PortfolioOptions po;
    po.threads = 4;
    po.seed = static_cast<unsigned>(round + 1);
    po.base.sat.check_cross_scope = true;
    PortfolioSolver portfolio(po);
    const MaxSatResult r = portfolio.solve(w);
    ASSERT_EQ(r.status, MaxSatStatus::Optimum) << "round " << round;
    EXPECT_EQ(r.cost, *truth.optimumCost) << "round " << round;
    const auto modelCost = w.cost(r.model);
    ASSERT_TRUE(modelCost.has_value()) << "round " << round;
    EXPECT_EQ(*modelCost, r.cost) << "round " << round;
  }
}

TEST(Portfolio, HardUnsatIsDetected) {
  // Unsatisfiable hards: every engine must agree, the portfolio
  // reports UnsatisfiableHard.
  const CnfFormula php = pigeonhole(5, 4);
  WcnfFormula w(php.numVars());
  for (const Clause& c : php.clauses()) w.addHard(c);
  w.addSoft({posLit(0)}, 1);
  PortfolioOptions po;
  po.threads = 3;
  PortfolioSolver portfolio(po);
  const MaxSatResult r = portfolio.solve(w);
  EXPECT_EQ(r.status, MaxSatStatus::UnsatisfiableHard);
}

TEST(Portfolio, SharingMovesClausesUnderContention) {
  // A hard unsatisfiable pigeonhole keeps every worker's conflicts
  // inside the original-variable prefix (soft-clause conflicts involve
  // selectors, which never export): the summed stats must show traffic
  // through the pool.
  const CnfFormula php = pigeonhole(6, 5);
  WcnfFormula w(php.numVars());
  for (const Clause& c : php.clauses()) w.addHard(c);
  w.addSoft({posLit(0)}, 1);
  PortfolioOptions po;
  po.threads = 3;
  po.engines = {"msu4-v2", "msu3", "linear"};  // all sharing-safe
  PortfolioSolver portfolio(po);
  const MaxSatResult r = portfolio.solve(w);
  EXPECT_EQ(r.status, MaxSatStatus::UnsatisfiableHard);
  EXPECT_GT(r.satStats.shared_exported, 0);
}

TEST(ClauseSharing, TwoWorkerPoolRoundTripsExportAndImport) {
  // Regression for the dead-sharing-path finding (BENCH_portfolio.json
  // once showed shared_exported == 0 in every record): the bench's
  // all-soft workloads have no hard clauses, so nothing was ever
  // legally exportable — the pipeline itself must round-trip. This
  // crafts the 2-worker exchange deterministically: worker 0 refutes a
  // hard instance and exports prefix clauses into the pool; worker 1
  // then solves the same instance and must import them.
  const CnfFormula php = pigeonhole(6, 5);
  SharedClausePool pool(2, php.numVars());

  const auto solveWorker = [&](int w) {
    Solver::Options so;
    so.share = pool.endpoint(w);
    so.share_num_vars = php.numVars();
    Solver s(so);
    while (s.numVars() < php.numVars()) static_cast<void>(s.newVar());
    for (const Clause& c : php.clauses()) EXPECT_TRUE(s.addClause(c));
    EXPECT_EQ(s.solve(), lbool::False);
    return s.stats();
  };

  const SolverStats first = solveWorker(0);
  EXPECT_GT(first.shared_exported, 0);
  EXPECT_EQ(first.shared_imported, 0);  // nothing published yet
  EXPECT_GT(pool.numClauses(), 0);

  const SolverStats second = solveWorker(1);
  EXPECT_GT(second.shared_imported, 0)
      << "worker 1 never imported worker 0's clauses";
}

TEST(Portfolio, TwoWorkersShareOnHardRichInstances) {
  // Threaded end-to-end variant on a *satisfiable-hards* instance of
  // the kind the bench now includes: a below-threshold hard random
  // 3-SAT skeleton carrying a soft 3-clause load. Refutations inside
  // the hard skeleton learn prefix-pure clauses, so exports must flow.
  // Whether a particular 2-worker race shares before the winner
  // finishes is timing-dependent, so the assertion is over a handful of
  // attempts: at least one run must move clauses through the pool.
  const CnfFormula hard = randomKSat(
      {.numVars = 48, .numClauses = 160, .clauseLen = 3, .seed = 12});
  const CnfFormula soft = randomKSat(
      {.numVars = 48, .numClauses = 120, .clauseLen = 3, .seed = 13});
  WcnfFormula w(48);
  for (int i = 0; i < hard.numClauses(); ++i) w.addHard(hard.clause(i));
  for (int i = 0; i < soft.numClauses(); ++i) w.addSoft(soft.clause(i), 1);

  Weight cost = -1;
  std::int64_t exported = 0;
  for (int attempt = 0; attempt < 5 && exported == 0; ++attempt) {
    PortfolioOptions po;
    po.threads = 2;
    PortfolioSolver portfolio(po);
    const MaxSatResult r = portfolio.solve(w);
    ASSERT_EQ(r.status, MaxSatStatus::Optimum);
    if (cost < 0) cost = r.cost;
    EXPECT_EQ(r.cost, cost);  // attempts agree on the optimum
    exported = r.satStats.shared_exported;
  }
  EXPECT_GT(exported, 0);
}

TEST(Portfolio, WorkerDescriptionsAreDeterministic) {
  PortfolioOptions po;
  po.threads = 4;
  po.seed = 3;
  PortfolioSolver a(po);
  PortfolioSolver b(po);
  EXPECT_EQ(a.workerDescriptions(), b.workerDescriptions());
  EXPECT_EQ(a.workerDescriptions().size(), 4u);
  // Worker 0 is the untouched base engine.
  EXPECT_EQ(a.workerDescriptions()[0], "msu4-v2");
}

}  // namespace
}  // namespace msu
