/// Tests for DRUP proof logging and the independent RUP checker:
///  * refutation proofs from plain unsat solves verify end-to-end;
///  * satisfiable solves produce RUP-valid lemma traces (no refutation);
///  * tampered proofs are rejected with the right failing line;
///  * DRUP text round-trips through writer and parser;
///  * proofs survive clause-database reduction (deletions interleaved);
///  * a core-guided MaxSAT run (msu4) leaves a fully RUP-valid trace
///    through its incremental clause additions.

#include <gtest/gtest.h>

#include <sstream>

#include "cnf/oracle.h"
#include "core/msu4.h"
#include "gen/pigeonhole.h"
#include "gen/random_cnf.h"
#include "proof/checker.h"
#include "proof/drup.h"
#include "sat/solver.h"

namespace msu {
namespace {

/// Solves `cnf` with an attached recorder; returns (status, proof).
std::pair<lbool, InMemoryProof> solveTraced(const CnfFormula& cnf,
                                            Solver::Options satOpts = {}) {
  auto proof = InMemoryProof{};
  satOpts.tracer = &proof;
  Solver solver(satOpts);
  for (Var v = 0; v < cnf.numVars(); ++v) static_cast<void>(solver.newVar());
  for (const Clause& c : cnf.clauses()) {
    if (!solver.addClause(c)) break;
  }
  const lbool st = solver.okay() ? solver.solve() : lbool::False;
  return {st, std::move(proof)};
}

TEST(ProofTest, TrivialUnitConflictYieldsVerifiedRefutation) {
  CnfFormula f(1);
  f.addClause({posLit(0)});
  f.addClause({negLit(0)});
  auto [st, proof] = solveTraced(f);
  EXPECT_EQ(st, lbool::False);
  EXPECT_TRUE(proof.claimsRefutation());
  const ProofCheckResult r = checkProof(proof.lines());
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.refutationVerified);
}

TEST(ProofTest, PigeonholeRefutationVerifies) {
  for (int n = 2; n <= 5; ++n) {
    const CnfFormula f = pigeonhole(n + 1, n);
    auto [st, proof] = solveTraced(f);
    ASSERT_EQ(st, lbool::False) << "php " << n;
    const ProofCheckResult r = checkProof(proof.lines());
    EXPECT_TRUE(r.ok) << "php " << n << " bad line " << r.firstBadLine;
    EXPECT_TRUE(r.refutationVerified) << "php " << n;
    EXPECT_GT(r.lemmasChecked, 0) << "php " << n;
  }
}

TEST(ProofTest, RandomUnsatRefutationsVerify) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const CnfFormula f = randomUnsat3Sat(20, 6.5, seed);
    auto [st, proof] = solveTraced(f);
    ASSERT_EQ(st, lbool::False) << "seed " << seed;
    const ProofCheckResult r = checkProof(proof.lines());
    EXPECT_TRUE(r.ok) << "seed " << seed << " line " << r.firstBadLine;
    EXPECT_TRUE(r.refutationVerified) << "seed " << seed;
  }
}

TEST(ProofTest, SatisfiableSolveLeavesValidLemmasNoRefutation) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const CnfFormula f =
        randomKSat({.numVars = 25, .numClauses = 80, .clauseLen = 3,
                    .seed = seed});
    auto [st, proof] = solveTraced(f);
    if (st != lbool::True) continue;  // skip rare unsat draws
    const ProofCheckResult r = checkProof(proof.lines());
    EXPECT_TRUE(r.ok) << "seed " << seed;
    EXPECT_FALSE(r.refutationVerified) << "seed " << seed;
  }
}

TEST(ProofTest, DeletionsFromDbReductionDoNotBreakTheProof) {
  // Force clause-DB reductions with a tiny learnt-size factor.
  Solver::Options opts;
  opts.learntsize_factor = 0.01;
  opts.learntsize_inc = 1.01;
  const CnfFormula f = randomUnsat3Sat(30, 6.0, 7);
  auto [st, proof] = solveTraced(f, opts);
  ASSERT_EQ(st, lbool::False);
  bool sawDeletion = false;
  for (const ProofLine& l : proof.lines()) {
    sawDeletion = sawDeletion || l.kind == ProofLine::Kind::Delete;
  }
  EXPECT_TRUE(sawDeletion);
  const ProofCheckResult r = checkProof(proof.lines());
  EXPECT_TRUE(r.ok) << "line " << r.firstBadLine;
  EXPECT_TRUE(r.refutationVerified);
}

TEST(ProofTest, TamperedLemmaIsRejected) {
  const CnfFormula f = pigeonhole(4, 3);
  auto [st, proof] = solveTraced(f);
  ASSERT_EQ(st, lbool::False);
  // Corrupt the first non-trivial lemma: flip its first literal.
  std::vector<ProofLine> lines = proof.lines();
  bool corrupted = false;
  for (ProofLine& l : lines) {
    if (l.kind == ProofLine::Kind::Lemma && l.lits.size() >= 2) {
      // Replace the clause with a non-implied one over fresh polarity.
      l.lits = {l.lits[0], ~l.lits[1]};
      std::swap(l.lits[0], l.lits[1]);
      corrupted = true;
      break;
    }
  }
  ASSERT_TRUE(corrupted);
  const ProofCheckResult r = checkProof(lines);
  // Either the corrupted clause happens to still be RUP (possible) or
  // the checker flags exactly a lemma line.
  if (!r.ok) {
    ASSERT_GE(r.firstBadLine, 0);
    EXPECT_EQ(lines[static_cast<std::size_t>(r.firstBadLine)].kind,
              ProofLine::Kind::Lemma);
  }
}

TEST(ProofTest, ForgedRefutationOfSatisfiableFormulaFails) {
  // A directly-claimed empty clause on a satisfiable database must fail.
  std::vector<ProofLine> lines;
  lines.push_back({ProofLine::Kind::Axiom, {posLit(0), posLit(1)}});
  lines.push_back({ProofLine::Kind::Lemma, {}});
  const ProofCheckResult r = checkProof(lines);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.firstBadLine, 1);
}

TEST(ProofTest, DrupTextRoundTrips) {
  const CnfFormula f = randomUnsat3Sat(15, 6.5, 11);
  auto [st, proof] = solveTraced(f);
  ASSERT_EQ(st, lbool::False);

  std::ostringstream text;
  writeDrup(text, proof.lines());
  std::istringstream in(text.str());
  const auto parsed = parseDrup(in);
  ASSERT_TRUE(parsed.has_value());

  // Checking the parsed (axiom-free) proof against the CNF must agree
  // with checking the in-memory proof.
  const ProofCheckResult viaText = checkProof(f, *parsed);
  const ProofCheckResult viaMemory = checkProof(proof.lines());
  EXPECT_TRUE(viaText.ok);
  EXPECT_EQ(viaText.refutationVerified, viaMemory.refutationVerified);
  EXPECT_TRUE(viaText.refutationVerified);
}

TEST(ProofTest, ParserRejectsMalformedInput) {
  const auto check = [](const char* text) {
    std::istringstream in(text);
    return parseDrup(in).has_value();
  };
  EXPECT_TRUE(check(""));
  EXPECT_TRUE(check("1 -2 0\nd 1 -2 0\n"));
  EXPECT_FALSE(check("1 -2"));        // missing terminator
  EXPECT_FALSE(check("1 d 2 0"));     // 'd' mid-clause
  EXPECT_FALSE(check("1 two 0"));     // not a number
  EXPECT_FALSE(check("d"));           // dangling deletion
}

TEST(ProofTest, DrupWriterStreamsWhileSolving) {
  const CnfFormula f = pigeonhole(4, 3);
  std::ostringstream out;
  DrupWriter writer(out);
  Solver::Options opts;
  opts.tracer = &writer;
  Solver solver(opts);
  for (Var v = 0; v < f.numVars(); ++v) static_cast<void>(solver.newVar());
  for (const Clause& c : f.clauses()) {
    if (!solver.addClause(c)) break;
  }
  ASSERT_EQ(solver.solve(), lbool::False);
  std::istringstream in(out.str());
  const auto parsed = parseDrup(in);
  ASSERT_TRUE(parsed.has_value());
  const ProofCheckResult r = checkProof(f, *parsed);
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.refutationVerified);
}

TEST(ProofTest, Msu4RunLeavesRupValidTrace) {
  // The tracer rides along msu4's single incremental solver, including
  // its mid-run cardinality-constraint additions. The trace cannot end
  // in a refutation (the working formula is satisfiable once enough
  // blocking variables are free) but every lemma must check.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const CnfFormula base = randomUnsat3Sat(12, 6.0, seed);
    InMemoryProof proof;
    MaxSatOptions opts;
    opts.sat.tracer = &proof;
    Msu4Solver solver(opts);
    const MaxSatResult res = solver.solve(WcnfFormula::allSoft(base));
    ASSERT_EQ(res.status, MaxSatStatus::Optimum) << "seed " << seed;
    const OracleResult oracle = oracleMaxSat(WcnfFormula::allSoft(base));
    ASSERT_TRUE(oracle.optimumCost.has_value());
    EXPECT_EQ(res.cost, *oracle.optimumCost) << "seed " << seed;
    const ProofCheckResult r = checkProof(proof.lines());
    EXPECT_TRUE(r.ok) << "seed " << seed << " line " << r.firstBadLine;
  }
}

TEST(RupCheckerTest, IncrementalApiBasics) {
  RupChecker checker;
  checker.ensureVars(3);
  checker.addAxiom(std::vector<Lit>{posLit(0), posLit(1)});
  checker.addAxiom(std::vector<Lit>{posLit(0), negLit(1)});
  // (x0) follows by resolution and is RUP.
  EXPECT_TRUE(checker.addLemma(std::vector<Lit>{posLit(0)}));
  // (x2) is unrelated: not RUP.
  EXPECT_FALSE(checker.addLemma(std::vector<Lit>{posLit(2)}));
  EXPECT_FALSE(checker.provedUnsat());
  checker.addAxiom(std::vector<Lit>{negLit(0)});
  EXPECT_TRUE(checker.provedUnsat());
  // Anything goes once refuted.
  EXPECT_TRUE(checker.addLemma(std::vector<Lit>{posLit(2)}));
}

TEST(RupCheckerTest, DeletionRemovesExactlyOneInstance) {
  RupChecker checker;
  checker.ensureVars(2);
  checker.addAxiom(std::vector<Lit>{posLit(0), posLit(1)});
  checker.addAxiom(std::vector<Lit>{posLit(0), posLit(1)});
  checker.addAxiom(std::vector<Lit>{negLit(1)});
  // With both copies present (x0) is RUP; delete one: still RUP via the
  // second copy; delete both: no longer RUP.
  checker.deleteClause(std::vector<Lit>{posLit(0), posLit(1)});
  EXPECT_TRUE(checker.addLemma(std::vector<Lit>{posLit(0)}));
}

}  // namespace
}  // namespace msu
