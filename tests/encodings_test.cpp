/// Property tests for the cardinality encodings: for every encoding and
/// every small (n, k), the encoding must accept exactly the assignments
/// with popcount <= k (checked by forcing each input pattern with unit
/// clauses and solving). Also covers at-least/exactly, AMO forms,
/// activators, and the sorting network / BDD building blocks.

#include <gtest/gtest.h>

#include <bit>
#include <set>
#include <tuple>

#include "encodings/cardinality.h"
#include "encodings/sink.h"
#include "encodings/totalizer.h"
#include "sat/solver.h"

namespace msu {
namespace {

/// Builds a solver with `n` input variables.
struct Fixture {
  Solver solver;
  SolverSink sink{solver};
  std::vector<Lit> inputs;

  explicit Fixture(int n) {
    for (int i = 0; i < n; ++i) inputs.push_back(posLit(solver.newVar()));
  }

  /// Solves with the inputs forced to the bits of `mask`.
  [[nodiscard]] lbool solveMask(std::uint32_t mask) {
    std::vector<Lit> assumps;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      const bool bit = ((mask >> i) & 1u) != 0;
      assumps.push_back(bit ? inputs[i] : ~inputs[i]);
    }
    return solver.solve(assumps);
  }
};

struct AtMostCase {
  CardEncoding enc;
  int n;
  int k;
};

std::string caseName(const ::testing::TestParamInfo<AtMostCase>& info) {
  return std::string(toString(info.param.enc)) + "_n" +
         std::to_string(info.param.n) + "_k" + std::to_string(info.param.k);
}

class AtMostExhaustive : public ::testing::TestWithParam<AtMostCase> {};

TEST_P(AtMostExhaustive, AcceptsExactlyPopcountLeK) {
  const auto [enc, n, k] = GetParam();
  Fixture f(n);
  encodeAtMost(f.sink, f.inputs, k, enc);
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    const bool expect = std::popcount(mask) <= k;
    const lbool st = f.solveMask(mask);
    ASSERT_NE(st, lbool::Undef);
    EXPECT_EQ(st == lbool::True, expect)
        << toString(enc) << " n=" << n << " k=" << k << " mask=" << mask;
  }
}

std::vector<AtMostCase> atMostCases() {
  std::vector<AtMostCase> cases;
  std::set<std::tuple<int, int, int>> seen;
  for (CardEncoding enc :
       {CardEncoding::Bdd, CardEncoding::Sorter, CardEncoding::Sequential,
        CardEncoding::Totalizer, CardEncoding::Pairwise}) {
    for (int n : {1, 2, 3, 5, 6, 8}) {
      for (int k : {0, 1, 2, n - 1}) {
        if (k < 0 || k >= n) continue;
        if (!seen.insert({static_cast<int>(enc), n, k}).second) continue;
        cases.push_back(AtMostCase{enc, n, k});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, AtMostExhaustive,
                         ::testing::ValuesIn(atMostCases()), caseName);

class AtLeastExhaustive : public ::testing::TestWithParam<AtMostCase> {};

TEST_P(AtLeastExhaustive, AcceptsExactlyPopcountGeK) {
  const auto [enc, n, k] = GetParam();
  Fixture f(n);
  encodeAtLeast(f.sink, f.inputs, k, enc);
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    const bool expect = std::popcount(mask) >= k;
    const lbool st = f.solveMask(mask);
    ASSERT_NE(st, lbool::Undef);
    EXPECT_EQ(st == lbool::True, expect)
        << toString(enc) << " n=" << n << " k=" << k << " mask=" << mask;
  }
}

std::vector<AtMostCase> atLeastCases() {
  std::vector<AtMostCase> cases;
  std::set<std::tuple<int, int, int>> seen;
  for (CardEncoding enc : {CardEncoding::Bdd, CardEncoding::Sorter,
                           CardEncoding::Sequential, CardEncoding::Totalizer}) {
    for (int n : {2, 4, 6}) {
      for (int k : {1, 2, n}) {
        if (k > n) continue;
        if (!seen.insert({static_cast<int>(enc), n, k}).second) continue;
        cases.push_back(AtMostCase{enc, n, k});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, AtLeastExhaustive,
                         ::testing::ValuesIn(atLeastCases()), caseName);

class ExactlyExhaustive : public ::testing::TestWithParam<AtMostCase> {};

TEST_P(ExactlyExhaustive, AcceptsExactlyPopcountEqK) {
  const auto [enc, n, k] = GetParam();
  Fixture f(n);
  encodeExactly(f.sink, f.inputs, k, enc);
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    const bool expect = std::popcount(mask) == static_cast<unsigned>(k);
    const lbool st = f.solveMask(mask);
    ASSERT_NE(st, lbool::Undef);
    EXPECT_EQ(st == lbool::True, expect)
        << toString(enc) << " n=" << n << " k=" << k << " mask=" << mask;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExactlyExhaustive,
    ::testing::Values(AtMostCase{CardEncoding::Bdd, 4, 2},
                      AtMostCase{CardEncoding::Sorter, 5, 2},
                      AtMostCase{CardEncoding::Sequential, 5, 3},
                      AtMostCase{CardEncoding::Totalizer, 6, 3}),
    caseName);

TEST(Encodings, TrivialBounds) {
  Fixture f(3);
  // k >= n is a no-op: all assignments accepted.
  encodeAtMost(f.sink, f.inputs, 3, CardEncoding::Sorter);
  encodeAtMost(f.sink, f.inputs, 7, CardEncoding::Bdd);
  for (std::uint32_t mask = 0; mask < 8; ++mask) {
    EXPECT_EQ(f.solveMask(mask), lbool::True);
  }
}

TEST(Encodings, NegativeBoundIsFalsum) {
  Fixture f(2);
  encodeAtMost(f.sink, f.inputs, -1, CardEncoding::Sorter);
  EXPECT_EQ(f.solver.solve(), lbool::False);
}

TEST(Encodings, ActivatorGuardsConstraint) {
  for (CardEncoding enc :
       {CardEncoding::Bdd, CardEncoding::Sorter, CardEncoding::Sequential,
        CardEncoding::Totalizer}) {
    Fixture f(4);
    const Lit act = posLit(f.solver.newVar());
    encodeAtMost(f.sink, f.inputs, 1, enc, act);
    // Without the activator: any popcount is fine.
    std::vector<Lit> all(f.inputs);
    EXPECT_EQ(f.solver.solve(all), lbool::True) << toString(enc);
    // With the activator: at most one input true.
    std::vector<Lit> withAct(f.inputs);
    withAct.push_back(act);
    EXPECT_EQ(f.solver.solve(withAct), lbool::False) << toString(enc);
    std::vector<Lit> ok{f.inputs[0], ~f.inputs[1], ~f.inputs[2], ~f.inputs[3],
                       act};
    EXPECT_EQ(f.solver.solve(ok), lbool::True) << toString(enc);
  }
}

TEST(Encodings, AtMostOnePairwiseAndLadder) {
  for (int variant = 0; variant < 2; ++variant) {
    Fixture f(5);
    if (variant == 0) {
      encodeAtMostOnePairwise(f.sink, f.inputs);
    } else {
      encodeAtMostOneLadder(f.sink, f.inputs);
    }
    for (std::uint32_t mask = 0; mask < 32; ++mask) {
      EXPECT_EQ(f.solveMask(mask) == lbool::True, std::popcount(mask) <= 1)
          << "variant " << variant << " mask " << mask;
    }
  }
}

TEST(Encodings, ExactlyOne) {
  for (int n : {2, 5, 12}) {  // 12 exercises the ladder path
    Fixture f(n);
    encodeExactlyOne(f.sink, f.inputs);
    for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
      EXPECT_EQ(f.solveMask(mask) == lbool::True, std::popcount(mask) == 1)
          << "n=" << n << " mask=" << mask;
    }
  }
}

TEST(SortingNetwork, OutputsAreSortedCounts) {
  // out[i] must be true iff at least i+1 inputs are true, for every
  // input pattern (full biconditional semantics).
  for (int n : {1, 2, 3, 4, 5, 7, 8}) {
    Fixture f(n);
    const std::vector<Lit> out = buildSortingNetwork(f.sink, f.inputs);
    ASSERT_EQ(out.size(), static_cast<std::size_t>(n));
    for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
      ASSERT_EQ(f.solveMask(mask), lbool::True);
      const int pop = std::popcount(mask);
      for (int i = 0; i < n; ++i) {
        const lbool v = f.solver.modelValue(out[static_cast<std::size_t>(i)]);
        EXPECT_EQ(v == lbool::True, pop >= i + 1)
            << "n=" << n << " mask=" << mask << " out[" << i << "]";
      }
    }
  }
}

TEST(BddAtMost, RootIsBiconditional) {
  for (int n : {3, 5}) {
    for (int k : {1, 2}) {
      Fixture f(n);
      const Lit root = buildAtMostBdd(f.sink, f.inputs, k);
      for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
        ASSERT_EQ(f.solveMask(mask), lbool::True);
        EXPECT_EQ(f.solver.modelValue(root) == lbool::True,
                  std::popcount(mask) <= k)
            << "n=" << n << " k=" << k << " mask=" << mask;
      }
    }
  }
}

TEST(Totalizer, IncrementalExtensionMatchesMonolithic) {
  // Adding inputs in two batches must behave like a single totalizer.
  Fixture f(6);
  const std::vector<Lit> first(f.inputs.begin(), f.inputs.begin() + 4);
  Totalizer tot(f.sink, first);
  tot.addInputs(std::span<const Lit>(f.inputs.data() + 4, 2));
  ASSERT_EQ(tot.numInputs(), 6);
  const std::vector<Lit>& out = tot.outputs();
  for (std::uint32_t mask = 0; mask < 64; ++mask) {
    ASSERT_EQ(f.solveMask(mask), lbool::True);
    const int pop = std::popcount(mask);
    for (int i = 0; i < 6; ++i) {
      EXPECT_EQ(f.solver.modelValue(out[static_cast<std::size_t>(i)]) ==
                    lbool::True,
                pop >= i + 1)
          << "mask=" << mask << " out[" << i << "]";
    }
  }
}

TEST(Totalizer, EmptyThenExtend) {
  Fixture f(3);
  Totalizer tot(f.sink, {});
  EXPECT_EQ(tot.numInputs(), 0);
  tot.addInputs(f.inputs);
  EXPECT_EQ(tot.numInputs(), 3);
  // Assert at most 1 via the outputs.
  f.sink.addClause({~tot.outputs()[1]});
  for (std::uint32_t mask = 0; mask < 8; ++mask) {
    EXPECT_EQ(f.solveMask(mask) == lbool::True, std::popcount(mask) <= 1);
  }
}

TEST(EncodingSizes, SorterSmallerThanPairwiseForLargeN) {
  const EncodingSize pairwise = measureAtMost(24, 1, CardEncoding::Pairwise);
  const EncodingSize seq = measureAtMost(24, 1, CardEncoding::Sequential);
  EXPECT_GT(pairwise.clauses, seq.clauses);
  EXPECT_EQ(pairwise.auxVars, 0);
}

TEST(EncodingSizes, BddGrowsWithK) {
  const EncodingSize k2 = measureAtMost(20, 2, CardEncoding::Bdd);
  const EncodingSize k8 = measureAtMost(20, 8, CardEncoding::Bdd);
  EXPECT_GT(k8.clauses, k2.clauses);
}

}  // namespace
}  // namespace msu
