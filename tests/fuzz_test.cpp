/// Differential fuzzing beyond the oracle's reach: at sizes the
/// exhaustive oracle cannot check, correctness is established by
/// agreement — every complete engine must report the same optimum on the
/// same instance, proofs must replay, preprocessing must reconstruct,
/// and tampered artifacts must be rejected.

#include <gtest/gtest.h>

#include <random>

#include "core/bmo.h"
#include "gen/random_cnf.h"
#include "harness/factory.h"
#include "mus/mus.h"
#include "proof/checker.h"
#include "proof/drup.h"
#include "sat/solver.h"
#include "simp/simp.h"

namespace msu {
namespace {

WcnfFormula mediumPartial(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  const int numVars = 16 + static_cast<int>(rng() % 8);
  WcnfFormula w(numVars);
  const int numHard = 6 + static_cast<int>(rng() % 10);
  const int numSoft = 40 + static_cast<int>(rng() % 30);
  auto clause = [&](int len) {
    Clause c;
    for (int k = 0; k < len; ++k) {
      c.push_back(mkLit(static_cast<Var>(rng() % numVars), (rng() & 1) != 0));
    }
    return c;
  };
  for (int i = 0; i < numHard; ++i) w.addHard(clause(3));
  for (int i = 0; i < numSoft; ++i) w.addSoft(clause(2), 1);
  return w;
}

TEST(FuzzCrossEngine, MediumPartialInstancesAllEnginesAgree) {
  const std::vector<std::string> engines{"msu4-v1", "msu4-v2", "msu4-cnet",
                                         "msu3",    "msu1",    "oll",
                                         "linear",  "binary",  "wlinear"};
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    const WcnfFormula w = mediumPartial(seed * 1313);
    Weight expected = -1;
    std::string first;
    for (const std::string& name : engines) {
      auto solver = makeSolver(name);
      ASSERT_NE(solver, nullptr) << name;
      const MaxSatResult r = solver->solve(w);
      if (r.status == MaxSatStatus::UnsatisfiableHard) {
        expected = -2;
        break;  // all engines must agree; checked via the next loop
      }
      ASSERT_EQ(r.status, MaxSatStatus::Optimum)
          << name << " seed " << seed;
      if (expected < 0) {
        expected = r.cost;
        first = name;
      } else {
        EXPECT_EQ(r.cost, expected)
            << name << " vs " << first << " seed " << seed;
      }
      // The model must achieve the cost it claims.
      const std::optional<Weight> c = w.cost(r.model);
      ASSERT_TRUE(c.has_value()) << name << " seed " << seed;
      EXPECT_EQ(*c, r.cost) << name << " seed " << seed;
    }
    if (expected == -2) {
      for (const std::string& name : engines) {
        auto solver = makeSolver(name);
        EXPECT_EQ(solver->solve(w).status, MaxSatStatus::UnsatisfiableHard)
            << name << " seed " << seed;
      }
    }
  }
}

TEST(FuzzProof, RandomTamperingIsCaughtOrHarmless) {
  std::mt19937_64 rng(99);
  int rejected = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const CnfFormula f = randomUnsat3Sat(18, 6.5, seed);
    InMemoryProof proof;
    Solver::Options opts;
    opts.tracer = &proof;
    Solver solver(opts);
    for (Var v = 0; v < f.numVars(); ++v) {
      static_cast<void>(solver.newVar());
    }
    for (const Clause& c : f.clauses()) {
      if (!solver.addClause(c)) break;
    }
    if ((solver.okay() ? solver.solve() : lbool::False) != lbool::False) {
      continue;
    }
    ASSERT_TRUE(checkProof(proof.lines()).ok) << "seed " << seed;

    // Tamper: flip one literal of one random non-empty lemma.
    std::vector<ProofLine> lines = proof.lines();
    std::vector<std::size_t> lemmaIdx;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      if (lines[i].kind == ProofLine::Kind::Lemma && !lines[i].lits.empty()) {
        lemmaIdx.push_back(i);
      }
    }
    ASSERT_FALSE(lemmaIdx.empty());
    ProofLine& victim = lines[lemmaIdx[rng() % lemmaIdx.size()]];
    Lit& lit = victim.lits[rng() % victim.lits.size()];
    lit = ~lit;

    const ProofCheckResult r = checkProof(lines);
    // A flipped lemma may coincidentally still be RUP; if rejected, the
    // reported line must be a lemma.
    if (!r.ok) {
      ++rejected;
      EXPECT_EQ(lines[static_cast<std::size_t>(r.firstBadLine)].kind,
                ProofLine::Kind::Lemma)
          << "seed " << seed;
    }
  }
  // The checker must catch a healthy share of corruptions.
  EXPECT_GT(rejected, 3);
}

TEST(FuzzSimp, PreprocessSolveReconstructAtScale) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const CnfFormula f =
        randomKSat({.numVars = 80, .numClauses = 320, .clauseLen = 3,
                    .seed = seed * 31});
    Preprocessor pre;
    const CnfFormula g = pre.run(f);

    Solver a;
    for (Var v = 0; v < f.numVars(); ++v) static_cast<void>(a.newVar());
    bool okA = true;
    for (const Clause& c : f.clauses()) okA = okA && a.addClause(c);
    const lbool verdictOriginal = okA ? a.solve() : lbool::False;

    lbool verdictSimplified = lbool::False;
    Assignment model;
    if (!pre.provedUnsat()) {
      Solver b;
      for (Var v = 0; v < g.numVars(); ++v) static_cast<void>(b.newVar());
      bool okB = true;
      for (const Clause& c : g.clauses()) okB = okB && b.addClause(c);
      verdictSimplified = okB ? b.solve() : lbool::False;
      if (verdictSimplified == lbool::True) {
        model.assign(static_cast<std::size_t>(g.numVars()), lbool::Undef);
        for (Var v = 0; v < g.numVars(); ++v) {
          model[static_cast<std::size_t>(v)] =
              b.model()[static_cast<std::size_t>(v)];
        }
      }
    }
    ASSERT_NE(verdictOriginal, lbool::Undef);
    EXPECT_EQ(verdictOriginal, verdictSimplified) << "seed " << seed;
    if (verdictSimplified == lbool::True) {
      EXPECT_TRUE(f.satisfies(pre.reconstruct(model))) << "seed " << seed;
    }
  }
}

TEST(FuzzWeighted, LadderInstancesThreeEnginesAgree) {
  std::mt19937_64 rng(7);
  for (int round = 0; round < 10; ++round) {
    WcnfFormula w(12);
    const Weight ladder[] = {1, 50, 5000};
    for (int i = 0; i < 30; ++i) {
      Clause c;
      for (int k = 0; k < 2; ++k) {
        c.push_back(mkLit(static_cast<Var>(rng() % 12), (rng() & 1) != 0));
      }
      w.addSoft(c, ladder[rng() % 3]);
    }
    BmoSolver bmo;
    auto oll = makeSolver("oll");
    auto wlin = makeSolver("wlinear");
    const MaxSatResult a = bmo.solve(w);
    const MaxSatResult b = oll->solve(w);
    const MaxSatResult c = wlin->solve(w);
    ASSERT_EQ(a.status, MaxSatStatus::Optimum) << "round " << round;
    ASSERT_EQ(b.status, MaxSatStatus::Optimum) << "round " << round;
    ASSERT_EQ(c.status, MaxSatStatus::Optimum) << "round " << round;
    EXPECT_EQ(a.cost, b.cost) << "round " << round;
    EXPECT_EQ(b.cost, c.cost) << "round " << round;
  }
}

TEST(FuzzMus, ExtractedMusesVerifyAtMediumScale) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const CnfFormula f = randomUnsat3Sat(20, 6.5, seed * 11);
    const MusResult r = extractMusDeletion(f, {});
    if (!r.minimal) continue;  // satisfiable draw
    // subsetUnsat is CDCL-backed: usable beyond the oracle's range.
    EXPECT_TRUE(subsetUnsat(f, r.clauseIndices)) << "seed " << seed;
    // Spot-check minimality: dropping the first and last clause each
    // restores satisfiability (full isMus is quadratic; spot is enough
    // at this scale, the small-scale tests do the exhaustive version).
    for (const std::size_t drop :
         {std::size_t{0}, r.clauseIndices.size() - 1}) {
      std::vector<int> sub;
      for (std::size_t j = 0; j < r.clauseIndices.size(); ++j) {
        if (j != drop) sub.push_back(r.clauseIndices[j]);
      }
      EXPECT_FALSE(subsetUnsat(f, sub)) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace msu
