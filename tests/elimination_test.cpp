/// Tests of bounded variable elimination (inprocessing round two):
/// elimination and resolvent counters, the model-reconstruction
/// witness (every model returned after a pass satisfies every clause
/// the solver ever held), the candidate restrictions (frozen variables
/// and scope-tagged clauses are untouchable), restoration when a new
/// clause or an assumption names an eliminated variable, the
/// pure-literal special case, and a randomized incremental fuzz
/// against the exhaustive SAT oracle.

#include <gtest/gtest.h>

#include <vector>

#include "cnf/oracle.h"
#include "encodings/sink.h"
#include "gen/random_cnf.h"
#include "sat/solver.h"

namespace msu {
namespace {

/// BVE isolated: equivalence substitution and probing off, so the
/// counters below are attributable to elimination alone.
Solver::Options bveOpts() {
  Solver::Options o;
  o.inprocess = true;
  o.inprocess_scc = false;
  o.inprocess_probe_props = 0;
  return o;
}

void addVars(Solver& s, int n) {
  while (s.numVars() < n) static_cast<void>(s.newVar());
}

/// True iff the solver's current model satisfies the clause.
bool modelSat(const Solver& s, const std::vector<Lit>& c) {
  for (const Lit p : c) {
    if (s.modelValue(p) == lbool::True) return true;
  }
  return false;
}

/// Loads the canonical two-clause elimination instance: with every
/// variable but v2 frozen, v2 is the only candidate, and resolving its
/// single positive against its single negative occurrence yields one
/// resolvent.
void loadSingleCandidate(Solver& s, std::vector<std::vector<Lit>>& original) {
  addVars(s, 5);
  for (const Var v : {0, 1, 3, 4}) s.setFrozen(v, true);
  original = {{posLit(0), posLit(1), posLit(2)},
              {posLit(3), posLit(4), negLit(2)}};
  for (const auto& c : original) EXPECT_TRUE(s.addClause(c));
}

TEST(Elimination, EliminatesAVariableAndReconstructsTheModel) {
  Solver s(bveOpts());
  std::vector<std::vector<Lit>> original;
  loadSingleCandidate(s, original);
  ASSERT_EQ(s.numClauses(), 2);

  ASSERT_TRUE(s.inprocessNow());
  EXPECT_EQ(s.stats().inproc_bve_eliminated, 1);
  EXPECT_EQ(s.stats().inproc_bve_resolvents, 1);
  EXPECT_EQ(s.numClauses(), 1);  // both originals replaced by the resolvent

  // The model is over the *original* formula: v2 is gone from the
  // database, but the witness stack must assign it so both removed
  // clauses hold.
  ASSERT_EQ(s.solve(), lbool::True);
  for (const auto& c : original) EXPECT_TRUE(modelSat(s, c));
  EXPECT_NE(s.modelValue(posLit(2)), lbool::Undef);
}

TEST(Elimination, FrozenVariablesAreNeverEliminated) {
  Solver s(bveOpts());
  addVars(s, 5);
  for (Var v = 0; v < 5; ++v) s.setFrozen(v, true);
  ASSERT_TRUE(s.addClause({posLit(0), posLit(1), posLit(2)}));
  ASSERT_TRUE(s.addClause({posLit(3), posLit(4), negLit(2)}));

  ASSERT_TRUE(s.inprocessNow());
  EXPECT_EQ(s.stats().inproc_bve_eliminated, 0);
  EXPECT_EQ(s.numClauses(), 2);
}

TEST(Elimination, ScopeTaggedClausesBanTheirVariables) {
  Solver s(bveOpts());
  SolverSink sink(s);
  addVars(s, 3);

  // The only clause is scope-tagged: its variables (and the activator)
  // are off limits, so the pass must eliminate nothing — the clause
  // belongs to the scope's lifecycle, not to elimination.
  const ScopeHandle act = sink.beginScope();
  sink.addClause({posLit(0), posLit(1), posLit(2)});
  sink.endScope(act);
  const int before = s.numClauses();

  ASSERT_TRUE(s.inprocessNow());
  EXPECT_EQ(s.stats().inproc_bve_eliminated, 0);
  EXPECT_EQ(s.numClauses(), before);

  // Retirement still owns the clause.
  const std::int64_t retiredBefore = s.stats().retired_clauses;
  s.retire(act.activator());
  EXPECT_EQ(s.stats().retired_clauses, retiredBefore + 1);
  EXPECT_EQ(s.solve(), lbool::True);
}

TEST(Elimination, AddClauseRestoresAnEliminatedVariable) {
  Solver s(bveOpts());
  std::vector<std::vector<Lit>> original;
  loadSingleCandidate(s, original);
  ASSERT_TRUE(s.inprocessNow());
  ASSERT_EQ(s.stats().inproc_bve_eliminated, 1);

  // A new clause naming v2 forces it back: the removed originals
  // re-enter the database and the new clause is attached unrewritten.
  ASSERT_TRUE(s.addClause({negLit(2), posLit(0)}));
  EXPECT_GE(s.stats().inproc_bve_restored, 1);
  EXPECT_GE(s.numClauses(), 3);  // resolvent + the two restored originals

  ASSERT_EQ(s.solve(), lbool::True);
  for (const auto& c : original) EXPECT_TRUE(modelSat(s, c));
  EXPECT_TRUE(modelSat(s, {negLit(2), posLit(0)}));
}

TEST(Elimination, AssumptionRestoresAnEliminatedVariable) {
  Solver s(bveOpts());
  std::vector<std::vector<Lit>> original;
  loadSingleCandidate(s, original);
  ASSERT_TRUE(s.inprocessNow());
  ASSERT_EQ(s.stats().inproc_bve_eliminated, 1);

  // Assuming an eliminated literal must restore the variable first:
  // under ~v2 the first original clause needs v0 or v1.
  const std::vector<Lit> assumps{negLit(2)};
  ASSERT_EQ(s.solve(assumps), lbool::True);
  EXPECT_GE(s.stats().inproc_bve_restored, 1);
  EXPECT_EQ(s.modelValue(negLit(2)), lbool::True);
  for (const auto& c : original) EXPECT_TRUE(modelSat(s, c));
}

TEST(Elimination, PureLiteralEliminatesWithoutResolvents) {
  Solver s(bveOpts());
  addVars(s, 3);
  s.setFrozen(0, true);
  s.setFrozen(1, true);
  const std::vector<Lit> only{posLit(0), posLit(1), posLit(2)};
  ASSERT_TRUE(s.addClause(only));

  // v2 occurs in one polarity only: zero resolvents, the clause is
  // carried entirely by the witness.
  ASSERT_TRUE(s.inprocessNow());
  EXPECT_EQ(s.stats().inproc_bve_eliminated, 1);
  EXPECT_EQ(s.stats().inproc_bve_resolvents, 0);
  EXPECT_EQ(s.numClauses(), 0);

  ASSERT_EQ(s.solve(), lbool::True);
  EXPECT_TRUE(modelSat(s, only));
}

TEST(Elimination, IncrementalFuzzAgainstOracleWithModelCheck) {
  // Random instances loaded in two batches with a forced pass and a
  // solve in between: the second batch's clauses routinely name
  // variables the first pass eliminated, exercising restoration. Every
  // SAT answer's model is checked against the *full original* clause
  // list; the final verdict is checked against the exhaustive oracle.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const CnfFormula f = randomKSat({.numVars = 10,
                                     .numClauses = 42,
                                     .clauseLen = 3,
                                     .seed = 9000 + seed});
    Solver::Options o = bveOpts();
    o.inprocess_interval = 1;
    Solver s(o);
    addVars(s, f.numVars());

    const auto& cls = f.clauses();
    const std::size_t half = cls.size() / 2;
    bool ok = true;
    for (std::size_t i = 0; i < half && ok; ++i) ok = s.addClause(cls[i]);
    if (ok) ok = s.inprocessNow();
    if (ok && s.solve() == lbool::True) {
      for (std::size_t i = 0; i < half; ++i) {
        EXPECT_TRUE(modelSat(s, cls[i])) << "seed " << seed << " clause " << i;
      }
    }
    for (std::size_t i = half; i < cls.size() && ok; ++i) {
      ok = s.addClause(cls[i]);
    }

    const bool truth = oracleSat(f).has_value();
    const lbool st = ok ? s.solve() : lbool::False;
    ASSERT_NE(st, lbool::Undef);
    EXPECT_EQ(st == lbool::True, truth) << "seed " << seed;
    if (st == lbool::True) {
      for (std::size_t i = 0; i < cls.size(); ++i) {
        EXPECT_TRUE(modelSat(s, cls[i])) << "seed " << seed << " clause " << i;
      }
    }
  }
}

}  // namespace
}  // namespace msu
