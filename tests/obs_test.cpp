/// Tests of the observability layer (src/obs): exact drop accounting of
/// the per-thread trace rings (single- and multi-threaded — the latter
/// is the TSan stress for the single-writer protocol), Chrome-trace
/// JSON well-formedness checked by an in-test JSON parser against a
/// real 4-worker portfolio run, histogram bucket boundaries, Prometheus
/// exposition, the ProgressSink's monotone bound folding, and the
/// observation-only gate: a solve with tracing off/null/on must be
/// bit-for-bit identical in stats, cost and model.

#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/msu4.h"
#include "gen/random_cnf.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "par/portfolio.h"

namespace msu {
namespace {

// ---------------------------------------------------------------------
// Minimal JSON parser (objects / arrays / strings / integers / literals)
// — enough to verify the exporter's output is real JSON, not just
// JSON-shaped text. Throws std::runtime_error on any malformation.

struct JsonValue {
  enum class Type { kObject, kArray, kString, kNumber, kBool, kNull };
  Type type = Type::kNull;
  std::map<std::string, JsonValue> object;
  std::vector<JsonValue> array;
  std::string string;
  double number = 0.0;
  bool boolean = false;

  const JsonValue& at(const std::string& key) const {
    const auto it = object.find(key);
    if (it == object.end()) throw std::runtime_error("missing key " + key);
    return it->second;
  }
  bool has(const std::string& key) const { return object.count(key) > 0; }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = parseValue();
    skipWs();
    if (pos_ != s_.size()) fail("trailing garbage");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error(what + " at offset " + std::to_string(pos_));
  }
  void skipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  char peek() {
    skipWs();
    if (pos_ >= s_.size()) fail("unexpected end");
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue parseValue() {
    switch (peek()) {
      case '{':
        return parseObject();
      case '[':
        return parseArray();
      case '"':
        return parseString();
      case 't':
      case 'f':
        return parseLiteral();
      case 'n':
        return parseLiteral();
      default:
        return parseNumber();
    }
  }

  JsonValue parseObject() {
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    expect('{');
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      JsonValue key = parseString();
      expect(':');
      v.object[key.string] = parseValue();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parseArray() {
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    expect('[');
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parseValue());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue parseString() {
    JsonValue v;
    v.type = JsonValue::Type::kString;
    expect('"');
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return v;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control char");
      if (c != '\\') {
        v.string += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("dangling escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"':
        case '\\':
        case '/':
          v.string += e;
          break;
        case 'n':
          v.string += '\n';
          break;
        case 't':
          v.string += '\t';
          break;
        case 'u':
          if (pos_ + 4 > s_.size()) fail("short \\u escape");
          pos_ += 4;
          v.string += '?';
          break;
        default:
          fail("bad escape");
      }
    }
  }

  JsonValue parseNumber() {
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    v.number = std::stod(s_.substr(start, pos_ - start));
    return v;
  }

  JsonValue parseLiteral() {
    JsonValue v;
    for (const auto& [word, type, b] :
         {std::tuple<const char*, JsonValue::Type, bool>{
              "true", JsonValue::Type::kBool, true},
          {"false", JsonValue::Type::kBool, false},
          {"null", JsonValue::Type::kNull, false}}) {
      if (s_.compare(pos_, std::string(word).size(), word) == 0) {
        pos_ += std::string(word).size();
        v.type = type;
        v.boolean = b;
        return v;
      }
    }
    fail("bad literal");
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------
// Drop accounting.

TEST(Tracer, ExactDropAccountingSingleThread) {
  obs::Tracer::Options to;
  to.capacity_per_thread = 16;  // the constructor's floor
  obs::Tracer tracer(to);
  tracer.setEnabled(true);
  for (int i = 0; i < 40; ++i) {
    tracer.instant(obs::TraceCat::kOracle, "tick", "i", i);
  }
  EXPECT_EQ(tracer.emitted(), 40);
  EXPECT_EQ(tracer.dropped(), 40 - 16);
  EXPECT_EQ(tracer.retained(), 16);
  EXPECT_EQ(tracer.threadsSeen(), 1);

  // The ring keeps the *suffix*: the export must contain exactly the
  // last 16 events, args 24..39.
  std::ostringstream os;
  tracer.exportChromeTrace(os);
  const std::string text = os.str();
  const JsonValue doc = JsonParser(text).parse();
  const JsonValue& events = doc.at("traceEvents");
  ASSERT_EQ(events.array.size(), 16u);
  std::set<int> args;
  for (const JsonValue& e : events.array) {
    args.insert(static_cast<int>(e.at("args").at("i").number));
  }
  EXPECT_EQ(*args.begin(), 24);
  EXPECT_EQ(*args.rbegin(), 39);
  EXPECT_EQ(static_cast<std::int64_t>(
                doc.at("otherData").at("dropped").number),
            24);
}

// The multi-thread emission stress: every thread hammers its own ring
// concurrently with reader-side accounting calls. Run under TSan (CI
// builds this test with -fsanitize=thread) this is the proof of the
// single-writer claim; in any build the final counters must be exact
// because each thread's drops are max(0, per-thread emits - capacity).
TEST(Tracer, MultiThreadEmitStressExactCounters) {
  constexpr int kThreads = 8;
  constexpr int kEmits = 5000;
  obs::Tracer::Options to;
  to.capacity_per_thread = 64;
  obs::Tracer tracer(to);
  tracer.setEnabled(true);

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      for (int i = 0; i < kEmits; ++i) {
        if ((i & 1) == 0) {
          tracer.instant(obs::TraceCat::kShare, "emit", "thread", t);
        } else {
          tracer.span(obs::TraceCat::kWorker, "work", i, i + 1, "thread", t);
        }
      }
    });
  }
  // Concurrent readers are allowed (poll-style accounting while workers
  // run); the values are racy snapshots but must never trip TSan.
  for (int probe = 0; probe < 100; ++probe) {
    static_cast<void>(tracer.emitted());
    static_cast<void>(tracer.dropped());
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(tracer.emitted(), std::int64_t{kThreads} * kEmits);
  EXPECT_EQ(tracer.dropped(), std::int64_t{kThreads} * (kEmits - 64));
  EXPECT_EQ(tracer.retained(), std::int64_t{kThreads} * 64);
  EXPECT_EQ(tracer.threadsSeen(), kThreads);

  // Post-join the rings are quiescent: the export must hold exactly the
  // retained events and parse as JSON.
  std::ostringstream os;
  tracer.exportChromeTrace(os);
  const std::string text = os.str();
  const JsonValue doc = JsonParser(text).parse();
  EXPECT_EQ(doc.at("traceEvents").array.size(),
            static_cast<std::size_t>(kThreads) * 64);
}

TEST(Tracer, DisabledAndNullEmitNothing) {
  obs::Tracer tracer;  // constructed disabled
  tracer.instant(obs::TraceCat::kOracle, "ignored");
  {
    obs::TraceSpan span(&tracer, obs::TraceCat::kOracle, "ignored");
    EXPECT_FALSE(span.active());
  }
  {
    obs::TraceSpan span(nullptr, obs::TraceCat::kOracle, "ignored");
    EXPECT_FALSE(span.active());
    span.arg("x", 1);  // must be harmless
  }
  obs::traceInstant(nullptr, obs::TraceCat::kCube, "ignored");
  EXPECT_EQ(tracer.emitted(), 0);
  EXPECT_EQ(tracer.threadsSeen(), 0);

  // Enabling *after* a guard was constructed must not make that guard
  // emit (the gate is sampled at construction).
  obs::TraceSpan late(&tracer, obs::TraceCat::kOracle, "late");
  tracer.setEnabled(true);
  EXPECT_FALSE(late.active());
}

TEST(Tracer, SpanGuardRecordsArgAndDuration) {
  obs::Tracer tracer;
  tracer.setEnabled(true);
  {
    obs::TraceSpan span(&tracer, obs::TraceCat::kCore, "trim-core");
    ASSERT_TRUE(span.active());
    span.arg("lits", 7);
    span.arg("lits", 9);  // last call wins
  }
  EXPECT_EQ(tracer.emitted(), 1);
  std::ostringstream os;
  tracer.exportChromeTrace(os);
  const std::string text = os.str();
  const JsonValue doc = JsonParser(text).parse();
  const JsonValue& e = doc.at("traceEvents").array.at(0);
  EXPECT_EQ(e.at("name").string, "trim-core");
  EXPECT_EQ(e.at("cat").string, "core");
  EXPECT_EQ(e.at("ph").string, "X");
  EXPECT_GE(e.at("dur").number, 0.0);
  EXPECT_EQ(static_cast<int>(e.at("args").at("lits").number), 9);
}

// ---------------------------------------------------------------------
// The acceptance-criterion trace: a 4-worker portfolio solve (what
// `maxsat_cli --threads 4 --trace out.json` runs) must export valid
// Chrome trace JSON with spans from multiple worker timelines.

TEST(Tracer, PortfolioRunExportsValidChromeTrace) {
  obs::Tracer tracer;
  tracer.setEnabled(true);

  PortfolioOptions po;
  po.threads = 4;
  po.base.sat.trace = &tracer;
  PortfolioSolver solver(po);
  const WcnfFormula wcnf =
      WcnfFormula::allSoft(randomUnsat3Sat(30, 5.6, 7));
  const MaxSatResult r = solver.solve(wcnf);
  ASSERT_EQ(r.status, MaxSatStatus::Optimum);

  std::ostringstream os;
  tracer.exportChromeTrace(os);
  const std::string text = os.str();
  const JsonValue doc = JsonParser(text).parse();  // throws on bad JSON
  const JsonValue& events = doc.at("traceEvents");
  ASSERT_EQ(events.type, JsonValue::Type::kArray);
  ASSERT_FALSE(events.array.empty());

  const std::set<std::string> knownCats{"oracle", "core",  "inproc",
                                        "restart", "share", "cube",
                                        "job",     "worker"};
  std::set<double> tids;
  std::set<std::string> names;
  double lastTs = -1.0;
  for (const JsonValue& e : events.array) {
    ASSERT_EQ(e.type, JsonValue::Type::kObject);
    EXPECT_TRUE(knownCats.count(e.at("cat").string) == 1)
        << e.at("cat").string;
    const std::string ph = e.at("ph").string;
    ASSERT_TRUE(ph == "X" || ph == "i") << ph;
    if (ph == "X") {
      EXPECT_GE(e.at("dur").number, 0.0);
    } else {
      EXPECT_EQ(e.at("s").string, "t");
    }
    EXPECT_GE(e.at("ts").number, lastTs);  // exporter sorts by time
    lastTs = e.at("ts").number;
    EXPECT_EQ(static_cast<int>(e.at("pid").number), 1);
    tids.insert(e.at("tid").number);
    names.insert(e.at("name").string);
  }
  // Four racing workers -> several distinct timelines, each bracketed
  // by a portfolio-worker span around its oracle solve spans.
  EXPECT_GE(tids.size(), 2u);
  EXPECT_TRUE(names.count("portfolio-worker") == 1);
  EXPECT_TRUE(names.count("solve") == 1);
  EXPECT_EQ(tracer.threadsSeen(), static_cast<int>(tids.size()));
}

// ---------------------------------------------------------------------
// Observation-only gate: trace off (null), present-but-disabled, and
// enabled must leave the solve bit-for-bit identical.

TEST(Tracer, TracingDoesNotPerturbTheSolve) {
  const WcnfFormula wcnf =
      WcnfFormula::allSoft(randomUnsat3Sat(36, 5.8, 5));

  struct Leg {
    MaxSatResult r;
  };
  const auto runLeg = [&wcnf](obs::Tracer* tracer) {
    MaxSatOptions o;
    o.sat.trace = tracer;
    Msu4Solver solver(o);
    Leg leg;
    leg.r = solver.solve(wcnf);
    EXPECT_EQ(leg.r.status, MaxSatStatus::Optimum);
    return leg;
  };

  obs::Tracer disabled;
  obs::Tracer enabled;
  enabled.setEnabled(true);
  const Leg null_leg = runLeg(nullptr);
  const Leg off_leg = runLeg(&disabled);
  const Leg on_leg = runLeg(&enabled);
  EXPECT_EQ(disabled.emitted(), 0);
  EXPECT_GT(enabled.emitted(), 0);

  for (const Leg* other : {&off_leg, &on_leg}) {
    EXPECT_EQ(null_leg.r.cost, other->r.cost);
    EXPECT_EQ(null_leg.r.satCalls, other->r.satCalls);
    EXPECT_EQ(null_leg.r.iterations, other->r.iterations);
    EXPECT_EQ(null_leg.r.model, other->r.model);
    // Every SolverStats field, via the same X-macro the dump paths use.
    std::vector<std::pair<std::string, std::int64_t>> a, b;
    null_leg.r.satStats.forEachField(
        [&a](const char* n, std::int64_t v) { a.emplace_back(n, v); });
    other->r.satStats.forEachField(
        [&b](const char* n, std::int64_t v) { b.emplace_back(n, v); });
    EXPECT_EQ(a, b);
  }
}

// ---------------------------------------------------------------------
// Histogram bucket boundaries (log2 rule: bucket i holds v <= 2^i).

TEST(Histogram, BucketBoundaryUnits) {
  using obs::Histogram;
  EXPECT_EQ(Histogram::bucketIndex(-5), 0);
  EXPECT_EQ(Histogram::bucketIndex(0), 0);
  EXPECT_EQ(Histogram::bucketIndex(1), 0);
  EXPECT_EQ(Histogram::bucketIndex(2), 1);
  EXPECT_EQ(Histogram::bucketIndex(3), 2);
  EXPECT_EQ(Histogram::bucketIndex(4), 2);
  EXPECT_EQ(Histogram::bucketIndex(5), 3);
  EXPECT_EQ(Histogram::bucketIndex(8), 3);
  EXPECT_EQ(Histogram::bucketIndex(9), 4);
  EXPECT_EQ(Histogram::bucketIndex(1024), 10);
  EXPECT_EQ(Histogram::bucketIndex(1025), 11);
  // Values beyond the largest finite bound land in the +Inf bucket.
  EXPECT_EQ(Histogram::bucketIndex(std::int64_t{1} << 62),
            Histogram::kBuckets - 1);

  EXPECT_EQ(Histogram::bucketUpperBound(0), 1);
  EXPECT_EQ(Histogram::bucketUpperBound(10), 1024);
  EXPECT_EQ(Histogram::bucketUpperBound(Histogram::kBuckets - 1), -1);

  // Boundary inclusivity matches Prometheus le semantics: an
  // observation equal to a bound counts in that bucket.
  Histogram h;
  h.observe(1);
  h.observe(2);
  h.observe(1024);
  h.observe(-3);  // clamps into bucket 0, excluded from the sum
  EXPECT_EQ(h.count(), 4);
  EXPECT_EQ(h.sum(), 1 + 2 + 1024);
  EXPECT_EQ(h.bucketCount(0), 2);
  EXPECT_EQ(h.bucketCount(1), 1);
  EXPECT_EQ(h.bucketCount(10), 1);
}

// ---------------------------------------------------------------------
// Prometheus exposition.

TEST(MetricsRegistry, PrometheusExposition) {
  obs::MetricsRegistry reg;
  reg.counter("msu_jobs_total", "Jobs ever submitted").add(3);
  reg.gauge("msu_queue_depth", "Jobs waiting").set(2);
  obs::Histogram& h = reg.histogram("msu_solve_us", "Solve latency");
  h.observe(1);
  h.observe(3);
  h.observe(std::int64_t{1} << 40);  // +Inf bucket

  std::ostringstream os;
  reg.writeProm(os);
  const std::string text = os.str();

  EXPECT_NE(text.find("# HELP msu_jobs_total Jobs ever submitted\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE msu_jobs_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("msu_jobs_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE msu_queue_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("msu_queue_depth 2\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE msu_solve_us histogram\n"), std::string::npos);
  // Cumulative buckets: le="1" holds 1, le="2" still 1, le="4" adds the
  // observation of 3, +Inf holds everything.
  EXPECT_NE(text.find("msu_solve_us_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("msu_solve_us_bucket{le=\"2\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("msu_solve_us_bucket{le=\"4\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("msu_solve_us_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("msu_solve_us_count 3\n"), std::string::npos);

  // Name order: counter < gauge < histogram alphabetically here.
  EXPECT_LT(text.find("msu_jobs_total"), text.find("msu_queue_depth"));
  EXPECT_LT(text.find("msu_queue_depth"), text.find("msu_solve_us"));

  // Re-registering under a different kind is a naming bug.
  EXPECT_THROW(reg.gauge("msu_jobs_total"), std::logic_error);
  EXPECT_THROW(reg.histogram("msu_queue_depth"), std::logic_error);
  // Find-or-create returns the same instance.
  reg.counter("msu_jobs_total").add(1);
  EXPECT_EQ(reg.counter("msu_jobs_total").value(), 4);
}

// ---------------------------------------------------------------------
// ProgressSink monotone folding.

TEST(ProgressSink, BoundsFoldMonotonically) {
  obs::ProgressSink sink;
  EXPECT_EQ(sink.upper_bound.load(), obs::ProgressSink::kNoUpper);

  sink.noteBounds(2, 10);
  EXPECT_EQ(sink.lower_bound.load(), 2);
  EXPECT_EQ(sink.upper_bound.load(), 10);

  // A stale writer can never loosen either bound.
  sink.noteBounds(1, 12);
  EXPECT_EQ(sink.lower_bound.load(), 2);
  EXPECT_EQ(sink.upper_bound.load(), 10);

  sink.noteBounds(5, 7);
  EXPECT_EQ(sink.lower_bound.load(), 5);
  EXPECT_EQ(sink.upper_bound.load(), 7);

  sink.addConflicts(10);
  sink.addConflicts(-4);  // deltas must be positive to count
  sink.addSatCalls(3);
  EXPECT_EQ(sink.conflicts.load(), 10);
  EXPECT_EQ(sink.sat_calls.load(), 3);

  sink.addMemBytes(1000);
  sink.addMemBytes(-400);  // withdrawal (session destructor) is legal
  EXPECT_EQ(sink.mem_bytes.load(), 600);
}

}  // namespace
}  // namespace msu
