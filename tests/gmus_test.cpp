/// Tests for group-MUS extraction (the design-debugging granularity):
///  * crafted instances with known group MUSes;
///  * background-only unsatisfiability yields the empty group MUS;
///  * both extractors produce oracle-verified minimal group sets on
///    randomized grouped formulas;
///  * a miniature gate-grouped debugging scenario: the group MUS pins
///    the faulty gate;
///  * budget behaviour.

#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "gen/random_cnf.h"
#include "mus/gcnf_io.h"
#include "mus/gmus.h"

namespace msu {
namespace {

/// Groups: {x}{~x} | {y}{~y} — two independent contradictions, each a
/// singleton group pair.
GroupCnf twoContradictions() {
  GroupCnf g(2);
  const int g0 = g.addGroup();
  const int g1 = g.addGroup();
  const int g2 = g.addGroup();
  const int g3 = g.addGroup();
  g.addToGroup(g0, {posLit(0)});
  g.addToGroup(g1, {negLit(0)});
  g.addToGroup(g2, {posLit(1)});
  g.addToGroup(g3, {negLit(1)});
  return g;
}

using GExtract = GroupMusResult (*)(const GroupCnf&, const MusOptions&);

struct GCase {
  const char* name;
  GExtract fn;
};

class GroupMusTest : public ::testing::TestWithParam<GCase> {};

TEST_P(GroupMusTest, FindsAPairAmongTwoContradictions) {
  const GroupCnf g = twoContradictions();
  const GroupMusResult r = GetParam().fn(g, {});
  ASSERT_TRUE(r.minimal);
  EXPECT_EQ(r.size(), 2);
  EXPECT_TRUE(r.groups == (std::vector<int>{0, 1}) ||
              r.groups == (std::vector<int>{2, 3}));
  EXPECT_TRUE(isGroupMus(g, r.groups));
}

TEST_P(GroupMusTest, BackgroundUnsatGivesEmptyGroupMus) {
  GroupCnf g(1);
  g.addBackground({posLit(0)});
  g.addBackground({negLit(0)});
  const int g0 = g.addGroup();
  g.addToGroup(g0, {posLit(0)});
  const GroupMusResult r = GetParam().fn(g, {});
  ASSERT_TRUE(r.minimal);
  EXPECT_TRUE(r.groups.empty());
}

TEST_P(GroupMusTest, SatisfiableInputGivesNonMinimalEmpty) {
  GroupCnf g(2);
  const int g0 = g.addGroup();
  g.addToGroup(g0, {posLit(0), posLit(1)});
  const GroupMusResult r = GetParam().fn(g, {});
  EXPECT_FALSE(r.minimal);
  EXPECT_TRUE(r.groups.empty());
}

TEST_P(GroupMusTest, MultiClauseGroupsAreAllOrNothing) {
  // Group 0 = {x, y}, group 1 = {~x ∨ ~y}: together SAT (x=1,y=1 fails
  // group 1... actually x=1,y=1 falsifies ~x∨~y) — craft carefully:
  // group 0 forces x and y; group 1 forbids both; they conflict only
  // jointly. Group 2 is irrelevant padding.
  GroupCnf g(3);
  const int g0 = g.addGroup();
  g.addToGroup(g0, {posLit(0)});
  g.addToGroup(g0, {posLit(1)});
  const int g1 = g.addGroup();
  g.addToGroup(g1, {negLit(0), negLit(1)});
  const int g2 = g.addGroup();
  g.addToGroup(g2, {posLit(2)});
  const GroupMusResult r = GetParam().fn(g, {});
  ASSERT_TRUE(r.minimal);
  EXPECT_EQ(r.groups, (std::vector<int>{0, 1}));
  static_cast<void>(g2);
}

TEST_P(GroupMusTest, RandomGroupedFormulasYieldVerifiedGroupMuses) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const CnfFormula f = randomUnsat3Sat(9, 8.0, seed * 3);
    // Partition clauses round-robin into 6 groups.
    GroupCnf g(f.numVars());
    for (int i = 0; i < 6; ++i) static_cast<void>(g.addGroup());
    for (int i = 0; i < f.numClauses(); ++i) {
      g.addToGroup(i % 6, f.clause(i));
    }
    const GroupMusResult r = GetParam().fn(g, {});
    if (!r.minimal && r.groups.empty()) continue;  // satisfiable draw
    ASSERT_TRUE(r.minimal) << "seed " << seed;
    EXPECT_TRUE(isGroupMus(g, r.groups))
        << GetParam().name << " seed " << seed;
  }
}

TEST_P(GroupMusTest, GateGroupedDebuggingPinsTheFaultyGate) {
  // Miniature debugging scenario. Correct design: g1: a = in1 AND in2,
  // g2: b = NOT a, output b. Faulty chip observed: in1=1, in2=1, b=1
  // (correct answer is b=0). Background: observed I/O. Groups: the two
  // gates' CNF. The AND gate is consistent with the observation; only
  // the inverter contradicts it, so the group MUS is {inverter} alone —
  // MaxSAT/MUS-style fault localization at gate granularity.
  // Vars: 0=in1, 1=in2, 2=a, 3=b.
  GroupCnf g(4);
  g.addBackground({posLit(0)});  // in1 = 1
  g.addBackground({posLit(1)});  // in2 = 1
  g.addBackground({posLit(3)});  // observed b = 1
  const int andGate = g.addGroup();
  g.addToGroup(andGate, {negLit(0), negLit(1), posLit(2)});
  g.addToGroup(andGate, {posLit(0), negLit(2)});
  g.addToGroup(andGate, {posLit(1), negLit(2)});
  const int invGate = g.addGroup();
  g.addToGroup(invGate, {posLit(2), posLit(3)});
  g.addToGroup(invGate, {negLit(2), negLit(3)});

  const GroupMusResult r = GetParam().fn(g, {});
  ASSERT_TRUE(r.minimal);
  EXPECT_EQ(r.groups, (std::vector<int>{andGate, invGate}));
  // Both gates participate: AND forces a=1, inverter then forces b=0,
  // contradicting the observation. Removing either group restores
  // consistency — the debugger reports both as candidate fault sites.
  EXPECT_TRUE(isGroupMus(g, r.groups));
}

INSTANTIATE_TEST_SUITE_P(
    BothExtractors, GroupMusTest,
    ::testing::Values(GCase{"deletion", &extractGroupMusDeletion},
                      GCase{"dichotomic", &extractGroupMusDichotomic}),
    [](const ::testing::TestParamInfo<GCase>& info) {
      return info.param.name;
    });

TEST(GroupMusBudgetTest, BudgetExpiryReturnsUnminimizedSet) {
  const CnfFormula f = randomUnsat3Sat(12, 7.5, 5);
  GroupCnf g(f.numVars());
  for (int i = 0; i < 8; ++i) static_cast<void>(g.addGroup());
  for (int i = 0; i < f.numClauses(); ++i) g.addToGroup(i % 8, f.clause(i));
  MusOptions opts;
  opts.budget = Budget::conflicts(1);
  const GroupMusResult r = extractGroupMusDeletion(g, opts);
  if (!r.minimal && !r.groups.empty()) {
    EXPECT_TRUE(groupSubsetUnsat(g, r.groups));
  }
}

TEST(GcnfIoTest, ParseBasics) {
  const GroupCnf g = parseGcnf(
      "c a comment\n"
      "p gcnf 3 4 2\n"
      "{0} 1 -2 0\n"
      "{1} 2 0\n"
      "{1} -3 0\n"
      "{2} 3 0\n");
  EXPECT_EQ(g.numVars(), 3);
  EXPECT_EQ(g.numGroups(), 2);
  EXPECT_EQ(g.background().size(), 1u);
  EXPECT_EQ(g.group(0).size(), 2u);
  EXPECT_EQ(g.group(1).size(), 1u);
  EXPECT_EQ(g.group(0)[0], (Clause{posLit(1)}));
}

TEST(GcnfIoTest, RoundTrip) {
  const GroupCnf original = twoContradictions();
  std::ostringstream out;
  writeGcnf(out, original);
  const GroupCnf reparsed = parseGcnf(out.str());
  ASSERT_EQ(reparsed.numGroups(), original.numGroups());
  EXPECT_EQ(reparsed.numVars(), original.numVars());
  for (int g = 0; g < original.numGroups(); ++g) {
    EXPECT_EQ(reparsed.group(g), original.group(g)) << "group " << g;
  }
  // Extraction results coincide as well.
  const GroupMusResult a = extractGroupMusDeletion(original, {});
  const GroupMusResult b = extractGroupMusDeletion(reparsed, {});
  ASSERT_TRUE(a.minimal);
  ASSERT_TRUE(b.minimal);
  EXPECT_EQ(a.groups, b.groups);
}

TEST(GcnfIoTest, MalformedInputsThrow) {
  EXPECT_THROW(parseGcnf("{0} 1 0\n"), GcnfError);           // no header
  EXPECT_THROW(parseGcnf("p gcnf 2 1 1\n1 0\n"), GcnfError); // missing tag
  EXPECT_THROW(parseGcnf("p gcnf 2 1 1\n{2} 1 0\n"), GcnfError);  // range
  EXPECT_THROW(parseGcnf("p gcnf 2 1 1\n{1} 5 0\n"), GcnfError);  // lit
  EXPECT_THROW(parseGcnf("p gcnf 2 1 1\n{1} 1\n"), GcnfError);  // truncated
  EXPECT_THROW(parseGcnf("p cnf 2 1\n"), GcnfError);          // wrong fmt
}

TEST(GroupCnfTest, VariableUniverseGrowsOnDemand) {
  GroupCnf g;
  const int g0 = g.addGroup();
  g.addToGroup(g0, {posLit(5)});
  EXPECT_EQ(g.numVars(), 6);
  g.addBackground({negLit(9)});
  EXPECT_EQ(g.numVars(), 10);
}

}  // namespace
}  // namespace msu
