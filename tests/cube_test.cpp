/// \file cube_test.cpp
/// \brief Tests of the cube-and-conquer subsystem: the Chase–Lev
///        work-stealing deque (LIFO owner / FIFO thief contract, full
///        behavior, exactly-once partitioning under concurrent theft),
///        the lookahead splitter (coverage of every hard model, root
///        refutation), and the CubeSolver itself (single-root-cube
///        delegation bit-for-bit equal to the base engine, fuzzed
///        answer agreement with the exhaustive oracle, hard-UNSAT
///        detection, cooperative interruption).

#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <thread>
#include <vector>

#include "cnf/oracle.h"
#include "gen/pigeonhole.h"
#include "gen/random_cnf.h"
#include "harness/factory.h"
#include "par/cube.h"
#include "par/worksteal.h"

namespace msu {
namespace {

TEST(WorkSteal, OwnerIsLifoThievesAreFifo) {
  WorkStealingDeque<int> dq(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(dq.push(i));
  EXPECT_EQ(dq.sizeApprox(), 5);

  // A thief takes the oldest item, the owner the newest.
  auto s = dq.steal();
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(*s, 0);
  auto p = dq.pop();
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, 4);
  EXPECT_EQ(*dq.steal(), 1);
  EXPECT_EQ(*dq.pop(), 3);
  EXPECT_EQ(*dq.pop(), 2);
  EXPECT_FALSE(dq.pop().has_value());
  EXPECT_FALSE(dq.steal().has_value());
  EXPECT_EQ(dq.sizeApprox(), 0);
}

TEST(WorkSteal, PushFailsWhenFullAndRecoversAfterPop) {
  WorkStealingDeque<int> dq(4);  // capacity rounds to exactly 4
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(dq.push(i));
  EXPECT_FALSE(dq.push(99));
  EXPECT_EQ(*dq.pop(), 3);
  EXPECT_TRUE(dq.push(99));
  EXPECT_EQ(*dq.pop(), 99);
}

TEST(WorkSteal, ConcurrentThievesPartitionExactlyOnce) {
  // The owner pushes N items then drains its own deque while three
  // thieves steal concurrently; every item must be taken exactly once,
  // none lost, none duplicated. Run under TSan in CI.
  constexpr int kItems = 1 << 12;
  constexpr int kThieves = 3;
  WorkStealingDeque<int> dq(kItems);
  std::vector<std::atomic<int>> taken_count(kItems);
  std::atomic<int> taken_total{0};
  std::atomic<bool> start{false};

  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int i = 0; i < kThieves; ++i) {
    thieves.emplace_back([&] {
      while (!start.load()) std::this_thread::yield();
      while (taken_total.load() < kItems) {
        if (auto v = dq.steal()) {
          taken_count[static_cast<std::size_t>(*v)].fetch_add(1);
          taken_total.fetch_add(1);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }

  for (int i = 0; i < kItems; ++i) ASSERT_TRUE(dq.push(i));
  start.store(true);
  while (taken_total.load() < kItems) {
    if (auto v = dq.pop()) {
      taken_count[static_cast<std::size_t>(*v)].fetch_add(1);
      taken_total.fetch_add(1);
    }
  }
  for (std::thread& t : thieves) t.join();

  for (int i = 0; i < kItems; ++i) {
    ASSERT_EQ(taken_count[static_cast<std::size_t>(i)].load(), 1)
        << "item " << i;
  }
  EXPECT_EQ(dq.sizeApprox(), 0);
}

/// Evaluates `lits` as a clause under the assignment encoded in the
/// low numVars bits of `mask`.
bool clauseTrue(std::span<const Lit> lits, std::uint32_t mask) {
  for (const Lit p : lits) {
    const bool v = ((mask >> p.var()) & 1u) != 0;
    if (p.positive() == v) return true;
  }
  return false;
}

TEST(CubeSplit, CubesCoverEveryHardModel) {
  // The correctness keystone of cube-and-conquer: the emitted cube set
  // must cover every model of the hard clauses (failed literals and
  // pruned nodes may only cut hard-UNSAT space). Check exhaustively on
  // a 12-variable instance.
  const CnfFormula base = randomKSat(
      {.numVars = 12, .numClauses = 30, .clauseLen = 3, .seed = 77});
  WcnfFormula w(base.numVars());
  for (int i = 0; i < base.numClauses(); ++i) w.addHard(base.clause(i));

  CubeSplitOptions so;
  so.maxCubes = 8;
  so.maxDepth = 6;
  const CubeSplitResult split = splitCubes(w, so);
  ASSERT_FALSE(split.rootConflict);
  ASSERT_FALSE(split.cubes.empty());
  // The target is soft (open siblings still emit leaves) but bounded.
  EXPECT_LE(static_cast<int>(split.cubes.size()), so.maxCubes + so.maxDepth);
  for (const auto& cube : split.cubes) {
    EXPECT_LE(static_cast<int>(cube.size()),
              so.maxDepth + 64);  // decisions + asserted failed literals
  }

  int hardModels = 0;
  for (std::uint32_t mask = 0; mask < (1u << w.numVars()); ++mask) {
    bool sat = true;
    for (const Clause& c : w.hard()) {
      if (!clauseTrue(c, mask)) {
        sat = false;
        break;
      }
    }
    if (!sat) continue;
    ++hardModels;
    bool covered = false;
    for (const auto& cube : split.cubes) {
      bool consistent = true;
      for (const Lit p : cube) {
        const bool v = ((mask >> p.var()) & 1u) != 0;
        if (p.positive() != v) {
          consistent = false;
          break;
        }
      }
      if (consistent) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << "hard model " << mask << " not under any cube";
  }
  ASSERT_GT(hardModels, 0) << "instance accidentally hard-UNSAT";
}

TEST(CubeSplit, RootConflictOnBcpRefutableHards) {
  WcnfFormula w(3);
  w.addHard({posLit(0)});
  w.addHard({negLit(0), posLit(1)});
  w.addHard({negLit(1)});
  const CubeSplitResult split = splitCubes(w, CubeSplitOptions{});
  EXPECT_TRUE(split.rootConflict);
  EXPECT_TRUE(split.cubes.empty());
}

TEST(CubeSolver, SingleRootCubeDelegatesToBaseEngineBitForBit) {
  // maxDepth = 0 forces a single empty root cube, which the solver
  // answers by delegating to the wlinear base engine — the determinism
  // gate: identical answer *and* identical search trace.
  std::mt19937_64 rng(11);
  const CnfFormula base = randomKSat(
      {.numVars = 10, .numClauses = 44, .clauseLen = 3, .seed = 501});
  WcnfFormula w(base.numVars());
  for (int i = 0; i < base.numClauses(); ++i) {
    if (i % 6 == 0) {
      w.addHard(base.clause(i));
    } else {
      w.addSoft(base.clause(i), static_cast<Weight>(1 + rng() % 5));
    }
  }

  CubeOptions co;
  co.threads = 1;
  co.split.maxCubes = 1;
  co.split.maxDepth = 0;
  CubeSolver cubes(co);
  const MaxSatResult rc = cubes.solve(w);
  EXPECT_EQ(cubes.lastNumCubes(), 1);
  EXPECT_EQ(cubes.lastSteals(), 0);

  auto wlinear = makeSolver("wlinear", MaxSatOptions{});
  ASSERT_NE(wlinear, nullptr);
  const MaxSatResult rw = wlinear->solve(w);
  ASSERT_EQ(rc.status, rw.status);
  EXPECT_EQ(rc.cost, rw.cost);
  EXPECT_EQ(rc.satCalls, rw.satCalls);
  EXPECT_EQ(rc.iterations, rw.iterations);
  EXPECT_EQ(rc.satStats.conflicts, rw.satStats.conflicts);
  EXPECT_EQ(rc.satStats.decisions, rw.satStats.decisions);
  EXPECT_EQ(rc.satStats.propagations, rw.satStats.propagations);
  EXPECT_EQ(rc.satStats.shared_exported, 0);
  EXPECT_EQ(rc.satStats.shared_imported, 0);
}

TEST(CubeSolver, FuzzAgreesWithExhaustiveOracle) {
  // Random WCNFs, weighted and unweighted, conquered by 3 workers with
  // clause sharing: the reported optimum must match the exhaustive
  // oracle and the model must certify the cost.
  std::mt19937_64 rng(23);
  for (int round = 0; round < 6; ++round) {
    const CnfFormula base =
        randomKSat({.numVars = 9,
                    .numClauses = 40,
                    .clauseLen = 3,
                    .seed = 7100 + static_cast<std::uint64_t>(round)});
    WcnfFormula w(base.numVars());
    const bool weighted = (round % 2) == 1;
    for (int i = 0; i < base.numClauses(); ++i) {
      if (i % 5 == 0) {
        w.addHard(base.clause(i));
      } else {
        w.addSoft(base.clause(i),
                  weighted ? static_cast<Weight>(1 + rng() % 4) : 1);
      }
    }
    const OracleResult truth = oracleMaxSat(w);
    if (!truth.optimumCost.has_value()) continue;  // hards unsat: skip

    CubeOptions co;
    co.threads = 3;
    co.base.sat.check_cross_scope = true;
    CubeSolver cubes(co);
    const MaxSatResult r = cubes.solve(w);
    ASSERT_EQ(r.status, MaxSatStatus::Optimum) << "round " << round;
    EXPECT_EQ(r.cost, *truth.optimumCost) << "round " << round;
    const auto modelCost = w.cost(r.model);
    ASSERT_TRUE(modelCost.has_value()) << "round " << round;
    EXPECT_EQ(*modelCost, r.cost) << "round " << round;
    EXPECT_GE(cubes.lastNumCubes(), 1) << "round " << round;
  }
}

TEST(CubeSolver, HardUnsatIsDetected) {
  // Pigeonhole hards have no BCP-visible conflict at the root, so the
  // splitter emits cubes and every one must come back UNSAT with no
  // bound constraint involved — only then may the solver answer
  // UnsatisfiableHard.
  const CnfFormula php = pigeonhole(5, 4);
  WcnfFormula w(php.numVars());
  for (const Clause& c : php.clauses()) w.addHard(c);
  w.addSoft({posLit(0)}, 1);
  CubeOptions co;
  co.threads = 2;
  CubeSolver cubes(co);
  const MaxSatResult r = cubes.solve(w);
  EXPECT_EQ(r.status, MaxSatStatus::UnsatisfiableHard);
}

TEST(CubeSolver, ExternalInterruptStopsWorkersWithUnknown) {
  // A pre-raised caller interrupt flag must stop the conquest early —
  // chained to the workers through the monitor thread, since worker
  // budget copies rewire their own interrupt slot to the shared stop
  // flag. Large enough pigeonhole that cubes cannot all finish first.
  const CnfFormula php = pigeonhole(8, 7);
  WcnfFormula w(php.numVars());
  for (const Clause& c : php.clauses()) w.addHard(c);
  w.addSoft({posLit(0)}, 1);

  std::atomic<bool> stop{true};
  CubeOptions co;
  co.threads = 2;
  co.base.budget.setInterrupt(&stop);
  CubeSolver cubes(co);
  const MaxSatResult r = cubes.solve(w);
  EXPECT_EQ(r.status, MaxSatStatus::Unknown);
}

TEST(CubeSolver, FactorySpellingsAndName) {
  EXPECT_NE(makeSolver("cubes", MaxSatOptions{}), nullptr);
  auto c2 = makeSolver("cubes2", MaxSatOptions{});
  ASSERT_NE(c2, nullptr);
  EXPECT_EQ(c2->name(), "cubes-2");
  EXPECT_EQ(makeSolver("cubesx", MaxSatOptions{}), nullptr);
  EXPECT_EQ(makeSolver("cubes1234", MaxSatOptions{}), nullptr);
}

}  // namespace
}  // namespace msu
