/// Tests for the solver's bulk-load path (beginBulkLoad/endBulkLoad):
/// the bit-for-bit gate against per-clause addClause, guard nesting,
/// unit handling, the load-time memory cap (structured kMemory abort
/// instead of OOM), and the formula-free fastLoadDimacsCnfInto entry.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "cnf/dimacs.h"
#include "cnf/fastparse.h"
#include "cnf/formula.h"
#include "gen/random_cnf.h"
#include "sat/budget.h"
#include "sat/solver.h"

namespace msu {
namespace {

Solver::Options plainOpts() {
  Solver::Options o;
  o.inprocess = false;  // beginBulkLoad is a pure-load mode
  return o;
}

void loadIncremental(Solver& s, const CnfFormula& f) {
  while (s.numVars() < f.numVars()) static_cast<void>(s.newVar());
  for (const Clause& c : f.clauses()) {
    if (!s.addClause(c)) return;
  }
}

void loadBulk(Solver& s, const CnfFormula& f) {
  while (s.numVars() < f.numVars()) static_cast<void>(s.newVar());
  const Solver::BulkLoadGuard bulk(s);
  for (const Clause& c : f.clauses()) {
    if (!s.addClause(c)) return;
  }
}

/// Search-relevant counters that must match bit-for-bit when the two
/// load paths produce identical solver states.
std::vector<std::int64_t> searchFingerprint(const Solver& s) {
  const SolverStats& st = s.stats();
  return {st.decisions,    st.propagations,        st.conflicts,
          st.restarts,     st.learnt_clauses,      st.learnt_literals,
          st.blocker_hits, st.watch_bytes_visited, st.binary_propagations,
          st.long_propagations};
}

TEST(BulkLoad, BitForBitEquivalentToIncrementalOnFuzzCorpus) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    RandomCnfParams p;
    p.numVars = 16 + static_cast<int>(seed % 5) * 4;
    p.numClauses = 40 + static_cast<int>(seed) * 23;
    p.seed = seed;
    const CnfFormula f = randomKSat(p);

    Solver inc(plainOpts());
    loadIncremental(inc, f);
    Solver bulk(plainOpts());
    loadBulk(bulk, f);

    ASSERT_EQ(inc.okay(), bulk.okay()) << "seed " << seed;
    ASSERT_EQ(inc.numClauses(), bulk.numClauses()) << "seed " << seed;
    if (!inc.okay()) continue;

    const lbool ri = inc.solve();
    const lbool rb = bulk.solve();
    ASSERT_EQ(ri, rb) << "seed " << seed;
    // Identical watch-list contents mean the searches are the same
    // search, decision for decision.
    EXPECT_EQ(searchFingerprint(inc), searchFingerprint(bulk))
        << "seed " << seed;
    if (ri == lbool::True) EXPECT_EQ(inc.model(), bulk.model());
  }
}

TEST(BulkLoad, UnitsPropagateOnceAtEndOfLoad) {
  Solver s(plainOpts());
  for (int i = 0; i < 4; ++i) static_cast<void>(s.newVar());
  {
    const Solver::BulkLoadGuard bulk(s);
    // Binary first so it lands in the deferred-attach buffer; the unit
    // that triggers it arrives after. (Order matters: a binary added
    // AFTER the unit is strengthened to a unit by the root-level
    // simplification and enqueues immediately — same as incremental.)
    ASSERT_TRUE(s.addClause({negLit(0), posLit(1)}));
    ASSERT_TRUE(s.addClause({posLit(0)}));
    // Units enqueue immediately, but the implication 0 -> 1 is deferred.
    EXPECT_EQ(s.value(Var{0}), lbool::True);
    EXPECT_EQ(s.value(Var{1}), lbool::Undef);
  }
  EXPECT_TRUE(s.okay());
  EXPECT_EQ(s.value(Var{1}), lbool::True);  // endBulkLoad ran propagate()
  EXPECT_EQ(s.solve(), lbool::True);
}

TEST(BulkLoad, RootConflictSurfacesAtEndOfLoad) {
  Solver s(plainOpts());
  for (int i = 0; i < 2; ++i) static_cast<void>(s.newVar());
  bool addOk = true;
  {
    const Solver::BulkLoadGuard bulk(s);
    // The contradiction needs propagation to surface (0 -> 1, 0 -> ¬1),
    // and propagation is exactly what bulk mode defers.
    addOk = addOk && s.addClause({negLit(0), posLit(1)});
    addOk = addOk && s.addClause({negLit(0), negLit(1)});
    addOk = addOk && s.addClause({posLit(0)});
    EXPECT_TRUE(addOk);  // not detected until the load finishes
  }
  EXPECT_FALSE(s.okay());
  EXPECT_EQ(s.solve(), lbool::False);
}

TEST(BulkLoad, GuardNestsAndDisables) {
  Solver s(plainOpts());
  static_cast<void>(s.newVar());
  static_cast<void>(s.newVar());
  {
    const Solver::BulkLoadGuard outer(s);
    {
      const Solver::BulkLoadGuard inner(s);  // nested: same scope
      ASSERT_TRUE(s.addClause({negLit(0), posLit(1)}));
      ASSERT_TRUE(s.addClause({posLit(0)}));
    }
    // Inner exit must not flush: still one bulk scope open.
    EXPECT_EQ(s.value(Var{1}), lbool::Undef);
  }
  EXPECT_EQ(s.value(Var{1}), lbool::True);

  Solver t(plainOpts());
  static_cast<void>(t.newVar());
  {
    const Solver::BulkLoadGuard off(t, /*enable=*/false);  // no-op guard
    ASSERT_TRUE(t.addClause({posLit(0)}));
    EXPECT_EQ(t.value(Var{0}), lbool::True);  // incremental semantics untouched
  }
}

TEST(BulkLoad, MemoryCapAbortsLoadWithStructuredReason) {
  Solver s(plainOpts());
  std::atomic<int> abort_sink{static_cast<int>(AbortReason::kNone)};
  Budget b;
  b.setMaxMemory(1);  // everything exceeds this
  b.setAbortSink(&abort_sink);
  s.setBudget(b);

  RandomCnfParams p;
  p.numVars = 60;
  p.numClauses = 3000;  // enough adds to pass the periodic cap check
  const CnfFormula f = randomKSat(p);
  {
    const Solver::BulkLoadGuard bulk(s);
    while (s.numVars() < f.numVars()) static_cast<void>(s.newVar());
    for (const Clause& c : f.clauses()) static_cast<void>(s.addClause(c));
  }
  // Poisoned load: NOT "unsat" (okay() stays true); the next solve
  // aborts immediately with the structured memory reason.
  EXPECT_TRUE(s.okay());
  EXPECT_EQ(s.solve(), lbool::Undef);
  EXPECT_EQ(static_cast<AbortReason>(abort_sink.load()), AbortReason::kMemory);
}

TEST(BulkLoad, FastLoadReportsMemStats) {
  RandomCnfParams p;
  p.numVars = 40;
  p.numClauses = 400;
  const CnfFormula f = randomKSat(p);
  const std::string text = toDimacsString(f);
  Solver s(plainOpts());
  static_cast<void>(fastLoadDimacsCnfInto(
      InputBuffer::borrow(text.data(), text.size()), s));
  EXPECT_EQ(s.numClauses(), f.numClauses());
  // endBulkLoad refreshed the memory gauges.
  EXPECT_GT(s.stats().mem_bytes, 0);
  EXPECT_GT(s.stats().mem_arena_bytes, 0);
  EXPECT_GT(s.stats().mem_watch_bytes, 0);
  EXPECT_GE(s.stats().mem_bytes,
            s.stats().mem_arena_bytes + s.stats().mem_watch_bytes);
}

}  // namespace
}  // namespace msu
