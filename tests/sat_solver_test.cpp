/// Unit and property tests for the CDCL solver: propagation, conflicts,
/// assumptions, core extraction, incremental use, budgets, and random
/// cross-checks against the exhaustive oracle.

#include <gtest/gtest.h>

#include <random>

#include "cnf/formula.h"
#include "cnf/oracle.h"
#include "gen/pigeonhole.h"
#include "gen/random_cnf.h"
#include "sat/solver.h"

namespace msu {
namespace {

/// Loads a formula into a fresh solver.
void load(Solver& s, const CnfFormula& f) {
  while (s.numVars() < f.numVars()) static_cast<void>(s.newVar());
  for (const Clause& c : f.clauses()) {
    if (!s.addClause(c)) return;
  }
}

TEST(SatSolver, EmptyFormulaIsSat) {
  Solver s;
  EXPECT_EQ(s.solve(), lbool::True);
}

TEST(SatSolver, SingleUnit) {
  Solver s;
  const Var x = s.newVar();
  ASSERT_TRUE(s.addClause({posLit(x)}));
  EXPECT_EQ(s.solve(), lbool::True);
  EXPECT_EQ(s.model()[x], lbool::True);
}

TEST(SatSolver, ContradictoryUnitsDetectedAtAdd) {
  Solver s;
  const Var x = s.newVar();
  ASSERT_TRUE(s.addClause({posLit(x)}));
  EXPECT_FALSE(s.addClause({negLit(x)}));
  EXPECT_FALSE(s.okay());
  EXPECT_EQ(s.solve(), lbool::False);
}

TEST(SatSolver, EmptyClauseMakesUnsat) {
  Solver s;
  EXPECT_FALSE(s.addClause(std::initializer_list<Lit>{}));
  EXPECT_EQ(s.solve(), lbool::False);
}

TEST(SatSolver, SimpleChainPropagation) {
  // x0 & (x0 -> x1) & (x1 -> x2) ... forces all true.
  Solver s;
  const int n = 20;
  for (int i = 0; i < n; ++i) static_cast<void>(s.newVar());
  ASSERT_TRUE(s.addClause({posLit(0)}));
  for (int i = 0; i + 1 < n; ++i) {
    ASSERT_TRUE(s.addClause({negLit(i), posLit(i + 1)}));
  }
  ASSERT_EQ(s.solve(), lbool::True);
  for (int i = 0; i < n; ++i) EXPECT_EQ(s.model()[i], lbool::True);
}

TEST(SatSolver, SatisfiedAndTautologicalClausesIgnored) {
  Solver s;
  const Var x = s.newVar();
  const Var y = s.newVar();
  ASSERT_TRUE(s.addClause({posLit(x)}));
  ASSERT_TRUE(s.addClause({posLit(x), posLit(y)}));   // satisfied at add
  ASSERT_TRUE(s.addClause({posLit(y), negLit(y)}));   // tautology
  EXPECT_EQ(s.numClauses(), 0);  // nothing was attached
  EXPECT_EQ(s.solve(), lbool::True);
}

TEST(SatSolver, ModelSatisfiesFormula) {
  const CnfFormula f = randomKSat({.numVars = 30,
                                   .numClauses = 100,
                                   .clauseLen = 3,
                                   .seed = 7});
  Solver s;
  load(s, f);
  const lbool st = s.solve();
  if (st == lbool::True) {
    Assignment a(f.numVars());
    for (Var v = 0; v < f.numVars(); ++v) {
      a[v] = s.model()[v] == lbool::Undef ? lbool::False : s.model()[v];
    }
    EXPECT_TRUE(f.satisfies(a));
  }
}

TEST(SatSolver, PigeonholeUnsat) {
  for (int holes = 2; holes <= 5; ++holes) {
    Solver s;
    load(s, pigeonhole(holes + 1, holes));
    EXPECT_EQ(s.solve(), lbool::False) << "PHP(" << holes + 1 << "," << holes
                                       << ")";
  }
}

TEST(SatSolver, PigeonholeSatWhenEnoughHoles) {
  Solver s;
  load(s, pigeonhole(4, 4));
  EXPECT_EQ(s.solve(), lbool::True);
}

TEST(SatSolver, AssumptionsSatWhenConsistent) {
  Solver s;
  const Var x = s.newVar();
  const Var y = s.newVar();
  ASSERT_TRUE(s.addClause({posLit(x), posLit(y)}));
  const std::vector<Lit> assumps{negLit(x)};
  ASSERT_EQ(s.solve(assumps), lbool::True);
  EXPECT_EQ(s.model()[x], lbool::False);
  EXPECT_EQ(s.model()[y], lbool::True);
}

TEST(SatSolver, FailedAssumptionsGiveCore) {
  Solver s;
  const Var x = s.newVar();
  const Var y = s.newVar();
  const Var z = s.newVar();
  ASSERT_TRUE(s.addClause({posLit(x), posLit(y)}));
  // Assume ~x and ~y: jointly inconsistent with the clause; ~z is not
  // involved.
  const std::vector<Lit> assumps{negLit(x), negLit(y), negLit(z)};
  ASSERT_EQ(s.solve(assumps), lbool::False);
  const std::vector<Lit>& core = s.core();
  EXPECT_LE(core.size(), 2u);
  for (Lit p : core) {
    EXPECT_TRUE(p == negLit(x) || p == negLit(y))
        << "unexpected core literal " << toString(p);
  }
  // Solver remains usable.
  EXPECT_EQ(s.solve(), lbool::True);
}

TEST(SatSolver, ContradictingAssumptionsCore) {
  Solver s;
  const Var x = s.newVar();
  static_cast<void>(s.newVar());
  const std::vector<Lit> assumps{posLit(x), negLit(x)};
  ASSERT_EQ(s.solve(assumps), lbool::False);
  EXPECT_FALSE(s.core().empty());
}

TEST(SatSolver, UnsatWithoutAssumptionsGivesEmptyCore) {
  Solver s;
  const Var x = s.newVar();
  const Var a = s.newVar();
  ASSERT_TRUE(s.addClause({posLit(x)}));
  ASSERT_TRUE(s.addClause({negLit(x)}) == false || true);
  // The formula is unsat regardless of assumptions.
  const std::vector<Lit> assumps{posLit(a)};
  EXPECT_EQ(s.solve(assumps), lbool::False);
  EXPECT_TRUE(s.core().empty());
}

TEST(SatSolver, IncrementalAddBetweenSolves) {
  Solver s;
  const Var x = s.newVar();
  const Var y = s.newVar();
  ASSERT_TRUE(s.addClause({posLit(x), posLit(y)}));
  ASSERT_EQ(s.solve(), lbool::True);
  ASSERT_TRUE(s.addClause({negLit(x)}));
  ASSERT_EQ(s.solve(), lbool::True);
  EXPECT_EQ(s.model()[y], lbool::True);
  static_cast<void>(s.addClause({negLit(y)}));
  EXPECT_EQ(s.solve(), lbool::False);
}

TEST(SatSolver, ConflictBudgetReturnsUndef) {
  Solver s;
  load(s, pigeonhole(9, 8));  // hard enough to exceed a tiny budget
  Budget b;
  b.setMaxConflicts(10);
  s.setBudget(b);
  EXPECT_EQ(s.solve(), lbool::Undef);
}

TEST(SatSolver, WallClockBudgetReturnsUndef) {
  Solver s;
  load(s, pigeonhole(11, 10));
  Budget b = Budget::wallClock(0.05);
  s.setBudget(b);
  EXPECT_EQ(s.solve(), lbool::Undef);
}

TEST(SatSolver, StatsAreMonotone) {
  Solver s;
  load(s, pigeonhole(6, 5));
  ASSERT_EQ(s.solve(), lbool::False);
  const SolverStats st = s.stats();
  EXPECT_GT(st.conflicts, 0);
  EXPECT_GT(st.decisions, 0);
  EXPECT_GT(st.propagations, 0);
}

// ---- Randomized cross-checks against the oracle -------------------------

struct RandomSatCase {
  int numVars;
  int numClauses;
  int clauseLen;
};

class SatSolverRandom : public ::testing::TestWithParam<RandomSatCase> {};

TEST_P(SatSolverRandom, AgreesWithOracle) {
  const RandomSatCase c = GetParam();
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const CnfFormula f = randomKSat(
        {.numVars = c.numVars, .numClauses = c.numClauses,
         .clauseLen = c.clauseLen, .seed = seed * 977});
    Solver s;
    load(s, f);
    const lbool st = s.solve();
    const bool oracleSatisfiable = oracleSat(f).has_value();
    ASSERT_NE(st, lbool::Undef);
    EXPECT_EQ(st == lbool::True, oracleSatisfiable)
        << "seed " << seed << " n=" << c.numVars << " m=" << c.numClauses;
    if (st == lbool::True) {
      Assignment a(f.numVars());
      for (Var v = 0; v < f.numVars(); ++v) {
        a[v] = s.model()[v] == lbool::Undef ? lbool::False : s.model()[v];
      }
      EXPECT_TRUE(f.satisfies(a));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SatSolverRandom,
    ::testing::Values(RandomSatCase{6, 20, 2}, RandomSatCase{8, 34, 3},
                      RandomSatCase{10, 42, 3}, RandomSatCase{12, 50, 3},
                      RandomSatCase{9, 25, 4}, RandomSatCase{14, 60, 3}),
    [](const ::testing::TestParamInfo<RandomSatCase>& info) {
      return "n" + std::to_string(info.param.numVars) + "m" +
             std::to_string(info.param.numClauses) + "k" +
             std::to_string(info.param.clauseLen);
    });

TEST(SatSolverCore, CoresAreActuallyUnsat) {
  // Property: a returned core, together with the clause database, is
  // unsatisfiable — verified by brute force on small random instances
  // with per-clause selector assumptions.
  std::mt19937_64 rng(42);
  for (int round = 0; round < 25; ++round) {
    const CnfFormula f =
        randomKSat({.numVars = 8, .numClauses = 36, .clauseLen = 3,
                    .seed = rng()});
    Solver s;
    while (s.numVars() < f.numVars()) static_cast<void>(s.newVar());
    std::vector<Lit> selectors;
    for (const Clause& c : f.clauses()) {
      const Var sel = s.newVar();
      Clause aug = c;
      aug.push_back(posLit(sel));
      ASSERT_TRUE(s.addClause(aug));
      selectors.push_back(negLit(sel));
    }
    const lbool st = s.solve(selectors);
    ASSERT_NE(st, lbool::Undef);
    if (st == lbool::False) {
      // Map the core back to clause indices and check with the oracle.
      std::vector<int> coreIdx;
      for (Lit p : s.core()) {
        const int idx = p.var() - f.numVars();
        ASSERT_GE(idx, 0);
        ASSERT_LT(idx, f.numClauses());
        coreIdx.push_back(idx);
      }
      EXPECT_TRUE(oracleSubsetUnsat(f, coreIdx))
          << "core of size " << coreIdx.size() << " is not unsat";
    } else {
      EXPECT_TRUE(oracleSat(f).has_value());
    }
  }
}

TEST(SatSolverLuby, SequencePrefix) {
  // luby: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
  const double expected[] = {1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8};
  for (int i = 0; i < 15; ++i) {
    EXPECT_DOUBLE_EQ(lubySequence(2.0, i), expected[i]) << "index " << i;
  }
}

}  // namespace
}  // namespace msu
