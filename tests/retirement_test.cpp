/// Tests of the oracle-session encoding lifecycle: physical retirement
/// of scoped constraints (originals, learnt descendants, binaries),
/// variable recycling, core validity across retirement, and fuzzed
/// interleavings of scope create/enforce/retire — at the raw solver
/// level and across every MaxSAT engine.

#include <gtest/gtest.h>

#include <bit>
#include <random>

#include "cnf/oracle.h"
#include "encodings/cardinality.h"
#include "encodings/sink.h"
#include "gen/random_cnf.h"
#include "harness/factory.h"
#include "sat/solver.h"

namespace msu {
namespace {

TEST(ScopeRetirement, PhysicalDeletionAndRecycling) {
  Solver s;
  SolverSink sink(s);
  std::vector<Lit> xs;
  for (int i = 0; i < 6; ++i) xs.push_back(posLit(s.newVar()));

  const int varsBefore = s.numVars();
  const int clausesBefore = s.numClauses();

  // Scoped constraint: at most one of xs (sequential counter: aux vars
  // plus long and binary clauses, all guarded and tagged).
  const ScopeHandle act = sink.beginScope();
  encodeAtMost(sink, xs, 1, CardEncoding::Sequential);
  sink.endScope(act);
  ASSERT_GT(s.numVars(), varsBefore);
  ASSERT_GT(s.numClauses(), clausesBefore);

  // The enforced constraint is auto-assumed: two xs conflict. Several
  // distinct conflicts make the solver learn descendants of the scope.
  for (int i = 0; i + 1 < 6; ++i) {
    const std::vector<Lit> assumps{xs[static_cast<std::size_t>(i)],
                                   xs[static_cast<std::size_t>(i + 1)]};
    ASSERT_EQ(s.solve(assumps), lbool::False) << i;
    // The core names the conflicting xs (activators may ride along).
    int xsInCore = 0;
    for (Lit p : s.core()) {
      if (p == assumps[0] || p == assumps[1]) ++xsInCore;
    }
    EXPECT_EQ(xsInCore, 2) << i;
  }

  // Retire: clauses (originals + learnt descendants + binaries) must be
  // physically gone and the scope variables recycled.
  s.retire(act.activator());
  EXPECT_EQ(s.numClauses(), clausesBefore);
  EXPECT_EQ(s.numLearnts(), 0);
  const SolverStats& st = s.stats();
  EXPECT_EQ(st.retired_scopes, 1);
  EXPECT_GT(st.retired_clauses, 0);
  EXPECT_GT(st.reclaimed_bytes, 0);
  EXPECT_GT(st.recycled_vars, 0);
  EXPECT_GT(s.numFreeVars(), 0);

  // Without the constraint everything is satisfiable again.
  std::vector<Lit> all(xs);
  EXPECT_EQ(s.solve(all), lbool::True);

  // Recycling: a fresh scope of the same shape reuses the freed
  // variables instead of growing the variable space.
  const int varsAfterRetire = s.numVars();
  const ScopeHandle act2 = sink.beginScope();
  encodeAtMost(sink, xs, 1, CardEncoding::Sequential);
  sink.endScope(act2);
  EXPECT_EQ(s.numVars(), varsAfterRetire);
  EXPECT_EQ(s.solve(all), lbool::False);
}

TEST(ScopeRetirement, CoresRemainValidAcrossRetirement) {
  // Selector-tracked unsatisfiable CNF plus a redundant scoped bound:
  // extracted cores must stay sound (oracleSubsetUnsat) before and
  // after the scope is retired.
  const CnfFormula f = randomUnsat3Sat(14, 6.0, 31);
  Solver s;
  SolverSink sink(s);
  while (s.numVars() < f.numVars()) static_cast<void>(s.newVar());

  std::vector<Lit> selectors;
  std::vector<Lit> assumps;
  for (int i = 0; i < f.numClauses(); ++i) {
    const Var sel = s.newVar();
    Clause aug = f.clause(i);
    aug.push_back(posLit(sel));
    ASSERT_TRUE(s.addClause(aug));
    selectors.push_back(posLit(sel));
    assumps.push_back(negLit(sel));
  }

  const ScopeHandle act = sink.beginScope();
  std::vector<Lit> firstVars;
  for (Var v = 0; v < 5; ++v) firstVars.push_back(posLit(v));
  encodeAtMost(sink, firstVars, 3, CardEncoding::Totalizer);
  sink.endScope(act);

  const auto coreIndices = [&]() {
    std::vector<int> idx;
    for (Lit p : s.core()) {
      for (std::size_t i = 0; i < selectors.size(); ++i) {
        if (p.var() == selectors[i].var()) {
          idx.push_back(static_cast<int>(i));
          break;
        }
      }
    }
    return idx;
  };

  ASSERT_EQ(s.solve(assumps), lbool::False);
  const std::vector<int> coreBefore = coreIndices();
  ASSERT_FALSE(coreBefore.empty());
  // The scoped bound was assumed too, so the core is only guaranteed
  // unsatisfiable together with it — drop the bound by disabling the
  // scope and re-checking gives a clause-only core.
  s.retire(act.activator());
  ASSERT_EQ(s.solve(assumps), lbool::False);
  const std::vector<int> coreAfter = coreIndices();
  ASSERT_FALSE(coreAfter.empty());
  EXPECT_TRUE(oracleSubsetUnsat(f, coreAfter));
}

TEST(ScopeRetirement, SolverScopeFuzzMatchesOracle) {
  // Random interleaving of scope create / retire / enable / disable
  // over cardinality constraints, checked against brute force at every
  // step. Exercises tagging, learnt-descendant deletion, recycling and
  // the automatic activator assumptions.
  constexpr int kVars = 9;
  std::mt19937_64 rng(2025);

  for (int round = 0; round < 8; ++round) {
    const CnfFormula base =
        randomKSat({.numVars = kVars,
                    .numClauses = 18,
                    .clauseLen = 3,
                    .seed = 1000 + static_cast<std::uint64_t>(round)});
    Solver s;
    SolverSink sink(s);
    while (s.numVars() < kVars) static_cast<void>(s.newVar());
    bool ok = true;
    for (const Clause& c : base.clauses()) ok = ok && s.addClause(c);

    struct LiveScope {
      ScopeHandle act;
      std::vector<Lit> lits;
      int k = 0;
      bool enforced = true;
    };
    std::vector<LiveScope> scopes;

    const auto truthSat = [&]() {
      for (std::uint32_t mask = 0; mask < (1u << kVars); ++mask) {
        Assignment a(kVars);
        for (int v = 0; v < kVars; ++v) {
          a[static_cast<std::size_t>(v)] =
              ((mask >> v) & 1u) != 0 ? lbool::True : lbool::False;
        }
        if (!base.satisfies(a)) continue;
        bool good = true;
        for (const LiveScope& sc : scopes) {
          if (!sc.enforced) continue;
          int pop = 0;
          for (Lit p : sc.lits) {
            if (applySign(a[static_cast<std::size_t>(p.var())], p) ==
                lbool::True) {
              ++pop;
            }
          }
          if (pop > sc.k) {
            good = false;
            break;
          }
        }
        if (good) return true;
      }
      return false;
    };

    for (int step = 0; step < 30 && ok && s.okay(); ++step) {
      const int action = static_cast<int>(rng() % 4);
      if (action == 0 || scopes.empty()) {
        // Create a scoped constraint over random original literals.
        LiveScope sc;
        const int width = 2 + static_cast<int>(rng() % 5);
        for (int i = 0; i < width; ++i) {
          sc.lits.push_back(
              Lit(static_cast<Var>(rng() % kVars), (rng() & 1) != 0));
        }
        sc.k = static_cast<int>(rng() % static_cast<std::uint64_t>(width));
        const CardEncoding enc = static_cast<CardEncoding>(
            rng() % 6);  // every encoding, Bdd..CardNet
        sc.act = sink.beginScope();
        encodeAtMost(sink, sc.lits, sc.k, enc);
        sink.endScope(sc.act);
        scopes.push_back(std::move(sc));
      } else if (action == 1) {
        // Retire a random scope.
        const std::size_t i = rng() % scopes.size();
        sink.retireScope(scopes[i].act);
        scopes.erase(scopes.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        // Toggle enforcement of a random scope.
        const std::size_t i = rng() % scopes.size();
        scopes[i].enforced = !scopes[i].enforced;
        sink.setScopeEnforced(scopes[i].act, scopes[i].enforced);
      }

      const lbool st = s.solve();
      ASSERT_NE(st, lbool::Undef);
      EXPECT_EQ(st == lbool::True, truthSat())
          << "round " << round << " step " << step;
      if (st == lbool::False && s.core().empty()) break;  // base refuted
    }
  }
}

TEST(ScopeRetirement, EngineFuzzInterleavedRetirementAgreesWithOracle) {
  // Cross-engine style fuzz over the engines whose searches create and
  // retire scopes (re-encoding bound managers, Fu-Malik version scopes,
  // OLL totalizer scopes, binary-search bound pruning): every optimum
  // must match the exhaustive oracle.
  const std::vector<std::string> engines{
      "msu4-v1", "msu4-v2", "msu4-seq", "msu4-cnet", "msu3",  "msu1",
      "wmsu1",   "oll",     "linear",   "binary",    "wlinear"};
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const CnfFormula f = randomKSat({.numVars = 8,
                                     .numClauses = 44,
                                     .clauseLen = 3,
                                     .seed = seed * 17});
    const WcnfFormula w = WcnfFormula::allSoft(f);
    const OracleResult truth = oracleMaxSat(w);
    ASSERT_TRUE(truth.optimumCost.has_value());
    for (const std::string& name : engines) {
      MaxSatOptions o;
      std::unique_ptr<MaxSatSolver> solver = makeSolver(name, o);
      ASSERT_NE(solver, nullptr) << name;
      const MaxSatResult r = solver->solve(w);
      ASSERT_EQ(r.status, MaxSatStatus::Optimum)
          << name << " seed " << seed;
      EXPECT_EQ(r.cost, *truth.optimumCost) << name << " seed " << seed;
      EXPECT_EQ(w.cost(r.model), r.cost) << name << " seed " << seed;
    }
  }
}

TEST(ScopeRetirement, ReencodingEngineReportsLifecycleStats) {
  // A sequential-encoded msu4 re-encodes its bound after every model
  // improvement: the lifecycle counters must show actual retirement.
  const CnfFormula f = randomKSat(
      {.numVars = 12, .numClauses = 70, .clauseLen = 3, .seed = 77});
  const WcnfFormula w = WcnfFormula::allSoft(f);
  MaxSatOptions o;
  o.encoding = CardEncoding::Sequential;
  std::unique_ptr<MaxSatSolver> solver = makeSolver("msu4-seq", o);
  ASSERT_NE(solver, nullptr);
  const MaxSatResult r = solver->solve(w);
  ASSERT_EQ(r.status, MaxSatStatus::Optimum);
  if (r.satStats.retired_scopes > 0) {
    EXPECT_GT(r.satStats.retired_clauses, 0);
    EXPECT_GT(r.satStats.reclaimed_bytes, 0);
  }
  EXPECT_GE(r.satStats.retired_scopes, 0);
}

}  // namespace
}  // namespace msu
