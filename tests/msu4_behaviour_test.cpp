/// Behavioural tests of msu4 as an algorithm (beyond optimum
/// correctness): iteration/core accounting, bound trajectories on the
/// paper's worked example, diagnostics consistency, interaction of every
/// option combination, and larger oracle-checked sweeps at higher
/// clause/variable ratios where bounds race each other.

#include <gtest/gtest.h>

#include <vector>

#include "cnf/oracle.h"
#include "core/msu4.h"
#include "gen/pigeonhole.h"
#include "gen/random_cnf.h"

namespace msu {
namespace {

WcnfFormula paperExample2() {
  CnfFormula phi(4);
  phi.addClause({posLit(0)});
  phi.addClause({negLit(0), negLit(1)});
  phi.addClause({posLit(1)});
  phi.addClause({negLit(0), negLit(2)});
  phi.addClause({posLit(2)});
  phi.addClause({negLit(1), negLit(2)});
  phi.addClause({posLit(0), negLit(3)});
  phi.addClause({negLit(0), posLit(3)});
  return WcnfFormula::allSoft(phi);
}

TEST(Msu4Behaviour, PaperExampleTrajectory) {
  // §3.3 walks msu4 through Example 2: two cores are found and the
  // bounds meet at cost 2 (6 satisfied of 8).
  std::vector<std::pair<Weight, Weight>> trace;
  MaxSatOptions o;
  o.onBounds = [&](Weight lb, Weight ub) { trace.emplace_back(lb, ub); };
  Msu4Solver solver(o);
  const MaxSatResult r = solver.solve(paperExample2());
  ASSERT_EQ(r.status, MaxSatStatus::Optimum);
  EXPECT_EQ(r.cost, 2);
  // The paper's run finds two cores; core *choice* is solver-dependent,
  // but the count is bracketed by the optimum and the clause count.
  EXPECT_GE(r.coresFound, 2);
  EXPECT_LE(r.coresFound, 8);
  ASSERT_FALSE(trace.empty());
  // Bounds converge to (2, 2).
  EXPECT_EQ(trace.back().first, 2);
  EXPECT_LE(trace.back().second, 2 + 1);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GE(trace[i].first, trace[i - 1].first);
    EXPECT_LE(trace[i].second, trace[i - 1].second);
  }
}

TEST(Msu4Behaviour, DiagnosticsAreConsistent) {
  const WcnfFormula w =
      WcnfFormula::allSoft(randomUnsat3Sat(20, 5.5, 99));
  Msu4Solver solver;
  const MaxSatResult r = solver.solve(w);
  ASSERT_EQ(r.status, MaxSatStatus::Optimum);
  EXPECT_EQ(r.iterations, r.satCalls);  // no trimming: one call per loop
  EXPECT_LE(r.coresFound, r.iterations);
  EXPECT_GT(r.satStats.conflicts, 0);
  EXPECT_EQ(r.lowerBound, r.cost);
  EXPECT_EQ(r.upperBound, r.cost);
}

TEST(Msu4Behaviour, AtMostOneBlockingVariablePerClause) {
  // msu4's defining property vs msu1: the working formula never carries
  // two blocking variables for one clause. With the selector-reuse
  // design this is structural; verify the observable consequence — the
  // number of cores never exceeds the number of soft clauses even on
  // instances where msu1 would clone clauses repeatedly.
  const WcnfFormula w = WcnfFormula::allSoft(pigeonhole(6, 5));
  Msu4Solver solver;
  const MaxSatResult r = solver.solve(w);
  ASSERT_EQ(r.status, MaxSatStatus::Optimum);
  EXPECT_LE(r.coresFound, w.numSoft());
  EXPECT_EQ(r.cost, 1);
}

struct OptionCombo {
  bool atLeastOne;
  bool reuse;
  bool tighten;
  int trimRounds;
  CardEncoding enc;
};

class Msu4Options : public ::testing::TestWithParam<OptionCombo> {};

TEST_P(Msu4Options, AllCombinationsReachTheOracleOptimum) {
  const OptionCombo c = GetParam();
  MaxSatOptions o;
  o.msu4AtLeastOne = c.atLeastOne;
  o.reuseEncodings = c.reuse;
  o.tightenWithModelCost = c.tighten;
  o.trimCoreRounds = c.trimRounds;
  o.encoding = c.enc;
  Msu4Solver solver(o);
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const WcnfFormula w = WcnfFormula::allSoft(
        randomKSat({.numVars = 9, .numClauses = 48, .clauseLen = 3,
                    .seed = seed * 1009}));
    const OracleResult truth = oracleMaxSat(w);
    const MaxSatResult r = solver.solve(w);
    ASSERT_EQ(r.status, MaxSatStatus::Optimum) << "seed " << seed;
    EXPECT_EQ(r.cost, *truth.optimumCost) << "seed " << seed;
  }
}

std::vector<OptionCombo> optionCombos() {
  std::vector<OptionCombo> out;
  for (bool alo : {false, true}) {
    for (bool reuse : {false, true}) {
      for (bool tighten : {false, true}) {
        out.push_back(OptionCombo{alo, reuse, tighten, 0,
                                  CardEncoding::Sorter});
      }
    }
  }
  for (CardEncoding enc :
       {CardEncoding::Bdd, CardEncoding::Sequential, CardEncoding::Totalizer,
        CardEncoding::Pairwise}) {
    out.push_back(OptionCombo{true, true, true, 0, enc});
  }
  out.push_back(OptionCombo{true, true, true, 3, CardEncoding::Sorter});
  out.push_back(OptionCombo{false, false, false, 2, CardEncoding::Bdd});
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Msu4Options, ::testing::ValuesIn(optionCombos()),
    [](const ::testing::TestParamInfo<OptionCombo>& info) {
      const OptionCombo& c = info.param;
      std::string n = std::string("alo") + (c.atLeastOne ? "1" : "0") +
                      "reuse" + (c.reuse ? "1" : "0") + "tight" +
                      (c.tighten ? "1" : "0") + "trim" +
                      std::to_string(c.trimRounds) + "_" + toString(c.enc);
      return n;
    });

TEST(Msu4Behaviour, HighRatioSweepMatchesOracle) {
  // Dense instances where LB and UB race each other for many rounds —
  // the regime that exposed the msu3 bound-soundness issue.
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    for (double ratio : {6.0, 8.0, 10.0}) {
      const WcnfFormula w = WcnfFormula::allSoft(
          randomUnsat3Sat(11, ratio, seed * 31));
      const OracleResult truth = oracleMaxSat(w);
      ASSERT_TRUE(truth.optimumCost.has_value());
      for (auto make : {&Msu4Solver::v1, &Msu4Solver::v2}) {
        MaxSatOptions o;
        Msu4Solver solver = make(o);
        const MaxSatResult r = solver.solve(w);
        ASSERT_EQ(r.status, MaxSatStatus::Optimum)
            << "seed " << seed << " ratio " << ratio;
        EXPECT_EQ(r.cost, *truth.optimumCost)
            << solver.name() << " seed " << seed << " ratio " << ratio;
      }
    }
  }
}

TEST(Msu4Behaviour, ReturnsBestModelOnBudgetExhaustion) {
  const WcnfFormula w = WcnfFormula::allSoft(randomUnsat3Sat(50, 7.0, 5));
  MaxSatOptions o;
  o.budget = Budget::conflicts(400);
  Msu4Solver solver(o);
  const MaxSatResult r = solver.solve(w);
  if (r.status == MaxSatStatus::Unknown && !r.model.empty()) {
    // The carried model must achieve a cost within the reported bounds.
    const auto mc = w.cost(r.model);
    ASSERT_TRUE(mc.has_value());
    EXPECT_LE(*mc, static_cast<Weight>(w.numSoft()));
    EXPECT_GE(*mc, r.lowerBound);
    EXPECT_EQ(*mc, r.upperBound);  // upper bound is the best model's cost
  }
}

}  // namespace
}  // namespace msu
