/// Exhaustive property tests for the second wave of encodings:
///  * cardinality networks accept exactly popcount <= k (all masks, all
///    k), including inside encodeAtMost and inside msu4;
///  * truncated outputs propagate forward like the full sorter's;
///  * the four extra AMO encodings (commander, product, binary,
///    bimander) accept exactly popcount <= 1, with and without
///    activators, across group sizes;
///  * emitted-size sanity: cardinality networks never exceed the full
///    sorter, AMO encodings stay within their advertised clause budgets.

#include <gtest/gtest.h>

#include <bit>

#include "cnf/oracle.h"
#include "encodings/amo.h"
#include "encodings/cardinality.h"
#include "encodings/cardnet.h"
#include "encodings/sink.h"
#include "gen/random_cnf.h"
#include "harness/factory.h"
#include "sat/solver.h"

namespace msu {
namespace {

struct Fixture {
  Solver solver;
  SolverSink sink{solver};
  std::vector<Lit> inputs;

  explicit Fixture(int n) {
    for (int i = 0; i < n; ++i) inputs.push_back(posLit(solver.newVar()));
  }

  [[nodiscard]] lbool solveMask(std::uint32_t mask,
                                std::optional<Lit> extra = std::nullopt) {
    std::vector<Lit> assumps;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      const bool bit = ((mask >> i) & 1u) != 0;
      assumps.push_back(bit ? inputs[i] : ~inputs[i]);
    }
    if (extra) assumps.push_back(*extra);
    return solver.solve(assumps);
  }
};

// ---------------------------------------------------------------------
// Cardinality networks
// ---------------------------------------------------------------------

struct NkCase {
  int n;
  int k;
};

class CardNetExhaustive : public ::testing::TestWithParam<NkCase> {};

TEST_P(CardNetExhaustive, EncodeAtMostAcceptsExactlyPopcountLeK) {
  const auto [n, k] = GetParam();
  Fixture f(n);
  encodeAtMost(f.sink, f.inputs, k, CardEncoding::CardNet);
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    const bool expect = std::popcount(mask) <= static_cast<unsigned>(k);
    const lbool st = f.solveMask(mask);
    ASSERT_NE(st, lbool::Undef);
    EXPECT_EQ(st == lbool::True, expect) << "n=" << n << " k=" << k
                                         << " mask=" << mask;
  }
}

TEST_P(CardNetExhaustive, OutputsPropagateForward) {
  // out[i] must be forced true whenever more than i inputs are true.
  const auto [n, k] = GetParam();
  Fixture f(n);
  const std::vector<Lit> out = buildCardinalityNetwork(f.sink, f.inputs, k);
  ASSERT_EQ(static_cast<int>(out.size()), std::min(n, k + 1));
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    const int count = std::popcount(mask);
    ASSERT_EQ(f.solveMask(mask), lbool::True);
    for (std::size_t i = 0; i < out.size(); ++i) {
      if (count >= static_cast<int>(i) + 1) {
        EXPECT_EQ(f.solver.modelValue(out[i]), lbool::True)
            << "n=" << n << " k=" << k << " mask=" << mask << " i=" << i;
      }
    }
  }
}

std::vector<NkCase> cardNetCases() {
  std::vector<NkCase> cases;
  for (int n : {1, 2, 3, 4, 5, 7, 8, 9}) {
    for (int k = 0; k < n; ++k) cases.push_back({n, k});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, CardNetExhaustive,
                         ::testing::ValuesIn(cardNetCases()),
                         [](const ::testing::TestParamInfo<NkCase>& info) {
                           return "n" + std::to_string(info.param.n) + "_k" +
                                  std::to_string(info.param.k);
                         });

TEST(CardNetTest, ActivatorGuardsTheBound) {
  Fixture f(5);
  const Lit act = posLit(f.solver.newVar());
  encodeAtMost(f.sink, f.inputs, 1, CardEncoding::CardNet, act);
  // Guard off: any mask accepted.
  EXPECT_EQ(f.solveMask(0b11111, ~act), lbool::True);
  // Guard on: bound enforced.
  EXPECT_EQ(f.solveMask(0b11000, act), lbool::False);
  EXPECT_EQ(f.solveMask(0b10000, act), lbool::True);
}

TEST(CardNetTest, NeverLargerThanFullSorter) {
  for (int n : {8, 16, 24, 40}) {
    for (int k : {1, 2, 4}) {
      const EncodingSize net = measureAtMost(n, k, CardEncoding::CardNet);
      const EncodingSize sorter = measureAtMost(n, k, CardEncoding::Sorter);
      EXPECT_LE(net.clauses, sorter.clauses) << "n=" << n << " k=" << k;
      EXPECT_LE(net.auxVars, sorter.auxVars) << "n=" << n << " k=" << k;
    }
  }
}

TEST(CardNetTest, Msu4WithCardinalityNetworksMatchesOracle) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const CnfFormula f = randomUnsat3Sat(10, 6.0, seed);
    const WcnfFormula w = WcnfFormula::allSoft(f);
    auto solver = makeSolver("msu4-cnet");
    ASSERT_NE(solver, nullptr);
    const MaxSatResult r = solver->solve(w);
    const OracleResult oracle = oracleMaxSat(w);
    ASSERT_TRUE(oracle.optimumCost.has_value());
    ASSERT_EQ(r.status, MaxSatStatus::Optimum) << "seed " << seed;
    EXPECT_EQ(r.cost, *oracle.optimumCost) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------
// At-most-one encodings
// ---------------------------------------------------------------------

enum class AmoKind { Commander, Product, Binary, Bimander };

const char* toName(AmoKind k) {
  switch (k) {
    case AmoKind::Commander:
      return "commander";
    case AmoKind::Product:
      return "product";
    case AmoKind::Binary:
      return "binary";
    case AmoKind::Bimander:
      return "bimander";
  }
  return "?";
}

void encodeAmo(AmoKind kind, ClauseSink& sink, std::span<const Lit> lits,
               std::optional<Lit> act = std::nullopt) {
  switch (kind) {
    case AmoKind::Commander:
      encodeAtMostOneCommander(sink, lits, act);
      break;
    case AmoKind::Product:
      encodeAtMostOneProduct(sink, lits, act);
      break;
    case AmoKind::Binary:
      encodeAtMostOneBinary(sink, lits, act);
      break;
    case AmoKind::Bimander:
      encodeAtMostOneBimander(sink, lits, act);
      break;
  }
}

struct AmoCase {
  AmoKind kind;
  int n;
};

class AmoExhaustive : public ::testing::TestWithParam<AmoCase> {};

TEST_P(AmoExhaustive, AcceptsExactlyPopcountLeOne) {
  const auto [kind, n] = GetParam();
  Fixture f(n);
  encodeAmo(kind, f.sink, f.inputs);
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    const bool expect = std::popcount(mask) <= 1;
    const lbool st = f.solveMask(mask);
    ASSERT_NE(st, lbool::Undef);
    EXPECT_EQ(st == lbool::True, expect)
        << toName(kind) << " n=" << n << " mask=" << mask;
  }
}

TEST_P(AmoExhaustive, ActivatorMakesItRetractable) {
  const auto [kind, n] = GetParam();
  if (n < 2) return;
  Fixture f(n);
  const Lit act = posLit(f.solver.newVar());
  encodeAmo(kind, f.sink, f.inputs, act);
  const std::uint32_t allOnes = (1u << n) - 1;
  EXPECT_EQ(f.solveMask(allOnes, ~act), lbool::True)
      << toName(kind) << " n=" << n;
  EXPECT_EQ(f.solveMask(allOnes, act), lbool::False)
      << toName(kind) << " n=" << n;
  EXPECT_EQ(f.solveMask(1, act), lbool::True) << toName(kind) << " n=" << n;
}

std::vector<AmoCase> amoCases() {
  std::vector<AmoCase> cases;
  for (AmoKind kind : {AmoKind::Commander, AmoKind::Product, AmoKind::Binary,
                       AmoKind::Bimander}) {
    for (int n : {1, 2, 3, 4, 5, 6, 8, 9, 12}) cases.push_back({kind, n});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, AmoExhaustive, ::testing::ValuesIn(amoCases()),
                         [](const ::testing::TestParamInfo<AmoCase>& info) {
                           return std::string(toName(info.param.kind)) + "_n" +
                                  std::to_string(info.param.n);
                         });

TEST(AmoSizeTest, CommanderGroupSizesAllWork) {
  for (int groupSize : {2, 3, 4, 5}) {
    Fixture f(10);
    encodeAtMostOneCommander(f.sink, f.inputs, std::nullopt, groupSize);
    EXPECT_EQ(f.solveMask(0b0000100000), lbool::True) << groupSize;
    EXPECT_EQ(f.solveMask(0b0001100000), lbool::False) << groupSize;
    EXPECT_EQ(f.solveMask(0b1000000001), lbool::False) << groupSize;
  }
}

TEST(AmoSizeTest, BimanderGroupSizesAllWork) {
  for (int groupSize : {1, 2, 3, 5}) {
    Fixture f(10);
    encodeAtMostOneBimander(f.sink, f.inputs, std::nullopt, groupSize);
    EXPECT_EQ(f.solveMask(0b0000000010), lbool::True) << groupSize;
    EXPECT_EQ(f.solveMask(0b0000000110), lbool::False) << groupSize;
  }
}

TEST(AmoSizeTest, BinaryUsesLogClausesPerLiteral) {
  // n * ceil(log2 n) binary clauses, no more.
  CnfFormula cnf(16);
  std::vector<Lit> lits;
  for (Var v = 0; v < 16; ++v) lits.push_back(posLit(v));
  FormulaSink sink(cnf);
  encodeAtMostOneBinary(sink, lits);
  EXPECT_EQ(cnf.numClauses(), 16 * 4);
  EXPECT_EQ(cnf.numVars() - 16, 4);
}

TEST(AmoSizeTest, PairwiseIsQuadraticCommanderLinear) {
  const int n = 60;
  CnfFormula pw(n), cm(n);
  std::vector<Lit> lits;
  for (Var v = 0; v < n; ++v) lits.push_back(posLit(v));
  {
    FormulaSink sink(pw);
    encodeAtMostOnePairwise(sink, lits);
  }
  {
    FormulaSink sink(cm);
    encodeAtMostOneCommander(sink, lits);
  }
  EXPECT_EQ(pw.numClauses(), n * (n - 1) / 2);
  EXPECT_LT(cm.numClauses(), pw.numClauses() / 3);
}

}  // namespace
}  // namespace msu
