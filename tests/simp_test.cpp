/// Tests for the SatELite-style preprocessor:
///  * equisatisfiability on random formulas (oracle-checked both ways);
///  * model reconstruction yields genuine models of the original;
///  * each technique in isolation (subsumption, strengthening, BVE)
///    does what it advertises on crafted inputs;
///  * frozen variables survive and keep their meaning;
///  * MaxSAT hard-clause preprocessing preserves the optimum;
///  * unsat detection and degenerate inputs.

#include <gtest/gtest.h>

#include <random>

#include "cnf/oracle.h"
#include "gen/pigeonhole.h"
#include "gen/random_cnf.h"
#include "harness/factory.h"
#include "sat/solver.h"
#include "simp/simp.h"

namespace msu {
namespace {

/// Solves with CDCL; formulas here are small.
lbool solveCdcl(const CnfFormula& cnf, Assignment* model = nullptr) {
  Solver solver;
  for (Var v = 0; v < cnf.numVars(); ++v) static_cast<void>(solver.newVar());
  for (const Clause& c : cnf.clauses()) {
    if (!solver.addClause(c)) return lbool::False;
  }
  const lbool st = solver.solve();
  if (st == lbool::True && model != nullptr) {
    model->assign(static_cast<std::size_t>(cnf.numVars()), lbool::Undef);
    for (Var v = 0; v < cnf.numVars(); ++v) {
      (*model)[static_cast<std::size_t>(v)] =
          solver.model()[static_cast<std::size_t>(v)];
    }
  }
  return st;
}

TEST(SimpTest, EquisatisfiableOnRandomFormulas) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const CnfFormula f = randomKSat(
        {.numVars = 14, .numClauses = 55, .clauseLen = 3, .seed = seed});
    Preprocessor pre;
    const CnfFormula g = pre.run(f);
    const bool origSat = oracleSat(f).has_value();
    if (pre.provedUnsat()) {
      EXPECT_FALSE(origSat) << "seed " << seed;
      continue;
    }
    const lbool simplifiedSat = solveCdcl(g);
    ASSERT_NE(simplifiedSat, lbool::Undef);
    EXPECT_EQ(simplifiedSat == lbool::True, origSat) << "seed " << seed;
  }
}

TEST(SimpTest, ReconstructedModelsSatisfyTheOriginal) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const CnfFormula f = randomKSat(
        {.numVars = 16, .numClauses = 40, .clauseLen = 3, .seed = seed * 17});
    Preprocessor pre;
    const CnfFormula g = pre.run(f);
    if (pre.provedUnsat()) {
      EXPECT_FALSE(oracleSat(f).has_value()) << "seed " << seed;
      continue;
    }
    Assignment model;
    const lbool st = solveCdcl(g, &model);
    if (st != lbool::True) continue;
    const Assignment full = pre.reconstruct(model);
    EXPECT_TRUE(f.satisfies(full)) << "seed " << seed;
  }
}

TEST(SimpTest, SubsumedClausesAreRemoved) {
  CnfFormula f(3);
  f.addClause({posLit(0), posLit(1)});
  f.addClause({posLit(0), posLit(1), posLit(2)});  // subsumed
  f.addClause({negLit(0), posLit(2)});
  SimpOptions opts;
  opts.strengthen = false;
  opts.eliminate = false;
  Preprocessor pre(opts);
  const CnfFormula g = pre.run(f);
  EXPECT_EQ(pre.stats().subsumed, 1);
  EXPECT_EQ(g.numClauses(), 2);
}

TEST(SimpTest, SelfSubsumingResolutionStrengthens) {
  // (a ∨ b) and (a ∨ ¬b ∨ c) -> second becomes (a ∨ c).
  CnfFormula f(3);
  f.addClause({posLit(0), posLit(1)});
  f.addClause({posLit(0), negLit(1), posLit(2)});
  SimpOptions opts;
  opts.subsumption = false;
  opts.eliminate = false;
  Preprocessor pre(opts);
  const CnfFormula g = pre.run(f);
  EXPECT_EQ(pre.stats().strengthened, 1);
  bool found = false;
  for (const Clause& c : g.clauses()) {
    found = found || (c == Clause{posLit(0), posLit(2)});
  }
  EXPECT_TRUE(found);
}

TEST(SimpTest, BveEliminatesPureAndLowOccurrenceVariables) {
  // x1 appears once per polarity: elimination replaces two clauses by
  // one resolvent.
  CnfFormula f(3);
  f.addClause({posLit(0), posLit(1)});
  f.addClause({negLit(0), posLit(2)});
  SimpOptions opts;
  opts.subsumption = false;
  opts.strengthen = false;
  Preprocessor pre(opts);
  const CnfFormula g = pre.run(f);
  EXPECT_GE(pre.stats().varsEliminated, 1);
  // Everything is eliminable here; the result must be satisfiable and
  // reconstruct to a model of f.
  Assignment model;
  const lbool st = solveCdcl(g, &model);
  ASSERT_EQ(st, lbool::True);
  EXPECT_TRUE(f.satisfies(pre.reconstruct(model)));
}

TEST(SimpTest, FrozenVariablesAreNeverEliminated) {
  CnfFormula f(4);
  f.addClause({posLit(0), posLit(1)});
  f.addClause({negLit(0), posLit(2)});
  f.addClause({negLit(2), posLit(3)});
  Preprocessor pre;
  const CnfFormula g = pre.run(f, {0, 2});
  // Frozen vars may still occur; check by resolving a model.
  Assignment model;
  if (solveCdcl(g, &model) == lbool::True) {
    const Assignment full = pre.reconstruct(model);
    EXPECT_TRUE(f.satisfies(full));
  }
  // Eliminating var 1 or 3 is fine, 0 and 2 must survive any run: force
  // them with units and expect consistency.
  CnfFormula g2 = g;
  g2.addClause({posLit(0)});
  g2.addClause({posLit(2)});
  // f ∧ x0 ∧ x2 is satisfiable (x1 free, x3 picks up the last clause):
  // the simplified formula must agree because 0 and 2 kept their meaning.
  EXPECT_EQ(solveCdcl(g2), lbool::True);
  CnfFormula g3 = g;
  g3.addClause({posLit(0)});
  g3.addClause({negLit(2)});
  // f ∧ x0 ∧ ¬x2 falsifies (¬x0 ∨ x2): must stay unsatisfiable.
  EXPECT_EQ(solveCdcl(g3), lbool::False);
}

TEST(SimpTest, UnsatDetectedByPropagation) {
  CnfFormula f(2);
  f.addClause({posLit(0)});
  f.addClause({negLit(0), posLit(1)});
  f.addClause({negLit(1)});
  Preprocessor pre;
  const CnfFormula g = pre.run(f);
  EXPECT_TRUE(pre.provedUnsat());
  EXPECT_EQ(solveCdcl(g), lbool::False);
}

TEST(SimpTest, UnsatDetectedThroughElimination) {
  const CnfFormula f = pigeonhole(3, 2);
  Preprocessor pre;
  const CnfFormula g = pre.run(f);
  // Whether or not preprocessing alone refutes it, the result must
  // still be unsatisfiable.
  EXPECT_EQ(solveCdcl(g), lbool::False);
}

TEST(SimpTest, DegenerateInputs) {
  {
    CnfFormula empty(0);
    Preprocessor pre;
    const CnfFormula g = pre.run(empty);
    EXPECT_FALSE(pre.provedUnsat());
    EXPECT_EQ(g.numClauses(), 0);
  }
  {
    CnfFormula f(1);
    f.addClause(std::initializer_list<Lit>{});
    Preprocessor pre;
    static_cast<void>(pre.run(f));
    EXPECT_TRUE(pre.provedUnsat());
  }
  {
    // Tautologies disappear.
    CnfFormula f(2);
    f.addClause({posLit(0), negLit(0)});
    f.addClause({posLit(1)});
    Preprocessor pre;
    const CnfFormula g = pre.run(f);
    EXPECT_FALSE(pre.provedUnsat());
    EXPECT_EQ(g.numClauses(), 1);
  }
}

TEST(SimpTest, IdempotentOnItsOwnOutput) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const CnfFormula f = randomKSat(
        {.numVars = 12, .numClauses = 40, .clauseLen = 3, .seed = seed * 3});
    Preprocessor first;
    const CnfFormula g = first.run(f);
    if (first.provedUnsat()) continue;
    Preprocessor second;
    const CnfFormula h = second.run(g);
    // A second pass may still shuffle clauses but must not grow.
    EXPECT_LE(h.numClauses(), g.numClauses()) << "seed " << seed;
  }
}

TEST(SimpTest, PreprocessHardPreservesTheOptimum) {
  std::mt19937_64 rng(7);
  for (int round = 0; round < 10; ++round) {
    WcnfFormula w(10);
    for (int i = 0; i < 14; ++i) {
      Clause c;
      for (int k = 0; k < 3; ++k) {
        c.push_back(mkLit(static_cast<Var>(rng() % 10), (rng() & 1) != 0));
      }
      w.addHard(c);
    }
    for (int i = 0; i < 12; ++i) {
      Clause c;
      for (int k = 0; k < 2; ++k) {
        c.push_back(mkLit(static_cast<Var>(rng() % 10), (rng() & 1) != 0));
      }
      w.addSoft(c, 1 + static_cast<Weight>(rng() % 4));
    }
    auto [simplified, pre] = preprocessHard(w);
    const OracleResult a = oracleMaxSat(w);
    const OracleResult b = oracleMaxSat(simplified);
    ASSERT_EQ(a.optimumCost.has_value(), b.optimumCost.has_value())
        << "round " << round;
    if (a.optimumCost) {
      EXPECT_EQ(*a.optimumCost, *b.optimumCost) << "round " << round;
      // And an engine on the simplified instance agrees.
      auto solver = makeSolver("oll");
      const MaxSatResult r = solver->solve(simplified);
      ASSERT_EQ(r.status, MaxSatStatus::Optimum);
      EXPECT_EQ(r.cost, *a.optimumCost) << "round " << round;
    }
  }
}

TEST(SimpTest, PreprocessHardWeightedModelReconstructionFuzz) {
  // Weighted instances: preprocessHard must freeze every variable that
  // occurs in a soft clause (their values ARE the objective), the
  // optimum must match the plain oracle, and reconstruct() must extend
  // an engine's model of the simplified instance to a full assignment
  // that satisfies the original hard clauses at the same cost.
  std::mt19937_64 rng(20260731);
  int checked = 0;
  for (int round = 0; round < 12; ++round) {
    WcnfFormula w(10);
    for (int i = 0; i < 16; ++i) {
      Clause c;
      for (int k = 0; k < 3; ++k) {
        c.push_back(mkLit(static_cast<Var>(rng() % 10), (rng() & 1) != 0));
      }
      w.addHard(c);
    }
    for (int i = 0; i < 12; ++i) {
      Clause c;
      const int len = 1 + static_cast<int>(rng() % 2);
      for (int k = 0; k < len; ++k) {
        c.push_back(mkLit(static_cast<Var>(rng() % 10), (rng() & 1) != 0));
      }
      w.addSoft(c, 1 + static_cast<Weight>(rng() % 6));
    }

    auto [simplified, pre] = preprocessHard(w);
    const OracleResult truth = oracleMaxSat(w);
    if (pre.provedUnsat()) {
      EXPECT_FALSE(truth.optimumCost.has_value()) << "round " << round;
      continue;
    }
    ASSERT_TRUE(truth.optimumCost.has_value()) << "round " << round;

    // Frozen soft variables: every variable of a soft clause must still
    // mean the same thing, i.e. the soft clauses came through verbatim.
    ASSERT_EQ(simplified.soft().size(), w.soft().size());
    for (std::size_t i = 0; i < w.soft().size(); ++i) {
      EXPECT_EQ(simplified.soft()[i].lits, w.soft()[i].lits)
          << "round " << round << " soft " << i;
      EXPECT_EQ(simplified.soft()[i].weight, w.soft()[i].weight);
    }

    auto solver = makeSolver("oll");
    const MaxSatResult r = solver->solve(simplified);
    ASSERT_EQ(r.status, MaxSatStatus::Optimum) << "round " << round;
    EXPECT_EQ(r.cost, *truth.optimumCost) << "round " << round;

    // Reconstruction: complete the engine model (hard-only variables may
    // have been eliminated) and evaluate it on the ORIGINAL instance.
    const Assignment full = pre.reconstruct(r.model);
    const std::optional<Weight> fullCost = w.cost(full);
    ASSERT_TRUE(fullCost.has_value())  // all original hards satisfied
        << "round " << round;
    EXPECT_EQ(*fullCost, *truth.optimumCost) << "round " << round;

    // Frozen variables pass through reconstruction unchanged.
    for (const SoftClause& sc : w.soft()) {
      for (const Lit p : sc.lits) {
        const auto v = static_cast<std::size_t>(p.var());
        if (v < r.model.size() && r.model[v] != lbool::Undef) {
          EXPECT_EQ(full[v], r.model[v]) << "round " << round;
        }
      }
    }
    ++checked;
  }
  EXPECT_GT(checked, 0);  // the fuzz must exercise the satisfiable path
}

TEST(SimpTest, LargeRandomRoundTripUnderCdcl) {
  // Bigger instances than the oracle can check: compare CDCL verdicts.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const CnfFormula f = randomKSat(
        {.numVars = 60, .numClauses = 240, .clauseLen = 3, .seed = seed * 7});
    Preprocessor pre;
    const CnfFormula g = pre.run(f);
    const lbool orig = solveCdcl(f);
    const lbool simp = pre.provedUnsat() ? lbool::False : solveCdcl(g);
    ASSERT_NE(orig, lbool::Undef);
    EXPECT_EQ(orig, simp) << "seed " << seed;
    if (simp == lbool::True) {
      Assignment model;
      ASSERT_EQ(solveCdcl(g, &model), lbool::True);
      EXPECT_TRUE(f.satisfies(pre.reconstruct(model))) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace msu
