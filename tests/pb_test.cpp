/// Property tests for the pseudo-Boolean encodings (BDD and adder
/// network): exhaustive equivalence with the arithmetic definition on
/// small instances, negative-coefficient normalization, and the adder /
/// comparator building blocks.

#include <gtest/gtest.h>

#include <random>

#include "encodings/pb.h"
#include "encodings/sink.h"
#include "sat/solver.h"

namespace msu {
namespace {

struct Fixture {
  Solver solver;
  SolverSink sink{solver};
  std::vector<Lit> inputs;

  explicit Fixture(int n) {
    for (int i = 0; i < n; ++i) inputs.push_back(posLit(solver.newVar()));
  }

  [[nodiscard]] lbool solveMask(std::uint32_t mask) {
    std::vector<Lit> assumps;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      assumps.push_back(((mask >> i) & 1u) != 0 ? inputs[i] : ~inputs[i]);
    }
    return solver.solve(assumps);
  }
};

Weight maskValue(std::span<const PbTerm> terms, std::uint32_t mask,
                 std::span<const Lit> inputs) {
  Weight v = 0;
  for (const PbTerm& t : terms) {
    // Find the input index of this term's variable.
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      if (inputs[i].var() != t.lit.var()) continue;
      const bool varTrue = ((mask >> i) & 1u) != 0;
      const bool litTrue = t.lit.positive() ? varTrue : !varTrue;
      if (litTrue) v += t.coeff;
    }
  }
  return v;
}

struct PbCase {
  PbEncoding enc;
  std::vector<Weight> coeffs;
  Weight bound;
};

class PbLeqExhaustive : public ::testing::TestWithParam<PbCase> {};

TEST_P(PbLeqExhaustive, MatchesArithmetic) {
  const PbCase& c = GetParam();
  const int n = static_cast<int>(c.coeffs.size());
  Fixture f(n);
  std::vector<PbTerm> terms;
  for (int i = 0; i < n; ++i) {
    terms.push_back(PbTerm{f.inputs[static_cast<std::size_t>(i)],
                           c.coeffs[static_cast<std::size_t>(i)]});
  }
  encodePbLeq(f.sink, terms, c.bound, c.enc);
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    const bool expect = maskValue(terms, mask, f.inputs) <= c.bound;
    const lbool st = f.solveMask(mask);
    ASSERT_NE(st, lbool::Undef);
    EXPECT_EQ(st == lbool::True, expect)
        << toString(c.enc) << " mask=" << mask << " bound=" << c.bound;
  }
}

std::vector<PbCase> pbCases() {
  std::vector<PbCase> cases;
  const std::vector<std::vector<Weight>> coeffSets = {
      {1, 1, 1, 1},        // cardinality
      {1, 2, 3, 4},        // distinct
      {3, 3, 5},           // repeats
      {7, 1, 1, 1, 1},     // dominated
      {2, 4, 8, 16},       // powers of two (adder-friendly)
      {5, 9, 13},          // odd mix
  };
  for (PbEncoding enc : {PbEncoding::Bdd, PbEncoding::Adder}) {
    for (const auto& coeffs : coeffSets) {
      Weight total = 0;
      for (Weight w : coeffs) total += w;
      for (Weight bound : {Weight{0}, total / 3, total / 2, total - 1}) {
        cases.push_back(PbCase{enc, coeffs, bound});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PbLeqExhaustive, ::testing::ValuesIn(pbCases()),
    [](const ::testing::TestParamInfo<PbCase>& info) {
      std::string name = toString(info.param.enc);
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      name += "_c";
      for (Weight w : info.param.coeffs) name += std::to_string(w);
      name += "_b" + std::to_string(info.param.bound);
      return name;
    });

TEST(PbEncoding, NegativeCoefficientsNormalize) {
  // 2*x0 - 3*x1 <= 0  <=>  2*x0 + 3*(~x1) <= 3.
  for (PbEncoding enc : {PbEncoding::Bdd, PbEncoding::Adder}) {
    Fixture f(2);
    const std::vector<PbTerm> terms{{f.inputs[0], 2}, {f.inputs[1], -3}};
    encodePbLeq(f.sink, terms, 0, enc);
    // (x0, x1): value = 2*x0 - 3*x1.
    EXPECT_EQ(f.solveMask(0b00), lbool::True) << toString(enc);   // 0
    EXPECT_EQ(f.solveMask(0b01), lbool::False) << toString(enc);  // 2
    EXPECT_EQ(f.solveMask(0b10), lbool::True) << toString(enc);   // -3
    EXPECT_EQ(f.solveMask(0b11), lbool::True) << toString(enc);   // -1
  }
}

TEST(PbEncoding, TrivialAndInfeasibleBounds) {
  Fixture f(3);
  const std::vector<PbTerm> terms{
      {f.inputs[0], 1}, {f.inputs[1], 1}, {f.inputs[2], 1}};
  encodePbLeq(f.sink, terms, 10, PbEncoding::Bdd);  // trivially true
  EXPECT_EQ(f.solver.solve(), lbool::True);
  encodePbLeq(f.sink, terms, -1, PbEncoding::Bdd);  // falsum
  EXPECT_EQ(f.solver.solve(), lbool::False);
}

TEST(PbEncoding, ActivatorGuards) {
  for (PbEncoding enc : {PbEncoding::Bdd, PbEncoding::Adder}) {
    Fixture f(3);
    const Lit act = posLit(f.solver.newVar());
    const std::vector<PbTerm> terms{
        {f.inputs[0], 2}, {f.inputs[1], 3}, {f.inputs[2], 4}};
    encodePbLeq(f.sink, terms, 4, enc, act);
    std::vector<Lit> all{f.inputs[0], f.inputs[1], f.inputs[2]};
    EXPECT_EQ(f.solver.solve(all), lbool::True) << toString(enc);
    all.push_back(act);
    EXPECT_EQ(f.solver.solve(all), lbool::False) << toString(enc);
    const std::vector<Lit> ok{~f.inputs[0], ~f.inputs[1], f.inputs[2], act};
    EXPECT_EQ(f.solver.solve(ok), lbool::True) << toString(enc);
  }
}

TEST(AdderNetwork, BitsEncodeTheSum) {
  // Check the adder's result bits against the true sum for all inputs.
  Fixture f(5);
  std::vector<PbTerm> terms;
  const Weight coeffs[] = {1, 2, 3, 4, 5};
  for (int i = 0; i < 5; ++i) {
    terms.push_back(PbTerm{f.inputs[static_cast<std::size_t>(i)], coeffs[i]});
  }
  const std::vector<Lit> bits = buildAdderNetwork(f.sink, terms);
  for (std::uint32_t mask = 0; mask < 32; ++mask) {
    ASSERT_EQ(f.solveMask(mask), lbool::True);
    Weight sum = 0;
    for (int i = 0; i < 5; ++i) {
      if ((mask >> i) & 1u) sum += coeffs[i];
    }
    Weight got = 0;
    for (std::size_t b = 0; b < bits.size(); ++b) {
      if (f.solver.modelValue(bits[b]) == lbool::True) {
        got += Weight{1} << b;
      }
    }
    EXPECT_EQ(got, sum) << "mask=" << mask;
  }
}

TEST(LeqConst, ComparatorMatchesUnsignedCompare) {
  // 3 free bits vs. every bound in [0, 8].
  for (Weight bound = 0; bound <= 8; ++bound) {
    Fixture f(3);
    const Lit le = buildLeqConst(f.sink, f.inputs, bound);
    for (std::uint32_t mask = 0; mask < 8; ++mask) {
      ASSERT_EQ(f.solveMask(mask), lbool::True);
      EXPECT_EQ(f.solver.modelValue(le) == lbool::True,
                static_cast<Weight>(mask) <= bound)
          << "mask=" << mask << " bound=" << bound;
    }
  }
}

}  // namespace
}  // namespace msu
