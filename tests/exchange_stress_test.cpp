/// \file exchange_stress_test.cpp
/// \brief Concurrency stress tests of the lock-free clause exchange
///        (par/clause_pool.h). Run under TSan in CI: every invariant
///        here is checked while producer and consumer threads hammer
///        the pool simultaneously — exactly-once delivery per endpoint,
///        per-endpoint fingerprint dedup under races, and bounded
///        segments shedding (and counting) excess publications instead
///        of blocking or losing earlier ones.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "par/clause_pool.h"

namespace msu {
namespace {

constexpr int kThreads = 4;
constexpr int kUniquePerThread = 200;
constexpr int kCommon = 16;

/// Encodes value `v` as a distinct 2-literal clause; decodes back on
/// receipt. Unique clauses use vars [0, 2*kThreads*kUniquePerThread);
/// the shared "common" clauses live above that range.
std::vector<Lit> uniqueClause(int v) {
  return {posLit(2 * v), negLit(2 * v + 1)};
}
int decodeUnique(std::span<const Lit> lits) { return lits[0].var() / 2; }

std::vector<Lit> commonClause(int k) {
  const Var base = 2 * kThreads * kUniquePerThread;
  return {posLit(base + 2 * k), posLit(base + 2 * k + 1)};
}
bool isCommon(std::span<const Lit> lits) {
  return lits[0].var() >= 2 * kThreads * kUniquePerThread;
}

TEST(ExchangeStress, ConcurrentPublishAndDrainDeliversExactlyOnce) {
  const int numVars = 2 * kThreads * (kUniquePerThread + kCommon);
  SharedClausePool pool(kThreads, numVars);

  // Phase barrier: consumers may only conclude "nothing left" after
  // every producer has finished publishing.
  std::atomic<int> done_publishing{0};

  // received[t][v] counts deliveries of unique clause v to endpoint t;
  // common_received[t][k] deliveries of common clause k; export_ok[t][k]
  // records whether endpoint t's own publication of k was accepted.
  std::vector<std::vector<std::atomic<int>>> received(kThreads);
  for (auto& r : received) {
    r = std::vector<std::atomic<int>>(
        static_cast<std::size_t>(kThreads * kUniquePerThread));
  }
  std::vector<std::vector<std::atomic<int>>> common_received(kThreads);
  for (auto& r : common_received) {
    r = std::vector<std::atomic<int>>(kCommon);
  }
  bool export_ok[kThreads][kCommon] = {};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ClauseShare* ep = pool.endpoint(t);
      const auto consume = [&](std::span<const Lit> lits) {
        if (isCommon(lits)) {
          const auto k = static_cast<std::size_t>(
              (lits[0].var() - 2 * kThreads * kUniquePerThread) / 2);
          common_received[static_cast<std::size_t>(t)][k].fetch_add(1);
        } else {
          received[static_cast<std::size_t>(t)]
                  [static_cast<std::size_t>(decodeUnique(lits))]
                      .fetch_add(1);
        }
      };
      // Publish this thread's unique clauses plus the common set,
      // draining with a small budget every few publications so imports
      // race in-flight exports.
      for (int i = 0; i < kUniquePerThread; ++i) {
        EXPECT_TRUE(ep->exportClause(uniqueClause(t * kUniquePerThread + i),
                                     /*glue=*/2));
        if (i % 4 == 0) ep->importClauses(consume, /*maxClauses=*/8);
        if (i < kCommon) {
          // Every thread publishes the same kCommon clauses. Whether
          // this endpoint's copy is accepted depends on the race: an
          // interleaved drain that already delivered a foreign copy
          // seeds the fingerprint set and the export is refused — the
          // exactly-once invariant is checked after the join.
          export_ok[t][i] = ep->exportClause(commonClause(i), /*glue=*/2);
        }
      }
      done_publishing.fetch_add(1);
      while (done_publishing.load() < kThreads) std::this_thread::yield();
      // Final drain: everything the other producers published is now
      // visible (the barrier orders it) and must be delivered.
      ep->importClauses(consume, /*maxClauses=*/-1);
      EXPECT_FALSE(ep->hasPending());
    });
  }
  for (std::thread& th : threads) th.join();

  // Every endpoint received every *other* producer's unique clause
  // exactly once, and its own never (self-segment is skipped).
  for (int t = 0; t < kThreads; ++t) {
    for (int v = 0; v < kThreads * kUniquePerThread; ++v) {
      const int want = (v / kUniquePerThread == t) ? 0 : 1;
      EXPECT_EQ(received[static_cast<std::size_t>(t)]
                        [static_cast<std::size_t>(v)]
                            .load(),
                want)
          << "endpoint " << t << ", clause " << v;
    }
  }

  // Common clauses: per (endpoint, clause), the fingerprint set admits
  // the clause exactly once — either the endpoint's own export was
  // accepted, or exactly one foreign copy was delivered, never both
  // and never neither.
  std::int64_t commonPublications = 0;
  for (int k = 0; k < kCommon; ++k) {
    int exporters = 0;
    for (int t = 0; t < kThreads; ++t) {
      const int got = common_received[static_cast<std::size_t>(t)]
                                     [static_cast<std::size_t>(k)]
                                         .load();
      EXPECT_EQ(got + (export_ok[t][k] ? 1 : 0), 1)
          << "endpoint " << t << ", common clause " << k;
      if (export_ok[t][k]) ++exporters;
    }
    // The globally first export attempt has nothing to import yet, so
    // at least one publication of every common clause exists.
    EXPECT_GE(exporters, 1) << "common clause " << k;
    commonPublications += exporters;
  }

  // The store keeps duplicate publications (dedup is per endpoint);
  // nothing was dropped at this traffic level. Each endpoint scanned
  // every foreign common publication and delivered at most one, so the
  // duplicate-skip count closes the books exactly.
  EXPECT_EQ(pool.numClauses(),
            static_cast<std::int64_t>(kThreads) * kUniquePerThread +
                commonPublications);
  EXPECT_EQ(pool.numExportDrops(), 0);
  EXPECT_EQ(pool.numDuplicates(), (kThreads - 1) * commonPublications);
}

TEST(ExchangeStress, SegmentCapacityDropsAreCountedNotLost) {
  // A producer that outruns its consumers hits the bounded segment's
  // capacity: publish unique unit clauses until exportClause refuses,
  // then verify the accepted prefix arrives intact and the excess is
  // counted as drops rather than silently vanishing.
  constexpr int kTryClauses = 40000;  // above any plausible capacity
  SharedClausePool pool(2, kTryClauses);
  int accepted = 0;
  while (accepted < kTryClauses) {
    const std::vector<Lit> unit{posLit(accepted)};
    if (!pool.endpoint(0)->exportClause(unit, /*glue=*/1)) break;
    ++accepted;
  }
  ASSERT_LT(accepted, kTryClauses) << "segment never filled";
  ASSERT_GT(accepted, 1000) << "segment suspiciously small";
  EXPECT_EQ(pool.numClauses(), accepted);
  EXPECT_GE(pool.numExportDrops(), 1);

  // A second refused export (a fresh clause, so the endpoint's own
  // fingerprint dedup doesn't intercept it) counts another drop.
  const std::vector<Lit> extra{posLit(accepted + 1)};
  EXPECT_FALSE(pool.endpoint(0)->exportClause(extra, 1));
  EXPECT_EQ(pool.numExportDrops(), 2);

  // The consumer still receives every accepted clause, in publication
  // order, exactly once.
  int got = 0;
  bool in_order = true;
  pool.endpoint(1)->importClauses(
      [&](std::span<const Lit> lits) {
        in_order = in_order && lits.size() == 1 && lits[0].var() == got;
        ++got;
      },
      /*maxClauses=*/-1);
  EXPECT_EQ(got, accepted);
  EXPECT_TRUE(in_order);
  EXPECT_FALSE(pool.endpoint(1)->hasPending());
}

}  // namespace
}  // namespace msu
