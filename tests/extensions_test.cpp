/// Tests for the extension modules beyond the paper's core algorithm:
/// core trimming/minimization, weighted Fu-Malik (wmsu1), MaxSAT-safe
/// preprocessing, and the test-pattern-generation instance family.

#include <gtest/gtest.h>

#include <random>

#include "cnf/oracle.h"
#include "core/core_trim.h"
#include "core/msu4.h"
#include "core/preprocess.h"
#include "core/wmsu1.h"
#include "gen/random_cnf.h"
#include "gen/tpg.h"
#include "sat/solver.h"

namespace msu {
namespace {

// ---- core trimming --------------------------------------------------------

/// Builds a solver with selector-augmented clauses of `f`; returns the
/// selector assumptions (negated selectors).
std::vector<Lit> loadWithSelectors(Solver& s, const CnfFormula& f) {
  while (s.numVars() < f.numVars()) static_cast<void>(s.newVar());
  std::vector<Lit> assumps;
  for (const Clause& c : f.clauses()) {
    const Var sel = s.newVar();
    Clause aug = c;
    aug.push_back(posLit(sel));
    static_cast<void>(s.addClause(aug));
    assumps.push_back(negLit(sel));
  }
  return assumps;
}

TEST(CoreTrim, TrimmedCoreStillFails) {
  std::mt19937_64 rng(7);
  for (int round = 0; round < 10; ++round) {
    const CnfFormula f = randomKSat(
        {.numVars = 8, .numClauses = 40, .clauseLen = 3, .seed = rng()});
    Solver s;
    const std::vector<Lit> assumps = loadWithSelectors(s, f);
    if (s.solve(assumps) != lbool::False) continue;
    const std::vector<Lit> original = s.core();
    const std::vector<Lit> trimmed = trimCore(s, original);
    EXPECT_LE(trimmed.size(), original.size());
    // The trimmed set must still be a failing assumption set.
    EXPECT_EQ(s.solve(trimmed), lbool::False);
  }
}

TEST(CoreTrim, MinimizedCoreIsMinimalOnSmallInstance) {
  // Formula with a known 2-clause core plus junk: (x)(~x)(y)(z | y)...
  CnfFormula f(3);
  f.addClause({posLit(0)});
  f.addClause({negLit(0)});
  f.addClause({posLit(1)});
  f.addClause({posLit(2), posLit(1)});
  Solver s;
  const std::vector<Lit> assumps = loadWithSelectors(s, f);
  ASSERT_EQ(s.solve(assumps), lbool::False);
  const std::vector<Lit> minimized = minimizeCore(s, s.core());
  EXPECT_EQ(minimized.size(), 2u);
  EXPECT_EQ(s.solve(minimized), lbool::False);
}

TEST(CoreTrim, Msu4WithTrimmingAgreesWithOracle) {
  MaxSatOptions o;
  o.trimCoreRounds = 3;
  Msu4Solver solver(o);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const WcnfFormula w = WcnfFormula::allSoft(randomKSat(
        {.numVars = 8, .numClauses = 40, .clauseLen = 3, .seed = seed * 37}));
    const OracleResult truth = oracleMaxSat(w);
    const MaxSatResult r = solver.solve(w);
    ASSERT_EQ(r.status, MaxSatStatus::Optimum) << "seed " << seed;
    EXPECT_EQ(r.cost, *truth.optimumCost) << "seed " << seed;
  }
}

// ---- wmsu1 ----------------------------------------------------------------

TEST(Wmsu1, WeightedAgreesWithOracle) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    std::mt19937_64 rng(seed * 59);
    const CnfFormula f = randomKSat(
        {.numVars = 7, .numClauses = 26, .clauseLen = 3, .seed = rng()});
    WcnfFormula w(f.numVars());
    for (const Clause& c : f.clauses()) {
      w.addSoft(c, 1 + static_cast<Weight>(rng() % 5));
    }
    const OracleResult truth = oracleMaxSat(w);
    ASSERT_TRUE(truth.optimumCost.has_value());
    Wmsu1Solver solver;
    const MaxSatResult r = solver.solve(w);
    ASSERT_EQ(r.status, MaxSatStatus::Optimum) << "seed " << seed;
    EXPECT_EQ(r.cost, *truth.optimumCost) << "seed " << seed;
    const auto mc = w.cost(r.model);
    ASSERT_TRUE(mc.has_value());
    EXPECT_EQ(*mc, r.cost);
  }
}

TEST(Wmsu1, LargeWeightsNoDuplicationNeeded) {
  // Weights far beyond the duplication cap still solve natively.
  WcnfFormula w(2);
  w.addSoft({posLit(0)}, 1'000'000'000);
  w.addSoft({negLit(0)}, 2'000'000'000);
  w.addSoft({posLit(1)}, 5);
  Wmsu1Solver solver;
  const MaxSatResult r = solver.solve(w);
  ASSERT_EQ(r.status, MaxSatStatus::Optimum);
  EXPECT_EQ(r.cost, 1'000'000'000);
  EXPECT_EQ(r.model[0], lbool::False);
}

TEST(Wmsu1, PartialWeightedWithHards) {
  WcnfFormula w(2);
  w.addHard({posLit(0)});
  w.addSoft({negLit(0)}, 7);       // must fall
  w.addSoft({posLit(1)}, 3);
  const OracleResult truth = oracleMaxSat(w);
  Wmsu1Solver solver;
  const MaxSatResult r = solver.solve(w);
  ASSERT_EQ(r.status, MaxSatStatus::Optimum);
  EXPECT_EQ(r.cost, *truth.optimumCost);
  EXPECT_EQ(r.cost, 7);
}

TEST(Wmsu1, UnweightedReducesToMsu1Behaviour) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const WcnfFormula w = WcnfFormula::allSoft(randomKSat(
        {.numVars = 8, .numClauses = 38, .clauseLen = 3, .seed = seed * 97}));
    const OracleResult truth = oracleMaxSat(w);
    Wmsu1Solver solver;
    const MaxSatResult r = solver.solve(w);
    ASSERT_EQ(r.status, MaxSatStatus::Optimum);
    EXPECT_EQ(r.cost, *truth.optimumCost) << "seed " << seed;
  }
}

TEST(Wmsu1, HardUnsat) {
  WcnfFormula w(1);
  w.addHard({posLit(0)});
  w.addHard({negLit(0)});
  w.addSoft({posLit(0)}, 4);
  Wmsu1Solver solver;
  EXPECT_EQ(solver.solve(w).status, MaxSatStatus::UnsatisfiableHard);
}

// ---- preprocessing --------------------------------------------------------

TEST(Preprocess, HardUnitsPropagateIntoSofts) {
  WcnfFormula w(3);
  w.addHard({posLit(0)});                 // x0 = 1
  w.addHard({negLit(0), posLit(1)});      // -> x1 = 1
  w.addSoft({negLit(1)}, 5);              // falsified: forced cost 5
  w.addSoft({posLit(1), posLit(2)}, 2);   // satisfied: dropped
  w.addSoft({negLit(0), posLit(2)}, 3);   // shrinks to (x2)
  const PreprocessResult r = preprocessWcnf(w);
  ASSERT_TRUE(r.simplified.has_value());
  EXPECT_EQ(r.forcedCost, 5);
  EXPECT_EQ(r.fixedVars, 2);
  EXPECT_EQ(r.simplified->numHard(), 0);
  ASSERT_EQ(r.simplified->numSoft(), 1);
  EXPECT_EQ(r.simplified->soft()[0].lits, (Clause{posLit(2)}));
  EXPECT_EQ(r.forced[0], lbool::True);
  EXPECT_EQ(r.forced[1], lbool::True);
  EXPECT_EQ(r.forced[2], lbool::Undef);
}

TEST(Preprocess, RefutedHardsReported) {
  WcnfFormula w(1);
  w.addHard({posLit(0)});
  w.addHard({negLit(0)});
  const PreprocessResult r = preprocessWcnf(w);
  EXPECT_FALSE(r.simplified.has_value());
}

TEST(Preprocess, DuplicateSoftsMergeWeights) {
  WcnfFormula w(2);
  w.addSoft({posLit(0), posLit(1)}, 2);
  w.addSoft({posLit(1), posLit(0)}, 3);  // same clause, reordered
  const PreprocessResult r = preprocessWcnf(w);
  ASSERT_TRUE(r.simplified.has_value());
  ASSERT_EQ(r.simplified->numSoft(), 1);
  EXPECT_EQ(r.simplified->soft()[0].weight, 5);
  EXPECT_EQ(r.mergedSoft, 1);
}

TEST(Preprocess, TautologiesDropped) {
  WcnfFormula w(2);
  w.addHard({posLit(0), negLit(0)});
  w.addSoft({posLit(1), negLit(1)}, 9);
  const PreprocessResult r = preprocessWcnf(w);
  ASSERT_TRUE(r.simplified.has_value());
  EXPECT_EQ(r.simplified->numHard(), 0);
  EXPECT_EQ(r.simplified->numSoft(), 0);
  EXPECT_EQ(r.forcedCost, 0);
}

TEST(Preprocess, OptimumIsPreserved) {
  // opt(original) == forcedCost + opt(simplified), randomized.
  std::mt19937_64 rng(31);
  for (int round = 0; round < 12; ++round) {
    const CnfFormula f = randomKSat(
        {.numVars = 8, .numClauses = 30, .clauseLen = 2, .seed = rng()});
    WcnfFormula w(f.numVars());
    // A couple of hard units to trigger propagation.
    w.addHard({Lit(static_cast<Var>(rng() % 8), (rng() & 1) != 0)});
    CnfFormula hardCheck(8);
    hardCheck.addClause(w.hard()[0]);
    for (const Clause& c : f.clauses()) {
      w.addSoft(c, 1 + static_cast<Weight>(rng() % 3));
    }
    const OracleResult truth = oracleMaxSat(w);
    ASSERT_TRUE(truth.optimumCost.has_value());
    const PreprocessResult r = preprocessWcnf(w);
    ASSERT_TRUE(r.simplified.has_value());
    const OracleResult simplifiedTruth = oracleMaxSat(*r.simplified);
    ASSERT_TRUE(simplifiedTruth.optimumCost.has_value());
    EXPECT_EQ(*truth.optimumCost,
              r.forcedCost + *simplifiedTruth.optimumCost)
        << "round " << round;
  }
}

// ---- TPG ------------------------------------------------------------------

TEST(Tpg, DeadGatesFound) {
  Circuit c(2);
  const int a = c.addGate(GateType::And, {0, 1});
  const int dead = c.addGate(GateType::Or, {0, 1});
  c.addOutput(a);
  const std::vector<int> dg = deadGates(c);
  ASSERT_EQ(dg.size(), 1u);
  EXPECT_EQ(dg[0], dead);
}

TEST(Tpg, RedundantFaultIsUntestable) {
  Solver::Options so;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    RandomCircuitParams p;
    p.numInputs = 6;
    p.numGates = 40;
    p.numOutputs = 2;
    p.seed = seed;
    const CnfFormula miter = untestableFaultInstance(p, seed + 50);
    Solver s;
    while (s.numVars() < miter.numVars()) static_cast<void>(s.newVar());
    for (const Clause& c : miter.clauses()) {
      if (!s.addClause(c)) break;
    }
    EXPECT_EQ(s.solve(), lbool::False) << "seed " << seed;
  }
}

TEST(Tpg, TestableFaultIsSat) {
  // The stuck-at-1 twin of the redundant site is exposed when o == 0 and
  // should be testable on typical circuits.
  int satSeen = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    RandomCircuitParams p;
    p.numInputs = 6;
    p.numGates = 40;
    p.numOutputs = 2;
    p.seed = seed;
    const RedundantFaultCircuit rf = redundantFaultCircuit(p, seed + 90);
    const CnfFormula miter = buildTpgMiter(rf.circuit, rf.testable);
    Solver s;
    while (s.numVars() < miter.numVars()) static_cast<void>(s.newVar());
    bool ok = true;
    for (const Clause& c : miter.clauses()) {
      if (!s.addClause(c)) {
        ok = false;
        break;
      }
    }
    if (ok && s.solve() == lbool::True) ++satSeen;
  }
  EXPECT_GE(satSeen, 3);  // most sites are exposable
}

TEST(Tpg, MiterConsistentWithSimulation) {
  // For a testable fault, the SAT model's inputs must actually
  // distinguish the two circuits in simulation.
  RandomCircuitParams p;
  p.numInputs = 5;
  p.numGates = 30;
  p.numOutputs = 2;
  p.seed = 77;
  const RedundantFaultCircuit rf = redundantFaultCircuit(p, 123);
  const CnfFormula miter = buildTpgMiter(rf.circuit, rf.testable);
  Solver s;
  while (s.numVars() < miter.numVars()) static_cast<void>(s.newVar());
  for (const Clause& c : miter.clauses()) ASSERT_TRUE(s.addClause(c));
  if (s.solve() != lbool::True) GTEST_SKIP() << "fault not testable here";
  std::vector<bool> in(5);
  for (int i = 0; i < 5; ++i) {
    in[static_cast<std::size_t>(i)] = s.model()[i] == lbool::True;
  }
  // Faulty simulation: force the gate to the stuck value by rebuilding.
  const std::vector<bool> goodVals = rf.circuit.simulate(in);
  // Simulate faulty by hand: recompute with the fault applied.
  std::vector<bool> vals = goodVals;
  vals[static_cast<std::size_t>(rf.testable.gate)] = rf.testable.stuckAt;
  for (int g = rf.testable.gate + 1; g < rf.circuit.numGates(); ++g) {
    const Gate& gate = rf.circuit.gate(g);
    if (gate.type == GateType::Input) continue;
    bool v = false;
    switch (gate.type) {
      case GateType::And:
      case GateType::Nand:
        v = true;
        for (int f : gate.fanin) v = v && vals[static_cast<std::size_t>(f)];
        if (gate.type == GateType::Nand) v = !v;
        break;
      case GateType::Or:
      case GateType::Nor:
        v = false;
        for (int f : gate.fanin) v = v || vals[static_cast<std::size_t>(f)];
        if (gate.type == GateType::Nor) v = !v;
        break;
      case GateType::Xor:
        v = false;
        for (int f : gate.fanin) v = v != vals[static_cast<std::size_t>(f)];
        break;
      case GateType::Not:
        v = !vals[static_cast<std::size_t>(gate.fanin[0])];
        break;
      case GateType::Buf:
        v = vals[static_cast<std::size_t>(gate.fanin[0])];
        break;
      case GateType::Input:
        break;
    }
    if (g != rf.testable.gate) vals[static_cast<std::size_t>(g)] = v;
  }
  bool differs = false;
  for (int o : rf.circuit.outputs()) {
    if (vals[static_cast<std::size_t>(o)] !=
        goodVals[static_cast<std::size_t>(o)]) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace msu
