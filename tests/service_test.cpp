/// Tests of the SolveService (src/svc): per-job limits translated into
/// cooperative budgets (deadline / conflict / memory caps with
/// structured AbortReasons), watchdog enforcement, cancellation of
/// queued and running jobs, priority scheduling, load shedding,
/// graceful degradation (incumbent bounds on aborted MaxSAT jobs),
/// 1-worker determinism against the direct engine call, the
/// fault-injection harness, Budget copy semantics, and a randomized
/// submit/cancel/fault stress suite validated against the exhaustive
/// oracle. Runs under ASan and TSan in CI.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "cnf/oracle.h"
#include "gen/graphs.h"
#include "gen/pigeonhole.h"
#include "gen/random_cnf.h"
#include "harness/factory.h"
#include "obs/metrics.h"
#include "sat/budget.h"
#include "sat/fault.h"
#include "sat/solver.h"
#include "svc/service.h"

namespace msu {
namespace {

/// A hard-unsatisfiable WCNF whose refutation takes long enough that a
/// cancel/watchdog/limit reliably lands while it is still running.
WcnfFormula slowInstance() {
  const CnfFormula php = pigeonhole(9, 8);
  WcnfFormula w(php.numVars());
  for (const Clause& c : php.clauses()) w.addHard(c);
  w.addSoft({posLit(0)}, 1);
  return w;
}

/// An all-soft instance: every assignment is a model, so incumbent
/// upper bounds appear almost immediately, while the optimality proof
/// (near-threshold random MaxSAT) takes far longer than test deadlines.
WcnfFormula anytimeInstance() {
  return WcnfFormula::allSoft(randomUnsat3Sat(44, 5.6, 7));
}

/// Spin until \p id has been picked up by a worker. Needed wherever a
/// test reasons about queue depth behind a blocker job: submit() returns
/// before the worker dequeues, so "blocker occupies the worker" is only
/// true once its state leaves kQueued.
void waitUntilRunning(SolveService& service, JobId id) {
  while (true) {
    const auto status = service.poll(id);
    ASSERT_TRUE(status.has_value());
    if (status->state != JobState::kQueued) return;
    std::this_thread::yield();
  }
}

// ---------------------------------------------------------------------
// Budget semantics (the JobLimits substrate).

TEST(Budget, CopiesShareInterruptFlagAndAbortSink) {
  std::atomic<bool> stop{false};
  std::atomic<int> sink{static_cast<int>(AbortReason::kNone)};
  Budget original;
  original.setInterrupt(&stop);
  original.setAbortSink(&sink);

  const Budget copy = original;      // NOLINT: copy is the point
  Budget assigned;
  assigned = original;

  // One external stop signal reaches every copy.
  stop.store(true);
  EXPECT_TRUE(copy.interrupted());
  EXPECT_TRUE(assigned.timeExpired());

  // A reason noted through any copy lands in the shared sink; the
  // first reason wins against later ones.
  copy.noteAbort(AbortReason::kMemory);
  assigned.noteAbort(AbortReason::kDeadline);
  EXPECT_EQ(static_cast<AbortReason>(sink.load()), AbortReason::kMemory);
}

TEST(Budget, CopiesSnapshotTheDeadline) {
  Budget original = Budget::wallClock(3600.0);
  Budget copy = original;
  // Moving the original's deadline does not move the copy's.
  original.setWallClock(0.0);
  EXPECT_TRUE(original.timeExpired());
  EXPECT_FALSE(copy.timeExpired());
  ASSERT_TRUE(copy.remaining().has_value());
  EXPECT_GT(*copy.remaining(), 3000.0);
}

TEST(Budget, RemainingClampsAtZeroAndIsUnsetWithoutDeadline) {
  EXPECT_FALSE(Budget{}.remaining().has_value());
  const Budget expired = Budget::wallClock(-1.0);
  ASSERT_TRUE(expired.remaining().has_value());
  EXPECT_EQ(*expired.remaining(), 0.0);
}

TEST(Budget, TripsRecordStructuredReasons) {
  std::atomic<int> sink{static_cast<int>(AbortReason::kNone)};
  Budget b = Budget::conflicts(10);
  b.setAbortSink(&sink);
  EXPECT_FALSE(b.conflictsExhausted(9));
  EXPECT_TRUE(b.conflictsExhausted(10));
  EXPECT_EQ(static_cast<AbortReason>(sink.load()), AbortReason::kConflicts);

  std::atomic<int> memSink{static_cast<int>(AbortReason::kNone)};
  Budget m;
  m.setMaxMemory(1 << 20);
  m.setAbortSink(&memSink);
  EXPECT_TRUE(m.hasMemoryCap());
  EXPECT_FALSE(m.memoryExhausted(1 << 19));
  EXPECT_TRUE(m.memoryExhausted(1 << 20));
  EXPECT_EQ(static_cast<AbortReason>(memSink.load()), AbortReason::kMemory);
}

// ---------------------------------------------------------------------
// Service basics.

TEST(SolveService, SolvesASingleJobToTheOracleOptimum) {
  const WcnfFormula w =
      WcnfFormula::allSoft(randomUnsat3Sat(18, 5.0, 11));
  const OracleResult truth = oracleMaxSat(w);
  ASSERT_TRUE(truth.optimumCost.has_value());

  SolveService service(SolveServiceOptions{});
  const auto sub = service.submit(w);
  ASSERT_EQ(sub.status, SolveService::SubmitStatus::kAccepted);
  const JobOutcome out = service.await(sub.id);
  EXPECT_EQ(out.abort, AbortReason::kNone);
  ASSERT_EQ(out.result.status, MaxSatStatus::Optimum);
  EXPECT_EQ(out.result.cost, *truth.optimumCost);
  const auto modelCost = w.cost(out.result.model);
  ASSERT_TRUE(modelCost.has_value());
  EXPECT_EQ(*modelCost, out.result.cost);

  const auto status = service.poll(sub.id);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, JobState::kDone);
  EXPECT_FALSE(service.poll(sub.id + 999).has_value());
}

TEST(SolveService, OneWorkerNoLimitsIsBitForBitTheDirectEngineCall) {
  const WcnfFormula w =
      WcnfFormula::allSoft(randomUnsat3Sat(26, 5.2, 421));

  auto direct = makeSolver("msu4-v2", MaxSatOptions{});
  const MaxSatResult expect = direct->solve(w);
  ASSERT_EQ(expect.status, MaxSatStatus::Optimum);

  SolveServiceOptions so;
  so.workers = 1;
  so.engine = "msu4-v2";
  SolveService service(so);
  const auto sub = service.submit(w);
  ASSERT_EQ(sub.status, SolveService::SubmitStatus::kAccepted);
  const JobOutcome out = service.await(sub.id);

  ASSERT_EQ(out.result.status, MaxSatStatus::Optimum);
  EXPECT_EQ(out.result.cost, expect.cost);
  EXPECT_EQ(out.result.model, expect.model);
  EXPECT_EQ(out.result.iterations, expect.iterations);
  EXPECT_EQ(out.result.satCalls, expect.satCalls);
  EXPECT_EQ(out.result.satStats.conflicts, expect.satStats.conflicts);
  EXPECT_EQ(out.result.satStats.decisions, expect.satStats.decisions);
  EXPECT_EQ(out.result.satStats.propagations, expect.satStats.propagations);
  EXPECT_EQ(out.abort, AbortReason::kNone);
}

TEST(SolveService, RejectsSubmitAfterShutdown) {
  SolveService service(SolveServiceOptions{});
  service.shutdown();
  const auto sub = service.submit(WcnfFormula(1));
  EXPECT_EQ(sub.status, SolveService::SubmitStatus::kShutdown);
  EXPECT_EQ(sub.id, kJobIdUndef);
}

// ---------------------------------------------------------------------
// Scheduling, cancellation, load shedding.

TEST(SolveService, PriorityOrdersQueuedJobsTiesFifo) {
  SolveServiceOptions so;
  so.workers = 1;
  SolveService service(so);

  // Occupy the single worker so the next submissions stack up queued.
  const auto blocker = service.submit(slowInstance());
  ASSERT_EQ(blocker.status, SolveService::SubmitStatus::kAccepted);
  waitUntilRunning(service, blocker.id);

  const WcnfFormula small =
      WcnfFormula::allSoft(randomUnsat3Sat(14, 5.0, 5));
  JobLimits low, mid, high;
  low.priority = 0;
  mid.priority = 0;   // same as `low`: FIFO between them
  high.priority = 5;
  const auto a = service.submit(small, low);
  const auto b = service.submit(small, mid);
  const auto c = service.submit(small, high);
  ASSERT_EQ(service.queueDepth(), 3u);

  ASSERT_TRUE(service.cancel(blocker.id));
  const JobOutcome outA = service.await(a.id);
  const JobOutcome outB = service.await(b.id);
  const JobOutcome outC = service.await(c.id);

  // One worker, so queue wait times expose the service order: the
  // high-priority job ran first, then the two equal-priority jobs in
  // submission order.
  EXPECT_LT(outC.queue_seconds, outA.queue_seconds);
  EXPECT_LT(outA.queue_seconds, outB.queue_seconds);
  EXPECT_EQ(outA.result.status, MaxSatStatus::Optimum);
  EXPECT_EQ(outB.result.status, MaxSatStatus::Optimum);
  EXPECT_EQ(outC.result.status, MaxSatStatus::Optimum);
}

TEST(SolveService, CancelsAQueuedJobWithoutRunningIt) {
  SolveServiceOptions so;
  so.workers = 1;
  SolveService service(so);
  const auto blocker = service.submit(slowInstance());
  const auto queued = service.submit(
      WcnfFormula::allSoft(randomUnsat3Sat(14, 5.0, 5)));
  ASSERT_EQ(queued.status, SolveService::SubmitStatus::kAccepted);

  EXPECT_TRUE(service.cancel(queued.id));
  const auto status = service.poll(queued.id);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, JobState::kCancelled);
  const JobOutcome out = service.await(queued.id);
  EXPECT_EQ(out.abort, AbortReason::kCancelled);
  EXPECT_EQ(out.result.status, MaxSatStatus::Unknown);
  EXPECT_EQ(out.solve_seconds, 0.0);  // never ran
  // Cancelling twice is a no-op.
  EXPECT_FALSE(service.cancel(queued.id));
  EXPECT_EQ(service.counters().cancelled_queued, 1);

  EXPECT_TRUE(service.cancel(blocker.id));
}

TEST(SolveService, CancelsARunningJobViaItsInterruptFlag) {
  SolveServiceOptions so;
  so.workers = 1;
  SolveService service(so);
  const auto sub = service.submit(slowInstance());
  ASSERT_EQ(sub.status, SolveService::SubmitStatus::kAccepted);

  // Wait for the job to actually start, then cancel it mid-solve.
  while (service.poll(sub.id)->state == JobState::kQueued) {
    std::this_thread::yield();
  }
  EXPECT_TRUE(service.cancel(sub.id));
  const JobOutcome out = service.await(sub.id);
  EXPECT_EQ(out.abort, AbortReason::kCancelled);
  EXPECT_EQ(out.result.status, MaxSatStatus::Unknown);

  // The service stays usable after a cancellation.
  const WcnfFormula w =
      WcnfFormula::allSoft(randomUnsat3Sat(16, 5.0, 3));
  const auto next = service.submit(w);
  const JobOutcome out2 = service.await(next.id);
  EXPECT_EQ(out2.result.status, MaxSatStatus::Optimum);
}

TEST(SolveService, ShedsLoadWhenTheQueueIsFull) {
  SolveServiceOptions so;
  so.workers = 1;
  so.max_queue_depth = 2;
  SolveService service(so);
  const auto blocker = service.submit(slowInstance());
  ASSERT_EQ(blocker.status, SolveService::SubmitStatus::kAccepted);
  waitUntilRunning(service, blocker.id);

  const WcnfFormula small =
      WcnfFormula::allSoft(randomUnsat3Sat(12, 5.0, 1));
  const auto q1 = service.submit(small);
  const auto q2 = service.submit(small);
  ASSERT_EQ(q1.status, SolveService::SubmitStatus::kAccepted);
  ASSERT_EQ(q2.status, SolveService::SubmitStatus::kAccepted);

  const auto shed = service.submit(small);
  EXPECT_EQ(shed.status, SolveService::SubmitStatus::kOverloaded);
  EXPECT_EQ(shed.id, kJobIdUndef);
  EXPECT_EQ(service.counters().shed, 1);

  ASSERT_TRUE(service.cancel(blocker.id));
  EXPECT_EQ(service.await(q1.id).result.status, MaxSatStatus::Optimum);
  EXPECT_EQ(service.await(q2.id).result.status, MaxSatStatus::Optimum);
}

TEST(SolveService, ShedsLoadWhenTheMemoryCeilingWouldBeExceeded) {
  const WcnfFormula blockerFormula = slowInstance();
  const WcnfFormula small = WcnfFormula::allSoft(randomUnsat3Sat(12, 5.0, 1));

  // memBytesEstimate counts vector *capacities*, and submit() estimates
  // the copy it receives (capacity == size) — so size the ceiling from
  // copies too, or the locally-built formulas' growth slack inflates it.
  const std::int64_t blockerEst = WcnfFormula(blockerFormula).memBytesEstimate();
  const std::int64_t smallEst = WcnfFormula(small).memBytesEstimate();
  SolveServiceOptions so;
  so.workers = 1;
  // Room for the blocker plus half the small job: admission control
  // must refuse the small job while the blocker holds its share.
  so.max_service_mem_bytes = blockerEst + smallEst / 2;
  SolveService service(so);

  const auto blocker = service.submit(blockerFormula);
  ASSERT_EQ(blocker.status, SolveService::SubmitStatus::kAccepted);
  waitUntilRunning(service, blocker.id);

  const auto shed = service.submit(small);
  EXPECT_EQ(shed.status, SolveService::SubmitStatus::kOverloaded);
  EXPECT_EQ(shed.id, kJobIdUndef);
  EXPECT_EQ(service.counters().shed, 1);

  // Releasing the blocker frees its share; the small job now fits.
  ASSERT_TRUE(service.cancel(blocker.id));
  static_cast<void>(service.await(blocker.id));
  while (true) {  // finished-job bookkeeping races submit by one beat
    const auto retry = service.submit(small);
    if (retry.status == SolveService::SubmitStatus::kAccepted) {
      EXPECT_EQ(service.await(retry.id).result.status, MaxSatStatus::Optimum);
      break;
    }
    ASSERT_EQ(retry.status, SolveService::SubmitStatus::kOverloaded);
    std::this_thread::yield();
  }
}

// ---------------------------------------------------------------------
// Per-job limits and graceful degradation.

TEST(SolveService, DeadlineAbortStillReportsTheIncumbentBound) {
  SolveServiceOptions so;
  so.engine = "linear";  // model-improving: incumbents appear early
  SolveService service(so);
  const WcnfFormula w = anytimeInstance();
  JobLimits limits;
  limits.wall_seconds = 0.1;
  const auto sub = service.submit(w, limits);
  ASSERT_EQ(sub.status, SolveService::SubmitStatus::kAccepted);
  const JobOutcome out = service.await(sub.id);

  ASSERT_EQ(out.result.status, MaxSatStatus::Unknown);
  EXPECT_EQ(out.abort, AbortReason::kDeadline);
  // Graceful degradation: the best model found before the deadline is
  // surfaced with its cost as the upper bound.
  EXPECT_FALSE(out.result.model.empty());
  const auto cost = w.cost(out.result.model);
  ASSERT_TRUE(cost.has_value());
  EXPECT_EQ(*cost, out.result.upperBound);
  EXPECT_LE(out.result.lowerBound, out.result.upperBound);
  EXPECT_LE(out.result.upperBound, static_cast<Weight>(w.numSoft()));
}

TEST(SolveService, WatchdogEnforcesTheServiceWideDeadline) {
  SolveServiceOptions so;
  so.default_max_job_seconds = 0.05;
  so.watchdog_period_s = 0.005;
  SolveService service(so);
  // No per-job wall limit: the job's own Budget carries no deadline, so
  // only the watchdog's interrupt can stop it.
  const auto sub = service.submit(slowInstance());
  ASSERT_EQ(sub.status, SolveService::SubmitStatus::kAccepted);
  const JobOutcome out = service.await(sub.id);
  EXPECT_EQ(out.result.status, MaxSatStatus::Unknown);
  EXPECT_EQ(out.abort, AbortReason::kDeadline);
  EXPECT_LT(out.solve_seconds, 30.0);  // stopped far before a refutation
}

TEST(SolveService, MemoryCapAbortsWithBoundedFootprint) {
  constexpr std::int64_t kCap = 1 << 20;  // 1 MiB
  SolveService service(SolveServiceOptions{});
  JobLimits limits;
  limits.max_memory_bytes = kCap;
  const auto sub = service.submit(slowInstance(), limits);
  ASSERT_EQ(sub.status, SolveService::SubmitStatus::kAccepted);
  const JobOutcome out = service.await(sub.id);

  ASSERT_EQ(out.result.status, MaxSatStatus::Unknown);
  EXPECT_EQ(out.abort, AbortReason::kMemory);
  // The gauge that tripped the cap is surfaced, and the footprint stayed
  // bounded: growth past the cap is limited to one poll period.
  EXPECT_GE(out.result.satStats.mem_bytes, kCap);
  EXPECT_LT(out.result.satStats.mem_bytes, 8 * kCap);
}

TEST(SolveService, ConflictCapAbortsWithStructuredReason) {
  SolveService service(SolveServiceOptions{});
  JobLimits limits;
  limits.max_conflicts = 50;
  const auto sub = service.submit(slowInstance(), limits);
  const JobOutcome out = service.await(sub.id);
  ASSERT_EQ(out.result.status, MaxSatStatus::Unknown);
  EXPECT_EQ(out.abort, AbortReason::kConflicts);
  // The cap is loose (per poll granularity) but must actually bind.
  EXPECT_LE(out.result.satStats.conflicts, 50 + 512);
}

// ---------------------------------------------------------------------
// Live progress: poll() streams the running job's ProgressSink.

TEST(SolveService, PollStreamsMonotonicallyTighteningBounds) {
  SolveServiceOptions so;
  so.engine = "linear";  // model-improving: incumbents appear early
  SolveService service(so);
  const WcnfFormula w = anytimeInstance();
  JobLimits limits;
  limits.wall_seconds = 0.4;
  const auto sub = service.submit(w, limits);
  ASSERT_EQ(sub.status, SolveService::SubmitStatus::kAccepted);

  // Sample the live status until the job finishes. The poll() contract:
  // bounds only tighten (lower rises, upper falls), work counters only
  // grow, and an upper bound never un-publishes.
  Weight lastLower = 0;
  Weight lastUpper = 0;
  bool sawUpper = false;
  bool sawRunningUpper = false;
  std::int64_t lastConflicts = 0;
  std::int64_t lastCalls = 0;
  while (true) {
    const auto st = service.poll(sub.id);
    ASSERT_TRUE(st.has_value());
    EXPECT_GE(st->lowerBound, lastLower);
    lastLower = st->lowerBound;
    if (sawUpper) {
      ASSERT_TRUE(st->hasUpperBound);
      EXPECT_LE(st->upperBound, lastUpper);
    }
    if (st->hasUpperBound) {
      sawUpper = true;
      lastUpper = st->upperBound;
      EXPECT_LE(st->lowerBound, st->upperBound);
      if (st->state == JobState::kRunning) sawRunningUpper = true;
    }
    EXPECT_GE(st->conflicts, lastConflicts);
    EXPECT_GE(st->satCalls, lastCalls);
    lastConflicts = st->conflicts;
    lastCalls = st->satCalls;
    if (st->state == JobState::kDone) break;
    std::this_thread::yield();
  }

  // The anytime instance guarantees an incumbent long before the
  // deadline, so the live stream (not just the final result) must have
  // published an upper bound.
  EXPECT_TRUE(sawRunningUpper);
  EXPECT_GT(lastCalls, 0);

  const JobOutcome out = service.await(sub.id);
  ASSERT_EQ(out.result.status, MaxSatStatus::Unknown);
  EXPECT_EQ(out.abort, AbortReason::kDeadline);
  // The final status is the result's bounds — at least as tight as any
  // live sample.
  EXPECT_EQ(out.result.lowerBound, lastLower);
  EXPECT_EQ(out.result.upperBound, lastUpper);
}

// ---------------------------------------------------------------------
// Service metrics: registry counters/gauges/histograms after jobs, and
// the service-wide memory gauge fed by the running jobs' sinks.

TEST(SolveService, MetricsRegistryReflectsCompletedJobs) {
  obs::MetricsRegistry registry;
  SolveServiceOptions so;
  so.workers = 1;
  so.metrics = &registry;
  SolveService service(so);

  const WcnfFormula w =
      WcnfFormula::allSoft(randomUnsat3Sat(16, 5.0, 3));
  const auto a = service.submit(w);
  const auto b = service.submit(w);
  ASSERT_EQ(service.await(a.id).result.status, MaxSatStatus::Optimum);
  ASSERT_EQ(service.await(b.id).result.status, MaxSatStatus::Optimum);

  EXPECT_EQ(registry.counter("msu_svc_jobs_submitted_total").value(), 2);
  EXPECT_EQ(registry.counter("msu_svc_jobs_completed_total").value(), 2);
  EXPECT_EQ(registry.counter("msu_svc_jobs_shed_total").value(), 0);
  EXPECT_EQ(registry.gauge("msu_svc_queue_depth").value(), 0);
  EXPECT_EQ(registry.gauge("msu_svc_running_jobs").value(), 0);
  EXPECT_EQ(registry.gauge("msu_svc_mem_bytes").value(), 0);  // none running
  EXPECT_EQ(registry.histogram("msu_svc_job_queue_us").count(), 2);
  EXPECT_EQ(registry.histogram("msu_svc_job_solve_us").count(), 2);
  // Oracle-call latency flows in from the engines' OracleSessions, and
  // the absorbed SolverStats counters land under msu_solver_*.
  EXPECT_GT(registry.histogram("msu_oracle_solve_us").count(), 0);
  EXPECT_GT(registry.counter("msu_solver_conflicts_total").value(), 0);
  EXPECT_GT(registry.counter("msu_solver_solves_total").value(), 0);
}

TEST(SolveService, MemGaugeAggregatesRunningJobs) {
  obs::MetricsRegistry registry;
  SolveServiceOptions so;
  so.metrics = &registry;
  so.watchdog_period_s = 0.002;  // the gauge updates on watchdog scans
  SolveService service(so);

  const auto sub = service.submit(slowInstance());
  ASSERT_EQ(sub.status, SolveService::SubmitStatus::kAccepted);
  waitUntilRunning(service, sub.id);

  // The running job's session reports memory through its sink; both the
  // per-job poll() view and the aggregated service gauge must pick a
  // positive figure up within a few watchdog periods.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  bool sawJobMem = false;
  bool sawGauge = false;
  while ((!sawJobMem || !sawGauge) &&
         std::chrono::steady_clock::now() < deadline) {
    const auto st = service.poll(sub.id);
    ASSERT_TRUE(st.has_value());
    ASSERT_NE(st->state, JobState::kDone);  // php-9/8 outlives this loop
    if (st->memBytes > 0) sawJobMem = true;
    if (registry.gauge("msu_svc_mem_bytes").value() > 0) sawGauge = true;
    std::this_thread::yield();
  }
  EXPECT_TRUE(sawJobMem);
  EXPECT_TRUE(sawGauge);

  ASSERT_TRUE(service.cancel(sub.id));
  static_cast<void>(service.await(sub.id));
}

// ---------------------------------------------------------------------
// Fault injection.

TEST(SolveService, InjectedPollExpiryAbortsWithFaultReason) {
  FaultInjector fault;
  fault.expireAtPoll(1);
  SolveService service(SolveServiceOptions{});
  JobLimits limits;
  limits.fault = &fault;
  const auto sub = service.submit(slowInstance(), limits);
  const JobOutcome out = service.await(sub.id);
  EXPECT_EQ(out.result.status, MaxSatStatus::Unknown);
  EXPECT_EQ(out.abort, AbortReason::kFault);
  EXPECT_GE(fault.polls(), 1);
}

TEST(SolveService, InjectedAllocationFailureAbortsAsMemory) {
  FaultInjector fault;
  fault.failAllocAt(1);
  SolveService service(SolveServiceOptions{});
  JobLimits limits;
  limits.fault = &fault;
  const auto sub = service.submit(slowInstance(), limits);
  const JobOutcome out = service.await(sub.id);
  EXPECT_EQ(out.result.status, MaxSatStatus::Unknown);
  EXPECT_EQ(out.abort, AbortReason::kMemory);
  EXPECT_GE(fault.allocs(), 1);
}

TEST(SolveService, InjectedSpuriousUnknownIsAbsorbedGracefully) {
  FaultInjector fault;
  fault.unknownAtSolve(1);
  SolveService service(SolveServiceOptions{});
  JobLimits limits;
  limits.fault = &fault;
  const WcnfFormula w =
      WcnfFormula::allSoft(randomUnsat3Sat(16, 5.0, 9));
  const auto sub = service.submit(w, limits);
  const JobOutcome out = service.await(sub.id);
  // The very first oracle call "gives up"; the engine must degrade to
  // Unknown with sound bounds, not crash or claim an optimum.
  EXPECT_EQ(out.result.status, MaxSatStatus::Unknown);
  EXPECT_EQ(out.abort, AbortReason::kFault);
  EXPECT_LE(out.result.lowerBound, out.result.upperBound);
  EXPECT_EQ(fault.solves(), 1);
}

// ---------------------------------------------------------------------
// Solver-level cancellation sweep (warm trail + scope hygiene under
// repeated interruption; ASan polices the memory side).

TEST(Cancellation, SweepInterruptAfterNConflictsKeepsSolverReusable) {
  const CnfFormula hard = randomUnsat3Sat(22, 5.2, 99);

  // Reference run: the undisturbed refutation.
  Solver reference;
  while (reference.numVars() < hard.numVars()) {
    static_cast<void>(reference.newVar());
  }
  for (const Clause& c : hard.clauses()) ASSERT_TRUE(reference.addClause(c));
  ASSERT_EQ(reference.solve(), lbool::False);

  for (std::int64_t cap = 1; cap <= 256; cap *= 2) {
    Solver s;  // reuse_trail defaults on: warm trail across the solves
    while (s.numVars() < hard.numVars()) static_cast<void>(s.newVar());
    for (const Clause& c : hard.clauses()) ASSERT_TRUE(s.addClause(c));

    std::atomic<bool> stop{false};
    std::atomic<int> sink{static_cast<int>(AbortReason::kNone)};

    // Phase 1: interrupt the solve after every `cap` further conflicts
    // until the budget stops binding. Every abort must leave the solver
    // reusable: no stuck assumptions, no corrupted trail.
    int aborted = 0;
    lbool r = lbool::Undef;
    while (r == lbool::Undef && aborted < 200) {
      Budget b = Budget::conflicts(s.stats().conflicts + cap);
      b.setInterrupt(&stop);
      b.setAbortSink(&sink);
      s.setBudget(b);
      r = s.solve();
      if (r == lbool::Undef) {
        ++aborted;
        EXPECT_EQ(static_cast<AbortReason>(sink.load()),
                  AbortReason::kConflicts)
            << "cap " << cap;
      }
    }

    // Phase 2: a pre-raised interrupt flag makes the next solve a no-op
    // returning Undef, and clearing it restores normal operation.
    if (r == lbool::Undef) {
      stop.store(true);
      EXPECT_EQ(s.solve(), lbool::Undef);
      stop.store(false);
    }

    // Phase 3: unlimited re-solve reaches the reference answer.
    s.setBudget(Budget::unlimited());
    EXPECT_EQ(s.solve(), lbool::False) << "cap " << cap;
  }
}

TEST(Cancellation, ConcurrentInterruptStopsARunningSolve) {
  const CnfFormula php = pigeonhole(9, 8);
  Solver s;
  while (s.numVars() < php.numVars()) static_cast<void>(s.newVar());
  for (const Clause& c : php.clauses()) ASSERT_TRUE(s.addClause(c));

  std::atomic<bool> stop{false};
  std::atomic<int> sink{static_cast<int>(AbortReason::kNone)};
  Budget b;
  b.setInterrupt(&stop);
  b.setAbortSink(&sink);
  s.setBudget(b);

  std::thread canceller([&stop, &sink] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    // External-canceller protocol: reason first, then the flag.
    int expected = static_cast<int>(AbortReason::kNone);
    sink.compare_exchange_strong(expected,
                                 static_cast<int>(AbortReason::kCancelled));
    stop.store(true);
  });
  const lbool r = s.solve();
  canceller.join();
  // Either the cancel landed first (Undef) or the refutation finished
  // under 20 ms on a fast machine; both are legal, but an Undef must
  // carry the canceller's reason.
  if (r == lbool::Undef) {
    EXPECT_EQ(static_cast<AbortReason>(sink.load()), AbortReason::kCancelled);
    stop.store(false);
    s.setBudget(Budget::unlimited());
    EXPECT_EQ(s.solve(), lbool::False);
  } else {
    EXPECT_EQ(r, lbool::False);
  }
}

// ---------------------------------------------------------------------
// Randomized stress: >= 200 submit/cancel/fault schedules, validated
// against the exhaustive oracle. TSan/ASan run this in CI.

TEST(SolveServiceStress, RandomizedSchedulesMatchTheOracle) {
  constexpr int kSchedules = 208;
  const char* const kEngines[] = {"msu4-v2", "oll", "linear", "msu3"};

  for (int schedule = 0; schedule < kSchedules; ++schedule) {
    std::mt19937_64 rng(0xC0FFEE + static_cast<std::uint64_t>(schedule));

    SolveServiceOptions so;
    so.workers = 1 + static_cast<int>(rng() % 3);
    so.max_queue_depth = 4 + rng() % 5;
    so.engine = kEngines[rng() % 4];
    so.watchdog_period_s = 0.002;

    struct Submitted {
      WcnfFormula wcnf;
      OracleResult truth;
      JobId id = kJobIdUndef;
      bool cancelled_by_us = false;
    };
    std::vector<Submitted> jobs;
    std::vector<std::unique_ptr<FaultInjector>> injectors;

    {
      SolveService service(so);
      const int numJobs = 3 + static_cast<int>(rng() % 4);
      for (int j = 0; j < numJobs; ++j) {
        // Small mixed hard/soft instances the exhaustive oracle can
        // certify.
        const CnfFormula base =
            randomKSat({.numVars = 8 + static_cast<int>(rng() % 4),
                        .numClauses = 30 + static_cast<int>(rng() % 15),
                        .clauseLen = 3,
                        .seed = rng()});
        Submitted sj;
        sj.wcnf = WcnfFormula(base.numVars());
        const bool weighted = (rng() % 2) == 0;
        for (int i = 0; i < base.numClauses(); ++i) {
          if (rng() % 5 == 0) {
            sj.wcnf.addHard(base.clause(i));
          } else {
            sj.wcnf.addSoft(base.clause(i),
                            weighted ? static_cast<Weight>(1 + rng() % 4)
                                     : 1);
          }
        }
        sj.truth = oracleMaxSat(sj.wcnf);

        JobLimits limits;
        limits.priority = static_cast<int>(rng() % 3);
        switch (rng() % 8) {
          case 0:
            limits.max_conflicts = static_cast<std::int64_t>(rng() % 200);
            break;
          case 1:
            limits.wall_seconds = 0.001 * static_cast<double>(1 + rng() % 40);
            break;
          case 2:
            limits.max_memory_bytes =
                static_cast<std::int64_t>((64 + rng() % 960) * 1024);
            break;
          case 3: {
            auto fault = std::make_unique<FaultInjector>();
            switch (rng() % 3) {
              case 0:
                fault->expireAtPoll(1 + static_cast<std::int64_t>(rng() % 50));
                break;
              case 1:
                fault->failAllocAt(1 + static_cast<std::int64_t>(rng() % 100));
                break;
              default:
                fault->unknownAtSolve(1 + static_cast<std::int64_t>(rng() % 3));
                break;
            }
            limits.fault = fault.get();
            injectors.push_back(std::move(fault));
            break;
          }
          default:
            break;  // no limits
        }

        const auto sub = service.submit(sj.wcnf, limits);
        if (sub.status == SolveService::SubmitStatus::kAccepted) {
          sj.id = sub.id;
          // Random cancellation: sometimes immediately, sometimes after
          // other submissions have raced ahead.
          if (rng() % 4 == 0) {
            sj.cancelled_by_us = true;
            static_cast<void>(service.cancel(sub.id));
          }
        } else {
          EXPECT_EQ(sub.status, SolveService::SubmitStatus::kOverloaded);
        }
        jobs.push_back(std::move(sj));
      }

      // A slice of schedules tears the service down with jobs still in
      // flight — shutdown must cancel cleanly, never hang or leak.
      const bool earlyShutdown = (rng() % 5) == 0;
      if (earlyShutdown) service.shutdown();

      for (const Submitted& sj : jobs) {
        if (sj.id == kJobIdUndef) continue;
        const JobOutcome out = service.await(sj.id);
        const MaxSatResult& r = out.result;
        switch (r.status) {
          case MaxSatStatus::Optimum: {
            ASSERT_TRUE(sj.truth.optimumCost.has_value())
                << "schedule " << schedule;
            EXPECT_EQ(r.cost, *sj.truth.optimumCost)
                << "schedule " << schedule;
            const auto modelCost = sj.wcnf.cost(r.model);
            ASSERT_TRUE(modelCost.has_value()) << "schedule " << schedule;
            EXPECT_EQ(*modelCost, r.cost) << "schedule " << schedule;
            break;
          }
          case MaxSatStatus::UnsatisfiableHard:
            EXPECT_FALSE(sj.truth.optimumCost.has_value())
                << "schedule " << schedule;
            break;
          case MaxSatStatus::Unknown:
            // Aborted: a structured reason must exist, and whatever
            // bounds were reached must bracket the true optimum.
            EXPECT_NE(out.abort, AbortReason::kNone)
                << "schedule " << schedule;
            if (sj.truth.optimumCost.has_value()) {
              EXPECT_LE(r.lowerBound, *sj.truth.optimumCost)
                  << "schedule " << schedule;
            }
            break;
        }
      }
    }  // ~SolveService joins everything
  }
}

}  // namespace
}  // namespace msu
