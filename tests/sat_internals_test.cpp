/// White-box tests of the SAT substrate's internals: the clause arena
/// (allocation, views, relocation GC), the indexed activity heap, and
/// the Budget type. Plus stress tests that force reduceDB and GC through
/// the public interface.

#include <gtest/gtest.h>

#include <random>

#include "cnf/oracle.h"
#include "harness/factory.h"
#include "proof/checker.h"
#include "proof/drup.h"
#include "gen/pigeonhole.h"
#include "gen/random_cnf.h"
#include "sat/arena.h"
#include "sat/watches.h"
#include "sat/budget.h"
#include "sat/heap.h"
#include "sat/solver.h"

namespace msu {
namespace {

TEST(Arena, AllocAndView) {
  ClauseArena arena;
  const std::vector<Lit> lits{posLit(0), negLit(1), posLit(2)};
  const CRef ref = arena.alloc(lits, /*learnt=*/false);
  ClauseRefView c = arena[ref];
  EXPECT_EQ(c.size(), 3);
  EXPECT_FALSE(c.learnt());
  EXPECT_FALSE(c.deleted());
  EXPECT_EQ(c[0], posLit(0));
  EXPECT_EQ(c[1], negLit(1));
  EXPECT_EQ(c[2], posLit(2));
}

TEST(Arena, LearntActivity) {
  ClauseArena arena;
  const std::vector<Lit> lits{posLit(0), negLit(1)};
  const CRef ref = arena.alloc(lits, /*learnt=*/true);
  ClauseRefView c = arena[ref];
  EXPECT_TRUE(c.learnt());
  EXPECT_FLOAT_EQ(c.activity(), 0.0f);
  c.setActivity(3.5f);
  EXPECT_FLOAT_EQ(c.activity(), 3.5f);
}

TEST(Arena, LiteralMutationAndShrink) {
  ClauseArena arena;
  const std::vector<Lit> lits{posLit(0), posLit(1), posLit(2), posLit(3)};
  const CRef ref = arena.alloc(lits, false);
  ClauseRefView c = arena[ref];
  c[0] = negLit(7);
  EXPECT_EQ(c[0], negLit(7));
  c.shrink(2);
  EXPECT_EQ(c.size(), 2);
  EXPECT_EQ(c[1], posLit(1));
}

TEST(Arena, RelocationPreservesContent) {
  ClauseArena from;
  std::vector<CRef> refs;
  for (int i = 0; i < 50; ++i) {
    std::vector<Lit> lits;
    for (int j = 0; j <= i % 5 + 1; ++j) lits.push_back(posLit(i + j));
    refs.push_back(from.alloc(lits, i % 3 == 0));
  }
  // Mark some deleted (GC keeps them; deletion flag carries over).
  from[refs[4]].markDeleted();

  ClauseArena to;
  std::vector<CRef> moved = refs;
  for (CRef& r : moved) from.reloc(r, to);
  // Re-relocating through the forwarding pointer gives the same target.
  std::vector<CRef> again = refs;
  for (CRef& r : again) from.reloc(r, to);
  EXPECT_EQ(moved, again);

  for (std::size_t i = 0; i < refs.size(); ++i) {
    ClauseRefView c = to[moved[i]];
    EXPECT_EQ(c.size(), static_cast<int>(i % 5 + 2));
    EXPECT_EQ(c[0], posLit(static_cast<Var>(i)));
    EXPECT_EQ(c.learnt(), i % 3 == 0);
  }
  EXPECT_TRUE(to[moved[4]].deleted());
}

TEST(Arena, WastedAccounting) {
  ClauseArena arena;
  const std::vector<Lit> lits{posLit(0), posLit(1)};
  const CRef a = arena.alloc(lits, false);
  EXPECT_EQ(arena.wasted(), 0u);
  arena[a].markDeleted();
  arena.markWasted(2, false);
  EXPECT_EQ(arena.wasted(), 3u);  // header + 2 lits
}

TEST(Heap, MaxActivityComesFirst) {
  std::vector<double> act{1.0, 5.0, 3.0, 4.0, 2.0};
  VarOrderHeap heap(act);
  for (Var v = 0; v < 5; ++v) heap.insert(v);
  EXPECT_EQ(heap.removeMax(), 1);
  EXPECT_EQ(heap.removeMax(), 3);
  EXPECT_EQ(heap.removeMax(), 2);
  EXPECT_EQ(heap.removeMax(), 4);
  EXPECT_EQ(heap.removeMax(), 0);
  EXPECT_TRUE(heap.empty());
}

TEST(Heap, UpdateAfterActivityBump) {
  std::vector<double> act{1.0, 2.0, 3.0};
  VarOrderHeap heap(act);
  for (Var v = 0; v < 3; ++v) heap.insert(v);
  act[0] = 10.0;
  heap.update(0);
  EXPECT_EQ(heap.removeMax(), 0);
}

TEST(Heap, ContainsAndReinsert) {
  std::vector<double> act{1.0, 2.0};
  VarOrderHeap heap(act);
  heap.insert(0);
  EXPECT_TRUE(heap.contains(0));
  EXPECT_FALSE(heap.contains(1));
  EXPECT_EQ(heap.removeMax(), 0);
  EXPECT_FALSE(heap.contains(0));
  heap.insert(0);
  heap.insert(1);
  EXPECT_EQ(heap.removeMax(), 1);
}

TEST(Heap, BuildFromList) {
  std::vector<double> act{5.0, 1.0, 9.0, 2.0};
  VarOrderHeap heap(act);
  heap.insert(0);
  heap.build({1, 2, 3});  // replaces content
  EXPECT_FALSE(heap.contains(0));
  EXPECT_EQ(heap.removeMax(), 2);
  EXPECT_EQ(heap.removeMax(), 3);
  EXPECT_EQ(heap.removeMax(), 1);
}

TEST(Heap, RandomizedAgainstSort) {
  std::mt19937_64 rng(5);
  for (int round = 0; round < 20; ++round) {
    const int n = 1 + static_cast<int>(rng() % 40);
    std::vector<double> act(static_cast<std::size_t>(n));
    for (double& a : act) {
      a = static_cast<double>(rng() % 1000);
    }
    VarOrderHeap heap(act);
    for (Var v = 0; v < n; ++v) heap.insert(v);
    std::vector<Var> order;
    while (!heap.empty()) order.push_back(heap.removeMax());
    for (std::size_t i = 1; i < order.size(); ++i) {
      EXPECT_GE(act[order[i - 1]], act[order[i]]) << "round " << round;
    }
  }
}

TEST(Budget, UnlimitedByDefault) {
  const Budget b;
  EXPECT_TRUE(b.isUnlimited());
  EXPECT_FALSE(b.timeExpired());
  EXPECT_FALSE(b.conflictsExhausted(1'000'000'000));
  EXPECT_FALSE(b.nodesExhausted(1'000'000'000));
}

TEST(Budget, ConflictLimit) {
  const Budget b = Budget::conflicts(100);
  EXPECT_FALSE(b.conflictsExhausted(99));
  EXPECT_TRUE(b.conflictsExhausted(100));
  EXPECT_FALSE(b.isUnlimited());
}

TEST(Budget, WallClockExpires) {
  Budget b = Budget::wallClock(0.0);
  EXPECT_TRUE(b.timeExpired());
  Budget c = Budget::wallClock(60.0);
  EXPECT_FALSE(c.timeExpired());
}

TEST(Budget, NodeLimit) {
  Budget b;
  b.setMaxNodes(10);
  EXPECT_FALSE(b.nodesExhausted(9));
  EXPECT_TRUE(b.nodesExhausted(10));
}

// ---- stress through the public interface ---------------------------------

TEST(SolverStress, ManySolvesExerciseReduceDbAndGc) {
  // A long incremental session: repeatedly add constraints and solve, so
  // learnt clauses accumulate, reduceDB fires, and the arena GC runs.
  Solver s;
  const CnfFormula base = randomKSat(
      {.numVars = 60, .numClauses = 240, .clauseLen = 3, .seed = 99});
  while (s.numVars() < base.numVars()) static_cast<void>(s.newVar());
  for (const Clause& c : base.clauses()) ASSERT_TRUE(s.addClause(c));

  std::mt19937_64 rng(123);
  int satCount = 0;
  for (int round = 0; round < 60 && s.okay(); ++round) {
    // Random assumption pair each round.
    std::vector<Lit> assumps;
    for (int i = 0; i < 3; ++i) {
      assumps.push_back(Lit(static_cast<Var>(rng() % 60), (rng() & 1) != 0));
    }
    const lbool st = s.solve(assumps);
    ASSERT_NE(st, lbool::Undef);
    if (st == lbool::True) ++satCount;
    // Periodically grow the formula.
    if (round % 7 == 3) {
      const Var a = static_cast<Var>(rng() % 60);
      const Var b = static_cast<Var>(rng() % 60);
      if (a != b) {
        static_cast<void>(
            s.addClause({Lit(a, (rng() & 1) != 0), Lit(b, (rng() & 1) != 0)}));
      }
    }
  }
  EXPECT_GT(satCount, 0);
  EXPECT_GT(s.stats().solves, 50);
}

TEST(SolverStress, DeepIncrementalMatchesOracle) {
  // Add clauses one at a time, solving after each addition; the verdict
  // must track the oracle at every step (catches stale-state bugs in
  // incremental paths).
  const CnfFormula f = randomKSat(
      {.numVars = 9, .numClauses = 50, .clauseLen = 3, .seed = 321});
  Solver s;
  while (s.numVars() < f.numVars()) static_cast<void>(s.newVar());
  CnfFormula sofar(f.numVars());
  for (int i = 0; i < f.numClauses(); ++i) {
    static_cast<void>(s.addClause(f.clause(i)));
    sofar.addClause(f.clause(i));
    const lbool st = s.solve();
    ASSERT_NE(st, lbool::Undef);
    EXPECT_EQ(st == lbool::True, oracleSat(sofar).has_value())
        << "after clause " << i;
    if (st == lbool::False) break;
  }
}

TEST(LbdTest, LbdReduceStaysCorrectOnRandomInstances) {
  // Glucose-style deletion must not change verdicts.
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    const CnfFormula f = randomKSat(
        {.numVars = 20, .numClauses = 88, .clauseLen = 3, .seed = seed * 5});
    Solver::Options opts;
    opts.lbd_reduce = true;
    opts.learntsize_factor = 0.05;  // force frequent reductions
    Solver s(opts);
    while (s.numVars() < f.numVars()) static_cast<void>(s.newVar());
    bool ok = true;
    for (const Clause& c : f.clauses()) ok = ok && s.addClause(c);
    const lbool st = ok ? s.solve() : lbool::False;
    ASSERT_NE(st, lbool::Undef);
    EXPECT_EQ(st == lbool::True, oracleSat(f).has_value()) << "seed " << seed;
    if (st == lbool::True) {
      Assignment model(static_cast<std::size_t>(f.numVars()));
      for (Var v = 0; v < f.numVars(); ++v) {
        model[static_cast<std::size_t>(v)] =
            s.model()[static_cast<std::size_t>(v)];
      }
      EXPECT_TRUE(f.satisfies(model)) << "seed " << seed;
    }
  }
}

TEST(LbdTest, LbdReduceKeepsProofsValid) {
  // Clause deletions under the LBD policy must still leave an
  // RUP-checkable trace.
  const CnfFormula f = randomUnsat3Sat(24, 6.0, 9);
  InMemoryProof proof;
  Solver::Options opts;
  opts.lbd_reduce = true;
  opts.learntsize_factor = 0.02;
  opts.tracer = &proof;
  Solver s(opts);
  while (s.numVars() < f.numVars()) static_cast<void>(s.newVar());
  for (const Clause& c : f.clauses()) {
    if (!s.addClause(c)) break;
  }
  ASSERT_EQ(s.okay() ? s.solve() : lbool::False, lbool::False);
  const ProofCheckResult r = checkProof(proof.lines());
  EXPECT_TRUE(r.ok) << "bad line " << r.firstBadLine;
  EXPECT_TRUE(r.refutationVerified);
}

TEST(LbdTest, MaxSatEnginesAgreeUnderLbdReduction) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const CnfFormula f = randomUnsat3Sat(12, 6.0, seed);
    const WcnfFormula w = WcnfFormula::allSoft(f);
    MaxSatOptions plain;
    MaxSatOptions glue;
    glue.sat.lbd_reduce = true;
    auto a = makeSolver("msu4-v2", plain);
    auto b = makeSolver("msu4-v2", glue);
    const MaxSatResult ra = a->solve(w);
    const MaxSatResult rb = b->solve(w);
    ASSERT_EQ(ra.status, MaxSatStatus::Optimum) << "seed " << seed;
    ASSERT_EQ(rb.status, MaxSatStatus::Optimum) << "seed " << seed;
    EXPECT_EQ(ra.cost, rb.cost) << "seed " << seed;
  }
}

TEST(Arena, LearntMetaSurvivesRelocation) {
  // The tiered reduceDB stores LBD, `used` and tier in one header word;
  // GC relocation must carry all of it.
  ClauseArena arena;
  const std::vector<Lit> lits{posLit(0), negLit(1), posLit(2)};
  CRef ref = arena.alloc(lits, /*learnt=*/true);
  arena[ref].setLbd(5);
  arena[ref].setUsed(2);
  arena[ref].setTier(1);
  arena[ref].setActivity(3.5f);

  ClauseArena to;
  arena.reloc(ref, to);
  EXPECT_EQ(to[ref].lbd(), 5u);
  EXPECT_EQ(to[ref].used(), 2u);
  EXPECT_EQ(to[ref].tier(), 1u);
  EXPECT_FLOAT_EQ(to[ref].activity(), 3.5f);
}

TEST(FlatWatches, PushGrowRemoveCompact) {
  // Direct exercise of the flat occurrence lists: interleaved growth
  // relocates segments within the pool; compact() defragments without
  // losing entries.
  FlatOccLists<Watcher> lists;
  constexpr int kLits = 10;
  for (int i = 0; i < kLits; ++i) lists.addLiteral();
  for (std::uint32_t round = 0; round < 20; ++round) {
    for (int i = 0; i < kLits; ++i) {
      lists.push(Lit::fromIndex(i), Watcher{round * kLits + i, kUndefLit});
    }
  }
  for (int i = 0; i < kLits; ++i) {
    ASSERT_EQ(lists.sizeOf(Lit::fromIndex(i)), 20u);
  }
  EXPECT_GT(lists.wasted(), 0u);

  // Swap-with-back removal of one entry per list.
  for (int i = 0; i < kLits; ++i) {
    const CRef target = 5u * kLits + static_cast<CRef>(i);
    EXPECT_TRUE(lists.removeOne(Lit::fromIndex(i), [&](const Watcher& w) {
      return w.cref == target;
    }));
  }

  lists.compact();
  EXPECT_EQ(lists.wasted(), 0u);
  for (int i = 0; i < kLits; ++i) {
    const auto ws = lists.list(Lit::fromIndex(i));
    ASSERT_EQ(ws.size(), 19u);
    for (const Watcher& w : ws) {
      EXPECT_EQ(static_cast<int>(w.cref) % kLits, i);
      EXPECT_NE(w.cref / static_cast<CRef>(kLits), 5u);
    }
  }
}

TEST(BinaryFastPath, GcWithBinaryAndLongClausesKeepsWatchesIntact) {
  // Force reduceDB + arena GC while binary and long clauses coexist;
  // every verdict must keep matching the oracle (a stale or dropped
  // watcher would show up as a wrong SAT/UNSAT answer).
  const int n = 16;
  std::mt19937_64 rng(2024);
  CnfFormula base(n);
  for (int i = 0; i < 26; ++i) {  // binary layer
    const Var a = static_cast<Var>(rng() % n);
    const Var b = static_cast<Var>(rng() % n);
    if (a == b) continue;
    base.addClause({Lit(a, (rng() & 1) != 0), Lit(b, (rng() & 1) != 0)});
  }
  for (int i = 0; i < 40; ++i) {  // long layer
    const Var a = static_cast<Var>(rng() % n);
    const Var b = static_cast<Var>(rng() % n);
    const Var c = static_cast<Var>(rng() % n);
    if (a == b || b == c || a == c) continue;
    base.addClause({Lit(a, (rng() & 1) != 0), Lit(b, (rng() & 1) != 0),
                    Lit(c, (rng() & 1) != 0)});
  }

  Solver::Options opts;
  opts.garbage_frac = 0.01;       // GC at the slightest waste
  opts.learntsize_factor = 0.02;  // reduceDB constantly
  Solver s(opts);
  while (s.numVars() < n) static_cast<void>(s.newVar());
  bool ok = true;
  for (const Clause& c : base.clauses()) ok = ok && s.addClause(c);
  ASSERT_TRUE(ok);

  for (int round = 0; round < 40 && s.okay(); ++round) {
    std::vector<Lit> assumps;
    for (int i = 0; i < 2; ++i) {
      assumps.push_back(Lit(static_cast<Var>(rng() % n), (rng() & 1) != 0));
    }
    const lbool st = s.solve(assumps);
    ASSERT_NE(st, lbool::Undef);

    CnfFormula augmented = base;
    for (Lit p : assumps) augmented.addClause({p});
    EXPECT_EQ(st == lbool::True, oracleSat(augmented).has_value())
        << "round " << round;
  }
}

TEST(BinaryFastPath, CoreThroughBinaryReasonChain) {
  // The final conflict is driven entirely through binary reasons:
  // a -> x0 -> x1 -> ... -> xk -> ~b with both a and b assumed. Core
  // extraction must walk the inline binary reasons back to {a, b}.
  constexpr int kChain = 6;
  Solver s;
  const Var a = s.newVar();
  const Var b = s.newVar();
  std::vector<Var> x;
  for (int i = 0; i < kChain; ++i) x.push_back(s.newVar());

  ASSERT_TRUE(s.addClause({negLit(a), posLit(x[0])}));
  for (int i = 0; i + 1 < kChain; ++i) {
    ASSERT_TRUE(s.addClause({negLit(x[i]), posLit(x[i + 1])}));
  }
  ASSERT_TRUE(s.addClause({negLit(x[kChain - 1]), negLit(b)}));

  const std::vector<Lit> assumps{posLit(a), posLit(b)};
  ASSERT_EQ(s.solve(assumps), lbool::False);
  std::vector<Lit> core = s.core();
  std::sort(core.begin(), core.end());
  ASSERT_EQ(core.size(), 2u);
  EXPECT_EQ(core[0], posLit(a));
  EXPECT_EQ(core[1], posLit(b));

  // The database itself stays satisfiable without the assumptions.
  EXPECT_EQ(s.solve(), lbool::True);
}

TEST(TieredDb, MigrationAndDemotionUnderLbdReduce) {
  // A conflict-heavy unsatisfiable instance with aggressive reduction:
  // the tiered DB must actually cycle clauses through the tiers.
  const CnfFormula f = pigeonhole(8, 7);
  Solver::Options opts;
  opts.lbd_reduce = true;
  opts.learntsize_factor = 0.02;
  Solver s(opts);
  while (s.numVars() < f.numVars()) static_cast<void>(s.newVar());
  for (const Clause& c : f.clauses()) {
    if (!s.addClause(c)) break;
  }
  ASSERT_EQ(s.okay() ? s.solve() : lbool::False, lbool::False);

  const SolverStats& st = s.stats();
  EXPECT_GT(st.removed_clauses, 0);
  EXPECT_GT(st.demoted_clauses, 0);   // tier2 clauses aged out to local
  EXPECT_GE(st.tier_core, 0);
  EXPECT_GE(st.tier_tier2, 0);
  EXPECT_GE(st.tier_local, 0);
  // Gauges track live arena learnt clauses; they can never exceed the
  // attached learnt count (which also includes binary learnts).
  EXPECT_LE(st.tier_core + st.tier_tier2 + st.tier_local, s.numLearnts());
  EXPECT_GT(st.binary_propagations + st.long_propagations, 0);
}

}  // namespace
}  // namespace msu
