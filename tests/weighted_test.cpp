/// Tests for the weighted-native MaxSAT engines (oll, wlinear, wmsu1):
///  * oracle cross-checks on randomized weighted partial instances —
///    the safety net for OLL's core-charging and lazy bound extension;
///  * agreement between all weighted engines and with duplication-based
///    unweighted reductions;
///  * weighted edge cases: huge weight spreads, equal weights, empty and
///    unit soft clauses, hard-unsat detection, budget behaviour;
///  * OLL-specific behaviour: first SAT answer is the optimum, lower
///    bound monotonicity through the onBounds callback.

#include <gtest/gtest.h>

#include <random>

#include "cnf/oracle.h"
#include "core/bmo.h"
#include "core/oll.h"
#include "core/wlinear.h"
#include "gen/graphs.h"
#include "gen/random_cnf.h"
#include "harness/factory.h"

namespace msu {
namespace {

/// Random weighted partial MaxSAT instance small enough for the oracle.
WcnfFormula randomWeighted(std::uint64_t seed, Weight maxWeight,
                           bool withHards = true) {
  std::mt19937_64 rng(seed);
  const int numVars = 5 + static_cast<int>(rng() % 5);
  WcnfFormula w(numVars);
  const int numHard = withHards ? 2 + static_cast<int>(rng() % 5) : 0;
  const int numSoft = 10 + static_cast<int>(rng() % 18);
  auto randClause = [&](int len) {
    Clause c;
    for (int k = 0; k < len; ++k) {
      const Var v =
          static_cast<Var>(rng() % static_cast<std::uint64_t>(numVars));
      c.push_back(mkLit(v, (rng() & 1) != 0));
    }
    return c;
  };
  for (int i = 0; i < numHard; ++i) {
    w.addHard(randClause(2 + static_cast<int>(rng() % 2)));
  }
  for (int i = 0; i < numSoft; ++i) {
    const Weight weight =
        1 + static_cast<Weight>(rng() % static_cast<std::uint64_t>(maxWeight));
    w.addSoft(randClause(1 + static_cast<int>(rng() % 3)), weight);
  }
  return w;
}

class WeightedEngine : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<MaxSatSolver> make(MaxSatOptions o = {}) const {
    auto s = makeSolver(GetParam(), o);
    EXPECT_NE(s, nullptr);
    return s;
  }
};

TEST_P(WeightedEngine, RandomWeightedAgreesWithOracle) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const WcnfFormula w = randomWeighted(seed * 101, 9);
    const OracleResult oracle = oracleMaxSat(w);
    auto solver = make();
    const MaxSatResult r = solver->solve(w);
    if (!oracle.optimumCost) {
      EXPECT_EQ(r.status, MaxSatStatus::UnsatisfiableHard) << "seed " << seed;
      continue;
    }
    ASSERT_EQ(r.status, MaxSatStatus::Optimum) << "seed " << seed;
    EXPECT_EQ(r.cost, *oracle.optimumCost) << "seed " << seed;
    // The witness model must achieve the claimed cost.
    const std::optional<Weight> modelCost = w.cost(r.model);
    ASSERT_TRUE(modelCost.has_value()) << "seed " << seed;
    EXPECT_EQ(*modelCost, r.cost) << "seed " << seed;
  }
}

TEST_P(WeightedEngine, LargeWeightSpread) {
  // Weights spanning six orders of magnitude: duplication would need
  // ~10^6 clauses, native engines must handle it directly.
  WcnfFormula w(3);
  w.addSoft({posLit(0)}, 1'000'000);
  w.addSoft({negLit(0)}, 1);
  w.addSoft({posLit(1)}, 500'000);
  w.addSoft({negLit(1)}, 499'999);
  w.addSoft({posLit(2), posLit(0)}, 3);
  auto solver = make();
  const MaxSatResult r = solver->solve(w);
  ASSERT_EQ(r.status, MaxSatStatus::Optimum);
  EXPECT_EQ(r.cost, 1 + 499'999);
}

TEST_P(WeightedEngine, AllSoftFalsifiedIsStillSolved) {
  // Hard clauses force every soft clause false.
  WcnfFormula w(2);
  w.addHard({posLit(0)});
  w.addHard({posLit(1)});
  w.addSoft({negLit(0)}, 3);
  w.addSoft({negLit(1)}, 5);
  w.addSoft({negLit(0), negLit(1)}, 2);
  auto solver = make();
  const MaxSatResult r = solver->solve(w);
  ASSERT_EQ(r.status, MaxSatStatus::Optimum);
  EXPECT_EQ(r.cost, 10);
}

TEST_P(WeightedEngine, EmptySoftClauseChargesItsWeight) {
  WcnfFormula w(1);
  w.addSoft(std::initializer_list<Lit>{}, 7);
  w.addSoft({posLit(0)}, 2);
  auto solver = make();
  const MaxSatResult r = solver->solve(w);
  ASSERT_EQ(r.status, MaxSatStatus::Optimum);
  EXPECT_EQ(r.cost, 7);
}

TEST_P(WeightedEngine, HardUnsatDetected) {
  WcnfFormula w(1);
  w.addHard({posLit(0)});
  w.addHard({negLit(0)});
  w.addSoft({posLit(0)}, 4);
  auto solver = make();
  EXPECT_EQ(solver->solve(w).status, MaxSatStatus::UnsatisfiableHard);
}

TEST_P(WeightedEngine, ZeroCostInstance) {
  WcnfFormula w(2);
  w.addSoft({posLit(0)}, 10);
  w.addSoft({posLit(1)}, 20);
  auto solver = make();
  const MaxSatResult r = solver->solve(w);
  ASSERT_EQ(r.status, MaxSatStatus::Optimum);
  EXPECT_EQ(r.cost, 0);
}

TEST_P(WeightedEngine, AgreesWithDuplicationReduction) {
  // Native weighted solving == duplication + any unweighted engine.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const WcnfFormula w = randomWeighted(seed * 977, 4);
    const std::optional<WcnfFormula> dup = w.unweighted();
    ASSERT_TRUE(dup.has_value());
    auto native = make();
    auto reference = makeSolver("msu4-v2");
    const MaxSatResult a = native->solve(w);
    const MaxSatResult b = reference->solve(*dup);
    ASSERT_EQ(a.status, MaxSatStatus::Optimum) << "seed " << seed;
    ASSERT_EQ(b.status, MaxSatStatus::Optimum) << "seed " << seed;
    EXPECT_EQ(a.cost, b.cost) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(AllWeightedEngines, WeightedEngine,
                         ::testing::Values("oll", "wlinear", "wlinear-adder",
                                           "wmsu1"),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           std::string n = i.param;
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

// ---------------------------------------------------------------------
// OLL-specific behaviour
// ---------------------------------------------------------------------

TEST(OllTest, LowerBoundIsMonotoneAndReachesOptimum) {
  const WcnfFormula w = randomWeighted(4242, 6);
  const OracleResult oracle = oracleMaxSat(w);
  ASSERT_TRUE(oracle.optimumCost.has_value());

  std::vector<Weight> lowers;
  MaxSatOptions opts;
  opts.onBounds = [&](Weight lower, Weight) { lowers.push_back(lower); };
  OllSolver solver(opts);
  const MaxSatResult r = solver.solve(w);
  ASSERT_EQ(r.status, MaxSatStatus::Optimum);
  EXPECT_EQ(r.cost, *oracle.optimumCost);
  for (std::size_t i = 1; i < lowers.size(); ++i) {
    EXPECT_LE(lowers[i - 1], lowers[i]);
  }
  if (!lowers.empty()) {
    EXPECT_LE(lowers.back(), r.cost);
  }
}

TEST(OllTest, UnweightedInstancesMatchMsu4) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const CnfFormula f = randomUnsat3Sat(11, 6.0, seed);
    const WcnfFormula w = WcnfFormula::allSoft(f);
    OllSolver oll;
    auto msu4 = makeSolver("msu4-v2");
    const MaxSatResult a = oll.solve(w);
    const MaxSatResult b = msu4->solve(w);
    ASSERT_EQ(a.status, MaxSatStatus::Optimum) << "seed " << seed;
    ASSERT_EQ(b.status, MaxSatStatus::Optimum) << "seed " << seed;
    EXPECT_EQ(a.cost, b.cost) << "seed " << seed;
  }
}

TEST(OllTest, CoreCountNeverExceedsIterations) {
  const WcnfFormula w = randomWeighted(99, 5);
  OllSolver solver;
  const MaxSatResult r = solver.solve(w);
  ASSERT_EQ(r.status, MaxSatStatus::Optimum);
  EXPECT_LE(r.coresFound, r.iterations);
  EXPECT_GE(r.satCalls, r.iterations);
}

TEST(OllTest, BudgetExhaustionReturnsUnknownWithValidLowerBound) {
  const WcnfFormula w =
      WcnfFormula::allSoft(randomUnsat3Sat(18, 5.5, 5));
  MaxSatOptions opts;
  opts.budget = Budget::conflicts(3);
  OllSolver solver(opts);
  const MaxSatResult r = solver.solve(w);
  if (r.status == MaxSatStatus::Unknown) {
    const OracleResult oracle = oracleMaxSat(w);
    ASSERT_TRUE(oracle.optimumCost.has_value());
    EXPECT_LE(r.lowerBound, *oracle.optimumCost);
  }
}

TEST(OllTest, StressEqualWeights) {
  // Equal weights exercise the multi-member charge path heavily.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    WcnfFormula w = randomWeighted(seed * 31, 1, /*withHards=*/false);
    const OracleResult oracle = oracleMaxSat(w);
    ASSERT_TRUE(oracle.optimumCost.has_value());
    OllSolver solver;
    const MaxSatResult r = solver.solve(w);
    ASSERT_EQ(r.status, MaxSatStatus::Optimum) << "seed " << seed;
    EXPECT_EQ(r.cost, *oracle.optimumCost) << "seed " << seed;
  }
}

TEST(OllTest, StressTwoValuedWeights) {
  // Two weight classes force interleaved charging of partially paid
  // members (the residual-weight path) and successor-bound extensions.
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    std::mt19937_64 rng(seed * 7919);
    WcnfFormula w(6);
    for (int i = 0; i < 20; ++i) {
      Clause c;
      for (int k = 0; k < 2; ++k) {
        c.push_back(mkLit(static_cast<Var>(rng() % 6), (rng() & 1) != 0));
      }
      w.addSoft(c, (rng() & 1) != 0 ? 10 : 3);
    }
    const OracleResult oracle = oracleMaxSat(w);
    ASSERT_TRUE(oracle.optimumCost.has_value());
    OllSolver solver;
    const MaxSatResult r = solver.solve(w);
    ASSERT_EQ(r.status, MaxSatStatus::Optimum) << "seed " << seed;
    EXPECT_EQ(r.cost, *oracle.optimumCost) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------
// Weighted linear search specifics
// ---------------------------------------------------------------------

TEST(WlinearTest, UpperBoundDecreasesStrictly) {
  std::vector<Weight> uppers;
  MaxSatOptions opts;
  opts.onBounds = [&](Weight, Weight upper) { uppers.push_back(upper); };
  WeightedLinearSolver solver(opts);
  const WcnfFormula w = randomWeighted(1234, 8);
  const MaxSatResult r = solver.solve(w);
  ASSERT_EQ(r.status, MaxSatStatus::Optimum);
  for (std::size_t i = 1; i < uppers.size(); ++i) {
    EXPECT_LT(uppers[i], uppers[i - 1]);
  }
  if (!uppers.empty()) {
    EXPECT_EQ(uppers.back(), r.cost);
  }
}

TEST(WlinearTest, BothPbEncodingsAgree) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const WcnfFormula w = randomWeighted(seed * 613, 7);
    WeightedLinearSolver bdd({}, PbEncoding::Bdd);
    WeightedLinearSolver adder({}, PbEncoding::Adder);
    const MaxSatResult a = bdd.solve(w);
    const MaxSatResult b = adder.solve(w);
    ASSERT_EQ(a.status, b.status) << "seed " << seed;
    if (a.status == MaxSatStatus::Optimum) {
      EXPECT_EQ(a.cost, b.cost) << "seed " << seed;
    }
  }
}

// ---------------------------------------------------------------------
// BMO (lexicographic multilevel) specifics
// ---------------------------------------------------------------------

TEST(BmoTest, StrataDetection) {
  WcnfFormula w(3);
  w.addSoft({posLit(0)}, 100);
  w.addSoft({posLit(1)}, 10);
  w.addSoft({posLit(2)}, 10);
  w.addSoft({negLit(0)}, 1);
  // 100 > 10+10+1, 10 > 1: valid three-level ladder.
  EXPECT_EQ(bmoStrata(w), (std::vector<Weight>{100, 10, 1}));

  WcnfFormula bad(2);
  bad.addSoft({posLit(0)}, 3);
  bad.addSoft({posLit(1)}, 2);
  bad.addSoft({negLit(0)}, 2);
  // 3 <= 2+2: not BMO.
  EXPECT_TRUE(bmoStrata(bad).empty());

  WcnfFormula unit(1);
  unit.addSoft({posLit(0)}, 1);
  EXPECT_EQ(bmoStrata(unit), (std::vector<Weight>{1}));
}

TEST(BmoTest, LadderInstancesMatchOracle) {
  std::mt19937_64 rng(17);
  const Weight ladder[] = {1, 100, 10'000};
  for (int round = 0; round < 12; ++round) {
    WcnfFormula w(7);
    for (int i = 0; i < 3; ++i) {
      Clause c;
      for (int k = 0; k < 2; ++k) {
        c.push_back(mkLit(static_cast<Var>(rng() % 7), (rng() & 1) != 0));
      }
      w.addHard(c);
    }
    for (int i = 0; i < 15; ++i) {
      Clause c;
      for (int k = 0; k < 2; ++k) {
        c.push_back(mkLit(static_cast<Var>(rng() % 7), (rng() & 1) != 0));
      }
      w.addSoft(c, ladder[rng() % 3]);
    }
    ASSERT_FALSE(bmoStrata(w).empty()) << "round " << round;
    const OracleResult oracle = oracleMaxSat(w);
    BmoSolver solver;
    const MaxSatResult r = solver.solve(w);
    if (!oracle.optimumCost) {
      EXPECT_EQ(r.status, MaxSatStatus::UnsatisfiableHard)
          << "round " << round;
      continue;
    }
    ASSERT_EQ(r.status, MaxSatStatus::Optimum) << "round " << round;
    EXPECT_EQ(r.cost, *oracle.optimumCost) << "round " << round;
    EXPECT_GE(solver.lastStrata(), 1) << "round " << round;
    const std::optional<Weight> check = w.cost(r.model);
    ASSERT_TRUE(check.has_value()) << "round " << round;
    EXPECT_EQ(*check, r.cost) << "round " << round;
  }
}

TEST(BmoTest, NonBmoFallsBackToOll) {
  WcnfFormula w(3);
  w.addSoft({posLit(0)}, 3);
  w.addSoft({negLit(0)}, 2);
  w.addSoft({posLit(1)}, 2);
  w.addSoft({negLit(1), posLit(2)}, 3);
  ASSERT_TRUE(bmoStrata(w).empty());
  BmoSolver solver;
  const MaxSatResult r = solver.solve(w);
  EXPECT_EQ(solver.lastStrata(), 0);
  const OracleResult oracle = oracleMaxSat(w);
  ASSERT_TRUE(oracle.optimumCost.has_value());
  ASSERT_EQ(r.status, MaxSatStatus::Optimum);
  EXPECT_EQ(r.cost, *oracle.optimumCost);
}

TEST(BmoTest, LexicographicSemantics) {
  // One high-weight soft conflicts with three low-weight softs: the
  // lexicographic optimum keeps the high one and pays 3 small units.
  WcnfFormula w(1);
  w.addSoft({posLit(0)}, 10);
  w.addSoft({negLit(0)}, 1);
  w.addSoft({negLit(0)}, 1);
  w.addSoft({negLit(0)}, 1);
  BmoSolver solver;
  const MaxSatResult r = solver.solve(w);
  ASSERT_EQ(r.status, MaxSatStatus::Optimum);
  EXPECT_EQ(r.cost, 3);
  EXPECT_EQ(r.model[0], lbool::True);
  EXPECT_EQ(solver.lastStrata(), 2);
}

TEST(BmoTest, NoSoftClauses) {
  WcnfFormula w(2);
  w.addHard({posLit(0), posLit(1)});
  BmoSolver solver;
  const MaxSatResult r = solver.solve(w);
  ASSERT_EQ(r.status, MaxSatStatus::Optimum);
  EXPECT_EQ(r.cost, 0);
}

TEST(BmoTest, HardUnsat) {
  WcnfFormula w(1);
  w.addHard({posLit(0)});
  w.addHard({negLit(0)});
  w.addSoft({posLit(0)}, 5);
  BmoSolver solver;
  EXPECT_EQ(solver.solve(w).status, MaxSatStatus::UnsatisfiableHard);
}

TEST(BmoTest, AgreesWithOllOnBmoInstances) {
  std::mt19937_64 rng(23);
  for (int round = 0; round < 8; ++round) {
    WcnfFormula w(6);
    for (int i = 0; i < 12; ++i) {
      Clause c;
      for (int k = 0; k < 2; ++k) {
        c.push_back(mkLit(static_cast<Var>(rng() % 6), (rng() & 1) != 0));
      }
      w.addSoft(c, (rng() & 1) != 0 ? 1000 : 1);
    }
    BmoSolver bmo;
    OllSolver oll;
    const MaxSatResult a = bmo.solve(w);
    const MaxSatResult b = oll.solve(w);
    ASSERT_EQ(a.status, MaxSatStatus::Optimum) << "round " << round;
    ASSERT_EQ(b.status, MaxSatStatus::Optimum) << "round " << round;
    EXPECT_EQ(a.cost, b.cost) << "round " << round;
  }
}

TEST(OllTest, WeightedMaxCutChargeSplittingRegression) {
  // Regression for the weighted charge bookkeeping: with successor
  // bounds only created on *full* payment, partially paid sums leaked
  // charge mass, the assumption set went weak, and OLL accepted a
  // suboptimal max-cut model as the optimum (observed: cost 26 vs a
  // true optimum of 25 on a 9-vertex weighted max-cut). The RC2-style
  // fix pushes wmin onto the successor bound on every occurrence.
  std::mt19937_64 rng(3);
  for (int n = 5; n <= 9; ++n) {
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
      const Graph g = randomGraph(n, 0.6, seed * 7 + n);
      std::vector<Weight> weights;
      weights.reserve(g.edges.size());
      for (std::size_t e = 0; e < g.edges.size(); ++e) {
        weights.push_back(1 + static_cast<Weight>(rng() % 7));
      }
      const WcnfFormula w = maxCutInstance(g, weights);
      const OracleResult truth = oracleMaxSat(w);
      ASSERT_TRUE(truth.optimumCost.has_value());
      OllSolver oll{MaxSatOptions{}};
      const MaxSatResult r = oll.solve(w);
      ASSERT_EQ(r.status, MaxSatStatus::Optimum) << n << "/" << seed;
      EXPECT_EQ(r.cost, *truth.optimumCost) << n << "/" << seed;
      EXPECT_EQ(w.cost(r.model), r.cost) << n << "/" << seed;
    }
  }
}

}  // namespace
}  // namespace msu
