/// Tests for the core-module infrastructure: SoftTracker selector
/// bookkeeping, IncrementalAtMost / AssumableAtMost reuse helpers, and
/// the Proposition 1 & 2 bound utilities (disjoint cores / blocking
/// upper bound).

#include <gtest/gtest.h>

#include <bit>
#include <set>

#include "cnf/oracle.h"
#include "core/bounds.h"
#include "core/incremental_atmost.h"
#include "core/soft_tracker.h"
#include "encodings/sink.h"
#include "gen/pigeonhole.h"
#include "gen/random_cnf.h"

namespace msu {
namespace {

TEST(SoftTracker, SelectorsEnforceAndRelax) {
  WcnfFormula w(2);
  w.addSoft({posLit(0)}, 1);
  w.addSoft({negLit(0)}, 1);
  w.addSoft({posLit(1)}, 1);
  Solver s;
  SoftTracker t(s, w);
  EXPECT_EQ(t.numSoft(), 3);
  EXPECT_EQ(t.numOriginalVars(), 2);

  // All enforced: clauses 0 and 1 conflict.
  ASSERT_EQ(s.solve(t.assumptions()), lbool::False);
  const std::vector<int> core = t.coreSoftIndices(s.core());
  ASSERT_FALSE(core.empty());
  for (int i : core) EXPECT_LT(i, 2);  // clause 2 is irrelevant

  // Relax the core: now satisfiable.
  for (int i : core) t.relax(i);
  EXPECT_EQ(t.numRelaxed(), static_cast<int>(core.size()));
  ASSERT_EQ(s.solve(t.assumptions()), lbool::True);
  EXPECT_EQ(t.blockingLits().size(), core.size());
}

TEST(SoftTracker, RelaxedFalsifiedCostMatchesModel) {
  WcnfFormula w(1);
  w.addSoft({posLit(0)}, 1);
  w.addSoft({negLit(0)}, 1);
  Solver s;
  SoftTracker t(s, w);
  t.relax(0);
  t.relax(1);
  ASSERT_EQ(s.solve(t.assumptions()), lbool::True);
  // Exactly one of the two unit clauses is falsified by any assignment.
  EXPECT_EQ(t.relaxedFalsifiedCost(w, s.model()), 1);
  EXPECT_GE(t.blockingAssignedTrue(s.model()), 1);
}

TEST(SoftTracker, SoftOfVarMapsOnlySelectors) {
  WcnfFormula w(3);
  w.addSoft({posLit(0), posLit(1)}, 1);
  w.addSoft({posLit(2)}, 1);
  Solver s;
  SoftTracker t(s, w);
  EXPECT_FALSE(t.softOfVar(0).has_value());
  EXPECT_FALSE(t.softOfVar(2).has_value());
  EXPECT_EQ(t.softOfVar(t.selector(0).var()), 0);
  EXPECT_EQ(t.softOfVar(t.selector(1).var()), 1);
  EXPECT_FALSE(t.softOfVar(999).has_value());
}

TEST(IncrementalAtMost, GrowingSetWithTighteningBounds) {
  for (CardEncoding enc :
       {CardEncoding::Bdd, CardEncoding::Sorter, CardEncoding::Sequential,
        CardEncoding::Totalizer}) {
    for (bool reuse : {true, false}) {
      Solver s;
      SolverSink sink(s);
      std::vector<Lit> lits;
      for (int i = 0; i < 6; ++i) lits.push_back(posLit(s.newVar()));
      IncrementalAtMost inc(enc, reuse);

      std::vector<Lit> firstFour(lits.begin(), lits.begin() + 4);
      inc.assertAtMost(sink, firstFour, 2);
      inc.assertAtMost(sink, lits, 3);  // grown set
      inc.assertAtMost(sink, lits, 2);  // tightened

      // Now: at most 2 of first four, at most 2 of all six.
      auto popOk = [&](std::uint32_t mask) {
        const int firstPop = std::popcount(mask & 0xFu);
        const int allPop = std::popcount(mask);
        return firstPop <= 2 && allPop <= 2;
      };
      for (std::uint32_t mask = 0; mask < 64; ++mask) {
        std::vector<Lit> assumps;
        for (int i = 0; i < 6; ++i) {
          assumps.push_back(((mask >> i) & 1u) != 0 ? lits[i] : ~lits[i]);
        }
        EXPECT_EQ(s.solve(assumps) == lbool::True, popOk(mask))
            << toString(enc) << " reuse=" << reuse << " mask=" << mask;
      }
    }
  }
}

TEST(SoftTracker, BlockingLitsFollowRelaxationOrder) {
  // Regression: blocking literals must be append-only in *relaxation*
  // order — soft-index order breaks incremental totalizer extension
  // (a later-relaxed lower index used to shift the whole vector).
  WcnfFormula w(3);
  w.addSoft({posLit(0)}, 1);
  w.addSoft({posLit(1)}, 1);
  w.addSoft({posLit(2)}, 1);
  Solver s;
  SoftTracker t(s, w);
  t.relax(2);
  const std::vector<Lit> first = t.blockingLits();
  t.relax(0);  // lower soft index relaxed later
  const std::vector<Lit> second = t.blockingLits();
  ASSERT_EQ(first.size(), 1u);
  ASSERT_EQ(second.size(), 2u);
  EXPECT_EQ(second[0], first[0]) << "prefix changed: not append-only";
  EXPECT_EQ(second[1], t.selector(0));
}

TEST(IncrementalAtMost, TotalizerSurvivesNonPrefixGrowth) {
  // Even if a caller hands over literals that do NOT extend the previous
  // set as a prefix, the constraint must stay correct (fallback path).
  Solver s;
  SolverSink sink(s);
  std::vector<Lit> lits;
  for (int i = 0; i < 4; ++i) lits.push_back(posLit(s.newVar()));
  IncrementalAtMost inc(CardEncoding::Totalizer, /*reuse=*/true);
  const std::vector<Lit> firstSet{lits[2], lits[3]};
  inc.assertAtMost(sink, firstSet, 1);
  const std::vector<Lit> secondSet{lits[0], lits[2], lits[3]};  // no prefix
  inc.assertAtMost(sink, secondSet, 1);
  for (std::uint32_t mask = 0; mask < 16; ++mask) {
    std::vector<Lit> assumps;
    for (int i = 0; i < 4; ++i) {
      assumps.push_back(((mask >> i) & 1u) != 0 ? lits[i] : ~lits[i]);
    }
    const bool okFirst =
        ((mask >> 2) & 1u) + ((mask >> 3) & 1u) <= 1;
    const bool okSecond =
        (mask & 1u) + ((mask >> 2) & 1u) + ((mask >> 3) & 1u) <= 1;
    EXPECT_EQ(s.solve(assumps) == lbool::True, okFirst && okSecond)
        << "mask " << mask;
  }
}

TEST(AssumableAtMost, BoundLitsEnforceWhenAssumed) {
  for (CardEncoding enc :
       {CardEncoding::Bdd, CardEncoding::Sorter, CardEncoding::Sequential,
        CardEncoding::Totalizer}) {
    Solver s;
    SolverSink sink(s);
    std::vector<Lit> lits;
    for (int i = 0; i < 5; ++i) lits.push_back(posLit(s.newVar()));
    AssumableAtMost am(sink, lits, enc);

    EXPECT_FALSE(am.boundLit(5).has_value());  // trivial
    for (int k : {1, 3, 2}) {  // out of order on purpose
      const std::optional<Lit> b = am.boundLit(k);
      ASSERT_TRUE(b.has_value());
      for (std::uint32_t mask = 0; mask < 32; ++mask) {
        std::vector<Lit> assumps{*b};
        for (int i = 0; i < 5; ++i) {
          assumps.push_back(((mask >> i) & 1u) != 0 ? lits[i] : ~lits[i]);
        }
        EXPECT_EQ(s.solve(assumps) == lbool::True,
                  std::popcount(mask) <= k)
            << toString(enc) << " k=" << k << " mask=" << mask;
      }
    }
    // Without any bound assumption everything is allowed.
    std::vector<Lit> all(lits);
    EXPECT_EQ(s.solve(all), lbool::True) << toString(enc);
  }
}

TEST(Bounds, DisjointCoresOnPigeonhole) {
  const WcnfFormula w = WcnfFormula::allSoft(pigeonhole(4, 3));
  const DisjointCoresResult r = disjointCores(w);
  ASSERT_TRUE(r.complete);
  ASSERT_GE(r.cores.size(), 1u);
  // Proposition 1: cost >= K. PHP optimum is 1, so exactly one disjoint
  // core can exist.
  EXPECT_EQ(r.costLowerBound(), 1);
  // Cores must be pairwise disjoint sets of clause indices.
  std::set<int> seen;
  for (const std::vector<int>& core : r.cores) {
    for (int idx : core) {
      EXPECT_TRUE(seen.insert(idx).second) << "clause in two cores";
    }
  }
}

TEST(Bounds, DisjointCoresAreUnsatSubsets) {
  const CnfFormula f = randomKSat(
      {.numVars = 8, .numClauses = 45, .clauseLen = 3, .seed = 1234});
  const WcnfFormula w = WcnfFormula::allSoft(f);
  const DisjointCoresResult r = disjointCores(w);
  ASSERT_TRUE(r.complete);
  for (const std::vector<int>& core : r.cores) {
    EXPECT_TRUE(oracleSubsetUnsat(f, core));
  }
  // Proposition 1 sanity: lower bound below the true optimum.
  const OracleResult truth = oracleMaxSat(w);
  ASSERT_TRUE(truth.optimumCost.has_value());
  EXPECT_LE(r.costLowerBound(), *truth.optimumCost);
}

TEST(Bounds, BlockingUpperBoundIsValid) {
  for (std::uint64_t seed = 10; seed <= 16; ++seed) {
    const WcnfFormula w = WcnfFormula::allSoft(randomKSat(
        {.numVars = 8, .numClauses = 40, .clauseLen = 3, .seed = seed}));
    const auto ub = blockingUpperBound(w);
    ASSERT_TRUE(ub.has_value());
    const OracleResult truth = oracleMaxSat(w);
    ASSERT_TRUE(truth.optimumCost.has_value());
    // Proposition 2: model cost is an upper bound on the optimum.
    EXPECT_GE(ub->costUpperBound, *truth.optimumCost);
    // And it is achieved by the returned model.
    EXPECT_EQ(w.cost(ub->model), ub->costUpperBound);
  }
}

TEST(Bounds, SandwichTheOptimum) {
  // LB from disjoint cores <= optimum <= UB from one blocking model.
  const WcnfFormula w = WcnfFormula::allSoft(randomKSat(
      {.numVars = 9, .numClauses = 50, .clauseLen = 3, .seed = 777}));
  const OracleResult truth = oracleMaxSat(w);
  ASSERT_TRUE(truth.optimumCost.has_value());
  const DisjointCoresResult lb = disjointCores(w);
  const auto ub = blockingUpperBound(w);
  ASSERT_TRUE(lb.complete);
  ASSERT_TRUE(ub.has_value());
  EXPECT_LE(lb.costLowerBound(), *truth.optimumCost);
  EXPECT_GE(ub->costUpperBound, *truth.optimumCost);
}

TEST(Bounds, HardUnsatGivesNoBound) {
  WcnfFormula w(1);
  w.addHard({posLit(0)});
  w.addHard({negLit(0)});
  w.addSoft({posLit(0)}, 1);
  EXPECT_FALSE(blockingUpperBound(w).has_value());
}

}  // namespace
}  // namespace msu
