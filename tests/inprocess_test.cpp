/// Tests of the in-solver inprocessing subsystem (Options::inprocess):
/// deterministic units for satisfied-clause removal, backward
/// subsumption, self-subsuming strengthening and learnt-clause
/// vivification; the scope rules (tag preservation under retirement,
/// frozen selector variables); gating (off by default, no pass = no
/// behavioural change); and fuzzed oracle agreement at the raw solver
/// level, across every MaxSAT engine and under a 4-thread portfolio.

#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <string>
#include <vector>

#include "cnf/oracle.h"
#include "encodings/cardinality.h"
#include "encodings/sink.h"
#include "gen/random_cnf.h"
#include "harness/factory.h"
#include "par/portfolio.h"
#include "sat/solver.h"

namespace msu {
namespace {

Solver::Options inprocOpts() {
  Solver::Options o;
  o.inprocess = true;
  return o;
}

/// Round-one passes only (strip/subsume/vivify). The targeted units
/// below assert exact clause counts and per-stage counters; the
/// round-two variable-removing passes (BVE, equivalent-literal
/// substitution, probing) would eliminate these tiny formulas outright
/// and void the assertions. Round two has its own targeted tests in
/// elimination_test.cpp / probing_test.cpp / reconstruction_test.cpp,
/// and the fuzz tests in this file keep every pass enabled.
Solver::Options roundOneOpts() {
  Solver::Options o = inprocOpts();
  o.inprocess_bve_occ_limit = 0;
  o.inprocess_scc = false;
  o.inprocess_probe_props = 0;
  return o;
}

/// Solver with `n` fresh unscoped variables.
void addVars(Solver& s, int n) {
  while (s.numVars() < n) static_cast<void>(s.newVar());
}

TEST(Inprocess, SubsumptionRemovesDuplicatesAndSupersets) {
  Solver s(roundOneOpts());
  addVars(s, 5);
  const Lit a = posLit(0);
  const Lit b = posLit(1);
  const Lit c = posLit(2);
  const Lit d = posLit(3);
  ASSERT_TRUE(s.addClause({a, b, c}));
  ASSERT_TRUE(s.addClause({a, b, c, d}));  // superset of the first
  ASSERT_TRUE(s.addClause({a, b, c}));     // exact duplicate
  ASSERT_EQ(s.numClauses(), 3);

  ASSERT_TRUE(s.inprocessNow());
  EXPECT_EQ(s.numClauses(), 1);
  EXPECT_EQ(s.stats().inproc_subsumed, 2);
  EXPECT_EQ(s.stats().inproc_passes, 1);
  EXPECT_EQ(s.solve(), lbool::True);
}

TEST(Inprocess, BinarySubsumerDeletesAndStrengthens) {
  Solver s(roundOneOpts());
  addVars(s, 4);
  const Lit a = posLit(0);
  const Lit b = posLit(1);
  const Lit c = posLit(2);
  ASSERT_TRUE(s.addClause({a, b}));         // binary subsumer
  ASSERT_TRUE(s.addClause({a, b, c}));      // subsumed outright
  ASSERT_TRUE(s.addClause({~a, b, c}));     // self-subsumed: drop ~a
  ASSERT_EQ(s.numClauses(), 3);

  ASSERT_TRUE(s.inprocessNow());
  // {a,b,c} deleted; {~a,b,c} strengthened to the binary {b,c}.
  EXPECT_EQ(s.numClauses(), 2);
  EXPECT_EQ(s.stats().inproc_subsumed, 1);
  EXPECT_GE(s.stats().inproc_strengthened, 1);
  EXPECT_GE(s.stats().inproc_lits_removed, 1);
  EXPECT_EQ(s.solve(), lbool::True);
}

TEST(Inprocess, SelfSubsumingResolutionOnLongClauses) {
  Solver s(roundOneOpts());
  addVars(s, 5);
  const Lit a = posLit(0);
  const Lit b = posLit(1);
  const Lit c = posLit(2);
  const Lit d = posLit(3);
  const Lit e = posLit(4);
  ASSERT_TRUE(s.addClause({a, b, c}));
  ASSERT_TRUE(s.addClause({~a, b, c, d}));  // strengthens to {b,c,d}
  ASSERT_TRUE(s.addClause({a, b, c, d, e}));  // subsumed by the first
  ASSERT_TRUE(s.inprocessNow());
  EXPECT_EQ(s.stats().inproc_subsumed, 1);
  EXPECT_GE(s.stats().inproc_strengthened, 1);
  EXPECT_EQ(s.numClauses(), 2);
  EXPECT_EQ(s.solve(), lbool::True);
}

TEST(Inprocess, TopLevelSatisfiedRemovalAndFalseLiteralStripping) {
  Solver s(roundOneOpts());
  addVars(s, 5);
  const Lit a = posLit(0);
  const Lit b = posLit(1);
  const Lit c = posLit(2);
  const Lit d = posLit(3);
  const Lit e = posLit(4);
  ASSERT_TRUE(s.addClause({a, b, c}));
  ASSERT_TRUE(s.addClause({~a, c, d, e}));
  ASSERT_TRUE(s.addClause({a}));  // unit: satisfies the first clause
  ASSERT_TRUE(s.inprocessNow());
  // {a,b,c} satisfied and removed; {~a,c,d,e} stripped to {c,d,e}.
  EXPECT_GE(s.stats().inproc_removed_sat, 1);
  EXPECT_GE(s.stats().inproc_strengthened, 1);
  EXPECT_GE(s.stats().inproc_lits_removed, 1);
  EXPECT_EQ(s.numClauses(), 1);
  EXPECT_EQ(s.solve(), lbool::True);
}

TEST(Inprocess, VivificationShortensALearntClause) {
  // Manufacture a deterministic size-3 learnt clause (~c | ~b | ~a):
  // under the assumptions a, b, c the chain propagates p then q into a
  // conflict, and first-UIP analysis resolves both away. Each parent
  // keeps a private literal (p, q, ~p), so the learnt subsumes none of
  // them and survives the subsumption stage as a learnt clause.
  Solver s(roundOneOpts());
  addVars(s, 6);
  const Lit a = posLit(0);
  const Lit b = posLit(1);
  const Lit c = posLit(2);
  const Lit p = posLit(3);
  const Lit q = posLit(4);
  const Lit d = posLit(5);
  ASSERT_TRUE(s.addClause({~a, ~c, p}));
  ASSERT_TRUE(s.addClause({~b, ~p, q}));
  ASSERT_TRUE(s.addClause({~c, ~p, ~q}));
  const std::vector<Lit> assumps{a, b, c};
  ASSERT_EQ(s.solve(assumps), lbool::False);
  ASSERT_EQ(s.numLearnts(), 1);

  // Now make the learnt vivifiable: c -> d -> ~a and c -> d -> ~b, so
  // probing the learnt's negation closes after two literals. The chain
  // neither subsumes nor strengthens the learnt directly (no shared
  // pair, d does not occur in it), so only vivification can shorten it.
  ASSERT_TRUE(s.addClause({~c, d}));
  ASSERT_TRUE(s.addClause({~d, ~a}));
  ASSERT_TRUE(s.addClause({~d, ~b}));
  ASSERT_TRUE(s.inprocessNow());
  EXPECT_EQ(s.stats().inproc_vivified, 1);
  EXPECT_GE(s.stats().inproc_lits_removed, 1);
  EXPECT_GT(s.stats().inproc_props, 0);
  EXPECT_EQ(s.solve(), lbool::True);
}

TEST(Inprocess, StrengthenedScopeClauseKeepsItsTagThroughRetirement) {
  Solver s(roundOneOpts());
  SolverSink sink(s);
  addVars(s, 4);
  const Lit x0 = posLit(0);
  const Lit x1 = posLit(1);
  const Lit x2 = posLit(2);

  const ScopeHandle act = sink.beginScope();
  sink.addClause({x0, x1, x2});  // emitted as (x0|x1|x2|~act), tagged
  sink.endScope(act);
  const int withScope = s.numClauses();

  // A global binary that self-subsumes the scoped clause: removing x1
  // must leave the clause tagged (and guarded), so retirement still
  // deletes it.
  ASSERT_TRUE(s.addClause({x0, ~x1}));
  ASSERT_TRUE(s.inprocessNow());
  EXPECT_GE(s.stats().inproc_strengthened, 1);
  EXPECT_EQ(s.numClauses(), withScope + 1);

  const std::int64_t retiredBefore = s.stats().retired_clauses;
  s.retire(act.activator());
  EXPECT_EQ(s.stats().retired_clauses, retiredBefore + 1);
  EXPECT_EQ(s.numClauses(), 1);  // only the global binary remains
  EXPECT_EQ(s.solve(), lbool::True);
}

TEST(Inprocess, FrozenVariablesKeepTheirLiterals) {
  const auto run = [](bool freeze) {
    Solver s(inprocOpts());
    addVars(s, 4);
    const Lit a = posLit(0);
    const Lit b = posLit(1);
    const Lit sel = posLit(2);
    if (freeze) s.setFrozen(sel.var(), true);
    // (a|b|sel) would be strengthened to (a|b) by (a|~sel) — unless the
    // selector is frozen, as a soft-clause tracker requires.
    static_cast<void>(s.addClause({a, b, sel}));
    static_cast<void>(s.addClause({a, ~sel}));
    static_cast<void>(s.inprocessNow());
    return s.stats().inproc_strengthened;
  };
  EXPECT_EQ(run(/*freeze=*/true), 0);
  EXPECT_GE(run(/*freeze=*/false), 1);
}

TEST(Inprocess, DisabledByDefaultAndInertWithoutAPass) {
  // The knob documents the measured default; a pass must never run when
  // it is off, and an enabled solver whose interval never fires must be
  // bit-for-bit the plain engine.
  EXPECT_FALSE(Solver::Options{}.inprocess);

  const CnfFormula f = randomKSat(
      {.numVars = 40, .numClauses = 180, .clauseLen = 3, .seed = 5});
  SolverStats st[2];
  for (int mode = 0; mode < 2; ++mode) {
    Solver::Options o;
    o.inprocess = mode == 1;
    o.inprocess_interval = 1'000'000'000;  // never fires on its own
    Solver s(o);
    addVars(s, f.numVars());
    for (const Clause& cl : f.clauses()) ASSERT_TRUE(s.addClause(cl));
    ASSERT_NE(s.solve(), lbool::Undef);
    st[mode] = s.stats();
  }
  EXPECT_EQ(st[1].inproc_passes, 0);
  EXPECT_EQ(st[0].decisions, st[1].decisions);
  EXPECT_EQ(st[0].conflicts, st[1].conflicts);
  EXPECT_EQ(st[0].propagations, st[1].propagations);
  EXPECT_EQ(st[0].learnt_clauses, st[1].learnt_clauses);
}

TEST(Inprocess, SolverScopeFuzzWithInprocessMatchesOracle) {
  // The retirement fuzz with a pass forced at every solve boundary:
  // random interleavings of scope create / retire / enforce toggles
  // over cardinality encodings, brute-force-checked at every step.
  constexpr int kVars = 9;
  std::mt19937_64 rng(4031);

  for (int round = 0; round < 6; ++round) {
    const CnfFormula base =
        randomKSat({.numVars = kVars,
                    .numClauses = 18,
                    .clauseLen = 3,
                    .seed = 2000 + static_cast<std::uint64_t>(round)});
    Solver::Options so = inprocOpts();
    so.inprocess_interval = 1;  // pass at every boundary
    Solver s(so);
    SolverSink sink(s);
    addVars(s, kVars);
    bool ok = true;
    for (const Clause& c : base.clauses()) ok = ok && s.addClause(c);

    struct LiveScope {
      ScopeHandle act;
      std::vector<Lit> lits;
      int k = 0;
      bool enforced = true;
    };
    std::vector<LiveScope> scopes;

    const auto truthSat = [&]() {
      for (std::uint32_t mask = 0; mask < (1u << kVars); ++mask) {
        Assignment a(kVars);
        for (int v = 0; v < kVars; ++v) {
          a[static_cast<std::size_t>(v)] =
              ((mask >> v) & 1u) != 0 ? lbool::True : lbool::False;
        }
        if (!base.satisfies(a)) continue;
        bool good = true;
        for (const LiveScope& sc : scopes) {
          if (!sc.enforced) continue;
          int pop = 0;
          for (Lit p : sc.lits) {
            if (applySign(a[static_cast<std::size_t>(p.var())], p) ==
                lbool::True) {
              ++pop;
            }
          }
          if (pop > sc.k) {
            good = false;
            break;
          }
        }
        if (good) return true;
      }
      return false;
    };

    for (int step = 0; step < 24 && ok && s.okay(); ++step) {
      const int action = static_cast<int>(rng() % 4);
      if (action == 0 || scopes.empty()) {
        LiveScope sc;
        const int width = 2 + static_cast<int>(rng() % 5);
        for (int i = 0; i < width; ++i) {
          sc.lits.push_back(
              Lit(static_cast<Var>(rng() % kVars), (rng() & 1) != 0));
        }
        sc.k = static_cast<int>(rng() % static_cast<std::uint64_t>(width));
        const CardEncoding enc = static_cast<CardEncoding>(rng() % 6);
        sc.act = sink.beginScope();
        encodeAtMost(sink, sc.lits, sc.k, enc);
        sink.endScope(sc.act);
        scopes.push_back(std::move(sc));
      } else if (action == 1) {
        const std::size_t i = rng() % scopes.size();
        sink.retireScope(scopes[i].act);
        s.requestInprocess();  // what the oracle-session layer does
        scopes.erase(scopes.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        const std::size_t i = rng() % scopes.size();
        scopes[i].enforced = !scopes[i].enforced;
        sink.setScopeEnforced(scopes[i].act, scopes[i].enforced);
      }

      const lbool st = s.solve();
      ASSERT_NE(st, lbool::Undef);
      EXPECT_EQ(st == lbool::True, truthSat())
          << "round " << round << " step " << step;
      if (st == lbool::False && s.core().empty()) break;  // base refuted
    }
    EXPECT_GT(s.stats().inproc_passes, 0) << "round " << round;
  }
}

TEST(Inprocess, EngineFuzzWithInprocessAgreesWithOracle) {
  const std::vector<std::string> engines{
      "msu4-v1", "msu4-v2", "msu4-seq", "msu4-cnet", "msu3",  "msu1",
      "wmsu1",   "oll",     "linear",   "binary",    "wlinear"};
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const CnfFormula f = randomKSat({.numVars = 8,
                                     .numClauses = 44,
                                     .clauseLen = 3,
                                     .seed = seed * 29});
    const WcnfFormula w = WcnfFormula::allSoft(f);
    const OracleResult truth = oracleMaxSat(w);
    ASSERT_TRUE(truth.optimumCost.has_value());
    for (const std::string& name : engines) {
      MaxSatOptions o;
      o.sat.inprocess = true;
      o.sat.inprocess_interval = 200;  // many passes per run
      std::unique_ptr<MaxSatSolver> solver = makeSolver(name, o);
      ASSERT_NE(solver, nullptr) << name;
      const MaxSatResult r = solver->solve(w);
      ASSERT_EQ(r.status, MaxSatStatus::Optimum) << name << " seed " << seed;
      EXPECT_EQ(r.cost, *truth.optimumCost) << name << " seed " << seed;
      EXPECT_EQ(w.cost(r.model), r.cost) << name << " seed " << seed;
    }
  }
}

TEST(Inprocess, WeightedEngineFuzzWithInprocessAgreesWithOracle) {
  std::mt19937_64 rng(977);
  const std::vector<std::string> engines{"wmsu1", "oll", "wlinear", "bmo"};
  for (int round = 0; round < 4; ++round) {
    WcnfFormula w(8);
    for (int i = 0; i < 12; ++i) {
      Clause c;
      for (int k = 0; k < 3; ++k) {
        c.push_back(mkLit(static_cast<Var>(rng() % 8), (rng() & 1) != 0));
      }
      w.addHard(c);
    }
    for (int i = 0; i < 10; ++i) {
      Clause c;
      for (int k = 0; k < 2; ++k) {
        c.push_back(mkLit(static_cast<Var>(rng() % 8), (rng() & 1) != 0));
      }
      w.addSoft(c, 1 + static_cast<Weight>(rng() % 5));
    }
    const OracleResult truth = oracleMaxSat(w);
    if (!truth.optimumCost.has_value()) continue;  // hard part unsat
    for (const std::string& name : engines) {
      MaxSatOptions o;
      o.sat.inprocess = true;
      o.sat.inprocess_interval = 200;
      std::unique_ptr<MaxSatSolver> solver = makeSolver(name, o);
      ASSERT_NE(solver, nullptr) << name;
      const MaxSatResult r = solver->solve(w);
      ASSERT_EQ(r.status, MaxSatStatus::Optimum) << name << " round " << round;
      EXPECT_EQ(r.cost, *truth.optimumCost) << name << " round " << round;
    }
  }
}

TEST(Inprocess, SessionRetirementTriggersAPass) {
  // msu4 with the sequential encoding re-encodes (and retires) its
  // bound structure on every improvement; with at least two retirements
  // at least one is followed by another oracle call, which must run the
  // requested pass even though the interval alone would not fire.
  const CnfFormula f = randomKSat(
      {.numVars = 12, .numClauses = 70, .clauseLen = 3, .seed = 77});
  const WcnfFormula w = WcnfFormula::allSoft(f);
  MaxSatOptions o;
  o.encoding = CardEncoding::Sequential;
  o.sat.inprocess = true;
  o.sat.inprocess_interval = 1'000'000'000;  // only retirement triggers
  std::unique_ptr<MaxSatSolver> solver = makeSolver("msu4-seq", o);
  ASSERT_NE(solver, nullptr);
  const MaxSatResult r = solver->solve(w);
  ASSERT_EQ(r.status, MaxSatStatus::Optimum);
  if (r.satStats.retired_scopes >= 2) {
    EXPECT_GE(r.satStats.inproc_passes, 1);
  }
}

TEST(Inprocess, PortfolioFuzzWithInprocessAgreesWithOracle) {
  // 4 diversified workers racing with clause sharing, every engine
  // inprocessing aggressively — optimum must match the oracle.
  std::mt19937_64 rng(31337);
  for (int round = 0; round < 3; ++round) {
    WcnfFormula w(8);
    for (int i = 0; i < 10; ++i) {
      Clause c;
      for (int k = 0; k < 3; ++k) {
        c.push_back(mkLit(static_cast<Var>(rng() % 8), (rng() & 1) != 0));
      }
      w.addHard(c);
    }
    for (int i = 0; i < 10; ++i) {
      Clause c;
      for (int k = 0; k < 2; ++k) {
        c.push_back(mkLit(static_cast<Var>(rng() % 8), (rng() & 1) != 0));
      }
      w.addSoft(c, 1 + static_cast<Weight>(rng() % 3));
    }
    const OracleResult truth = oracleMaxSat(w);
    if (!truth.optimumCost.has_value()) continue;
    PortfolioOptions po;
    po.threads = 4;
    po.base.sat.inprocess = true;
    po.base.sat.inprocess_interval = 200;
    PortfolioSolver solver(po);
    const MaxSatResult r = solver.solve(w);
    ASSERT_EQ(r.status, MaxSatStatus::Optimum) << "round " << round;
    EXPECT_EQ(r.cost, *truth.optimumCost) << "round " << round;
  }
}

}  // namespace
}  // namespace msu
