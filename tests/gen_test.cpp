/// Tests for the instance generators: circuits simulate correctly,
/// Tseitin encodings are consistent with simulation, rewrites preserve
/// semantics, miters/BMC instances are unsatisfiable, debugging
/// instances behave as designed, and generation is deterministic.

#include <gtest/gtest.h>

#include <random>

#include "cnf/oracle.h"
#include "gen/bmc.h"
#include "gen/circuit.h"
#include "gen/debug.h"
#include "gen/miter.h"
#include "gen/pigeonhole.h"
#include "gen/random_cnf.h"
#include "sat/solver.h"

namespace msu {
namespace {

void load(Solver& s, const CnfFormula& f) {
  while (s.numVars() < f.numVars()) static_cast<void>(s.newVar());
  for (const Clause& c : f.clauses()) {
    if (!s.addClause(c)) return;
  }
}

lbool solveCnf(const CnfFormula& f) {
  Solver s;
  load(s, f);
  return s.solve();
}

TEST(RandomCnf, ShapeAndDeterminism) {
  const RandomCnfParams p{.numVars = 20, .numClauses = 90, .clauseLen = 3,
                          .seed = 9};
  const CnfFormula a = randomKSat(p);
  const CnfFormula b = randomKSat(p);
  EXPECT_EQ(a.numVars(), 20);
  EXPECT_EQ(a.numClauses(), 90);
  ASSERT_EQ(a.numClauses(), b.numClauses());
  for (int i = 0; i < a.numClauses(); ++i) {
    EXPECT_EQ(a.clause(i), b.clause(i)) << "not deterministic at " << i;
    EXPECT_EQ(a.clause(i).size(), 3u);
  }
}

TEST(RandomCnf, DistinctVariablesPerClause) {
  const CnfFormula f = randomKSat({.numVars = 10, .numClauses = 200,
                                   .clauseLen = 4, .seed = 3});
  for (const Clause& c : f.clauses()) {
    for (std::size_t i = 0; i < c.size(); ++i) {
      for (std::size_t j = i + 1; j < c.size(); ++j) {
        EXPECT_NE(c[i].var(), c[j].var());
      }
    }
  }
}

TEST(RandomCnf, OverConstrainedIsUnsat) {
  // Ratio 6.0 is far above the 3-SAT threshold (~4.27).
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const CnfFormula f = randomUnsat3Sat(40, 6.0, seed);
    EXPECT_EQ(solveCnf(f), lbool::False) << "seed " << seed;
  }
}

TEST(Pigeonhole, SatIffEnoughHoles) {
  EXPECT_EQ(solveCnf(pigeonhole(3, 3)), lbool::True);
  EXPECT_EQ(solveCnf(pigeonhole(4, 3)), lbool::False);
  EXPECT_EQ(solveCnf(pigeonhole(5, 3)), lbool::False);
}

TEST(Pigeonhole, ClauseCounts) {
  const CnfFormula f = pigeonhole(4, 3);
  // 4 pigeon clauses + 3 holes * C(4,2)=6 pairs = 22.
  EXPECT_EQ(f.numClauses(), 22);
  EXPECT_EQ(f.numVars(), 12);
}

TEST(Circuit, SimulationBasicGates) {
  Circuit c(2);
  const int a = 0;
  const int b = 1;
  const int andG = c.addGate(GateType::And, {a, b});
  const int orG = c.addGate(GateType::Or, {a, b});
  const int xorG = c.addGate(GateType::Xor, {a, b});
  const int nandG = c.addGate(GateType::Nand, {a, b});
  const int norG = c.addGate(GateType::Nor, {a, b});
  const int notG = c.addGate(GateType::Not, {a});
  for (int mask = 0; mask < 4; ++mask) {
    const bool va = (mask & 1) != 0;
    const bool vb = (mask & 2) != 0;
    const std::vector<bool> vals = c.simulate({va, vb});
    EXPECT_EQ(vals[andG], va && vb);
    EXPECT_EQ(vals[orG], va || vb);
    EXPECT_EQ(vals[xorG], va != vb);
    EXPECT_EQ(vals[nandG], !(va && vb));
    EXPECT_EQ(vals[norG], !(va || vb));
    EXPECT_EQ(vals[notG], !va);
  }
}

TEST(Circuit, TseitinConsistentWithSimulation) {
  // For random circuits and random input vectors, forcing the inputs in
  // the CNF must force every gate variable to its simulated value.
  std::mt19937_64 rng(11);
  for (int round = 0; round < 5; ++round) {
    RandomCircuitParams p;
    p.numInputs = 5;
    p.numGates = 25;
    p.numOutputs = 2;
    p.seed = rng();
    const Circuit c = randomCircuit(p);
    const TseitinResult enc = tseitinEncode(c);

    Solver s;
    load(s, enc.cnf);
    for (int t = 0; t < 4; ++t) {
      std::vector<bool> in(5);
      for (int i = 0; i < 5; ++i) {
        in[static_cast<std::size_t>(i)] = (rng() & 1) != 0;
      }
      const std::vector<bool> vals = c.simulate(in);
      std::vector<Lit> assumps;
      for (int i = 0; i < 5; ++i) {
        assumps.push_back(Lit(enc.gateVar[static_cast<std::size_t>(i)],
                              !in[static_cast<std::size_t>(i)]));
      }
      ASSERT_EQ(s.solve(assumps), lbool::True);
      for (int g = 0; g < c.numGates(); ++g) {
        const lbool v = s.modelValue(
            posLit(enc.gateVar[static_cast<std::size_t>(g)]));
        EXPECT_EQ(v == lbool::True, vals[static_cast<std::size_t>(g)])
            << "gate " << g << " round " << round;
      }
    }
  }
}

TEST(Circuit, RewritePreservesSemantics) {
  std::mt19937_64 rng(23);
  for (int round = 0; round < 6; ++round) {
    RandomCircuitParams p;
    p.numInputs = 6;
    p.numGates = 30;
    p.numOutputs = 3;
    p.seed = rng();
    const Circuit c = randomCircuit(p);
    const Circuit r = rewriteCircuit(c, rng());
    EXPECT_GT(r.numGates(), c.numGates());  // rewrites add structure
    for (int t = 0; t < 16; ++t) {
      std::vector<bool> in(6);
      for (int i = 0; i < 6; ++i) {
        in[static_cast<std::size_t>(i)] = (rng() & 1) != 0;
      }
      EXPECT_EQ(c.evaluate(in), r.evaluate(in)) << "round " << round;
    }
  }
}

TEST(Circuit, InjectedErrorChangesFunction) {
  RandomCircuitParams p;
  p.numInputs = 5;
  p.numGates = 20;
  p.numOutputs = 2;
  p.seed = 99;
  const Circuit c = randomCircuit(p);
  const int site = c.numInputs() + 3;
  const Circuit f = injectGateError(c, site);
  // The mutated gate differs on at least one local input pattern; the
  // full circuits differ somewhere unless masked. Check the gate types.
  EXPECT_NE(c.gate(site).type, f.gate(site).type);
  EXPECT_EQ(c.numGates(), f.numGates());
}

TEST(Miter, EquivalentCircuitsGiveUnsat) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    RandomCircuitParams p;
    p.numInputs = 6;
    p.numGates = 30;
    p.numOutputs = 2;
    p.seed = seed;
    const CnfFormula miter = equivalenceInstance(p, seed + 100);
    EXPECT_EQ(solveCnf(miter), lbool::False) << "seed " << seed;
  }
}

TEST(Miter, InequivalentCircuitsGiveSat) {
  RandomCircuitParams p;
  p.numInputs = 6;
  p.numGates = 30;
  p.numOutputs = 2;
  p.seed = 5;
  const Circuit c = randomCircuit(p);
  // Find an error site that is observable (retry a few).
  for (int site = c.numInputs(); site < c.numGates(); ++site) {
    const Circuit faulty = injectGateError(c, site);
    bool differs = false;
    std::mt19937_64 rng(7);
    for (int t = 0; t < 64 && !differs; ++t) {
      std::vector<bool> in(6);
      for (int i = 0; i < 6; ++i) {
        in[static_cast<std::size_t>(i)] = (rng() & 1) != 0;
      }
      differs = c.evaluate(in) != faulty.evaluate(in);
    }
    if (!differs) continue;
    EXPECT_EQ(solveCnf(buildMiter(c, faulty)), lbool::True);
    return;
  }
  FAIL() << "no observable error site found";
}

TEST(Bmc, CounterInstanceIsUnsat) {
  for (int bits : {4, 6}) {
    for (int steps : {3, 8}) {
      const CnfFormula f = bmcCounterInstance({.bits = bits, .steps = steps});
      EXPECT_EQ(solveCnf(f), lbool::False)
          << "bits=" << bits << " steps=" << steps;
    }
  }
}

TEST(Bmc, ReachableTargetIsSat) {
  // Asserting value == k is reachable (enable every step).
  const int bits = 4;
  const int k = 5;
  CnfFormula f = bmcCounterInstance({.bits = bits, .steps = k});
  // The generated instance asserts value == k+1 (unsat); rebuild the
  // reachable variant manually by flipping the target bits: assert k.
  // Instead, simply check a smaller unrolling is satisfiable without the
  // final assertion: strip the last `bits` unit clauses.
  CnfFormula g(f.numVars());
  for (int i = 0; i + bits < f.numClauses(); ++i) g.addClause(f.clause(i));
  EXPECT_EQ(solveCnf(g), lbool::True);
}

TEST(Debug, InstanceIsHardFeasibleAndSoftInconsistent) {
  DebugParams dp;
  dp.circuit.numInputs = 5;
  dp.circuit.numGates = 25;
  dp.circuit.numOutputs = 2;
  dp.circuit.seed = 31;
  dp.numVectors = 3;
  dp.seed = 77;
  const DebugInstance inst = designDebugInstance(dp, /*partial=*/true);
  EXPECT_GE(inst.mismatchVectors, 1);
  EXPECT_GE(inst.errorGate, dp.circuit.numInputs);

  // Hard part alone must be satisfiable; hard+soft must not.
  CnfFormula hard(inst.wcnf.numVars());
  for (const Clause& h : inst.wcnf.hard()) hard.addClause(h);
  EXPECT_EQ(solveCnf(hard), lbool::True);

  CnfFormula all(inst.wcnf.numVars());
  for (const Clause& h : inst.wcnf.hard()) all.addClause(h);
  for (const SoftClause& s : inst.wcnf.soft()) all.addClause(s.lits);
  EXPECT_EQ(solveCnf(all), lbool::False);
}

TEST(Debug, PlainVariantIsUnsatAsCnf) {
  DebugParams dp;
  dp.circuit.numInputs = 5;
  dp.circuit.numGates = 20;
  dp.circuit.seed = 41;
  dp.numVectors = 2;
  dp.seed = 43;
  const DebugInstance inst = designDebugInstance(dp, /*partial=*/false);
  EXPECT_EQ(inst.wcnf.numHard(), 0);
  CnfFormula all(inst.wcnf.numVars());
  for (const SoftClause& s : inst.wcnf.soft()) all.addClause(s.lits);
  EXPECT_EQ(solveCnf(all), lbool::False);
}

TEST(Debug, Deterministic) {
  DebugParams dp;
  dp.circuit.seed = 51;
  dp.seed = 53;
  const DebugInstance a = designDebugInstance(dp);
  const DebugInstance b = designDebugInstance(dp);
  EXPECT_EQ(a.errorGate, b.errorGate);
  EXPECT_EQ(a.wcnf.numSoft(), b.wcnf.numSoft());
  EXPECT_EQ(a.wcnf.numHard(), b.wcnf.numHard());
}

}  // namespace
}  // namespace msu
