/// Tests of the model-reconstruction witness stack (sat/reconstruct.h)
/// and of the end-to-end reconstruction contract: deterministic units
/// for replay, substitution and restorable extraction; reconstruction
/// surviving scope retirement and variable recycling; a randomized
/// fuzz interleaving variable-removing inprocessing with scope
/// creation / retirement / warm solves / incremental clauses against a
/// brute-force oracle with full model verification; and engine-level
/// totality of returned models under aggressive inprocessing.

#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <string>
#include <vector>

#include "cnf/oracle.h"
#include "encodings/cardinality.h"
#include "encodings/sink.h"
#include "gen/random_cnf.h"
#include "harness/factory.h"
#include "sat/reconstruct.h"
#include "sat/solver.h"

namespace msu {
namespace {

void addVars(Solver& s, int n) {
  while (s.numVars() < n) static_cast<void>(s.newVar());
}

bool modelSat(const Solver& s, const Clause& c) {
  for (const Lit p : c) {
    if (s.modelValue(p) == lbool::True) return true;
  }
  return false;
}

TEST(Reconstruction, ExtendFlipsTheWitnessOnlyWhenNeeded) {
  WitnessStack w;
  const std::vector<Lit> clause{posLit(0), posLit(2)};
  w.pushClause(posLit(2), clause, /*restorable=*/true);

  // Clause already satisfied: the witness variable is left alone.
  std::vector<lbool> sat{lbool::True, lbool::False, lbool::Undef};
  w.extend(sat);
  EXPECT_EQ(sat[2], lbool::Undef);

  // Clause unsatisfied (Undef never satisfies): the witness is set.
  std::vector<lbool> unsat{lbool::False, lbool::False, lbool::Undef};
  w.extend(unsat);
  EXPECT_EQ(unsat[2], lbool::True);
}

TEST(Reconstruction, SubstitutionReplaysToAnExactEquality) {
  WitnessStack w;
  w.pushSubstitution(posLit(0), posLit(1));  // x := r
  for (const lbool rv : {lbool::True, lbool::False}) {
    std::vector<lbool> m{lbool::Undef, rv};
    w.extend(m);
    EXPECT_EQ(m[0], rv);
  }
}

TEST(Reconstruction, ExtractRestorableKeepsOrderAndTheRest) {
  WitnessStack w;
  const std::vector<Lit> c1{posLit(0), posLit(1)};
  const std::vector<Lit> c2{posLit(2), negLit(0)};
  const std::vector<Lit> c3{negLit(0), posLit(3)};
  w.pushClause(posLit(0), c1, /*restorable=*/true);
  w.pushClause(posLit(2), c2, /*restorable=*/true);
  w.pushClause(negLit(0), c3, /*restorable=*/true);
  w.pushSubstitution(posLit(4), posLit(1));  // never restorable
  ASSERT_EQ(w.size(), 5u);

  std::vector<std::vector<Lit>> out;
  w.extractRestorable(0, out);
  ASSERT_EQ(out.size(), 2u);  // c1 and c3, in push order
  EXPECT_EQ(out[0], c1);
  EXPECT_EQ(out[1], c3);
  EXPECT_EQ(w.size(), 3u);  // c2 and the substitution pair remain

  // The surviving entries still replay: v2's clause (v2 | ~v0) forces
  // v2 when v0 holds, and the substitution still binds v4 to v1.
  std::vector<lbool> m{lbool::True, lbool::False, lbool::Undef, lbool::Undef,
                       lbool::Undef};
  w.extend(m);
  EXPECT_EQ(m[2], lbool::True);
  EXPECT_EQ(m[4], lbool::False);
}

TEST(Reconstruction, NewestFirstReplayComposesInterleavedPasses) {
  // An elimination witness may mention a variable substituted *later*;
  // the newer substitution entries sit above it and fix that variable
  // first. Here v0's clause (v0 | v1) is pushed before v1 := v2, and a
  // model with v2 false must come back with v1 false and v0 true.
  WitnessStack w;
  const std::vector<Lit> clause{posLit(0), posLit(1)};
  w.pushClause(posLit(0), clause, /*restorable=*/true);
  w.pushSubstitution(posLit(1), posLit(2));
  std::vector<lbool> m{lbool::Undef, lbool::Undef, lbool::False};
  w.extend(m);
  EXPECT_EQ(m[1], lbool::False);
  EXPECT_EQ(m[0], lbool::True);
}

TEST(Reconstruction, SurvivesScopeRetirementAndVariableRecycling) {
  // Eliminate a plain variable, then run a scope through its full
  // lifecycle twice (the second one reuses the recycled variables).
  // The witness references no scope variable by construction, so the
  // reconstructed model must keep satisfying the removed clauses
  // throughout.
  Solver::Options o;
  o.inprocess = true;
  Solver s(o);
  SolverSink sink(s);
  addVars(s, 5);
  for (const Var v : {0, 1, 3, 4}) s.setFrozen(v, true);
  const std::vector<Clause> original{{posLit(0), posLit(1), posLit(2)},
                                     {posLit(3), posLit(4), negLit(2)}};
  for (const Clause& c : original) ASSERT_TRUE(s.addClause(c));
  ASSERT_TRUE(s.inprocessNow());
  ASSERT_GE(s.stats().inproc_bve_eliminated, 1);

  const std::vector<Lit> bound{posLit(0), posLit(1), posLit(3)};
  for (int cycle = 0; cycle < 2; ++cycle) {
    const ScopeHandle sc = sink.beginScope();
    encodeAtMost(sink, bound, 1, CardEncoding::Sequential);
    sink.endScope(sc);
    ASSERT_EQ(s.solve(), lbool::True) << "cycle " << cycle;
    for (const Clause& c : original) EXPECT_TRUE(modelSat(s, c));
    int pop = 0;
    for (const Lit p : bound) {
      if (s.modelValue(p) == lbool::True) ++pop;
    }
    EXPECT_LE(pop, 1) << "cycle " << cycle;

    sink.retireScope(sc);
    s.requestInprocess();
    ASSERT_EQ(s.solve(), lbool::True) << "cycle " << cycle;
    for (const Clause& c : original) EXPECT_TRUE(modelSat(s, c));
  }
  EXPECT_GE(s.stats().retired_scopes, 2);
}

TEST(Reconstruction, ScopeAndRemovalFuzzAgainstBruteForce) {
  // Random interleavings of variable-removing passes with scope
  // create / retire / enforce toggles, incremental global clauses
  // (which restore eliminated variables) and warm solves under random
  // assumptions. Every verdict is brute-force checked and every model
  // is verified against all clauses ever added and all enforced
  // bounds.
  constexpr int kVars = 8;
  std::mt19937_64 rng(260807);
  std::int64_t passes = 0;

  for (int round = 0; round < 6; ++round) {
    const CnfFormula base =
        randomKSat({.numVars = kVars,
                    .numClauses = 14,
                    .clauseLen = 3,
                    .seed = 7000 + static_cast<std::uint64_t>(round)});
    Solver::Options o;
    o.inprocess = true;
    o.inprocess_interval = 1;  // a pass at every solve boundary
    Solver s(o);
    SolverSink sink(s);
    addVars(s, kVars);
    std::vector<Clause> added(base.clauses().begin(), base.clauses().end());
    bool ok = true;
    for (const Clause& c : added) ok = ok && s.addClause(c);

    struct LiveScope {
      ScopeHandle act;
      std::vector<Lit> lits;
      int k = 0;
      bool enforced = true;
    };
    std::vector<LiveScope> scopes;

    const auto truthSat = [&](const std::vector<Lit>& assumps) {
      for (std::uint32_t mask = 0; mask < (1u << kVars); ++mask) {
        Assignment a(kVars);
        for (int v = 0; v < kVars; ++v) {
          a[static_cast<std::size_t>(v)] =
              ((mask >> v) & 1u) != 0 ? lbool::True : lbool::False;
        }
        const auto holds = [&a](Lit p) {
          return applySign(a[static_cast<std::size_t>(p.var())], p) ==
                 lbool::True;
        };
        bool good = true;
        for (const Lit p : assumps) good = good && holds(p);
        for (const Clause& c : added) {
          if (!good) break;
          bool sat = false;
          for (const Lit p : c) sat = sat || holds(p);
          good = sat;
        }
        for (const LiveScope& sc : scopes) {
          if (!good || !sc.enforced) continue;
          int pop = 0;
          for (const Lit p : sc.lits) {
            if (holds(p)) ++pop;
          }
          if (pop > sc.k) good = false;
        }
        if (good) return true;
      }
      return false;
    };

    for (int step = 0; step < 20 && ok && s.okay(); ++step) {
      const int action = static_cast<int>(rng() % 5);
      if (action == 0 || scopes.empty()) {
        LiveScope sc;
        const int width = 2 + static_cast<int>(rng() % 4);
        for (int i = 0; i < width; ++i) {
          sc.lits.push_back(
              Lit(static_cast<Var>(rng() % kVars), (rng() & 1) != 0));
        }
        sc.k = static_cast<int>(rng() % static_cast<std::uint64_t>(width));
        const CardEncoding enc = static_cast<CardEncoding>(rng() % 6);
        sc.act = sink.beginScope();
        encodeAtMost(sink, sc.lits, sc.k, enc);
        sink.endScope(sc.act);
        scopes.push_back(std::move(sc));
      } else if (action == 1) {
        const std::size_t i = rng() % scopes.size();
        sink.retireScope(scopes[i].act);
        s.requestInprocess();
        scopes.erase(scopes.begin() + static_cast<std::ptrdiff_t>(i));
      } else if (action == 2) {
        const std::size_t i = rng() % scopes.size();
        scopes[i].enforced = !scopes[i].enforced;
        sink.setScopeEnforced(scopes[i].act, scopes[i].enforced);
      } else if (action == 3) {
        // A fresh global clause: routinely names variables a previous
        // pass eliminated or substituted, exercising restoration.
        Clause c;
        for (int i = 0; i < 3; ++i) {
          c.push_back(Lit(static_cast<Var>(rng() % kVars), (rng() & 1) != 0));
        }
        added.push_back(c);
        ok = s.addClause(c);
        if (!ok) break;
      } else {
        ok = s.inprocessNow();
        if (!ok) break;
      }

      std::vector<Lit> assumps;
      if ((rng() & 1) != 0) {
        assumps.push_back(
            Lit(static_cast<Var>(rng() % kVars), (rng() & 1) != 0));
      }
      const lbool st = s.solve(assumps);
      ASSERT_NE(st, lbool::Undef);
      EXPECT_EQ(st == lbool::True, truthSat(assumps))
          << "round " << round << " step " << step;
      if (st == lbool::True) {
        for (std::size_t i = 0; i < added.size(); ++i) {
          EXPECT_TRUE(modelSat(s, added[i]))
              << "round " << round << " step " << step << " clause " << i;
        }
        for (const LiveScope& sc : scopes) {
          if (!sc.enforced) continue;
          int pop = 0;
          for (const Lit p : sc.lits) {
            if (s.modelValue(p) == lbool::True) ++pop;
          }
          EXPECT_LE(pop, sc.k) << "round " << round << " step " << step;
        }
      } else if (assumps.empty() && s.core().empty()) {
        break;  // globals refuted outright; nothing further to vary
      }
    }
    passes += s.stats().inproc_passes;
  }
  EXPECT_GT(passes, 0);
}

TEST(Reconstruction, EnginesReturnTotalCorrectModelsUnderInprocessing) {
  // With a pass forced at every oracle call, the variable-removing
  // passes run constantly mid-search; every engine must still report
  // the true optimum with a model whose recomputed cost matches —
  // which fails if any soft clause's variables come back undefined.
  const std::vector<std::string> engines{"msu3", "msu4-v2", "oll", "linear"};
  for (std::uint64_t seed = 1; seed <= 2; ++seed) {
    const CnfFormula f = randomKSat(
        {.numVars = 8, .numClauses = 40, .clauseLen = 3, .seed = seed * 131});
    const WcnfFormula w = WcnfFormula::allSoft(f);
    const OracleResult truth = oracleMaxSat(w);
    ASSERT_TRUE(truth.optimumCost.has_value());
    for (const std::string& name : engines) {
      MaxSatOptions o;
      o.sat.inprocess = true;
      o.sat.inprocess_interval = 1;
      std::unique_ptr<MaxSatSolver> solver = makeSolver(name, o);
      ASSERT_NE(solver, nullptr) << name;
      const MaxSatResult r = solver->solve(w);
      ASSERT_EQ(r.status, MaxSatStatus::Optimum) << name << " seed " << seed;
      EXPECT_EQ(r.cost, *truth.optimumCost) << name << " seed " << seed;
      EXPECT_EQ(w.cost(r.model), r.cost) << name << " seed " << seed;
    }
  }
}

}  // namespace
}  // namespace msu
