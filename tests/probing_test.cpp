/// Tests of failed-literal probing with hyper-binary resolution and of
/// SCC-based equivalent-literal substitution (inprocessing round two):
/// a failed probe becomes a root unit, hyper-binary resolvents are
/// attached once and deduplicated across passes, binary-equivalent
/// literals collapse onto one representative (frozen members win the
/// representative election), a cycle through a complement refutes the
/// database, and assumptions over substituted variables are mapped in
/// and their cores mapped back out.

#include <gtest/gtest.h>

#include <vector>

#include "sat/solver.h"

namespace msu {
namespace {

/// Probing isolated: elimination and substitution off.
Solver::Options probeOpts() {
  Solver::Options o;
  o.inprocess = true;
  o.inprocess_bve_occ_limit = 0;
  o.inprocess_scc = false;
  return o;
}

/// Substitution isolated: elimination and probing off.
Solver::Options sccOpts() {
  Solver::Options o;
  o.inprocess = true;
  o.inprocess_bve_occ_limit = 0;
  o.inprocess_probe_props = 0;
  return o;
}

void addVars(Solver& s, int n) {
  while (s.numVars() < n) static_cast<void>(s.newVar());
}

TEST(Probing, FailedLiteralBecomesARootUnit) {
  // p implies a and b through binaries (p is a root of the binary
  // implication graph), and {a,b} refute themselves through two long
  // clauses — so probing p must fail and fix ~p at the root.
  Solver s(probeOpts());
  addVars(s, 4);
  const Lit p = posLit(0);
  const Lit a = posLit(1);
  const Lit b = posLit(2);
  const Lit c = posLit(3);
  ASSERT_TRUE(s.addClause({~p, a}));
  ASSERT_TRUE(s.addClause({~p, b}));
  ASSERT_TRUE(s.addClause({~a, ~b, c}));
  ASSERT_TRUE(s.addClause({~a, ~b, ~c}));

  ASSERT_TRUE(s.inprocessNow());
  EXPECT_GE(s.stats().inproc_probe_probes, 1);
  EXPECT_EQ(s.stats().inproc_probe_failed, 1);
  EXPECT_GT(s.stats().inproc_props, 0);

  ASSERT_EQ(s.solve(), lbool::True);
  EXPECT_EQ(s.modelValue(p), lbool::False);
}

TEST(Probing, HyperBinaryResolventAttachedOnceAndDeduplicated) {
  // Probing p propagates a through a binary and then u through the
  // long clause (~p|~a|u): the hyper-binary resolvent (~p|u) is new
  // and must be attached exactly once. On a second pass u travels
  // through the attached binary itself, so no duplicate appears.
  Solver s(probeOpts());
  addVars(s, 3);
  const Lit p = posLit(0);
  const Lit a = posLit(1);
  const Lit u = posLit(2);
  ASSERT_TRUE(s.addClause({~p, a}));
  ASSERT_TRUE(s.addClause({~p, ~a, u}));

  ASSERT_TRUE(s.inprocessNow());
  EXPECT_GE(s.stats().inproc_probe_probes, 1);
  EXPECT_EQ(s.stats().inproc_probe_hbr, 1);

  ASSERT_TRUE(s.inprocessNow());
  EXPECT_EQ(s.stats().inproc_probe_hbr, 1);  // deduplicated, not re-added
  EXPECT_EQ(s.solve(), lbool::True);
}

TEST(Probing, SccCollapsesAnEquivalenceOntoOneRepresentative) {
  // x <-> y through two binaries; the smaller-index literal x wins the
  // election, y is substituted away, and the long clause over y is
  // rewritten in place.
  Solver s(sccOpts());
  addVars(s, 4);
  const Lit x = posLit(0);
  const Lit y = posLit(1);
  const Lit z = posLit(2);
  const Lit w = posLit(3);
  ASSERT_TRUE(s.addClause({~x, y}));
  ASSERT_TRUE(s.addClause({~y, x}));
  ASSERT_TRUE(s.addClause({y, z, w}));

  ASSERT_TRUE(s.inprocessNow());
  EXPECT_EQ(s.stats().inproc_scc_vars, 1);
  EXPECT_GE(s.stats().inproc_scc_rewritten, 1);

  // The substitution is invisible from outside: models keep both
  // variables, and they agree.
  ASSERT_EQ(s.solve(), lbool::True);
  EXPECT_NE(s.modelValue(x), lbool::Undef);
  EXPECT_EQ(s.modelValue(x), s.modelValue(y));
}

TEST(Probing, SccCycleThroughAComplementRefutesTheDatabase) {
  // x -> y -> ~x and ~x -> w -> x put x and ~x in one strongly
  // connected component: the formula is unsatisfiable and the pass
  // must detect it without search.
  Solver s(sccOpts());
  addVars(s, 3);
  const Lit x = posLit(0);
  const Lit y = posLit(1);
  const Lit w = posLit(2);
  ASSERT_TRUE(s.addClause({~x, y}));
  ASSERT_TRUE(s.addClause({~y, ~x}));
  ASSERT_TRUE(s.addClause({x, w}));
  ASSERT_TRUE(s.addClause({~w, x}));

  EXPECT_FALSE(s.inprocessNow());
  EXPECT_FALSE(s.okay());
  EXPECT_EQ(s.solve(), lbool::False);
}

TEST(Probing, FrozenMemberWinsTheRepresentativeElection) {
  // x <-> y with y frozen: the pass must keep y (a tracker-style
  // selector) and substitute x, even though x has the smaller index.
  // Assumptions over x are mapped to y on the way in, and the core is
  // mapped back to the caller's literal on the way out.
  Solver s(sccOpts());
  addVars(s, 2);
  const Lit x = posLit(0);
  const Lit y = posLit(1);
  s.setFrozen(y.var(), true);
  ASSERT_TRUE(s.addClause({~x, y}));
  ASSERT_TRUE(s.addClause({~y, x}));

  ASSERT_TRUE(s.inprocessNow());
  EXPECT_EQ(s.stats().inproc_scc_vars, 1);

  // Assuming the substituted literal still works, and forces its
  // representative.
  const std::vector<Lit> assumeX{x};
  ASSERT_EQ(s.solve(assumeX), lbool::True);
  EXPECT_EQ(s.modelValue(x), lbool::True);
  EXPECT_EQ(s.modelValue(y), lbool::True);

  // Refute y: assuming x must now fail, and the core must name x — the
  // literal the caller assumed — not the internal representative.
  ASSERT_TRUE(s.addClause({~y}));
  ASSERT_EQ(s.solve(assumeX), lbool::False);
  ASSERT_EQ(s.core().size(), 1u);
  EXPECT_TRUE(s.core()[0] == x);
}

}  // namespace
}  // namespace msu
