/// Tests of warm-started oracle calls (Solver::Options::reuse_trail)
/// and the adaptive restart trajectory (Options::ema_restarts):
/// assumption-prefix reuse and trimming at the divergence point, warm
/// clause attachment (no-backtrack and forced-backtrack paths),
/// explicit prefix invalidation by retirement and inprocessing, the
/// both-knobs-off bit-for-bit gating contract, RestartEma units,
/// stable/focused mode switching, the SoftTracker canonical-order
/// contract, and fuzzed oracle agreement across every engine, weighted
/// instances and a 4-thread portfolio under both knobs.

#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <string>
#include <vector>

#include "cnf/oracle.h"
#include "core/soft_tracker.h"
#include "encodings/sink.h"
#include "gen/random_cnf.h"
#include "harness/factory.h"
#include "par/portfolio.h"
#include "sat/solver.h"

namespace msu {
namespace {

/// Solver with `n` fresh unscoped variables.
void addVars(Solver& s, int n) {
  while (s.numVars() < n) static_cast<void>(s.newVar());
}

/// Selector-style workload: assuming ~s_i (variable i) propagates x_i
/// (variable n+i) through the clause (s_i | x_i) — one decision plus
/// one implication per assumption, the engines' per-soft-clause cost.
void addSelectorChains(Solver& s, int n) {
  addVars(s, 2 * n);
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(s.addClause({posLit(i), posLit(n + i)}));
  }
}

std::vector<Lit> negAssumps(int n) {
  std::vector<Lit> out;
  for (int i = 0; i < n; ++i) out.push_back(negLit(i));
  return out;
}

TEST(WarmStart, DefaultsAndGauge) {
  EXPECT_TRUE(Solver::Options{}.reuse_trail);
  EXPECT_FALSE(Solver::Options{}.ema_restarts);
}

TEST(WarmStart, RepeatedSolveReusesTheWholePrefix) {
  constexpr int kN = 20;
  Solver s;
  addSelectorChains(s, kN);
  const std::vector<Lit> assumps = negAssumps(kN);

  ASSERT_EQ(s.solve(assumps), lbool::True);
  EXPECT_EQ(s.stats().reused_trail_lits, 0);
  const std::int64_t props = s.stats().propagations;
  // The trail stays warm across the boundary: assumption vars remain
  // assigned between calls.
  EXPECT_EQ(s.value(Var{0}), lbool::False);

  ASSERT_EQ(s.solve(assumps), lbool::True);
  // All kN assumption levels were kept (decision + implied literal
  // each), and nothing needed re-propagation.
  EXPECT_GE(s.stats().reused_trail_lits, 2 * kN);
  EXPECT_EQ(s.stats().propagations, props);
}

TEST(WarmStart, TrimsToTheFirstDivergence) {
  constexpr int kN = 20;
  Solver s;
  addSelectorChains(s, kN);
  std::vector<Lit> assumps = negAssumps(kN);
  ASSERT_EQ(s.solve(assumps), lbool::True);

  // Flip the LAST assumption: 19 levels survive.
  assumps.back() = posLit(kN - 1);
  ASSERT_EQ(s.solve(assumps), lbool::True);
  const std::int64_t afterTail = s.stats().reused_trail_lits;
  EXPECT_GE(afterTail, 2 * (kN - 1));

  // Flip the FIRST assumption: nothing survives.
  assumps = negAssumps(kN);
  assumps.front() = posLit(0);
  ASSERT_EQ(s.solve(assumps), lbool::True);
  EXPECT_EQ(s.stats().reused_trail_lits, afterTail);
}

TEST(WarmStart, WarmAttachOverFreshVariablesKeepsTheTrail) {
  constexpr int kN = 10;
  Solver s;
  addSelectorChains(s, kN);
  const std::vector<Lit> assumps = negAssumps(kN);
  ASSERT_EQ(s.solve(assumps), lbool::True);
  ASSERT_EQ(s.value(Var{0}), lbool::False);  // warm

  // A clause over two fresh variables has two non-false literals:
  // attaching must not disturb the kept trail.
  const Var y = s.newVar();
  const Var z = s.newVar();
  ASSERT_TRUE(s.addClause({posLit(y), posLit(z)}));
  EXPECT_EQ(s.value(Var{0}), lbool::False);  // still warm

  const std::int64_t props = s.stats().propagations;
  ASSERT_EQ(s.solve(assumps), lbool::True);
  // The prefix survived the warm attach; only the fresh clause's
  // variables needed any new work.
  EXPECT_LE(s.stats().propagations - props, 4);
  EXPECT_TRUE(s.modelValue(posLit(y)) == lbool::True ||
              s.modelValue(posLit(z)) == lbool::True);
}

TEST(WarmStart, FalsifiedWarmAttachBacktracksJustEnough) {
  constexpr int kN = 20;
  Solver s;
  addSelectorChains(s, kN);
  ASSERT_EQ(s.solve(negAssumps(kN)), lbool::True);

  // (s_5 | s_9) is falsified under the kept trail (both assumed away at
  // levels 6 and 10): the attach must rewind below the second-highest
  // false level, keeping assumptions 0..4 and unassigning s_5 upward.
  ASSERT_TRUE(s.addClause({posLit(5), posLit(9)}));
  EXPECT_EQ(s.value(Var{4}), lbool::False);  // level 5 kept
  EXPECT_EQ(s.value(Var{5}), lbool::Undef);  // level 6 unwound
  EXPECT_EQ(s.value(Var{9}), lbool::Undef);

  // Under the full assumption set the new clause is inconsistent; the
  // core names only assumption literals.
  ASSERT_EQ(s.solve(negAssumps(kN)), lbool::False);
  for (const Lit p : s.core()) {
    EXPECT_TRUE(p == negLit(5) || p == negLit(9));
  }
  // And the relaxed suffix is satisfiable again.
  ASSERT_EQ(s.solve(negAssumps(5)), lbool::True);
}

TEST(WarmStart, UnitClauseEntersAtTheRoot) {
  constexpr int kN = 8;
  Solver s;
  addSelectorChains(s, kN);
  ASSERT_EQ(s.solve(negAssumps(kN)), lbool::True);
  ASSERT_EQ(s.value(Var{0}), lbool::False);  // warm

  const Var u = s.newVar();
  ASSERT_TRUE(s.addClause({posLit(u)}));
  // The unit rewound the warm trail and is now a root fact.
  EXPECT_EQ(s.value(Var{0}), lbool::Undef);
  EXPECT_EQ(s.value(u), lbool::True);
  EXPECT_EQ(s.solve(negAssumps(kN)), lbool::True);
}

TEST(WarmStart, RetirementInvalidatesThePrefix) {
  Solver s;
  SolverSink sink(s);
  addVars(s, 4);
  const ScopeHandle scope = sink.beginScope();
  sink.addClause({posLit(0), posLit(1)});
  sink.endScope(scope);

  const std::vector<Lit> assumps{negLit(2)};
  ASSERT_EQ(s.solve(assumps), lbool::True);
  ASSERT_EQ(s.value(Var{2}), lbool::False);  // warm

  sink.retireScope(scope);
  // Retirement cancelled to the root before sweeping.
  EXPECT_EQ(s.value(Var{2}), lbool::Undef);
  EXPECT_EQ(s.solve(assumps), lbool::True);
}

TEST(WarmStart, InprocessingInvalidatesThePrefix) {
  Solver::Options o;
  o.inprocess = true;
  Solver s(o);
  addSelectorChains(s, 6);
  ASSERT_EQ(s.solve(negAssumps(6)), lbool::True);
  ASSERT_EQ(s.value(Var{0}), lbool::False);  // warm

  ASSERT_TRUE(s.inprocessNow());
  EXPECT_EQ(s.value(Var{0}), lbool::Undef);  // explicit invalidation
  EXPECT_EQ(s.solve(negAssumps(6)), lbool::True);
}

TEST(WarmStart, CoreStillNamesOnlyAssumptionsOnWarmRepeat) {
  Solver s;
  addVars(s, 3);
  ASSERT_TRUE(s.addClause({posLit(0), posLit(1)}));
  const std::vector<Lit> assumps{negLit(0), negLit(1), negLit(2)};
  for (int round = 0; round < 3; ++round) {
    ASSERT_EQ(s.solve(assumps), lbool::False);
    for (const Lit p : s.core()) {
      EXPECT_TRUE(p == negLit(0) || p == negLit(1)) << "round " << round;
    }
  }
}

TEST(WarmStart, BothKnobsOffIsTheColdDeterministicEngine) {
  // The PR 4 gating contract: with reuse_trail and ema_restarts off the
  // solver must behave exactly like the cancelUntil(0)-per-solve engine
  // — cold between calls, zero reuse, and bit-for-bit deterministic
  // across identical incremental scripts.
  const CnfFormula f = randomKSat(
      {.numVars = 30, .numClauses = 126, .clauseLen = 3, .seed = 9});
  SolverStats st[2];
  for (int run = 0; run < 2; ++run) {
    Solver::Options o;
    o.reuse_trail = false;
    o.ema_restarts = false;
    Solver s(o);
    addVars(s, f.numVars() + 4);
    for (const Clause& cl : f.clauses()) ASSERT_TRUE(s.addClause(cl));
    for (int call = 0; call < 6; ++call) {
      const std::vector<Lit> assumps{Lit(30, (call & 1) != 0),
                                     Lit(31 + call % 3, false)};
      static_cast<void>(s.solve(assumps));
      // Cold engine: the trail never survives a solve.
      EXPECT_EQ(s.value(Var{31 + call % 3}), lbool::Undef);
      ASSERT_TRUE(s.addClause(
          {Lit(call % 30, true), Lit((call * 7 + 3) % 30, false)}));
    }
    st[run] = s.stats();
    EXPECT_EQ(st[run].reused_trail_lits, 0);
    EXPECT_EQ(st[run].mode_switches, 0);
    EXPECT_EQ(st[run].restarts_blocked, 0);
  }
  EXPECT_EQ(st[0].decisions, st[1].decisions);
  EXPECT_EQ(st[0].conflicts, st[1].conflicts);
  EXPECT_EQ(st[0].propagations, st[1].propagations);
  EXPECT_EQ(st[0].learnt_clauses, st[1].learnt_clauses);
  EXPECT_EQ(st[0].restarts, st[1].restarts);
}

TEST(WarmStart, WarmEngineIsDeterministicToo) {
  const CnfFormula f = randomKSat(
      {.numVars = 10, .numClauses = 50, .clauseLen = 3, .seed = 12});
  const WcnfFormula w = WcnfFormula::allSoft(f);
  MaxSatResult r[2];
  for (int run = 0; run < 2; ++run) {
    std::unique_ptr<MaxSatSolver> solver = makeSolver("msu4-v2", {});
    ASSERT_NE(solver, nullptr);
    r[run] = solver->solve(w);
    ASSERT_EQ(r[run].status, MaxSatStatus::Optimum);
  }
  EXPECT_EQ(r[0].cost, r[1].cost);
  EXPECT_EQ(r[0].satCalls, r[1].satCalls);
  EXPECT_EQ(r[0].satStats.conflicts, r[1].satStats.conflicts);
  EXPECT_EQ(r[0].satStats.reused_trail_lits, r[1].satStats.reused_trail_lits);
}

TEST(RestartEma, SeedsAndTriggersOnFastOverSlow) {
  RestartEma e;
  e.update(5.0);
  EXPECT_DOUBLE_EQ(e.fast.value, 5.0);
  EXPECT_DOUBLE_EQ(e.slow.value, 5.0);
  EXPECT_FALSE(e.shouldRestart(1.25));

  // A burst of much worse (higher-LBD) conflicts: the fast average
  // rises toward 10 while the slow one barely moves.
  for (int i = 0; i < 200; ++i) e.update(10.0);
  EXPECT_GT(e.fast.value, 9.0);
  EXPECT_LT(e.slow.value, 5.5);
  EXPECT_TRUE(e.shouldRestart(1.25));
}

TEST(RestartEma, BlockCapsTheFastAverage) {
  RestartEma e;
  e.update(4.0);
  for (int i = 0; i < 200; ++i) e.update(12.0);
  ASSERT_TRUE(e.shouldRestart(1.25));
  e.block();
  EXPECT_FALSE(e.shouldRestart(1.25));
  EXPECT_DOUBLE_EQ(e.fast.value, e.slow.value);
  // And it only ever caps downward.
  const double slow = e.slow.value;
  e.block();
  EXPECT_DOUBLE_EQ(e.slow.value, slow);
}

TEST(RestartEma, LowLbdStreamNeverFires) {
  RestartEma e;
  for (int i = 0; i < 1000; ++i) e.update(3.0);
  EXPECT_FALSE(e.shouldRestart(1.25));
}

TEST(EmaRestarts, SolvesAndSwitchesModes) {
  Solver::Options o;
  o.ema_restarts = true;
  o.mode_switch_conflicts = 100;  // exercise switching on a small run
  Solver s(o);
  const CnfFormula f = randomUnsat3Sat(50, 6.0, 21);
  addVars(s, f.numVars());
  for (const Clause& cl : f.clauses()) {
    if (!s.addClause(cl)) break;
  }
  EXPECT_EQ(s.solve(), lbool::False);
  EXPECT_GT(s.stats().restarts, 0);
  // The gauge reports an EMA mode (2 = focused, 3 = stable).
  EXPECT_GE(s.stats().restart_mode, 2);
  EXPECT_LE(s.stats().restart_mode, 3);
  if (s.stats().conflicts > 300) {
    EXPECT_GE(s.stats().mode_switches, 1);
  }
}

TEST(SoftTrackerContract, AssumptionsAreCanonicallyVarOrdered) {
  const CnfFormula f = randomKSat(
      {.numVars = 12, .numClauses = 30, .clauseLen = 3, .seed = 3});
  const WcnfFormula w = WcnfFormula::allSoft(f);
  Solver s;
  SoftTracker tracker(s, w);
  std::mt19937_64 rng(5);
  for (int round = 0; round < 5; ++round) {
    tracker.relax(static_cast<int>(rng() % static_cast<std::uint64_t>(
                                       tracker.numSoft())));
    const std::vector<Lit> assumps = tracker.assumptions();
    for (std::size_t i = 1; i < assumps.size(); ++i) {
      EXPECT_LT(assumps[i - 1].var(), assumps[i].var());
    }
  }
}

TEST(WarmStart, EngineFuzzAgreesWithOracleUnderBothKnobs) {
  const std::vector<std::string> engines{
      "msu4-v1", "msu4-v2", "msu4-seq", "msu4-cnet", "msu3",  "msu1",
      "wmsu1",   "oll",     "linear",   "binary",    "wlinear"};
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const CnfFormula f = randomKSat({.numVars = 8,
                                     .numClauses = 44,
                                     .clauseLen = 3,
                                     .seed = seed * 41});
    const WcnfFormula w = WcnfFormula::allSoft(f);
    const OracleResult truth = oracleMaxSat(w);
    ASSERT_TRUE(truth.optimumCost.has_value());
    for (const std::string& name : engines) {
      for (int mode = 0; mode < 3; ++mode) {
        MaxSatOptions o;
        o.sat.reuse_trail = mode != 0;      // 0: off, 1+: on
        o.sat.ema_restarts = mode == 2;     // 2: on + adaptive restarts
        o.sat.mode_switch_conflicts = 100;  // exercise switching
        if (mode == 2) o.trimCoreRounds = 1;  // warm trimCore re-solves
        std::unique_ptr<MaxSatSolver> solver = makeSolver(name, o);
        ASSERT_NE(solver, nullptr) << name;
        const MaxSatResult r = solver->solve(w);
        ASSERT_EQ(r.status, MaxSatStatus::Optimum)
            << name << " seed " << seed << " mode " << mode;
        EXPECT_EQ(r.cost, *truth.optimumCost)
            << name << " seed " << seed << " mode " << mode;
        EXPECT_EQ(w.cost(r.model), r.cost)
            << name << " seed " << seed << " mode " << mode;
      }
    }
  }
}

TEST(WarmStart, WeightedEngineFuzzAgreesWithOracle) {
  std::mt19937_64 rng(515);
  const std::vector<std::string> engines{"wmsu1", "oll", "wlinear", "bmo"};
  for (int round = 0; round < 4; ++round) {
    WcnfFormula w(8);
    for (int i = 0; i < 12; ++i) {
      Clause c;
      for (int k = 0; k < 3; ++k) {
        c.push_back(mkLit(static_cast<Var>(rng() % 8), (rng() & 1) != 0));
      }
      w.addHard(c);
    }
    for (int i = 0; i < 10; ++i) {
      Clause c;
      for (int k = 0; k < 2; ++k) {
        c.push_back(mkLit(static_cast<Var>(rng() % 8), (rng() & 1) != 0));
      }
      w.addSoft(c, 1 + static_cast<Weight>(rng() % 5));
    }
    const OracleResult truth = oracleMaxSat(w);
    if (!truth.optimumCost.has_value()) continue;  // hard part unsat
    for (const std::string& name : engines) {
      for (const bool ema : {false, true}) {
        MaxSatOptions o;
        o.sat.ema_restarts = ema;  // reuse_trail stays at its default
        std::unique_ptr<MaxSatSolver> solver = makeSolver(name, o);
        ASSERT_NE(solver, nullptr) << name;
        const MaxSatResult r = solver->solve(w);
        ASSERT_EQ(r.status, MaxSatStatus::Optimum)
            << name << " round " << round << " ema " << ema;
        EXPECT_EQ(r.cost, *truth.optimumCost)
            << name << " round " << round << " ema " << ema;
      }
    }
  }
}

TEST(WarmStart, PortfolioFuzzAgreesWithOracle) {
  // 4 diversified workers (some on the EMA trajectory via the factory
  // perturbation), clause sharing on, warm starts at their default.
  std::mt19937_64 rng(2718);
  for (int round = 0; round < 3; ++round) {
    WcnfFormula w(8);
    for (int i = 0; i < 10; ++i) {
      Clause c;
      for (int k = 0; k < 3; ++k) {
        c.push_back(mkLit(static_cast<Var>(rng() % 8), (rng() & 1) != 0));
      }
      w.addHard(c);
    }
    for (int i = 0; i < 10; ++i) {
      Clause c;
      for (int k = 0; k < 2; ++k) {
        c.push_back(mkLit(static_cast<Var>(rng() % 8), (rng() & 1) != 0));
      }
      w.addSoft(c, 1 + static_cast<Weight>(rng() % 3));
    }
    const OracleResult truth = oracleMaxSat(w);
    if (!truth.optimumCost.has_value()) continue;
    PortfolioOptions po;
    po.threads = 4;
    PortfolioSolver solver(po);
    const MaxSatResult r = solver.solve(w);
    ASSERT_EQ(r.status, MaxSatStatus::Optimum) << "round " << round;
    EXPECT_EQ(r.cost, *truth.optimumCost) << "round " << round;
  }
}

}  // namespace
}  // namespace msu
