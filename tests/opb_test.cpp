/// Tests for the OPB reader/writer and the PBO engine on OPB inputs:
///  * parsing of objectives, all three relations, `~x` literals,
///    comments, and malformed-input rejection;
///  * normalization invariants (positive objective coefficients,
///    offset bookkeeping for negative ones);
///  * solved optima match exhaustive references, including knapsack
///    and assignment-style instances;
///  * write/parse round trips preserve the optimum.

#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "pbo/opb.h"
#include "pbo/pbo_solver.h"

namespace msu {
namespace {

/// Exhaustive PBO reference (tiny instances only).
struct BruteForce {
  bool feasible = false;
  Weight best = 0;
};

BruteForce bruteForce(const PboProblem& p) {
  BruteForce out;
  for (std::uint32_t mask = 0; mask < (1u << p.numVars); ++mask) {
    const auto litTrue = [&](Lit l) {
      const bool v = ((mask >> l.var()) & 1u) != 0;
      return l.positive() ? v : !v;
    };
    bool ok = true;
    for (const Clause& c : p.clauses) {
      bool sat = false;
      for (const Lit l : c) sat = sat || litTrue(l);
      ok = ok && sat;
    }
    for (const PbConstraint& pc : p.constraints) {
      Weight sum = 0;
      for (const PbTerm& t : pc.terms) {
        if (litTrue(t.lit)) sum += t.coeff;
      }
      ok = ok && sum <= pc.bound;
    }
    if (!ok) continue;
    Weight obj = p.objectiveOffset;
    for (const PbTerm& t : p.objective) {
      if (litTrue(t.lit)) obj += t.coeff;
    }
    if (!out.feasible || obj < out.best) {
      out.feasible = true;
      out.best = obj;
    }
  }
  return out;
}

TEST(OpbParseTest, ObjectiveAndRelations) {
  const PboProblem p = parseOpb(
      "* comment line\n"
      "min: +1 x1 +2 x2 ;\n"
      "+1 x1 +1 x2 >= 1 ;\n"
      "+2 x1 +3 x2 <= 4 ;\n"
      "+1 x1 -1 x2 = 0 ;\n");
  EXPECT_EQ(p.numVars, 2);
  EXPECT_EQ(p.objective.size(), 2u);
  // >= contributes 1 constraint, <= 1, = splits into 2.
  EXPECT_EQ(p.constraints.size(), 4u);
  EXPECT_EQ(p.objectiveOffset, 0);
}

TEST(OpbParseTest, NegatedLiteralsAndNegativeObjective) {
  const PboProblem p = parseOpb(
      "min: -3 x1 +2 ~x2 ;\n"
      "+1 ~x1 +1 x2 >= 1 ;\n");
  // -3 x1 normalizes to +3 ~x1 with offset -3.
  EXPECT_EQ(p.objectiveOffset, -3);
  for (const PbTerm& t : p.objective) EXPECT_GT(t.coeff, 0);
}

TEST(OpbParseTest, MalformedInputsThrow) {
  EXPECT_THROW(parseOpb("min: +1 x1"), OpbError);          // missing ';'
  EXPECT_THROW(parseOpb("+1 x1 >= ;"), OpbError);          // missing bound
  EXPECT_THROW(parseOpb("+1 y1 >= 1 ;"), OpbError);        // bad var
  EXPECT_THROW(parseOpb("+a x1 >= 1 ;"), OpbError);        // bad coeff
  EXPECT_THROW(parseOpb("+1 x1 +2 >= 1 ;"), OpbError);     // orphan coeff
  EXPECT_THROW(parseOpb("+1 x0 >= 1 ;"), OpbError);        // 1-based ids
  EXPECT_NO_THROW(parseOpb(""));                           // empty is fine
}

TEST(OpbSolveTest, KnapsackOptimum) {
  // max 4a+5b+3c+7d s.t. 3a+4b+2c+5d <= 8  == min forgone value.
  const PboProblem p = parseOpb(
      "min: +4 ~x1 +5 ~x2 +3 ~x3 +7 ~x4 ;\n"
      "+3 x1 +4 x2 +2 x3 +5 x4 <= 8 ;\n");
  PboSolver solver;
  const PboResult r = solver.solve(p);
  ASSERT_EQ(r.status, PboStatus::Optimum);
  const BruteForce ref = bruteForce(p);
  ASSERT_TRUE(ref.feasible);
  EXPECT_EQ(r.objective, ref.best);
  // Best packing: c+d+... weight 2+5=7 value 10; or a+d weight 8 value 11.
  EXPECT_EQ(r.objective, 19 - 11);
}

TEST(OpbSolveTest, InfeasibleDetected) {
  const PboProblem p = parseOpb(
      "min: +1 x1 ;\n"
      "+1 x1 >= 1 ;\n"
      "+1 x1 <= 0 ;\n");
  PboSolver solver;
  EXPECT_EQ(solver.solve(p).status, PboStatus::Infeasible);
}

TEST(OpbSolveTest, EqualityConstraintsRespected) {
  // Exactly 2 of 4 must be chosen; minimize a weighted selection.
  const PboProblem p = parseOpb(
      "min: +5 x1 +1 x2 +3 x3 +2 x4 ;\n"
      "+1 x1 +1 x2 +1 x3 +1 x4 = 2 ;\n");
  PboSolver solver;
  const PboResult r = solver.solve(p);
  ASSERT_EQ(r.status, PboStatus::Optimum);
  EXPECT_EQ(r.objective, 3);  // x2 + x4
}

TEST(OpbSolveTest, NegativeCoefficientConstraints) {
  for (auto enc : {PbEncoding::Bdd, PbEncoding::Adder}) {
    const PboProblem p = parseOpb(
        "min: +1 x1 +1 x2 +1 x3 ;\n"
        "-2 x1 +3 x2 -1 x3 <= 0 ;\n"
        "+1 x2 >= 1 ;\n");
    PboOptions opts;
    opts.encoding = enc;
    PboSolver solver(opts);
    const PboResult r = solver.solve(p);
    ASSERT_EQ(r.status, PboStatus::Optimum);
    const BruteForce ref = bruteForce(p);
    ASSERT_TRUE(ref.feasible);
    EXPECT_EQ(r.objective, ref.best) << toString(enc);
  }
}

TEST(OpbSolveTest, OffsetIsReportedInTheObjective) {
  const PboProblem p = parseOpb(
      "min: -2 x1 ;\n"
      "+1 x1 <= 1 ;\n");
  PboSolver solver;
  const PboResult r = solver.solve(p);
  ASSERT_EQ(r.status, PboStatus::Optimum);
  EXPECT_EQ(r.objective, -2);  // pick x1
}

TEST(OpbRoundTripTest, WriteThenParsePreservesTheOptimum) {
  const PboProblem original = parseOpb(
      "min: +2 x1 +3 x2 +1 x3 ;\n"
      "+1 x1 +1 x2 +1 x3 >= 2 ;\n"
      "+5 x1 +4 x2 +3 x3 <= 9 ;\n");
  std::ostringstream out;
  writeOpb(out, original);
  const PboProblem reparsed = parseOpb(out.str());
  PboSolver solver;
  const PboResult a = solver.solve(original);
  const PboResult b = solver.solve(reparsed);
  ASSERT_EQ(a.status, PboStatus::Optimum);
  ASSERT_EQ(b.status, PboStatus::Optimum);
  EXPECT_EQ(a.objective, b.objective);
}

TEST(OpbRoundTripTest, RandomInstancesAgreeWithBruteForce) {
  std::mt19937_64 rng(4);
  for (int round = 0; round < 10; ++round) {
    std::ostringstream opb;
    opb << "min:";
    const int n = 6;
    for (int v = 1; v <= n; ++v) {
      opb << " +" << 1 + rng() % 5 << " x" << v;
    }
    opb << " ;\n";
    for (int c = 0; c < 3; ++c) {
      opb << "+" << 1 + rng() % 3 << " x" << 1 + rng() % n << " +"
          << 1 + rng() % 3 << " x" << 1 + rng() % n << " >= "
          << 1 + rng() % 3 << " ;\n";
    }
    const PboProblem p = parseOpb(opb.str());
    PboSolver solver;
    const PboResult r = solver.solve(p);
    const BruteForce ref = bruteForce(p);
    if (!ref.feasible) {
      EXPECT_EQ(r.status, PboStatus::Infeasible) << "round " << round;
    } else {
      ASSERT_EQ(r.status, PboStatus::Optimum) << "round " << round;
      EXPECT_EQ(r.objective, ref.best) << "round " << round;
    }
  }
}

}  // namespace
}  // namespace msu
