/// Tests for the arithmetic circuit library: functional correctness of
/// both adder architectures and the multiplier against integer
/// arithmetic, and unsatisfiability of the equivalence miters.

#include <gtest/gtest.h>

#include <random>

#include "gen/arith.h"
#include "gen/miter.h"
#include "sat/solver.h"

namespace msu {
namespace {

/// Packs an integer into LSB-first input bits.
std::vector<bool> toBits(std::uint64_t v, int bits) {
  std::vector<bool> out(static_cast<std::size_t>(bits));
  for (int i = 0; i < bits; ++i) {
    out[static_cast<std::size_t>(i)] = ((v >> i) & 1u) != 0;
  }
  return out;
}

std::uint64_t fromBits(const std::vector<bool>& bits) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) v |= std::uint64_t{1} << i;
  }
  return v;
}

std::vector<bool> concat(std::vector<bool> a, const std::vector<bool>& b) {
  a.insert(a.end(), b.begin(), b.end());
  return a;
}

lbool solveCnf(const CnfFormula& f) {
  Solver s;
  while (s.numVars() < f.numVars()) static_cast<void>(s.newVar());
  for (const Clause& c : f.clauses()) {
    if (!s.addClause(c)) return lbool::False;
  }
  return s.solve();
}

class AdderFunctional : public ::testing::TestWithParam<int> {};

TEST_P(AdderFunctional, RippleCarryAddsCorrectly) {
  const int bits = GetParam();
  const Circuit c = rippleCarryAdder(bits);
  ASSERT_EQ(c.outputs().size(), static_cast<std::size_t>(bits + 1));
  std::mt19937_64 rng(3);
  const std::uint64_t mask = (bits >= 64) ? ~0ull : ((1ull << bits) - 1);
  for (int t = 0; t < 40; ++t) {
    const std::uint64_t a = rng() & mask;
    const std::uint64_t b = rng() & mask;
    const std::vector<bool> out =
        c.evaluate(concat(toBits(a, bits), toBits(b, bits)));
    EXPECT_EQ(fromBits(out), a + b) << "a=" << a << " b=" << b;
  }
}

TEST_P(AdderFunctional, KoggeStoneAddsCorrectly) {
  const int bits = GetParam();
  const Circuit c = koggeStoneAdder(bits);
  ASSERT_EQ(c.outputs().size(), static_cast<std::size_t>(bits + 1));
  std::mt19937_64 rng(5);
  const std::uint64_t mask = (bits >= 64) ? ~0ull : ((1ull << bits) - 1);
  for (int t = 0; t < 40; ++t) {
    const std::uint64_t a = rng() & mask;
    const std::uint64_t b = rng() & mask;
    const std::vector<bool> out =
        c.evaluate(concat(toBits(a, bits), toBits(b, bits)));
    EXPECT_EQ(fromBits(out), a + b) << "a=" << a << " b=" << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, AdderFunctional,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 24));

class MultiplierFunctional : public ::testing::TestWithParam<int> {};

TEST_P(MultiplierFunctional, MultipliesCorrectly) {
  const int bits = GetParam();
  const Circuit c = arrayMultiplier(bits);
  ASSERT_EQ(c.outputs().size(), static_cast<std::size_t>(2 * bits));
  const std::uint64_t limit = 1ull << bits;
  for (std::uint64_t a = 0; a < limit; ++a) {
    for (std::uint64_t b = 0; b < limit; ++b) {
      const std::vector<bool> out =
          c.evaluate(concat(toBits(a, bits), toBits(b, bits)));
      EXPECT_EQ(fromBits(out), a * b) << "a=" << a << " b=" << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, MultiplierFunctional,
                         ::testing::Values(1, 2, 3, 4));

TEST(ArithMiters, AdderEquivalenceIsUnsat) {
  for (int bits : {2, 4, 8}) {
    EXPECT_EQ(solveCnf(adderEquivalenceMiter(bits)), lbool::False)
        << "bits " << bits;
  }
}

TEST(ArithMiters, MultiplierCommutativityIsUnsat) {
  for (int bits : {2, 3}) {
    EXPECT_EQ(solveCnf(multiplierCommutativityMiter(bits)), lbool::False)
        << "bits " << bits;
  }
}

TEST(ArithMiters, BrokenAdderMiterIsSat) {
  // Sanity: a miter against a *wrong* circuit must be satisfiable.
  const int bits = 4;
  Circuit bad = rippleCarryAdder(bits);
  const Circuit faulty = injectGateError(bad, bad.numInputs() + 1);
  EXPECT_EQ(solveCnf(buildMiter(rippleCarryAdder(bits), faulty)),
            lbool::True);
}

}  // namespace
}  // namespace msu
