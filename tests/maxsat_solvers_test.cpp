/// Integration & property tests for every MaxSAT engine: agreement with
/// the exhaustive oracle on randomized plain and partial instances,
/// paper examples, pigeonhole optima, hard-unsat detection, budget
/// behaviour and weighted handling.

#include <gtest/gtest.h>

#include <memory>
#include <random>

#include "cnf/oracle.h"
#include "core/binary_search.h"
#include "core/linear_search.h"
#include "core/msu1.h"
#include "core/msu3.h"
#include "core/msu4.h"
#include "gen/pigeonhole.h"
#include "gen/random_cnf.h"
#include "harness/factory.h"

namespace msu {
namespace {

/// All engines under test, by factory name.
std::vector<std::string> allEngines() {
  return {"msu4-v1", "msu4-v2", "msu4-seq", "msu4-tot", "msu3",
          "msu1",    "linear",  "binary",   "pbo",      "pbo-adder",
          "maxsatz"};
}

/// A plain MaxSAT instance from a random CNF.
WcnfFormula randomPlain(int n, int m, std::uint64_t seed) {
  return WcnfFormula::allSoft(
      randomKSat({.numVars = n, .numClauses = m, .clauseLen = 3,
                  .seed = seed}));
}

/// A random partial MaxSAT instance: the first `h` clauses become hard
/// only when they keep the hard part satisfiable.
WcnfFormula randomPartial(int n, int m, int h, std::uint64_t seed) {
  const CnfFormula f = randomKSat(
      {.numVars = n, .numClauses = m, .clauseLen = 3, .seed = seed});
  WcnfFormula w(f.numVars());
  CnfFormula hardPart(f.numVars());
  for (int i = 0; i < f.numClauses(); ++i) {
    if (i < h) {
      hardPart.addClause(f.clause(i));
      if (oracleSat(hardPart)) {
        w.addHard(f.clause(i));
        continue;
      }
      // Would make the hard part unsat: demote to soft.
    }
    w.addSoft(f.clause(i), 1);
  }
  return w;
}

void expectSolvesTo(MaxSatSolver& solver, const WcnfFormula& w,
                    const std::string& label) {
  const OracleResult truth = oracleMaxSat(w);
  const MaxSatResult r = solver.solve(w);
  if (!truth.optimumCost) {
    EXPECT_EQ(r.status, MaxSatStatus::UnsatisfiableHard) << label;
    return;
  }
  ASSERT_EQ(r.status, MaxSatStatus::Optimum)
      << label << ": expected optimum " << *truth.optimumCost;
  EXPECT_EQ(r.cost, *truth.optimumCost) << label;
  // The model must be feasible and achieve the reported cost.
  ASSERT_EQ(static_cast<int>(r.model.size()), w.numVars()) << label;
  const std::optional<Weight> modelCost = w.cost(r.model);
  ASSERT_TRUE(modelCost.has_value()) << label << ": model violates hards";
  EXPECT_EQ(*modelCost, r.cost) << label << ": model does not achieve cost";
  EXPECT_EQ(r.lowerBound, r.cost) << label;
  EXPECT_EQ(r.upperBound, r.cost) << label;
}

class EveryEngine : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<MaxSatSolver> make() {
    auto s = makeSolver(GetParam());
    EXPECT_NE(s, nullptr);
    return s;
  }
};

TEST_P(EveryEngine, PaperExample2) {
  // §3.3: optimum satisfies 6 of 8 clauses (cost 2).
  CnfFormula phi(4);
  phi.addClause({posLit(0)});
  phi.addClause({negLit(0), negLit(1)});
  phi.addClause({posLit(1)});
  phi.addClause({negLit(0), negLit(2)});
  phi.addClause({posLit(2)});
  phi.addClause({negLit(1), negLit(2)});
  phi.addClause({posLit(0), negLit(3)});
  phi.addClause({negLit(0), posLit(3)});
  auto solver = make();
  const MaxSatResult r = solver->solve(WcnfFormula::allSoft(phi));
  ASSERT_EQ(r.status, MaxSatStatus::Optimum);
  EXPECT_EQ(r.cost, 2);
}

TEST_P(EveryEngine, SatisfiableInstanceHasCostZero) {
  CnfFormula f(3);
  f.addClause({posLit(0), posLit(1)});
  f.addClause({negLit(1), posLit(2)});
  auto solver = make();
  const MaxSatResult r = solver->solve(WcnfFormula::allSoft(f));
  ASSERT_EQ(r.status, MaxSatStatus::Optimum);
  EXPECT_EQ(r.cost, 0);
}

TEST_P(EveryEngine, PigeonholeOptimumIsOne) {
  for (int holes : {2, 3, 4}) {
    auto solver = make();
    const MaxSatResult r =
        solver->solve(WcnfFormula::allSoft(pigeonhole(holes + 1, holes)));
    ASSERT_EQ(r.status, MaxSatStatus::Optimum) << "holes " << holes;
    EXPECT_EQ(r.cost, pigeonholeOptCost(holes)) << "holes " << holes;
  }
}

TEST_P(EveryEngine, RandomPlainAgreesWithOracle) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const WcnfFormula w = randomPlain(8, 40, seed * 131);
    auto solver = make();
    expectSolvesTo(*solver, w, GetParam() + " seed=" + std::to_string(seed));
  }
}

TEST_P(EveryEngine, RandomPartialAgreesWithOracle) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const WcnfFormula w = randomPartial(8, 36, 6, seed * 733);
    auto solver = make();
    expectSolvesTo(*solver,
                   w, GetParam() + " partial seed=" + std::to_string(seed));
  }
}

TEST_P(EveryEngine, UnsatisfiableHardDetected) {
  WcnfFormula w(2);
  w.addHard({posLit(0)});
  w.addHard({negLit(0)});
  w.addSoft({posLit(1)}, 1);
  auto solver = make();
  EXPECT_EQ(solver->solve(w).status, MaxSatStatus::UnsatisfiableHard);
}

TEST_P(EveryEngine, EmptySoftClauseContributesOne) {
  WcnfFormula w(1);
  w.addSoft(std::initializer_list<Lit>{}, 1);  // falsum: always costs 1
  w.addSoft({posLit(0)}, 1);
  auto solver = make();
  const MaxSatResult r = solver->solve(w);
  ASSERT_EQ(r.status, MaxSatStatus::Optimum) << GetParam();
  EXPECT_EQ(r.cost, 1) << GetParam();
}

TEST_P(EveryEngine, NoSoftClauses) {
  WcnfFormula w(1);
  w.addHard({posLit(0)});
  auto solver = make();
  const MaxSatResult r = solver->solve(w);
  ASSERT_EQ(r.status, MaxSatStatus::Optimum);
  EXPECT_EQ(r.cost, 0);
}

TEST_P(EveryEngine, TinyBudgetReturnsUnknownOnHardInstance) {
  const WcnfFormula w = WcnfFormula::allSoft(pigeonhole(10, 9));
  MaxSatOptions o;
  o.budget = Budget::wallClock(0.02);
  auto solver = makeSolver(GetParam(), o);
  const MaxSatResult r = solver->solve(w);
  // Either it is genuinely that fast (fine) or it reports Unknown with
  // coherent bounds.
  if (r.status == MaxSatStatus::Unknown) {
    EXPECT_LE(r.lowerBound, r.upperBound);
    EXPECT_GE(r.lowerBound, 0);
  } else {
    EXPECT_EQ(r.status, MaxSatStatus::Optimum);
    EXPECT_EQ(r.cost, 1);
  }
}

INSTANTIATE_TEST_SUITE_P(AllEngines, EveryEngine,
                         ::testing::ValuesIn(allEngines()),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           std::string n = i.param;
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

// ---- Weighted instances (handled via duplication or natively) ----------

TEST(WeightedMaxSat, SmallWeightedAgreesWithOracle) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    std::mt19937_64 rng(seed * 17);
    const CnfFormula f = randomKSat(
        {.numVars = 7, .numClauses = 24, .clauseLen = 3, .seed = rng()});
    WcnfFormula w(f.numVars());
    for (const Clause& c : f.clauses()) {
      w.addSoft(c, 1 + static_cast<Weight>(rng() % 3));
    }
    const OracleResult truth = oracleMaxSat(w);
    ASSERT_TRUE(truth.optimumCost.has_value());
    for (const std::string& name :
         {std::string("msu4-v2"), std::string("pbo"), std::string("maxsatz")}) {
      auto solver = makeSolver(name);
      const MaxSatResult r = solver->solve(w);
      ASSERT_EQ(r.status, MaxSatStatus::Optimum) << name;
      EXPECT_EQ(r.cost, *truth.optimumCost) << name << " seed " << seed;
    }
  }
}

// ---- msu4-specific behaviour -------------------------------------------

TEST(Msu4, VariantNames) {
  EXPECT_EQ(Msu4Solver::v1().name(), "msu4-v1");
  EXPECT_EQ(Msu4Solver::v2().name(), "msu4-v2");
}

TEST(Msu4, OptionalAtLeastOneOffStillCorrect) {
  // The paper calls the line-19 constraint optional; correctness must not
  // depend on it.
  MaxSatOptions o;
  o.msu4AtLeastOne = false;
  Msu4Solver solver(o);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const WcnfFormula w = randomPlain(8, 40, seed * 271);
    expectSolvesTo(solver, w, "no-atleastone seed=" + std::to_string(seed));
  }
}

TEST(Msu4, NoEncodingReuseStillCorrect) {
  MaxSatOptions o;
  o.reuseEncodings = false;
  Msu4Solver solver(o);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const WcnfFormula w = randomPlain(8, 40, seed * 613);
    expectSolvesTo(solver, w, "no-reuse seed=" + std::to_string(seed));
  }
}

TEST(Msu4, PaperNuInsteadOfTightenedCost) {
  // Using the paper's raw blocking-variable count (instead of the
  // tightened model cost) must still find the optimum.
  MaxSatOptions o;
  o.tightenWithModelCost = false;
  Msu4Solver solver(o);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const WcnfFormula w = randomPlain(8, 40, seed * 997);
    expectSolvesTo(solver, w, "paper-nu seed=" + std::to_string(seed));
  }
}

TEST(Msu4, BoundsConvergeMonotonically) {
  const WcnfFormula w = randomPlain(10, 55, 4242);
  Msu4Solver solver;
  const MaxSatResult r = solver.solve(w);
  ASSERT_EQ(r.status, MaxSatStatus::Optimum);
  EXPECT_GE(r.coresFound, 1);
  EXPECT_GE(r.iterations, r.coresFound);
}

TEST(Factory, KnowsAllNamesAndRejectsUnknown) {
  for (const std::string& name : solverNames()) {
    EXPECT_NE(makeSolver(name), nullptr) << name;
  }
  EXPECT_EQ(makeSolver("no-such-solver"), nullptr);
}

}  // namespace
}  // namespace msu
