/// Randomized property tests that tie the layers together:
///  * DIMACS round-trips on random WCNF instances;
///  * budget semantics across engines (Unknown implies coherent bounds;
///    re-solving without budget reaches the optimum within the bounds);
///  * preprocessing end-to-end through an engine;
///  * normalization preserves (Max)SAT semantics;
///  * weighted duplication equals native weighted solving.

#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "cnf/dimacs.h"
#include "cnf/oracle.h"
#include "core/msu4.h"
#include "core/preprocess.h"
#include "core/wmsu1.h"
#include "gen/random_cnf.h"
#include "harness/factory.h"

namespace msu {
namespace {

WcnfFormula randomWcnf(std::uint64_t seed, bool weighted, bool withHards) {
  std::mt19937_64 rng(seed);
  const CnfFormula f = randomKSat(
      {.numVars = 6 + static_cast<int>(rng() % 5),
       .numClauses = 15 + static_cast<int>(rng() % 20),
       .clauseLen = 2 + static_cast<int>(rng() % 2),
       .seed = rng()});
  WcnfFormula w(f.numVars());
  CnfFormula hardPart(f.numVars());
  for (int i = 0; i < f.numClauses(); ++i) {
    if (withHards && i % 5 == 0) {
      hardPart.addClause(f.clause(i));
      if (oracleSat(hardPart)) {
        w.addHard(f.clause(i));
        continue;
      }
    }
    w.addSoft(f.clause(i), weighted ? 1 + static_cast<Weight>(rng() % 4) : 1);
  }
  return w;
}

TEST(Property, DimacsWcnfRoundTripPreservesEverything) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const WcnfFormula w = randomWcnf(seed, seed % 2 == 0, seed % 3 == 0);
    const WcnfFormula v = parseDimacsWcnf(toDimacsString(w));
    ASSERT_EQ(v.numVars(), w.numVars()) << seed;
    ASSERT_EQ(v.numHard(), w.numHard()) << seed;
    ASSERT_EQ(v.numSoft(), w.numSoft()) << seed;
    for (int i = 0; i < w.numHard(); ++i) {
      EXPECT_EQ(v.hard()[i], w.hard()[i]) << seed;
    }
    for (int i = 0; i < w.numSoft(); ++i) {
      EXPECT_EQ(v.soft()[i].lits, w.soft()[i].lits) << seed;
      EXPECT_EQ(v.soft()[i].weight, w.soft()[i].weight) << seed;
    }
  }
}

TEST(Property, DimacsRoundTripPreservesOptimum) {
  for (std::uint64_t seed = 30; seed <= 40; ++seed) {
    const WcnfFormula w = randomWcnf(seed, true, true);
    const WcnfFormula v = parseDimacsWcnf(toDimacsString(w));
    const OracleResult a = oracleMaxSat(w);
    const OracleResult b = oracleMaxSat(v);
    EXPECT_EQ(a.optimumCost, b.optimumCost) << seed;
  }
}

TEST(Property, NormalizationPreservesSat) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    CnfFormula f = randomKSat({.numVars = 8, .numClauses = 30,
                               .clauseLen = 3, .seed = seed * 7});
    // Inject duplicates and a tautology to exercise the normalizer.
    f.addClause(f.clause(0));
    f.addClause({posLit(0), negLit(0)});
    const CnfFormula n = f.normalized();
    EXPECT_LE(n.numClauses(), f.numClauses());
    EXPECT_EQ(oracleSat(f).has_value(), oracleSat(n).has_value()) << seed;
  }
}

TEST(Property, BudgetUnknownHasCoherentBoundsAndFullRunConfirms) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const WcnfFormula w =
        WcnfFormula::allSoft(randomUnsat3Sat(40, 6.0, seed * 11));
    // Tiny conflict budget: likely Unknown.
    MaxSatOptions tight;
    tight.budget = Budget::conflicts(30);
    Msu4Solver limited(tight);
    const MaxSatResult bounded = limited.solve(w);

    MaxSatOptions free;
    free.budget = Budget::wallClock(20.0);
    Msu4Solver full(free);
    const MaxSatResult exact = full.solve(w);
    if (exact.status != MaxSatStatus::Optimum) continue;

    if (bounded.status == MaxSatStatus::Unknown) {
      EXPECT_LE(bounded.lowerBound, exact.cost) << seed;
      EXPECT_GE(bounded.upperBound, exact.cost) << seed;
    } else {
      EXPECT_EQ(bounded.cost, exact.cost) << seed;
    }
  }
}

TEST(Property, PreprocessThenSolveEqualsDirectSolve) {
  for (std::uint64_t seed = 50; seed <= 62; ++seed) {
    const WcnfFormula w = randomWcnf(seed, true, true);
    const OracleResult truth = oracleMaxSat(w);
    const PreprocessResult pre = preprocessWcnf(w);
    if (!truth.optimumCost) {
      // Hard part unsat: preprocessing may or may not already detect it;
      // if it produced a simplified instance, the engine must refuse it.
      if (pre.simplified) {
        Wmsu1Solver solver;
        EXPECT_EQ(solver.solve(*pre.simplified).status,
                  MaxSatStatus::UnsatisfiableHard)
            << seed;
      }
      continue;
    }
    ASSERT_TRUE(pre.simplified.has_value()) << seed;
    Wmsu1Solver solver;
    const MaxSatResult r = solver.solve(*pre.simplified);
    ASSERT_EQ(r.status, MaxSatStatus::Optimum) << seed;
    EXPECT_EQ(pre.forcedCost + r.cost, *truth.optimumCost) << seed;
  }
}

TEST(Property, DuplicationEqualsNativeWeighted) {
  for (std::uint64_t seed = 70; seed <= 82; ++seed) {
    const WcnfFormula w = randomWcnf(seed, true, false);
    const std::optional<WcnfFormula> dup = w.unweighted();
    ASSERT_TRUE(dup.has_value());
    Msu4Solver duplicated;  // solves the duplicated instance internally
    Wmsu1Solver native;
    const MaxSatResult a = duplicated.solve(w);
    const MaxSatResult b = native.solve(w);
    ASSERT_EQ(a.status, MaxSatStatus::Optimum) << seed;
    ASSERT_EQ(b.status, MaxSatStatus::Optimum) << seed;
    EXPECT_EQ(a.cost, b.cost) << seed;
  }
}

TEST(Property, ModelsAlwaysCompleteOverOriginalVars) {
  for (const char* engine : {"msu4-v2", "msu3", "linear", "binary",
                             "maxsatz", "pbo"}) {
    const WcnfFormula w = randomWcnf(99, false, true);
    auto solver = makeSolver(engine);
    const MaxSatResult r = solver->solve(w);
    ASSERT_EQ(r.status, MaxSatStatus::Optimum) << engine;
    ASSERT_EQ(static_cast<int>(r.model.size()), w.numVars()) << engine;
    for (lbool v : r.model) {
      EXPECT_NE(v, lbool::Undef) << engine << ": partial model returned";
    }
  }
}

TEST(Property, StatusStringStable) {
  EXPECT_STREQ(toString(MaxSatStatus::Optimum), "OPTIMUM");
  EXPECT_STREQ(toString(MaxSatStatus::UnsatisfiableHard), "UNSATISFIABLE");
  EXPECT_STREQ(toString(MaxSatStatus::Unknown), "UNKNOWN");
}

}  // namespace
}  // namespace msu
