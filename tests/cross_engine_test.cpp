/// Cross-engine integration tests on mid-size *structured* instances
/// (too large for the exhaustive oracle): every engine that finishes
/// within its budget must agree with every other, and returned models
/// must achieve the reported cost. Also validates the bounds-progress
/// callback contract (monotone, converging) across engines.

#include <gtest/gtest.h>

#include <limits>
#include <map>

#include "gen/bmc.h"
#include "gen/debug.h"
#include "gen/miter.h"
#include "gen/pigeonhole.h"
#include "gen/random_cnf.h"
#include "gen/tpg.h"
#include "harness/factory.h"

namespace msu {
namespace {

/// Mid-size structured instances (hundreds to ~2k clauses).
std::vector<std::pair<std::string, WcnfFormula>> structuredInstances() {
  std::vector<std::pair<std::string, WcnfFormula>> out;
  {
    RandomCircuitParams p;
    p.numInputs = 8;
    p.numGates = 60;
    p.numOutputs = 2;
    p.seed = 5;
    out.emplace_back("miter",
                     WcnfFormula::allSoft(equivalenceInstance(p, 55)));
  }
  {
    out.emplace_back("bmc", WcnfFormula::allSoft(bmcCounterInstance(
                                {.bits = 6, .steps = 12})));
  }
  {
    DebugParams dp;
    dp.circuit.numInputs = 6;
    dp.circuit.numGates = 40;
    dp.circuit.numOutputs = 2;
    dp.circuit.seed = 7;
    dp.numVectors = 3;
    dp.seed = 9;
    out.emplace_back("debug-plain",
                     designDebugInstance(dp, /*partial=*/false).wcnf);
    out.emplace_back("debug-partial",
                     designDebugInstance(dp, /*partial=*/true).wcnf);
  }
  {
    RandomCircuitParams p;
    p.numInputs = 7;
    p.numGates = 50;
    p.numOutputs = 2;
    p.seed = 13;
    out.emplace_back("tpg",
                     WcnfFormula::allSoft(untestableFaultInstance(p, 17)));
  }
  {
    DebugParams dp;
    dp.circuit.numInputs = 6;
    dp.circuit.numGates = 45;
    dp.circuit.numOutputs = 2;
    dp.circuit.seed = 19;
    dp.numVectors = 4;
    dp.numErrors = 2;
    dp.seed = 21;
    out.emplace_back("debug-2err",
                     designDebugInstance(dp, /*partial=*/false).wcnf);
  }
  out.emplace_back("php5", WcnfFormula::allSoft(pigeonhole(6, 5)));
  out.emplace_back(
      "rnd", WcnfFormula::allSoft(randomUnsat3Sat(30, 5.0, 23)));
  return out;
}

TEST(CrossEngine, AllFinishersAgree) {
  const auto instances = structuredInstances();
  // "portfolio4" races four diversified workers (base msu4-v2) with
  // clause sharing: its optimum must agree with every sequential
  // engine's on the whole corpus.
  const std::vector<std::string> engines{
      "msu4-v1", "msu4-v2", "msu4-seq", "msu4-tot", "msu3",
      "msu1",    "wmsu1",   "linear",   "binary",   "pbo",
      "maxsatz", "portfolio4"};
  for (const auto& [name, wcnf] : instances) {
    std::map<std::string, Weight> optima;
    for (const std::string& engine : engines) {
      MaxSatOptions o;
      o.budget = Budget::wallClock(5.0);
      auto solver = makeSolver(engine, o);
      ASSERT_NE(solver, nullptr) << engine;
      const MaxSatResult r = solver->solve(wcnf);
      if (r.status != MaxSatStatus::Optimum) continue;  // budgeted out: ok
      optima[engine] = r.cost;
      // Model achieves the cost.
      const auto mc = wcnf.cost(r.model);
      ASSERT_TRUE(mc.has_value()) << engine << " on " << name;
      EXPECT_EQ(*mc, r.cost) << engine << " on " << name;
    }
    ASSERT_GE(optima.size(), 2u) << name << ": too few finishers";
    const Weight reference = optima.begin()->second;
    for (const auto& [engine, cost] : optima) {
      EXPECT_EQ(cost, reference)
          << name << ": " << engine << " vs " << optima.begin()->first;
    }
  }
}

TEST(CrossEngine, SuiteInstancesAreUnsatAsCnf) {
  // Every all-soft instance in the structured list stems from an UNSAT
  // CNF, so its MaxSAT optimum must be >= 1 for whoever solves it.
  const auto instances = structuredInstances();
  for (const auto& [name, wcnf] : instances) {
    if (!wcnf.isPlain()) continue;
    MaxSatOptions o;
    o.budget = Budget::wallClock(5.0);
    auto solver = makeSolver("msu4-v2", o);
    const MaxSatResult r = solver->solve(wcnf);
    if (r.status != MaxSatStatus::Optimum) continue;
    EXPECT_GE(r.cost, 1) << name;
  }
}

struct CallbackCase {
  std::string engine;
};

class BoundsCallback : public ::testing::TestWithParam<std::string> {};

TEST_P(BoundsCallback, MonotoneAndConverging) {
  const WcnfFormula w =
      WcnfFormula::allSoft(randomUnsat3Sat(24, 5.4, 2024));
  MaxSatOptions o;
  Weight lastLower = -1;
  Weight lastUpper = std::numeric_limits<Weight>::max();
  int calls = 0;
  o.onBounds = [&](Weight lower, Weight upper) {
    ++calls;
    EXPECT_GE(lower, lastLower) << "lower bound regressed";
    EXPECT_LE(upper, lastUpper) << "upper bound regressed";
    EXPECT_LE(lower, upper + 0);  // never crossed before termination check
    lastLower = lower;
    lastUpper = upper;
  };
  auto solver = makeSolver(GetParam(), o);
  ASSERT_NE(solver, nullptr);
  const MaxSatResult r = solver->solve(w);
  ASSERT_EQ(r.status, MaxSatStatus::Optimum) << GetParam();
  EXPECT_GT(calls, 0) << GetParam() << " never reported bounds";
  EXPECT_LE(lastLower, r.cost);
  // Engines reporting upper bounds must have reached the optimum.
  if (lastUpper <= static_cast<Weight>(w.numSoft())) {
    EXPECT_GE(lastUpper, r.cost);
  }
}

INSTANTIATE_TEST_SUITE_P(Engines, BoundsCallback,
                         ::testing::Values("msu4-v2", "msu4-v1", "msu3",
                                           "msu1", "wmsu1", "linear",
                                           "binary"),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           std::string n = i.param;
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(CrossEngine, PartialDebugOptimumMatchesErrorCount) {
  // With hard I/O constraints and soft gate clauses, the optimum is at
  // most a couple of clauses per injected error (one is typical).
  DebugParams dp;
  dp.circuit.numInputs = 6;
  dp.circuit.numGates = 50;
  dp.circuit.numOutputs = 2;
  dp.circuit.seed = 33;
  dp.numVectors = 4;
  dp.seed = 35;
  const DebugInstance inst = designDebugInstance(dp, /*partial=*/true);
  auto solver = makeSolver("msu4-v2");
  const MaxSatResult r = solver->solve(inst.wcnf);
  ASSERT_EQ(r.status, MaxSatStatus::Optimum);
  EXPECT_GE(r.cost, 1);
  EXPECT_LE(r.cost, 4);  // a single gate error needs few clause drops
}

}  // namespace
}  // namespace msu
