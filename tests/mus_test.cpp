/// Tests for the MUS extraction / MCS enumeration module:
///  * extractors return genuine MUSes (oracle-validated minimality);
///  * the three extractors agree on MUS-ness (not necessarily identity);
///  * MCS enumeration is exhaustive, minimal, and size-ordered;
///  * hitting-set duality: MUSes == minimal hitting sets of MCSes, and
///    the smallest MCS size equals the MaxSAT optimum cost (the paper's
///    §2.3 relationship made executable);
///  * budget expiry degrades gracefully (unsat-but-unminimized result).

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "cnf/oracle.h"
#include "gen/pigeonhole.h"
#include "gen/random_cnf.h"
#include "harness/factory.h"
#include "mus/mcs.h"
#include "mus/mus.h"

namespace msu {
namespace {

/// x1, ¬x1∨¬x2, x2, ¬x1∨¬x3, x3, ¬x2∨¬x3, x1∨¬x4, ¬x1∨x4 — the paper's
/// Example 2 formula; clauses 0..5 contain two overlapping MUSes.
CnfFormula paperExample2() {
  CnfFormula f(4);
  const Lit x1 = posLit(0), x2 = posLit(1), x3 = posLit(2), x4 = posLit(3);
  f.addClause({x1});
  f.addClause({~x1, ~x2});
  f.addClause({x2});
  f.addClause({~x1, ~x3});
  f.addClause({x3});
  f.addClause({~x2, ~x3});
  f.addClause({x1, ~x4});
  f.addClause({~x1, x4});
  return f;
}

/// Minimal unsat core: (a)(¬a) plus satisfiable padding.
CnfFormula tinyUnsat() {
  CnfFormula f(3);
  f.addClause({posLit(0)});
  f.addClause({negLit(0)});
  f.addClause({posLit(1), posLit(2)});
  f.addClause({negLit(1), posLit(2)});
  return f;
}

using ExtractFn = MusResult (*)(const CnfFormula&, const MusOptions&);

struct ExtractorCase {
  const char* name;
  ExtractFn fn;
};

class MusExtractorTest : public ::testing::TestWithParam<ExtractorCase> {};

TEST_P(MusExtractorTest, TinyUnsatFindsTheUniqueMus) {
  const CnfFormula f = tinyUnsat();
  const MusResult r = GetParam().fn(f, {});
  EXPECT_TRUE(r.minimal);
  EXPECT_EQ(r.clauseIndices, (std::vector<int>{0, 1}));
}

TEST_P(MusExtractorTest, PaperExample2YieldsSizeThreeMus) {
  const CnfFormula f = paperExample2();
  const MusResult r = GetParam().fn(f, {});
  ASSERT_TRUE(r.minimal);
  // Both MUSes of the formula have exactly three clauses
  // ({0,1,2} and {2,3,4} -- via {x2},{x3},{¬x2∨¬x3} it is {2,4,5}).
  EXPECT_EQ(r.size(), 3);
  EXPECT_TRUE(isMus(f, r.clauseIndices)) << GetParam().name;
}

TEST_P(MusExtractorTest, PigeonholeMusIsWholeFormula) {
  // PHP(n+1, n) is minimally unsatisfiable: the MUS is everything.
  const CnfFormula f = pigeonhole(3, 2);
  const MusResult r = GetParam().fn(f, {});
  ASSERT_TRUE(r.minimal);
  EXPECT_EQ(r.size(), f.numClauses());
}

TEST_P(MusExtractorTest, SatisfiableInputYieldsEmptyNonMinimal) {
  CnfFormula f(2);
  f.addClause({posLit(0), posLit(1)});
  f.addClause({negLit(0)});
  const MusResult r = GetParam().fn(f, {});
  EXPECT_FALSE(r.minimal);
  EXPECT_TRUE(r.clauseIndices.empty());
}

TEST_P(MusExtractorTest, RandomUnsatInstancesYieldOracleCheckedMuses) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const CnfFormula f = randomUnsat3Sat(10, 8.5, seed);
    if (!oracleUnsat(f)) continue;  // the generator is probabilistic
    const MusResult r = GetParam().fn(f, {});
    ASSERT_TRUE(r.minimal) << "seed " << seed;
    EXPECT_TRUE(oracleSubsetUnsat(f, r.clauseIndices)) << "seed " << seed;
    EXPECT_TRUE(isMus(f, r.clauseIndices))
        << GetParam().name << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllExtractors, MusExtractorTest,
    ::testing::Values(ExtractorCase{"deletion", &extractMusDeletion},
                      ExtractorCase{"dichotomic", &extractMusDichotomic},
                      ExtractorCase{"insertion", &extractMusInsertion}),
    [](const ::testing::TestParamInfo<ExtractorCase>& info) {
      return info.param.name;
    });

TEST(MusDeletionTest, ModelRotationMarksCriticalsWithoutExtraCalls) {
  // On PHP every clause is critical; rotation should find some of them
  // without dedicated SAT calls.
  const CnfFormula f = pigeonhole(4, 3);
  MusOptions with;
  with.modelRotation = true;
  MusOptions without;
  without.modelRotation = false;
  const MusResult a = extractMusDeletion(f, with);
  const MusResult b = extractMusDeletion(f, without);
  ASSERT_TRUE(a.minimal);
  ASSERT_TRUE(b.minimal);
  EXPECT_EQ(a.size(), b.size());
  EXPECT_GT(a.rotationCriticals, 0);
  EXPECT_LT(a.satCalls, b.satCalls);
}

TEST(MusBudgetTest, ExpiredBudgetReturnsUnminimizedUnsatSubset) {
  const CnfFormula f = randomUnsat3Sat(14, 7.0, 3);
  MusOptions opts;
  opts.budget = Budget::conflicts(1);
  const MusResult r = extractMusDeletion(f, opts);
  // Either it finished within the budget (tiny instances can) or the
  // returned set must still be unsatisfiable.
  if (!r.minimal && !r.clauseIndices.empty()) {
    EXPECT_TRUE(oracleSubsetUnsat(f, r.clauseIndices));
  }
}

TEST(SubsetUnsatTest, AgreesWithOracleOnSubsets) {
  const CnfFormula f = paperExample2();
  const std::vector<int> mus{0, 1, 2};
  const std::vector<int> sat{0, 2, 4};
  EXPECT_TRUE(subsetUnsat(f, mus));
  EXPECT_FALSE(subsetUnsat(f, sat));
  EXPECT_TRUE(isMus(f, mus));
  EXPECT_FALSE(isMus(f, std::vector<int>{0, 1, 2, 3}));
}

// ---------------------------------------------------------------------
// MCS enumeration
// ---------------------------------------------------------------------

TEST(McsTest, TinyUnsatHasTwoSingletonMcses) {
  const CnfFormula f = tinyUnsat();
  const McsResult r = enumerateMcses(f);
  ASSERT_TRUE(r.complete);
  // Removing either unit of the (a)(¬a) pair restores satisfiability.
  EXPECT_EQ(r.mcses,
            (std::vector<std::vector<int>>{{0}, {1}}));
  EXPECT_EQ(r.minSize(), 1);
}

TEST(McsTest, SatisfiableInputYieldsEmptyComplete) {
  CnfFormula f(2);
  f.addClause({posLit(0)});
  f.addClause({posLit(1)});
  const McsResult r = enumerateMcses(f);
  EXPECT_TRUE(r.complete);
  EXPECT_TRUE(r.mcses.empty());
  EXPECT_EQ(r.minSize(), -1);
}

TEST(McsTest, EveryMcsIsMinimalAndCorrecting) {
  const CnfFormula f = paperExample2();
  const McsResult r = enumerateMcses(f);
  ASSERT_TRUE(r.complete);
  ASSERT_FALSE(r.mcses.empty());
  std::vector<int> all(static_cast<std::size_t>(f.numClauses()));
  for (int i = 0; i < f.numClauses(); ++i) all[static_cast<std::size_t>(i)] = i;
  for (const auto& mcs : r.mcses) {
    // Removing the MCS restores satisfiability...
    std::vector<int> rest;
    std::set_difference(all.begin(), all.end(), mcs.begin(), mcs.end(),
                        std::back_inserter(rest));
    EXPECT_FALSE(oracleSubsetUnsat(f, rest));
    // ... and it is minimal: putting any one clause back keeps it UNSAT.
    for (int put : mcs) {
      std::vector<int> restPlus = rest;
      restPlus.push_back(put);
      std::sort(restPlus.begin(), restPlus.end());
      EXPECT_TRUE(oracleSubsetUnsat(f, restPlus));
    }
  }
}

TEST(McsTest, EnumerationIsSizeOrdered) {
  const CnfFormula f = paperExample2();
  const McsResult r = enumerateMcses(f);
  ASSERT_TRUE(r.complete);
  for (std::size_t i = 1; i < r.mcses.size(); ++i) {
    EXPECT_LE(r.mcses[i - 1].size(), r.mcses[i].size());
  }
}

TEST(McsTest, MaxCountCapStopsEarly) {
  const CnfFormula f = pigeonhole(3, 2);
  McsOptions opts;
  opts.maxCount = 2;
  const McsResult r = enumerateMcses(f, opts);
  EXPECT_FALSE(r.complete);
  EXPECT_EQ(static_cast<int>(r.mcses.size()), 2);
}

TEST(McsTest, SmallestMcsSizeEqualsMaxSatOptimumCost) {
  // Proposition 2's bound is tight exactly at an MCS: min |MCS| == cost.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const CnfFormula f = randomUnsat3Sat(9, 6.5, seed);
    const McsResult mcses = enumerateMcses(f);
    ASSERT_TRUE(mcses.complete) << "seed " << seed;
    const OracleResult opt = oracleMaxSat(WcnfFormula::allSoft(f));
    ASSERT_TRUE(opt.optimumCost.has_value());
    if (*opt.optimumCost == 0) {
      // The draw happened to be satisfiable: nothing to correct.
      EXPECT_TRUE(mcses.mcses.empty()) << "seed " << seed;
    } else {
      EXPECT_EQ(mcses.minSize(), *opt.optimumCost) << "seed " << seed;
    }
  }
}

TEST(McsTest, AgreesWithMsu4OnOptimumCost) {
  const CnfFormula f = randomUnsat3Sat(12, 6.5, 42);
  const McsResult mcses = enumerateMcses(f);
  ASSERT_TRUE(mcses.complete);
  const auto solver = makeSolver("msu4-v2");
  const MaxSatResult r = solver->solve(WcnfFormula::allSoft(f));
  ASSERT_EQ(r.status, MaxSatStatus::Optimum);
  EXPECT_EQ(mcses.minSize(), r.cost);
}

// ---------------------------------------------------------------------
// Hitting-set duality
// ---------------------------------------------------------------------

TEST(HittingSetTest, SimpleCollections) {
  EXPECT_EQ(minimalHittingSets({}), (std::vector<std::vector<int>>{{}}));
  EXPECT_EQ(minimalHittingSets({{1, 2}}),
            (std::vector<std::vector<int>>{{1}, {2}}));
  // {1,2},{2,3}: minimal hitting sets are {2} and {1,3}.
  EXPECT_EQ(minimalHittingSets({{1, 2}, {2, 3}}),
            (std::vector<std::vector<int>>{{2}, {1, 3}}));
  // A set containing an empty set cannot be hit.
  EXPECT_TRUE(minimalHittingSets({{1}, {}}).empty());
}

TEST(HittingSetTest, ResultsAreHittingAndMinimal) {
  const std::vector<std::vector<int>> sets{{1, 2, 3}, {3, 4}, {1, 4}, {2, 5}};
  const auto hs = minimalHittingSets(sets);
  ASSERT_FALSE(hs.empty());
  for (const auto& h : hs) {
    for (const auto& s : sets) {
      bool hit = false;
      for (int e : s) {
        hit = hit || std::find(h.begin(), h.end(), e) != h.end();
      }
      EXPECT_TRUE(hit);
    }
    // Minimality: dropping any element misses some set.
    for (int drop : h) {
      bool allHit = true;
      for (const auto& s : sets) {
        bool hit = false;
        for (int e : s) {
          if (e != drop &&
              std::find(h.begin(), h.end(), e) != h.end()) {
            hit = true;
          }
        }
        allHit = allHit && hit;
      }
      EXPECT_FALSE(allHit);
    }
  }
}

TEST(AllMusesTest, PaperExample2HasTheTwoKnownMuses) {
  const CnfFormula f = paperExample2();
  const AllMusesResult r = enumerateAllMuses(f);
  ASSERT_TRUE(r.complete);
  for (const auto& mus : r.muses) {
    EXPECT_TRUE(isMus(f, mus));
  }
  // Clauses 6,7 (the x4 equivalence) are in no MUS.
  for (const auto& mus : r.muses) {
    EXPECT_TRUE(std::find(mus.begin(), mus.end(), 6) == mus.end());
    EXPECT_TRUE(std::find(mus.begin(), mus.end(), 7) == mus.end());
  }
}

TEST(AllMusesTest, EveryExtractorMusAppearsInTheFullEnumeration) {
  // Full MUS enumeration is exponential (the MCS collection of a dense
  // random instance explodes), so exercise small structured inputs.
  std::vector<CnfFormula> inputs;
  inputs.push_back(paperExample2());
  inputs.push_back(tinyUnsat());
  inputs.push_back(pigeonhole(3, 2));
  {
    // Two independent contradictions: MUSes are exactly the two pairs.
    CnfFormula f(2);
    f.addClause({posLit(0)});
    f.addClause({negLit(0)});
    f.addClause({posLit(1)});
    f.addClause({negLit(1)});
    inputs.push_back(std::move(f));
  }
  for (std::size_t which = 0; which < inputs.size(); ++which) {
    const CnfFormula& f = inputs[which];
    const AllMusesResult all = enumerateAllMuses(f);
    ASSERT_TRUE(all.complete) << "input " << which;
    ASSERT_FALSE(all.muses.empty());
    for (const auto& extracted :
         {extractMusDeletion(f, {}), extractMusDichotomic(f, {}),
          extractMusInsertion(f, {})}) {
      ASSERT_TRUE(extracted.minimal);
      EXPECT_TRUE(std::find(all.muses.begin(), all.muses.end(),
                            extracted.clauseIndices) != all.muses.end())
          << "input " << which;
    }
  }
}

TEST(AllMusesTest, DualityRoundTrip) {
  // MCSes are themselves the minimal hitting sets of the MUS collection.
  const CnfFormula f = tinyUnsat();
  const McsResult mcses = enumerateMcses(f);
  const AllMusesResult muses = enumerateAllMuses(f);
  ASSERT_TRUE(mcses.complete);
  ASSERT_TRUE(muses.complete);
  auto rehit = minimalHittingSets(muses.muses);
  std::sort(rehit.begin(), rehit.end());
  auto expected = mcses.mcses;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(rehit, expected);
}

}  // namespace
}  // namespace msu
