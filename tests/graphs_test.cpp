/// Tests for the graph/scheduling MaxSAT generators: every instance's
/// engine-computed optimum must match the dedicated brute-force
/// reference (coloring penalty, max-cut weight, vertex-cover size), the
/// generators must be deterministic in their seeds, and the weighted
/// variants must round-trip through the weighted engines.

#include <gtest/gtest.h>

#include <random>

#include "cnf/oracle.h"
#include "gen/graphs.h"
#include "harness/factory.h"

namespace msu {
namespace {

TEST(GraphGenTest, RandomGraphRespectsProbabilityExtremes) {
  const Graph none = randomGraph(8, 0.0, 1);
  EXPECT_TRUE(none.edges.empty());
  const Graph full = randomGraph(8, 1.0, 1);
  EXPECT_EQ(static_cast<int>(full.edges.size()), 8 * 7 / 2);
}

TEST(GraphGenTest, GeneratorsAreDeterministicPerSeed) {
  const Graph a = randomGraph(12, 0.4, 99);
  const Graph b = randomGraph(12, 0.4, 99);
  EXPECT_EQ(a.edges, b.edges);
  const Graph c = ringWithChords(10, 5, 3);
  const Graph d = ringWithChords(10, 5, 3);
  EXPECT_EQ(c.edges, d.edges);
}

TEST(GraphGenTest, RingWithChordsIsARingPlusChords) {
  const Graph g = ringWithChords(9, 4, 5);
  EXPECT_EQ(g.numVertices, 9);
  EXPECT_EQ(static_cast<int>(g.edges.size()), 9 + 4);
  // No duplicates.
  std::set<std::pair<int, int>> seen(g.edges.begin(), g.edges.end());
  EXPECT_EQ(seen.size(), g.edges.size());
}

class ColoringVsBruteForce
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(ColoringVsBruteForce, EngineOptimumMatches) {
  const auto [k, seed] = GetParam();
  const Graph g = randomGraph(7, 0.5, seed);
  const WcnfFormula w = coloringInstance(g, k);
  auto solver = makeSolver("msu4-v2");
  const MaxSatResult r = solver->solve(w);
  ASSERT_EQ(r.status, MaxSatStatus::Optimum);
  EXPECT_EQ(r.cost, chromaticPenaltyBruteForce(g, k));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ColoringVsBruteForce,
    ::testing::Combine(::testing::Values(2, 3),
                       ::testing::Values<std::uint64_t>(1, 2, 3, 4, 5)),
    [](const auto& info) {
      return "k" + std::to_string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

TEST(ColoringTest, BipartiteGraphTwoColorsForFree) {
  // An even ring is 2-colorable.
  const Graph g = ringWithChords(8, 0, 1);
  const WcnfFormula w = coloringInstance(g, 2);
  auto solver = makeSolver("oll");
  const MaxSatResult r = solver->solve(w);
  ASSERT_EQ(r.status, MaxSatStatus::Optimum);
  EXPECT_EQ(r.cost, 0);
}

TEST(ColoringTest, OddRingNeedsOneClashWithTwoColors) {
  const Graph g = ringWithChords(9, 0, 1);
  const WcnfFormula w = coloringInstance(g, 2);
  auto solver = makeSolver("msu3");
  const MaxSatResult r = solver->solve(w);
  ASSERT_EQ(r.status, MaxSatStatus::Optimum);
  EXPECT_EQ(r.cost, 1);
}

TEST(MaxCutTest, MatchesBruteForceUnweighted) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Graph g = randomGraph(9, 0.45, seed * 13);
    const WcnfFormula w = maxCutInstance(g);
    auto solver = makeSolver("msu4-v2");
    const MaxSatResult r = solver->solve(w);
    ASSERT_EQ(r.status, MaxSatStatus::Optimum) << "seed " << seed;
    const Weight cut = static_cast<Weight>(g.edges.size()) - r.cost;
    EXPECT_EQ(cut, maxCutBruteForce(g)) << "seed " << seed;
  }
}

TEST(MaxCutTest, MatchesBruteForceWeighted) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Graph g = randomGraph(8, 0.5, seed * 29);
    std::mt19937_64 rng(seed);
    std::vector<Weight> weights;
    Weight total = 0;
    for (std::size_t i = 0; i < g.edges.size(); ++i) {
      weights.push_back(1 + static_cast<Weight>(rng() % 7));
      total += weights.back();
    }
    const WcnfFormula w = maxCutInstance(g, weights);
    auto solver = makeSolver("oll");
    const MaxSatResult r = solver->solve(w);
    ASSERT_EQ(r.status, MaxSatStatus::Optimum) << "seed " << seed;
    EXPECT_EQ(total - r.cost, maxCutBruteForce(g, weights)) << "seed " << seed;
  }
}

TEST(MaxCutTest, CompleteGraphK4CutsFourEdges) {
  const Graph g = randomGraph(4, 1.0, 1);
  const WcnfFormula w = maxCutInstance(g);
  auto solver = makeSolver("msu4-v2");
  const MaxSatResult r = solver->solve(w);
  ASSERT_EQ(r.status, MaxSatStatus::Optimum);
  EXPECT_EQ(static_cast<Weight>(g.edges.size()) - r.cost, 4);
}

TEST(VertexCoverTest, MatchesBruteForce) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Graph g = randomGraph(9, 0.4, seed * 7);
    const WcnfFormula w = vertexCoverInstance(g);
    auto solver = makeSolver("msu4-v2");
    const MaxSatResult r = solver->solve(w);
    ASSERT_EQ(r.status, MaxSatStatus::Optimum) << "seed " << seed;
    EXPECT_EQ(r.cost, vertexCoverBruteForce(g)) << "seed " << seed;
  }
}

TEST(VertexCoverTest, StarGraphNeedsOnlyTheCenter) {
  Graph g;
  g.numVertices = 7;
  for (int leaf = 1; leaf < 7; ++leaf) g.edges.emplace_back(0, leaf);
  const WcnfFormula w = vertexCoverInstance(g);
  auto solver = makeSolver("oll");
  const MaxSatResult r = solver->solve(w);
  ASSERT_EQ(r.status, MaxSatStatus::Optimum);
  EXPECT_EQ(r.cost, 1);
  EXPECT_EQ(r.model[0], lbool::True);
}

TEST(TimetableTest, InstanceStructureIsSane) {
  TimetableParams params;
  params.numEvents = 6;
  params.numSlots = 3;
  params.seed = 2;
  const WcnfFormula w = timetablingInstance(params);
  EXPECT_EQ(w.numVars(), 18);
  EXPECT_EQ(w.numSoft(), params.numEvents * params.preferencesPerEvent);
  EXPECT_GT(w.numHard(), 0);
}

TEST(TimetableTest, OptimumMatchesOracleOnSmallInstances) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    TimetableParams params;
    params.numEvents = 4;
    params.numSlots = 3;
    params.conflictProbability = 0.4;
    params.seed = seed;
    const WcnfFormula w = timetablingInstance(params);
    ASSERT_LE(w.numVars(), kOracleMaxVars);
    const OracleResult oracle = oracleMaxSat(w);
    auto solver = makeSolver("oll");
    const MaxSatResult r = solver->solve(w);
    if (!oracle.optimumCost) {
      EXPECT_EQ(r.status, MaxSatStatus::UnsatisfiableHard) << "seed " << seed;
    } else {
      ASSERT_EQ(r.status, MaxSatStatus::Optimum) << "seed " << seed;
      EXPECT_EQ(r.cost, *oracle.optimumCost) << "seed " << seed;
    }
  }
}

TEST(TimetableTest, NoConflictsMeansOnlyPreferenceClashesCost) {
  // Without conflicts every event gets a slot; the only cost source is
  // an event preferring two different slots (at most one can hold).
  TimetableParams params;
  params.numEvents = 5;
  params.numSlots = 4;
  params.conflictProbability = 0.0;
  params.preferencesPerEvent = 1;
  params.seed = 9;
  const WcnfFormula w = timetablingInstance(params);
  auto solver = makeSolver("wlinear");
  const MaxSatResult r = solver->solve(w);
  ASSERT_EQ(r.status, MaxSatStatus::Optimum);
  EXPECT_EQ(r.cost, 0);  // single preference per event is always granted
}

}  // namespace
}  // namespace msu
