/// \file ablation_encodings.cpp
/// \brief Ablation beyond the paper's figures: msu4 with all four
///        cardinality encodings (the paper only compares BDD vs sorting
///        networks; §5 calls "alternative encodings of cardinality
///        constraints" an area for improvement).
///
/// Usage: ablation_encodings [timeout_seconds] [size_scale] [per_family]

#include <cstdlib>
#include <iostream>

#include "harness/runner.h"
#include "harness/suite.h"
#include "harness/tables.h"

int main(int argc, char** argv) {
  using namespace msu;

  RunConfig config;
  config.timeoutSeconds = argc > 1 ? std::atof(argv[1]) : 1.0;
  SuiteParams sp;
  sp.sizeScale = argc > 2 ? std::atof(argv[2]) : 0.5;
  sp.perFamily = argc > 3 ? std::atoi(argv[3]) : 6;

  const std::vector<Instance> suite = buildMixedSuite(sp);
  std::cout << "msu4 cardinality-encoding ablation, " << suite.size()
            << " instances, timeout " << config.timeoutSeconds << " s\n\n";

  const std::vector<std::string> solvers{"msu4-v1", "msu4-v2", "msu4-seq",
                                         "msu4-tot"};
  const std::vector<RunRecord> records = runMatrix(solvers, suite, config);
  printAbortedTable(std::cout, records, solvers,
                    "msu4 by cardinality encoding (v1=bdd, v2=sorter)");
  printFamilyBreakdown(std::cout, records, solvers);

  const int bad = crossCheckOptima(records, std::cerr);
  return bad > 0 ? 1 : 0;
}
