#!/usr/bin/env python3
"""CI bench-regression gate.

Compares a freshly measured bench JSON (written by `micro_sat --json`)
against the committed reference and fails when the calibrated
geometric-mean slowdown exceeds the tolerance.

Wall clocks are not comparable across machines (the committed baseline
is recorded wherever the last perf-relevant PR was developed; CI runs on
whatever runner generation GitHub hands out), so the gate calibrates:
the deterministic pure-UP benchmarks (names starting with `up-`) are
conflict-free propagation waves whose wall time is a machine-speed
probe, and the gated score is

    geomean(search benchmarks' slowdown) / geomean(up-* slowdown).

A uniformly slower runner cancels out; a code change that slows search
does not. The calibration probes themselves are guarded separately: the
`propagations` / `watch_bytes_visited` counters recorded for `up-*`
cases are deterministic for identical code, so any drift there means
the propagation core changed and `bench/BENCH_micro_sat.json` must be
re-recorded in the same PR (which re-anchors the gate).

Benchmarks present in the baseline but missing from the current run are
a hard error: dropping the slow cases must not let a regression pass.

A second mode gates A/B benches (micro_incremental): records come in
`<case>/off` + `<case>/on` pairs, and the gated score is the geomean
off/on wall ratio (the A/B *speedup*), which is machine-independent by
construction — no calibration probes needed. The gate fails when the
current speedup falls more than the tolerance below the committed one,
or below an optional absolute floor (--min-speedup).

Usage:
  check_regression.py --baseline bench/BENCH_micro_sat.json \
                      --current /tmp/BENCH_micro_sat.json \
                      [--tolerance 0.15] [--calibration-prefix up-]
  check_regression.py --mode ab --baseline bench/BENCH_micro_incremental.json \
                      --current /tmp/BENCH_micro_incremental.json \
                      [--tolerance 0.15] [--min-speedup 1.05]

Exit status: 0 = within tolerance, 1 = regression, 2 = bad input.
"""

import argparse
import contextlib
import json
import math
import signal
import sys

# Die quietly when the consumer closes the pipe (e.g. `... | head`).
with contextlib.suppress(AttributeError, ValueError):
    signal.signal(signal.SIGPIPE, signal.SIG_DFL)

# Deterministic-for-identical-code counters of the calibration probes.
GUARDED_COUNTERS = ("propagations", "watch_bytes_visited")


def load_records(path):
    try:
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        sys.exit(2)
    records = {}
    for rec in data.get("records", []):
        name = rec.get("name")
        wall = rec.get("wall_ms")
        if isinstance(name, str) and isinstance(wall, (int, float)) and wall > 0:
            records[name] = {
                "wall_ms": float(wall),
                "counters": rec.get("counters", {}),
            }
    if not records:
        print(f"error: no usable records in {path}", file=sys.stderr)
        sys.exit(2)
    return records


def geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def ab_speedups(records, off_suffix, on_suffix):
    """Per-case off/on *throughput* ratio for paired A/B records.

    The two legs may legitimately perform different numbers of oracle
    calls (a warm start changes the search trajectory), so the gated
    quantity is per-call latency (wall_ms / sat_calls) — the same
    calls-per-second metric micro_incremental prints — falling back to
    raw wall time only when a record carries no sat_calls counter.
    """
    def per_call(rec):
        calls = rec["counters"].get("sat_calls")
        if isinstance(calls, (int, float)) and calls > 0:
            return rec["wall_ms"] / calls
        return rec["wall_ms"]

    speedups = {}
    for name, rec in records.items():
        if not name.endswith(off_suffix):
            continue
        case = name[: -len(off_suffix)]
        on = records.get(case + on_suffix)
        if on is None:
            print(f"error: {name} has no {case}{on_suffix} pair",
                  file=sys.stderr)
            sys.exit(2)
        speedups[case] = per_call(rec) / per_call(on)
    if not speedups:
        print("error: no A/B record pairs found", file=sys.stderr)
        sys.exit(2)
    return speedups


def check_ab(base, cur, tolerance, min_speedup):
    """Gate the A/B speedup (machine-independent) instead of wall time."""
    base_sp = ab_speedups(base, "/off", "/on")
    cur_sp = ab_speedups(cur, "/off", "/on")
    missing = sorted(set(base_sp) - set(cur_sp))
    if missing:
        print(f"error: A/B cases missing from current run: {missing}",
              file=sys.stderr)
        sys.exit(2)
    common = sorted(set(base_sp) & set(cur_sp))
    print(f"{'case':<26}{'base speedup':>14}{'cur speedup':>14}")
    for name in common:
        print(f"{name:<26}{base_sp[name]:>13.2f}x{cur_sp[name]:>13.2f}x")
    base_geo = geomean([base_sp[n] for n in common])
    cur_geo = geomean([cur_sp[n] for n in common])
    floor = base_geo / (1.0 + tolerance)
    print(f"\ngeomean A/B speedup: committed {base_geo:.3f}x, "
          f"current {cur_geo:.3f}x (floor {floor:.3f}x"
          + (f", absolute floor {min_speedup:.2f}x" if min_speedup else "")
          + ")")
    failed = False
    if cur_geo < floor:
        print(f"FAIL: A/B speedup {cur_geo:.3f}x fell more than "
              f"{tolerance:.0%} below the committed {base_geo:.3f}x",
              file=sys.stderr)
        failed = True
    if min_speedup and cur_geo < min_speedup:
        print(f"FAIL: A/B speedup {cur_geo:.3f}x is below the absolute "
              f"floor {min_speedup:.2f}x", file=sys.stderr)
        failed = True
    if failed:
        sys.exit(1)
    print("OK: within tolerance")
    sys.exit(0)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True,
                    help="committed reference JSON (bench/BENCH_micro_sat.json)")
    ap.add_argument("--current", required=True,
                    help="freshly measured JSON to check")
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="allowed calibrated geomean slowdown (default 0.15)")
    ap.add_argument("--calibration-prefix", default="up-",
                    help="benchmark-name prefix of the machine-speed probes")
    ap.add_argument("--mode", choices=("wall", "ab"), default="wall",
                    help="wall: calibrated wall-time gate; ab: paired "
                         "off/on speedup gate (machine-independent)")
    ap.add_argument("--min-speedup", type=float, default=0.0,
                    help="ab mode: absolute geomean speedup floor")
    args = ap.parse_args()

    base = load_records(args.baseline)
    cur = load_records(args.current)

    if args.mode == "ab":
        check_ab(base, cur, args.tolerance, args.min_speedup)
        return

    missing = sorted(set(base) - set(cur))
    if missing:
        print(f"error: benchmarks missing from current run: {missing}\n"
              "(removing or renaming cases requires re-recording "
              "bench/BENCH_micro_sat.json in the same PR)", file=sys.stderr)
        sys.exit(2)
    extra = sorted(set(cur) - set(base))
    if extra:
        print(f"warning: benchmarks not in the committed baseline are NOT "
              f"gated: {extra}\n(re-record bench/BENCH_micro_sat.json to "
              "bring them under the gate)")
    common = sorted(set(base) & set(cur))

    print(f"{'benchmark':<16}{'base[ms]':>12}{'cur[ms]':>12}{'ratio':>9}")
    ratios = {}
    for name in common:
        r = cur[name]["wall_ms"] / base[name]["wall_ms"]  # > 1 = slower
        ratios[name] = r
        tag = "  (calibration)" if name.startswith(args.calibration_prefix) \
            else ""
        print(f"{name:<16}{base[name]['wall_ms']:>12.2f}"
              f"{cur[name]['wall_ms']:>12.2f}{r:>8.2f}x{tag}")

    calib_names = [n for n in common if n.startswith(args.calibration_prefix)]
    gated_names = [n for n in common if n not in calib_names]
    if not gated_names:
        print("error: no gated benchmarks outside the calibration set",
              file=sys.stderr)
        sys.exit(2)

    # Guard the calibration probes: their counters are deterministic, so
    # drift means the propagation core changed without a re-recorded
    # baseline — calibration would silently absorb exactly that change.
    failed = False
    for name in calib_names:
        for key in GUARDED_COUNTERS:
            b = base[name]["counters"].get(key)
            c = cur[name]["counters"].get(key)
            if b != c:
                print(f"FAIL: {name}: deterministic counter '{key}' drifted "
                      f"({b} -> {c}); the propagation core changed — "
                      "re-record bench/BENCH_micro_sat.json in this PR",
                      file=sys.stderr)
                failed = True

    machine = geomean([ratios[n] for n in calib_names]) if calib_names else 1.0
    raw = geomean([ratios[n] for n in gated_names])
    score = raw / machine
    limit = 1.0 + args.tolerance
    print(f"\nmachine-speed factor (geomean over {len(calib_names)} "
          f"calibration probes): {machine:.3f}x")
    print(f"raw geomean slowdown over {len(gated_names)} gated benchmarks: "
          f"{raw:.3f}x")
    print(f"calibrated slowdown: {score:.3f}x (limit {limit:.2f}x)")
    if score > limit:
        print(f"FAIL: calibrated geomean regression {score:.3f}x exceeds "
              f"{limit:.2f}x", file=sys.stderr)
        failed = True
    if failed:
        sys.exit(1)
    print("OK: within tolerance")
    sys.exit(0)


if __name__ == "__main__":
    main()
