/// \file ablation_trace.cpp
/// \brief Tracer-overhead A/B: every case is solved twice — tracing OFF
///        (Options::trace == nullptr, the production default) and
///        tracing ON (an enabled obs::Tracer wired through the solve) —
///        and the driver reports per-case wall time plus the geomean
///        on/off overhead. This is the evidence behind shipping the
///        tracer compiled in (see bench/README.md "Tracer overhead");
///        the committed bench/BENCH_ablation_trace.json is gated in CI
///        via check_regression.py --mode ab (the off/on *ratio* is
///        machine-independent, unlike raw wall clocks — it falls when
///        tracing gets more expensive, which is what the gate catches).
///
/// Usage: ablation_trace [--reps N] [--json [path]]
///
/// The CNF cases run the bare CDCL substrate (solve + restart-segment
/// spans, the hot emission sites); the msu4 case runs a full MaxSAT
/// engine so oracle-call and core-trimming spans are measured too.
/// Tracing must not perturb the search: both legs must agree on status
/// and conflict count, and the driver aborts otherwise.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "bench_json.h"
#include "core/msu4.h"
#include "gen/bmc.h"
#include "gen/miter.h"
#include "gen/pigeonhole.h"
#include "gen/random_cnf.h"
#include "obs/trace.h"
#include "sat/solver.h"

namespace {

using namespace msu;

/// One measured A/B leg: wall seconds plus a trajectory checksum that
/// must match between the legs (tracing is observation-only).
struct RunOut {
  double secs = 0.0;
  std::int64_t satCalls = 1;
  std::int64_t conflicts = 0;
  std::int64_t checksum = 0;
};

struct Case {
  std::string name;
  std::function<RunOut(obs::Tracer* tracer)> run;
};

/// Bare-substrate case: one cold solve of a CNF instance.
Case cnfCase(const std::string& name, CnfFormula f, lbool expected) {
  return {name, [f = std::move(f), expected](obs::Tracer* tracer) {
            Solver::Options so;
            so.trace = tracer;
            Solver s(so);
            while (s.numVars() < f.numVars()) {
              static_cast<void>(s.newVar());
            }
            bool ok = true;
            for (const Clause& cl : f.clauses()) {
              if (!s.addClause(cl)) {
                ok = false;
                break;
              }
            }
            const auto t0 = std::chrono::steady_clock::now();
            const lbool status = ok ? s.solve() : lbool::False;
            RunOut out;
            out.secs = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
            if (status != expected) {
              std::cerr << "unexpected status\n";
              std::exit(1);
            }
            out.conflicts = s.stats().conflicts;
            out.checksum = s.stats().conflicts * 3 + s.stats().decisions;
            return out;
          }};
}

/// Full-engine case: msu4-v2 end to end, so oracle-call, core-trimming
/// and restart spans are all on the measured path.
Case engineCase(const std::string& name, WcnfFormula wcnf) {
  return {name, [wcnf = std::move(wcnf)](obs::Tracer* tracer) {
            MaxSatOptions o;
            o.sat.trace = tracer;
            Msu4Solver solver(o);
            const auto t0 = std::chrono::steady_clock::now();
            const MaxSatResult r = solver.solve(wcnf);
            RunOut out;
            out.secs = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
            if (r.status != MaxSatStatus::Optimum) {
              std::cerr << "no optimum\n";
              std::exit(1);
            }
            out.satCalls = r.satCalls;
            out.conflicts = r.satStats.conflicts;
            out.checksum = r.cost * 31 + r.satStats.conflicts;
            return out;
          }};
}

std::vector<Case> buildCases() {
  std::vector<Case> cases;
  {
    RandomCircuitParams p;
    p.numInputs = 10;
    p.numGates = 800;
    p.numOutputs = 3;
    p.seed = 11;
    cases.push_back(
        cnfCase("miter-800", equivalenceInstance(p, 99), lbool::False));
  }
  cases.push_back(cnfCase(
      "bmc-45", bmcCounterInstance({.bits = 6, .steps = 45}), lbool::False));
  cases.push_back(cnfCase("php-8", pigeonhole(9, 8), lbool::False));
  cases.push_back(cnfCase("rand3sat-280",
                          randomKSat({.numVars = 280,
                                      .numClauses = 1120,
                                      .clauseLen = 3,
                                      .seed = 17}),
                          lbool::True));
  cases.push_back(engineCase(
      "msu4v2-rnd3sat40",
      WcnfFormula::allSoft(randomUnsat3Sat(40, 5.6, 7))));
  return cases;
}

}  // namespace

int main(int argc, char** argv) {
  int reps = 3;
  bool json = false;
  std::string jsonPath = "BENCH_ablation_trace.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--reps" && i + 1 < argc) {
      reps = std::max(1, std::atoi(argv[++i]));
    } else if (arg == "--json") {
      json = true;
      if (i + 1 < argc && std::string(argv[i + 1]).ends_with(".json")) {
        jsonPath = argv[++i];
      }
    } else {
      std::cerr << "usage: ablation_trace [--reps N] [--json [path]]\n";
      return 2;
    }
  }

  const std::vector<Case> cases = buildCases();
  std::vector<benchjson::BenchRecord> records;

  std::cout << std::left << std::setw(20) << "case" << std::right
            << std::setw(10) << "off[ms]" << std::setw(10) << "on[ms]"
            << std::setw(11) << "conflicts" << std::setw(11) << "overhead"
            << '\n';

  double logSum = 0.0;
  for (const Case& c : cases) {
    RunOut best[2];
    for (int mode = 0; mode < 2; ++mode) {
      for (int r = 0; r < reps; ++r) {
        obs::Tracer tracer;
        tracer.setEnabled(true);
        // Register this thread's ring before the clock starts: the
        // one-time buffer allocation is not the steady-state emission
        // cost the record (and the CI gate) is about.
        tracer.instant(obs::TraceCat::kOracle, "warmup");
        RunOut out = c.run(mode == 0 ? nullptr : &tracer);
        if (r == 0 || out.secs < best[mode].secs) best[mode] = out;
      }
    }
    if (best[0].checksum != best[1].checksum) {
      std::cerr << c.name << ": tracing perturbed the search ("
                << best[0].checksum << " vs " << best[1].checksum << ")\n";
      return 1;
    }
    // overhead > 0 means the traced leg is slower; the JSON gate sees
    // the same quantity as the off/on speedup 1/(1+overhead).
    const double overhead = best[1].secs / best[0].secs - 1.0;
    logSum += std::log(best[1].secs / best[0].secs);

    for (int mode = 0; mode < 2; ++mode) {
      benchjson::BenchRecord rec;
      rec.name = c.name + (mode == 0 ? "/off" : "/on");
      rec.wallMs = best[mode].secs * 1e3;
      rec.reps = reps;
      rec.counters = {
          {"sat_calls", best[mode].satCalls},
          {"conflicts", best[mode].conflicts},
      };
      records.push_back(rec);
    }

    std::cout << std::left << std::setw(20) << c.name << std::right
              << std::setw(10) << std::fixed << std::setprecision(2)
              << best[0].secs * 1e3 << std::setw(10) << best[1].secs * 1e3
              << std::setw(11) << best[0].conflicts << std::setw(10)
              << std::setprecision(1) << overhead * 1e2 << "%\n";
  }

  std::cout << "\ngeomean tracing-on overhead: " << std::setprecision(2)
            << (std::exp(logSum / static_cast<double>(cases.size())) - 1.0) *
                   1e2
            << "%\n";

  if (json) {
    if (!benchjson::writeJsonFile(jsonPath, "ablation_trace", records)) {
      return 1;
    }
    std::cout << "wrote " << jsonPath << '\n';
  }
  return 0;
}
