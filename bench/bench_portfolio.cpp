/// \file bench_portfolio.cpp
/// \brief Wall-clock benchmark of the parallel portfolio (src/par):
///        each instance is solved by the same portfolio configuration
///        (base engine msu4-v2 plus the default diversified cycle,
///        clause sharing on) at 1, 2 and 4 workers, and the driver
///        reports per-instance speedups plus the 1→4-thread geomean.
///
/// Usage: bench_portfolio [--reps N] [--json [path]] [--trace FILE]
///
///   --reps   best-of-N wall times per configuration (default 3: the
///            regression gate compares minima, and on shared CI
///            runners a single sample is mostly scheduler noise)
///   --json   write bench/BENCH_portfolio.json (per-(instance,threads)
///            wall time, winner worker/engine and sharing counters)
///   --trace  instead of the sweep, run ONE 4-worker portfolio solve of
///            the first clause-sharing case with the obs tracer enabled
///            and write the Chrome trace_event JSON to FILE (the
///            nightly-CI sample artifact; open it in Perfetto — see
///            bench/README.md "Reading a trace")
///
/// Besides the portfolio sweep the driver emits:
///  * a `seq-direct` record — the bmc + mix3sat cases solved by plain
///    sequential msu4-v2 calls. Its wall time is a machine-speed probe
///    for check_regression.py (--calibration-prefix seq-), and its
///    deterministic propagation/conflict counters guard the probe
///    itself against silent code drift;
///  * `cubes-*-tN` records — the hard-rich mix3sat cases conquered by
///    the cube-and-conquer solver at 1/2/4 workers (all-soft cases
///    have no hard clauses to split and would just measure wlinear).
///
/// The suite mixes instances where the base engine is already the right
/// choice (bmc — the portfolio's thread tax shows up honestly) with the
/// cases a portfolio exists for: weighted max-cut (duplication-based
/// msu4 struggles; oll and branch-and-bound finish in milliseconds) and
/// near-threshold random MaxSAT (branch-and-bound wins). All thread
/// counts must report the same optimum — the driver aborts otherwise.
///
/// NOTE on reading the numbers: wall-time speedups here are measured on
/// whatever machine runs the bench; on a single-core container the
/// 4-thread run pays ~4x time-slicing for each racer, so any speedup
/// >= 1 means the portfolio's diversification won by more than the
/// core it gave up.

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <random>
#include <string>
#include <vector>

#include "bench_json.h"
#include "gen/bmc.h"
#include "gen/graphs.h"
#include "gen/random_cnf.h"
#include "harness/factory.h"
#include "obs/trace.h"
#include "par/cube.h"
#include "par/portfolio.h"

namespace {

using namespace msu;

struct Case {
  std::string name;
  WcnfFormula wcnf;
};

std::vector<Case> buildCases() {
  std::vector<Case> cases;
  // Weighted max-cut: the portfolio's showcase (oll / maxsatz finish
  // orders of magnitude before duplication-based msu4).
  for (const int n : {14, 16, 18}) {
    const Graph g = randomGraph(n, 0.45, 100 + static_cast<std::uint64_t>(n));
    std::mt19937_64 wrng(200 + static_cast<std::uint64_t>(n));
    std::vector<Weight> weights;
    weights.reserve(g.edges.size());
    for (std::size_t e = 0; e < g.edges.size(); ++e) {
      weights.push_back(1 + static_cast<Weight>(wrng() % 9));
    }
    cases.push_back({"wmaxcut-" + std::to_string(n),
                     maxCutInstance(g, weights)});
  }
  // Near-threshold random MaxSAT: branch-and-bound territory.
  cases.push_back({"rnd3sat-40",
                   WcnfFormula::allSoft(randomUnsat3Sat(40, 5.6, 7))});
  cases.push_back({"rnd3sat-44",
                   WcnfFormula::allSoft(randomUnsat3Sat(44, 5.6, 7))});
  cases.push_back({"rnd3sat-40d",
                   WcnfFormula::allSoft(randomUnsat3Sat(40, 6.0, 3))});
  // Control: the base engine is already the best choice here, so these
  // charge the portfolio its full thread tax.
  cases.push_back({"bmc-8-16", WcnfFormula::allSoft(bmcCounterInstance(
                                   {.bits = 8, .steps = 16}))});
  cases.push_back({"bmc-7-14", WcnfFormula::allSoft(bmcCounterInstance(
                                   {.bits = 7, .steps = 14}))});
  // Hard-rich instances: everything above is all-soft, and an all-soft
  // instance has NO legally shareable clauses (only consequences of the
  // shared hard part may cross workers — see par/clause_pool.h), so the
  // sharing counters of those records are structurally zero. These two
  // cases keep the clause-sharing path measured: a below-threshold hard
  // random 3-SAT skeleton (satisfiable; the driver aborts on
  // non-Optimum, so a regression here is loud) carrying a soft 3-clause
  // load. The optimizer's refutations inside the hard skeleton learn
  // prefix-pure clauses, which are the only legally exportable kind.
  for (const auto& [vars, hardN, softN, seed] :
       {std::array<int, 4>{48, 160, 120, 12},
        std::array<int, 4>{40, 136, 110, 21}}) {
    const CnfFormula hard =
        randomKSat({.numVars = vars,
                    .numClauses = hardN,
                    .clauseLen = 3,
                    .seed = static_cast<std::uint64_t>(seed)});
    const CnfFormula soft =
        randomKSat({.numVars = vars,
                    .numClauses = softN,
                    .clauseLen = 3,
                    .seed = static_cast<std::uint64_t>(seed + 1)});
    WcnfFormula w(vars);
    for (int i = 0; i < hard.numClauses(); ++i) w.addHard(hard.clause(i));
    for (int i = 0; i < soft.numClauses(); ++i) w.addSoft(soft.clause(i), 1);
    cases.push_back({"mix3sat-" + std::to_string(vars), std::move(w)});
  }
  return cases;
}

}  // namespace

int main(int argc, char** argv) {
  int reps = 3;
  bool writeJson = false;
  std::string jsonPath = "bench/BENCH_portfolio.json";
  std::string tracePath;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--reps" && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (arg == "--json") {
      writeJson = true;
      if (i + 1 < argc &&
          std::string(argv[i + 1]).find(".json") != std::string::npos) {
        jsonPath = argv[++i];
      }
    } else if (arg == "--trace" && i + 1 < argc) {
      tracePath = argv[++i];
    } else {
      std::cerr << "usage: bench_portfolio [--reps N] [--json [path]] "
                   "[--trace FILE]\n";
      return 2;
    }
  }

  const std::vector<Case> cases = buildCases();

  if (!tracePath.empty()) {
    // Trace-sample mode: one 4-worker portfolio run of the first
    // hard-rich (clause-sharing) case, exported as Chrome trace JSON.
    // Not a measurement — the point is a real multi-worker trace with
    // solve/restart/import-drain spans across four timelines.
    const Case* traced = nullptr;
    for (const Case& c : cases) {
      if (c.name.rfind("mix3sat-", 0) == 0) traced = &c;
    }
    if (traced == nullptr) traced = &cases.front();
    obs::Tracer tracer;
    tracer.setEnabled(true);
    PortfolioOptions po;
    po.threads = 4;
    po.base.budget = Budget::wallClock(300.0);
    po.base.sat.trace = &tracer;
    PortfolioSolver solver(po);
    const MaxSatResult r = solver.solve(traced->wcnf);
    if (r.status != MaxSatStatus::Optimum) {
      std::cerr << "trace run: " << traced->name << " without an optimum\n";
      return 1;
    }
    if (!tracer.exportChromeTrace(tracePath)) {
      std::cerr << "cannot write " << tracePath << '\n';
      return 1;
    }
    std::cout << "traced " << traced->name << " (4 workers, cost " << r.cost
              << "): wrote " << tracePath << " (" << tracer.retained()
              << " events, " << tracer.dropped() << " dropped, "
              << tracer.threadsSeen() << " threads)\n";
    return 0;
  }
  const std::vector<int> threadCounts{1, 2, 4};
  std::vector<benchjson::BenchRecord> records;
  std::vector<double> speedups;  // t1 / t4 per instance

  // Machine-speed probe: the cases where the base engine is the right
  // tool, solved by plain sequential calls — no threads, no sharing.
  // Wall time tracks the runner; the counters are deterministic for
  // identical code and guard the probe against silent drift.
  {
    double bestMs = 0.0;
    std::int64_t propagations = 0;
    std::int64_t conflicts = 0;
    int probed = 0;
    for (int rep = 0; rep < reps; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      propagations = 0;
      conflicts = 0;
      probed = 0;
      for (const Case& c : cases) {
        if (c.name.rfind("bmc-", 0) != 0 && c.name.rfind("mix3sat-", 0) != 0) {
          continue;
        }
        auto engine = makeSolver("msu4-v2", MaxSatOptions{});
        const MaxSatResult r = engine->solve(c.wcnf);
        if (r.status != MaxSatStatus::Optimum) {
          std::cerr << "seq-direct: " << c.name << " without an optimum\n";
          return 1;
        }
        propagations += r.satStats.propagations;
        conflicts += r.satStats.conflicts;
        ++probed;
      }
      const double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
      if (rep == 0 || ms < bestMs) bestMs = ms;
    }
    std::cout << "seq-direct (calibration probe, " << probed
              << " instances): " << std::fixed << std::setprecision(1)
              << bestMs << " ms\n\n";
    benchjson::BenchRecord rec;
    rec.name = "seq-direct";
    rec.wallMs = bestMs;
    rec.reps = reps;
    rec.counters.emplace_back("instances", probed);
    rec.counters.emplace_back("propagations", propagations);
    rec.counters.emplace_back("conflicts", conflicts);
    records.push_back(std::move(rec));
  }

  std::cout << std::left << std::setw(14) << "instance" << std::right
            << std::setw(10) << "t1 ms" << std::setw(10) << "t2 ms"
            << std::setw(10) << "t4 ms" << std::setw(9) << "t1/t4"
            << "  winner(t4)\n";

  for (const Case& c : cases) {
    double wall[3] = {0, 0, 0};
    std::string winner = "-";
    Weight cost = -1;
    for (std::size_t ti = 0; ti < threadCounts.size(); ++ti) {
      PortfolioOptions po;
      po.threads = threadCounts[ti];
      po.base.budget = Budget::wallClock(300.0);
      PortfolioSolver solver(po);
      double best = 0.0;
      MaxSatResult r;
      for (int rep = 0; rep < reps; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        r = solver.solve(c.wcnf);
        const double ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
        if (rep == 0 || ms < best) best = ms;
      }
      wall[ti] = best;
      if (r.status != MaxSatStatus::Optimum) {
        std::cerr << c.name << " t" << threadCounts[ti]
                  << ": no optimum within budget\n";
        return 1;
      }
      if (cost < 0) cost = r.cost;
      if (r.cost != cost) {
        std::cerr << c.name << ": thread counts disagree on the optimum ("
                  << cost << " vs " << r.cost << " at t"
                  << threadCounts[ti] << ")\n";
        return 1;
      }
      if (threadCounts[ti] == 4) {
        winner = solver.lastWinnerEngine() + "#" +
                 std::to_string(solver.lastWinner());
      }
      benchjson::BenchRecord rec;
      rec.name = c.name + "-t" + std::to_string(threadCounts[ti]);
      rec.wallMs = best;
      rec.reps = reps;
      rec.counters.emplace_back("threads", threadCounts[ti]);
      rec.counters.emplace_back("cost", cost);
      rec.counters.emplace_back("sat_calls", r.satCalls);
      rec.counters.emplace_back("winner", solver.lastWinner());
      rec.counters.emplace_back("shared_exported",
                                r.satStats.shared_exported);
      rec.counters.emplace_back("shared_imported",
                                r.satStats.shared_imported);
      rec.counters.emplace_back("shared_export_drops",
                                r.satStats.shared_export_drops);
      rec.counters.emplace_back("shared_import_drains",
                                r.satStats.shared_import_drains);
      rec.counters.emplace_back("shared_import_scanned",
                                r.satStats.shared_import_scanned);
      records.push_back(std::move(rec));
    }
    // Clamp sub-resolution timings so a 0 ms sample cannot drive the
    // geomean's log to -inf.
    const double speedup =
        std::max(wall[0], 0.01) / std::max(wall[2], 0.01);
    speedups.push_back(speedup);
    std::cout << std::left << std::setw(14) << c.name << std::right
              << std::fixed << std::setprecision(1) << std::setw(10)
              << wall[0] << std::setw(10) << wall[1] << std::setw(10)
              << wall[2] << std::setw(9) << std::setprecision(2) << speedup
              << "  " << winner << "\n";
  }

  double logSum = 0.0;
  for (const double s : speedups) logSum += std::log(s);
  const double geomean =
      std::exp(logSum / static_cast<double>(speedups.size()));
  std::cout << "\ngeomean wall-time speedup (1 -> 4 workers): " << std::fixed
            << std::setprecision(2) << geomean << "x\n";

  // Cube-and-conquer sweep over the hard-rich cases. The all-soft
  // cases have no hard clauses to split (the splitter would emit one
  // empty root cube and delegate to wlinear), so only mix3sat measures
  // the subsystem: splitter + work stealing + incumbent pruning +
  // conflict-cadence clause exchange.
  std::cout << "\ncube-and-conquer (mix3sat):\n";
  std::cout << std::left << std::setw(14) << "instance" << std::right
            << std::setw(10) << "t1 ms" << std::setw(10) << "t2 ms"
            << std::setw(10) << "t4 ms" << std::setw(9) << "t1/t2"
            << std::setw(9) << "t1/t4" << std::setw(8) << "cubes"
            << "\n";
  std::vector<double> cubeSpeedup2;  // t1 / t2 per instance
  std::vector<double> cubeSpeedup4;  // t1 / t4 per instance
  for (const Case& c : cases) {
    if (c.name.rfind("mix3sat-", 0) != 0) continue;
    double wall[3] = {0, 0, 0};
    int numCubes = 0;
    Weight cost = -1;
    for (std::size_t ti = 0; ti < threadCounts.size(); ++ti) {
      CubeOptions co;
      co.threads = threadCounts[ti];
      co.base.budget = Budget::wallClock(300.0);
      CubeSolver solver(co);
      double best = 0.0;
      MaxSatResult r;
      for (int rep = 0; rep < reps; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        r = solver.solve(c.wcnf);
        const double ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
        if (rep == 0 || ms < best) best = ms;
      }
      wall[ti] = best;
      if (r.status != MaxSatStatus::Optimum) {
        std::cerr << "cubes-" << c.name << " t" << threadCounts[ti]
                  << ": no optimum within budget\n";
        return 1;
      }
      if (cost < 0) cost = r.cost;
      if (r.cost != cost) {
        std::cerr << "cubes-" << c.name
                  << ": worker counts disagree on the optimum (" << cost
                  << " vs " << r.cost << " at t" << threadCounts[ti] << ")\n";
        return 1;
      }
      numCubes = solver.lastNumCubes();
      benchjson::BenchRecord rec;
      rec.name = "cubes-" + c.name + "-t" + std::to_string(threadCounts[ti]);
      rec.wallMs = best;
      rec.reps = reps;
      rec.counters.emplace_back("threads", threadCounts[ti]);
      rec.counters.emplace_back("cost", cost);
      rec.counters.emplace_back("cubes", solver.lastNumCubes());
      rec.counters.emplace_back("steals", solver.lastSteals());
      rec.counters.emplace_back("sat_calls", r.satCalls);
      rec.counters.emplace_back("shared_exported",
                                r.satStats.shared_exported);
      rec.counters.emplace_back("shared_imported",
                                r.satStats.shared_imported);
      rec.counters.emplace_back("shared_export_drops",
                                r.satStats.shared_export_drops);
      rec.counters.emplace_back("shared_import_drains",
                                r.satStats.shared_import_drains);
      rec.counters.emplace_back("shared_import_scanned",
                                r.satStats.shared_import_scanned);
      records.push_back(std::move(rec));
    }
    const double s2 = std::max(wall[0], 0.01) / std::max(wall[1], 0.01);
    const double s4 = std::max(wall[0], 0.01) / std::max(wall[2], 0.01);
    cubeSpeedup2.push_back(s2);
    cubeSpeedup4.push_back(s4);
    std::cout << std::left << std::setw(14) << c.name << std::right
              << std::fixed << std::setprecision(1) << std::setw(10)
              << wall[0] << std::setw(10) << wall[1] << std::setw(10)
              << wall[2] << std::setw(9) << std::setprecision(2) << s2
              << std::setw(9) << s4 << std::setw(8) << numCubes << "\n";
  }
  const auto geo = [](const std::vector<double>& xs) {
    double ls = 0.0;
    for (const double x : xs) ls += std::log(x);
    return xs.empty() ? 1.0 : std::exp(ls / static_cast<double>(xs.size()));
  };
  std::cout << "cube geomean speedups: 1->2 workers " << std::fixed
            << std::setprecision(2) << geo(cubeSpeedup2) << "x, 1->4 workers "
            << geo(cubeSpeedup4) << "x\n";

  if (writeJson && !benchjson::writeJsonFile(jsonPath, "portfolio", records)) {
    return 1;
  }
  return 0;
}
