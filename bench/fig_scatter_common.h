/// \file fig_scatter_common.h
/// \brief Shared driver for the Figure 1-3 scatter-plot benches: run two
///        engines over the mixed suite, emit the per-instance runtime
///        pairs as CSV (the paper's scatter points) and a textual
///        summary of who wins where.

#pragma once

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "harness/runner.h"
#include "harness/suite.h"
#include "harness/tables.h"

namespace msu {

/// Runs the scatter experiment `ySolver` (y axis) vs `xSolver` (x axis;
/// msu4-v2 in all the paper's figures). Writes `csvPath` and prints the
/// summary. Returns a process exit code.
inline int runScatterFigure(const std::string& figureName,
                            const std::string& xSolver,
                            const std::string& ySolver,
                            const std::string& csvPath, int argc,
                            char** argv) {
  RunConfig config;
  config.timeoutSeconds = argc > 1 ? std::atof(argv[1]) : 1.0;
  SuiteParams sp;
  sp.sizeScale = argc > 2 ? std::atof(argv[2]) : 1.0;
  sp.perFamily = argc > 3 ? std::atoi(argv[3]) : 8;

  const std::vector<Instance> suite = buildMixedSuite(sp);
  std::cout << figureName << ": " << ySolver << " (y) vs " << xSolver
            << " (x), " << suite.size() << " instances, timeout "
            << config.timeoutSeconds << " s\n";

  const std::vector<std::string> solvers{xSolver, ySolver};
  const std::vector<RunRecord> records = runMatrix(solvers, suite, config);
  const std::vector<ScatterPoint> points =
      makeScatter(records, xSolver, ySolver);

  std::ofstream csv(csvPath);
  if (csv) {
    writeScatterCsv(csv, points, xSolver, ySolver);
    std::cout << "wrote " << points.size() << " points to " << csvPath
              << "\n";
  }
  printScatterSummary(std::cout, points, xSolver, ySolver);

  const int bad = crossCheckOptima(records, std::cerr);
  if (bad > 0) {
    std::cerr << bad << " optimum disagreements!\n";
    return 1;
  }
  return 0;
}

}  // namespace msu
