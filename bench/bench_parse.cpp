/// \file bench_parse.cpp
/// \brief Huge-instance ingest A/B: every case runs twice — `off` = the
///        legacy iostream tokenizer parsers (readDimacsCnfLegacy /
///        readDimacsWcnfLegacy / readOpbLegacy) with per-clause
///        incremental loading, `on` = the zero-copy fastparse core with
///        the solver's bulk-load path — over byte-identical synthetic
///        documents (gen/bigfile.h). check_regression.py --mode ab
///        gates the committed bench/BENCH_parse.json: the off/on
///        speedup is the tentpole claim (the committed 100 MB record
///        must show >= 5x; see bench/README.md "Parse pipeline").
///
/// Usage: bench_parse [--target-mb M] [--reps N] [--json [path]]
///
/// Cases:
///  * parse-cnf / parse-wcnf / parse-opb — pure parser wall over an
///    in-memory document (the pipe/borrow path; no disk in the loop).
///  * file-cnf — document on disk: legacy ifstream tokenizer vs the
///    mmap'd loadDimacsCnf.
///  * pipeline-cnf — text to propagated solver: legacy parse into a
///    CnfFormula + per-clause addClause vs fastLoadDimacsCnfInto
///    (lexer straight into the bulk-load arena, no intermediate
///    formula). The end-to-end ingest latency a job pays before its
///    first oracle call.
///
/// Both legs must agree on the parsed formula (clause/var counts and a
/// literal checksum) — the driver aborts otherwise. Records carry no
/// sat_calls counter on purpose: the ab gate must compare raw wall.

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_json.h"
#include "cnf/dimacs.h"
#include "cnf/fastparse.h"
#include "gen/bigfile.h"
#include "obs/metrics.h"
#include "pbo/opb.h"
#include "sat/solver.h"

namespace {

using namespace msu;

struct RunOut {
  double secs = 0.0;
  std::int64_t clauses = 0;
  std::int64_t vars = 0;
  std::int64_t memBytes = 0;
  std::int64_t checksum = 0;
};

struct Case {
  std::string name;
  std::int64_t inputBytes = 0;
  std::function<RunOut()> off;
  std::function<RunOut()> on;
};

double since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::int64_t checksumCnf(const CnfFormula& f) {
  std::int64_t h = f.numVars();
  for (const Clause& c : f.clauses()) {
    for (const Lit p : c) h = h * 1000003 + p.index();
  }
  return h;
}

std::int64_t checksumWcnf(const WcnfFormula& f) {
  std::int64_t h = f.numVars();
  for (const Clause& c : f.hard()) {
    for (const Lit p : c) h = h * 1000003 + p.index();
  }
  for (const SoftClause& s : f.soft()) {
    h = h * 31 + s.weight;
    for (const Lit p : s.lits) h = h * 1000003 + p.index();
  }
  return h;
}

std::int64_t checksumPbo(const PboProblem& f) {
  std::int64_t h = f.numVars;
  for (const PbTerm& t : f.objective) h = h * 31 + t.coeff + t.lit.index();
  for (const PbConstraint& c : f.constraints) {
    h = h * 31 + c.bound;
    for (const PbTerm& t : c.terms) h = h * 1000003 + t.coeff + t.lit.index();
  }
  return h;
}

RunOut outOfCnf(double secs, const CnfFormula& f) {
  return {secs, f.numClauses(), f.numVars(), f.memBytesEstimate(),
          checksumCnf(f)};
}

/// Solver-derived summary, comparable across build paths.
RunOut outOfSolver(double secs, const Solver& s) {
  RunOut out;
  out.secs = secs;
  out.clauses = s.numClauses();
  out.vars = s.numVars();
  out.memBytes = s.memBytesEstimate();
  out.checksum =
      out.clauses * 1000003 + out.vars * 31 + (s.okay() ? 1 : 0);
  return out;
}

std::vector<Case> buildCases(std::int64_t targetBytes,
                             const std::string& tmpDir) {
  BigFileParams p;
  p.target_bytes = targetBytes;
  const auto cnfText = std::make_shared<std::string>(makeBigCnfText(p));
  const auto wcnfText = std::make_shared<std::string>(makeBigWcnfText(p));
  const auto opbText = std::make_shared<std::string>(makeBigOpbText(p));

  const std::string cnfPath = tmpDir + "/bench_parse_big.cnf";
  {
    std::ofstream f(cnfPath, std::ios::binary);
    f.write(cnfText->data(), static_cast<std::streamsize>(cnfText->size()));
  }

  std::vector<Case> cases;
  cases.push_back(
      {"parse-cnf", static_cast<std::int64_t>(cnfText->size()),
       [cnfText] {
         const auto t0 = std::chrono::steady_clock::now();
         std::istringstream in(*cnfText);
         const CnfFormula f = readDimacsCnfLegacy(in);
         return outOfCnf(since(t0), f);
       },
       [cnfText] {
         const auto t0 = std::chrono::steady_clock::now();
         const CnfFormula f = parseDimacsCnf(*cnfText);
         return outOfCnf(since(t0), f);
       }});
  cases.push_back(
      {"parse-wcnf", static_cast<std::int64_t>(wcnfText->size()),
       [wcnfText] {
         const auto t0 = std::chrono::steady_clock::now();
         std::istringstream in(*wcnfText);
         const WcnfFormula f = readDimacsWcnfLegacy(in);
         return RunOut{since(t0), f.numHard() + f.numSoft(), f.numVars(),
                       f.memBytesEstimate(), checksumWcnf(f)};
       },
       [wcnfText] {
         const auto t0 = std::chrono::steady_clock::now();
         const WcnfFormula f = parseDimacsWcnf(*wcnfText);
         return RunOut{since(t0), f.numHard() + f.numSoft(), f.numVars(),
                       f.memBytesEstimate(), checksumWcnf(f)};
       }});
  cases.push_back(
      {"parse-opb", static_cast<std::int64_t>(opbText->size()),
       [opbText] {
         const auto t0 = std::chrono::steady_clock::now();
         std::istringstream in(*opbText);
         const PboProblem f = readOpbLegacy(in);
         return RunOut{since(t0),
                       static_cast<std::int64_t>(f.constraints.size()),
                       f.numVars, 0, checksumPbo(f)};
       },
       [opbText] {
         const auto t0 = std::chrono::steady_clock::now();
         const PboProblem f = parseOpb(*opbText);
         return RunOut{since(t0),
                       static_cast<std::int64_t>(f.constraints.size()),
                       f.numVars, 0, checksumPbo(f)};
       }});
  cases.push_back(
      {"file-cnf", static_cast<std::int64_t>(cnfText->size()),
       [cnfPath] {
         const auto t0 = std::chrono::steady_clock::now();
         std::ifstream in(cnfPath, std::ios::binary);
         const CnfFormula f = readDimacsCnfLegacy(in);
         return outOfCnf(since(t0), f);
       },
       [cnfPath] {
         const auto t0 = std::chrono::steady_clock::now();
         const CnfFormula f = loadDimacsCnf(cnfPath);  // mmap path
         return outOfCnf(since(t0), f);
       }});
  cases.push_back(
      {"pipeline-cnf", static_cast<std::int64_t>(cnfText->size()),
       [cnfText] {
         const auto t0 = std::chrono::steady_clock::now();
         std::istringstream in(*cnfText);
         const CnfFormula f = readDimacsCnfLegacy(in);
         Solver::Options so;
         so.bulk_load = false;
         Solver s(so);
         while (s.numVars() < f.numVars()) static_cast<void>(s.newVar());
         for (const Clause& c : f.clauses()) {
           if (!s.addClause(c)) break;
         }
         return outOfSolver(since(t0), s);
       },
       [cnfText] {
         const auto t0 = std::chrono::steady_clock::now();
         Solver s;
         static_cast<void>(fastLoadDimacsCnfInto(
             InputBuffer::borrow(cnfText->data(), cnfText->size()), s));
         return outOfSolver(since(t0), s);
       }});
  return cases;
}

}  // namespace

int main(int argc, char** argv) {
  int reps = 3;
  double targetMb = 16.0;
  bool json = false;
  std::string jsonPath = "BENCH_parse.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--reps" && i + 1 < argc) {
      reps = std::max(1, std::atoi(argv[++i]));
    } else if (arg == "--target-mb" && i + 1 < argc) {
      targetMb = std::atof(argv[++i]);
    } else if (arg == "--json") {
      json = true;
      if (i + 1 < argc && std::string(argv[i + 1]).ends_with(".json")) {
        jsonPath = argv[++i];
      }
    } else {
      std::cerr << "usage: bench_parse [--target-mb M] [--reps N] "
                   "[--json [path]]\n";
      return 2;
    }
  }

  const std::string tmpDir = std::filesystem::temp_directory_path().string();
  const auto targetBytes = static_cast<std::int64_t>(targetMb * 1048576.0);
  const std::vector<Case> cases = buildCases(targetBytes, tmpDir);
  std::vector<benchjson::BenchRecord> records;

  std::cout << std::left << std::setw(16) << "case" << std::right
            << std::setw(10) << "MB" << std::setw(11) << "off[ms]"
            << std::setw(11) << "on[ms]" << std::setw(10) << "speedup"
            << '\n';

  double logSum = 0.0;
  for (const Case& c : cases) {
    RunOut best[2];
    for (int mode = 0; mode < 2; ++mode) {
      for (int r = 0; r < reps; ++r) {
        const RunOut out = mode == 0 ? c.off() : c.on();
        if (r == 0 || out.secs < best[mode].secs) best[mode] = out;
      }
    }
    if (best[0].checksum != best[1].checksum ||
        best[0].clauses != best[1].clauses || best[0].vars != best[1].vars) {
      std::cerr << c.name << ": parser disagreement (checksum "
                << best[0].checksum << " vs " << best[1].checksum << ")\n";
      return 1;
    }
    const double speedup = best[0].secs / best[1].secs;
    logSum += std::log(speedup);

    for (int mode = 0; mode < 2; ++mode) {
      benchjson::BenchRecord rec;
      rec.name = c.name + (mode == 0 ? "/off" : "/on");
      rec.wallMs = best[mode].secs * 1e3;
      rec.reps = reps;
      rec.counters = {
          {"bytes", c.inputBytes},
          {"clauses", best[mode].clauses},
          {"vars", best[mode].vars},
          {"mem_bytes", best[mode].memBytes},
          {"peak_rss_bytes", obs::peakRssBytes()},
      };
      records.push_back(rec);
    }

    std::cout << std::left << std::setw(16) << c.name << std::right
              << std::setw(10) << std::fixed << std::setprecision(1)
              << static_cast<double>(c.inputBytes) / 1048576.0
              << std::setw(11) << std::setprecision(2) << best[0].secs * 1e3
              << std::setw(11) << best[1].secs * 1e3 << std::setw(9)
              << std::setprecision(2) << speedup << "x\n";
  }

  std::cout << "\ngeomean fastparse speedup: " << std::setprecision(2)
            << std::exp(logSum / static_cast<double>(cases.size())) << "x\n";

  std::remove((tmpDir + "/bench_parse_big.cnf").c_str());

  if (json) {
    if (!benchjson::writeJsonFile(jsonPath, "parse", records)) return 1;
    std::cout << "wrote " << jsonPath << '\n';
  }
  return 0;
}
