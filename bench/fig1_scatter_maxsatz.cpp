/// \file fig1_scatter_maxsatz.cpp
/// \brief Figure 1 of the paper: scatter plot of maxsatz (y) vs msu4-v2
///        (x) runtimes. Paper shape: almost every point far above the
///        diagonal — maxsatz only competitive on instances both solve in
///        well under 0.1 s.
///
/// Usage: fig1_scatter_maxsatz [timeout_seconds] [size_scale] [per_family]

#include "fig_scatter_common.h"

int main(int argc, char** argv) {
  return msu::runScatterFigure("Figure 1", "msu4-v2", "maxsatz",
                               "fig1_scatter.csv", argc, argv);
}
