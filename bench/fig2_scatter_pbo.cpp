/// \file fig2_scatter_pbo.cpp
/// \brief Figure 2 of the paper: scatter plot of the PBO formulation (y)
///        vs msu4-v2 (x). Paper shape: msu4-v2 wins broadly, with a
///        visible set of pbo wins (attributed there to minisat+'s newer
///        MiniSat; our substrate is identical for both, so expect fewer).
///
/// Usage: fig2_scatter_pbo [timeout_seconds] [size_scale] [per_family]

#include "fig_scatter_common.h"

int main(int argc, char** argv) {
  return msu::runScatterFigure("Figure 2", "msu4-v2", "pbo",
                               "fig2_scatter.csv", argc, argv);
}
