/// \file ablation_preprocess.cpp
/// \brief Preprocessing ablation: does SatELite-style simplification of
///        the hard clauses (subsumption + self-subsuming resolution +
///        bounded variable elimination, soft variables frozen) help the
///        MaxSAT engines? MiniSat 1.14 — the paper's substrate — shipped
///        with exactly this preprocessor; the paper ran the plain
///        solver. Reported per engine: aborted counts and total time
///        with and without preprocessing, plus clause/variable deltas.
///
/// Usage: ablation_preprocess [timeout_seconds] [per_family]

#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <random>

#include "gen/debug.h"
#include "gen/graphs.h"
#include "harness/runner.h"
#include "harness/suite.h"
#include "harness/tables.h"
#include "simp/simp.h"

namespace {

/// Partial-MaxSAT suite (plenty of hard clauses for the preprocessor to
/// chew on): design debugging, graph coloring, vertex cover, timetables.
std::vector<msu::Instance> buildPartialSuite(int perFamily,
                                             std::uint64_t seed) {
  using namespace msu;
  std::vector<Instance> suite;
  std::mt19937_64 rng(seed);
  for (int i = 0; i < perFamily; ++i) {
    DebugParams dp;
    dp.circuit.numInputs = 6;
    dp.circuit.numGates = 40 + 10 * i;
    dp.circuit.seed = rng();
    dp.numVectors = 3;
    dp.seed = rng();
    suite.push_back({"debug-" + std::to_string(i), "debug",
                     designDebugInstance(dp, /*partial=*/true).wcnf});
  }
  for (int i = 0; i < perFamily; ++i) {
    const Graph g = ringWithChords(14 + 2 * i, 10 + i, rng());
    suite.push_back(
        {"coloring-" + std::to_string(i), "coloring", coloringInstance(g, 3)});
  }
  for (int i = 0; i < perFamily; ++i) {
    const Graph g = randomGraph(16 + i, 0.3, rng());
    suite.push_back({"vcover-" + std::to_string(i), "vcover",
                     vertexCoverInstance(g)});
  }
  for (int i = 0; i < perFamily; ++i) {
    TimetableParams tp;
    tp.numEvents = 14 + 2 * i;
    tp.numSlots = 4;
    tp.seed = rng();
    suite.push_back({"timetable-" + std::to_string(i), "timetable",
                     timetablingInstance(tp)});
  }
  return suite;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace msu;

  RunConfig config;
  config.timeoutSeconds = argc > 1 ? std::atof(argv[1]) : 1.0;
  const int perFamily = argc > 2 ? std::atoi(argv[2]) : 5;

  const std::vector<Instance> plain = buildPartialSuite(perFamily, 20080310);

  // Preprocessed twin suite.
  std::vector<Instance> simplified;
  std::int64_t hardBefore = 0;
  std::int64_t hardAfter = 0;
  std::int64_t varsEliminated = 0;
  for (const Instance& inst : plain) {
    auto [wcnf, pre] = preprocessHard(inst.wcnf);
    hardBefore += inst.wcnf.numHard();
    hardAfter += wcnf.numHard();
    varsEliminated += pre.stats().varsEliminated;
    simplified.push_back({inst.name, inst.family, std::move(wcnf)});
  }
  std::cout << "preprocessing ablation, " << plain.size()
            << " instances, timeout " << config.timeoutSeconds << " s\n";
  std::cout << "hard clauses " << hardBefore << " -> " << hardAfter << " ("
            << std::fixed << std::setprecision(1)
            << (hardBefore > 0
                    ? 100.0 * static_cast<double>(hardBefore - hardAfter) /
                          static_cast<double>(hardBefore)
                    : 0.0)
            << "% removed), " << varsEliminated << " variables eliminated\n\n";

  const std::vector<std::string> solvers{"msu4-v2", "msu3", "oll", "pbo"};
  std::vector<RunRecord> baseline = runMatrix(solvers, plain, config);
  std::vector<RunRecord> preprocessed = runMatrix(solvers, simplified, config);

  // Tag and merge so the aborted table shows both columns side by side.
  std::vector<std::string> columns;
  std::vector<RunRecord> merged;
  for (const std::string& s : solvers) {
    columns.push_back(s);
    columns.push_back(s + "+simp");
  }
  for (RunRecord r : baseline) merged.push_back(std::move(r));
  for (RunRecord r : preprocessed) {
    r.solver += "+simp";
    merged.push_back(std::move(r));
  }
  printAbortedTable(std::cout, merged, columns,
                    "Engines with and without hard-clause preprocessing");

  // Optima must agree between the twin suites (same name = same optimum).
  const int bad = crossCheckOptima(merged, std::cerr);
  return bad > 0 ? 1 : 0;
}
