/// \file micro_sat.cpp
/// \brief Micro-benchmarks of the CDCL substrate: end-to-end solving
///        throughput on the instance families the MaxSAT engines stress
///        (miters, BMC, pigeonhole, random), plus assumption-based core
///        extraction latency.
///
/// Usage: micro_sat [--reps N] [--json [path]] [--baseline path]
///                  [--inprocess] [--reuse-trail] [--restart luby|ema]
///
///   --json      write BENCH_micro_sat.json (per-benchmark wall time and
///               propagation counters) for the PR-over-PR perf trajectory
///   --baseline  compare against a previously recorded JSON (defaults to
///               bench/BASELINE_micro_sat.json when present)
///   --inprocess force Options::inprocess on regardless of its default
///               (the A/B lever behind the decision record in
///               bench/README.md)
///   --reuse-trail
///               enable warm-started solves (Options::reuse_trail).
///               OFF here regardless of the solver default: the up-*
///               cases are the regression gate's machine-speed probes
///               and must keep measuring cold re-propagation (warm
///               waves are near-free and measured by micro_incremental
///               instead).
///   --restart   restart trajectory A/B (Options::ema_restarts);
///               default luby
///
/// Each benchmark runs `reps` times; the best wall time is reported so
/// one-off scheduler noise does not pollute the trajectory.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "bench_json.h"
#include "gen/bmc.h"
#include "gen/miter.h"
#include "gen/pigeonhole.h"
#include "gen/random_cnf.h"
#include "sat/solver.h"

namespace {

using namespace msu;

struct Case {
  std::string name;
  CnfFormula f;
  lbool expected;
  bool coreExtraction = false;
  /// > 0: incremental UP-throughput mode — solve this many times under
  /// the assumption x0 on ONE solver, so every solve re-propagates the
  /// whole implication chain (the MaxSAT engines' incremental pattern).
  int waves = 0;
};

std::vector<Case> buildCases() {
  std::vector<Case> cases;
  for (const int gates : {400, 1200}) {
    RandomCircuitParams p;
    p.numInputs = 10;
    p.numGates = gates;
    p.numOutputs = 3;
    p.seed = 11;
    cases.push_back({"miter-" + std::to_string(gates),
                     equivalenceInstance(p, 99), lbool::False});
  }
  for (const int steps : {30, 60}) {
    cases.push_back({"bmc-" + std::to_string(steps),
                     bmcCounterInstance({.bits = 6, .steps = steps}),
                     lbool::False});
  }
  for (const int holes : {7, 8}) {
    cases.push_back({"php-" + std::to_string(holes),
                     pigeonhole(holes + 1, holes), lbool::False});
  }
  for (const int n : {250, 300}) {
    cases.push_back({"rand3sat-" + std::to_string(n),
                     randomKSat({.numVars = n,
                                 .numClauses = static_cast<int>(n * 4.0),
                                 .clauseLen = 3,
                                 .seed = 17}),
                     lbool::True});
  }
  for (const int n : {80, 140}) {
    cases.push_back({"core-" + std::to_string(n), randomUnsat3Sat(n, 6.0, 23),
                     lbool::False, /*coreExtraction=*/true});
  }
  // Pure unit-propagation throughput, free of search-trajectory noise:
  // repeated waves of forced implications, deterministic and
  // conflict-free, so wall time here IS propagation time.
  {
    // Binary implication chain: x_i -> x_{i+1}, driven by assuming x0.
    const int n = 60000;
    CnfFormula f(n + 1);
    for (int i = 0; i < n; ++i) {
      f.addClause({negLit(i), posLit(i + 1)});
    }
    cases.push_back({"up-bin-60k", std::move(f), lbool::True,
                     /*coreExtraction=*/false, /*waves=*/50});
  }
  {
    // Long-clause chain: (~x_i | ~y1 | ~y2 | ~y3 | ~y4 | x_{i+1}) with
    // all y true, so every step scans a 6-literal clause.
    const int n = 30000;
    CnfFormula f(n + 5);
    const Var y0 = n + 1;
    for (int i = 0; i < n; ++i) {
      f.addClause({negLit(i), negLit(y0), negLit(y0 + 1), negLit(y0 + 2),
                   negLit(y0 + 3), posLit(i + 1)});
    }
    for (int k = 0; k < 4; ++k) f.addClause({posLit(y0 + k)});
    cases.push_back({"up-long-30k", std::move(f), lbool::True,
                     /*coreExtraction=*/false, /*waves=*/50});
  }
  return cases;
}

bool g_force_inprocess = false;
bool g_reuse_trail = false;  // see the file comment: probes stay cold
bool g_ema_restarts = false;

/// One full run of a case on a fresh solver; returns wall seconds.
double runOnce(const Case& c, SolverStats& statsOut) {
  const auto t0 = std::chrono::steady_clock::now();
  Solver::Options opts;
  if (g_force_inprocess) opts.inprocess = true;
  opts.reuse_trail = g_reuse_trail;
  opts.ema_restarts = g_ema_restarts;
  Solver s(opts);
  // UP-throughput cases keep the chain variables out of the decision
  // heap so wall time measures propagation, not heap churn.
  while (s.numVars() < c.f.numVars()) {
    static_cast<void>(s.newVar(c.waves == 0 || s.numVars() == 0));
  }
  lbool status = lbool::Undef;
  if (c.waves > 0) {
    for (const Clause& cl : c.f.clauses()) {
      if (!s.addClause(cl)) break;
    }
    const std::vector<Lit> assumps{posLit(0)};
    for (int w = 0; w < c.waves; ++w) {
      status = s.solve(assumps);
      if (status != c.expected) break;
    }
  } else if (c.coreExtraction) {
    // Selector-per-clause core extraction — the exact operation inside
    // every msu4 UNSAT iteration.
    std::vector<Lit> assumps;
    for (const Clause& cl : c.f.clauses()) {
      const Var sel = s.newVar();
      Clause aug = cl;
      aug.push_back(posLit(sel));
      static_cast<void>(s.addClause(aug));
      assumps.push_back(negLit(sel));
    }
    status = s.solve(assumps);
  } else {
    bool ok = true;
    for (const Clause& cl : c.f.clauses()) {
      if (!s.addClause(cl)) {
        ok = false;
        break;
      }
    }
    status = ok ? s.solve() : lbool::False;
  }
  const double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  if (status != c.expected) {
    std::cerr << c.name << ": unexpected status\n";
    std::exit(1);
  }
  statsOut = s.stats();
  return secs;
}

std::vector<std::pair<std::string, std::int64_t>> counters(
    const SolverStats& st) {
  std::vector<std::pair<std::string, std::int64_t>> out;
  st.forEachField(
      [&out](const char* name, std::int64_t v) { out.emplace_back(name, v); });
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  int reps = 3;
  bool json = false;
  std::string jsonPath = "BENCH_micro_sat.json";
  std::string baselinePath;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--reps" && i + 1 < argc) {
      reps = std::max(1, std::atoi(argv[++i]));
    } else if (arg == "--json") {
      json = true;
      // Only a *.json argument is an output path, so `--json` followed
      // by another option (or a positional) is never misparsed.
      if (i + 1 < argc && std::string(argv[i + 1]).ends_with(".json")) {
        jsonPath = argv[++i];
      }
    } else if (arg == "--baseline" && i + 1 < argc) {
      baselinePath = argv[++i];
    } else if (arg == "--inprocess") {
      g_force_inprocess = true;
    } else if (arg == "--reuse-trail") {
      g_reuse_trail = true;
    } else if (arg == "--restart" && i + 1 < argc) {
      const std::string mode = argv[++i];
      if (mode == "ema") {
        g_ema_restarts = true;
      } else if (mode != "luby") {
        std::cerr << "--restart wants luby or ema\n";
        return 2;
      }
    } else {
      std::cerr << "usage: micro_sat [--reps N] [--json [path]] "
                   "[--baseline path] [--inprocess] [--reuse-trail] "
                   "[--restart luby|ema]\n";
      return 2;
    }
  }
  if (baselinePath.empty()) {
    for (const char* candidate :
         {"bench/BASELINE_micro_sat.json", "../bench/BASELINE_micro_sat.json",
          "BASELINE_micro_sat.json"}) {
      if (std::ifstream(candidate)) {
        baselinePath = candidate;
        break;
      }
    }
  }
  const benchjson::Baseline baseline = benchjson::loadBaseline(baselinePath);

  const std::vector<Case> cases = buildCases();
  std::vector<benchjson::BenchRecord> records;

  std::cout << std::left << std::setw(14) << "benchmark" << std::right
            << std::setw(11) << "wall[ms]" << std::setw(11) << "conflicts"
            << std::setw(13) << "props" << std::setw(12) << "conf/s"
            << (baseline.empty() ? "" : "    vs-base") << '\n';

  double logRatioSum = 0.0;
  int ratioCount = 0;
  for (const Case& c : cases) {
    double best = 1e300;
    SolverStats st;
    for (int r = 0; r < reps; ++r) {
      SolverStats runStats;
      best = std::min(best, runOnce(c, runStats));
      st = runStats;
    }
    benchjson::BenchRecord rec;
    rec.name = c.name;
    rec.wallMs = best * 1e3;
    rec.reps = reps;
    rec.counters = counters(st);
    records.push_back(rec);

    std::cout << std::left << std::setw(14) << c.name << std::right
              << std::setw(11) << std::fixed << std::setprecision(2)
              << rec.wallMs << std::setw(11) << st.conflicts << std::setw(13)
              << st.propagations << std::setw(12) << std::setprecision(0)
              << (best > 0 ? static_cast<double>(st.conflicts) / best : 0.0);
    const auto it = baseline.find(c.name);
    if (it != baseline.end() && it->second > 0 && rec.wallMs > 0) {
      const double speedup = it->second / rec.wallMs;
      std::cout << "    " << std::setprecision(2) << speedup << "x";
      logRatioSum += std::log(speedup);
      ++ratioCount;
    }
    std::cout << '\n';
  }

  if (ratioCount > 0) {
    std::cout << "\ngeomean speedup vs " << baselinePath << ": "
              << std::setprecision(3) << std::exp(logRatioSum / ratioCount)
              << "x\n";
  }
  if (json) {
    if (!benchjson::writeJsonFile(jsonPath, "micro_sat", records)) return 1;
    std::cout << "wrote " << jsonPath << '\n';
  }
  return 0;
}
