/// \file micro_sat.cpp
/// \brief google-benchmark micro-benchmarks of the CDCL substrate:
///        end-to-end solving throughput on the instance families the
///        MaxSAT engines stress (miters, BMC, pigeonhole, random), plus
///        assumption-based core extraction latency.

#include <benchmark/benchmark.h>

#include "gen/bmc.h"
#include "gen/miter.h"
#include "gen/pigeonhole.h"
#include "gen/random_cnf.h"
#include "sat/solver.h"

namespace {

using namespace msu;

void load(Solver& s, const CnfFormula& f) {
  while (s.numVars() < f.numVars()) static_cast<void>(s.newVar());
  for (const Clause& c : f.clauses()) {
    if (!s.addClause(c)) return;
  }
}

void solveFormula(benchmark::State& state, const CnfFormula& f,
                  lbool expected) {
  std::int64_t conflicts = 0;
  std::int64_t propagations = 0;
  for (auto _ : state) {
    Solver s;
    load(s, f);
    const lbool st = s.solve();
    if (st != expected) state.SkipWithError("unexpected status");
    conflicts = s.stats().conflicts;
    propagations = s.stats().propagations;
  }
  state.counters["conflicts"] = static_cast<double>(conflicts);
  state.counters["props"] = static_cast<double>(propagations);
}

void BM_Solve_Miter(benchmark::State& state) {
  RandomCircuitParams p;
  p.numInputs = 10;
  p.numGates = static_cast<int>(state.range(0));
  p.numOutputs = 3;
  p.seed = 11;
  const CnfFormula f = equivalenceInstance(p, 99);
  solveFormula(state, f, lbool::False);
}
BENCHMARK(BM_Solve_Miter)->Arg(100)->Arg(300)->Unit(benchmark::kMillisecond);

void BM_Solve_Bmc(benchmark::State& state) {
  const CnfFormula f = bmcCounterInstance(
      {.bits = 6, .steps = static_cast<int>(state.range(0))});
  solveFormula(state, f, lbool::False);
}
BENCHMARK(BM_Solve_Bmc)->Arg(10)->Arg(25)->Unit(benchmark::kMillisecond);

void BM_Solve_Pigeonhole(benchmark::State& state) {
  const int holes = static_cast<int>(state.range(0));
  const CnfFormula f = pigeonhole(holes + 1, holes);
  solveFormula(state, f, lbool::False);
}
BENCHMARK(BM_Solve_Pigeonhole)->Arg(6)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_Solve_RandomSat(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const CnfFormula f = randomKSat({.numVars = n,
                                   .numClauses = static_cast<int>(n * 4.0),
                                   .clauseLen = 3,
                                   .seed = 17});
  solveFormula(state, f, lbool::True);
}
BENCHMARK(BM_Solve_RandomSat)->Arg(100)->Arg(200)->Unit(benchmark::kMillisecond);

void BM_CoreExtraction(benchmark::State& state) {
  // Selector-per-clause core extraction on an over-constrained formula —
  // the exact operation inside every msu4 UNSAT iteration.
  const int n = static_cast<int>(state.range(0));
  const CnfFormula f = randomUnsat3Sat(n, 6.0, 23);
  std::size_t coreSize = 0;
  for (auto _ : state) {
    Solver s;
    while (s.numVars() < f.numVars()) static_cast<void>(s.newVar());
    std::vector<Lit> assumps;
    for (const Clause& c : f.clauses()) {
      const Var sel = s.newVar();
      Clause aug = c;
      aug.push_back(posLit(sel));
      static_cast<void>(s.addClause(aug));
      assumps.push_back(negLit(sel));
    }
    if (s.solve(assumps) != lbool::False) {
      state.SkipWithError("expected unsat");
    }
    coreSize = s.core().size();
    benchmark::DoNotOptimize(coreSize);
  }
  state.counters["core_size"] = static_cast<double>(coreSize);
}
BENCHMARK(BM_CoreExtraction)->Arg(40)->Arg(80)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
