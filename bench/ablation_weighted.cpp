/// \file ablation_weighted.cpp
/// \brief Weighted-MaxSAT engine ablation (beyond the paper's unweighted
///        evaluation; §5's "further development" of the msu family):
///        native weighted core-guided search (oll), weighted Fu-Malik
///        (wmsu1), weighted linear search over both PB encodings, and
///        msu4 through weight duplication, on weighted scheduling /
///        max-cut / coloring suites.
///
/// Usage: ablation_weighted [timeout_seconds] [per_family]

#include <cstdlib>
#include <iostream>

#include "harness/runner.h"
#include "harness/suite.h"
#include "harness/tables.h"

int main(int argc, char** argv) {
  using namespace msu;

  RunConfig config;
  config.timeoutSeconds = argc > 1 ? std::atof(argv[1]) : 1.0;
  SuiteParams sp;
  sp.perFamily = argc > 2 ? std::atoi(argv[2]) : 6;

  const std::vector<Instance> suite = buildWeightedSuite(sp);
  std::cout << "weighted-engine ablation, " << suite.size()
            << " instances, timeout " << config.timeoutSeconds << " s\n\n";

  const std::vector<std::string> solvers{"oll", "bmo", "wmsu1", "wlinear",
                                         "wlinear-adder", "msu4-v2"};
  const std::vector<RunRecord> records = runMatrix(solvers, suite, config);
  printAbortedTable(std::cout, records, solvers,
                    "Weighted engines (msu4-v2 = duplication reduction)");
  printFamilyBreakdown(std::cout, records, solvers);

  const int bad = crossCheckOptima(records, std::cerr);
  return bad > 0 ? 1 : 0;
}
