/// \file ablation_inprocess.cpp
/// \brief Inprocessing ablation: does keeping the incremental oracle's
///        clause database irredundant — and, since round two, shrinking
///        its variable set — between solve calls pay for itself on the
///        MaxSAT engines' workloads?
///
/// Runs msu4-v2 over the mixed suite as paired A/B cases in the format
/// check_regression.py --mode ab gates: `all/off` vs `all/on` measures
/// the whole subsystem, and each per-pass case (`subsume`, `vivify`,
/// `bve`, `scc`, `probe`) measures one pass's marginal value — its
/// `/off` leg is the full configuration with exactly that pass
/// disabled, its `/on` leg the full configuration. Records deliberately
/// carry no `sat_calls` counter, so the gate compares raw wall time
/// (the two legs solve identical instances end to end). The decision
/// record for Options::inprocess and the per-pass defaults lives in
/// bench/README.md and points here.
///
/// Usage: ablation_inprocess [--timeout S] [--size-scale X]
///                           [--per-family N] [--reps N] [--json [path]]

#include <chrono>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "bench_json.h"
#include "core/msu4.h"
#include "harness/suite.h"

namespace {

struct Variant {
  std::string name;  ///< A/B record name, e.g. "bve/off"
  msu::Solver::Options sat;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace msu;

  double timeout = 1.0;
  SuiteParams sp;
  sp.sizeScale = 0.5;
  sp.perFamily = 4;
  int reps = 3;
  bool json = false;
  std::string jsonPath = "BENCH_ablation_inprocess.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--timeout") {
      timeout = std::atof(value());
    } else if (arg == "--size-scale") {
      sp.sizeScale = std::atof(value());
    } else if (arg == "--per-family") {
      sp.perFamily = std::atoi(value());
    } else if (arg == "--reps") {
      reps = std::atoi(value());
    } else if (arg == "--json") {
      json = true;
      if (i + 1 < argc && std::string(argv[i + 1]).ends_with(".json")) {
        jsonPath = argv[++i];
      }
    } else {
      std::cerr << "unknown argument: " << arg << '\n';
      std::cerr << "usage: ablation_inprocess [--timeout S] [--size-scale X]"
                   " [--per-family N] [--reps N] [--json [path]]\n";
      return 2;
    }
  }
  if (reps < 1) reps = 1;

  const std::vector<Instance> suite = buildMixedSuite(sp);

  // The full round-two configuration every `/on` leg runs.
  Solver::Options on;
  on.inprocess = true;

  std::vector<Variant> variants;
  const auto addCase = [&variants, &on](const std::string& name,
                                        const Solver::Options& off) {
    variants.push_back({name + "/off", off});
    variants.push_back({name + "/on", on});
  };
  addCase("all", {});  // whole subsystem: off leg never runs a pass
  {
    Solver::Options o = on;
    o.inprocess_occ_limit = 0;  // subsumption/strengthening stage
    addCase("subsume", o);
  }
  {
    Solver::Options o = on;
    o.inprocess_viv_props = 0;
    addCase("vivify", o);
  }
  {
    Solver::Options o = on;
    o.inprocess_bve_occ_limit = 0;
    addCase("bve", o);
  }
  {
    Solver::Options o = on;
    o.inprocess_scc = false;
    addCase("scc", o);
  }
  {
    Solver::Options o = on;
    o.inprocess_probe_props = 0;
    addCase("probe", o);
  }

  std::cout << "Inprocessing ablation under msu4-v2, " << suite.size()
            << " instances, timeout " << timeout << " s, best of " << reps
            << " rep(s)\n\n";
  std::cout << std::left << std::setw(14) << "case" << std::right
            << std::setw(9) << "aborted" << std::setw(9) << "solved"
            << std::setw(9) << "passes" << std::setw(10) << "subsumed"
            << std::setw(9) << "elim" << std::setw(9) << "subst"
            << std::setw(9) << "hbr" << std::setw(12) << "best t[s]" << '\n';

  std::vector<benchjson::BenchRecord> records;
  for (const Variant& v : variants) {
    double best = 0.0;
    SolverStats agg;
    int aborted = 0;
    int solved = 0;
    for (int rep = 0; rep < reps; ++rep) {
      SolverStats repAgg;
      int repAborted = 0;
      int repSolved = 0;
      double total = 0.0;
      for (const Instance& inst : suite) {
        MaxSatOptions o;
        o.sat = v.sat;
        o.budget = Budget::wallClock(timeout);
        Msu4Solver solver(o);
        const auto t0 = std::chrono::steady_clock::now();
        const MaxSatResult r = solver.solve(inst.wcnf);
        total += std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
        repAgg += r.satStats;
        if (r.status == MaxSatStatus::Unknown) {
          ++repAborted;
        } else {
          ++repSolved;
        }
      }
      if (rep == 0 || total < best) {
        best = total;
        agg = repAgg;
        aborted = repAborted;
        solved = repSolved;
      }
    }
    std::cout << std::left << std::setw(14) << v.name << std::right
              << std::setw(9) << aborted << std::setw(9) << solved
              << std::setw(9) << agg.inproc_passes << std::setw(10)
              << agg.inproc_subsumed << std::setw(9)
              << agg.inproc_bve_eliminated << std::setw(9)
              << agg.inproc_scc_vars << std::setw(9) << agg.inproc_probe_hbr
              << std::setw(12) << std::fixed << std::setprecision(2) << best
              << '\n';

    benchjson::BenchRecord rec;
    rec.name = v.name;
    rec.wallMs = best * 1e3;
    rec.reps = reps;
    rec.counters = {{"aborted", aborted}, {"solved", solved}};
    agg.forEachField([&rec](const char* name, std::int64_t value) {
      rec.counters.emplace_back(name, value);
    });
    records.push_back(rec);
  }
  if (json) {
    if (!benchjson::writeJsonFile(jsonPath, "ablation_inprocess", records)) {
      return 1;
    }
    std::cout << "\nwrote " << jsonPath << '\n';
  }
  return 0;
}
