/// \file ablation_inprocess.cpp
/// \brief Inprocessing ablation: does keeping the incremental oracle's
///        clause database irredundant between solve calls pay for
///        itself on the MaxSAT engines' workloads?
///
/// Runs msu4-v2 over the mixed suite with inprocessing off, on at the
/// default interval, and on at more/less aggressive intervals, and
/// reports solved counts, wall time and the inproc_* counters — the
/// decision record for Options::inprocess and its interval lives in
/// bench/README.md and points here.
///
/// Usage: ablation_inprocess [timeout_seconds] [size_scale] [per_family]
///                           [--json [path]]

#include <chrono>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "bench_json.h"
#include "core/msu4.h"
#include "harness/suite.h"

namespace {

struct Variant {
  std::string name;
  msu::Solver::Options sat;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace msu;

  bool json = false;
  std::string jsonPath = "BENCH_ablation_inprocess.json";
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
      if (i + 1 < argc && std::string(argv[i + 1]).ends_with(".json")) {
        jsonPath = argv[++i];
      }
    } else {
      positional.push_back(arg);
    }
  }

  const double timeout =
      positional.size() > 0 ? std::atof(positional[0].c_str()) : 1.0;
  SuiteParams sp;
  sp.sizeScale =
      positional.size() > 1 ? std::atof(positional[1].c_str()) : 0.5;
  sp.perFamily = positional.size() > 2 ? std::atoi(positional[2].c_str()) : 6;
  const std::vector<Instance> suite = buildMixedSuite(sp);

  std::vector<Variant> variants;
  variants.push_back({"inprocess-off", {}});
  variants.back().sat.inprocess = false;
  {
    Variant v{"inprocess-default", {}};
    v.sat.inprocess = true;
    variants.push_back(v);
  }
  {
    Variant v{"inprocess-eager", {}};
    v.sat.inprocess = true;
    v.sat.inprocess_interval = 50'000;
    variants.push_back(v);
  }
  {
    Variant v{"inprocess-lazy", {}};
    v.sat.inprocess = true;
    v.sat.inprocess_interval = 2'000'000;
    variants.push_back(v);
  }
  {
    Variant v{"subsume-only", {}};
    v.sat.inprocess = true;
    v.sat.inprocess_viv_props = 0;
    variants.push_back(v);
  }
  {
    Variant v{"viv-only", {}};
    v.sat.inprocess = true;
    v.sat.inprocess_occ_limit = 0;  // subsumption stage disabled
    variants.push_back(v);
  }

  std::cout << "Inprocessing ablation under msu4-v2, " << suite.size()
            << " instances, timeout " << timeout << " s\n\n";
  std::cout << std::left << std::setw(20) << "variant" << std::right
            << std::setw(9) << "aborted" << std::setw(9) << "solved"
            << std::setw(9) << "passes" << std::setw(10) << "subsumed"
            << std::setw(10) << "strength" << std::setw(10) << "vivified"
            << std::setw(12) << "total t[s]" << '\n';

  std::vector<benchjson::BenchRecord> records;
  for (const Variant& v : variants) {
    int aborted = 0;
    int solved = 0;
    SolverStats agg;
    double total = 0.0;
    for (const Instance& inst : suite) {
      MaxSatOptions o;
      o.sat = v.sat;
      o.budget = Budget::wallClock(timeout);
      Msu4Solver solver(o);
      const auto t0 = std::chrono::steady_clock::now();
      const MaxSatResult r = solver.solve(inst.wcnf);
      total += std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
      agg += r.satStats;
      if (r.status == MaxSatStatus::Unknown) {
        ++aborted;
      } else {
        ++solved;
      }
    }
    std::cout << std::left << std::setw(20) << v.name << std::right
              << std::setw(9) << aborted << std::setw(9) << solved
              << std::setw(9) << agg.inproc_passes << std::setw(10)
              << agg.inproc_subsumed << std::setw(10)
              << agg.inproc_strengthened << std::setw(10)
              << agg.inproc_vivified << std::setw(12) << std::fixed
              << std::setprecision(2) << total << '\n';

    benchjson::BenchRecord rec;
    rec.name = v.name;
    rec.wallMs = total * 1e3;
    rec.counters = {{"aborted", aborted}, {"solved", solved}};
    agg.forEachField([&rec](const char* name, std::int64_t value) {
      rec.counters.emplace_back(name, value);
    });
    records.push_back(rec);
  }
  if (json) {
    if (!benchjson::writeJsonFile(jsonPath, "ablation_inprocess", records)) {
      return 1;
    }
    std::cout << "\nwrote " << jsonPath << '\n';
  }
  return 0;
}
