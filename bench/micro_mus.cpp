/// \file micro_mus.cpp
/// \brief google-benchmark microbenchmarks for the MUS/MCS module and
///        the proof pipeline: extractor scaling on pigeonhole and random
///        unsat inputs, MCS enumeration, and DRUP trace + RUP check
///        overhead on refutations.

#include <benchmark/benchmark.h>

#include "gen/pigeonhole.h"
#include "gen/random_cnf.h"
#include "mus/mcs.h"
#include "mus/mus.h"
#include "proof/checker.h"
#include "proof/drup.h"
#include "sat/solver.h"

namespace {

using namespace msu;

void BM_MusDeletionPigeonhole(benchmark::State& state) {
  const int holes = static_cast<int>(state.range(0));
  const CnfFormula f = pigeonhole(holes + 1, holes);
  for (auto _ : state) {
    const MusResult r = extractMusDeletion(f, {});
    benchmark::DoNotOptimize(r.clauseIndices.data());
  }
  state.counters["clauses"] = static_cast<double>(f.numClauses());
}
BENCHMARK(BM_MusDeletionPigeonhole)->Arg(3)->Arg(4)->Arg(5);

void BM_MusDeletionRandom(benchmark::State& state) {
  const int vars = static_cast<int>(state.range(0));
  const CnfFormula f = randomUnsat3Sat(vars, 7.0, 11);
  for (auto _ : state) {
    const MusResult r = extractMusDeletion(f, {});
    benchmark::DoNotOptimize(r.clauseIndices.data());
  }
}
BENCHMARK(BM_MusDeletionRandom)->Arg(15)->Arg(25)->Arg(35);

void BM_MusDichotomicRandom(benchmark::State& state) {
  const int vars = static_cast<int>(state.range(0));
  const CnfFormula f = randomUnsat3Sat(vars, 7.0, 11);
  for (auto _ : state) {
    const MusResult r = extractMusDichotomic(f, {});
    benchmark::DoNotOptimize(r.clauseIndices.data());
  }
}
BENCHMARK(BM_MusDichotomicRandom)->Arg(15)->Arg(25)->Arg(35);

void BM_ModelRotationOnOff(benchmark::State& state) {
  const bool rotation = state.range(0) != 0;
  const CnfFormula f = pigeonhole(5, 4);
  MusOptions opts;
  opts.modelRotation = rotation;
  std::int64_t calls = 0;
  for (auto _ : state) {
    const MusResult r = extractMusDeletion(f, opts);
    calls = r.satCalls;
    benchmark::DoNotOptimize(r.clauseIndices.data());
  }
  state.counters["sat_calls"] = static_cast<double>(calls);
}
BENCHMARK(BM_ModelRotationOnOff)->Arg(0)->Arg(1);

void BM_McsEnumeration(benchmark::State& state) {
  const int vars = static_cast<int>(state.range(0));
  const CnfFormula f = randomUnsat3Sat(vars, 6.5, 3);
  McsOptions opts;
  opts.maxCount = 32;
  for (auto _ : state) {
    const McsResult r = enumerateMcses(f, opts);
    benchmark::DoNotOptimize(r.mcses.data());
  }
}
BENCHMARK(BM_McsEnumeration)->Arg(8)->Arg(10)->Arg(12);

void BM_SolveWithAndWithoutTracing(benchmark::State& state) {
  const bool traced = state.range(0) != 0;
  const CnfFormula f = pigeonhole(6, 5);
  for (auto _ : state) {
    InMemoryProof proof;
    Solver::Options opts;
    if (traced) opts.tracer = &proof;
    Solver solver(opts);
    for (Var v = 0; v < f.numVars(); ++v) {
      benchmark::DoNotOptimize(solver.newVar());
    }
    for (const Clause& c : f.clauses()) {
      if (!solver.addClause(c)) break;
    }
    benchmark::DoNotOptimize(solver.solve());
  }
}
BENCHMARK(BM_SolveWithAndWithoutTracing)->Arg(0)->Arg(1);

void BM_RupCheckRefutation(benchmark::State& state) {
  const int holes = static_cast<int>(state.range(0));
  const CnfFormula f = pigeonhole(holes + 1, holes);
  InMemoryProof proof;
  Solver::Options opts;
  opts.tracer = &proof;
  Solver solver(opts);
  for (Var v = 0; v < f.numVars(); ++v) {
    benchmark::DoNotOptimize(solver.newVar());
  }
  for (const Clause& c : f.clauses()) {
    if (!solver.addClause(c)) break;
  }
  benchmark::DoNotOptimize(solver.solve());
  for (auto _ : state) {
    const ProofCheckResult r = checkProof(proof.lines());
    benchmark::DoNotOptimize(r.ok);
  }
  state.counters["lemmas"] = static_cast<double>(proof.numLemmas());
}
BENCHMARK(BM_RupCheckRefutation)->Arg(4)->Arg(5)->Arg(6);

}  // namespace

BENCHMARK_MAIN();
