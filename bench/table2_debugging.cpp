/// \file table2_debugging.cpp
/// \brief Reproduces Table 2 of the paper: aborted instances on the
///        design-debugging family (Safarpour et al. style instances).
///
/// Paper reference (29 instances, 1000 s budget):
///   maxsatz 26, pbo 21, msu4-v1 3, msu4-v2 3 aborted.
/// Expected shape here: both msu4 variants abort far fewer instances
/// than maxsatz and pbo.
///
/// Usage: table2_debugging [timeout_seconds] [size_scale] [count]

#include <cstdlib>
#include <iostream>

#include "harness/runner.h"
#include "harness/suite.h"
#include "harness/tables.h"

int main(int argc, char** argv) {
  using namespace msu;

  RunConfig config;
  config.timeoutSeconds = argc > 1 ? std::atof(argv[1]) : 1.0;
  SuiteParams sp;
  sp.sizeScale = argc > 2 ? std::atof(argv[2]) : 1.0;
  sp.perFamily = argc > 3 ? std::atoi(argv[3]) : 10;

  const std::vector<Instance> suite = buildDebugSuite(sp);
  std::cout << "design-debugging suite: " << suite.size()
            << " instances, timeout " << config.timeoutSeconds
            << " s (paper: 29 instances, 1000 s)\n\n";

  const std::vector<std::string> solvers{"maxsatz", "pbo", "msu4-v1",
                                         "msu4-v2"};
  const std::vector<RunRecord> records = runMatrix(solvers, suite, config);

  printAbortedTable(std::cout, records, solvers,
                    "Table 2: Design debugging instances (aborted)");

  const int bad = crossCheckOptima(records, std::cerr);
  if (bad > 0) {
    std::cerr << bad << " optimum disagreements!\n";
    return 1;
  }
  std::cout << "\nall solver optima agree on commonly solved instances\n";
  return 0;
}
