/// \file ablation_family.cpp
/// \brief Algorithm-family ablation (paper §5: "the interplay between
///        different algorithms based on unsatisfiable core
///        identification should be further developed"): msu1 (Fu-Malik),
///        msu3, msu4, plus model-improving linear and binary search.
///
/// Usage: ablation_family [timeout_seconds] [size_scale] [per_family]

#include <cstdlib>
#include <iostream>

#include "harness/runner.h"
#include "harness/suite.h"
#include "harness/tables.h"

int main(int argc, char** argv) {
  using namespace msu;

  RunConfig config;
  config.timeoutSeconds = argc > 1 ? std::atof(argv[1]) : 1.0;
  SuiteParams sp;
  sp.sizeScale = argc > 2 ? std::atof(argv[2]) : 0.5;
  sp.perFamily = argc > 3 ? std::atoi(argv[3]) : 6;

  const std::vector<Instance> suite = buildMixedSuite(sp);
  std::cout << "core-guided family ablation, " << suite.size()
            << " instances, timeout " << config.timeoutSeconds << " s\n\n";

  const std::vector<std::string> solvers{"msu1", "msu3", "msu4-v2", "linear",
                                         "binary"};
  const std::vector<RunRecord> records = runMatrix(solvers, suite, config);
  printAbortedTable(std::cout, records, solvers,
                    "Algorithm family (all SAT-based)");
  printFamilyBreakdown(std::cout, records, solvers);

  const int bad = crossCheckOptima(records, std::cerr);
  return bad > 0 ? 1 : 0;
}
