/// \file bench_service.cpp
/// \brief Throughput/latency benchmark of the SolveService (src/svc):
///        a fixed batch of small MaxSAT jobs is pushed through the
///        service at 1, 2 and 4 workers, and the driver reports
///        jobs/sec plus p50/p99 job latency (queue + solve). A fourth
///        scenario runs the batch under a tight per-job deadline to
///        price the abort path (watchdog + cooperative unwinding).
///
/// Usage: bench_service [--jobs N] [--json [path]]
///
///   --json   write bench/BENCH_service.json (one record per scenario:
///            wall time, jobs/sec, latency percentiles, abort counts)
///
/// Latency here is end-to-end from submit() to completion as measured
/// by the service's own clocks (JobOutcome::queue_seconds +
/// solve_seconds), so await()/reporting overhead is excluded. See
/// bench/README.md for the methodology and the regression gate.

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "bench_json.h"
#include "gen/random_cnf.h"
#include "harness/factory.h"
#include "svc/service.h"

namespace {

using namespace msu;

std::vector<WcnfFormula> buildJobs(int n, int baseVars) {
  std::vector<WcnfFormula> jobs;
  jobs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    // Near-threshold random MaxSAT: enough search to be worth
    // scheduling, small enough that a batch completes in seconds.
    const int vars = baseVars + (i % 5);
    jobs.push_back(WcnfFormula::allSoft(randomUnsat3Sat(
        vars, 4.8, 1000 + static_cast<std::uint64_t>(i))));
  }
  return jobs;
}

struct Scenario {
  std::string name;
  int workers = 1;
  JobLimits limits;          // applied to every job
  bool deadline_set = false; // use the larger deadline batch
};

}  // namespace

int main(int argc, char** argv) {
  int numJobs = 40;
  int reps = 5;
  bool writeJson = false;
  std::string jsonPath = "bench/BENCH_service.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--jobs" && i + 1 < argc) {
      numJobs = std::atoi(argv[++i]);
    } else if (arg == "--reps" && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (arg == "--json") {
      writeJson = true;
      if (i + 1 < argc &&
          std::string(argv[i + 1]).find(".json") != std::string::npos) {
        jsonPath = argv[++i];
      }
    } else {
      std::cerr
          << "usage: bench_service [--jobs N] [--reps N] [--json [path]]\n";
      return 2;
    }
  }

  // Base size 22..26 vars: small enough that a batch completes in a
  // couple of seconds, large enough (~100 ms of total solving) that
  // batch wall times are not dominated by scheduler jitter — at 16
  // vars the whole batch ran in ~9 ms and run-to-run noise routinely
  // exceeded the regression gate's tolerance.
  const std::vector<WcnfFormula> jobs = buildJobs(numJobs, 22);
  // The deadline scenario needs jobs that reliably OUTLIVE their cap:
  // the main batch's instances often finish in well under 2 ms, which
  // would leave the abort path mostly unexercised. These larger
  // near-threshold instances take tens of milliseconds each when run
  // to optimality, so a 2 ms cap aborts essentially every one.
  const std::vector<WcnfFormula> deadlineJobs =
      buildJobs(std::max(numJobs / 2, 1), 30);
  std::vector<benchjson::BenchRecord> records;

  // Machine-speed probe: the same batch solved by a plain sequential
  // loop of direct engine calls — no service, no threads. Its wall time
  // tracks the machine, its counters are deterministic for identical
  // code, so check_regression.py can use it to calibrate the service
  // scenarios' wall times across machines (--calibration-prefix seq-).
  {
    double bestMs = 0.0;
    std::int64_t propagations = 0;
    std::int64_t conflicts = 0;
    for (int rep = 0; rep < reps; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      propagations = 0;
      conflicts = 0;
      for (const WcnfFormula& w : jobs) {
        auto engine = makeSolver("msu4-v2", MaxSatOptions{});
        const MaxSatResult r = engine->solve(w);
        if (r.status != MaxSatStatus::Optimum) {
          std::cerr << "seq-direct: job finished without an optimum\n";
          return 1;
        }
        propagations += r.satStats.propagations;
        conflicts += r.satStats.conflicts;
      }
      const double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
      if (rep == 0 || ms < bestMs) bestMs = ms;
    }
    std::cout << "seq-direct (calibration probe): " << std::fixed
              << std::setprecision(1) << bestMs << " ms\n";
    benchjson::BenchRecord rec;
    rec.name = "seq-direct";
    rec.wallMs = bestMs;
    rec.reps = reps;
    rec.counters.emplace_back("jobs",
                              static_cast<std::int64_t>(jobs.size()));
    rec.counters.emplace_back("propagations", propagations);
    rec.counters.emplace_back("conflicts", conflicts);
    records.push_back(std::move(rec));
  }

  std::vector<Scenario> scenarios;
  for (const int w : {1, 2, 4}) {
    scenarios.push_back({"svc-w" + std::to_string(w), w, JobLimits{}});
  }
  {
    // Abort-path pricing: every job deadline-capped well below its
    // typical solve time, so most of the batch exercises watchdog +
    // cooperative unwinding instead of the happy path.
    Scenario s;
    s.name = "svc-w2-deadline";
    s.workers = 2;
    s.limits.wall_seconds = 0.002;
    s.deadline_set = true;
    scenarios.push_back(s);
  }

  std::cout << std::left << std::setw(18) << "scenario" << std::right
            << std::setw(10) << "wall ms" << std::setw(10) << "jobs/s"
            << std::setw(10) << "p50 ms" << std::setw(10) << "p99 ms"
            << std::setw(9) << "aborted" << "\n";

  for (const Scenario& sc : scenarios) {
    const std::vector<WcnfFormula>& batch =
        sc.deadline_set ? deadlineJobs : jobs;

    // Best-of-reps: a fresh service per rep, keep the fastest batch
    // (same policy as bench_portfolio — thread-scheduling noise on a
    // loaded machine only ever slows a run down).
    double wallMs = 0.0;
    std::vector<double> latencyMs;
    std::int64_t aborted = 0;
    for (int rep = 0; rep < reps; ++rep) {
      SolveServiceOptions so;
      so.workers = sc.workers;
      so.max_queue_depth = batch.size() + 1;
      SolveService service(so);

      const auto t0 = std::chrono::steady_clock::now();
      std::vector<JobId> ids;
      ids.reserve(batch.size());
      for (const WcnfFormula& w : batch) {
        const auto sub = service.submit(w, sc.limits);
        if (sub.status != SolveService::SubmitStatus::kAccepted) {
          std::cerr << sc.name << ": unexpected submit rejection\n";
          return 1;
        }
        ids.push_back(sub.id);
      }
      std::vector<double> repLatencyMs;
      repLatencyMs.reserve(ids.size());
      std::int64_t repAborted = 0;
      for (const JobId id : ids) {
        const JobOutcome out = service.await(id);
        repLatencyMs.push_back((out.queue_seconds + out.solve_seconds) * 1e3);
        if (out.abort != AbortReason::kNone) ++repAborted;
        if (!sc.limits.wall_seconds &&
            out.result.status != MaxSatStatus::Optimum) {
          std::cerr << sc.name << ": job finished without an optimum\n";
          return 1;
        }
      }
      const double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
      if (rep == 0 || ms < wallMs) {
        wallMs = ms;
        latencyMs = std::move(repLatencyMs);
        aborted = repAborted;
      }
    }
    std::sort(latencyMs.begin(), latencyMs.end());
    const auto pct = [&](double p) {
      const auto idx = static_cast<std::size_t>(
          p * static_cast<double>(latencyMs.size() - 1));
      return latencyMs[idx];
    };
    const double jobsPerSec =
        1e3 * static_cast<double>(latencyMs.size()) / std::max(wallMs, 1e-6);

    std::cout << std::left << std::setw(18) << sc.name << std::right
              << std::fixed << std::setprecision(1) << std::setw(10)
              << wallMs << std::setw(10) << jobsPerSec << std::setw(10)
              << std::setprecision(2) << pct(0.50) << std::setw(10)
              << pct(0.99) << std::setw(9) << aborted << "\n";

    benchjson::BenchRecord rec;
    rec.name = sc.name;
    rec.wallMs = wallMs;
    rec.reps = reps;
    rec.counters.emplace_back("jobs",
                              static_cast<std::int64_t>(latencyMs.size()));
    rec.counters.emplace_back("workers", sc.workers);
    rec.counters.emplace_back("jobs_per_sec_milli",
                              static_cast<std::int64_t>(jobsPerSec * 1e3));
    rec.counters.emplace_back("p50_latency_us",
                              static_cast<std::int64_t>(pct(0.50) * 1e3));
    rec.counters.emplace_back("p99_latency_us",
                              static_cast<std::int64_t>(pct(0.99) * 1e3));
    rec.counters.emplace_back("aborted", aborted);
    records.push_back(std::move(rec));
  }

  if (writeJson && !benchjson::writeJsonFile(jsonPath, "service", records)) {
    return 1;
  }
  return 0;
}
