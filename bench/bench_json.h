/// \file bench_json.h
/// \brief Minimal JSON emission + baseline parsing shared by the bench
///        drivers' `--json` modes. Each driver writes a
///        `BENCH_<name>.json` file with one record per benchmark (wall
///        time plus named integer counters), so the repo's performance
///        trajectory can be tracked PR-over-PR. A previously recorded
///        file can be re-loaded as a baseline for before/after ratios.
///
/// The format is deliberately flat so the loader can be a few lines of
/// string scanning rather than a JSON library:
///
/// {
///   "bench": "micro_sat",
///   "records": [
///     { "name": "miter-100", "wall_ms": 12.5, "reps": 3,
///       "counters": { "conflicts": 123, "propagations": 4567 } },
///     ...
///   ]
/// }

#pragma once

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace msu::benchjson {

/// One benchmark measurement: best wall time over `reps` repetitions
/// plus whatever counters the driver wants tracked.
struct BenchRecord {
  std::string name;
  double wallMs = 0.0;
  int reps = 1;
  std::vector<std::pair<std::string, std::int64_t>> counters;
};

inline void writeJson(std::ostream& out, const std::string& benchName,
                      const std::vector<BenchRecord>& records) {
  out << "{\n  \"bench\": \"" << benchName << "\",\n  \"records\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    out << "    { \"name\": \"" << r.name << "\", \"wall_ms\": " << r.wallMs
        << ", \"reps\": " << r.reps << ", \"counters\": { ";
    for (std::size_t k = 0; k < r.counters.size(); ++k) {
      out << "\"" << r.counters[k].first << "\": " << r.counters[k].second;
      if (k + 1 < r.counters.size()) out << ", ";
    }
    out << " } }" << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

inline bool writeJsonFile(const std::string& path,
                          const std::string& benchName,
                          const std::vector<BenchRecord>& records) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << '\n';
    return false;
  }
  writeJson(out, benchName, records);
  return true;
}

/// Baseline data: per-benchmark wall time (ms), keyed by name.
using Baseline = std::map<std::string, double>;

/// Loads `"name": ... "wall_ms":` pairs from a file previously written
/// by writeJson. Returns an empty map when the file is absent/unreadable.
inline Baseline loadBaseline(const std::string& path) {
  Baseline base;
  std::ifstream in(path);
  if (!in) return base;
  std::string line;
  while (std::getline(in, line)) {
    const auto namePos = line.find("\"name\": \"");
    const auto wallPos = line.find("\"wall_ms\": ");
    if (namePos == std::string::npos || wallPos == std::string::npos) continue;
    const auto nameStart = namePos + 9;
    const auto nameEnd = line.find('"', nameStart);
    if (nameEnd == std::string::npos) continue;
    const std::string name = line.substr(nameStart, nameEnd - nameStart);
    base[name] = std::strtod(line.c_str() + wallPos + 11, nullptr);
  }
  return base;
}

}  // namespace msu::benchjson
