/// \file micro_encodings.cpp
/// \brief google-benchmark micro-benchmarks of the cardinality and PB
///        encodings: emission time and emitted size (clauses/aux vars as
///        counters) across (n, k) — the substrate behind msu4 v1 vs v2.

#include <benchmark/benchmark.h>

#include "cnf/formula.h"
#include "encodings/amo.h"
#include "encodings/cardinality.h"
#include "encodings/pb.h"
#include "encodings/sink.h"

namespace {

using namespace msu;

void encodeCard(benchmark::State& state, CardEncoding enc) {
  const int n = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  std::int64_t clauses = 0;
  std::int64_t auxVars = 0;
  for (auto _ : state) {
    CnfFormula cnf(n);
    std::vector<Lit> lits;
    for (Var v = 0; v < n; ++v) lits.push_back(posLit(v));
    FormulaSink sink(cnf);
    encodeAtMost(sink, lits, k, enc);
    benchmark::DoNotOptimize(cnf.numClauses());
    clauses = cnf.numClauses();
    auxVars = cnf.numVars() - n;
  }
  state.counters["clauses"] = static_cast<double>(clauses);
  state.counters["aux_vars"] = static_cast<double>(auxVars);
}

void args(benchmark::internal::Benchmark* b) {
  b->Args({32, 4})->Args({128, 8})->Args({512, 16})->Args({512, 128});
}

void BM_AtMost_Bdd(benchmark::State& s) { encodeCard(s, CardEncoding::Bdd); }
void BM_AtMost_Sorter(benchmark::State& s) {
  encodeCard(s, CardEncoding::Sorter);
}
void BM_AtMost_Sequential(benchmark::State& s) {
  encodeCard(s, CardEncoding::Sequential);
}
void BM_AtMost_Totalizer(benchmark::State& s) {
  encodeCard(s, CardEncoding::Totalizer);
}
void BM_AtMost_CardNet(benchmark::State& s) {
  encodeCard(s, CardEncoding::CardNet);
}

BENCHMARK(BM_AtMost_Bdd)->Apply(args)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_AtMost_Sorter)->Apply(args)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_AtMost_Sequential)->Apply(args)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_AtMost_Totalizer)->Apply(args)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_AtMost_CardNet)->Apply(args)->Unit(benchmark::kMicrosecond);

// At-most-one forms: emitted size across n (clauses/aux as counters).
void encodeAmoBench(benchmark::State& state,
                    void (*fn)(ClauseSink&, std::span<const Lit>,
                               std::optional<Lit>)) {
  const int n = static_cast<int>(state.range(0));
  std::int64_t clauses = 0;
  std::int64_t auxVars = 0;
  for (auto _ : state) {
    CnfFormula cnf(n);
    std::vector<Lit> lits;
    for (Var v = 0; v < n; ++v) lits.push_back(posLit(v));
    FormulaSink sink(cnf);
    fn(sink, lits, std::nullopt);
    benchmark::DoNotOptimize(cnf.numClauses());
    clauses = cnf.numClauses();
    auxVars = cnf.numVars() - n;
  }
  state.counters["clauses"] = static_cast<double>(clauses);
  state.counters["aux_vars"] = static_cast<double>(auxVars);
}

void BM_Amo_Pairwise(benchmark::State& s) {
  encodeAmoBench(s, [](ClauseSink& sink, std::span<const Lit> lits,
                       std::optional<Lit> act) {
    encodeAtMostOnePairwise(sink, lits, act);
  });
}
void BM_Amo_Ladder(benchmark::State& s) {
  encodeAmoBench(s, [](ClauseSink& sink, std::span<const Lit> lits,
                       std::optional<Lit> act) {
    encodeAtMostOneLadder(sink, lits, act);
  });
}
void BM_Amo_Commander(benchmark::State& s) {
  encodeAmoBench(s, [](ClauseSink& sink, std::span<const Lit> lits,
                       std::optional<Lit> act) {
    encodeAtMostOneCommander(sink, lits, act);
  });
}
void BM_Amo_Product(benchmark::State& s) {
  encodeAmoBench(s, [](ClauseSink& sink, std::span<const Lit> lits,
                       std::optional<Lit> act) {
    encodeAtMostOneProduct(sink, lits, act);
  });
}
void BM_Amo_Binary(benchmark::State& s) {
  encodeAmoBench(s, [](ClauseSink& sink, std::span<const Lit> lits,
                       std::optional<Lit> act) {
    encodeAtMostOneBinary(sink, lits, act);
  });
}
void BM_Amo_Bimander(benchmark::State& s) {
  encodeAmoBench(s, [](ClauseSink& sink, std::span<const Lit> lits,
                       std::optional<Lit> act) {
    encodeAtMostOneBimander(sink, lits, act);
  });
}

void amoArgs(benchmark::internal::Benchmark* b) {
  b->Arg(16)->Arg(64)->Arg(256);
}
BENCHMARK(BM_Amo_Pairwise)->Apply(amoArgs)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Amo_Ladder)->Apply(amoArgs)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Amo_Commander)->Apply(amoArgs)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Amo_Product)->Apply(amoArgs)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Amo_Binary)->Apply(amoArgs)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Amo_Bimander)->Apply(amoArgs)->Unit(benchmark::kMicrosecond);

void BM_PbLeq(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto enc = static_cast<PbEncoding>(state.range(1));
  std::int64_t clauses = 0;
  for (auto _ : state) {
    CnfFormula cnf(n);
    FormulaSink sink(cnf);
    std::vector<PbTerm> terms;
    Weight total = 0;
    for (Var v = 0; v < n; ++v) {
      const Weight c = 1 + (v % 7);
      terms.push_back(PbTerm{posLit(v), c});
      total += c;
    }
    encodePbLeq(sink, terms, total / 3, enc);
    benchmark::DoNotOptimize(cnf.numClauses());
    clauses = cnf.numClauses();
  }
  state.counters["clauses"] = static_cast<double>(clauses);
}

BENCHMARK(BM_PbLeq)
    ->Args({64, static_cast<int>(PbEncoding::Bdd)})
    ->Args({64, static_cast<int>(PbEncoding::Adder)})
    ->Args({256, static_cast<int>(PbEncoding::Adder)})
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
