/// \file ablation_sat_opts.cpp
/// \brief Substrate ablation: how much of msu4's performance comes from
///        the CDCL heuristics the paper inherits from MiniSat? Runs
///        msu4-v2 with conflict-clause minimization off/basic/recursive,
///        phase saving off, geometric instead of Luby restarts, and the
///        tiered (core/tier2/local) learnt database.
///
/// Usage: ablation_sat_opts [timeout_seconds] [size_scale] [per_family]
///                          [--json [path]]
///
/// `--json` additionally writes BENCH_ablation_sat_opts.json with the
/// per-variant wall time and propagation counters.

#include <chrono>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "bench_json.h"
#include "core/msu4.h"
#include "harness/suite.h"

namespace {

struct Variant {
  std::string name;
  msu::Solver::Options sat;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace msu;

  bool json = false;
  std::string jsonPath = "BENCH_ablation_sat_opts.json";
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
      // Only a *.json argument is an output path; this keeps `--json`
      // composable with the numeric positionals in any order.
      if (i + 1 < argc && std::string(argv[i + 1]).ends_with(".json")) {
        jsonPath = argv[++i];
      }
    } else {
      positional.push_back(arg);
    }
  }

  const double timeout =
      positional.size() > 0 ? std::atof(positional[0].c_str()) : 1.0;
  SuiteParams sp;
  sp.sizeScale =
      positional.size() > 1 ? std::atof(positional[1].c_str()) : 0.5;
  sp.perFamily = positional.size() > 2 ? std::atoi(positional[2].c_str()) : 6;
  const std::vector<Instance> suite = buildMixedSuite(sp);

  std::vector<Variant> variants;
  variants.push_back({"baseline", {}});
  {
    Variant v{"ccmin-off", {}};
    v.sat.ccmin_mode = 0;
    variants.push_back(v);
  }
  {
    Variant v{"ccmin-basic", {}};
    v.sat.ccmin_mode = 1;
    variants.push_back(v);
  }
  {
    Variant v{"no-phase-saving", {}};
    v.sat.phase_saving = false;
    variants.push_back(v);
  }
  {
    Variant v{"geometric-restart", {}};
    v.sat.luby_restarts = false;
    variants.push_back(v);
  }
  {
    Variant v{"lbd-reduce", {}};
    v.sat.lbd_reduce = true;
    variants.push_back(v);
  }
  {
    // Warm-start A/B: the baseline runs the default (reuse on), this
    // lever isolates what the assumption-prefix reuse is worth.
    Variant v{"no-reuse-trail", {}};
    v.sat.reuse_trail = false;
    variants.push_back(v);
  }
  {
    Variant v{"ema-restart", {}};
    v.sat.ema_restarts = true;
    variants.push_back(v);
  }
  {
    // lbd_reduce re-evaluated on the adaptive trajectory (the decision
    // record in bench/README.md couples the two).
    Variant v{"ema+lbd-reduce", {}};
    v.sat.ema_restarts = true;
    v.sat.lbd_reduce = true;
    variants.push_back(v);
  }
  {
    // Vivification re-evaluated on the adaptive trajectory (ditto).
    Variant v{"ema+inprocess", {}};
    v.sat.ema_restarts = true;
    v.sat.inprocess = true;
    variants.push_back(v);
  }

  std::cout << "CDCL-option ablation under msu4-v2, " << suite.size()
            << " instances, timeout " << timeout << " s\n\n";
  std::cout << std::left << std::setw(20) << "variant" << std::right
            << std::setw(9) << "aborted" << std::setw(9) << "solved"
            << std::setw(13) << "conflicts" << std::setw(13) << "bin-props"
            << std::setw(13) << "long-props" << std::setw(12) << "total t[s]"
            << '\n';

  std::vector<benchjson::BenchRecord> records;
  for (const Variant& v : variants) {
    int aborted = 0;
    int solved = 0;
    SolverStats agg;
    double total = 0.0;
    for (const Instance& inst : suite) {
      MaxSatOptions o;
      o.sat = v.sat;
      o.budget = Budget::wallClock(timeout);
      Msu4Solver solver(o);
      const auto t0 = std::chrono::steady_clock::now();
      const MaxSatResult r = solver.solve(inst.wcnf);
      total += std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
      agg += r.satStats;
      if (r.status == MaxSatStatus::Unknown) {
        ++aborted;
      } else {
        ++solved;
      }
    }
    std::cout << std::left << std::setw(20) << v.name << std::right
              << std::setw(9) << aborted << std::setw(9) << solved
              << std::setw(13) << agg.conflicts << std::setw(13)
              << agg.binary_propagations << std::setw(13)
              << agg.long_propagations << std::setw(12) << std::fixed
              << std::setprecision(2) << total << '\n';

    benchjson::BenchRecord rec;
    rec.name = v.name;
    rec.wallMs = total * 1e3;
    rec.counters = {{"aborted", aborted}, {"solved", solved}};
    agg.forEachField([&rec](const char* name, std::int64_t value) {
      rec.counters.emplace_back(name, value);
    });
    records.push_back(rec);
  }
  if (json) {
    if (!benchjson::writeJsonFile(jsonPath, "ablation_sat_opts", records)) {
      return 1;
    }
    std::cout << "\nwrote " << jsonPath << '\n';
  }
  return 0;
}
