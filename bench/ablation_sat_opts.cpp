/// \file ablation_sat_opts.cpp
/// \brief Substrate ablation: how much of msu4's performance comes from
///        the CDCL heuristics the paper inherits from MiniSat? Runs
///        msu4-v2 with conflict-clause minimization off/basic/recursive,
///        phase saving off, and geometric instead of Luby restarts.
///
/// Usage: ablation_sat_opts [timeout_seconds] [size_scale] [per_family]

#include <chrono>
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "core/msu4.h"
#include "harness/suite.h"

namespace {

struct Variant {
  std::string name;
  msu::Solver::Options sat;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace msu;

  const double timeout = argc > 1 ? std::atof(argv[1]) : 1.0;
  SuiteParams sp;
  sp.sizeScale = argc > 2 ? std::atof(argv[2]) : 0.5;
  sp.perFamily = argc > 3 ? std::atoi(argv[3]) : 6;
  const std::vector<Instance> suite = buildMixedSuite(sp);

  std::vector<Variant> variants;
  variants.push_back({"baseline", {}});
  {
    Variant v{"ccmin-off", {}};
    v.sat.ccmin_mode = 0;
    variants.push_back(v);
  }
  {
    Variant v{"ccmin-basic", {}};
    v.sat.ccmin_mode = 1;
    variants.push_back(v);
  }
  {
    Variant v{"no-phase-saving", {}};
    v.sat.phase_saving = false;
    variants.push_back(v);
  }
  {
    Variant v{"geometric-restart", {}};
    v.sat.luby_restarts = false;
    variants.push_back(v);
  }
  {
    Variant v{"lbd-reduce", {}};
    v.sat.lbd_reduce = true;
    variants.push_back(v);
  }

  std::cout << "CDCL-option ablation under msu4-v2, " << suite.size()
            << " instances, timeout " << timeout << " s\n\n";
  std::cout << std::left << std::setw(20) << "variant" << std::right
            << std::setw(9) << "aborted" << std::setw(9) << "solved"
            << std::setw(14) << "conflicts" << std::setw(12) << "total t[s]"
            << '\n';

  for (const Variant& v : variants) {
    int aborted = 0;
    int solved = 0;
    std::int64_t conflicts = 0;
    double total = 0.0;
    for (const Instance& inst : suite) {
      MaxSatOptions o;
      o.sat = v.sat;
      o.budget = Budget::wallClock(timeout);
      Msu4Solver solver(o);
      const auto t0 = std::chrono::steady_clock::now();
      const MaxSatResult r = solver.solve(inst.wcnf);
      total += std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
      conflicts += r.satStats.conflicts;
      if (r.status == MaxSatStatus::Unknown) {
        ++aborted;
      } else {
        ++solved;
      }
    }
    std::cout << std::left << std::setw(20) << v.name << std::right
              << std::setw(9) << aborted << std::setw(9) << solved
              << std::setw(14) << conflicts << std::setw(12) << std::fixed
              << std::setprecision(2) << total << '\n';
  }
  return 0;
}
