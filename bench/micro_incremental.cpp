/// \file micro_incremental.cpp
/// \brief Solve-call throughput of the incremental oracle under the
///        warm-start A/B (Solver::Options::reuse_trail): every case is
///        run twice — reuse OFF (the cancelUntil(0)-per-solve engine)
///        and reuse ON (assumption-prefix trail reuse) — and the driver
///        reports per-case oracle-call throughput plus the geomean
///        speedup. This is the evidence behind the reuse_trail default;
///        the committed bench/BENCH_micro_incremental.json is gated in
///        CI via check_regression.py --mode ab (the on/off *ratio* is
///        machine-independent, unlike raw wall clocks).
///
/// Usage: micro_incremental [--reps N] [--json [path]]
///
/// Two kinds of cases:
///
///  * Engine traces: real MaxSAT engines (msu4-v2 / msu3 / oll, the
///    incremental engine suite) solved end-to-end, so the measured mix
///    of assumption reuse, warm clause attachment and prefix
///    invalidation is exactly what the engines produce.
///  * Session traces: an OracleSession-style selector workload driven
///    directly (solve / relax / solve ...), isolating oracle-call
///    overhead from conflict search. `steady` repeats one assumption
///    set (the trimCore/minimizeCore pattern), `relax-tail` shrinks the
///    set from the back (maximal surviving prefix), `relax-head`
///    shrinks it from the front (adversarial: no prefix survives —
///    this one bounds the cost of having reuse on when it cannot pay).
///
/// Both runs of a case must agree on the result (optimum cost / SAT
/// status checksum); the driver aborts otherwise.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <iomanip>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_json.h"
#include "core/soft_tracker.h"
#include "gen/graphs.h"
#include "gen/random_cnf.h"
#include "harness/factory.h"
#include "sat/solver.h"

namespace {

using namespace msu;

/// One measured A/B leg: wall seconds, oracle calls, solver counters
/// and a result checksum that must match between the legs.
struct RunOut {
  double secs = 0.0;
  std::int64_t satCalls = 0;
  SolverStats stats;
  std::int64_t checksum = 0;  // optimum cost / SAT-status checksum
};

struct Case {
  std::string name;
  std::function<RunOut(bool reuse)> run;
};

/// End-to-end engine trace through the harness factory.
Case engineCase(const std::string& name, const std::string& engine,
                WcnfFormula wcnf, int trimRounds = 0) {
  return {name, [engine, wcnf = std::move(wcnf), trimRounds](bool reuse) {
            MaxSatOptions o;
            o.sat.reuse_trail = reuse;
            o.trimCoreRounds = trimRounds;
            const std::unique_ptr<MaxSatSolver> solver =
                makeSolver(engine, o);
            if (solver == nullptr) {
              std::cerr << "unknown engine " << engine << '\n';
              std::exit(1);
            }
            const auto t0 = std::chrono::steady_clock::now();
            const MaxSatResult r = solver->solve(wcnf);
            RunOut out;
            out.secs = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
            if (r.status != MaxSatStatus::Optimum) {
              std::cerr << engine << ": no optimum\n";
              std::exit(1);
            }
            out.satCalls = r.satCalls;
            out.stats = r.satStats;
            out.checksum = r.cost;
            return out;
          }};
}

/// Selector workload: `n` soft units, each propagating a short hard
/// implication chain when enforced — the per-assumption propagation
/// cost every cold oracle call pays from scratch.
WcnfFormula selectorWorkload(int n, int chain) {
  WcnfFormula f(n * (chain + 1));
  for (int i = 0; i < n; ++i) {
    const Var x = i * (chain + 1);
    f.addSoft({posLit(x)});
    for (int c = 0; c < chain; ++c) {
      f.addHard({negLit(x + c), posLit(x + c + 1)});
    }
  }
  return f;
}

/// Session trace: solve `calls` times, relaxing soft clauses between
/// calls per `nextRelax` (return < 0: relax nothing this iteration).
Case sessionCase(const std::string& name, int n, int chain, int calls,
                 std::function<int(int iter, int n)> nextRelax) {
  return {name, [=](bool reuse) {
            const WcnfFormula f = selectorWorkload(n, chain);
            Solver::Options so;
            so.reuse_trail = reuse;
            Solver s(so);
            SoftTracker tracker(s, f);
            RunOut out;
            const auto t0 = std::chrono::steady_clock::now();
            for (int it = 0; it < calls; ++it) {
              const int relax = nextRelax(it, n);
              if (relax >= 0) tracker.relax(relax);
              const std::vector<Lit> assumps = tracker.assumptions();
              const lbool st = s.solve(assumps);
              ++out.satCalls;
              out.checksum = out.checksum * 3 + (st == lbool::True ? 1 : 2);
            }
            out.secs = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
            out.stats = s.stats();
            return out;
          }};
}

std::vector<Case> buildCases() {
  std::vector<Case> cases;

  // Engine traces (the incremental engine suite).
  cases.push_back(engineCase(
      "msu4v2-rnd3sat40", "msu4-v2",
      WcnfFormula::allSoft(randomUnsat3Sat(40, 5.6, 7))));
  cases.push_back(engineCase(
      "msu4v2-trim-rnd3sat38", "msu4-v2",
      WcnfFormula::allSoft(randomUnsat3Sat(38, 6.0, 3)), /*trimRounds=*/2));
  cases.push_back(engineCase(
      "msu3-rnd3sat40", "msu3",
      WcnfFormula::allSoft(randomUnsat3Sat(40, 5.6, 7))));
  {
    const Graph g = randomGraph(16, 0.5, 112);
    cases.push_back(engineCase(
        "msu3-maxcut16", "msu3",
        maxCutInstance(g, std::vector<Weight>(g.edges.size(), 1))));
  }
  {
    const Graph g = randomGraph(18, 0.45, 114);
    std::vector<Weight> w;
    w.reserve(g.edges.size());
    for (std::size_t e = 0; e < g.edges.size(); ++e) {
      w.push_back(1 + static_cast<Weight>((e * 7) % 9));
    }
    cases.push_back(engineCase("oll-wmaxcut18", "oll", maxCutInstance(g, w)));
  }
  cases.push_back(engineCase(
      "oll-rnd3sat40", "oll",
      WcnfFormula::allSoft(randomUnsat3Sat(40, 5.6, 7))));

  // Session traces (oracle-call overhead isolated from search).
  cases.push_back(sessionCase("session-steady", 400, 4, 150,
                              [](int, int) { return -1; }));
  cases.push_back(sessionCase("session-relax-tail", 400, 4, 150,
                              [](int it, int n) { return n - 1 - it; }));
  cases.push_back(sessionCase("session-relax-head", 400, 4, 150,
                              [](int it, int) { return it; }));
  return cases;
}

}  // namespace

int main(int argc, char** argv) {
  int reps = 3;
  bool json = false;
  std::string jsonPath = "BENCH_micro_incremental.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--reps" && i + 1 < argc) {
      reps = std::max(1, std::atoi(argv[++i]));
    } else if (arg == "--json") {
      json = true;
      if (i + 1 < argc && std::string(argv[i + 1]).ends_with(".json")) {
        jsonPath = argv[++i];
      }
    } else {
      std::cerr << "usage: micro_incremental [--reps N] [--json [path]]\n";
      return 2;
    }
  }

  const std::vector<Case> cases = buildCases();
  std::vector<benchjson::BenchRecord> records;

  std::cout << std::left << std::setw(24) << "case" << std::right
            << std::setw(10) << "off[ms]" << std::setw(10) << "on[ms]"
            << std::setw(9) << "calls" << std::setw(12) << "calls/s-on"
            << std::setw(10) << "speedup" << '\n';

  double logSum = 0.0;
  for (const Case& c : cases) {
    RunOut best[2];
    for (int mode = 0; mode < 2; ++mode) {
      for (int r = 0; r < reps; ++r) {
        RunOut out = c.run(/*reuse=*/mode == 1);
        if (r == 0 || out.secs < best[mode].secs) best[mode] = out;
      }
    }
    if (best[0].checksum != best[1].checksum) {
      std::cerr << c.name << ": reuse on/off disagree (" << best[0].checksum
                << " vs " << best[1].checksum << ")\n";
      return 1;
    }
    // Solve-call throughput: the call counts may differ (warm starts
    // change the search trajectory), so compare calls/second, not wall.
    const double thrOff =
        static_cast<double>(best[0].satCalls) / best[0].secs;
    const double thrOn = static_cast<double>(best[1].satCalls) / best[1].secs;
    const double speedup = thrOn / thrOff;
    logSum += std::log(speedup);

    for (int mode = 0; mode < 2; ++mode) {
      benchjson::BenchRecord rec;
      rec.name = c.name + (mode == 0 ? "/off" : "/on");
      rec.wallMs = best[mode].secs * 1e3;
      rec.reps = reps;
      rec.counters = {
          {"sat_calls", best[mode].satCalls},
          {"conflicts", best[mode].stats.conflicts},
          {"propagations", best[mode].stats.propagations},
          {"reused_trail_lits", best[mode].stats.reused_trail_lits},
      };
      records.push_back(rec);
    }

    std::cout << std::left << std::setw(24) << c.name << std::right
              << std::setw(10) << std::fixed << std::setprecision(2)
              << best[0].secs * 1e3 << std::setw(10) << best[1].secs * 1e3
              << std::setw(9) << best[1].satCalls << std::setw(12)
              << std::setprecision(0) << thrOn << std::setw(9)
              << std::setprecision(2) << speedup << "x\n";
  }

  std::cout << "\ngeomean solve-call throughput speedup (reuse on vs off): "
            << std::setprecision(3)
            << std::exp(logSum / static_cast<double>(cases.size())) << "x\n";

  if (json) {
    if (!benchjson::writeJsonFile(jsonPath, "micro_incremental", records)) {
      return 1;
    }
    std::cout << "wrote " << jsonPath << '\n';
  }
  return 0;
}
