/// \file fig3_scatter_v1v2.cpp
/// \brief Figure 3 of the paper: scatter plot of msu4-v1 (BDD encodings,
///        y) vs msu4-v2 (sorting networks, x). Paper shape: correlated
///        cloud around the diagonal with v2 ahead overall (fewer
///        aborts), i.e. encoding choice matters but less than algorithm
///        choice.
///
/// Usage: fig3_scatter_v1v2 [timeout_seconds] [size_scale] [per_family]

#include "fig_scatter_common.h"

int main(int argc, char** argv) {
  return msu::runScatterFigure("Figure 3", "msu4-v2", "msu4-v1",
                               "fig3_scatter.csv", argc, argv);
}
