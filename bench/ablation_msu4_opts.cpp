/// \file ablation_msu4_opts.cpp
/// \brief Ablation of msu4's design choices the paper calls out:
///        (a) the optional "at least one new blocking variable" clause
///        (Algorithm 1 line 19 — "optional, but experiments suggest it
///        is most often useful"), (b) encoding reuse across iterations,
///        (c) the tightened model-cost bound vs the paper's raw nu.
///
/// Usage: ablation_msu4_opts [timeout_seconds] [size_scale] [per_family]

#include <chrono>
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "core/msu4.h"
#include "harness/suite.h"

namespace {

struct Variant {
  std::string name;
  msu::MaxSatOptions opts;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace msu;

  const double timeout = argc > 1 ? std::atof(argv[1]) : 1.0;
  SuiteParams sp;
  sp.sizeScale = argc > 2 ? std::atof(argv[2]) : 0.5;
  sp.perFamily = argc > 3 ? std::atoi(argv[3]) : 6;
  const std::vector<Instance> suite = buildMixedSuite(sp);

  std::vector<Variant> variants;
  {
    Variant base{"baseline(v2)", {}};
    variants.push_back(base);
    Variant noAlo{"no-atleast-one", {}};
    noAlo.opts.msu4AtLeastOne = false;
    variants.push_back(noAlo);
    Variant noReuse{"no-enc-reuse", {}};
    noReuse.opts.reuseEncodings = false;
    variants.push_back(noReuse);
    Variant rawNu{"paper-raw-nu", {}};
    rawNu.opts.tightenWithModelCost = false;
    variants.push_back(rawNu);
  }

  std::cout << "msu4 option ablation, " << suite.size()
            << " instances, timeout " << timeout << " s\n\n";
  std::cout << std::left << std::setw(18) << "variant" << std::right
            << std::setw(9) << "aborted" << std::setw(9) << "solved"
            << std::setw(12) << "iterations" << std::setw(12) << "cores"
            << std::setw(12) << "total t[s]" << '\n';

  for (const Variant& v : variants) {
    int aborted = 0;
    int solved = 0;
    std::int64_t iterations = 0;
    std::int64_t cores = 0;
    double total = 0.0;
    for (const Instance& inst : suite) {
      MaxSatOptions o = v.opts;
      o.budget = Budget::wallClock(timeout);
      Msu4Solver solver(o);
      const auto t0 = std::chrono::steady_clock::now();
      const MaxSatResult r = solver.solve(inst.wcnf);
      total += std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
      iterations += r.iterations;
      cores += r.coresFound;
      if (r.status == MaxSatStatus::Unknown) {
        ++aborted;
      } else {
        ++solved;
      }
    }
    std::cout << std::left << std::setw(18) << v.name << std::right
              << std::setw(9) << aborted << std::setw(9) << solved
              << std::setw(12) << iterations << std::setw(12) << cores
              << std::setw(12) << std::fixed << std::setprecision(2) << total
              << '\n';
  }
  return 0;
}
