/// \file table1_aborted.cpp
/// \brief Reproduces Table 1 of the paper: "Number of aborted instances"
///        for maxsatz (our B&B), the PBO formulation, msu4 v1 (BDD) and
///        msu4 v2 (sorting networks) over the mixed industrial-style
///        suite, under a per-instance budget.
///
/// Paper reference (691 instances, 1000 s budget):
///   maxsatz 554, pbo 248, msu4-v1 212, msu4-v2 163 aborted.
/// Expected shape here: maxsatz >> pbo > msu4-v1 >= msu4-v2.
///
/// Usage: table1_aborted [timeout_seconds] [size_scale] [per_family]

#include <cstdlib>
#include <iostream>

#include "harness/runner.h"
#include "harness/suite.h"
#include "harness/tables.h"

int main(int argc, char** argv) {
  using namespace msu;

  RunConfig config;
  config.timeoutSeconds = argc > 1 ? std::atof(argv[1]) : 1.0;
  SuiteParams sp;
  sp.sizeScale = argc > 2 ? std::atof(argv[2]) : 1.0;
  sp.perFamily = argc > 3 ? std::atoi(argv[3]) : 8;

  const std::vector<Instance> suite = buildMixedSuite(sp);
  std::cout << "suite: " << suite.size() << " instances, timeout "
            << config.timeoutSeconds << " s (paper: 691 instances, 1000 s)\n\n";

  const std::vector<std::string> solvers{"maxsatz", "pbo", "msu4-v1",
                                         "msu4-v2"};
  const std::vector<RunRecord> records = runMatrix(solvers, suite, config);

  printAbortedTable(std::cout, records, solvers,
                    "Table 1: Number of aborted instances");
  printFamilyBreakdown(std::cout, records, solvers);

  const int bad = crossCheckOptima(records, std::cerr);
  if (bad > 0) {
    std::cerr << bad << " optimum disagreements!\n";
    return 1;
  }
  std::cout << "\nall solver optima agree on commonly solved instances\n";
  return 0;
}
