/// \file mus_tool.cpp
/// \brief MUS/MCS analysis of an unsatisfiable formula — the §2.3
///        relationship between unsatisfiable cores and MaxSAT, run both
///        directions on one instance:
///          * extract a single MUS three ways (deletion / dichotomic /
///            insertion) and compare their sizes and SAT-call counts;
///          * enumerate all MCSes, read the MaxSAT optimum off the
///            smallest one, and cross-check with msu4;
///          * recover all MUSes as minimal hitting sets of the MCSes.
///
/// Usage: mus_tool [file.cnf | file.gcnf]
///        (default: a built-in pigeonhole mix; .gcnf files get group-MUS
///        analysis instead of the clause-level pipeline)

#include <iostream>

#include <fstream>
#include <string>

#include "cnf/dimacs.h"
#include "gen/pigeonhole.h"
#include "harness/factory.h"
#include "mus/gcnf_io.h"
#include "mus/gmus.h"
#include "mus/mcs.h"
#include "mus/mus.h"

namespace {

int runGroupMode(const char* path) {
  using namespace msu;
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot open " << path << "\n";
    return 2;
  }
  GroupCnf gcnf;
  try {
    gcnf = readGcnf(in);
  } catch (const GcnfError& e) {
    std::cerr << "parse error: " << e.what() << "\n";
    return 2;
  }
  std::cout << "group instance: " << gcnf.numVars() << " vars, "
            << gcnf.background().size() << " background clauses, "
            << gcnf.numGroups() << " groups\n\n";
  for (auto [name, fn] :
       {std::pair{"deletion  ", &extractGroupMusDeletion},
        std::pair{"dichotomic", &extractGroupMusDichotomic}}) {
    const GroupMusResult r = fn(gcnf, {});
    if (!r.minimal && r.groups.empty()) {
      std::cout << "  " << name << ": satisfiable\n";
      continue;
    }
    std::cout << "  " << name << ": group MUS of " << r.size() << "/"
              << gcnf.numGroups() << " groups in " << r.satCalls
              << " SAT calls {";
    for (std::size_t i = 0; i < r.groups.size(); ++i) {
      std::cout << (i ? "," : "") << r.groups[i];
    }
    std::cout << "} verified="
              << (isGroupMus(gcnf, r.groups) ? "yes" : "NO") << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace msu;

  if (argc > 1) {
    const std::string path = argv[1];
    if (path.size() > 5 && path.substr(path.size() - 5) == ".gcnf") {
      return runGroupMode(argv[1]);
    }
  }

  CnfFormula cnf;
  if (argc > 1) {
    try {
      cnf = loadDimacsCnf(argv[1]);
    } catch (const DimacsError& e) {
      std::cerr << "cannot load " << argv[1] << ": " << e.what() << "\n";
      return 2;
    }
  } else {
    // PHP(4,3) with a couple of satisfiable padding clauses: the MUS is
    // the pigeonhole kernel, the padding never appears in any MUS.
    cnf = pigeonhole(4, 3);
    const Var a = cnf.newVar();
    const Var b = cnf.newVar();
    cnf.addClause({posLit(a), posLit(b)});
    cnf.addClause({negLit(a), posLit(b)});
  }
  std::cout << "instance: " << cnf.summary() << "\n\n";

  std::cout << "-- single MUS extraction --\n";
  struct Row {
    const char* name;
    MusResult r;
  };
  const Row rows[] = {
      {"deletion  ", extractMusDeletion(cnf, {})},
      {"dichotomic", extractMusDichotomic(cnf, {})},
      {"insertion ", extractMusInsertion(cnf, {})},
  };
  for (const Row& row : rows) {
    if (!row.r.minimal && row.r.clauseIndices.empty()) {
      std::cout << "  " << row.name << ": formula is satisfiable\n";
      return 0;
    }
    std::cout << "  " << row.name << ": size " << row.r.size() << ", "
              << row.r.satCalls << " SAT calls, " << row.r.rotationCriticals
              << " rotation hits, minimal="
              << (row.r.minimal ? "yes" : "budget-expired") << "\n";
  }

  std::cout << "\n-- MCS enumeration --\n";
  McsOptions mopts;
  mopts.maxCount = 64;
  const McsResult mcses = enumerateMcses(cnf, mopts);
  std::cout << "  " << mcses.mcses.size() << " MCS(es)"
            << (mcses.complete ? " (exhaustive)" : " (capped)") << ", "
            << mcses.satCalls << " SAT calls\n";
  if (!mcses.mcses.empty()) {
    std::cout << "  smallest MCS size = " << mcses.minSize()
              << "  == MaxSAT optimum cost";
    const auto solver = makeSolver("msu4-v2");
    const MaxSatResult opt = solver->solve(WcnfFormula::allSoft(cnf));
    std::cout << " (msu4 says " << opt.cost << ": "
              << (opt.status == MaxSatStatus::Optimum &&
                          opt.cost == mcses.minSize()
                      ? "agree"
                      : "DISAGREE")
              << ")\n";
  }

  if (mcses.complete) {
    std::cout << "\n-- all MUSes (hitting-set duality) --\n";
    const AllMusesResult all = enumerateAllMuses(cnf, mopts);
    std::cout << "  " << all.muses.size() << " MUS(es)\n";
    for (std::size_t i = 0; i < all.muses.size() && i < 8; ++i) {
      std::cout << "  mus[" << i << "] = {";
      for (std::size_t j = 0; j < all.muses[i].size(); ++j) {
        std::cout << (j ? "," : "") << all.muses[i][j];
      }
      std::cout << "}  verified=" << (isMus(cnf, all.muses[i]) ? "yes" : "NO")
                << "\n";
    }
  }
  return 0;
}
