/// \file maxsatd.cpp
/// \brief `maxsatd` — drives the SolveService (svc/service.h) from a
///        job file: a batch front end that multiplexes many MaxSAT
///        instances over a fixed worker pool with per-job limits, and
///        prints one outcome row per job.
///
/// Usage:
///   example_maxsatd [options] jobs.txt
///     --workers N          worker threads (default 2)
///     --engine NAME        engine for every job (default msu4-v2)
///     --queue-depth N      shed load beyond N queued jobs (default 64)
///     --max-job-seconds S  service-wide watchdog ceiling per job
///     --max-mem-mb N       service-wide memory ceiling in MiB:
///                          submit() sheds jobs (kOverloaded) whose
///                          formula estimate would push the aggregate
///                          running+queued footprint past the ceiling
///     --metrics-every S    every S seconds, print a live progress line
///                          per running job (anytime bounds, conflicts,
///                          memory — the poll() snapshot) plus the
///                          service gauges, and finish with a full
///                          Prometheus-format metrics snapshot
///
/// The service always runs with a metrics registry wired in; the final
/// summary line reports the peak service-wide solver memory observed
/// (the `msu_svc_mem_bytes` gauge, aggregated across running jobs).
///
/// Job file: one job per line, `#` comments and blank lines ignored:
///   <path.wcnf> [wall=SEC] [conflicts=N] [mem=BYTES] [prio=P]
///
/// Example:
///   instances/easy.wcnf   prio=1
///   instances/hard.wcnf   wall=5 mem=268435456
///
/// Jobs the service sheds (queue full) are reported as `overloaded`;
/// aborted jobs still print their best incumbent bounds — the service's
/// graceful-degradation contract.

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cnf/dimacs.h"
#include "obs/metrics.h"
#include "svc/service.h"

namespace {

struct JobSpec {
  std::string path;
  msu::JobLimits limits;
};

bool parseJobLine(const std::string& line, JobSpec& spec) {
  std::istringstream in(line);
  if (!(in >> spec.path)) return false;
  std::string kv;
  while (in >> kv) {
    const auto eq = kv.find('=');
    if (eq == std::string::npos) return false;
    const std::string key = kv.substr(0, eq);
    const char* val = kv.c_str() + eq + 1;
    if (key == "wall") {
      spec.limits.wall_seconds = std::atof(val);
    } else if (key == "conflicts") {
      spec.limits.max_conflicts = std::atoll(val);
    } else if (key == "mem") {
      spec.limits.max_memory_bytes = std::atoll(val);
    } else if (key == "prio") {
      spec.limits.priority = std::atoi(val);
    } else {
      return false;
    }
  }
  return true;
}

void usage() {
  std::cout << "usage: example_maxsatd [--workers N] [--engine NAME]\n"
               "                       [--queue-depth N] "
               "[--max-job-seconds S]\n"
               "                       [--max-mem-mb N] "
               "[--metrics-every S] jobs.txt\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace msu;

  SolveServiceOptions svcOpts;
  svcOpts.workers = 2;
  double metricsEvery = 0.0;
  std::string jobFile;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--workers" && i + 1 < argc) {
      svcOpts.workers = std::atoi(argv[++i]);
    } else if (arg == "--engine" && i + 1 < argc) {
      svcOpts.engine = argv[++i];
    } else if (arg == "--queue-depth" && i + 1 < argc) {
      svcOpts.max_queue_depth = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (arg == "--max-job-seconds" && i + 1 < argc) {
      svcOpts.default_max_job_seconds = std::atof(argv[++i]);
    } else if (arg == "--max-mem-mb" && i + 1 < argc) {
      svcOpts.max_service_mem_bytes =
          static_cast<std::int64_t>(std::atof(argv[++i]) * 1024 * 1024);
    } else if (arg == "--metrics-every" && i + 1 < argc) {
      metricsEvery = std::atof(argv[++i]);
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << "\n";
      usage();
      return 2;
    } else {
      jobFile = arg;
    }
  }
  if (jobFile.empty()) {
    usage();
    return 2;
  }

  std::ifstream in(jobFile);
  if (!in) {
    std::cerr << "cannot read " << jobFile << "\n";
    return 2;
  }
  std::vector<JobSpec> specs;
  std::string line;
  int lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    JobSpec spec;
    if (!parseJobLine(line, spec)) {
      std::cerr << jobFile << ":" << lineNo << ": bad job line\n";
      return 2;
    }
    specs.push_back(std::move(spec));
  }
  if (specs.empty()) {
    std::cerr << jobFile << ": no jobs\n";
    return 2;
  }

  obs::MetricsRegistry registry;
  svcOpts.metrics = &registry;
  SolveService service(svcOpts);
  std::cout << "c maxsatd: " << specs.size() << " job(s), "
            << svcOpts.workers << " worker(s), engine " << svcOpts.engine
            << "\n";

  struct Row {
    std::string path;
    JobId id = kJobIdUndef;
    bool shed = false;
  };
  std::vector<Row> rows;
  rows.reserve(specs.size());
  for (JobSpec& spec : specs) {
    Row row;
    row.path = spec.path;
    WcnfFormula instance;
    try {
      instance = loadDimacsWcnf(spec.path);
    } catch (const DimacsError& e) {
      std::cerr << "c " << spec.path << ": parse error: " << e.what() << "\n";
      return 2;
    }
    const SolveService::Submission sub =
        service.submit(std::move(instance), spec.limits);
    if (sub.status == SolveService::SubmitStatus::kAccepted) {
      row.id = sub.id;
    } else {
      row.shed = true;
    }
    rows.push_back(std::move(row));
  }

  // Live progress monitor: a sampling thread that polls every accepted
  // job and prints anytime bounds + work counters for the running ones
  // (SolveService::poll() exposes the job's ProgressSink), plus the
  // service-wide gauges. It also tracks the peak of the aggregated
  // memory gauge for the final summary.
  std::atomic<bool> monitorStop{false};
  std::atomic<std::int64_t> peakMem{0};
  auto samplePeak = [&] {
    const std::int64_t mem = registry.gauge("msu_svc_mem_bytes").value();
    std::int64_t prev = peakMem.load();
    while (mem > prev && !peakMem.compare_exchange_weak(prev, mem)) {
    }
  };
  std::thread monitor;
  if (metricsEvery > 0.0) {
    monitor = std::thread([&] {
      const auto period =
          std::chrono::duration<double>(metricsEvery);
      while (!monitorStop.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(period);
        if (monitorStop.load(std::memory_order_acquire)) break;
        samplePeak();
        std::ostringstream os;
        os << "c metrics: queued="
           << registry.gauge("msu_svc_queue_depth").value() << " running="
           << registry.gauge("msu_svc_running_jobs").value() << " mem="
           << registry.gauge("msu_svc_mem_bytes").value() << "B\n";
        for (const Row& row : rows) {
          if (row.id == kJobIdUndef) continue;
          const auto st = service.poll(row.id);
          if (!st || st->state != JobState::kRunning) continue;
          os << "c live: job " << row.id << " " << row.path << " lb="
             << st->lowerBound << " ub=";
          if (st->hasUpperBound) {
            os << st->upperBound;
          } else {
            os << "?";
          }
          os << " conflicts=" << st->conflicts << " calls=" << st->satCalls
             << " mem=" << st->memBytes << "B\n";
        }
        std::cout << os.str() << std::flush;
      }
    });
  }

  int exitCode = 0;
  for (const Row& row : rows) {
    std::cout << std::left << std::setw(32) << row.path << " ";
    if (row.shed) {
      std::cout << "overloaded\n";
      exitCode = 1;
      continue;
    }
    const JobOutcome out = service.await(row.id);
    samplePeak();
    const MaxSatResult& r = out.result;
    switch (r.status) {
      case MaxSatStatus::Optimum:
        std::cout << "optimum cost=" << r.cost;
        break;
      case MaxSatStatus::UnsatisfiableHard:
        std::cout << "unsat-hard";
        break;
      case MaxSatStatus::Unknown:
        std::cout << "unknown [" << r.lowerBound << ", " << r.upperBound
                  << "]";
        exitCode = 1;
        break;
    }
    if (out.abort != AbortReason::kNone) {
      std::cout << " abort=" << toString(out.abort);
    }
    std::cout << " queue=" << std::fixed << std::setprecision(3)
              << out.queue_seconds << "s solve=" << out.solve_seconds
              << "s\n";
  }

  if (monitor.joinable()) {
    monitorStop.store(true, std::memory_order_release);
    monitor.join();
  }

  const SolveService::Counters c = service.counters();
  std::cout << "c submitted=" << c.submitted << " completed=" << c.completed
            << " shed=" << c.shed << " peak-mem=" << peakMem.load() << "B\n";
  if (metricsEvery > 0.0) {
    std::cout << "c prometheus snapshot:\n";
    registry.writeProm(std::cout);
  }
  return exitCode;
}
