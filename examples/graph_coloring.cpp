/// \file graph_coloring.cpp
/// \brief Graph-optimization walk-through on the public API: color a
///        structured graph with too few colors (partial MaxSAT), find a
///        maximum cut (plain MaxSAT) and a minimum vertex cover, and
///        schedule a weighted timetable — the scheduling/routing
///        workloads the paper's introduction motivates MaxSAT with.
///        Every optimum is cross-checked against a brute-force reference.

#include <iostream>

#include "gen/graphs.h"
#include "harness/factory.h"

int main() {
  using namespace msu;

  const Graph g = ringWithChords(10, 6, /*seed=*/7);
  std::cout << "graph: " << g.numVertices << " vertices, " << g.edges.size()
            << " edges\n\n";

  // --- coloring with k = 2 (under-provisioned: clashes are inevitable)
  {
    const WcnfFormula w = coloringInstance(g, 2);
    auto solver = makeSolver("oll");
    const MaxSatResult r = solver->solve(w);
    const int reference = chromaticPenaltyBruteForce(g, 2);
    std::cout << "2-coloring:    " << r.cost << " monochromatic edge(s)"
              << " (brute force: " << reference << ", "
              << (r.status == MaxSatStatus::Optimum && r.cost == reference
                      ? "agree"
                      : "DISAGREE")
              << ")\n";
  }

  // --- max cut
  {
    const WcnfFormula w = maxCutInstance(g);
    auto solver = makeSolver("msu4-v2");
    const MaxSatResult r = solver->solve(w);
    const Weight total = static_cast<Weight>(g.edges.size());
    const Weight cut = total - r.cost;  // each uncut edge costs 1
    const Weight reference = maxCutBruteForce(g);
    std::cout << "max cut:       " << cut << " of " << total << " edges"
              << " (brute force: " << reference << ", "
              << (r.status == MaxSatStatus::Optimum && cut == reference
                      ? "agree"
                      : "DISAGREE")
              << ")\n";
  }

  // --- minimum vertex cover
  {
    const WcnfFormula w = vertexCoverInstance(g);
    auto solver = makeSolver("msu3");
    const MaxSatResult r = solver->solve(w);
    const int reference = vertexCoverBruteForce(g);
    std::cout << "vertex cover:  " << r.cost << " vertices"
              << " (brute force: " << reference << ", "
              << (r.status == MaxSatStatus::Optimum && r.cost == reference
                      ? "agree"
                      : "DISAGREE")
              << ")\n";
  }

  // --- weighted timetabling
  {
    TimetableParams params;
    params.numEvents = 10;
    params.numSlots = 3;
    params.conflictProbability = 0.35;
    params.seed = 11;
    const WcnfFormula w = timetablingInstance(params);
    auto solver = makeSolver("oll");
    const MaxSatResult r = solver->solve(w);
    if (r.status == MaxSatStatus::UnsatisfiableHard) {
      std::cout << "timetable:     over-constrained (no feasible schedule)\n";
    } else {
      std::cout << "timetable:     preference weight given up = " << r.cost
                << " of " << w.totalSoftWeight() << "\n";
    }
  }
  return 0;
}
