/// \file maxsat_cli.cpp
/// \brief A command-line MaxSAT solver over the library — the tool a
///        downstream user would actually run. Reads DIMACS CNF/WCNF from
///        a file (or stdin), solves with a selectable engine, and prints
///        MaxSAT-evaluation-style output (o/s/v lines).
///
/// Usage:
///   maxsat_cli [options] [file.wcnf|file.cnf|-]
///     --algo NAME       engine (default msu4-v2); see --list
///     --threads N       parallel portfolio of N workers racing the
///                       chosen engine plus diversified alternatives,
///                       with learnt-clause sharing (default 1)
///     --cubes N         cube-and-conquer with N workers instead of a
///                       racing portfolio: a lookahead splitter shards
///                       the instance into cubes conquered over a
///                       work-stealing queue (ignores --algo; also
///                       reachable as --algo cubesN)
///     --timeout SECONDS wall-clock budget (default: none)
///     --mem-mb N        cooperative memory cap in MiB: the solver
///                       tracks its own clause-storage footprint
///                       (SolverStats::mem_bytes) and aborts with a
///                       structured "memory" reason instead of letting
///                       the process OOM (default: none)
///     --inprocess       enable in-solver inprocessing between oracle
///                       calls (Solver::Options::inprocess)
///     --reuse-trail / --no-reuse-trail
///                       warm-started oracle calls: keep the solver
///                       trail across solve calls and re-propagate only
///                       the diverged assumption suffix (default: on;
///                       Solver::Options::reuse_trail)
///     --restart MODE    restart trajectory: luby (default), geom, or
///                       ema (glucose-style adaptive restarts with
///                       stable/focused mode switching and best-phase
///                       rephasing; Solver::Options::ema_restarts)
///     --stats           print run statistics (engine + CDCL substrate
///                       in one aligned block)
///     --trace FILE      record an execution trace (oracle calls, core
///                       trimming, restart segments, import drains,
///                       cube/worker activity) and write it as Chrome
///                       trace_event JSON — open FILE in Perfetto
///                       (ui.perfetto.dev) or chrome://tracing; see
///                       bench/README.md "Reading a trace"
///     --no-model        suppress the v line
///     --list            list available engines

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "cnf/dimacs.h"
#include "core/preprocess.h"
#include "harness/factory.h"
#include "harness/tables.h"
#include "obs/trace.h"
#include "par/cube.h"
#include "par/portfolio.h"

namespace {

void usage() {
  std::cout <<
      "usage: maxsat_cli [--algo NAME] [--threads N] [--cubes N]\n"
      "                  [--timeout SEC] [--mem-mb N]\n"
      "                  [--inprocess] [--reuse-trail|--no-reuse-trail]\n"
      "                  [--restart luby|geom|ema] [--stats]\n"
      "                  [--trace FILE] [--preprocess] [--no-model]\n"
      "                  [--list] [file.wcnf|-]\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace msu;

  std::string algo = "msu4-v2";
  int threads = 1;
  int cubes = 0;
  double timeout = 0.0;
  double memMb = 0.0;
  bool inprocess = false;
  bool reuseTrail = Solver::Options{}.reuse_trail;
  std::string restart = "luby";
  bool stats = false;
  bool preprocess = false;
  bool printModel = true;
  std::string tracePath;
  std::string path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--algo" && i + 1 < argc) {
      algo = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
      if (threads < 1) {
        std::cerr << "c --threads wants a positive count\n";
        return 2;
      }
    } else if (arg == "--cubes" && i + 1 < argc) {
      cubes = std::atoi(argv[++i]);
      if (cubes < 1) {
        std::cerr << "c --cubes wants a positive worker count\n";
        return 2;
      }
    } else if (arg == "--timeout" && i + 1 < argc) {
      timeout = std::atof(argv[++i]);
    } else if (arg == "--mem-mb" && i + 1 < argc) {
      memMb = std::atof(argv[++i]);
      if (memMb <= 0.0) {
        std::cerr << "c --mem-mb wants a positive cap\n";
        return 2;
      }
    } else if (arg == "--inprocess") {
      inprocess = true;
    } else if (arg == "--reuse-trail") {
      reuseTrail = true;
    } else if (arg == "--no-reuse-trail") {
      reuseTrail = false;
    } else if (arg == "--restart" && i + 1 < argc) {
      restart = argv[++i];
      if (restart != "luby" && restart != "geom" && restart != "ema") {
        std::cerr << "c --restart wants luby, geom or ema\n";
        return 2;
      }
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--trace" && i + 1 < argc) {
      tracePath = argv[++i];
    } else if (arg == "--preprocess") {
      preprocess = true;
    } else if (arg == "--no-model") {
      printModel = false;
    } else if (arg == "--list") {
      for (const std::string& name : solverNames()) {
        std::cout << name << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      std::cerr << "unknown option: " << arg << "\n";
      usage();
      return 2;
    } else {
      path = arg;
    }
  }

  WcnfFormula instance;
  try {
    if (path.empty() || path == "-") {
      instance = readDimacsWcnf(std::cin);
    } else {
      instance = loadDimacsWcnf(path);
    }
  } catch (const DimacsError& e) {
    std::cerr << "c parse error: " << e.what() << "\n";
    return 2;
  }
  std::cout << "c " << instance.summary() << "\n";

  // Optional MaxSAT-safe preprocessing (hard UP, dedup, merge).
  Weight forcedCost = 0;
  Assignment forced;
  if (preprocess) {
    PreprocessResult pre = preprocessWcnf(instance);
    if (!pre.simplified) {
      std::cout << "c preprocessing refuted the hard clauses\n";
      std::cout << "s UNSATISFIABLE\n";
      return 0;
    }
    forcedCost = pre.forcedCost;
    forced = std::move(pre.forced);
    instance = std::move(*pre.simplified);
    std::cout << "c preprocessed: " << instance.summary() << ", fixed "
              << pre.fixedVars << " vars, forced cost " << forcedCost << "\n";
  }

  MaxSatOptions opts;
  if (timeout > 0.0) opts.budget = Budget::wallClock(timeout);
  if (memMb > 0.0) {
    opts.budget.setMaxMemory(static_cast<std::int64_t>(memMb * 1024 * 1024));
  }
  // Shared across every Budget copy the engines make: lets the c-line
  // below name the limit that actually stopped an Unknown run.
  std::atomic<int> abortSink{static_cast<int>(AbortReason::kNone)};
  opts.budget.setAbortSink(&abortSink);
  obs::Tracer tracer;
  if (!tracePath.empty()) {
    tracer.setEnabled(true);
    opts.sat.trace = &tracer;
  }
  opts.sat.inprocess = inprocess;
  opts.sat.reuse_trail = reuseTrail;
  opts.sat.luby_restarts = restart != "geom";
  opts.sat.ema_restarts = restart == "ema";
  std::unique_ptr<MaxSatSolver> solver;
  PortfolioSolver* portfolio = nullptr;
  CubeSolver* cubeSolver = nullptr;
  if (threads > 1 &&
      (algo.rfind("portfolio", 0) == 0 || algo.rfind("cubes", 0) == 0)) {
    std::cerr << "c note: --threads is ignored for --algo " << algo
              << " (the name fixes the worker count)\n";
  }
  if (cubes > 0) {
    CubeOptions co;
    co.base = opts;
    co.threads = cubes;
    auto c = std::make_unique<CubeSolver>(co);
    cubeSolver = c.get();
    solver = std::move(c);
  } else if (threads > 1 && algo.rfind("portfolio", 0) != 0 &&
             algo.rfind("cubes", 0) != 0) {
    // Race the requested engine (worker 0, base configuration) against
    // diversified alternatives, sharing learnt clauses. Validate the
    // name here: PortfolioSolver silently drops unbuildable engines.
    bool known = false;
    for (const std::string& name : solverNames()) known |= (name == algo);
    if (!known) {
      std::cerr << "c unknown engine '" << algo << "' (see --list)\n";
      return 2;
    }
    PortfolioOptions po;
    po.base = opts;
    po.threads = threads;
    po.engines.push_back(algo);
    for (const std::string& e : PortfolioSolver::defaultEngines()) {
      if (e != algo) po.engines.push_back(e);
    }
    auto p = std::make_unique<PortfolioSolver>(po);
    portfolio = p.get();
    solver = std::move(p);
  } else {
    solver = makeSolver(algo, opts);
  }
  if (!solver) {
    std::cerr << "c unknown engine '" << algo << "' (see --list)\n";
    return 2;
  }
  std::cout << "c engine: " << solver->name() << "\n";

  MaxSatResult result = solver->solve(instance);
  if (portfolio != nullptr && portfolio->lastWinner() >= 0) {
    std::cout << "c portfolio winner: worker " << portfolio->lastWinner()
              << " (" << portfolio->lastWinnerEngine() << ")\n";
  }
  if (cubeSolver != nullptr) {
    std::cout << "c cubes: " << cubeSolver->lastNumCubes() << ", steals "
              << cubeSolver->lastSteals() << "\n";
  }

  // Splice hard-forced values back into the model after preprocessing.
  if (preprocess && result.status == MaxSatStatus::Optimum) {
    for (std::size_t v = 0; v < result.model.size() && v < forced.size();
         ++v) {
      if (forced[v] != lbool::Undef) result.model[v] = forced[v];
    }
  }

  switch (result.status) {
    case MaxSatStatus::Optimum:
      std::cout << "o " << result.cost + forcedCost << "\n";
      std::cout << "s OPTIMUM FOUND\n";
      if (printModel) {
        std::cout << "v";
        for (std::size_t v = 0; v < result.model.size(); ++v) {
          std::cout << ' '
                    << (result.model[v] == lbool::True
                            ? static_cast<int>(v) + 1
                            : -(static_cast<int>(v) + 1));
        }
        std::cout << "\n";
      }
      break;
    case MaxSatStatus::UnsatisfiableHard:
      std::cout << "s UNSATISFIABLE\n";
      break;
    case MaxSatStatus::Unknown: {
      const auto reason = static_cast<AbortReason>(abortSink.load());
      if (reason != AbortReason::kNone) {
        std::cout << "c abort: " << toString(reason) << "\n";
      }
      std::cout << "c bounds: " << result.lowerBound << " <= cost <= "
                << result.upperBound << "\n";
      std::cout << "s UNKNOWN\n";
      break;
    }
  }

  if (stats) {
    // One aligned block: engine counters, then the CDCL substrate's
    // search/propagation/lifecycle/inprocessing rows.
    const EngineRunCounters eng{result.iterations, result.coresFound,
                                result.satCalls};
    printRunStats(std::cout, eng, result.satStats, "run statistics:", "c ");
  }
  if (!tracePath.empty()) {
    // Workers are joined (solve returned), so the export-at-quiescence
    // contract holds here.
    if (tracer.exportChromeTrace(tracePath)) {
      std::cout << "c trace: wrote " << tracePath << " ("
                << tracer.retained() << " events";
      if (tracer.dropped() > 0) {
        std::cout << ", " << tracer.dropped() << " dropped";
      }
      std::cout << ")\n";
    } else {
      std::cerr << "c trace: cannot write " << tracePath << "\n";
    }
  }
  return result.status == MaxSatStatus::Unknown ? 1 : 0;
}
