/// \file quickstart.cpp
/// \brief Minimal tour of the public API: build a MaxSAT instance, solve
///        it with msu4 (the paper's algorithm), and inspect the result.
///
/// The instance is Example 2 from the paper (§3.3): eight clauses over
/// four variables whose MaxSAT solution satisfies 6 clauses (cost 2).

#include <iostream>

#include "core/msu4.h"
#include "cnf/wcnf.h"

int main() {
  using namespace msu;

  // phi = (x1)(~x1+~x2)(x2)(~x1+~x3)(x3)(~x2+~x3)(x1+~x4)(~x1+x4)
  // Variables are 0-based: x1 -> 0, ..., x4 -> 3.
  CnfFormula phi(4);
  phi.addClause({posLit(0)});
  phi.addClause({negLit(0), negLit(1)});
  phi.addClause({posLit(1)});
  phi.addClause({negLit(0), negLit(2)});
  phi.addClause({posLit(2)});
  phi.addClause({negLit(1), negLit(2)});
  phi.addClause({posLit(0), negLit(3)});
  phi.addClause({negLit(0), posLit(3)});

  // Plain MaxSAT: every clause is soft with weight 1.
  const WcnfFormula instance = WcnfFormula::allSoft(phi);
  std::cout << "instance: " << instance.summary() << "\n";

  // msu4 v2 = sorting-network cardinality encoding (the paper's fastest).
  Msu4Solver solver = Msu4Solver::v2();
  const MaxSatResult result = solver.solve(instance);

  std::cout << "status:            " << toString(result.status) << "\n";
  std::cout << "falsified clauses: " << result.cost << "\n";
  std::cout << "satisfied clauses: " << result.numSatisfied(instance)
            << "  (paper: 6)\n";
  std::cout << "iterations:        " << result.iterations
            << ", cores: " << result.coresFound << "\n";

  std::cout << "model:            ";
  for (std::size_t v = 0; v < result.model.size(); ++v) {
    std::cout << " x" << v + 1 << "="
              << (result.model[v] == lbool::True ? 1 : 0);
  }
  std::cout << "\n";

  // Verify the model achieves the reported cost.
  const auto checked = instance.cost(result.model);
  std::cout << "model cost check:  "
            << (checked && *checked == result.cost ? "ok" : "MISMATCH")
            << "\n";
  return result.status == MaxSatStatus::Optimum ? 0 : 1;
}
