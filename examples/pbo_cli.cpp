/// \file pbo_cli.cpp
/// \brief Stand-alone pseudo-Boolean optimizer over the OPB competition
///        format — the minisat+-style engine behind the paper's "pbo"
///        baseline, exposed directly. Without a file argument it solves
///        a built-in 0/1 knapsack and prints the instance it solved.
///
/// Usage: pbo_cli [--adder] [file.opb]
/// Output follows PB-competition conventions: `o <value>` improvements,
/// final `s OPTIMUM FOUND` / `s UNSATISFIABLE` / `s UNKNOWN`.

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "pbo/opb.h"
#include "pbo/pbo_solver.h"

int main(int argc, char** argv) {
  using namespace msu;

  PboOptions opts;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--adder") == 0) {
      opts.encoding = PbEncoding::Adder;
    } else {
      path = argv[i];
    }
  }

  PboProblem problem;
  if (path != nullptr) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "cannot open " << path << "\n";
      return 2;
    }
    try {
      problem = readOpb(in);
    } catch (const OpbError& e) {
      std::cerr << "parse error: " << e.what() << "\n";
      return 2;
    }
  } else {
    // Knapsack: maximize value 4a+5b+3c+7d subject to weight
    // 3a+4b+2c+5d <= 8 — as minimization of the forgone value.
    const std::string opb =
        "* built-in knapsack demo\n"
        "min: +4 ~x1 +5 ~x2 +3 ~x3 +7 ~x4 ;\n"
        "+3 x1 +4 x2 +2 x3 +5 x4 <= 8 ;\n";
    std::cout << opb << "\n";
    problem = parseOpb(opb);
  }

  PboSolver solver(opts);
  const PboResult r = solver.solve(problem);
  switch (r.status) {
    case PboStatus::Optimum:
      std::cout << "o " << r.objective << "\n";
      std::cout << "s OPTIMUM FOUND\n";
      std::cout << "v";
      for (Var v = 0; v < problem.numVars; ++v) {
        std::cout << ' ' << (r.model[static_cast<std::size_t>(v)] ==
                                     lbool::True
                                 ? ""
                                 : "-")
                  << 'x' << v + 1;
      }
      std::cout << "\n";
      return 0;
    case PboStatus::Infeasible:
      std::cout << "s UNSATISFIABLE\n";
      return 0;
    case PboStatus::Unknown:
      std::cout << "s UNKNOWN\n";
      return 1;
  }
  return 1;
}
