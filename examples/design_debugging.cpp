/// \file design_debugging.cpp
/// \brief The paper's motivating EDA application (Safarpour et al.,
///        FMCAD'07): locating a design error with MaxSAT.
///
/// A random "golden" circuit gets one gate corrupted; input/output
/// vectors from the golden design then over-constrain the faulty
/// netlist. Solving the resulting partial MaxSAT instance (hard I/O,
/// soft gate clauses) with msu4 yields a minimal set of gate clauses to
/// give up — which points at the corrupted gate.

#include <iostream>
#include <map>

#include "core/msu4.h"
#include "gen/circuit.h"
#include "gen/debug.h"

int main() {
  using namespace msu;

  DebugParams params;
  params.circuit.numInputs = 8;
  params.circuit.numGates = 120;
  params.circuit.numOutputs = 4;
  params.circuit.seed = 2008;
  params.numVectors = 5;
  params.seed = 314;

  std::cout << "generating a " << params.circuit.numGates
            << "-gate circuit with one injected gate error...\n";
  const DebugInstance inst = designDebugInstance(params, /*partial=*/true);
  std::cout << "instance: " << inst.wcnf.summary() << "\n";
  std::cout << "vectors exposing the bug: " << inst.mismatchVectors << "\n";
  std::cout << "ground-truth error site: gate " << inst.errorGate << " ("
            << toString(
                   randomCircuit(params.circuit).gate(inst.errorGate).type)
            << " corrupted)\n\n";

  Msu4Solver solver = Msu4Solver::v2();
  const MaxSatResult result = solver.solve(inst.wcnf);

  std::cout << "status:             " << toString(result.status) << "\n";
  std::cout << "gate clauses to drop: " << result.cost << "\n";
  std::cout << "cores analysed:       " << result.coresFound << "\n";
  std::cout << "SAT conflicts:        " << result.satStats.conflicts << "\n";

  if (result.status != MaxSatStatus::Optimum) return 1;

  // Diagnosis: which soft (gate) clauses does the optimal model falsify?
  std::map<int, int> falsifiedPerClause;
  int shown = 0;
  std::cout << "\nfalsified gate clauses (error candidates):\n";
  for (int i = 0; i < inst.wcnf.numSoft(); ++i) {
    const Clause& c = inst.wcnf.soft()[static_cast<std::size_t>(i)].lits;
    bool sat = false;
    for (Lit p : c) {
      if (applySign(result.model[static_cast<std::size_t>(p.var())], p) ==
          lbool::True) {
        sat = true;
        break;
      }
    }
    if (!sat && shown < 10) {
      std::cout << "  soft clause #" << i << " (" << c.size()
                << " literals)\n";
      ++shown;
    }
  }
  std::cout << "\nan engineer would now inspect the gates whose clauses "
               "were dropped.\n";
  return 0;
}
