/// \file proof_logging.cpp
/// \brief Certified unsatisfiability end-to-end: solve an equivalence-
///        checking miter with the CDCL engine while streaming a DRUP
///        proof, then replay the proof through the independent RUP
///        checker — the modern form of the Zhang & Malik (DATE'03)
///        validation flow the paper cites as reference [27] for
///        unsatisfiable-core extraction.
///
/// Also shows the in-memory variant riding along a full msu4 MaxSAT run,
/// where every learnt clause across the incremental solve is checked.

#include <iostream>
#include <sstream>

#include "core/msu4.h"
#include "gen/pigeonhole.h"
#include "gen/random_cnf.h"
#include "proof/checker.h"
#include "proof/drup.h"
#include "sat/solver.h"

int main() {
  using namespace msu;

  // --- 1. refutation proof for an unsatisfiable formula -----------------
  const CnfFormula f = pigeonhole(6, 5);
  std::ostringstream drupText;
  DrupWriter writer(drupText);
  Solver::Options opts;
  opts.tracer = &writer;
  Solver solver(opts);
  for (Var v = 0; v < f.numVars(); ++v) static_cast<void>(solver.newVar());
  for (const Clause& c : f.clauses()) {
    if (!solver.addClause(c)) break;
  }
  const lbool verdict = solver.okay() ? solver.solve() : lbool::False;
  std::cout << "php(6,5): " << f.summary() << "\n";
  std::cout << "verdict:  " << (verdict == lbool::False ? "UNSAT" : "?")
            << " after " << solver.stats().conflicts << " conflicts\n";

  std::istringstream in(drupText.str());
  const auto lines = parseDrup(in);
  if (!lines) {
    std::cerr << "internal error: emitted DRUP failed to parse\n";
    return 1;
  }
  const ProofCheckResult check = checkProof(f, *lines);
  std::cout << "proof:    " << lines->size() << " lines, "
            << check.lemmasChecked << " lemmas RUP-checked, refutation "
            << (check.refutationVerified ? "VERIFIED" : "NOT verified")
            << "\n\n";

  // --- 2. lemma-soundness trace of a MaxSAT run --------------------------
  const CnfFormula base = randomUnsat3Sat(20, 6.0, /*seed=*/3);
  InMemoryProof proof;
  MaxSatOptions mopts;
  mopts.sat.tracer = &proof;
  Msu4Solver msu4(mopts);
  const MaxSatResult r = msu4.solve(WcnfFormula::allSoft(base));
  std::cout << "msu4 on " << base.summary() << "\n";
  std::cout << "optimum:  cost " << r.cost << " (" << r.iterations
            << " iterations, " << r.coresFound << " cores)\n";
  const ProofCheckResult mcheck = checkProof(proof.lines());
  std::cout << "trace:    " << proof.numLemmas() << " lemmas, all RUP: "
            << (mcheck.ok ? "yes" : "NO") << "\n";
  return check.refutationVerified && mcheck.ok ? 0 : 1;
}
