/// \file core_bounds.cpp
/// \brief Demonstrates §2.3 of the paper directly: Proposition 1 (K
///        disjoint unsatisfiable cores give a MaxSAT upper bound
///        |phi| - K on satisfied clauses) and Proposition 2 (a model of
///        the blocking-variable relaxation gives a lower bound), then
///        shows msu4 landing between the two.

#include <iostream>

#include "core/bounds.h"
#include "core/msu4.h"
#include "gen/random_cnf.h"

int main() {
  using namespace msu;

  // An over-constrained random 3-SAT formula: several disjoint cores.
  // (Kept small: the paper itself observes that core-guided search shines
  // on structured instances and struggles on dense random ones.)
  const CnfFormula phi = randomUnsat3Sat(/*numVars=*/28, /*ratio=*/5.5,
                                         /*seed=*/42);
  const WcnfFormula instance = WcnfFormula::allSoft(phi);
  const int m = instance.numSoft();
  std::cout << "instance: " << instance.summary() << "\n\n";

  // Proposition 1: disjoint unsatisfiable cores.
  const DisjointCoresResult cores = disjointCores(instance);
  std::cout << "disjoint cores found: " << cores.cores.size()
            << (cores.complete ? "" : " (incomplete)") << "\n";
  for (std::size_t i = 0; i < cores.cores.size() && i < 8; ++i) {
    std::cout << "  core " << i << ": " << cores.cores[i].size()
              << " clauses\n";
  }
  const Weight costLb = cores.costLowerBound();
  std::cout << "Proposition 1: satisfied <= |phi| - K = " << m - costLb
            << "   (cost >= " << costLb << ")\n\n";

  // Proposition 2: one blocking-variable model.
  const auto ub = blockingUpperBound(instance);
  if (!ub) {
    std::cout << "hard clauses unsatisfiable\n";
    return 1;
  }
  std::cout << "Proposition 2: satisfied >= |phi| - |B| = "
            << m - ub->costUpperBound << "   (cost <= " << ub->costUpperBound
            << ")\n\n";

  // The true optimum, via msu4 (budgeted so the demo always terminates).
  MaxSatOptions opts;
  opts.budget = Budget::wallClock(30.0);
  Msu4Solver solver = Msu4Solver::v2(opts);
  const MaxSatResult r = solver.solve(instance);
  if (r.status != MaxSatStatus::Optimum) {
    std::cout << "msu4 did not finish\n";
    return 1;
  }
  std::cout << "msu4 optimum: satisfied = " << r.numSatisfied(instance)
            << " (cost " << r.cost << ")\n";
  std::cout << "bounds sandwich: " << costLb << " <= " << r.cost
            << " <= " << ub->costUpperBound << " : "
            << (costLb <= r.cost && r.cost <= ub->costUpperBound ? "ok"
                                                                 : "VIOLATED")
            << "\n";
  return costLb <= r.cost && r.cost <= ub->costUpperBound ? 0 : 1;
}
