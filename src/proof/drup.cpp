#include "proof/drup.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <string>

namespace msu {

std::int64_t InMemoryProof::numLemmas() const {
  std::int64_t n = 0;
  for (const ProofLine& l : lines_) {
    if (l.kind == ProofLine::Kind::Lemma) ++n;
  }
  return n;
}

bool InMemoryProof::claimsRefutation() const {
  for (const ProofLine& l : lines_) {
    if (l.kind == ProofLine::Kind::Lemma && l.lits.empty()) return true;
  }
  return false;
}

namespace {

void writeClauseLine(std::ostream& out, std::span<const Lit> lits,
                     bool deletion) {
  if (deletion) out << "d ";
  for (const Lit p : lits) out << p.toDimacs() << ' ';
  out << "0\n";
}

}  // namespace

void DrupWriter::axiom(std::span<const Lit> /*lits*/) {}

void DrupWriter::lemma(std::span<const Lit> lits) {
  writeClauseLine(*out_, lits, /*deletion=*/false);
}

void DrupWriter::deleted(std::span<const Lit> lits) {
  writeClauseLine(*out_, lits, /*deletion=*/true);
}

std::optional<std::vector<ProofLine>> parseDrup(std::istream& in) {
  std::vector<ProofLine> lines;
  std::string token;
  ProofLine current;
  current.kind = ProofLine::Kind::Lemma;
  bool inClause = false;
  while (in >> token) {
    if (token == "d") {
      if (inClause) return std::nullopt;  // 'd' mid-clause
      current.kind = ProofLine::Kind::Delete;
      continue;
    }
    std::int64_t value = 0;
    try {
      std::size_t pos = 0;
      value = std::stoll(token, &pos);
      if (pos != token.size()) return std::nullopt;
    } catch (...) {
      return std::nullopt;
    }
    if (value == 0) {
      lines.push_back(std::move(current));
      current = ProofLine{};
      current.kind = ProofLine::Kind::Lemma;
      inClause = false;
    } else {
      current.lits.push_back(Lit::fromDimacs(static_cast<std::int32_t>(value)));
      inClause = true;
    }
  }
  if (inClause || current.kind == ProofLine::Kind::Delete) {
    return std::nullopt;  // truncated final clause
  }
  return lines;
}

void writeDrup(std::ostream& out, const std::vector<ProofLine>& lines) {
  for (const ProofLine& l : lines) {
    switch (l.kind) {
      case ProofLine::Kind::Axiom:
        break;  // carried by the CNF input
      case ProofLine::Kind::Lemma:
        writeClauseLine(out, l.lits, /*deletion=*/false);
        break;
      case ProofLine::Kind::Delete:
        writeClauseLine(out, l.lits, /*deletion=*/true);
        break;
    }
  }
}

}  // namespace msu
