/// \file checker.h
/// \brief Independent RUP/DRUP proof checker. Replays a clausal proof
///        against the original formula: every lemma must follow from the
///        current clause database by unit propagation (reverse unit
///        propagation), the modern form of the resolution-based SAT
///        solver validation of Zhang & Malik (DATE'03), the paper's
///        reference [27].
///
/// The checker shares no code with the solver — independent watched-
/// literal propagation over its own database — so it catches CDCL
/// implementation bugs rather than reproducing them.

#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "cnf/formula.h"
#include "proof/drup.h"

namespace msu {

/// Incremental RUP checker over a growing/shrinking clause database.
class RupChecker {
 public:
  RupChecker() = default;

  /// Pre-creates variables `0..n-1` (grown on demand otherwise).
  void ensureVars(int n);

  /// Adds a clause as an axiom (no verification).
  void addAxiom(std::span<const Lit> lits);

  /// Verifies that `lits` holds by unit propagation from the current
  /// database, then adds it. Returns false (and does not add) when the
  /// RUP check fails.
  [[nodiscard]] bool addLemma(std::span<const Lit> lits);

  /// Removes one occurrence of the clause (as a literal multiset) from
  /// the database; silently ignores unknown clauses. Literals already
  /// propagated because of this clause remain — matching solver
  /// behaviour, and sound because they were implied when derived.
  void deleteClause(std::span<const Lit> lits);

  /// True once the database has been refuted (empty clause derived or
  /// top-level propagation conflict).
  [[nodiscard]] bool provedUnsat() const { return proved_unsat_; }

  /// Number of RUP checks performed.
  [[nodiscard]] std::int64_t lemmasChecked() const { return lemmas_checked_; }

  /// Number of propagations performed across all checks.
  [[nodiscard]] std::int64_t propagations() const { return propagations_; }

 private:
  struct DbClause {
    Clause lits;
    bool alive = true;
  };

  void ensureVar(Var v);
  [[nodiscard]] lbool value(Lit p) const;
  void enqueue(Lit p);
  /// Unit propagation from qhead_; true iff a conflict was found.
  [[nodiscard]] bool propagateConflict();
  void attach(int id);
  void detach(int id);
  /// Adds the clause to the database and updates the permanent trail
  /// (enqueues a unit / flags the refutation).
  void install(std::span<const Lit> lits);
  void rollbackTo(std::size_t trailSize);

  std::vector<DbClause> clauses_;
  std::map<Clause, std::vector<int>> index_;  // sorted lits -> ids
  std::vector<std::vector<int>> watches_;     // lit index -> clause ids
  std::vector<lbool> assigns_;
  std::vector<Lit> trail_;
  std::size_t qhead_ = 0;
  bool proved_unsat_ = false;
  std::int64_t lemmas_checked_ = 0;
  std::int64_t propagations_ = 0;
};

/// Outcome of replaying a whole proof.
struct ProofCheckResult {
  bool ok = false;                  ///< every lemma passed its RUP check
  bool refutationVerified = false;  ///< database provably unsatisfiable
  std::int64_t lemmasChecked = 0;
  int firstBadLine = -1;  ///< index into `lines` of the first failure
};

/// Replays a recorded proof whose axioms are inline (tracer attached to
/// the solver from the start).
[[nodiscard]] ProofCheckResult checkProof(const std::vector<ProofLine>& lines);

/// Replays a DRUP proof (lemma/delete lines) against an original CNF.
[[nodiscard]] ProofCheckResult checkProof(const CnfFormula& cnf,
                                          const std::vector<ProofLine>& lines);

}  // namespace msu
