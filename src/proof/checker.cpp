#include "proof/checker.h"

#include <algorithm>
#include <cassert>

namespace msu {

void RupChecker::ensureVars(int n) {
  if (n > 0) ensureVar(n - 1);
}

void RupChecker::ensureVar(Var v) {
  while (static_cast<std::size_t>(v) >= assigns_.size()) {
    assigns_.push_back(lbool::Undef);
    watches_.emplace_back();
    watches_.emplace_back();
  }
}

lbool RupChecker::value(Lit p) const {
  return applySign(assigns_[static_cast<std::size_t>(p.var())], p);
}

void RupChecker::enqueue(Lit p) {
  assigns_[static_cast<std::size_t>(p.var())] =
      p.positive() ? lbool::True : lbool::False;
  trail_.push_back(p);
}

bool RupChecker::propagateConflict() {
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];
    ++propagations_;
    // Clauses with a watch on ~p (registered under p's index) just lost
    // that watch to falsification.
    std::vector<int>& ws = watches_[static_cast<std::size_t>(p.index())];
    std::size_t j = 0;
    for (std::size_t i = 0; i < ws.size(); ++i) {
      const int id = ws[i];
      DbClause& c = clauses_[static_cast<std::size_t>(id)];
      if (!c.alive) continue;  // lazily dropped
      // Normalize: watched literals are lits[0] and lits[1].
      if (c.lits[0] == ~p) std::swap(c.lits[0], c.lits[1]);
      assert(c.lits[1] == ~p);
      if (value(c.lits[0]) == lbool::True) {
        ws[j++] = id;  // satisfied by the other watch
        continue;
      }
      // Look for a replacement watch.
      bool moved = false;
      for (std::size_t k = 2; k < c.lits.size(); ++k) {
        if (value(c.lits[k]) != lbool::False) {
          std::swap(c.lits[1], c.lits[k]);
          watches_[static_cast<std::size_t>((~c.lits[1]).index())].push_back(
              id);
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Unit or conflicting.
      ws[j++] = id;
      if (value(c.lits[0]) == lbool::False) {
        // Conflict: keep remaining watchers, report.
        for (std::size_t k = i + 1; k < ws.size(); ++k) ws[j++] = ws[k];
        ws.resize(j);
        return true;
      }
      enqueue(c.lits[0]);
    }
    ws.resize(j);
  }
  return false;
}

void RupChecker::attach(int id) {
  DbClause& c = clauses_[static_cast<std::size_t>(id)];
  assert(c.lits.size() >= 2);
  // Prefer non-false literals as watches so the invariant holds under
  // the current permanent assignment.
  auto promote = [&](std::size_t slot) {
    if (value(c.lits[slot]) != lbool::False) return;
    for (std::size_t k = slot + 1; k < c.lits.size(); ++k) {
      if (value(c.lits[k]) != lbool::False) {
        std::swap(c.lits[slot], c.lits[k]);
        return;
      }
    }
  };
  promote(0);
  promote(1);
  watches_[static_cast<std::size_t>((~c.lits[0]).index())].push_back(id);
  watches_[static_cast<std::size_t>((~c.lits[1]).index())].push_back(id);
}

void RupChecker::detach(int id) {
  DbClause& c = clauses_[static_cast<std::size_t>(id)];
  for (int slot = 0; slot < 2; ++slot) {
    auto& ws = watches_[static_cast<std::size_t>(
        (~c.lits[static_cast<std::size_t>(slot)]).index())];
    ws.erase(std::remove(ws.begin(), ws.end(), id), ws.end());
  }
}

void RupChecker::install(std::span<const Lit> lits) {
  for (const Lit p : lits) ensureVar(p.var());
  if (lits.empty()) {
    proved_unsat_ = true;
    return;
  }

  // Normalize: sorted, duplicate-free; tautologies never propagate and
  // are dropped entirely (their deletion later is a harmless no-op).
  Clause sorted(lits.begin(), lits.end());
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i] == ~sorted[i - 1]) return;  // tautology
  }

  const int id = static_cast<int>(clauses_.size());
  clauses_.push_back({sorted, true});
  index_[sorted].push_back(id);

  if (clauses_.back().lits.size() >= 2) {
    attach(id);
  }
  // Maintain the permanent trail: a unit (or a clause falsified by the
  // permanent assignment) advances it.
  bool satisfied = false;
  Lit unassigned = kUndefLit;
  int numUnassigned = 0;
  for (const Lit p : clauses_.back().lits) {
    const lbool v = value(p);
    if (v == lbool::True) satisfied = true;
    if (v == lbool::Undef) {
      ++numUnassigned;
      unassigned = p;
    }
  }
  if (satisfied) return;
  if (numUnassigned == 0) {
    proved_unsat_ = true;
    return;
  }
  if (numUnassigned == 1) {
    enqueue(unassigned);
    if (propagateConflict()) proved_unsat_ = true;
  }
}

void RupChecker::addAxiom(std::span<const Lit> lits) { install(lits); }

bool RupChecker::addLemma(std::span<const Lit> lits) {
  ++lemmas_checked_;
  if (proved_unsat_) {
    install(lits);
    return true;  // anything follows from a refuted database
  }

  // RUP: assume the negation on top of the permanent trail; propagation
  // must yield a conflict.
  const std::size_t mark = trail_.size();
  const std::size_t qmark = qhead_;
  bool conflict = false;
  for (const Lit p : lits) {
    ensureVar(p.var());
    const lbool v = value(p);
    if (v == lbool::True) {
      conflict = true;  // ¬p contradicts the trail immediately
      break;
    }
    if (v == lbool::Undef) enqueue(~p);
  }
  if (!conflict) conflict = propagateConflict();
  rollbackTo(mark);
  qhead_ = qmark;
  if (!conflict) return false;
  install(lits);
  return true;
}

void RupChecker::rollbackTo(std::size_t trailSize) {
  while (trail_.size() > trailSize) {
    assigns_[static_cast<std::size_t>(trail_.back().var())] = lbool::Undef;
    trail_.pop_back();
  }
}

void RupChecker::deleteClause(std::span<const Lit> lits) {
  Clause sorted(lits.begin(), lits.end());
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  const auto it = index_.find(sorted);
  if (it == index_.end() || it->second.empty()) return;
  const int id = it->second.back();
  it->second.pop_back();
  if (it->second.empty()) index_.erase(it);
  DbClause& c = clauses_[static_cast<std::size_t>(id)];
  if (c.lits.size() >= 2) detach(id);
  c.alive = false;
}

namespace {

ProofCheckResult replay(RupChecker& checker,
                        const std::vector<ProofLine>& lines) {
  ProofCheckResult result;
  result.ok = true;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const ProofLine& line = lines[i];
    switch (line.kind) {
      case ProofLine::Kind::Axiom:
        checker.addAxiom(line.lits);
        break;
      case ProofLine::Kind::Lemma:
        if (!checker.addLemma(line.lits)) {
          result.ok = false;
          result.firstBadLine = static_cast<int>(i);
          result.lemmasChecked = checker.lemmasChecked();
          return result;
        }
        break;
      case ProofLine::Kind::Delete:
        checker.deleteClause(line.lits);
        break;
    }
  }
  result.lemmasChecked = checker.lemmasChecked();
  result.refutationVerified = checker.provedUnsat();
  return result;
}

}  // namespace

ProofCheckResult checkProof(const std::vector<ProofLine>& lines) {
  RupChecker checker;
  return replay(checker, lines);
}

ProofCheckResult checkProof(const CnfFormula& cnf,
                            const std::vector<ProofLine>& lines) {
  RupChecker checker;
  checker.ensureVars(cnf.numVars());
  for (const Clause& c : cnf.clauses()) checker.addAxiom(c);
  return replay(checker, lines);
}

}  // namespace msu
