/// \file drup.h
/// \brief Clausal proof recording: an in-memory recorder and a DRUP text
///        writer/parser for the solver's ProofTracer events.
///
/// The DRUP text format is the standard one consumed by independent
/// checkers (drat-trim and descendants): one clause per line in DIMACS
/// literals terminated by 0, deletions prefixed with `d`. Axioms are not
/// written — the original CNF file carries them — so a (cnf, drup)
/// pair is externally checkable, while the in-memory form keeps axioms
/// inline to support the incremental clause additions MaxSAT engines
/// perform mid-solve.

#pragma once

#include <iosfwd>
#include <optional>
#include <vector>

#include "cnf/formula.h"
#include "sat/proof_tracer.h"

namespace msu {

/// One recorded proof event.
struct ProofLine {
  enum class Kind {
    Axiom,   ///< user clause; checker adds it unverified
    Lemma,   ///< derived clause; checker verifies RUP
    Delete,  ///< clause removed from the database
  };
  Kind kind = Kind::Lemma;
  Clause lits;
};

/// Tracer that records every event in memory, in order.
class InMemoryProof final : public ProofTracer {
 public:
  void axiom(std::span<const Lit> lits) override {
    lines_.push_back(
        {ProofLine::Kind::Axiom, Clause(lits.begin(), lits.end())});
  }
  void lemma(std::span<const Lit> lits) override {
    lines_.push_back(
        {ProofLine::Kind::Lemma, Clause(lits.begin(), lits.end())});
  }
  void deleted(std::span<const Lit> lits) override {
    lines_.push_back(
        {ProofLine::Kind::Delete, Clause(lits.begin(), lits.end())});
  }

  [[nodiscard]] const std::vector<ProofLine>& lines() const { return lines_; }

  /// Number of recorded lemmas (derived clauses).
  [[nodiscard]] std::int64_t numLemmas() const;

  /// True iff an empty-clause lemma was recorded (claimed refutation).
  [[nodiscard]] bool claimsRefutation() const;

  void clear() { lines_.clear(); }

 private:
  std::vector<ProofLine> lines_;
};

/// Tracer that streams DRUP text to an ostream (axioms are skipped; the
/// CNF input file carries them). The stream must outlive the tracer.
class DrupWriter final : public ProofTracer {
 public:
  explicit DrupWriter(std::ostream& out) : out_(&out) {}

  void axiom(std::span<const Lit> lits) override;
  void lemma(std::span<const Lit> lits) override;
  void deleted(std::span<const Lit> lits) override;

 private:
  std::ostream* out_;
};

/// Parses DRUP text (lemma and `d` lines). Returns nullopt on malformed
/// input. Axiom lines do not exist in the format.
[[nodiscard]] std::optional<std::vector<ProofLine>> parseDrup(
    std::istream& in);

/// Writes the lemma/delete lines of a recorded proof as DRUP text.
void writeDrup(std::ostream& out, const std::vector<ProofLine>& lines);

}  // namespace msu
