#include "sat/solver.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace msu {

namespace {
/// Activity ceiling before rescaling.
constexpr double kVarRescaleLimit = 1e100;
constexpr float kClaRescaleLimit = 1e20f;
}  // namespace

double lubySequence(double y, int i) {
  // Find the finite subsequence containing index i, and its size.
  int size = 1;
  int seq = 0;
  while (size < i + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) / 2;
    --seq;
    i = i % size;
  }
  return std::pow(y, seq);
}

Solver::Solver(const Options& opts) : opts_(opts), order_heap_(activity_) {}

Var Solver::newVar(bool decisionVar) {
  const Var v = numVars();
  watches_.emplace_back();
  watches_.emplace_back();
  assigns_.push_back(lbool::Undef);
  vardata_.push_back(VarData{});
  polarity_.push_back(1);  // default phase: assign false first
  decision_.push_back(decisionVar ? 1 : 0);
  activity_.push_back(0.0);
  seen_.push_back(0);
  if (decisionVar) order_heap_.insert(v);
  return v;
}

bool Solver::addClause(std::span<const Lit> lits) {
  assert(decisionLevel() == 0);
  if (!ok_) return false;
  traceAxiom(lits);

  // Sort and simplify against the level-0 assignment.
  std::vector<Lit> ps(lits.begin(), lits.end());
  std::sort(ps.begin(), ps.end());
  Lit prev = kUndefLit;
  std::size_t j = 0;
  for (Lit p : ps) {
    assert(p.var() < numVars());
    if (value(p) == lbool::True || p == ~prev) return true;  // satisfied/taut
    if (value(p) != lbool::False && p != prev) {
      ps[j++] = p;
      prev = p;
    }
  }
  ps.resize(j);

  // Level-0 strengthening is itself a unit-propagation consequence;
  // record it so the checker's database matches the solver's.
  if (ps.size() != lits.size()) traceLemma(ps);

  if (ps.empty()) {
    ok_ = false;
    return false;
  }
  if (ps.size() == 1) {
    uncheckedEnqueue(ps[0]);
    ok_ = (propagate() == kCRefUndef);
    if (!ok_) traceLemma({});  // level-0 conflict refutes the database
    return ok_;
  }
  const CRef ref = arena_.alloc(ps, /*learnt=*/false);
  clauses_.push_back(ref);
  attachClause(ref);
  return true;
}

void Solver::attachClause(CRef ref) {
  ClauseRefView c = arena_[ref];
  assert(c.size() > 1);
  watches_[(~c[0]).index()].push_back(Watcher{ref, c[1]});
  watches_[(~c[1]).index()].push_back(Watcher{ref, c[0]});
}

void Solver::detachClause(CRef ref) {
  ClauseRefView c = arena_[ref];
  assert(c.size() > 1);
  auto strip = [&](std::vector<Watcher>& ws) {
    ws.erase(std::remove_if(ws.begin(), ws.end(),
                            [&](const Watcher& w) { return w.cref == ref; }),
             ws.end());
  };
  strip(watches_[(~c[0]).index()]);
  strip(watches_[(~c[1]).index()]);
}

void Solver::removeClause(CRef ref) {
  ClauseRefView c = arena_[ref];
  if (opts_.tracer != nullptr) {
    std::vector<Lit> lits;
    lits.reserve(static_cast<std::size_t>(c.size()));
    for (int k = 0; k < c.size(); ++k) lits.push_back(c[k]);
    traceDeleted(lits);
  }
  detachClause(ref);
  // A reason clause must not keep dangling references.
  if (locked(ref)) vardata_[c[0].var()].reason = kCRefUndef;
  arena_.markWasted(c.size(), c.learnt());
  c.markDeleted();
}

bool Solver::locked(CRef ref) const {
  const ClauseRefView c = arena_[ref];
  const Lit p = c[0];
  return value(p) == lbool::True && reason(p.var()) == ref;
}

void Solver::uncheckedEnqueue(Lit p, CRef from) {
  assert(value(p) == lbool::Undef);
  assigns_[p.var()] = toLbool(p.positive());
  vardata_[p.var()] = VarData{from, decisionLevel()};
  trail_.push_back(p);
}

CRef Solver::propagate() {
  CRef confl = kCRefUndef;
  while (qhead_ < trailSize()) {
    const Lit p = trail_[qhead_++];
    ++stats_.propagations;
    std::vector<Watcher>& ws = watches_[p.index()];
    std::size_t i = 0;
    std::size_t j = 0;
    const std::size_t end = ws.size();
    while (i != end) {
      // Try the blocker first to avoid touching the clause.
      const Watcher w = ws[i];
      if (value(w.blocker) == lbool::True) {
        ws[j++] = ws[i++];
        continue;
      }

      ClauseRefView c = arena_[w.cref];
      // Make sure the false literal is at position 1.
      const Lit falseLit = ~p;
      if (c[0] == falseLit) {
        c[0] = c[1];
        c[1] = falseLit;
      }
      assert(c[1] == falseLit);
      ++i;

      const Lit first = c[0];
      if (first != w.blocker && value(first) == lbool::True) {
        ws[j++] = Watcher{w.cref, first};
        continue;
      }

      // Look for a new literal to watch.
      bool foundWatch = false;
      for (int k = 2; k < c.size(); ++k) {
        if (value(c[k]) != lbool::False) {
          c[1] = c[k];
          c[k] = falseLit;
          watches_[(~c[1]).index()].push_back(Watcher{w.cref, first});
          foundWatch = true;
          break;
        }
      }
      if (foundWatch) continue;

      // Clause is unit or conflicting.
      ws[j++] = Watcher{w.cref, first};
      if (value(first) == lbool::False) {
        confl = w.cref;
        qhead_ = trailSize();
        while (i != end) ws[j++] = ws[i++];
      } else {
        uncheckedEnqueue(first, w.cref);
      }
    }
    ws.resize(j);
    if (confl != kCRefUndef) break;
  }
  return confl;
}

void Solver::cancelUntil(int level) {
  if (decisionLevel() <= level) return;
  for (int i = trailSize() - 1; i >= trail_lim_[level]; --i) {
    const Var v = trail_[i].var();
    assigns_[v] = lbool::Undef;
    if (opts_.phase_saving) {
      polarity_[v] = trail_[i].positive() ? 0 : 1;
    }
    if (decision_[v] && !order_heap_.contains(v)) order_heap_.insert(v);
  }
  qhead_ = trail_lim_[level];
  trail_.resize(trail_lim_[level]);
  trail_lim_.resize(level);
}

Lit Solver::pickBranchLit() {
  while (!order_heap_.empty()) {
    const Var v = order_heap_.removeMax();
    if (assigns_[v] == lbool::Undef && decision_[v]) {
      return Lit(v, polarity_[v] != 0);
    }
  }
  return kUndefLit;
}

void Solver::varBumpActivity(Var v) {
  activity_[v] += var_inc_;
  if (activity_[v] > kVarRescaleLimit) {
    for (double& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
  order_heap_.update(v);
}

void Solver::claBumpActivity(ClauseRefView c) {
  c.setActivity(c.activity() + static_cast<float>(cla_inc_));
  if (c.activity() > kClaRescaleLimit) {
    for (CRef ref : learnts_) {
      ClauseRefView lc = arena_[ref];
      lc.setActivity(lc.activity() * 1e-20f);
    }
    cla_inc_ *= 1e-20;
  }
}

void Solver::analyze(CRef confl, std::vector<Lit>& outLearnt,
                     int& outBtLevel) {
  int pathC = 0;
  Lit p = kUndefLit;
  outLearnt.clear();
  outLearnt.push_back(kUndefLit);  // placeholder for the asserting literal
  int index = trailSize() - 1;

  do {
    assert(confl != kCRefUndef);
    ClauseRefView c = arena_[confl];
    if (c.learnt()) claBumpActivity(c);

    for (int k = (p == kUndefLit) ? 0 : 1; k < c.size(); ++k) {
      const Lit q = c[k];
      const Var v = q.var();
      if (!seen_[v] && level(v) > 0) {
        varBumpActivity(v);
        seen_[v] = 1;
        if (level(v) >= decisionLevel()) {
          ++pathC;
        } else {
          outLearnt.push_back(q);
        }
      }
    }

    // Select next literal on the trail to expand.
    while (!seen_[trail_[index--].var()]) {
    }
    p = trail_[index + 1];
    confl = reason(p.var());
    seen_[p.var()] = 0;
    --pathC;
  } while (pathC > 0);
  outLearnt[0] = ~p;

  // Conflict clause minimization.
  analyze_toclear_ = outLearnt;
  std::size_t j = 1;
  if (opts_.ccmin_mode == 2) {
    std::uint32_t abstractLevel = 0;
    for (std::size_t i = 1; i < outLearnt.size(); ++i) {
      abstractLevel |= 1u << (level(outLearnt[i].var()) & 31);
    }
    for (std::size_t i = 1; i < outLearnt.size(); ++i) {
      if (reason(outLearnt[i].var()) == kCRefUndef ||
          !litRedundant(outLearnt[i], abstractLevel)) {
        outLearnt[j++] = outLearnt[i];
      }
    }
  } else if (opts_.ccmin_mode == 1) {
    for (std::size_t i = 1; i < outLearnt.size(); ++i) {
      const CRef r = reason(outLearnt[i].var());
      if (r == kCRefUndef) {
        outLearnt[j++] = outLearnt[i];
        continue;
      }
      ClauseRefView c = arena_[r];
      bool keep = false;
      for (int k = 1; k < c.size(); ++k) {
        if (!seen_[c[k].var()] && level(c[k].var()) > 0) {
          keep = true;
          break;
        }
      }
      if (keep) outLearnt[j++] = outLearnt[i];
    }
  } else {
    j = outLearnt.size();
  }
  stats_.minimized_literals +=
      static_cast<std::int64_t>(outLearnt.size() - j);
  outLearnt.resize(j);

  // Find the backtrack level (second highest level in the clause).
  if (outLearnt.size() == 1) {
    outBtLevel = 0;
  } else {
    std::size_t maxI = 1;
    for (std::size_t i = 2; i < outLearnt.size(); ++i) {
      if (level(outLearnt[i].var()) > level(outLearnt[maxI].var())) maxI = i;
    }
    std::swap(outLearnt[1], outLearnt[maxI]);
    outBtLevel = level(outLearnt[1].var());
  }

  for (Lit q : analyze_toclear_) seen_[q.var()] = 0;
}

bool Solver::litRedundant(Lit p, std::uint32_t abstractLevels) {
  analyze_stack_.clear();
  analyze_stack_.push_back(p);
  const std::size_t topClear = analyze_toclear_.size();
  while (!analyze_stack_.empty()) {
    const Lit q = analyze_stack_.back();
    analyze_stack_.pop_back();
    assert(reason(q.var()) != kCRefUndef);
    ClauseRefView c = arena_[reason(q.var())];
    for (int k = 1; k < c.size(); ++k) {
      const Lit r = c[k];
      const Var v = r.var();
      if (seen_[v] || level(v) == 0) continue;
      if (reason(v) != kCRefUndef &&
          ((1u << (level(v) & 31)) & abstractLevels) != 0) {
        seen_[v] = 1;
        analyze_stack_.push_back(r);
        analyze_toclear_.push_back(r);
      } else {
        // Cannot be resolved away: undo the marks made in this call.
        for (std::size_t k2 = topClear; k2 < analyze_toclear_.size(); ++k2) {
          seen_[analyze_toclear_[k2].var()] = 0;
        }
        analyze_toclear_.resize(topClear);
        return false;
      }
    }
  }
  return true;
}

void Solver::analyzeFinal(Lit p, std::vector<Lit>& outConflict) {
  outConflict.clear();
  outConflict.push_back(p);
  if (decisionLevel() == 0) return;

  seen_[p.var()] = 1;
  for (int i = trailSize() - 1; i >= trail_lim_[0]; --i) {
    const Var v = trail_[i].var();
    if (!seen_[v]) continue;
    if (reason(v) == kCRefUndef) {
      assert(level(v) > 0);
      outConflict.push_back(~trail_[i]);
    } else {
      ClauseRefView c = arena_[reason(v)];
      for (int k = 1; k < c.size(); ++k) {
        if (level(c[k].var()) > 0) seen_[c[k].var()] = 1;
      }
    }
    seen_[v] = 0;
  }
  seen_[p.var()] = 0;
}

std::uint32_t Solver::computeLbd(std::span<const Lit> lits) {
  // Number of distinct decision levels among the literals. Learnt
  // clauses are short; a sort beats a stamp array here.
  lbd_scratch_.clear();
  for (const Lit p : lits) lbd_scratch_.push_back(level(p.var()));
  std::sort(lbd_scratch_.begin(), lbd_scratch_.end());
  lbd_scratch_.erase(std::unique(lbd_scratch_.begin(), lbd_scratch_.end()),
                     lbd_scratch_.end());
  return static_cast<std::uint32_t>(lbd_scratch_.size());
}

void Solver::reduceDB() {
  if (opts_.lbd_reduce) {
    // Glucose-style: delete high-LBD clauses first, keep "glue" clauses
    // (LBD <= 2) unconditionally.
    std::sort(learnts_.begin(), learnts_.end(), [&](CRef a, CRef b) {
      const ClauseRefView ca = arena_[a];
      const ClauseRefView cb = arena_[b];
      if (ca.lbd() != cb.lbd()) return ca.lbd() > cb.lbd();
      return ca.activity() < cb.activity();
    });
    std::size_t j = 0;
    for (std::size_t i = 0; i < learnts_.size(); ++i) {
      ClauseRefView c = arena_[learnts_[i]];
      if (c.size() > 2 && c.lbd() > 2 && !locked(learnts_[i]) &&
          i < learnts_.size() / 2) {
        removeClause(learnts_[i]);
        ++stats_.removed_clauses;
      } else {
        learnts_[j++] = learnts_[i];
      }
    }
    learnts_.resize(j);
    garbageCollectIfNeeded();
    return;
  }
  // MiniSat-style: sort by (binary & activity), keep small active ones.
  std::sort(learnts_.begin(), learnts_.end(), [&](CRef a, CRef b) {
    const ClauseRefView ca = arena_[a];
    const ClauseRefView cb = arena_[b];
    if ((ca.size() > 2) != (cb.size() > 2)) return ca.size() > 2;
    return ca.activity() < cb.activity();
  });
  const double extraLim =
      cla_inc_ / std::max<std::size_t>(learnts_.size(), 1);

  std::size_t j = 0;
  for (std::size_t i = 0; i < learnts_.size(); ++i) {
    ClauseRefView c = arena_[learnts_[i]];
    if (c.size() > 2 && !locked(learnts_[i]) &&
        (i < learnts_.size() / 2 || c.activity() < extraLim)) {
      removeClause(learnts_[i]);
      ++stats_.removed_clauses;
    } else {
      learnts_[j++] = learnts_[i];
    }
  }
  learnts_.resize(j);
  garbageCollectIfNeeded();
}

void Solver::removeSatisfied(std::vector<CRef>& refs) {
  std::size_t j = 0;
  for (CRef ref : refs) {
    ClauseRefView c = arena_[ref];
    bool sat = false;
    for (int k = 0; k < c.size(); ++k) {
      if (value(c[k]) == lbool::True) {
        sat = true;
        break;
      }
    }
    if (sat) {
      removeClause(ref);
    } else {
      refs[j++] = ref;
    }
  }
  refs.resize(j);
}

bool Solver::simplify() {
  assert(decisionLevel() == 0);
  if (!ok_ || propagate() != kCRefUndef) {
    if (ok_) traceLemma({});  // fresh level-0 conflict: database refuted
    ok_ = false;
    return false;
  }
  if (trailSize() == simp_db_assigns_) return true;

  removeSatisfied(learnts_);
  removeSatisfied(clauses_);
  garbageCollectIfNeeded();
  rebuildOrderHeap();
  simp_db_assigns_ = trailSize();
  return true;
}

void Solver::rebuildOrderHeap() {
  std::vector<Var> vs;
  vs.reserve(static_cast<std::size_t>(numVars()));
  for (Var v = 0; v < numVars(); ++v) {
    if (decision_[v] && assigns_[v] == lbool::Undef) vs.push_back(v);
  }
  order_heap_.build(vs);
}

void Solver::garbageCollectIfNeeded() {
  if (arena_.wasted() <
      static_cast<std::size_t>(
          static_cast<double>(arena_.size()) * opts_.garbage_frac)) {
    return;
  }
  ClauseArena to;
  relocAll(to);
  arena_.adopt(std::move(to));
  ++stats_.gc_runs;
}

void Solver::relocAll(ClauseArena& to) {
  // Watchers.
  for (std::vector<Watcher>& ws : watches_) {
    for (Watcher& w : ws) arena_.reloc(w.cref, to);
  }
  // Reasons (only those still locked are live; others may be stale).
  for (Lit p : trail_) {
    const Var v = p.var();
    CRef& r = vardata_[v].reason;
    if (r == kCRefUndef) continue;
    if (arena_[r].deleted() && !locked(r)) {
      r = kCRefUndef;
    } else {
      arena_.reloc(r, to);
    }
  }
  // Clause lists.
  for (CRef& ref : learnts_) arena_.reloc(ref, to);
  for (CRef& ref : clauses_) arena_.reloc(ref, to);
}

bool Solver::withinBudget() const {
  if (budget_.conflictsExhausted(stats_.conflicts)) return false;
  // Wall-clock checks are amortized by the caller (search loop).
  return true;
}

lbool Solver::search(std::int64_t conflictsBeforeRestart) {
  assert(ok_);
  std::int64_t conflictC = 0;
  std::vector<Lit> learntClause;

  while (true) {
    const CRef confl = propagate();
    if (confl != kCRefUndef) {
      // Conflict.
      ++stats_.conflicts;
      ++conflictC;
      if (decisionLevel() == 0) {
        traceLemma({});  // conflict below all assumptions: refutation
        return lbool::False;
      }

      int backtrackLevel = 0;
      analyze(confl, learntClause, backtrackLevel);
      traceLemma(learntClause);
      cancelUntil(backtrackLevel);

      if (learntClause.size() == 1) {
        uncheckedEnqueue(learntClause[0]);
      } else {
        const CRef ref = arena_.alloc(learntClause, /*learnt=*/true);
        arena_[ref].setLbd(computeLbd(learntClause));
        learnts_.push_back(ref);
        attachClause(ref);
        claBumpActivity(arena_[ref]);
        uncheckedEnqueue(learntClause[0], ref);
      }
      ++stats_.learnt_clauses;
      stats_.learnt_literals +=
          static_cast<std::int64_t>(learntClause.size());

      varDecayActivity();
      claDecayActivity();

      if ((stats_.conflicts & 255) == 0 && budget_.timeExpired()) {
        cancelUntil(0);
        return lbool::Undef;
      }
    } else {
      // No conflict.
      if ((conflictsBeforeRestart >= 0 &&
           conflictC >= conflictsBeforeRestart) ||
          !withinBudget()) {
        cancelUntil(0);
        return withinBudget() ? lbool::Undef : lbool::Undef;
      }

      if (decisionLevel() == 0 && !simplify()) return lbool::False;

      if (static_cast<double>(numLearnts()) - trailSize() >= max_learnts_) {
        reduceDB();
      }

      Lit next = kUndefLit;
      while (decisionLevel() < static_cast<int>(assumptions_.size())) {
        const Lit p = assumptions_[decisionLevel()];
        if (value(p) == lbool::True) {
          newDecisionLevel();  // dummy level, already satisfied
        } else if (value(p) == lbool::False) {
          std::vector<Lit> negCore;
          analyzeFinal(~p, negCore);
          core_.clear();
          core_.reserve(negCore.size());
          for (Lit q : negCore) core_.push_back(~q);
          return lbool::False;
        } else {
          next = p;
          break;
        }
      }

      if (next == kUndefLit) {
        ++stats_.decisions;
        next = pickBranchLit();
        if (next == kUndefLit) {
          // All variables assigned: model found.
          return lbool::True;
        }
      }

      newDecisionLevel();
      uncheckedEnqueue(next);
    }
  }
}

lbool Solver::solve(std::span<const Lit> assumptions) {
  ++stats_.solves;
  model_.clear();
  core_.clear();
  assumptions_.assign(assumptions.begin(), assumptions.end());
  if (!ok_) return lbool::False;
  if (budget_.timeExpired() || !withinBudget()) return lbool::Undef;

  if (!simplify()) {
    assumptions_.clear();
    return lbool::False;
  }

  max_learnts_ = std::max(
      static_cast<double>(numClauses()) * opts_.learntsize_factor, 100.0);

  lbool status = lbool::Undef;
  for (int restarts = 0; status == lbool::Undef; ++restarts) {
    if (budget_.timeExpired() || !withinBudget()) break;
    const double restartBase =
        opts_.luby_restarts
            ? lubySequence(2.0, restarts)
            : std::pow(opts_.restart_inc, restarts);
    status = search(
        static_cast<std::int64_t>(restartBase * opts_.restart_base));
    ++stats_.restarts;
    max_learnts_ *= opts_.learntsize_inc;
  }

  if (status == lbool::True) {
    model_.resize(static_cast<std::size_t>(numVars()));
    for (Var v = 0; v < numVars(); ++v) model_[v] = assigns_[v];
  } else if (status == lbool::False && core_.empty()) {
    // Unsatisfiable independently of the assumptions.
    ok_ = false;
  }

  cancelUntil(0);
  assumptions_.clear();
  return status;
}

int Solver::numFixedVars() const {
  return trail_lim_.empty() ? trailSize() : trail_lim_[0];
}

}  // namespace msu
