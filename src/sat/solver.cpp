#include "sat/solver.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "sat/share.h"

namespace msu {

namespace {
/// Activity ceiling before rescaling.
constexpr double kVarRescaleLimit = 1e100;
constexpr float kClaRescaleLimit = 1e20f;
}  // namespace

double lubySequence(double y, int i) {
  // Find the finite subsequence containing index i, and its size.
  int size = 1;
  int seq = 0;
  while (size < i + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) / 2;
    --seq;
    i = i % size;
  }
  return std::pow(y, seq);
}

Solver::Solver(const Options& opts) : opts_(opts), order_heap_(activity_) {
  restart_ema_.fast_alpha = opts_.ema_fast_alpha;
  restart_ema_.slow_alpha = opts_.ema_slow_alpha;
}

Var Solver::newVar(bool decisionVar, bool scoped) {
  Var v;
  if (!free_vars_.empty()) {
    // Recycle a variable freed by a retired scope. Its watch lists are
    // empty (retire purges them) and it is unassigned; reset the
    // heuristic state to that of a fresh variable.
    v = free_vars_.back();
    free_vars_.pop_back();
    assert(assigns_[v] == lbool::Undef);
    vardata_[v] = VarData{};
    polarity_[v] = 1;
    best_phase_[v] = 1;
    activity_[v] = 0.0;
    seen_[v] = 0;
    frozen_[v] = 0;
    var_owner_[v] = kUndefVar;
    eliminated_[v] = 0;
    repr_[v] = posLit(v);
    decision_[v] = decisionVar ? 1 : 0;
    if (order_heap_.contains(v)) {
      order_heap_.update(v);  // activity changed: restore heap order
    } else if (decisionVar) {
      order_heap_.insert(v);
    }
  } else {
    v = numVars();
    watches_.addLiteral();
    watches_.addLiteral();
    assigns_.push_back(lbool::Undef);
    vardata_.push_back(VarData{});
    polarity_.push_back(1);  // default phase: assign false first
    best_phase_.push_back(1);
    decision_.push_back(decisionVar ? 1 : 0);
    activity_.push_back(0.0);
    seen_.push_back(0);
    frozen_.push_back(0);
    eliminated_.push_back(0);
    repr_.push_back(posLit(v));
    is_activator_.push_back(0);
    scope_index_.push_back(-1);
    var_owner_.push_back(kUndefVar);
    assump_stamp_.push_back(0);
    if (decisionVar) order_heap_.insert(v);
  }
  if (scoped && !scope_stack_.empty()) {
    const Var owner = scope_stack_.back();
    assert(scope_index_[owner] >= 0);
    scopes_[static_cast<std::size_t>(scope_index_[owner])]
        .second.vars.push_back(v);
    var_owner_[v] = owner;
  }
  return v;
}

Lit Solver::newActivator() {
  const Var v = newVar(/*decisionVar=*/false, /*scoped=*/false);
  is_activator_[v] = 1;
  scope_index_[v] = static_cast<int>(scopes_.size());
  ScopeRec rec;
  rec.birth = ++scope_births_;
  scopes_.emplace_back(v, std::move(rec));
  return posLit(v);
}

void Solver::openScope(Lit activator) {
  assert(isLiveScope(activator));
  scope_stack_.push_back(activator.var());
}

void Solver::closeScope(Lit activator) {
  assert(!scope_stack_.empty() && scope_stack_.back() == activator.var());
  static_cast<void>(activator);
  scope_stack_.pop_back();
}

void Solver::setScopeEnforced(Lit activator, bool enforced) {
  const int slot = scope_index_[activator.var()];
  assert(slot >= 0 && "setScopeEnforced on a retired scope");
  scopes_[static_cast<std::size_t>(slot)].second.enforced = enforced;
}

bool Solver::isLiveScope(Lit activator) const {
  const Var v = activator.var();
  return v >= 0 && v < numVars() && scope_index_[v] >= 0;
}

void Solver::retireAll(std::span<const Lit> activators) {
  // Retirement rewrites the clause database wholesale: any warm reused
  // trail (Options::reuse_trail) is invalidated here, explicitly, so
  // the sweep below runs at level 0 as it always has.
  if (decisionLevel() > 0) {
    assert(opts_.reuse_trail);
    cancelUntil(0);
  }
  // Mark the activators and every scope-owned variable; collect the
  // recycling candidates.
  std::vector<char> marked(static_cast<std::size_t>(numVars()), 0);
  std::vector<Var> candidates;
  bool any = false;
  for (const Lit actLit : activators) {
    const Var a = actLit.var();
    const int slot = scope_index_[a];
    if (slot < 0) continue;  // unknown or already retired
    assert(std::find(scope_stack_.begin(), scope_stack_.end(), a) ==
           scope_stack_.end());
    any = true;
    ++stats_.retired_scopes;
    marked[a] = 1;
    candidates.push_back(a);
    for (const Var v : scopes_[static_cast<std::size_t>(slot)].second.vars) {
      marked[v] = 1;
      candidates.push_back(v);
    }
    is_activator_[a] = 0;
    scope_index_[a] = -1;
    // Swap-and-pop: O(1) removal, fixing up the moved scope's index.
    if (static_cast<std::size_t>(slot) + 1 != scopes_.size()) {
      scopes_[static_cast<std::size_t>(slot)] = std::move(scopes_.back());
      scope_index_[scopes_[static_cast<std::size_t>(slot)].first] = slot;
    }
    scopes_.pop_back();
  }
  if (!any) return;

  // Reconstruction contract: BVE/substitution never touch scope or
  // activator variables, so the witness stack cannot dangle across
  // retirement and variable recycling (see solver.h).
  assert(!witness_.referencesAny(marked));

  // A level-0 assigned scope variable (an activator refuted by the rest
  // of the database) stays assigned and is burned rather than recycled;
  // record its unit as a lemma while the justifying clauses still exist
  // so the proof stays checkable.
  for (const Var v : candidates) {
    var_owner_[v] = kUndefVar;
    if (assigns_[v] != lbool::Undef) {
      const Lit unit(v, assigns_[v] == lbool::False);
      traceLemma({&unit, 1});
    }
  }

  // Long clauses: originals carry the scope tag; learnt descendants
  // carry the tag of *a* scope plus the guard literal, so the tag is a
  // fast path and the literal scan the safety net (a clause can descend
  // from several scopes).
  const auto sweep = [&](std::vector<CRef>& refs) {
    std::size_t j = 0;
    for (const CRef ref : refs) {
      ClauseRefView c = arena_[ref];
      bool kill = c.tagged() && marked[c.tag()] != 0;
      if (!kill) {
        for (const Lit p : c.lits()) {
          if (marked[p.var()] != 0) {
            kill = true;
            break;
          }
        }
      }
      if (kill) {
        stats_.reclaimed_bytes +=
            static_cast<std::int64_t>(c.size() + c.headerWords()) * 4;
        ++stats_.retired_clauses;
        removeClause(ref);
      } else {
        refs[j++] = ref;
      }
    }
    refs.resize(j);
  };
  sweep(clauses_);
  sweep(learnts_);

  // Binary clauses: every scope binary involves a marked variable (the
  // guard literal at least), so one sweep over the binary lists finds
  // them all; each clause is counted on its canonical direction only.
  for (int idx = 0; idx < watches_.numLits(); ++idx) {
    const Lit trigger = Lit::fromIndex(idx);
    const bool trigMarked = marked[trigger.var()] != 0;
    const std::span<BinWatch> ws = watches_.binList(trigger);
    std::uint32_t j = 0;
    for (const BinWatch bw : ws) {
      const Lit other = bw.implied();
      if (!trigMarked && marked[other.var()] == 0) {
        ws[j++] = bw;
        continue;
      }
      const Lit self = ~trigger;  // the clause literal watched via `idx`
      if (self.index() < other.index()) {
        if (bw.learnt()) {
          --num_bin_learnt_;
        } else {
          --num_bin_orig_;
        }
        ++stats_.retired_clauses;
        stats_.reclaimed_bytes +=
            static_cast<std::int64_t>(2 * sizeof(BinWatch));
        if (opts_.tracer != nullptr) {
          const std::array<Lit, 2> deleted{self, other};
          traceDeleted(deleted);
        }
      }
    }
    watches_.shrinkBin(trigger, j);
  }

  // Recycle the unassigned scope variables. All clauses over them are
  // gone, so their long watch lists hold only lazily detached watchers
  // of deleted clauses: drop them eagerly.
  for (const Var v : candidates) {
    if (assigns_[v] != lbool::Undef) continue;  // burned (see above)
    watches_.shrinkLong(posLit(v), 0);
    watches_.shrinkLong(negLit(v), 0);
    vardata_[v] = VarData{};
    decision_[v] = 0;  // out of pickBranchLit until reissued
    is_activator_[v] = 0;
    free_vars_.push_back(v);
    ++stats_.recycled_vars;
  }

  simp_db_assigns_ = -1;  // force the next simplify to re-sweep
  garbageCollectIfNeeded();
}

void Solver::appendScopeAssumptions(std::span<const Lit> userAssumptions) {
  if (scopes_.empty()) return;
  if (++assump_epoch_ == 0) {  // epoch wrap: clear stale stamps
    std::fill(assump_stamp_.begin(), assump_stamp_.end(), 0u);
    assump_epoch_ = 1;
  }
  for (const Lit p : userAssumptions) assump_stamp_[p.var()] = assump_epoch_;
  for (const auto& [act, rec] : scopes_) {
    if (assump_stamp_[act] == assump_epoch_) continue;  // caller override
    assumptions_.push_back(Lit(act, /*negative=*/!rec.enforced));
  }
}

void Solver::checkCrossScopeRefs(std::span<const Lit> lits) const {
  // Scope-contract checker: a clause may reference a variable owned by
  // (or guarding) a live scope only if that scope is open for emission,
  // or strictly older than the emitting scope (deliberate layering —
  // the referencing structure must then be retired first). Violations
  // would otherwise surface much later, as a retire() literal-scan
  // silently deleting a clause of a *different*, still-live scope.
  const Var cur = currentScopeTag();
  const std::uint64_t curBirth =
      cur == kUndefVar
          ? 0
          : scopes_[static_cast<std::size_t>(scope_index_[cur])].second.birth;
  for (const Lit p : lits) {
    const Var v = p.var();
    Var owner = var_owner_[v];
    if (owner == kUndefVar && is_activator_[v] != 0) owner = v;
    if (owner == kUndefVar) continue;
    if (std::find(scope_stack_.begin(), scope_stack_.end(), owner) !=
        scope_stack_.end()) {
      continue;
    }
    if (cur != kUndefVar) {
      const ScopeRec& ownerRec =
          scopes_[static_cast<std::size_t>(scope_index_[owner])].second;
      if (ownerRec.birth < curBirth) continue;  // older scope: layering
    }
    std::fprintf(stderr,
                 "msu: cross-scope reference: clause mentions var %d owned "
                 "by scope %d, which is neither open for emission nor older "
                 "than the emitting scope\n",
                 v, owner);
    std::abort();
  }
}

bool Solver::addClause(std::span<const Lit> lits) {
  assert(opts_.reuse_trail || decisionLevel() == 0);
  if (!ok_) return false;
  // Poisoned load (memory cap / arena overflow): swallow further
  // clauses without touching ok_ — engines read okay(), and a false
  // there means "hard clauses are UNSAT", which this is not. The next
  // pollAborted() surfaces AbortReason::kMemory instead.
  if (load_failed_) return true;
  maybeCheckLoadMem();
  if (load_failed_) return true;
  if (opts_.check_cross_scope) checkCrossScopeRefs(lits);
  traceAxiom(lits);

  add_tmp_.assign(lits.begin(), lits.end());
  std::vector<Lit>& ps = add_tmp_;
  // A clause naming removed variables is legal: substituted literals
  // are rewritten to their representatives and eliminated variables
  // transparently restored (reconstruction contract, solver.h).
  if (has_removed_vars_ && !mapAndRestore(ps)) return false;

  // Sort and simplify against the level-0 assignment. Over a warm
  // reused trail only *root-fixed* literals qualify (rootValue ==
  // value at level 0, so the cold path is unchanged): a literal true
  // merely under the kept assumptions does not satisfy the clause
  // permanently.
  std::sort(ps.begin(), ps.end());
  Lit prev = kUndefLit;
  std::size_t j = 0;
  for (Lit p : ps) {
    assert(p.var() < numVars());
    if (rootValue(p) == lbool::True ||
        (prev != kUndefLit && p == ~prev)) {  // satisfied / tautology
      return true;
    }
    if (rootValue(p) != lbool::False && p != prev) {
      ps[j++] = p;
      prev = p;
    }
  }
  ps.resize(j);

  // Level-0 strengthening is itself a unit-propagation consequence;
  // record it so the checker's database matches the solver's.
  if (ps.size() != lits.size()) traceLemma(ps);

  if (ps.empty()) {
    if (decisionLevel() > 0) cancelUntil(0);
    ok_ = false;
    return false;
  }
  if (ps.size() == 1) {
    // Units always enter at the root; a warm trail cannot be kept
    // above a new top-level fact.
    if (decisionLevel() > 0) cancelUntil(0);
    uncheckedEnqueue(ps[0]);
    if (bulk_depth_ > 0) return true;  // one propagate() in endBulkLoad
    ok_ = propagate().isNone();
    if (!ok_) traceLemma({});  // level-0 conflict refutes the database
    return ok_;
  }
  if (decisionLevel() > 0) prepareWarmAttach(ps);
  if (ps.size() == 2) {
    if (bulk_depth_ > 0) {
      bulk_bins_.emplace_back(ps[0], ps[1]);
      return true;
    }
    attachBinary(ps[0], ps[1], /*learnt=*/false);
    return true;
  }
  if (arena_.wouldOverflow(ps.size())) {
    failLoadArenaOverflow(ps.size());
    return true;
  }
  noteAllocFault();
  const CRef ref = arena_.alloc(ps, /*learnt=*/false, currentScopeTag());
  clauses_.push_back(ref);
  if (bulk_depth_ > 0) {
    bulk_longs_.push_back(ref);
    return true;
  }
  attachClause(ref);
  return true;
}

void Solver::prepareWarmAttach(std::vector<Lit>& ps) {
  // Attaching over a warm trail is sound exactly when the clause is
  // neither unit nor falsified under the current assignment and its
  // watches sit on two non-false literals: backtracking can only grow
  // the non-false count, so the watch invariant ("no clause is unit or
  // falsified without being processed") holds from here on. When fewer
  // than two literals are non-false, backtrack to the deepest level
  // that unassigns enough of them — every root-false literal was
  // already stripped, so the required level exists and is >= 0.
  assert(decisionLevel() > 0 && ps.size() >= 2);
  int nonFalse = 0;
  int lvl1 = 0;  // highest false-literal level
  int lvl2 = 0;  // second-highest false-literal level
  for (const Lit p : ps) {
    if (value(p) == lbool::False) {
      const int l = level(p.var());
      assert(l > 0);
      if (l > lvl1) {
        lvl2 = lvl1;
        lvl1 = l;
      } else if (l > lvl2) {
        lvl2 = l;
      }
    } else {
      ++nonFalse;
    }
  }
  if (nonFalse < 2) {
    const int target = (nonFalse == 0 ? lvl2 : lvl1) - 1;
    cancelUntil(std::max(target, 0));
  }
  // Move two non-false literals into the watch slots.
  std::size_t filled = 0;
  for (std::size_t k = 0; k < ps.size() && filled < 2; ++k) {
    if (value(ps[k]) != lbool::False) {
      std::swap(ps[filled], ps[k]);
      ++filled;
    }
  }
  assert(filled == 2);
}

void Solver::attachClause(CRef ref) {
  ClauseRefView c = arena_[ref];
  assert(c.size() > 2);
  watches_.pushLong(~c[0], Watcher{ref, c[1]});
  watches_.pushLong(~c[1], Watcher{ref, c[0]});
}

void Solver::attachBinary(Lit a, Lit b, bool learnt) {
  watches_.pushBin(~a, BinWatch(b, learnt));
  watches_.pushBin(~b, BinWatch(a, learnt));
  if (learnt) {
    ++num_bin_learnt_;
  } else {
    ++num_bin_orig_;
  }
}

void Solver::beginBulkLoad() {
  assert(!inprocessing_);
  if (bulk_depth_++ > 0) return;
  // Bulk loading is a root-level operation: a kept warm trail cannot
  // survive the batch of root facts about to arrive (the per-clause
  // path would cancel it at the first unit anyway).
  if (decisionLevel() > 0) cancelUntil(0);
}

bool Solver::endBulkLoad() {
  assert(bulk_depth_ > 0);
  if (--bulk_depth_ > 0) return ok_ && !load_failed_;
  bulkAttachAll();
  // One propagation pass over every unit the load enqueued. The
  // per-clause path propagates after each unit; deferring the whole
  // cascade to here is bulk mode's single semantic difference (see the
  // contract in solver.h).
  if (ok_ && qhead_ < trailSize()) {
    ok_ = propagate().isNone();
    if (!ok_) traceLemma({});  // level-0 conflict refutes the database
  }
  refreshMemStats();
  return ok_ && !load_failed_;
}

void Solver::bulkAttachAll() {
  assert(decisionLevel() == 0);
  if (bulk_bins_.empty() && bulk_longs_.empty()) return;
  // Counting pass: exact per-literal watch demand, so the reservation
  // below is one allocation per pool and every push lands in place.
  const std::size_t nlits = static_cast<std::size_t>(watches_.numLits());
  std::vector<std::uint32_t> binExtra(nlits, 0);
  std::vector<std::uint32_t> longExtra(nlits, 0);
  for (const auto& [a, b] : bulk_bins_) {
    ++binExtra[static_cast<std::size_t>((~a).index())];
    ++binExtra[static_cast<std::size_t>((~b).index())];
  }
  for (const CRef ref : bulk_longs_) {
    const ClauseRefView c = arena_[ref];
    ++longExtra[static_cast<std::size_t>((~c[0]).index())];
    ++longExtra[static_cast<std::size_t>((~c[1]).index())];
  }
  watches_.reserveExtra(binExtra, longExtra);
  // Attach in insertion order: binary and long watchers live in
  // separate pools, so per-literal list contents come out identical to
  // what per-clause addClause would have built.
  for (const auto& [a, b] : bulk_bins_) attachBinary(a, b, /*learnt=*/false);
  for (const CRef ref : bulk_longs_) attachClause(ref);
  bulk_bins_.clear();
  bulk_bins_.shrink_to_fit();
  bulk_longs_.clear();
  bulk_longs_.shrink_to_fit();
}

void Solver::removeClause(CRef ref) {
  ClauseRefView c = arena_[ref];
  if (opts_.tracer != nullptr) {
    std::vector<Lit> lits;
    lits.reserve(static_cast<std::size_t>(c.size()));
    for (int k = 0; k < c.size(); ++k) lits.push_back(c[k]);
    traceDeleted(lits);
  }
  // A reason clause must not keep dangling references.
  if (locked(ref)) vardata_[c[0].var()].reason = Reason::none();
  if (c.learnt()) --tierGauge(c.tier());
  arena_.markWasted(c.size(), c.learnt(), c.tagged());
  c.markDeleted();
}

bool Solver::locked(CRef ref) const {
  const ClauseRefView c = arena_[ref];
  const Lit p = c[0];
  return value(p) == lbool::True && reason(p.var()) == Reason::clause(ref);
}

std::int64_t& Solver::tierGauge(std::uint32_t tier) {
  switch (tier) {
    case kTierCore:
      return stats_.tier_core;
    case kTier2:
      return stats_.tier_tier2;
    default:
      return stats_.tier_local;
  }
}

void Solver::uncheckedEnqueue(Lit p, Reason from) {
  assert(value(p) == lbool::Undef);
  assigns_[p.var()] = toLbool(p.positive());
  vardata_[p.var()] = VarData{from, decisionLevel()};
  trail_.push_back(p);
}

Reason Solver::propagate() {
  Reason confl = Reason::none();
  int bhead = qhead_;  // binary-phase head; always >= qhead_
  while (qhead_ < trailSize()) {
    // ---- Phase 1: saturate binary implications across the whole
    // pending trail before touching any long clause. The binary lists
    // store the implied literal inline (no arena access), so this
    // surfaces conflicts and forced literals at minimal cost and
    // shrinks the long-clause work that follows. ----
    while (bhead < trailSize()) {
      const Lit p = trail_[bhead++];
      const std::span<const BinWatch> bins = watches_.binList(p);
      for (std::size_t b = 0; b < bins.size(); ++b) {
        const Lit implied = bins[b].implied();
        const lbool v = value(implied);
        if (v == lbool::False) {
          stats_.watch_bytes_visited +=
              static_cast<std::int64_t>((b + 1) * sizeof(BinWatch));
          bin_confl_ = {implied, ~p};
          qhead_ = trailSize();
          return Reason::binary(~p);
        }
        if (v == lbool::Undef) {
          uncheckedEnqueue(implied, Reason::binary(~p));
          ++stats_.binary_propagations;
        }
      }
      stats_.watch_bytes_visited +=
          static_cast<std::int64_t>(bins.size() * sizeof(BinWatch));
    }

    // ---- Phase 2: long clauses over the flat watch pool ----
    const Lit p = trail_[qhead_++];
    ++stats_.propagations;
    const std::uint32_t off = watches_.longOffsetOf(p);
    const std::uint32_t n = watches_.longSizeOf(p);
    Watcher* ws = watches_.longPoolPtrAt(off);
    stats_.watch_bytes_visited +=
        static_cast<std::int64_t>(n * sizeof(Watcher));
    std::uint32_t i = 0;
    std::uint32_t j = 0;
    while (i != n) {
      // Try the blocker first to avoid touching the clause.
      const Watcher w = ws[i];
      if (value(w.blocker) == lbool::True) {
        ++stats_.blocker_hits;
        ws[j++] = ws[i++];
        continue;
      }

      ClauseRefView c = arena_[w.cref];
      if (c.deleted()) {  // lazily detached by removeClause
        ++i;
        continue;
      }
      // Make sure the false literal is at position 1.
      const Lit falseLit = ~p;
      if (c[0] == falseLit) {
        c[0] = c[1];
        c[1] = falseLit;
      }
      assert(c[1] == falseLit);
      ++i;

      const Lit first = c[0];
      if (first != w.blocker && value(first) == lbool::True) {
        ws[j++] = Watcher{w.cref, first};
        continue;
      }

      // Look for a new literal to watch.
      bool foundWatch = false;
      for (int k = 2; k < c.size(); ++k) {
        if (value(c[k]) != lbool::False) {
          c[1] = c[k];
          c[k] = falseLit;
          watches_.pushLong(~c[1], Watcher{w.cref, first});
          ws = watches_.longPoolPtrAt(off);  // push may move the pool
          foundWatch = true;
          break;
        }
      }
      if (foundWatch) continue;

      // Clause is unit or conflicting.
      ws[j++] = Watcher{w.cref, first};
      if (value(first) == lbool::False) {
        confl = Reason::clause(w.cref);
        qhead_ = trailSize();
        // The tail is copied, not inspected — don't count it as visited.
        stats_.watch_bytes_visited -=
            static_cast<std::int64_t>((n - i) * sizeof(Watcher));
        while (i != n) ws[j++] = ws[i++];
      } else {
        uncheckedEnqueue(first, Reason::clause(w.cref));
        ++stats_.long_propagations;
      }
    }
    watches_.shrinkLong(p, j);
    if (!confl.isNone()) break;
  }
  return confl;
}

void Solver::cancelUntil(int level) {
  if (decisionLevel() <= level) return;
  for (int i = trailSize() - 1; i >= trail_lim_[level]; --i) {
    const Var v = trail_[i].var();
    assigns_[v] = lbool::Undef;
    if (opts_.phase_saving && !inprocessing_) {
      polarity_[v] = trail_[i].positive() ? 0 : 1;
    }
    if (decision_[v] && !order_heap_.contains(v)) order_heap_.insert(v);
  }
  qhead_ = trail_lim_[level];
  trail_.resize(trail_lim_[level]);
  trail_lim_.resize(level);
}

Lit Solver::pickBranchLit() {
  while (!order_heap_.empty()) {
    const Var v = order_heap_.removeMax();
    if (assigns_[v] == lbool::Undef && decision_[v]) {
      return Lit(v, polarity_[v] != 0);
    }
  }
  return kUndefLit;
}

void Solver::varBumpActivity(Var v) {
  activity_[v] += var_inc_;
  if (activity_[v] > kVarRescaleLimit) {
    for (double& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
  order_heap_.update(v);
}

void Solver::claBumpActivity(ClauseRefView c) {
  c.setActivity(c.activity() + static_cast<float>(cla_inc_));
  if (c.activity() > kClaRescaleLimit) {
    for (CRef ref : learnts_) {
      ClauseRefView lc = arena_[ref];
      lc.setActivity(lc.activity() * 1e-20f);
    }
    cla_inc_ *= 1e-20;
  }
}

void Solver::bumpLearnt(ClauseRefView c) {
  claBumpActivity(c);
  if (!opts_.lbd_reduce) return;
  // Tiered DB: refresh the aging counter and re-evaluate the glue. A
  // clause whose LBD improves migrates towards a more protected tier
  // (core is terminal — never demoted).
  if (c.used() < 3) c.setUsed(c.used() + 1);
  const std::uint32_t newLbd = computeLbd(c.lits());
  if (newLbd < c.lbd()) {
    c.setLbd(newLbd);
    const std::uint32_t t = c.tier();
    std::uint32_t nt = t;
    if (newLbd <= 2) {
      nt = kTierCore;
    } else if (t == kTierLocal &&
               newLbd <= static_cast<std::uint32_t>(opts_.tier2_lbd)) {
      nt = kTier2;
    }
    if (nt != t) {
      --tierGauge(t);
      ++tierGauge(nt);
      c.setTier(nt);
      ++stats_.promoted_clauses;
    }
  }
}

void Solver::analyze(Reason confl, std::vector<Lit>& outLearnt,
                     int& outBtLevel) {
  int pathC = 0;
  Lit p = kUndefLit;
  outLearnt.clear();
  outLearnt.push_back(kUndefLit);  // placeholder for the asserting literal
  int index = trailSize() - 1;

  do {
    assert(!confl.isNone());
    // Antecedent literals: binary reasons resolve inline (no arena
    // access); clause reasons keep the propagated literal at slot 0.
    std::array<Lit, 2> binLits;
    std::span<const Lit> lits;
    if (confl.isBinary()) {
      binLits = (p == kUndefLit) ? bin_confl_
                                 : std::array<Lit, 2>{p, confl.other()};
      lits = binLits;
    } else {
      ClauseRefView c = arena_[confl.cref()];
      if (c.learnt()) bumpLearnt(c);
      lits = c.lits();
    }

    for (int k = (p == kUndefLit) ? 0 : 1;
         k < static_cast<int>(lits.size()); ++k) {
      const Lit q = lits[k];
      const Var v = q.var();
      if (!seen_[v] && level(v) > 0) {
        varBumpActivity(v);
        seen_[v] = 1;
        if (level(v) >= decisionLevel()) {
          ++pathC;
        } else {
          outLearnt.push_back(q);
        }
      }
    }

    // Select next literal on the trail to expand.
    while (!seen_[trail_[index--].var()]) {
    }
    p = trail_[index + 1];
    confl = reason(p.var());
    seen_[p.var()] = 0;
    --pathC;
  } while (pathC > 0);
  outLearnt[0] = ~p;

  // Conflict clause minimization.
  analyze_toclear_ = outLearnt;
  std::size_t j = 1;
  if (opts_.ccmin_mode == 2) {
    std::uint32_t abstractLevel = 0;
    for (std::size_t i = 1; i < outLearnt.size(); ++i) {
      abstractLevel |= 1u << (level(outLearnt[i].var()) & 31);
    }
    for (std::size_t i = 1; i < outLearnt.size(); ++i) {
      if (reason(outLearnt[i].var()).isNone() ||
          !litRedundant(outLearnt[i], abstractLevel)) {
        outLearnt[j++] = outLearnt[i];
      }
    }
  } else if (opts_.ccmin_mode == 1) {
    for (std::size_t i = 1; i < outLearnt.size(); ++i) {
      const Reason r = reason(outLearnt[i].var());
      if (r.isNone()) {
        outLearnt[j++] = outLearnt[i];
        continue;
      }
      bool keep = false;
      if (r.isBinary()) {
        const Lit o = r.other();
        keep = !seen_[o.var()] && level(o.var()) > 0;
      } else {
        ClauseRefView c = arena_[r.cref()];
        for (int k = 1; k < c.size(); ++k) {
          if (!seen_[c[k].var()] && level(c[k].var()) > 0) {
            keep = true;
            break;
          }
        }
      }
      if (keep) outLearnt[j++] = outLearnt[i];
    }
  } else {
    j = outLearnt.size();
  }
  stats_.minimized_literals +=
      static_cast<std::int64_t>(outLearnt.size() - j);
  outLearnt.resize(j);

  // Find the backtrack level (second highest level in the clause).
  if (outLearnt.size() == 1) {
    outBtLevel = 0;
  } else {
    std::size_t maxI = 1;
    for (std::size_t i = 2; i < outLearnt.size(); ++i) {
      if (level(outLearnt[i].var()) > level(outLearnt[maxI].var())) maxI = i;
    }
    std::swap(outLearnt[1], outLearnt[maxI]);
    outBtLevel = level(outLearnt[1].var());
  }

  for (Lit q : analyze_toclear_) seen_[q.var()] = 0;
}

bool Solver::litRedundant(Lit p, std::uint32_t abstractLevels) {
  analyze_stack_.clear();
  analyze_stack_.push_back(p);
  const std::size_t topClear = analyze_toclear_.size();

  // Visits one antecedent literal; false means `p` cannot be resolved
  // away and all marks made during this call must be undone.
  const auto visit = [&](Lit r) {
    const Var v = r.var();
    if (seen_[v] || level(v) == 0) return true;
    if (!reason(v).isNone() &&
        ((1u << (level(v) & 31)) & abstractLevels) != 0) {
      seen_[v] = 1;
      analyze_stack_.push_back(r);
      analyze_toclear_.push_back(r);
      return true;
    }
    return false;
  };
  const auto undo = [&]() {
    for (std::size_t k = topClear; k < analyze_toclear_.size(); ++k) {
      seen_[analyze_toclear_[k].var()] = 0;
    }
    analyze_toclear_.resize(topClear);
    return false;
  };

  while (!analyze_stack_.empty()) {
    const Lit q = analyze_stack_.back();
    analyze_stack_.pop_back();
    const Reason r = reason(q.var());
    assert(!r.isNone());
    if (r.isBinary()) {
      if (!visit(r.other())) return undo();
    } else {
      ClauseRefView c = arena_[r.cref()];
      for (int k = 1; k < c.size(); ++k) {
        if (!visit(c[k])) return undo();
      }
    }
  }
  return true;
}

void Solver::analyzeFinal(Lit p, std::vector<Lit>& outConflict) {
  outConflict.clear();
  outConflict.push_back(p);
  if (decisionLevel() == 0) return;

  seen_[p.var()] = 1;
  for (int i = trailSize() - 1; i >= trail_lim_[0]; --i) {
    const Var v = trail_[i].var();
    if (!seen_[v]) continue;
    const Reason r = reason(v);
    if (r.isNone()) {
      assert(level(v) > 0);
      outConflict.push_back(~trail_[i]);
    } else if (r.isBinary()) {
      const Lit o = r.other();
      if (level(o.var()) > 0) seen_[o.var()] = 1;
    } else {
      ClauseRefView c = arena_[r.cref()];
      for (int k = 1; k < c.size(); ++k) {
        if (level(c[k].var()) > 0) seen_[c[k].var()] = 1;
      }
    }
    seen_[v] = 0;
  }
  seen_[p.var()] = 0;
}

std::uint32_t Solver::computeLbd(std::span<const Lit> lits) {
  // Number of distinct decision levels among the literals. Learnt
  // clauses are short; a sort beats a stamp array here.
  lbd_scratch_.clear();
  for (const Lit p : lits) lbd_scratch_.push_back(level(p.var()));
  std::sort(lbd_scratch_.begin(), lbd_scratch_.end());
  lbd_scratch_.erase(std::unique(lbd_scratch_.begin(), lbd_scratch_.end()),
                     lbd_scratch_.end());
  return static_cast<std::uint32_t>(lbd_scratch_.size());
}

Var Solver::learntTagFor(std::span<const Lit> lits) const {
  // A learnt descendant of scope clauses carries the scope's guard
  // literal; tag it with the first live activator found so retire()'s
  // fast path catches it.
  for (const Lit p : lits) {
    if (is_activator_[p.var()] != 0) return p.var();
  }
  return kUndefVar;
}

void Solver::recordLearnt(std::span<const Lit> learntClause) {
  if (learntClause.size() == 1) {
    last_learnt_lbd_ = 1;
    uncheckedEnqueue(learntClause[0]);
    maybeExportLearnt(learntClause, 1);
  } else if (learntClause.size() == 2) {
    last_learnt_lbd_ = 2;
    attachBinary(learntClause[0], learntClause[1], /*learnt=*/true);
    uncheckedEnqueue(learntClause[0], Reason::binary(learntClause[1]));
    maybeExportLearnt(learntClause, 2);
  } else {
    const Var tag = scopes_.empty() ? kUndefVar : learntTagFor(learntClause);
    noteAllocFault();
    const CRef ref = arena_.alloc(learntClause, /*learnt=*/true, tag);
    ClauseRefView c = arena_[ref];
    const std::uint32_t lbd = computeLbd(learntClause);
    last_learnt_lbd_ = lbd;
    maybeExportLearnt(learntClause, lbd);
    c.setLbd(lbd);
    const std::uint32_t tier =
        lbd <= 2 ? kTierCore
                 : (lbd <= static_cast<std::uint32_t>(opts_.tier2_lbd)
                        ? kTier2
                        : kTierLocal);
    c.setTier(tier);
    c.setUsed(2);
    ++tierGauge(tier);
    learnts_.push_back(ref);
    attachClause(ref);
    claBumpActivity(arena_[ref]);
    uncheckedEnqueue(learntClause[0], Reason::clause(ref));
  }
  ++stats_.learnt_clauses;
  stats_.learnt_literals += static_cast<std::int64_t>(learntClause.size());
}

void Solver::reduceDB() {
  if (opts_.lbd_reduce) {
    // Tiered (Glucose/CaDiCaL-style): core clauses are permanent;
    // tier2 clauses age via `used` and demote to local when cold;
    // the worst half of local (high LBD, low activity) is deleted.
    std::vector<CRef> keep;
    std::vector<CRef> locals;
    keep.reserve(learnts_.size());
    for (CRef ref : learnts_) {
      ClauseRefView c = arena_[ref];
      const std::uint32_t t = c.tier();
      if (t == kTierCore) {
        keep.push_back(ref);
      } else if (t == kTier2) {
        if (c.used() > 0) {
          c.setUsed(c.used() - 1);
          keep.push_back(ref);
        } else {
          c.setTier(kTierLocal);
          --stats_.tier_tier2;
          ++stats_.tier_local;
          ++stats_.demoted_clauses;
          locals.push_back(ref);
        }
      } else {
        locals.push_back(ref);
      }
    }
    std::sort(locals.begin(), locals.end(), [&](CRef a, CRef b) {
      const ClauseRefView ca = arena_[a];
      const ClauseRefView cb = arena_[b];
      if (ca.lbd() != cb.lbd()) return ca.lbd() > cb.lbd();
      return ca.activity() < cb.activity();
    });
    const std::size_t target = locals.size() / 2;
    std::size_t removed = 0;
    for (CRef ref : locals) {
      if (removed < target && !locked(ref)) {
        removeClause(ref);
        ++stats_.removed_clauses;
        ++removed;
      } else {
        keep.push_back(ref);
      }
    }
    learnts_ = std::move(keep);
    garbageCollectIfNeeded();
    return;
  }
  // MiniSat-style: sort by activity, keep the active half. (Binary
  // learnt clauses live outside the arena and are always kept.)
  std::sort(learnts_.begin(), learnts_.end(), [&](CRef a, CRef b) {
    return arena_[a].activity() < arena_[b].activity();
  });
  const double extraLim =
      cla_inc_ / std::max<std::size_t>(learnts_.size(), 1);

  std::size_t j = 0;
  for (std::size_t i = 0; i < learnts_.size(); ++i) {
    ClauseRefView c = arena_[learnts_[i]];
    if (!locked(learnts_[i]) &&
        (i < learnts_.size() / 2 || c.activity() < extraLim)) {
      removeClause(learnts_[i]);
      ++stats_.removed_clauses;
    } else {
      learnts_[j++] = learnts_[i];
    }
  }
  learnts_.resize(j);
  garbageCollectIfNeeded();
}

void Solver::removeSatisfied(std::vector<CRef>& refs) {
  std::size_t j = 0;
  for (CRef ref : refs) {
    ClauseRefView c = arena_[ref];
    bool sat = false;
    for (int k = 0; k < c.size(); ++k) {
      if (value(c[k]) == lbool::True) {
        sat = true;
        break;
      }
    }
    if (sat) {
      removeClause(ref);
    } else {
      refs[j++] = ref;
    }
  }
  refs.resize(j);
}

void Solver::removeSatisfiedBinaries() {
  assert(decisionLevel() == 0);
  for (int idx = 0; idx < watches_.numLits(); ++idx) {
    const Lit trigger = Lit::fromIndex(idx);
    const Lit a = ~trigger;  // the clause literal watched through `idx`
    const std::span<BinWatch> ws = watches_.binList(trigger);
    std::uint32_t j = 0;
    for (const BinWatch bw : ws) {
      const bool sat =
          value(a) == lbool::True || value(bw.implied()) == lbool::True;
      if (!sat) {
        ws[j++] = bw;
        continue;
      }
      // Each binary clause appears once per direction; trace and count
      // it on the canonical (lower-index-first) visit only.
      if (a.index() < bw.implied().index()) {
        if (bw.learnt()) {
          --num_bin_learnt_;
        } else {
          --num_bin_orig_;
        }
        if (opts_.tracer != nullptr) {
          const std::array<Lit, 2> deleted{a, bw.implied()};
          traceDeleted(deleted);
        }
      }
    }
    watches_.shrinkBin(trigger, j);
  }
}

bool Solver::simplify() {
  assert(decisionLevel() == 0);
  if (!ok_ || !propagate().isNone()) {
    if (ok_) traceLemma({});  // fresh level-0 conflict: database refuted
    ok_ = false;
    return false;
  }
  if (trailSize() == simp_db_assigns_) return true;

  removeSatisfied(learnts_);
  removeSatisfied(clauses_);
  removeSatisfiedBinaries();
  garbageCollectIfNeeded();
  rebuildOrderHeap();
  simp_db_assigns_ = trailSize();
  return true;
}

void Solver::rebuildOrderHeap() {
  std::vector<Var> vs;
  vs.reserve(static_cast<std::size_t>(numVars()));
  for (Var v = 0; v < numVars(); ++v) {
    if (decision_[v] && assigns_[v] == lbool::Undef) vs.push_back(v);
  }
  order_heap_.build(vs);
}

void Solver::garbageCollectIfNeeded() {
  if (arena_.wasted() <
      static_cast<std::size_t>(
          static_cast<double>(arena_.size()) * opts_.garbage_frac)) {
    // No arena GC: the flat watch pools still defragment on the same
    // trigger points, independent of the arena's waste level.
    watches_.compactIfWasteful();
    return;
  }
  ClauseArena to;
  relocAll(to);  // ends by compacting the watch pools
  arena_.adopt(std::move(to));
  ++stats_.gc_runs;
}

void Solver::relocAll(ClauseArena& to) {
  // Watchers: drop lazily detached (deleted) clauses, relocate the rest.
  for (int idx = 0; idx < watches_.numLits(); ++idx) {
    const Lit p = Lit::fromIndex(idx);
    const std::span<Watcher> ws = watches_.longList(p);
    std::uint32_t j = 0;
    for (Watcher w : ws) {
      if (arena_[w.cref].deleted()) continue;
      arena_.reloc(w.cref, to);
      ws[j++] = w;
    }
    watches_.shrinkLong(p, j);
  }
  // Reasons (binary reasons live outside the arena; only clause reasons
  // relocate — and only those still locked are live).
  for (Lit p : trail_) {
    const Var v = p.var();
    Reason& r = vardata_[v].reason;
    if (!r.isClause() || r.isNone()) continue;
    CRef ref = r.cref();
    if (arena_[ref].deleted() && !locked(ref)) {
      r = Reason::none();
    } else {
      arena_.reloc(ref, to);
      r = Reason::clause(ref);
    }
  }
  // Clause lists.
  for (CRef& ref : learnts_) arena_.reloc(ref, to);
  for (CRef& ref : clauses_) arena_.reloc(ref, to);
  // GC is also the watch pools' compaction hook.
  watches_.compact();
}

void Solver::maybeExportLearnt(std::span<const Lit> lits, std::uint32_t lbd) {
  if (!sharing() || !ok_) return;
  // Lazy init of the dynamic ceilings (0 = not yet seeded from opts).
  if (share_size_cur_ == 0) {
    share_size_cur_ = opts_.share_max_size;
    share_lbd_cur_ = opts_.share_max_lbd;
  }
  const int maxSize = opts_.share_dynamic ? share_size_cur_
                                          : opts_.share_max_size;
  const int maxLbd = opts_.share_dynamic ? share_lbd_cur_
                                         : opts_.share_max_lbd;
  if (static_cast<int>(lits.size()) > maxSize) return;
  if (lits.size() > 2 && lbd > static_cast<std::uint32_t>(maxLbd)) return;
  // Only clauses over the shareable variable prefix are consequences of
  // the shared (hard) part of the problem; anything touching a
  // selector, activator or encoding auxiliary stays private. See
  // sat/share.h.
  for (const Lit p : lits) {
    if (p.var() >= opts_.share_num_vars) return;
  }
  if (opts_.share->exportClause(lits, static_cast<int>(lbd))) {
    ++stats_.shared_exported;
  } else {
    ++stats_.shared_export_drops;
  }
}

void Solver::importSharedClauses(int maxClauses) {
  // Precondition: decision level 0 with a fully propagated trail.
  // Imported clauses are attached with plain watch setup — units are
  // enqueued and propagated at the root, longer clauses get arbitrary
  // watches — which is only sound when no literal can already be
  // falsified at a positive level. All three call sites guarantee it:
  // solve() entry and its restart loop drain after backtracking to the
  // root, and search()'s conflict-cadence site forces cancelUntil(0)
  // first. A future caller draining mid-trail would attach over a
  // non-root assignment and corrupt watch invariants; the assert keeps
  // that from slipping in silently.
  if (!sharing() || !ok_) return;
  assert(decisionLevel() == 0);
  assert(qhead_ == static_cast<int>(trail_.size()));
  obs::TraceSpan drainSpan(opts_.trace, obs::TraceCat::kShare,
                           "import-drain");
  ++stats_.shared_import_drains;
  std::vector<Lit> ps;
  const int scanned = opts_.share->importClauses(
      [&](std::span<const Lit> lits) {
    if (!ok_) return;
    ps.clear();
    bool satisfied = false;
    for (const Lit raw : lits) {
      assert(raw.var() < opts_.share_num_vars &&
             opts_.share_num_vars <= numVars());
      // Under sharing, BVE never touches prefix variables and SCC
      // substitutes them only among themselves (prefix equivalences
      // are consequences of the shared hard clauses), so mapping an
      // import through the representatives is sound and never needs a
      // restoration.
      const Lit p = has_removed_vars_ ? reprLit(raw) : raw;
      assert(eliminated_[p.var()] == 0);
      const lbool v = value(p);
      if (v == lbool::True) {
        satisfied = true;
        break;
      }
      if (v == lbool::Undef) ps.push_back(p);
    }
    // Mapping can fold two import literals onto one variable: dedupe
    // and drop the clause entirely when it became tautological.
    if (!satisfied && has_removed_vars_ && ps.size() > 1) {
      std::sort(ps.begin(), ps.end());
      Lit prev = kUndefLit;
      std::size_t j = 0;
      for (const Lit p : ps) {
        if (prev != kUndefLit && p == ~prev) {
          satisfied = true;
          break;
        }
        if (p != prev) {
          ps[j++] = p;
          prev = p;
        }
      }
      ps.resize(j);
    }
    if (satisfied) {
      ++stats_.shared_import_drops;
      ++share_win_misses_;
      return;
    }
    // Imported clauses are consequences of the shared hard clauses, not
    // of this solver's database: they enter a proof trace as axioms
    // (sharing and refutation proofs don't meaningfully mix).
    traceAxiom(ps);
    ++stats_.shared_imported;
    ++share_win_hits_;
    if (ps.empty()) {
      ok_ = false;
      return;
    }
    if (ps.size() == 1) {
      uncheckedEnqueue(ps[0]);
      ok_ = propagate().isNone();
      return;
    }
    if (ps.size() == 2) {
      attachBinary(ps[0], ps[1], /*learnt=*/true);
      return;
    }
    noteAllocFault();
    const CRef ref = arena_.alloc(ps, /*learnt=*/true, kUndefVar);
    ClauseRefView c = arena_[ref];
    const auto lbd = static_cast<std::uint32_t>(ps.size());
    c.setLbd(lbd);
    const std::uint32_t tier =
        lbd <= 2 ? kTierCore
                 : (lbd <= static_cast<std::uint32_t>(opts_.tier2_lbd)
                        ? kTier2
                        : kTierLocal);
    c.setTier(tier);
    c.setUsed(2);
    ++tierGauge(tier);
    learnts_.push_back(ref);
    attachClause(ref);
  },
      maxClauses);
  stats_.shared_import_scanned += scanned;
  drainSpan.arg("scanned", scanned);
  if (opts_.drain_size_hist != nullptr) opts_.drain_size_hist->observe(scanned);
  // Dynamic export ceilings: per full window of imported clauses, move
  // this worker's *export* filter one notch. A low attach rate means
  // the traffic it receives is mostly stale (everyone learns the same
  // facts), so the whole pool is likely over-sharing — tighten what we
  // contribute. A high attach rate means sharing is pulling its weight
  // — relax back toward the configured maxima. One notch per window
  // keeps the feedback loop stable against bursty drains.
  if (opts_.share_dynamic &&
      share_win_hits_ + share_win_misses_ >= kShareWindow) {
    if (share_size_cur_ == 0) {
      share_size_cur_ = opts_.share_max_size;
      share_lbd_cur_ = opts_.share_max_lbd;
    }
    if (share_win_hits_ * 2 < share_win_misses_) {
      // Under a 1-in-3 attach rate: tighten.
      share_size_cur_ = std::max(opts_.share_dyn_min_size, share_size_cur_ - 1);
      share_lbd_cur_ = std::max(opts_.share_dyn_min_lbd, share_lbd_cur_ - 1);
    } else if (share_win_hits_ > share_win_misses_) {
      // Over half attached: relax.
      share_size_cur_ = std::min(opts_.share_max_size, share_size_cur_ + 1);
      share_lbd_cur_ = std::min(opts_.share_max_lbd, share_lbd_cur_ + 1);
    }
    share_win_hits_ = 0;
    share_win_misses_ = 0;
  }
}

bool Solver::withinBudget() const {
  if (budget_.conflictsExhausted(stats_.conflicts)) return false;
  // Wall-clock checks are amortized by the caller (search loop).
  return true;
}

std::int64_t Solver::memBytesEstimate() const {
  std::int64_t b = 0;
  // Clause storage: arena capacity plus both watch pools.
  b += static_cast<std::int64_t>(arena_.bytes());
  b += static_cast<std::int64_t>(watches_.bytes());
  // Per-variable state (the vectors indexed by Var / Lit that grow with
  // newVar). Charged by slot count, not capacity — the constant is what
  // matters for a cap, and slots dominate capacity slack here.
  constexpr std::int64_t kPerVarBytes =
      sizeof(lbool) + sizeof(VarData) + 4 * sizeof(char) +  // assigns,
      // vardata, polarity/decision/seen/best_phase
      sizeof(double) +                                 // activity
      3 * sizeof(char) +                               // activator/frozen/…
      sizeof(char) + sizeof(Lit) +                     // eliminated/repr
      sizeof(int) + sizeof(Var) + sizeof(std::uint32_t) +  // scope maps
      2 * sizeof(double);  // order-heap entry + index (amortized)
  b += static_cast<std::int64_t>(numVars()) * kPerVarBytes;
  b += witness_.bytes();
  // Bookkeeping proportional to the database.
  b += static_cast<std::int64_t>(trail_.capacity()) * sizeof(Lit);
  b += static_cast<std::int64_t>(clauses_.capacity() + learnts_.capacity()) *
       static_cast<std::int64_t>(sizeof(CRef));
  // Deferred bulk-load attachments (transient, but real while a load is
  // in flight — exactly when a cap matters most) and bytes the owning
  // layer charged to this solver (parse buffers, formula storage).
  b += static_cast<std::int64_t>(bulk_bins_.capacity() *
                                     sizeof(std::pair<Lit, Lit>) +
                                 bulk_longs_.capacity() * sizeof(CRef));
  b += opts_.external_mem_bytes;
  return b;
}

void Solver::refreshMemStats() {
  stats_.mem_arena_bytes = static_cast<std::int64_t>(arena_.bytes());
  stats_.mem_watch_bytes = static_cast<std::int64_t>(watches_.bytes());
  stats_.mem_external_bytes = opts_.external_mem_bytes;
  stats_.mem_bytes = memBytesEstimate();
}

void Solver::maybeCheckLoadMem() {
  if (--load_mem_countdown_ > 0) return;
  load_mem_countdown_ = kLoadMemCheckPeriod;
  if (!budget_.hasMemoryCap()) return;
  refreshMemStats();
  if (budget_.memoryExhausted(stats_.mem_bytes)) load_failed_ = true;
}

void Solver::failLoadArenaOverflow(std::size_t clauseLits) {
  if (!load_failed_) {
    std::fprintf(stderr,
                 "msu: clause arena full: a %zu-literal clause would push a "
                 "clause reference past the 31-bit cap (2^31 words = 8 GiB "
                 "of clause storage); failing the load cooperatively with "
                 "AbortReason::memory\n",
                 clauseLits);
  }
  load_failed_ = true;
  budget_.noteAbort(AbortReason::kMemory);
}

bool Solver::pollAborted() {
  // Fault injection first: a forced expiry must win even when no real
  // limit is near (the injector simulates exactly that situation).
  if (opts_.fault != nullptr && opts_.fault->onPoll()) {
    budget_.noteAbort(AbortReason::kFault);
    return true;
  }
  if (budget_.timeExpired()) return true;
  if (alloc_failed_ || load_failed_) {
    // A simulated allocation failure — or a poisoned load (memory cap
    // or arena-ref overflow during addClause) — behaves like the memory
    // cap tripping: cooperative unwind, structured reason, no
    // corruption.
    budget_.noteAbort(AbortReason::kMemory);
    return true;
  }
  if (budget_.hasMemoryCap()) {
    refreshMemStats();
    if (budget_.memoryExhausted(stats_.mem_bytes)) return true;
  }
  return false;
}

lbool Solver::search(std::int64_t conflictsBeforeRestart) {
  assert(ok_);
  std::int64_t conflictC = 0;

  while (true) {
    const Reason confl = propagate();
    if (!confl.isNone()) {
      // Conflict.
      ++stats_.conflicts;
      ++conflictC;
      if (decisionLevel() == 0) {
        traceLemma({});  // conflict below all assumptions: refutation
        return lbool::False;
      }
      const int confTrail =
          conflictsBeforeRestart < 0 ? trailSize() : 0;  // adaptive only
      if (conflictsBeforeRestart < 0 && confTrail > best_trail_) {
        // Remember the deepest assignment as the best phase NOW, while
        // the trail still holds it — the backtrack below discards it.
        best_trail_ = confTrail;
        captureBestPhase();
      }

      int backtrackLevel = 0;
      analyze(confl, learnt_scratch_, backtrackLevel);
      traceLemma(learnt_scratch_);
      cancelUntil(backtrackLevel);
      recordLearnt(learnt_scratch_);

      varDecayActivity();
      claDecayActivity();

      if (conflictsBeforeRestart < 0) {
        // Adaptive (EMA) segment: feed the restart trigger and block
        // restarts while the assignment is unusually deep (glucose's
        // trail heuristic — the solver looks close to a model, let it
        // dig).
        restart_ema_.update(static_cast<double>(last_learnt_lbd_));
        trail_ema_.update(static_cast<double>(confTrail),
                          opts_.ema_trail_alpha);
        if (conflictC >= opts_.ema_min_conflicts &&
            static_cast<double>(confTrail) >
                opts_.ema_block_margin * trail_ema_.value) {
          restart_ema_.block();
          ++stats_.restarts_blocked;
        }
      }

      if ((stats_.conflicts & 255) == 0 && pollAborted()) {
        cancelUntil(0);
        return lbool::Undef;
      }
    } else {
      // No conflict.
      // Conflict-cadence import: a forced mini-restart. When the
      // cadence is due and the exchange has traffic, backtrack to the
      // root — exactly what a restart would do — run one budgeted
      // drain, and continue this search segment. Compared to waiting
      // for a natural restart boundary, this bounds clause staleness on
      // long stable plateaus (Luby tails, EMA-blocked stretches). The
      // level-0 precondition of importSharedClauses() is established by
      // the cancelUntil(0) here; see its definition for why it matters.
      if (sharing() && opts_.share_import_interval > 0 &&
          stats_.conflicts >= next_share_import_) {
        next_share_import_ = stats_.conflicts + opts_.share_import_interval;
        if (opts_.share->hasPending()) {
          cancelUntil(0);
          importSharedClauses(opts_.share_import_budget);
          warm_solves_since_import_ = 0;
          if (!ok_) {
            traceLemma({});
            return lbool::False;
          }
        }
      }
      const bool restartNow =
          conflictsBeforeRestart >= 0
              ? conflictC >= conflictsBeforeRestart
              : (conflictC >= opts_.ema_min_conflicts &&
                 restart_ema_.shouldRestart(opts_.ema_margin));
      if (restartNow || !withinBudget()) {
        cancelUntil(0);
        return lbool::Undef;
      }

      if (decisionLevel() == 0 && !simplify()) return lbool::False;

      if (static_cast<double>(numLearnts()) - trailSize() >= max_learnts_) {
        reduceDB();
      }

      Lit next = kUndefLit;
      while (decisionLevel() < static_cast<int>(assumptions_.size())) {
        const Lit p = assumptions_[decisionLevel()];
        if (value(p) == lbool::True) {
          newDecisionLevel();  // dummy level, already satisfied
        } else if (value(p) == lbool::False) {
          std::vector<Lit> negCore;
          analyzeFinal(~p, negCore);
          core_.clear();
          core_.reserve(negCore.size());
          for (Lit q : negCore) core_.push_back(~q);
          return lbool::False;
        } else {
          next = p;
          break;
        }
      }

      if (next == kUndefLit) {
        ++stats_.decisions;
        next = pickBranchLit();
        if (next == kUndefLit) {
          // All variables assigned: model found.
          return lbool::True;
        }
      }

      newDecisionLevel();
      uncheckedEnqueue(next);
    }
  }
}

lbool Solver::solve(std::span<const Lit> assumptions) {
  obs::TraceSpan solveSpan(opts_.trace, obs::TraceCat::kOracle, "solve");
  const std::int64_t traceConflicts0 = stats_.conflicts;
  ++stats_.solves;
  model_.clear();
  core_.clear();
  assumptions_.assign(assumptions.begin(), assumptions.end());
  if (!ok_) return lbool::False;
  if (opts_.fault != nullptr && opts_.fault->onSolve()) {
    // Injected spurious give-up: the oracle "fails" before doing any
    // work, which MaxSAT engines must absorb without corrupting bounds.
    budget_.noteAbort(AbortReason::kFault);
    return lbool::Undef;
  }
  if (pollAborted() || !withinBudget()) return lbool::Undef;

  // Assumptions over removed variables: substituted literals are
  // rewritten to their representatives and eliminated variables are
  // restored (they must be assignable again for the assumption to
  // constrain anything). The original literals are kept so core() can
  // be translated back (remapCore). Activators are never removed, so
  // the automatic scope assumptions below need no mapping.
  assumps_mapped_ = false;
  if (has_removed_vars_) {
    bool touched = false;
    for (const Lit p : assumptions_) {
      if (varRemoved(p.var())) {
        touched = true;
        break;
      }
    }
    if (touched) {
      user_assumps_orig_ = assumptions_;
      if (!mapAndRestore(assumptions_)) {
        assumptions_.clear();
        return lbool::False;
      }
      assumps_mapped_ = true;
    }
  }

  // Every live encoding scope is decided up front: its activator when
  // enforced, the negation when disabled. This is what keeps physical
  // retirement sound — scope clauses can never propagate their own
  // guard, so every learnt descendant carries it (see the file comment
  // in solver.h).
  appendScopeAssumptions(assumptions);
  stats_.restart_mode = restartModeGauge();

  // Warm start (Options::reuse_trail): the previous solve left its
  // trail in place, and level i of it corresponds to
  // prev_assumptions_[i-1]. Keep the longest prefix of levels whose
  // assumptions the new sequence repeats verbatim and backtrack only to
  // the first divergence — unless an inprocessing pass is due, which
  // rewrites the database and needs (and invalidates down to) the root.
  if (decisionLevel() > 0) {
    assert(opts_.reuse_trail);
    int keep = 0;
    // A due inprocessing pass needs the root. So do shared-clause
    // imports (they attach at level 0 only): a stream of short warm
    // solves might otherwise never reach a restart boundary, deferring
    // the portfolio's clause exchange indefinitely — a sharing solver
    // therefore takes a periodic cold start.
    const bool importOverdue =
        sharing() && ++warm_solves_since_import_ >= kWarmImportPeriod;
    if (!inprocessDue() && !importOverdue) {
      const int bound = std::min(
          {static_cast<int>(prev_assumptions_.size()),
           static_cast<int>(assumptions_.size()), decisionLevel()});
      while (keep < bound && prev_assumptions_[static_cast<std::size_t>(
                                 keep)] ==
                                 assumptions_[static_cast<std::size_t>(keep)]) {
        ++keep;
      }
    }
    cancelUntil(keep);
    if (decisionLevel() > 0) {
      stats_.reused_trail_lits += trailSize() - trail_lim_[0];
    }
  }
  prev_assumptions_ = assumptions_;

  if (decisionLevel() == 0 && (!simplify() || !maybeInprocess())) {
    assumptions_.clear();
    return lbool::False;
  }

  // Reserve the conflict-analysis scratch once per solve instead of
  // growing it inside the hot loop.
  const std::size_t scratch = static_cast<std::size_t>(numVars());
  analyze_stack_.reserve(scratch);
  analyze_toclear_.reserve(scratch);
  learnt_scratch_.reserve(scratch);
  lbd_scratch_.reserve(scratch);

  max_learnts_ = std::max(
      static_cast<double>(numClauses()) * opts_.learntsize_factor, 100.0);

  lbool status = lbool::Undef;
  for (int restarts = 0; status == lbool::Undef; ++restarts) {
    if (pollAborted() || !withinBudget()) break;
    // Restart boundary: adopt foreign clauses while the trail holds
    // level-0 facts only (attaching is trivially sound here), and give
    // inprocessing its periodic shot at the database. A warm first
    // segment skips both — they run at the next genuine restart.
    if (decisionLevel() == 0) {
      importSharedClauses(opts_.share_import_budget);
      warm_solves_since_import_ = 0;
      if (!ok_ || !maybeInprocess()) {
        status = lbool::False;
        break;
      }
    }
    std::int64_t pace;
    if (opts_.ema_restarts) {
      maybeSwitchMode();
      // Focused phases restart adaptively (EMA trigger inside search);
      // stable phases restart on a long Luby schedule and dig.
      pace = stable_mode_
                 ? static_cast<std::int64_t>(
                       lubySequence(2.0, stable_luby_idx_++) *
                       opts_.restart_base * opts_.stable_restart_mult)
                 : -1;
    } else {
      const double restartBase =
          opts_.luby_restarts
              ? lubySequence(2.0, restarts)
              : std::pow(opts_.restart_inc, restarts);
      pace = static_cast<std::int64_t>(restartBase * opts_.restart_base);
    }
    {
      obs::TraceSpan restartSpan(opts_.trace, obs::TraceCat::kRestart,
                                 "restart");
      const std::int64_t segC0 = stats_.conflicts;
      status = search(pace);
      restartSpan.arg("conflicts", stats_.conflicts - segC0);
    }
    ++stats_.restarts;
    max_learnts_ *= opts_.learntsize_inc;
  }

  if (status == lbool::True) {
    model_.resize(static_cast<std::size_t>(numVars()));
    for (Var v = 0; v < numVars(); ++v) model_[v] = assigns_[v];
    // Extend the assignment over eliminated/substituted variables so
    // callers never observe removal (reconstruction contract).
    if (has_removed_vars_) reconstructModel();
  } else if (status == lbool::False) {
    if (core_.empty()) {
      // Unsatisfiable independently of the assumptions.
      ok_ = false;
    } else if (assumps_mapped_) {
      // Translate representatives back to the assumptions the caller
      // actually passed.
      remapCore();
    }
  }

  // Warm-started solvers keep the trail for the next call; everyone
  // else rewinds to the root as before.
  if (!opts_.reuse_trail) cancelUntil(0);
  assumptions_.clear();
  refreshMemStats();
  solveSpan.arg("conflicts", stats_.conflicts - traceConflicts0);
  return status;
}

void Solver::maybeSwitchMode() {
  if (mode_interval_ == 0) {
    // First solve in EMA mode: start focused, schedule the first switch.
    mode_interval_ = opts_.mode_switch_conflicts;
    next_mode_switch_ = stats_.conflicts + mode_interval_;
  }
  if (stats_.conflicts >= next_mode_switch_) {
    stable_mode_ = !stable_mode_;
    ++stats_.mode_switches;
    mode_interval_ *= 2;
    next_mode_switch_ = stats_.conflicts + mode_interval_;
    if (stable_mode_) {
      // Entering a stable phase: adopt the deepest trail's polarities
      // (best-phase rephasing) and restart the stable Luby schedule.
      polarity_ = best_phase_;
      stable_luby_idx_ = 0;
    } else {
      // Fresh focused phase: capture a new best trail from scratch.
      best_trail_ = 0;
    }
  }
  stats_.restart_mode = restartModeGauge();
}

void Solver::captureBestPhase() {
  for (const Lit p : trail_) {
    best_phase_[p.var()] = p.positive() ? 0 : 1;
  }
}

int Solver::numFixedVars() const {
  return trail_lim_.empty() ? trailSize() : trail_lim_[0];
}

}  // namespace msu
