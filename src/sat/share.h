/// \file share.h
/// \brief The solver-side interface of inter-solver learnt-clause
///        sharing, analogous to ProofTracer: the CDCL engine talks to an
///        abstract exchange, and the parallel portfolio (src/par)
///        provides the concrete sharded pool behind it.
///
/// ## Contract
///
/// A Solver with a ClauseShare attached *exports* learnt clauses that
/// pass its sharing filter (short, low-LBD, and over the shareable
/// variable prefix only — see Solver::Options::share_num_vars) the
/// moment they are learnt, and *imports* foreign clauses in budgeted
/// drains at decision level 0 — at solve entry, at restart boundaries,
/// and (on a conflict cadence, see Solver::Options::share_import_interval)
/// at forced level-0 backtrack points inside search — where attaching
/// them is trivially sound for the search state.
///
/// Exported clauses must be logical consequences of the *shared* part
/// of the problem — in the portfolio, the hard clauses of the MaxSAT
/// instance — so that any consumer may attach them as learnt clauses
/// regardless of its own engine state. The solver guarantees this by
/// construction: only clauses whose literals all lie below
/// `share_num_vars` qualify, and the engine layer keeps every
/// non-consequence it adds (selector-augmented softs, bound
/// restrictions, encoding definitions) either guarded by a scope
/// activator or confined to variables above that prefix (see
/// par/clause_pool.h for the full argument). In particular, clauses
/// touching activator-tagged scope variables are never exported, which
/// keeps sharing sound under physical scope retirement.
///
/// Implementations must be safe to call concurrently from the owning
/// solver threads. Each endpoint is driven by exactly one thread (its
/// worker); thread safety concerns only the traffic *between*
/// endpoints, which the portfolio's pool handles with lock-free
/// per-producer segments.

#pragma once

#include <functional>
#include <span>

#include "cnf/literal.h"

namespace msu {

/// Receiver/source of shared learnt clauses. Non-owning; must outlive
/// every solver it is attached to.
class ClauseShare {
 public:
  virtual ~ClauseShare() = default;

  /// Offers a learnt clause (already filtered by the solver) to the
  /// exchange. `glue` is the clause's LBD at learning time. Returns
  /// true iff the clause was published; false when the exchange dropped
  /// it (export segment full, or a duplicate of a clause this endpoint
  /// already published or imported).
  virtual bool exportClause(std::span<const Lit> lits, int glue) = 0;

  /// Streams foreign clauses this endpoint has not delivered yet into
  /// `consume`, up to `maxClauses` of them (negative = no cap); the
  /// rest stay queued for the next drain. Returns the number of foreign
  /// publications *scanned*, including those skipped as duplicates —
  /// the caller's scanned-vs-admitted observability hinges on the
  /// distinction. Called by the solver only at decision level 0. The
  /// spans passed to `consume` are valid only for the duration of the
  /// callback.
  virtual int importClauses(
      const std::function<void(std::span<const Lit>)>& consume,
      int maxClauses) = 0;

  /// Cheap hint: true when a drain would plausibly deliver something.
  /// The solver's conflict-cadence import forces a level-0 backtrack
  /// only when this returns true, so a quiet exchange costs no search
  /// progress. Conservative overrides are fine (the default never
  /// suppresses a drain).
  [[nodiscard]] virtual bool hasPending() const { return true; }
};

}  // namespace msu
