/// \file share.h
/// \brief The solver-side interface of inter-solver learnt-clause
///        sharing, analogous to ProofTracer: the CDCL engine talks to an
///        abstract exchange, and the parallel portfolio (src/par)
///        provides the concrete pool behind it.
///
/// ## Contract
///
/// A Solver with a ClauseShare attached *exports* learnt clauses that
/// pass its sharing filter (short, low-LBD, and over the shareable
/// variable prefix only — see Solver::Options::share_num_vars) the
/// moment they are learnt, and *imports* foreign clauses at restart
/// boundaries (decision level 0), where attaching them is trivially
/// sound for the search state.
///
/// Exported clauses must be logical consequences of the *shared* part
/// of the problem — in the portfolio, the hard clauses of the MaxSAT
/// instance — so that any consumer may attach them as learnt clauses
/// regardless of its own engine state. The solver guarantees this by
/// construction: only clauses whose literals all lie below
/// `share_num_vars` qualify, and the engine layer keeps every
/// non-consequence it adds (selector-augmented softs, bound
/// restrictions, encoding definitions) either guarded by a scope
/// activator or confined to variables above that prefix (see
/// par/clause_pool.h for the full argument). In particular, clauses
/// touching activator-tagged scope variables are never exported, which
/// keeps sharing sound under physical scope retirement.
///
/// Implementations must be safe to call concurrently from the owning
/// solver threads (the portfolio's pool locks internally).

#pragma once

#include <functional>
#include <span>

#include "cnf/literal.h"

namespace msu {

/// Receiver/source of shared learnt clauses. Non-owning; must outlive
/// every solver it is attached to.
class ClauseShare {
 public:
  virtual ~ClauseShare() = default;

  /// Offers a learnt clause (already filtered by the solver) to the
  /// exchange. `glue` is the clause's LBD at learning time.
  virtual void exportClause(std::span<const Lit> lits, int glue) = 0;

  /// Streams every foreign clause this endpoint has not seen yet into
  /// `consume`. Called by the solver only at decision level 0. The
  /// spans passed to `consume` are valid only for the duration of the
  /// callback.
  virtual void importClauses(
      const std::function<void(std::span<const Lit>)>& consume) = 0;
};

}  // namespace msu
