/// \file proof_tracer.h
/// \brief Hook interface through which the CDCL solver emits a clausal
///        (DRUP) proof trace. Zhang & Malik's DATE'03 checker — reference
///        [27] of the paper — is the ancestor of this scheme: every
///        clause the solver learns is logged and can be re-derived by an
///        independent reverse-unit-propagation check.
///
/// The solver calls the tracer with three kinds of events:
///  * axiom    — a clause added by the user (`Solver::addClause`), an
///               input of the proof, not subject to checking;
///  * lemma    — a clause the solver derived (learnt clauses, clauses
///               strengthened at level 0, the empty clause on
///               refutation); each must hold by unit propagation;
///  * deletion — a clause the solver discarded (clause-database
///               reduction, satisfied-clause removal).
///
/// Implementations live in `src/proof/` (in-memory recorder, DRUP text
/// writer); the solver only depends on this narrow interface.

#pragma once

#include <span>

#include "cnf/literal.h"

namespace msu {

/// Receiver of solver proof events. All methods must tolerate being
/// called at any point of the solve; spans are only valid for the call.
class ProofTracer {
 public:
  virtual ~ProofTracer() = default;

  /// A user-supplied clause entered the database (proof input).
  virtual void axiom(std::span<const Lit> lits) = 0;

  /// The solver derived `lits` (RUP w.r.t. the database at this point).
  /// An empty span is the empty clause: the database is refuted.
  virtual void lemma(std::span<const Lit> lits) = 0;

  /// The solver removed a clause from the database.
  virtual void deleted(std::span<const Lit> lits) = 0;
};

}  // namespace msu
