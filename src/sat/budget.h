/// \file budget.h
/// \brief Resource budgets shared by all solvers in the library.
///
/// The DATE'08 evaluation aborts solvers at a wall-clock timeout. We
/// reproduce "aborted instances" accounting with cooperative budgets:
/// every solver polls a Budget (wall clock, conflicts, search nodes) and
/// returns an *unknown* outcome when it is exhausted. No signals, no
/// processes — portable and deterministic enough for CI.
///
/// Budgets additionally carry an optional *interrupt flag*: a non-owning
/// pointer to an atomic bool that an external controller (the parallel
/// portfolio's first-finisher cancellation, a UI, a watchdog) may set at
/// any time. An interrupted budget reports its wall clock as expired, so
/// every existing poll site doubles as a cancellation point.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>

namespace msu {

/// A cooperative resource budget. Default-constructed budgets are
/// unlimited. All limits are cumulative for the solver instance polling
/// them (a MaxSAT engine shares one budget across all its SAT calls).
class Budget {
 public:
  using Clock = std::chrono::steady_clock;

  Budget() = default;

  /// Unlimited budget.
  [[nodiscard]] static Budget unlimited() { return Budget{}; }

  /// Budget expiring `seconds` of wall-clock time from now.
  [[nodiscard]] static Budget wallClock(double seconds) {
    Budget b;
    b.setWallClock(seconds);
    return b;
  }

  /// Budget limited to `n` SAT conflicts (cumulative).
  [[nodiscard]] static Budget conflicts(std::int64_t n) {
    Budget b;
    b.max_conflicts_ = n;
    return b;
  }

  /// Sets/overwrites the wall-clock deadline to `seconds` from now.
  void setWallClock(double seconds) {
    deadline_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>(seconds));
  }

  /// Sets the cumulative conflict limit.
  void setMaxConflicts(std::int64_t n) { max_conflicts_ = n; }

  /// Sets the cumulative branch-and-bound node limit.
  void setMaxNodes(std::int64_t n) { max_nodes_ = n; }

  /// Installs (or clears, with nullptr) an external interrupt flag. The
  /// flag is non-owning and must outlive every copy of this budget;
  /// copies share it, which is how one stop signal fans out to all
  /// solvers of a portfolio.
  void setInterrupt(const std::atomic<bool>* flag) { interrupt_ = flag; }

  /// True iff an interrupt flag is installed and set.
  [[nodiscard]] bool interrupted() const {
    return interrupt_ != nullptr &&
           interrupt_->load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::optional<std::int64_t> maxConflicts() const {
    return max_conflicts_;
  }
  [[nodiscard]] std::optional<std::int64_t> maxNodes() const {
    return max_nodes_;
  }

  /// True iff the budget was interrupted externally, or a wall-clock
  /// deadline exists and has passed. Folding the interrupt into the
  /// time check turns every existing wall-clock poll into a
  /// cancellation point.
  [[nodiscard]] bool timeExpired() const {
    return interrupted() || (deadline_ && Clock::now() >= *deadline_);
  }

  /// True iff the cumulative conflict count exceeds the limit.
  [[nodiscard]] bool conflictsExhausted(std::int64_t conflicts) const {
    return max_conflicts_ && conflicts >= *max_conflicts_;
  }

  /// True iff the cumulative node count exceeds the limit.
  [[nodiscard]] bool nodesExhausted(std::int64_t nodes) const {
    return max_nodes_ && nodes >= *max_nodes_;
  }

  /// True iff no limit of any kind is set (an interrupt flag counts as
  /// a limit: the budget can be exhausted externally).
  [[nodiscard]] bool isUnlimited() const {
    return !deadline_ && !max_conflicts_ && !max_nodes_ &&
           interrupt_ == nullptr;
  }

 private:
  std::optional<Clock::time_point> deadline_;
  std::optional<std::int64_t> max_conflicts_;
  std::optional<std::int64_t> max_nodes_;
  const std::atomic<bool>* interrupt_ = nullptr;
};

}  // namespace msu
