/// \file budget.h
/// \brief Resource budgets shared by all solvers in the library.
///
/// The DATE'08 evaluation aborts solvers at a wall-clock timeout. We
/// reproduce "aborted instances" accounting with cooperative budgets:
/// every solver polls a Budget (wall clock, conflicts, search nodes,
/// memory) and returns an *unknown* outcome when it is exhausted. No
/// signals, no processes — portable and deterministic enough for CI.
///
/// Budgets additionally carry an optional *interrupt flag*: a non-owning
/// pointer to an atomic bool that an external controller (the parallel
/// portfolio's first-finisher cancellation, a UI, the SolveService's
/// watchdog) may set at any time. An interrupted budget reports its wall
/// clock as expired, so every existing poll site doubles as a
/// cancellation point.
///
/// ## Copy semantics (read this before sharing Budgets across layers)
///
/// Budgets are value types and are copied freely through MaxSatOptions
/// into every engine and solver. The copy is intentionally asymmetric:
///
///  * the **interrupt flag and the abort-reason sink are shared** —
///    they are non-owning pointers, so one external stop signal (or one
///    recorded abort reason) fans out to every copy; this is how a
///    portfolio or a service cancels all the solvers of one job at
///    once. Both pointees must outlive every copy.
///  * the **deadline is a snapshot** — it is an absolute time point
///    baked in when setWallClock() ran. Calling setWallClock() on one
///    copy does NOT move any other copy's deadline. A controller that
///    wants to extend a running job's deadline must use the shared
///    interrupt flag (or its own watchdog), not a stale Budget copy.
///
/// Debug builds assert the invariant in the copy operations so a future
/// refactor cannot silently change it.

#pragma once

#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <optional>

namespace msu {

/// Why a cooperative solve stopped early. Recorded (first reason wins)
/// into the abort-reason sink shared by all copies of a Budget, so the
/// layer that configured the limits (e.g. the SolveService) can report
/// a structured cause instead of a bare "unknown".
enum class AbortReason : int {
  kNone = 0,    ///< not aborted (or no sink installed)
  kDeadline,    ///< wall-clock deadline passed
  kConflicts,   ///< cumulative conflict/node cap reached
  kMemory,      ///< cooperative memory cap exceeded (or simulated OOM)
  kCancelled,   ///< external interrupt flag raised by a canceller
  kFault,       ///< fault injection forced the abort (tests only)
};

/// Short human-readable abort-reason name.
[[nodiscard]] constexpr const char* toString(AbortReason r) {
  switch (r) {
    case AbortReason::kNone: return "none";
    case AbortReason::kDeadline: return "deadline";
    case AbortReason::kConflicts: return "conflicts";
    case AbortReason::kMemory: return "memory";
    case AbortReason::kCancelled: return "cancelled";
    case AbortReason::kFault: return "fault";
  }
  return "?";
}

/// A cooperative resource budget. Default-constructed budgets are
/// unlimited. All limits are cumulative for the solver instance polling
/// them (a MaxSAT engine shares one budget across all its SAT calls).
class Budget {
 public:
  using Clock = std::chrono::steady_clock;

  Budget() = default;

  // Copies share interrupt_/abort_sink_ (pointers) and snapshot the
  // deadline (a value); see the file comment. The explicit definitions
  // exist to pin that contract with debug assertions.
  Budget(const Budget& o)
      : deadline_(o.deadline_),
        max_conflicts_(o.max_conflicts_),
        max_nodes_(o.max_nodes_),
        max_memory_(o.max_memory_),
        interrupt_(o.interrupt_),
        abort_sink_(o.abort_sink_) {
    assert(interrupt_ == o.interrupt_ &&
           "budget copies share the interrupt flag");
    assert(abort_sink_ == o.abort_sink_ &&
           "budget copies share the abort-reason sink");
    assert(deadline_ == o.deadline_ &&
           "budget copies snapshot the deadline (moving one copy's "
           "deadline never moves another's)");
  }
  Budget& operator=(const Budget& o) {
    deadline_ = o.deadline_;
    max_conflicts_ = o.max_conflicts_;
    max_nodes_ = o.max_nodes_;
    max_memory_ = o.max_memory_;
    interrupt_ = o.interrupt_;
    abort_sink_ = o.abort_sink_;
    assert(interrupt_ == o.interrupt_ && abort_sink_ == o.abort_sink_ &&
           deadline_ == o.deadline_);
    return *this;
  }

  /// Unlimited budget.
  [[nodiscard]] static Budget unlimited() { return Budget{}; }

  /// Budget expiring `seconds` of wall-clock time from now.
  [[nodiscard]] static Budget wallClock(double seconds) {
    Budget b;
    b.setWallClock(seconds);
    return b;
  }

  /// Budget limited to `n` SAT conflicts (cumulative).
  [[nodiscard]] static Budget conflicts(std::int64_t n) {
    Budget b;
    b.max_conflicts_ = n;
    return b;
  }

  /// Sets/overwrites the wall-clock deadline to `seconds` from now.
  /// NOTE: the deadline is a snapshot — copies made before this call do
  /// not see it (see the file comment).
  void setWallClock(double seconds) {
    deadline_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>(seconds));
  }

  /// Sets the cumulative conflict limit.
  void setMaxConflicts(std::int64_t n) { max_conflicts_ = n; }

  /// Sets the cumulative branch-and-bound node limit.
  void setMaxNodes(std::int64_t n) { max_nodes_ = n; }

  /// Sets the cooperative memory cap in bytes. The solver compares its
  /// own accounting (SolverStats::mem_bytes: arena + watch table +
  /// learnt DB + per-variable state) against it at the existing budget
  /// poll sites and aborts with AbortReason::kMemory instead of letting
  /// the process OOM.
  void setMaxMemory(std::int64_t bytes) { max_memory_ = bytes; }

  /// Installs (or clears, with nullptr) an external interrupt flag. The
  /// flag is non-owning and must outlive every copy of this budget;
  /// copies share it, which is how one stop signal fans out to all
  /// solvers of a portfolio.
  void setInterrupt(const std::atomic<bool>* flag) { interrupt_ = flag; }

  /// Installs (or clears, with nullptr) the abort-reason sink: an
  /// atomic slot, shared by all copies, into which the *first* limit
  /// that trips writes its AbortReason. External cancellers (watchdog,
  /// cancel()) write kDeadline/kCancelled themselves before raising the
  /// interrupt flag; first-wins keeps the recorded cause stable when
  /// several limits race.
  void setAbortSink(std::atomic<int>* sink) { abort_sink_ = sink; }

  /// Records `r` into the shared sink iff no reason is recorded yet.
  /// Safe (and a no-op) without a sink.
  void noteAbort(AbortReason r) const {
    if (abort_sink_ == nullptr) return;
    int expected = static_cast<int>(AbortReason::kNone);
    abort_sink_->compare_exchange_strong(expected, static_cast<int>(r),
                                         std::memory_order_relaxed);
  }

  /// True iff an interrupt flag is installed and set.
  [[nodiscard]] bool interrupted() const {
    return interrupt_ != nullptr &&
           interrupt_->load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::optional<std::int64_t> maxConflicts() const {
    return max_conflicts_;
  }
  [[nodiscard]] std::optional<std::int64_t> maxNodes() const {
    return max_nodes_;
  }
  [[nodiscard]] std::optional<std::int64_t> maxMemory() const {
    return max_memory_;
  }

  /// Seconds until the wall-clock deadline (clamped at 0 once passed),
  /// or nullopt when no deadline is set. Lets a controller report
  /// time-left in poll responses without reverse-engineering the
  /// snapshot time point.
  [[nodiscard]] std::optional<double> remaining() const {
    if (!deadline_) return std::nullopt;
    const auto left = std::chrono::duration<double>(*deadline_ - Clock::now());
    return left.count() > 0.0 ? left.count() : 0.0;
  }

  /// True iff the budget was interrupted externally, or a wall-clock
  /// deadline exists and has passed. Folding the interrupt into the
  /// time check turns every existing wall-clock poll into a
  /// cancellation point. Trips record their AbortReason into the shared
  /// sink (interrupts record nothing here: the canceller that raised
  /// the flag already recorded the authoritative cause).
  [[nodiscard]] bool timeExpired() const {
    if (interrupted()) return true;
    if (deadline_ && Clock::now() >= *deadline_) {
      noteAbort(AbortReason::kDeadline);
      return true;
    }
    return false;
  }

  /// True iff the cumulative conflict count exceeds the limit.
  [[nodiscard]] bool conflictsExhausted(std::int64_t conflicts) const {
    if (max_conflicts_ && conflicts >= *max_conflicts_) {
      noteAbort(AbortReason::kConflicts);
      return true;
    }
    return false;
  }

  /// True iff the cumulative node count exceeds the limit.
  [[nodiscard]] bool nodesExhausted(std::int64_t nodes) const {
    if (max_nodes_ && nodes >= *max_nodes_) {
      noteAbort(AbortReason::kConflicts);
      return true;
    }
    return false;
  }

  /// True iff a memory cap is set and `bytes` of cooperative accounting
  /// exceeds it.
  [[nodiscard]] bool memoryExhausted(std::int64_t bytes) const {
    if (max_memory_ && bytes >= *max_memory_) {
      noteAbort(AbortReason::kMemory);
      return true;
    }
    return false;
  }

  /// True iff a memory cap is set at all (lets the solver skip the
  /// byte accounting entirely on uncapped runs).
  [[nodiscard]] bool hasMemoryCap() const { return max_memory_.has_value(); }

  /// True iff no limit of any kind is set (an interrupt flag counts as
  /// a limit: the budget can be exhausted externally).
  [[nodiscard]] bool isUnlimited() const {
    return !deadline_ && !max_conflicts_ && !max_nodes_ && !max_memory_ &&
           interrupt_ == nullptr;
  }

 private:
  std::optional<Clock::time_point> deadline_;
  std::optional<std::int64_t> max_conflicts_;
  std::optional<std::int64_t> max_nodes_;
  std::optional<std::int64_t> max_memory_;
  const std::atomic<bool>* interrupt_ = nullptr;
  std::atomic<int>* abort_sink_ = nullptr;
};

}  // namespace msu
