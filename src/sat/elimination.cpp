/// \file elimination.cpp
/// \brief Bounded variable elimination (inprocessing round two) and the
///        removed-variable machinery shared with SCC substitution:
///        literal representatives, witness restoration, model
///        reconstruction and core back-mapping.
///
/// Elimination is SatELite-style DP resolution: pick a variable v, form
/// every resolvent of a clause containing v with a clause containing
/// ¬v, and replace v's clauses by the non-tautological resolvents. The
/// result is equisatisfiable but not model-equivalent, so every
/// eliminated clause is pushed onto the solver's witness stack
/// (sat/reconstruct.h) and replayed over models before they are
/// published. The pass is *bounded*: a variable is eliminated only when
/// both occurrence lists are short (inprocess_bve_occ_limit), no
/// occurrence is longer than inprocess_bve_clause_limit, and the
/// resolvent count does not exceed the occurrence count by more than
/// inprocess_bve_growth. Pure literals fall out as the empty-side case.
///
/// ## Scope-/incremental-safety (the reconstruction contract, solver.h)
///
/// A candidate variable must be a plain auxiliary: unassigned, not
/// frozen, not an activator, not scope-owned, not currently assumed,
/// not below the sharing prefix, not already removed, and not occurring
/// in any tagged clause, any clause touching a scope or activator
/// variable, or any oversize clause (those occurrences ban the
/// variable). Binary clauses carry no arena tag, so a binary partner in
/// a scope identifies a scope binary and disqualifies the candidate the
/// same way. Consequently no witness clause ever references a scope
/// variable and retirement never invalidates the stack.
///
/// Learnt clauses do not participate in resolution but every learnt
/// clause over v is deleted with it: the post-elimination database need
/// not imply them, and a stale learnt could force-assign the eliminated
/// variable. Deleting learnt clauses is always sound.
///
/// Resolvent variables are banned for the remainder of the pass — the
/// occurrence lists were built once and do not see the new clauses, and
/// resolving on a variable with an incomplete occurrence set would drop
/// constraints.
///
/// An attached ProofTracer disables the pass entirely: clause
/// restoration (an eliminated variable re-entering via addClause or an
/// assumption) re-adds clauses that are not RUP-derivable from the
/// current database, which the incremental trace cannot express.

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "sat/solver.h"

namespace msu {

Lit Solver::reprLit(Lit p) const {
  // Chases substitution chains. The map is acyclic by construction:
  // each substitution maps a newly removed variable to a then-live
  // literal, so every chain strictly descends in removal time.
  for (;;) {
    const Lit r = repr_[p.var()];
    if (r == posLit(p.var())) return p;
    p = p.positive() ? r : ~r;
  }
}

bool Solver::mapAndRestore(std::vector<Lit>& ps) {
  for (Lit& p : ps) p = reprLit(p);
  for (const Lit p : ps) {
    if (eliminated_[p.var()] != 0 && !restoreVar(p.var())) return false;
  }
  return ok_;
}

bool Solver::restoreVar(Var v) {
  assert(eliminated_[v] != 0);
  const bool wasDecision = eliminated_[v] == 1;
  // Clear the mark first: the witness clauses about to be re-added may
  // themselves name v, and the recursive mapAndRestore must see it
  // live.
  eliminated_[v] = 0;
  ++stats_.inproc_bve_restored;
  if (wasDecision && decision_[v] == 0) {
    decision_[v] = 1;
    if (assigns_[v] == lbool::Undef && !order_heap_.contains(v)) {
      order_heap_.insert(v);
    }
  }
  std::vector<std::vector<Lit>> clauses;
  witness_.extractRestorable(v, clauses);
  for (auto& cl : clauses) {
    if (!addClauseInternal(std::move(cl), kUndefVar)) return false;
  }
  return ok_;
}

bool Solver::addClauseInternal(std::vector<Lit> ps, Var tag) {
  // addClause's body without the cross-scope check and without axiom
  // tracing: restoration re-adds clauses the trace already holds, and
  // BVE resolvents only exist when no tracer is attached.
  assert(opts_.tracer == nullptr);
  if (!ok_) return false;
  if (has_removed_vars_ && !mapAndRestore(ps)) return false;

  std::sort(ps.begin(), ps.end());
  Lit prev = kUndefLit;
  std::size_t j = 0;
  for (Lit p : ps) {
    assert(p.var() < numVars());
    if (rootValue(p) == lbool::True ||
        (prev != kUndefLit && p == ~prev)) {  // satisfied / tautology
      return true;
    }
    if (rootValue(p) != lbool::False && p != prev) {
      ps[j++] = p;
      prev = p;
    }
  }
  ps.resize(j);

  if (ps.empty()) {
    if (decisionLevel() > 0) cancelUntil(0);
    ok_ = false;
    return false;
  }
  if (ps.size() == 1) {
    if (decisionLevel() > 0) cancelUntil(0);
    uncheckedEnqueue(ps[0]);
    ok_ = propagate().isNone();
    return ok_;
  }
  if (decisionLevel() > 0) prepareWarmAttach(ps);
  if (ps.size() == 2) {
    attachBinary(ps[0], ps[1], /*learnt=*/false);
    return true;
  }
  noteAllocFault();
  const CRef ref = arena_.alloc(ps, /*learnt=*/false, tag);
  clauses_.push_back(ref);
  attachClause(ref);
  return true;
}

void Solver::reconstructModel() {
  // Removed variables are unassigned by search; give them a definite
  // default so witness replay evaluates every clause, then let the
  // stack flip whatever the removed clauses require.
  for (Var v = 0; v < numVars(); ++v) {
    if (varRemoved(v) && model_[static_cast<std::size_t>(v)] == lbool::Undef) {
      model_[static_cast<std::size_t>(v)] = lbool::False;
    }
  }
  witness_.extend(model_);
}

void Solver::remapCore() {
  // The final conflict names the *mapped* assumptions; callers expect
  // the literals they passed. Several user assumptions may map to one
  // representative — all of them are then in the core.
  std::vector<Lit> out;
  out.reserve(core_.size());
  for (const Lit c : core_) {
    bool replaced = false;
    for (const Lit orig : user_assumps_orig_) {
      if (reprLit(orig) == c) {
        out.push_back(orig);
        replaced = true;
      }
    }
    // Auto-assumed activators (and any unmapped assumption) pass
    // through unchanged.
    if (!replaced) out.push_back(c);
  }
  core_ = std::move(out);
}

bool Solver::inprocEliminate() {
  if (opts_.inprocess_bve_occ_limit <= 0) return ok_;  // stage disabled
  // Restoration is not expressible in the incremental RUP trace; see
  // the reconstruction contract in solver.h.
  if (opts_.tracer != nullptr) return ok_;
  if (!ok_) return false;
  assert(decisionLevel() == 0);

  const int nv = numVars();
  const std::size_t nLits = static_cast<std::size_t>(2 * nv);

  // Variables assumed by the current call keep their meaning: witness
  // replay may flip a removed variable, which would silently violate
  // the assumption.
  std::vector<char> assumed(static_cast<std::size_t>(nv), 0);
  for (const Lit p : assumptions_) assumed[p.var()] = 1;

  // banned[v]: v occurs somewhere elimination must not touch — a
  // tagged clause, a clause over scope/activator variables, an
  // oversize clause, or (later) a resolvent the occurrence lists below
  // do not see.
  std::vector<char> banned(static_cast<std::size_t>(nv), 0);

  // Literal-indexed occurrence lists over the long clauses: originals
  // (resolution inputs) and learnts (deleted with the variable).
  std::vector<std::vector<CRef>> occ(nLits);
  std::vector<std::vector<CRef>> occLearnt(nLits);

  for (const CRef ref : clauses_) {
    const ClauseRefView c = arena_[ref];
    if (c.deleted()) continue;
    bool eligible =
        !c.tagged() && c.size() <= opts_.inprocess_bve_clause_limit;
    if (eligible) {
      for (const Lit p : c.lits()) {
        if (is_activator_[p.var()] != 0 || var_owner_[p.var()] != kUndefVar) {
          eligible = false;
          break;
        }
      }
    }
    if (!eligible) {
      for (const Lit p : c.lits()) banned[p.var()] = 1;
      continue;
    }
    for (const Lit p : c.lits()) {
      occ[static_cast<std::size_t>(p.index())].push_back(ref);
    }
  }
  for (const CRef ref : learnts_) {
    const ClauseRefView c = arena_[ref];
    if (c.deleted()) continue;
    for (const Lit p : c.lits()) {
      occLearnt[static_cast<std::size_t>(p.index())].push_back(ref);
    }
  }

  std::vector<char> inResolvent(nLits, 0);  // tautology-check marker
  std::vector<std::vector<Lit>> posCls;
  std::vector<std::vector<Lit>> negCls;
  std::vector<std::vector<Lit>> resolvents;
  std::vector<Lit> scratch;

  for (Var v = 0; v < nv && ok_; ++v) {
    if (assigns_[v] != lbool::Undef) continue;
    if (banned[v] != 0 || frozen_[v] != 0 || is_activator_[v] != 0) continue;
    if (assumed[v] != 0 || var_owner_[v] != kUndefVar) continue;
    if (varRemoved(v)) continue;
    // Exported clauses must keep their meaning across workers: the
    // sharing prefix is off limits.
    if (sharing() && v < opts_.share_num_vars) continue;

    const Lit pv = posLit(v);
    const Lit nvl = negLit(v);

    // Materialize both occurrence sets: long originals from occ,
    // original binaries from the watch lists (a binary containing l
    // lives in binList(~l)). Binaries carry no arena tag, so a partner
    // in a scope marks a scope binary and disqualifies the candidate.
    posCls.clear();
    negCls.clear();
    bool skip = false;
    const auto gather = [&](Lit l, std::vector<std::vector<Lit>>& out) {
      for (const CRef ref : occ[static_cast<std::size_t>(l.index())]) {
        const ClauseRefView c = arena_[ref];
        if (c.deleted()) continue;
        out.emplace_back(c.lits().begin(), c.lits().end());
      }
      for (const BinWatch bw : watches_.binList(~l)) {
        if (bw.learnt()) continue;  // learnts are deleted, not resolved
        const Lit q = bw.implied();
        if (is_activator_[q.var()] != 0 || var_owner_[q.var()] != kUndefVar) {
          skip = true;
          return;
        }
        out.push_back({l, q});
      }
    };
    gather(pv, posCls);
    if (!skip) gather(nvl, negCls);
    if (skip) continue;

    const int posCount = static_cast<int>(posCls.size());
    const int negCount = static_cast<int>(negCls.size());
    if (posCount > opts_.inprocess_bve_occ_limit ||
        negCount > opts_.inprocess_bve_occ_limit) {
      continue;
    }
    if (posCount + negCount == 0) continue;  // unused variable

    // Build the non-tautological resolvents; bail out as soon as the
    // growth allowance is exceeded.
    resolvents.clear();
    bool tooMany = false;
    const int allow = posCount + negCount + opts_.inprocess_bve_growth;
    for (const auto& cp : posCls) {
      for (const auto& cn : negCls) {
        scratch.clear();
        bool taut = false;
        for (const Lit p : cp) {
          if (p == pv) continue;
          if (inResolvent[static_cast<std::size_t>(p.index())] == 0) {
            inResolvent[static_cast<std::size_t>(p.index())] = 1;
            scratch.push_back(p);
          }
        }
        for (const Lit p : cn) {
          if (p == nvl) continue;
          if (inResolvent[static_cast<std::size_t>((~p).index())] != 0) {
            taut = true;
            break;
          }
          if (inResolvent[static_cast<std::size_t>(p.index())] == 0) {
            inResolvent[static_cast<std::size_t>(p.index())] = 1;
            scratch.push_back(p);
          }
        }
        for (const Lit p : scratch) {
          inResolvent[static_cast<std::size_t>(p.index())] = 0;
        }
        if (taut) continue;
        resolvents.push_back(scratch);
        if (static_cast<int>(resolvents.size()) > allow) {
          tooMany = true;
          break;
        }
      }
      if (tooMany) break;
    }
    if (tooMany) continue;

    // Commit. Witness entries first (the clauses are about to go):
    // positive occurrences with witness v, then negative with ¬v. At
    // most one polarity's clauses can be unsatisfied by a model of the
    // resolvents, so the replay flips never conflict.
    for (const auto& cl : posCls) {
      witness_.pushClause(pv, cl, /*restorable=*/true);
    }
    for (const auto& cl : negCls) {
      witness_.pushClause(nvl, cl, /*restorable=*/true);
    }

    // Delete every long clause over v: originals (now witnessed) and
    // learnts (the reduced database need not imply them, and a stale
    // learnt could force-assign the eliminated variable).
    const auto dropLongs = [&](const std::vector<CRef>& refs) {
      for (const CRef ref : refs) {
        ClauseRefView c = arena_[ref];
        if (!c.deleted()) removeClause(ref);
      }
    };
    dropLongs(occ[static_cast<std::size_t>(pv.index())]);
    dropLongs(occ[static_cast<std::size_t>(nvl.index())]);
    dropLongs(occLearnt[static_cast<std::size_t>(pv.index())]);
    dropLongs(occLearnt[static_cast<std::size_t>(nvl.index())]);

    // Binaries (original and learnt): drop the mirror entry from the
    // partner's list, then clear v's own lists wholesale.
    const auto dropBinaries = [&](Lit l) {
      for (const BinWatch bw : watches_.binList(~l)) {
        const Lit q = bw.implied();
        const BinWatch mirror(l, bw.learnt());
        const std::span<BinWatch> ws = watches_.binList(~q);
        for (std::size_t i = 0; i < ws.size(); ++i) {
          if (ws[i] == mirror) {
            ws[i] = ws[ws.size() - 1];
            watches_.shrinkBin(~q, static_cast<std::uint32_t>(ws.size() - 1));
            break;
          }
        }
        if (bw.learnt()) {
          --num_bin_learnt_;
        } else {
          --num_bin_orig_;
        }
      }
      watches_.shrinkBin(~l, 0);
    };
    dropBinaries(pv);
    dropBinaries(nvl);
    // All clauses over v are gone: the long watch lists hold only
    // lazily detached watchers of deleted clauses.
    watches_.shrinkLong(pv, 0);
    watches_.shrinkLong(nvl, 0);

    eliminated_[v] = decision_[v] != 0 ? 1 : 2;
    decision_[v] = 0;  // out of pickBranchLit until restored
    has_removed_vars_ = true;
    banned[v] = 1;
    ++stats_.inproc_bve_eliminated;

    // Add the resolvents. Their variables are banned for the rest of
    // the pass: the occurrence lists were built before these clauses
    // existed, and resolving on an incomplete occurrence set would
    // drop constraints.
    for (auto& r : resolvents) {
      for (const Lit p : r) banned[p.var()] = 1;
      ++stats_.inproc_bve_resolvents;
      if (!addClauseInternal(std::move(r), kUndefVar)) return false;
    }
  }
  return ok_;
}

}  // namespace msu
