/// \file arena.h
/// \brief Clause storage for the CDCL engine: a contiguous arena of
///        32-bit words with relocation-based garbage collection, in the
///        MiniSat tradition. Clause references (CRef) are stable offsets
///        until a GC, at which point every holder relocates through
///        ClauseArena::reloc().
///
/// Clauses emitted inside an encoding scope (see Solver::newActivator /
/// Solver::retire) carry an *activator tag*: the variable of the guard
/// literal that owns them. The tag word is only materialised for tagged
/// clauses, so plain SAT workloads pay nothing; retire() uses it to find
/// a scope's original clauses and learnt descendants without scanning
/// their literals.

#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <span>
#include <vector>

#include "cnf/literal.h"

namespace msu {

/// Reference to a clause inside a ClauseArena (word offset).
using CRef = std::uint32_t;

/// Sentinel for "no clause".
inline constexpr CRef kCRefUndef = 0xFFFFFFFFu;

/// Mutable view over a clause stored in an arena.
///
/// Layout (32-bit words):
///   word 0: header — size<<4 | tagged<<3 | relocated<<2 | deleted<<1 | learnt
///   word 1: float activity       (learnt clauses only)
///   word 2: learnt metadata      (learnt clauses only):
///             bits  0..23  LBD / glue level (saturating)
///             bits 24..25  `used` aging counter for the tiered DB
///             bits 26..27  tier (0 = core, 1 = tier2, 2 = local)
///   then `size` literal words,
///   then the activator tag word  (tagged clauses only: guard variable).
///
/// The tag word trails the literals so that the literal base offset
/// depends on the learnt bit alone — the propagation loop's literal
/// accesses stay exactly as cheap as without tagging (moving the tag
/// into the leading header words costs ~15% pure-UP throughput).
class ClauseRefView {
 public:
  explicit ClauseRefView(std::uint32_t* base) : base_(base) {}

  [[nodiscard]] int size() const { return static_cast<int>(base_[0] >> 4); }
  [[nodiscard]] bool learnt() const { return (base_[0] & 1u) != 0; }
  [[nodiscard]] bool deleted() const { return (base_[0] & 2u) != 0; }
  [[nodiscard]] bool relocated() const { return (base_[0] & 4u) != 0; }
  [[nodiscard]] bool tagged() const { return (base_[0] & 8u) != 0; }

  void markDeleted() { base_[0] |= 2u; }

  /// Activator variable owning a tagged clause.
  [[nodiscard]] Var tag() const {
    assert(tagged());
    return static_cast<Var>(litBase()[size()]);
  }

  /// Activity of a learnt clause.
  [[nodiscard]] float activity() const {
    assert(learnt());
    return std::bit_cast<float>(base_[metaBase()]);
  }
  void setActivity(float a) {
    assert(learnt());
    base_[metaBase()] = std::bit_cast<std::uint32_t>(a);
  }

  /// Literal-block distance (number of distinct decision levels at
  /// learning time; Glucose's "glue").
  [[nodiscard]] std::uint32_t lbd() const {
    assert(learnt());
    return base_[metaBase() + 1] & kLbdMask;
  }
  void setLbd(std::uint32_t lbd) {
    assert(learnt());
    std::uint32_t& w = base_[metaBase() + 1];
    w = (w & ~kLbdMask) | (lbd < kLbdMask ? lbd : kLbdMask);
  }

  /// `used` aging counter (0..3) consumed by the tiered reduceDB.
  [[nodiscard]] std::uint32_t used() const {
    assert(learnt());
    return (base_[metaBase() + 1] >> 24) & 3u;
  }
  void setUsed(std::uint32_t used) {
    assert(learnt() && used <= 3u);
    std::uint32_t& w = base_[metaBase() + 1];
    w = (w & ~(3u << 24)) | (used << 24);
  }

  /// Learnt-DB tier (0 = core, 1 = tier2, 2 = local).
  [[nodiscard]] std::uint32_t tier() const {
    assert(learnt());
    return (base_[metaBase() + 1] >> 26) & 3u;
  }
  void setTier(std::uint32_t tier) {
    assert(learnt() && tier <= 3u);
    std::uint32_t& w = base_[metaBase() + 1];
    w = (w & ~(3u << 26)) | (tier << 26);
  }

  /// Raw learnt-metadata word (LBD + used + tier), for GC relocation.
  [[nodiscard]] std::uint32_t learntMeta() const {
    assert(learnt());
    return base_[metaBase() + 1];
  }
  void setLearntMeta(std::uint32_t meta) {
    assert(learnt());
    base_[metaBase() + 1] = meta;
  }

  [[nodiscard]] Lit& operator[](int i) {
    assert(i >= 0 && i < size());
    return *reinterpret_cast<Lit*>(&litBase()[i]);
  }
  [[nodiscard]] Lit operator[](int i) const {
    assert(i >= 0 && i < size());
    return Lit::fromIndex(static_cast<std::int32_t>(litBase()[i]));
  }

  /// Read-only span over the literals.
  [[nodiscard]] std::span<const Lit> lits() const {
    return {reinterpret_cast<const Lit*>(litBase()),
            static_cast<std::size_t>(size())};
  }

  /// Shrinks the clause to its first `newSize` literals. The trailing
  /// tag word (if any) moves to the new end; the abandoned words are
  /// reclaimed at the next GC like any other slack.
  void shrink(int newSize) {
    assert(newSize >= 0 && newSize <= size());
    if (tagged()) litBase()[newSize] = litBase()[size()];
    base_[0] = (static_cast<std::uint32_t>(newSize) << 4) | (base_[0] & 15u);
  }

  /// Removes the literal at index `i`, preserving the order of the rest
  /// (watch positions of the survivors keep their meaning) and the
  /// trailing activator tag. Used by inprocessing strengthening; the
  /// caller is responsible for the clause being detached.
  void removeLiteralAt(int i) {
    assert(i >= 0 && i < size());
    std::uint32_t* lits = litBase();
    for (int k = i; k + 1 < size(); ++k) lits[k] = lits[k + 1];
    shrink(size() - 1);
  }

  /// Forwarding pointer support for GC relocation.
  void setRelocated(CRef to) {
    base_[0] |= 4u;
    litBase()[0] = to;
  }
  [[nodiscard]] CRef relocation() const {
    assert(relocated());
    return litBase()[0];
  }

  /// Non-literal words of the stored clause (header + learnt words +
  /// trailing tag word).
  [[nodiscard]] int headerWords() const {
    return 1 + (learnt() ? 2 : 0) + (tagged() ? 1 : 0);
  }

 private:
  static constexpr std::uint32_t kLbdMask = 0x00FF'FFFFu;

  /// Word index of the learnt activity word.
  [[nodiscard]] std::uint32_t metaBase() const { return 1u; }

  /// Depends on the learnt bit only (the tag word trails the literals),
  /// keeping the propagation loop's literal accesses at seed cost.
  [[nodiscard]] std::uint32_t* litBase() const {
    return base_ + ((base_[0] & 1u) != 0 ? 3 : 1);
  }

  std::uint32_t* base_;
};

/// Arena allocator for clauses with copying garbage collection.
class ClauseArena {
 public:
  ClauseArena() { mem_.reserve(1u << 16); }

  /// True iff allocating a clause of `nLits` literals could push a CRef
  /// past the 31-bit ceiling that Reason's tag bit imposes (2^31 words
  /// = 8 GiB of clause storage). The solver's load path checks this and
  /// fails cooperatively (AbortReason::kMemory) instead of aborting;
  /// alloc() itself keeps the hard abort as the search-path backstop.
  [[nodiscard]] bool wouldOverflow(std::size_t nLits) const {
    return mem_.size() + nLits + 4 > (1u << 31);
  }

  /// Allocates a clause; returns its reference. `tagVar`, when defined,
  /// records the activator variable owning the clause (see retire()).
  [[nodiscard]] CRef alloc(std::span<const Lit> lits, bool learnt,
                           Var tagVar = kUndefVar) {
    // CRefs must stay below 2^31: the solver packs a tag bit beside
    // them (see Reason in watches.h). Fail loudly rather than hand out
    // references whose top bit would be misread as the binary tag.
    if (wouldOverflow(lits.size())) std::abort();
    const auto size = static_cast<std::uint32_t>(lits.size());
    const bool tagged = tagVar != kUndefVar;
    const CRef ref = static_cast<CRef>(mem_.size());
    mem_.push_back((size << 4) | (tagged ? 8u : 0u) | (learnt ? 1u : 0u));
    if (learnt) {
      mem_.push_back(std::bit_cast<std::uint32_t>(0.0f));
      mem_.push_back(0u);  // LBD, set by the solver after analysis
    }
    for (Lit p : lits) {
      mem_.push_back(static_cast<std::uint32_t>(p.index()));
    }
    if (tagged) mem_.push_back(static_cast<std::uint32_t>(tagVar));
    return ref;
  }

  /// View over the clause at `ref`.
  [[nodiscard]] ClauseRefView operator[](CRef ref) {
    assert(ref < mem_.size());
    return ClauseRefView(mem_.data() + ref);
  }
  [[nodiscard]] const ClauseRefView operator[](CRef ref) const {
    assert(ref < mem_.size());
    return ClauseRefView(const_cast<std::uint32_t*>(mem_.data()) + ref);
  }

  /// Records that a clause of the given stored size was logically freed.
  void markWasted(int clauseSize, bool learnt, bool tagged = false) {
    wasted_ += static_cast<std::uint32_t>(clauseSize) + 1u +
               (learnt ? 2u : 0u) + (tagged ? 1u : 0u);
  }

  /// Records words abandoned by an in-place clause shrink (inprocessing
  /// strengthening), so the slack still counts towards the GC trigger.
  void markWastedWords(int words) {
    wasted_ += static_cast<std::uint32_t>(words);
  }

  /// Words logically wasted by deleted clauses.
  [[nodiscard]] std::size_t wasted() const { return wasted_; }

  /// Total words in use.
  [[nodiscard]] std::size_t size() const { return mem_.size(); }

  /// Backing-store footprint in bytes (allocated capacity, not just the
  /// words in use) — the arena's contribution to the solver's
  /// cooperative memory accounting.
  [[nodiscard]] std::size_t bytes() const {
    return mem_.capacity() * sizeof(std::uint32_t);
  }

  /// Moves the clause at `ref` into `to`, leaving a forwarding pointer,
  /// and updates `ref` in place. Safe to call repeatedly for the same
  /// clause through different holders.
  void reloc(CRef& ref, ClauseArena& to) {
    ClauseRefView c = (*this)[ref];
    if (c.relocated()) {
      ref = c.relocation();
      return;
    }
    const CRef fresh =
        to.alloc(c.lits(), c.learnt(), c.tagged() ? c.tag() : kUndefVar);
    if (c.learnt()) {
      to[fresh].setActivity(c.activity());
      to[fresh].setLearntMeta(c.learntMeta());
    }
    if (c.deleted()) to[fresh].markDeleted();
    c.setRelocated(fresh);
    ref = fresh;
  }

  /// Steals the contents of `other` (used to finish a GC cycle).
  void adopt(ClauseArena&& other) {
    mem_ = std::move(other.mem_);
    wasted_ = 0;
  }

 private:
  std::vector<std::uint32_t> mem_;
  std::size_t wasted_ = 0;
};

}  // namespace msu
