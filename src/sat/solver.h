/// \file solver.h
/// \brief Incremental CDCL SAT solver with assumption-based unsatisfiable
///        core extraction — the substrate every MaxSAT engine in this
///        library is built on.
///
/// The skeleton follows MiniSat (Eén & Sörensson) — two-watched-literal
/// propagation, first-UIP conflict analysis with recursive clause
/// minimization, VSIDS with an indexed heap, phase saving, Luby
/// restarts, arena clause storage with copying GC — but the propagation
/// core is rebuilt around cache-conscious storage:
///
///  * **Flat watch lists.** All watchers live in contiguous pools
///    (WatchTable in watches.h) with ONE interleaved per-literal header
///    record carrying both the binary and the long head: one fewer
///    indirection per propagated literal, both propagation phases share
///    a header cache line, and GC relocation sweeps the pools linearly.
///    Segment growth relocates within the pool; the abandoned slack is
///    reclaimed by a compaction hooked into the arena-GC path.
///
///  * **Binary fast path.** Binary clauses never enter the clause
///    arena. A clause (a ∨ b) is two BinWatch entries storing the
///    implied literal inline (learnt flag packed into the spare low
///    bit), so binary propagation is a scan of a 4-byte-entry array
///    with zero clause dereferences. Reasons are a tagged 32-bit
///    `Reason` (arena CRef or inline "other literal"), and
///    `analyze`/`analyzeFinal`/`litRedundant` resolve binary reasons
///    without touching the arena.
///
///  * **Tiered learnt database.** With Options::lbd_reduce, learnt
///    clauses are partitioned Glucose/CaDiCaL-style by LBD into core
///    (LBD <= 2, kept forever), tier2 (LBD <= tier2_lbd, aged by a
///    `used` counter and demoted when cold) and local (aggressively
///    halved each reduceDB). Clauses touched during conflict analysis
///    refresh `used`, recompute their LBD and get promoted when it
///    improves. Without lbd_reduce, the classic MiniSat
///    activity-sorted deletion is used. Deletion detaches lazily:
///    watchers of deleted clauses are dropped as propagation or GC
///    encounters them.
///
/// ## Encoding lifecycle (oracle sessions)
///
/// Incremental MaxSAT engines repeatedly emit cardinality structures
/// and later discard them. The solver supports this as a first-class
/// *scope* mechanism instead of the classic unit-asserted activator
/// hack:
///
///  * `newActivator()` hands out a guard literal `act` (recycling the
///    variable of a previously retired scope when possible).
///  * While a scope is open (`openScope`/`closeScope`), every clause
///    added is tagged with the activator in its arena header and every
///    variable created is owned by the scope. Callers (see
///    ClauseSink in encodings/sink.h) also append `~act` to each
///    emitted clause, so the constraint is enforced exactly when `act`
///    holds and every learnt descendant inherits `~act`.
///  * Every solve automatically assumes each live activator — `act`
///    when the scope is enforced, `~act` when disabled (call
///    `setScopeEnforced`). An explicit user assumption over the
///    activator variable overrides the automatic one. This invariant
///    is what makes physical deletion sound: scope clauses can never
///    leak consequences that outlive them, because their guard literal
///    is always decided before search starts.
///  * `retire(act)` physically deletes every clause guarded by the
///    activator — originals via the arena tag, learnt descendants via
///    the tag plus a literal scan, binaries via the activator's watch
///    lists — and returns the scope's auxiliary variables (and the
///    activator itself) to a free list for recycling by newVar(). The
///    arena space is reclaimed at the next GC; SolverStats records
///    retired clauses, reclaimed bytes and recycled variables.
///
/// Core extraction: solving under assumptions `a1..ak` that turn out to
/// be inconsistent yields, via final-conflict analysis, a subset of the
/// assumptions whose conjunction with the clause database is
/// unsatisfiable (`core()`). MaxSAT engines attach one selector literal
/// per tracked soft clause and read cores off that set, which is the
/// modern equivalent of the MiniSat 1.14 resolution-based core extractor
/// used in the paper. Cores may name auto-assumed activators; engines
/// map cores through selector tables and ignore the rest.
///
/// ## Clause sharing (parallel portfolio)
///
/// With Options::share attached, the solver exports learnt clauses that
/// are short, low-LBD and lie entirely below the shareable variable
/// prefix `share_num_vars` (which excludes every selector, activator
/// and encoding auxiliary — in particular no clause touching an
/// activator-tagged scope variable is ever exported), and imports
/// foreign clauses as learnt clauses at restart boundaries. See
/// sat/share.h for the soundness contract.
///
/// ## Scope-aware inprocessing
///
/// With Options::inprocess, the solver periodically simplifies its own
/// live clause database between oracle calls (the MaxSAT engines issue
/// thousands of incremental solves against one solver, so satisfied,
/// subsumed and over-long clauses otherwise accumulate and tax every
/// later propagation): top-level-satisfied clause removal and false-
/// literal stripping, SatELite-style backward subsumption and self-
/// subsuming strengthening over occurrence lists, and learnt-clause
/// vivification, all budgeted by propagations since the last pass.
/// Every step is scope-aware — activator literals are never removed or
/// probed, strengthened clauses keep their activator tag, a tagged
/// clause is never strengthened against a strictly younger scope's
/// clauses, and frozen variables (soft-clause selectors, assumption
/// handles; see setFrozen) keep their literals — so physical retirement
/// and the portfolio's export filter stay sound. See inprocess.cpp for
/// the pass structure and the soundness argument.
///
/// Round two adds three variable-removing passes (elimination.cpp,
/// scc.cpp, probing.cpp): bounded variable elimination with
/// occurrence/resolvent limits, SCC-based equivalent-literal
/// substitution over the binary implication graph, and failed-literal
/// probing with hyper-binary resolution. The first two remove
/// variables from the search, which forces a *model-reconstruction
/// stack* (sat/reconstruct.h).
///
/// ## Reconstruction contract
///
/// Eliminating or substituting a variable pushes witness entries onto
/// an internal stack; solve() replays the stack over every satisfying
/// assignment before publishing it, so `model()` is always total and
/// correct over all variables the caller ever created — callers never
/// see elimination happen. The rules that keep this sound across the
/// incremental API:
///
///  * **Who may be removed.** Only plain auxiliary variables: never
///    frozen variables, scope activators, scope-owned variables,
///    variables currently assumed, variables below the sharing prefix
///    (BVE), or variables occurring in any scope-tagged clause. A BVE
///    witness clause therefore never references a scope or activator
///    variable, so `retire()`/`retireAll()` NEVER invalidate the
///    stack — retirement and reconstruction commute, and
///    `OracleSession::retire()` needs no special handling.
///  * **What restores a variable.** Naming an eliminated variable in
///    `addClause()` or in a solve() assumption transparently restores
///    it: its witness clauses re-enter the database and the stack
///    entries are consumed. Substituted variables are never restored —
///    their literals are rewritten to the representative instead, both
///    in added clauses and in assumptions; `core()` is mapped back so
///    callers still see the assumptions they passed.
///  * **What invalidates nothing.** `retire()`/`retireAll()`,
///    `openScope`/`closeScope`, warm-started solves and GC all
///    preserve the stack (asserted in debug builds at retirement).
///  * **What disables removal.** An attached ProofTracer gates BVE and
///    substitution off entirely (clause restoration and post-hoc
///    rewriting are not expressible in the incremental RUP trace);
///    probing stays on — failed-literal units and hyper-binary
///    resolvents are ordinary RUP lemmas. Sharing solvers restrict
///    removal to variables outside the export prefix, so exported
///    clauses keep their meaning across workers.
///
/// ## Warm-started oracle calls (assumption-prefix trail reuse)
///
/// The MaxSAT engines drive one solver through thousands of solve calls
/// whose assumption sequences overlap almost entirely call-to-call
/// (soft-clause selectors in canonical variable order, scope
/// activators, bound literals). With Options::reuse_trail, solve() no
/// longer rewinds to decision level 0 between calls: the trail is kept
/// across the solve boundary, and the next call backtracks only to the
/// first position where its assumption sequence diverges from the
/// previous one — the shared prefix of assumption decisions and all
/// their propagations is reused verbatim (counted in
/// SolverStats::reused_trail_lits). Soundness rests on three rules:
///
///  * Levels 1..k are kept only when they correspond 1:1 to the first k
///    assumptions of *both* calls (search creates exactly one level per
///    assumption, in order, before any free decision), so core
///    extraction over kept levels still names assumptions only.
///  * addClause() accepts clauses over a non-empty trail: the clause is
///    simplified against the *root* (level-0) assignment only, and if
///    fewer than two of its literals are non-false under the current
///    assignment, the solver first backtracks to the deepest level at
///    which two are — restoring the two-watched-literal invariant that
///    no clause is unit or falsified without being processed. Unit
///    clauses always re-enter at level 0.
///  * Retirement (retire/retireAll) and inprocessing passes rewrite the
///    clause database wholesale; both invalidate the saved prefix
///    explicitly by cancelling to level 0 first.
///
/// With reuse_trail off, solve() ends with cancelUntil(0) and the
/// solver is bit-for-bit the non-reusing engine.
///
/// ## Adaptive restarts (EMA trajectory retune)
///
/// With Options::ema_restarts, restart pacing switches from the fixed
/// Luby/geometric schedule to a glucose-style adaptive trigger: fast
/// and slow exponential moving averages of learnt-clause LBD (see
/// RestartEma) fire a restart when the recent average exceeds
/// ema_margin times the long-run average, and a trail-size EMA blocks
/// restarts while the assignment is unusually deep (the solver looks
/// close to a model). On top, the solver alternates CaDiCaL-style
/// between a *focused* mode (EMA restarts) and a *stable* mode
/// (Luby-paced long restarts) on a doubling conflict interval, and
/// entering stable mode rephases saved polarities to the best (deepest)
/// trail seen since the last focused phase. Off by default; the
/// restart_mode/restarts_blocked/mode_switches counters expose the
/// trajectory.

#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "cnf/literal.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sat/arena.h"
#include "sat/budget.h"
#include "sat/fault.h"
#include "sat/heap.h"
#include "sat/proof_tracer.h"
#include "sat/reconstruct.h"
#include "sat/stats.h"
#include "sat/watches.h"

namespace msu {

class ClauseShare;

/// Exponential moving average seeded by its first sample (no bias
/// correction needed: the first update assigns, later ones blend).
struct Ema {
  double value = 0.0;
  std::int64_t samples = 0;

  void update(double x, double alpha) {
    ++samples;
    if (samples == 1) {
      value = x;
    } else {
      value += alpha * (x - value);
    }
  }
};

/// Glucose-style adaptive-restart trigger: a fast and a slow EMA of the
/// learnt-clause LBD stream. The fast average tracks the current burst,
/// the slow one the long-run trajectory; when the burst is `margin`
/// times worse than the trajectory, the search has wandered into a bad
/// region and a restart is due. block() caps the fast average back to
/// the slow one — the trail-size heuristic calls it when the assignment
/// is unusually deep (the solver looks close to a model), postponing
/// restarts until the fast average climbs anew.
struct RestartEma {
  double fast_alpha = 1.0 / 32.0;
  double slow_alpha = 1.0 / 8192.0;
  Ema fast;
  Ema slow;

  void update(double lbd) {
    fast.update(lbd, fast_alpha);
    slow.update(lbd, slow_alpha);
  }

  [[nodiscard]] bool shouldRestart(double margin) const {
    return slow.samples > 0 && fast.value > margin * slow.value;
  }

  void block() {
    if (fast.value > slow.value) fast.value = slow.value;
  }
};

/// Incremental CDCL solver.
class Solver {
 public:
  /// Tunable parameters; defaults match MiniSat's.
  struct Options {
    double var_decay = 0.95;       ///< VSIDS activity decay
    double clause_decay = 0.999;   ///< learnt clause activity decay
    int restart_base = 100;        ///< conflicts per Luby unit
    bool luby_restarts = true;     ///< Luby vs. geometric restarts
    double restart_inc = 2.0;      ///< geometric restart factor
    bool phase_saving = true;      ///< reuse last assigned polarity
    int ccmin_mode = 2;            ///< 0=off, 1=basic, 2=recursive
    double learntsize_factor = 1.0 / 3.0;  ///< initial learnt DB size
    double learntsize_inc = 1.1;   ///< learnt DB growth per restart
    double garbage_frac = 0.20;    ///< GC when wasted/size exceeds this
    bool lbd_reduce = false;       ///< tiered (core/tier2/local) reduceDB
    int tier2_lbd = 6;             ///< max LBD admitted into tier2

    /// Warm-started oracle calls: keep the trail across solve()
    /// boundaries and backtrack only to the first divergence between
    /// the previous and the next assumption sequence (see the file
    /// comment). On by default — the incremental MaxSAT engines are the
    /// library's workload and the reused prefix is pure savings there;
    /// off restores the cancelUntil(0)-per-solve engine bit-for-bit.
    bool reuse_trail = true;

    /// Adaptive EMA restarts + stable/focused mode switching + best-
    /// phase rephasing instead of the fixed Luby/geometric schedule
    /// (see the file comment). Off by default: on the recorded engine
    /// suite the adaptive trajectory is a sidegrade (decision record in
    /// bench/README.md); the portfolio diversifies workers across both
    /// modes.
    bool ema_restarts = false;
    double ema_fast_alpha = 1.0 / 32.0;    ///< fast LBD EMA smoothing
    double ema_slow_alpha = 1.0 / 8192.0;  ///< slow LBD EMA smoothing
    double ema_margin = 1.25;    ///< restart when fast > margin * slow
    int ema_min_conflicts = 50;  ///< conflicts per segment before firing
    double ema_block_margin = 1.4;  ///< block when trail > margin * avg
    double ema_trail_alpha = 1.0 / 4096.0;  ///< trail-size EMA smoothing
    /// Conflicts until the first stable/focused mode switch; the
    /// interval doubles at every switch, so late phases are long.
    std::int64_t mode_switch_conflicts = 1000;
    /// Luby scale of stable-mode restarts, in multiples of
    /// restart_base (stable phases restart rarely by design).
    int stable_restart_mult = 8;

    /// Optional proof receiver (non-owning; must outlive the solver).
    /// Attach before adding clauses so the axiom trace is complete.
    ProofTracer* tracer = nullptr;

    /// Optional fault injector (non-owning; must outlive the solver).
    /// Off (nullptr) by default — the hooks then cost a pointer test.
    /// When attached, the injector can force budget expiry at the Nth
    /// poll, simulate arena allocation failure (the solver aborts the
    /// solve with AbortReason::kMemory exactly as if its cooperative
    /// memory cap tripped) and make the Nth solve() return Undef.
    /// See sat/fault.h; used by the SolveService stress suite.
    FaultInjector* fault = nullptr;

    /// Optional learnt-clause exchange (non-owning; must outlive the
    /// solver). Sharing is active only when this is set AND
    /// share_num_vars > 0. Refutation proofs and sharing are mutually
    /// exclusive: imported clauses enter the trace as axioms.
    ClauseShare* share = nullptr;
    int share_max_size = 8;  ///< export ceiling on clause length
    int share_max_lbd = 4;   ///< export ceiling on LBD (clauses > 2 lits)
    Var share_num_vars = 0;  ///< only clauses over vars < this qualify
    /// Conflict cadence of in-search import drains: every this many
    /// conflicts, a sharing solver at a no-conflict point backtracks to
    /// level 0 (a forced mini-restart) and runs one budgeted drain —
    /// instead of waiting for a natural restart, which on long stable
    /// plateaus can starve the exchange. 0 disables the cadence
    /// (imports then happen only at solve entry and restart
    /// boundaries, the pre-PR-7 behaviour).
    std::int64_t share_import_interval = 256;
    /// Max foreign clauses attached per drain; <0 = unbounded. Bounds
    /// the level-0 work a drain injects so import cost stays amortized
    /// against the conflict cadence.
    int share_import_budget = 128;
    /// Adapt the export ceilings to the measured usefulness of the
    /// traffic: per adaptation window (see kShareWindow), if most
    /// imported clauses were dropped as satisfied/void the ceilings
    /// tighten toward (share_dyn_min_size, share_dyn_min_lbd); if most
    /// attached, they relax back toward the configured maxima. Off =
    /// fixed ceilings (bit-for-bit the static filter).
    bool share_dynamic = true;
    int share_dyn_min_size = 3;  ///< floor of the dynamic size ceiling
    int share_dyn_min_lbd = 2;   ///< floor of the dynamic LBD ceiling

    /// Optional execution tracer (non-owning; must outlive the solver).
    /// When set and enabled, the solver emits spans for solve() calls,
    /// restart segments, inprocess passes and shared-clause import
    /// drains into the per-thread rings (obs/trace.h). Off (nullptr)
    /// by default — every instrumented seam then costs one pointer
    /// test and search behaviour is bit-for-bit identical (tracing is
    /// purely observational; see tests/obs_test.cpp gating test).
    obs::Tracer* trace = nullptr;

    /// Optional histogram receiving the size (clauses scanned) of each
    /// shared-clause import drain (non-owning; must outlive the
    /// solver). Wired by the SolveService from its metrics registry;
    /// null = no observation. Drains run at restart boundaries or the
    /// conflict cadence, so one relaxed-atomic observe per drain is
    /// noise.
    obs::Histogram* drain_size_hist = nullptr;

    /// Scope-aware inprocessing: at solve/restart boundaries (budgeted
    /// by propagations since the last pass), remove top-level-satisfied
    /// clauses, strip level-0-false literals, run backward subsumption
    /// and self-subsuming strengthening over the arena via occurrence
    /// lists, and vivify learnt clauses. All steps respect encoding
    /// scopes (activator literals are never removed, strengthened
    /// clauses keep their tag, a tagged clause is never resolved against
    /// a younger scope's clauses) and frozen variables (see setFrozen).
    /// Off = bit-for-bit the non-inprocessing solver. Off by default:
    /// on the recorded suites the database reduction has not yet bought
    /// back its pass cost (decision record in bench/README.md, numbers
    /// in bench/ablation_inprocess.cpp).
    bool inprocess = false;
    /// Propagations between two inprocessing passes. A retirement
    /// notification (requestInprocess) forces a pass at the next
    /// boundary regardless of this budget.
    std::int64_t inprocess_interval = 400'000;
    /// Skip a clause's subsumption attempt when the occurrence list it
    /// would scan exceeds this many candidates (cost ceiling per
    /// clause); <= 0 disables the subsumption stage entirely.
    int inprocess_occ_limit = 128;
    /// Propagation budget of one vivification sweep; probes stop (and
    /// resume round-robin next pass) once it is spent. <= 0 disables
    /// the vivification stage.
    std::int64_t inprocess_viv_props = 10'000;

    // Round-two inprocessing: bounded variable elimination, SCC
    // equivalent-literal substitution and failed-literal probing (see
    // elimination.cpp / scc.cpp / probing.cpp and the reconstruction
    // contract in the file comment). All three run under the same
    // inprocess / inprocess_interval machinery as the passes above.
    /// Max occurrences per polarity for a BVE candidate: a variable is
    /// only considered when both its positive and negative occurrence
    /// lists (long + binary) are at most this long. <= 0 disables the
    /// elimination stage.
    int inprocess_bve_occ_limit = 16;
    /// Resolvent-count slack of one elimination: a variable is
    /// eliminated only when the number of non-tautological resolvents
    /// is at most (occurrences removed) + this growth allowance.
    int inprocess_bve_growth = 0;
    /// Skip elimination of a variable occurring in any clause longer
    /// than this (resolvents of long clauses are long; keeps BVE to
    /// the cheap, local eliminations).
    int inprocess_bve_clause_limit = 24;
    /// Enable SCC-based equivalent-literal detection + substitution
    /// over the binary implication graph.
    bool inprocess_scc = true;
    /// Propagation budget of one failed-literal probing sweep (probes
    /// resume round-robin next pass, like vivification). <= 0 disables
    /// the probing stage.
    std::int64_t inprocess_probe_props = 20'000;

    /// Bytes of caller-owned storage charged to this solver's memory
    /// footprint (the parsed formula, parse buffers): counted into
    /// memBytesEstimate() so Budget::setMaxMemory caps the *end-to-end*
    /// ingest-to-solve footprint, not just the clause database. The
    /// job layer sets it from WcnfFormula::memBytesEstimate(); engines
    /// that fan one formula out to several solvers (portfolio, cubes)
    /// charge it to each worker — deliberately conservative.
    std::int64_t external_mem_bytes = 0;

    /// Load hard/soft clauses through the bulk path (beginBulkLoad/
    /// endBulkLoad) in OracleSession::addHards()/trackSofts(). On by
    /// default; off restores per-clause attachment (the A/B baseline
    /// for bench_parse's pipeline cases and the bit-for-bit gate in
    /// tests/bulkload_test.cpp).
    bool bulk_load = true;

    /// Abort with the offending scope id when a clause references a
    /// variable of a live scope that is neither open for emission nor
    /// older than the emitting scope (the misuse retire()'s literal
    /// scan would otherwise mask as a silent deletion). References to
    /// *older* scopes are legitimate layering — OLL counts the outputs
    /// of earlier totalizers — provided the older scope outlives the
    /// referencing one. Off by default in release builds; tests enable
    /// it explicitly.
#ifdef NDEBUG
    bool check_cross_scope = false;
#else
    bool check_cross_scope = true;
#endif
  };

  Solver() : Solver(Options{}) {}
  explicit Solver(const Options& opts);

  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  // ---- Problem construction -------------------------------------------

  /// Creates a variable and returns it, recycling one retired with a
  /// scope when available. While a scope is open the variable is owned
  /// by it (recycled at retire) unless `scoped` is false.
  Var newVar(bool decisionVar = true, bool scoped = true);

  /// Number of variable slots created (recycled or not).
  [[nodiscard]] int numVars() const {
    return static_cast<int>(assigns_.size());
  }

  /// Number of original (problem) clauses currently attached, binary
  /// clauses included.
  [[nodiscard]] int numClauses() const {
    return static_cast<int>(clauses_.size()) + num_bin_orig_;
  }

  /// Number of learnt clauses currently attached, binary ones included.
  [[nodiscard]] int numLearnts() const {
    return static_cast<int>(learnts_.size()) + num_bin_learnt_;
  }

  /// Adds a clause. Returns false iff the clause database is now known
  /// unsatisfiable at level 0 (the solver becomes permanently "not okay").
  /// All referenced variables must have been created with newVar().
  /// While a scope is open the clause is tagged with its activator
  /// (callers append the guard literal; see ClauseSink).
  ///
  /// With Options::reuse_trail the call is legal over a warm (non-root)
  /// trail: the clause is simplified against the level-0 assignment
  /// only and, when necessary, the solver backtracks just far enough
  /// that two of its literals are non-false before attaching (see the
  /// file comment); unit clauses re-enter at level 0. Without
  /// reuse_trail the historical contract holds: decision level 0 only.
  bool addClause(std::span<const Lit> lits);
  bool addClause(std::initializer_list<Lit> lits) {
    return addClause(std::span<const Lit>(lits.begin(), lits.size()));
  }

  /// False iff unsatisfiability was already established at level 0.
  [[nodiscard]] bool okay() const { return ok_; }

  /// The options this solver was constructed with (read-only).
  [[nodiscard]] const Options& options() const { return opts_; }

  // ---- Bulk clause loading (huge-instance ingest) ----------------------
  //
  // Contract: between beginBulkLoad() and endBulkLoad(), addClause()
  // keeps its root-level simplification semantics exactly (tautology
  // and satisfied-clause dropping, false-literal stripping, duplicate
  // collapse, unit enqueue, empty clause => not okay) but defers all
  // watcher construction: binaries and long clauses are parked, and
  // unit propagation does not run after each unit. endBulkLoad() then
  // sizes every watch list in one counting pass (no segment ever
  // relocates), attaches the parked clauses in insertion order — so
  // per-literal watcher order is identical to per-clause loading — and
  // runs a single propagate() over everything the load enqueued.
  //
  // Equivalence: when the loaded clauses imply no root units, the
  // resulting solver is bit-for-bit identical to per-clause loading
  // (same watcher order, same stats); with units, the clause database
  // may differ textually (per-clause loading simplifies later clauses
  // against units derived from earlier ones; bulk loading sees those
  // only at endBulkLoad) but is logically equivalent — solve results
  // match (gated by tests/bulkload_test.cpp).
  //
  // Calls nest (depth-counted); only the outermost pair does work.
  // Entering bulk mode cancels a warm trail to level 0; solve() and
  // retirement must not run while a bulk load is open (asserted).
  //
  // 32-bit arena-ref cap: clause storage lives in one flat arena
  // addressed by 31-bit word offsets (Reason packs a tag bit), so the
  // total clause database is capped at 2^31 words = 8 GiB. The load
  // path checks the cap per clause and fails *cooperatively*: the
  // solver stops storing clauses, prints one clear diagnostic, and the
  // next budget poll (or solve() entry) aborts with
  // AbortReason::kMemory — the structured out-of-memory path, not a
  // crash. Search-time allocations keep the arena's hard abort as a
  // backstop.

  /// Enters bulk-load mode (see the contract above).
  void beginBulkLoad();

  /// Leaves bulk-load mode; at the outermost level builds the watch
  /// lists and propagates the loaded units. Returns okay().
  bool endBulkLoad();

  /// RAII wrapper: begin on construction, end on destruction. The
  /// `enable` flag makes call sites branch-free A/B switches.
  class BulkLoadGuard {
   public:
    explicit BulkLoadGuard(Solver& solver, bool enable = true)
        : solver_(enable ? &solver : nullptr) {
      if (solver_ != nullptr) solver_->beginBulkLoad();
    }
    ~BulkLoadGuard() {
      if (solver_ != nullptr) static_cast<void>(solver_->endBulkLoad());
    }
    BulkLoadGuard(const BulkLoadGuard&) = delete;
    BulkLoadGuard& operator=(const BulkLoadGuard&) = delete;

   private:
    Solver* solver_;
  };

  // ---- Encoding lifecycle (see the file comment) -----------------------

  /// Creates a fresh activator literal for a new encoding scope. The
  /// variable is non-decision and starts enforced (auto-assumed true).
  [[nodiscard]] Lit newActivator();

  /// Directs subsequent newVar()/addClause() ownership to `activator`'s
  /// scope. Scopes nest; close in LIFO order.
  void openScope(Lit activator);
  void closeScope(Lit activator);

  /// Chooses the automatic assumption polarity of a live scope:
  /// enforced scopes assume the activator (constraint active), disabled
  /// scopes assume its negation (constraint inert, clauses satisfied).
  void setScopeEnforced(Lit activator, bool enforced);

  /// True iff `activator` names a scope that has not been retired.
  [[nodiscard]] bool isLiveScope(Lit activator) const;

  /// Number of live (unretired) scopes.
  [[nodiscard]] int numLiveScopes() const {
    return static_cast<int>(scopes_.size());
  }

  /// Physically deletes every clause of the scope (originals, learnt
  /// descendants and binaries) and recycles its variables. Must be
  /// called outside search with the scope closed; a warm reused trail
  /// (Options::reuse_trail) is explicitly invalidated — retirement
  /// cancels to level 0 before sweeping. The freed arena words are
  /// reclaimed at the next GC.
  void retire(Lit activator) { retireAll({&activator, 1}); }

  /// Batch retirement: one database sweep for many scopes.
  void retireAll(std::span<const Lit> activators);

  // ---- Inprocessing (see inprocess.cpp) --------------------------------

  /// Marks a variable frozen: inprocessing never removes its literals
  /// from any clause. Callers whose protocol depends on a literal's
  /// textual presence (soft-clause selectors, assumption handles) freeze
  /// it; scope activators are implicitly frozen.
  void setFrozen(Var v, bool frozen) {
    frozen_[v] = frozen ? 1 : 0;
  }

  /// True iff `v` is currently frozen for inprocessing.
  [[nodiscard]] bool isFrozen(Var v) const { return frozen_[v] != 0; }

  /// Asks for an inprocessing pass at the next solve/restart boundary,
  /// regardless of the propagation budget (the oracle-session layer
  /// calls this after scope retirement, when the database just shed a
  /// structure and redundancy is likely). No-op unless
  /// Options::inprocess is set.
  void requestInprocess() { inproc_pending_ = true; }

  /// Runs one inprocessing pass immediately. Must be called outside
  /// search (decision level 0). Returns okay(); ignores the interval
  /// budget but still honours Options::inprocess == false. Exposed for
  /// tests and maintenance tooling; solve() triggers passes itself.
  bool inprocessNow();

  // ---- Solving ---------------------------------------------------------

  /// Solves without assumptions. True/False for SAT/UNSAT; Undef when the
  /// budget was exhausted.
  [[nodiscard]] lbool solve() { return solve({}); }

  /// Solves under assumptions.
  ///  * True: `model()` holds a complete satisfying assignment.
  ///  * False: if caused by the assumptions, `core()` holds a subset of
  ///    them that is jointly inconsistent with the clause database
  ///    (possibly empty when the database itself is unsatisfiable).
  ///  * Undef: budget exhausted.
  /// Live scope activators are assumed automatically unless the caller
  /// assumes their variable explicitly.
  [[nodiscard]] lbool solve(std::span<const Lit> assumptions);

  /// Model from the last satisfiable solve (indexed by variable).
  [[nodiscard]] const std::vector<lbool>& model() const { return model_; }

  /// Value of `p` in the stored model.
  [[nodiscard]] lbool modelValue(Lit p) const {
    return applySign(model_[p.var()], p);
  }

  /// Failing assumption subset from the last unsatisfiable solve-under-
  /// assumptions (in the polarity the caller passed them). May include
  /// auto-assumed scope activators.
  [[nodiscard]] const std::vector<Lit>& core() const { return core_; }

  // ---- Budgets & statistics ---------------------------------------------

  /// Installs a cooperative budget (shared across subsequent solves).
  void setBudget(const Budget& b) { budget_ = b; }

  /// The currently installed budget.
  [[nodiscard]] const Budget& budget() const { return budget_; }

  [[nodiscard]] const SolverStats& stats() const { return stats_; }

  /// Cooperative memory accounting: the solver's current clause-storage
  /// footprint in bytes — arena capacity, watch-table pools, per-
  /// variable state and the trail/clause-list bookkeeping. This is the
  /// quantity compared against Budget::setMaxMemory at the budget poll
  /// sites and surfaced as the SolverStats::mem_bytes gauge. It tracks
  /// the structures that actually grow with the clause database; small
  /// fixed-size scratch is deliberately ignored.
  [[nodiscard]] std::int64_t memBytesEstimate() const;

  /// Installs (or clears, with nullptr) the proof tracer. Attach before
  /// the first addClause so the proof's axiom record is complete.
  void setProofTracer(ProofTracer* tracer) { opts_.tracer = tracer; }

  /// The installed proof tracer, if any.
  [[nodiscard]] ProofTracer* proofTracer() const { return opts_.tracer; }

  // ---- Introspection (used by tests) ------------------------------------

  /// Current value of a variable at the solver's present state.
  [[nodiscard]] lbool value(Var v) const { return assigns_[v]; }

  /// Current value of a literal.
  [[nodiscard]] lbool value(Lit p) const {
    return applySign(assigns_[p.var()], p);
  }

  /// Number of level-0 assigned literals (after simplification).
  [[nodiscard]] int numFixedVars() const;

  /// Variables currently available for recycling.
  [[nodiscard]] int numFreeVars() const {
    return static_cast<int>(free_vars_.size());
  }

 private:
  struct VarData {
    Reason reason = Reason::none();
    int level = 0;
  };

  /// Bookkeeping of one live encoding scope.
  struct ScopeRec {
    std::vector<Var> vars;    ///< auxiliary variables owned by the scope
    std::uint64_t birth = 0;  ///< creation order (cross-scope checker)
    bool enforced = true;     ///< auto-assume activator vs. its negation
  };

  // Learnt-DB tiers (stored in the clause header's tier bits).
  static constexpr std::uint32_t kTierCore = 0;
  static constexpr std::uint32_t kTier2 = 1;
  static constexpr std::uint32_t kTierLocal = 2;

  // Construction helpers. There is no eager detach: removeClause()
  // marks the clause deleted and its watchers are dropped lazily by
  // propagate() and the GC sweep.
  void attachClause(CRef ref);
  void attachBinary(Lit a, Lit b, bool learnt);
  void removeClause(CRef ref);

  // Search machinery.
  [[nodiscard]] int decisionLevel() const {
    return static_cast<int>(trail_lim_.size());
  }
  void newDecisionLevel() { trail_lim_.push_back(trailSize()); }
  [[nodiscard]] int trailSize() const {
    return static_cast<int>(trail_.size());
  }
  void uncheckedEnqueue(Lit p, Reason from = Reason::none());
  [[nodiscard]] Reason propagate();
  void cancelUntil(int level);
  [[nodiscard]] Lit pickBranchLit();
  void analyze(Reason confl, std::vector<Lit>& outLearnt, int& outBtLevel);
  [[nodiscard]] bool litRedundant(Lit p, std::uint32_t abstractLevels);
  void analyzeFinal(Lit p, std::vector<Lit>& outConflict);
  [[nodiscard]] lbool search(std::int64_t conflictsBeforeRestart);
  void recordLearnt(std::span<const Lit> learntClause);
  void reduceDB();
  [[nodiscard]] std::uint32_t computeLbd(std::span<const Lit> lits);
  void removeSatisfied(std::vector<CRef>& refs);
  void removeSatisfiedBinaries();
  bool simplify();
  void rebuildOrderHeap();
  void garbageCollectIfNeeded();
  void relocAll(ClauseArena& to);

  // Warm-start / adaptive-restart helpers.
  /// Root-level value of `p`: its assignment when fixed at level 0,
  /// Undef otherwise. Equal to value(p) whenever the trail is at level
  /// 0, which keeps the cold addClause path byte-identical.
  [[nodiscard]] lbool rootValue(Lit p) const {
    return (assigns_[p.var()] != lbool::Undef && level(p.var()) == 0)
               ? value(p)
               : lbool::Undef;
  }
  void prepareWarmAttach(std::vector<Lit>& ps);
  void maybeSwitchMode();
  void captureBestPhase();
  [[nodiscard]] std::int64_t restartModeGauge() const {
    if (!opts_.ema_restarts) return opts_.luby_restarts ? 0 : 1;
    return stable_mode_ ? 3 : 2;
  }

  // Lifecycle helpers.
  [[nodiscard]] Var currentScopeTag() const {
    return scope_stack_.empty() ? kUndefVar : scope_stack_.back();
  }
  [[nodiscard]] Var learntTagFor(std::span<const Lit> lits) const;
  void appendScopeAssumptions(std::span<const Lit> userAssumptions);
  void recycleVar(Var v);
  void checkCrossScopeRefs(std::span<const Lit> lits) const;

  // Inprocessing internals (inprocess.cpp). All run at decision level 0.
  /// True iff the next solve/restart boundary should run a pass: the
  /// one trigger condition shared by maybeInprocess() and solve()'s
  /// warm-start path (which must invalidate the reusable prefix before
  /// a pass can run).
  [[nodiscard]] bool inprocessDue() const {
    return opts_.inprocess && ok_ &&
           (inproc_pending_ || stats_.propagations - inproc_last_props_ >=
                                   opts_.inprocess_interval);
  }
  [[nodiscard]] bool maybeInprocess();
  [[nodiscard]] bool inprocessPass();
  [[nodiscard]] bool inprocPropagateAndStrip();
  void inprocStripList(std::vector<CRef>& refs);
  [[nodiscard]] bool inprocSubsume();
  [[nodiscard]] bool inprocVivify();
  // Round-two passes (elimination.cpp / scc.cpp / probing.cpp).
  [[nodiscard]] bool inprocEliminate();
  [[nodiscard]] bool inprocSubstitute();
  [[nodiscard]] bool inprocProbe();
  void detachLong(CRef ref);
  [[nodiscard]] bool applyStrengthened(CRef ref, std::span<const Lit> newLits,
                                       std::int64_t& shortenedCounter);
  [[nodiscard]] std::uint64_t scopeBirthOf(Var tag) const;

  // Removed-variable machinery (elimination.cpp): literal
  // representatives, witness restoration, model reconstruction and
  // core back-mapping. See the reconstruction contract above.
  /// Representative literal of `p` under the equivalence map (chases
  /// repr_ chains; identity for unsubstituted variables).
  [[nodiscard]] Lit reprLit(Lit p) const;
  /// True iff `v` was eliminated by BVE or substituted by SCC.
  [[nodiscard]] bool varRemoved(Var v) const {
    return eliminated_[v] != 0 || repr_[v] != posLit(v);
  }
  /// Rewrites `ps` through reprLit and restores every eliminated
  /// variable it references. Returns okay().
  bool mapAndRestore(std::vector<Lit>& ps);
  /// Un-eliminates `v`: re-adds its witness clauses to the database
  /// and makes it assignable again. Returns okay().
  bool restoreVar(Var v);
  /// addClause body shared with restoration and BVE resolvents: no
  /// cross-scope check, no axiom trace, explicit scope tag.
  bool addClauseInternal(std::vector<Lit> ps, Var tag);
  /// Extends model_ over removed variables by witness-stack replay.
  void reconstructModel();
  /// Replaces substituted literals in core_ by the original user
  /// assumptions they stand for.
  void remapCore();

  // Clause-sharing helpers (no-ops without Options::share).
  [[nodiscard]] bool sharing() const {
    return opts_.share != nullptr && opts_.share_num_vars > 0;
  }
  void maybeExportLearnt(std::span<const Lit> lits, std::uint32_t lbd);
  /// Budgeted level-0 drain; see the definition for the full
  /// precondition contract. `maxClauses` < 0 = unbounded.
  void importSharedClauses(int maxClauses);

  [[nodiscard]] bool locked(CRef ref) const;
  [[nodiscard]] int level(Var v) const { return vardata_[v].level; }
  [[nodiscard]] Reason reason(Var v) const { return vardata_[v].reason; }

  void varBumpActivity(Var v);
  void varDecayActivity() { var_inc_ /= opts_.var_decay; }
  void claBumpActivity(ClauseRefView c);
  void claDecayActivity() { cla_inc_ /= opts_.clause_decay; }

  /// Conflict-analysis touch of a learnt arena clause: activity bump
  /// plus tiered-DB bookkeeping (used refresh, LBD update, promotion).
  void bumpLearnt(ClauseRefView c);
  [[nodiscard]] std::int64_t& tierGauge(std::uint32_t tier);

  [[nodiscard]] bool withinBudget() const;

  /// The amortized budget poll shared by solve()'s entry, its restart
  /// loop and search()'s conflict check: fault-injected expiry, the
  /// interrupt flag / wall clock, a simulated allocation failure and
  /// the cooperative memory cap (byte accounting runs only when a cap
  /// is set). Returns true iff the solve must unwind with Undef.
  [[nodiscard]] bool pollAborted();

  /// Refreshes the SolverStats memory gauges (mem_bytes + the arena/
  /// watch/external breakdown) from the live structures.
  void refreshMemStats();

  /// Amortized load-time memory check (every kLoadMemCheckPeriod
  /// addClause calls, only when a cap is set): trips load_failed_ so
  /// the next poll aborts with kMemory instead of overcommitting.
  void maybeCheckLoadMem();

  /// Cooperative 31-bit arena-ref overflow failure on the load path:
  /// one diagnostic, then load_failed_ (see the bulk-load contract).
  void failLoadArenaOverflow(std::size_t clauseLits);

  /// Attaches everything parked by bulk-mode addClause: one counting
  /// pass sizes the watch lists exactly, then binaries and longs
  /// attach in insertion order.
  void bulkAttachAll();

  /// Fault-injection hook at arena-allocation sites: flips
  /// alloc_failed_ when the injector says this allocation "fails".
  void noteAllocFault() {
    if (opts_.fault != nullptr && opts_.fault->onAlloc()) {
      alloc_failed_ = true;
    }
  }

  // Proof trace helpers (no-ops without a tracer).
  void traceAxiom(std::span<const Lit> lits) {
    if (opts_.tracer != nullptr) opts_.tracer->axiom(lits);
  }
  void traceLemma(std::span<const Lit> lits) {
    if (opts_.tracer != nullptr) opts_.tracer->lemma(lits);
  }
  void traceDeleted(std::span<const Lit> lits) {
    if (opts_.tracer != nullptr) opts_.tracer->deleted(lits);
  }

  Options opts_;

  // Clause storage and lists (binary clauses live only in the watch
  // table's binary pool).
  ClauseArena arena_;
  std::vector<CRef> clauses_;
  std::vector<CRef> learnts_;
  int num_bin_orig_ = 0;
  int num_bin_learnt_ = 0;

  // Watches: binary + long pools behind one interleaved header table,
  // indexed by Lit::index() of the falsified watch.
  WatchTable watches_;

  // Per-variable state.
  std::vector<lbool> assigns_;
  std::vector<VarData> vardata_;
  std::vector<char> polarity_;  // saved phase: 1 = last value was false
  std::vector<char> decision_;  // eligible as decision variable
  std::vector<double> activity_;
  std::vector<char> seen_;

  // Encoding-lifecycle state. scope_index_ maps an activator variable
  // to its slot in scopes_ (-1 otherwise), so ownership attribution,
  // enforcement flips and retirement are O(1) per scope even when
  // thousands of scopes are live (msu1/wmsu1 keep one per soft clause).
  std::vector<char> is_activator_;     // per var: 1 = live scope guard
  std::vector<char> frozen_;           // per var: 1 = inprocessing keep-out
  std::vector<int> scope_index_;       // per var: slot in scopes_ or -1
  std::vector<Var> var_owner_;         // per var: owning activator or undef
  std::vector<Var> scope_stack_;       // open scopes, innermost last
  std::vector<Var> free_vars_;         // recycled variable pool
  std::vector<std::pair<Var, ScopeRec>> scopes_;  // live scopes
  std::uint64_t scope_births_ = 0;           // scopes ever created
  std::vector<std::uint32_t> assump_stamp_;  // per var: last-solve marker
  std::uint32_t assump_epoch_ = 0;

  // Trail.
  std::vector<Lit> trail_;
  std::vector<int> trail_lim_;
  int qhead_ = 0;

  // Heuristics.
  VarOrderHeap order_heap_;
  double var_inc_ = 1.0;
  double cla_inc_ = 1.0;

  // Assumption interface.
  std::vector<Lit> assumptions_;
  std::vector<Lit> core_;
  std::vector<lbool> model_;

  // Warm-start state: the previous solve's full assumption sequence
  // (user assumptions + auto-appended scope activators). While the
  // trail is warm, kept level i corresponds to prev_assumptions_[i-1].
  // A sharing solver additionally counts consecutive warm starts and
  // forces a cold one every kWarmImportPeriod solves, so shared-clause
  // imports (level-0 only) are never deferred indefinitely.
  std::vector<Lit> prev_assumptions_;
  static constexpr std::int64_t kWarmImportPeriod = 16;
  std::int64_t warm_solves_since_import_ = 0;

  // Conflict-cadence import + dynamic export ceilings (sharing only).
  // The ceilings start at the configured maxima and move one notch per
  // kShareWindow imported clauses according to the window's attach
  // rate; see adaptShareCeilings().
  std::int64_t next_share_import_ = 0;  // stats_.conflicts threshold
  int share_size_cur_ = 0;              // current dynamic size ceiling
  int share_lbd_cur_ = 0;               // current dynamic LBD ceiling
  std::int64_t share_win_hits_ = 0;     // window: imports attached
  std::int64_t share_win_misses_ = 0;   // window: imports dropped
  static constexpr std::int64_t kShareWindow = 64;

  // Adaptive-restart state (Options::ema_restarts).
  RestartEma restart_ema_;
  Ema trail_ema_;                      // trail size at conflicts
  bool stable_mode_ = false;           // stable vs. focused phase
  std::int64_t mode_interval_ = 0;     // 0 = switching not initialised
  std::int64_t next_mode_switch_ = 0;  // stats_.conflicts threshold
  int stable_luby_idx_ = 0;            // Luby index of stable restarts
  std::vector<char> best_phase_;       // polarity of the deepest trail
  int best_trail_ = 0;                 // deepest trail this focused phase
  std::uint32_t last_learnt_lbd_ = 0;  // LBD of the latest learnt clause

  // Analyze scratch (reserved once per solve, reused across conflicts).
  std::vector<Lit> analyze_toclear_;
  std::vector<Lit> analyze_stack_;
  std::vector<int> lbd_scratch_;
  std::vector<Lit> learnt_scratch_;
  std::array<Lit, 2> bin_confl_{};  // literals of a binary conflict

  // State.
  bool ok_ = true;
  double max_learnts_ = 0.0;
  int simp_db_assigns_ = -1;  // trail size at last simplify()
  // Sticky simulated-OOM marker (fault injection): once an arena
  // allocation "failed", every later poll aborts with kMemory — the
  // condition does not clear, mirroring a real memory wall. The job
  // layer discards the solver; the object itself stays consistent.
  bool alloc_failed_ = false;

  // Bulk-load state (beginBulkLoad/endBulkLoad). While bulk_depth_ > 0
  // addClause parks attachments here instead of touching the watch
  // lists; endBulkLoad drains both vectors in insertion order after one
  // exact counting pass. load_failed_ is the cooperative load-time
  // failure latch (memory cap exceeded or arena-ref overflow): the
  // solver stays ok_ == true so engines don't misreport hard-UNSAT,
  // and the next pollAborted() surfaces AbortReason::kMemory.
  int bulk_depth_ = 0;
  std::vector<std::pair<Lit, Lit>> bulk_bins_;  // deferred binary watches
  std::vector<CRef> bulk_longs_;                // deferred long watches
  std::vector<Lit> add_tmp_;  // addClause scratch (no per-call alloc)
  bool load_failed_ = false;
  int load_mem_countdown_ = 0;  // adds until the next cap check
  static constexpr int kLoadMemCheckPeriod = 1024;

  // Inprocessing state. `inprocessing_` disables phase saving while a
  // vivification probe unwinds, so probe trails don't perturb the
  // search trajectory's saved polarities.
  std::int64_t inproc_last_props_ = 0;  // stats_.propagations at last pass
  std::size_t inproc_viv_cursor_ = 0;   // round-robin resume point
  int inproc_db_assigns_ = -1;          // trail size at last strip sweep
  bool inproc_pending_ = false;         // pass forced by requestInprocess()
  bool inprocessing_ = false;           // inside a vivify/probe unwind

  // Removed-variable state (BVE + SCC substitution; elimination.cpp).
  // eliminated_[v]: 0 = live, 1 = eliminated and was a decision var,
  // 2 = eliminated non-decision. repr_[v] is the literal equivalent to
  // posLit(v) (identity when unsubstituted). has_removed_vars_ guards
  // every hot-path hook (addClause mapping, solve() assumption
  // mapping, model reconstruction) so a solver that never eliminated
  // anything is bit-for-bit the PR 8 engine.
  std::vector<char> eliminated_;
  std::vector<Lit> repr_;
  WitnessStack witness_;
  bool has_removed_vars_ = false;
  std::size_t inproc_probe_cursor_ = 0;  // probing round-robin resume
  std::vector<Lit> user_assumps_orig_;   // pre-mapping user assumptions
  bool assumps_mapped_ = false;          // last solve mapped assumptions

  Budget budget_;
  SolverStats stats_;
};

/// The Luby sequence scaled by `y`: y * luby(i); used for restart pacing.
[[nodiscard]] double lubySequence(double y, int i);

}  // namespace msu
