/// \file probing.cpp
/// \brief Failed-literal probing with hyper-binary resolution
///        (inprocessing round two).
///
/// A probe assumes one literal p at a throwaway decision level and
/// propagates. A conflict proves the unit ¬p (a failed literal), which
/// enters at the root. Otherwise every literal u the probe implied
/// through a *long* clause yields the hyper-binary resolvent (¬p ∨ u)
/// — implied by the database, since unit propagation from p derives u
/// — which is attached as a learnt binary; implications that already
/// travel through binary chains are in the implication graph and are
/// skipped, as are resolvents the graph already holds.
///
/// Candidates are roots of the binary implication graph: literals with
/// binary out-edges but no in-edges (probing a root covers all its
/// binary descendants, the classic failed-literal heuristic). The
/// sweep is propagation-budgeted like vivification and resumes
/// round-robin across passes from inproc_probe_cursor_.
///
/// Scope-awareness: activator and scope-owned variables are never
/// probed, and no hyper-binary resolvent is attached over them (a
/// probe can propagate ¬act when a scope clause loses its other
/// literals, and such implications must not escape into untagged
/// binaries that retirement's sweeps would miss). Both derivations are
/// ordinary RUP lemmas, so — unlike elimination and substitution —
/// probing stays enabled under an attached ProofTracer.

#include <array>
#include <cassert>
#include <cstdint>
#include <vector>

#include "sat/solver.h"

namespace msu {

bool Solver::inprocProbe() {
  if (opts_.inprocess_probe_props <= 0) return ok_;  // stage disabled
  if (!ok_) return false;
  assert(decisionLevel() == 0);

  const std::size_t nLits = static_cast<std::size_t>(2 * numVars());
  if (nLits == 0) return ok_;
  if (inproc_probe_cursor_ >= nLits) inproc_probe_cursor_ = 0;

  const std::int64_t startProps = stats_.propagations;
  std::vector<Lit> hbr;
  std::size_t step = 0;
  inprocessing_ = true;  // probe unwinds must not disturb saved phases
  for (; step < nLits; ++step) {
    if (stats_.propagations - startProps >= opts_.inprocess_probe_props) break;
    if (!ok_ || budget_.timeExpired()) break;
    const Lit p = Lit::fromIndex(
        static_cast<std::int32_t>((inproc_probe_cursor_ + step) % nLits));
    const Var v = p.var();
    if (assigns_[v] != lbool::Undef) continue;
    if (is_activator_[v] != 0 || var_owner_[v] != kUndefVar) continue;
    if (varRemoved(v)) continue;
    // Roots of the binary implication graph only: p has out-edges
    // (binList(p): implications of p) but no in-edges (binList(~p)
    // holds the binaries containing p, whose contrapositives point at
    // p).
    if (watches_.binList(p).empty() || !watches_.binList(~p).empty()) {
      continue;
    }

    ++stats_.inproc_probe_probes;
    const int trailStart = trailSize();
    newDecisionLevel();
    uncheckedEnqueue(p);
    if (!propagate().isNone()) {
      cancelUntil(0);
      ++stats_.inproc_probe_failed;
      const std::array<Lit, 1> unit{~p};
      traceLemma(unit);
      uncheckedEnqueue(~p);
      ok_ = propagate().isNone();
      if (!ok_) {
        traceLemma({});  // fresh level-0 conflict: database refuted
        break;
      }
      continue;
    }

    // Hyper-binary resolution: collect first, attach after the unwind
    // (attachBinary appends to the very lists the dedup scan reads).
    hbr.clear();
    for (int i = trailStart + 1; i < trailSize(); ++i) {
      const Lit u = trail_[i];
      const Reason r = reason(u.var());
      if (r.isNone() || !r.isClause()) continue;  // binary chain: in the graph
      if (is_activator_[u.var()] != 0 || var_owner_[u.var()] != kUndefVar) {
        continue;
      }
      bool known = false;
      for (const BinWatch bw : watches_.binList(p)) {
        if (bw.implied() == u) {
          known = true;
          break;
        }
      }
      if (!known) hbr.push_back(u);
    }
    cancelUntil(0);
    for (const Lit u : hbr) {
      const std::array<Lit, 2> lemma{~p, u};
      traceLemma(lemma);
      attachBinary(~p, u, /*learnt=*/true);
      ++stats_.inproc_probe_hbr;
    }
  }
  inprocessing_ = false;
  inproc_probe_cursor_ = (inproc_probe_cursor_ + step) % nLits;
  stats_.inproc_props += stats_.propagations - startProps;
  return ok_;
}

}  // namespace msu
