/// \file scc.cpp
/// \brief SCC-based equivalent-literal detection and substitution
///        (inprocessing round two).
///
/// The binary clauses form an implication graph over literals: a clause
/// (a ∨ b) contributes the edges ¬a → b and ¬b → a. Literals in one
/// strongly connected component are pairwise equivalent; a component
/// containing both x and ¬x makes the database unsatisfiable. One
/// iterative Tarjan sweep finds the components; every member of a
/// non-trivial component is then substituted by a chosen representative
/// — repr_[v] records the literal equivalent to v, and one database
/// sweep rewrites every clause through the map.
///
/// Components come in mirror pairs (the SCC of the negated literals);
/// exactly one of a pair has an even minimum literal index (the pair
/// shares its minimum *variable*, in opposite polarities, once the
/// x/¬x-in-one-component case is handled as unsatisfiable first), so
/// each equivalence class is processed exactly once.
///
/// ## Scope-/incremental-safety (the reconstruction contract, solver.h)
///
/// Activator and scope-owned variables are excluded from the graph —
/// provably a no-op for activators (no clause contains a positive
/// activator, so act is unreachable and ¬act has no out-edges) and a
/// defensive measure for scope variables (their binaries always carry
/// a guard literal, which blocks any cycle). Frozen and currently
/// assumed variables may participate but are never substituted: a
/// component containing such must-keep variables uses one of them as
/// the representative and substitutes only its plain members. Under
/// clause sharing the graph is restricted to the export prefix, whose
/// theory all workers share, so the substitution (and every rewritten
/// clause) means the same thing in every worker.
///
/// Substitution preserves arena scope tags: long clauses are rewritten
/// in place (ClauseRefView::shrink keeps the trailing tag word), and a
/// scope clause that degenerates to a binary keeps its guard literal
/// textually, which is what retirement's literal scan keys on. Each
/// substitution pushes its two witness halves (sat/reconstruct.h) so
/// models stay total over substituted variables; substituted variables
/// are never restored — future references are rewritten instead and
/// core() is mapped back. An attached ProofTracer disables the pass
/// (post-hoc clause rewriting is not expressible in the incremental
/// RUP trace).

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

#include "sat/solver.h"

namespace msu {

bool Solver::inprocSubstitute() {
  if (!opts_.inprocess_scc) return ok_;  // stage disabled
  // Post-hoc rewriting is not expressible in the incremental RUP
  // trace; see the reconstruction contract in solver.h.
  if (opts_.tracer != nullptr) return ok_;
  if (!ok_) return false;
  assert(decisionLevel() == 0);

  const int nv = numVars();
  const std::size_t nLits = static_cast<std::size_t>(2 * nv);
  if (nLits == 0) return ok_;

  std::vector<char> assumed(static_cast<std::size_t>(nv), 0);
  for (const Lit p : assumptions_) assumed[p.var()] = 1;

  const bool prefixOnly = sharing();
  const auto excluded = [&](Var w) {
    return assigns_[w] != lbool::Undef || is_activator_[w] != 0 ||
           var_owner_[w] != kUndefVar || varRemoved(w) ||
           (prefixOnly && w >= opts_.share_num_vars);
  };

  // ---- Iterative Tarjan over the literal nodes -------------------------
  // Out-edges of literal l are binList(l): the watch list of l holds
  // BinWatch(q) for every binary (¬l ∨ q), i.e. the implications of l.
  struct Frame {
    std::int32_t lit = 0;
    std::uint32_t edge = 0;
  };
  std::vector<std::uint32_t> order(nLits, 0);  // 0 = unvisited
  std::vector<std::uint32_t> low(nLits, 0);
  std::vector<char> onStack(nLits, 0);
  std::vector<std::int32_t> sccStack;
  std::vector<Frame> dfs;
  std::vector<std::vector<std::int32_t>> sccs;
  std::uint32_t nextOrder = 1;

  for (std::size_t root = 0; root < nLits; ++root) {
    if (order[root] != 0) continue;
    const Lit rootLit = Lit::fromIndex(static_cast<std::int32_t>(root));
    if (excluded(rootLit.var())) continue;

    order[root] = low[root] = nextOrder++;
    sccStack.push_back(static_cast<std::int32_t>(root));
    onStack[root] = 1;
    dfs.push_back(Frame{static_cast<std::int32_t>(root), 0});
    while (!dfs.empty()) {
      // Value copy: the recursive push below may reallocate `dfs`.
      const Frame f = dfs.back();
      const Lit l = Lit::fromIndex(f.lit);
      const std::span<const BinWatch> outs = watches_.binList(l);
      if (f.edge < outs.size()) {
        ++dfs.back().edge;
        const Lit q = outs[f.edge].implied();
        if (excluded(q.var())) continue;
        const std::size_t qi = static_cast<std::size_t>(q.index());
        if (order[qi] == 0) {
          order[qi] = low[qi] = nextOrder++;
          sccStack.push_back(static_cast<std::int32_t>(qi));
          onStack[qi] = 1;
          dfs.push_back(Frame{static_cast<std::int32_t>(qi), 0});
        } else if (onStack[qi] != 0) {
          const std::size_t li = static_cast<std::size_t>(f.lit);
          low[li] = std::min(low[li], order[qi]);
        }
        continue;
      }
      dfs.pop_back();
      const std::size_t li = static_cast<std::size_t>(f.lit);
      if (!dfs.empty()) {
        const std::size_t pi = static_cast<std::size_t>(dfs.back().lit);
        low[pi] = std::min(low[pi], low[li]);
      }
      if (low[li] == order[li]) {
        std::vector<std::int32_t> scc;
        for (;;) {
          const std::int32_t m = sccStack.back();
          sccStack.pop_back();
          onStack[static_cast<std::size_t>(m)] = 0;
          scc.push_back(m);
          if (m == f.lit) break;
        }
        if (scc.size() >= 2) sccs.push_back(std::move(scc));
      }
    }
  }

  if (sccs.empty()) return ok_;

  // A component holding both polarities of a variable refutes the
  // database (x ≡ ¬x). Check every component before touching repr_.
  for (auto& scc : sccs) {
    std::sort(scc.begin(), scc.end());
    for (std::size_t k = 0; k + 1 < scc.size(); ++k) {
      if ((scc[k] | 1) == scc[k + 1]) {  // indexes 2v and 2v+1
        ok_ = false;
        return false;
      }
    }
  }

  // ---- Substitution ----------------------------------------------------
  std::vector<Var> substituted;
  for (const auto& scc : sccs) {
    // Mirror dedup: the sorted component's minimum index determines the
    // minimum variable's polarity; process the even-parity twin only.
    if ((scc.front() & 1) != 0) continue;

    // Representative: a must-keep member (frozen or currently assumed —
    // never substitutable) when present, else the minimum-index member.
    Lit rep = kUndefLit;
    for (const std::int32_t m : scc) {
      const Lit l = Lit::fromIndex(m);
      if (frozen_[l.var()] != 0 || assumed[l.var()] != 0) {
        rep = l;
        break;
      }
    }
    if (rep == kUndefLit) rep = Lit::fromIndex(scc.front());

    for (const std::int32_t m : scc) {
      const Lit l = Lit::fromIndex(m);
      const Var v = l.var();
      if (l == rep || frozen_[v] != 0 || assumed[v] != 0) continue;
      assert(v != rep.var());
      // l ≡ rep, so posLit(v) ≡ (l positive ? rep : ¬rep).
      const Lit mapped = l.positive() ? rep : ~rep;
      repr_[v] = mapped;
      witness_.pushSubstitution(posLit(v), mapped);
      decision_[v] = 0;  // out of pickBranchLit permanently
      has_removed_vars_ = true;
      substituted.push_back(v);
      ++stats_.inproc_scc_vars;
    }
  }
  if (substituted.empty()) return ok_;

  // ---- Rewrite sweep: long clauses -------------------------------------
  // applyStrengthened cannot be reused here — it no-ops when the size
  // is unchanged, but substitution rewrites literals at equal length.
  std::vector<Lit> ps;
  const auto rewriteList = [&](std::vector<CRef>& refs) {
    for (const CRef ref : refs) {
      if (!ok_) return;
      ClauseRefView c = arena_[ref];
      if (c.deleted()) continue;
      bool touched = false;
      for (const Lit p : c.lits()) {
        if (repr_[p.var()] != posLit(p.var())) {
          touched = true;
          break;
        }
      }
      if (!touched) continue;

      // Map through the representatives and refilter against the root
      // assignment (earlier rewrites may have propagated units).
      ps.clear();
      bool sat = false;
      bool taut = false;
      for (const Lit raw : c.lits()) {
        const Lit p = reprLit(raw);
        const lbool val = value(p);
        if (val == lbool::True) {
          sat = true;
          break;
        }
        if (val == lbool::False) continue;
        bool dup = false;
        for (const Lit q : ps) {
          if (q == p) {
            dup = true;
            break;
          }
          if (q == ~p) {
            taut = true;
            break;
          }
        }
        if (taut) break;
        if (!dup) ps.push_back(p);
      }
      ++stats_.inproc_scc_rewritten;
      if (sat || taut) {
        removeClause(ref);
        continue;
      }
      if (ps.empty()) {
        removeClause(ref);
        ok_ = false;
        return;
      }
      if (ps.size() == 1) {
        removeClause(ref);
        uncheckedEnqueue(ps[0]);
        ok_ = propagate().isNone();
        continue;
      }
      if (ps.size() == 2) {
        const bool learnt = c.learnt();
        removeClause(ref);
        attachBinary(ps[0], ps[1], learnt);
        continue;
      }
      // In-place rewrite: the trailing tag word survives shrink, so a
      // scope clause keeps its activator tag.
      detachLong(ref);
      const int oldSize = c.size();
      for (std::size_t k = 0; k < ps.size(); ++k) {
        c[static_cast<int>(k)] = ps[k];
      }
      if (static_cast<int>(ps.size()) != oldSize) {
        c.shrink(static_cast<int>(ps.size()));
        arena_.markWastedWords(oldSize - static_cast<int>(ps.size()));
      }
      if (c.learnt() && c.lbd() > static_cast<std::uint32_t>(ps.size())) {
        c.setLbd(static_cast<std::uint32_t>(ps.size()));
      }
      attachClause(ref);
    }
  };
  rewriteList(clauses_);
  if (!ok_) return false;
  rewriteList(learnts_);
  if (!ok_) return false;

  // ---- Rewrite sweep: binary clauses -----------------------------------
  // Drop every touched entry in place; re-attach the mapped clause (on
  // the canonical direction only) in an epilogue — pushBin can relocate
  // the very lists being swept.
  struct PendingBin {
    Lit a = kUndefLit;
    Lit b = kUndefLit;
    bool learnt = false;
  };
  std::vector<PendingBin> pending;
  for (int idx = 0; idx < watches_.numLits(); ++idx) {
    const Lit trigger = Lit::fromIndex(idx);
    const Lit self = ~trigger;  // the clause literal watched via `idx`
    const std::span<BinWatch> ws = watches_.binList(trigger);
    std::uint32_t j = 0;
    for (const BinWatch bw : ws) {
      const Lit other = bw.implied();
      const bool touched = repr_[self.var()] != posLit(self.var()) ||
                           repr_[other.var()] != posLit(other.var());
      if (!touched) {
        ws[j++] = bw;
        continue;
      }
      if (self.index() < other.index()) {  // canonical direction
        pending.push_back(PendingBin{reprLit(self), reprLit(other),
                                     bw.learnt()});
        if (bw.learnt()) {
          --num_bin_learnt_;
        } else {
          --num_bin_orig_;
        }
        ++stats_.inproc_scc_rewritten;
      }
    }
    watches_.shrinkBin(trigger, j);
  }
  const auto addUnit = [&](Lit u) {
    const lbool val = value(u);
    if (val == lbool::True) return;
    if (val == lbool::False) {
      ok_ = false;
      return;
    }
    uncheckedEnqueue(u);
    ok_ = propagate().isNone();
  };
  for (const PendingBin& pb : pending) {
    if (!ok_) return false;
    if (pb.a == ~pb.b) continue;  // mapped onto a tautology
    if (pb.a == pb.b) {
      addUnit(pb.a);
      continue;
    }
    const lbool va = value(pb.a);
    const lbool vb = value(pb.b);
    if (va == lbool::True || vb == lbool::True) continue;
    if (va == lbool::False && vb == lbool::False) {
      ok_ = false;
      return false;
    }
    if (va == lbool::False) {
      addUnit(pb.b);
      continue;
    }
    if (vb == lbool::False) {
      addUnit(pb.a);
      continue;
    }
    attachBinary(pb.a, pb.b, pb.learnt);
  }
  if (!ok_) return false;

  // Every clause over a substituted variable was rewritten or removed;
  // its long watch lists hold only lazily detached leftovers.
  for (const Var v : substituted) {
    watches_.shrinkLong(posLit(v), 0);
    watches_.shrinkLong(negLit(v), 0);
  }
  return ok_;
}

}  // namespace msu
