/// \file watches.h
/// \brief Cache-conscious watch storage for the CDCL propagation core.
///
/// Three structures live here:
///
///  * FlatOccLists<T> — a flat, arena-backed occurrence-list container:
///    every per-literal list lives in ONE contiguous pool with a
///    per-literal {offset, size, cap} header. Compared to
///    `std::vector<std::vector<T>>` this removes one pointer
///    indirection per list, keeps hot lists adjacent in memory, and
///    makes full-database sweeps (GC relocation) a linear scan. Lists
///    grow by relocating their segment to the pool's end (amortized
///    O(1) push); abandoned segments are reclaimed by compact(), which
///    the solver hooks into its GC path.
///
///  * WatchTable — the solver's actual watch storage: binary and long
///    watcher pools sharing ONE interleaved per-literal header table.
///    A propagated literal's binary head and long head live in the same
///    24-byte record, so the two propagation phases touch one header
///    cache line per literal instead of two separate head arrays (the
///    `up-long-*` residual noted in the ROADMAP).
///
///  * Reason — a tagged 32-bit propagation reason: either a clause
///    reference into the arena, a binary reason carrying the *other*
///    literal of a two-clause inline (so conflict analysis never
///    touches the arena for binary implications), or "none".
///
/// The solver keeps binary clauses out of the clause arena entirely:
/// a binary clause (a ∨ b) is stored as BinWatch(b) in the list of ~a
/// and BinWatch(a) in the list of ~b. Binary propagation therefore
/// reads one contiguous 4-byte-entry array and never dereferences a
/// clause — the single hottest-path win in this design. The learnt
/// flag is packed into the spare low bit of the shifted literal index,
/// so a BinWatch is a single word.

#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "cnf/literal.h"
#include "sat/arena.h"

namespace msu {

/// Watcher for a long (size >= 3) clause: the clause plus a "blocker"
/// literal whose satisfaction lets propagation skip the clause entirely.
struct Watcher {
  CRef cref = kCRefUndef;
  Lit blocker = kUndefLit;
};

/// Watch entry for a binary clause: the implied literal is stored
/// inline (no clause lookup), and the learnt flag is packed into the
/// low bit so the whole entry is 4 bytes.
class BinWatch {
 public:
  constexpr BinWatch() = default;
  constexpr BinWatch(Lit implied, bool learnt)
      : data_((static_cast<std::uint32_t>(implied.index()) << 1) |
              (learnt ? 1u : 0u)) {}

  [[nodiscard]] constexpr Lit implied() const {
    return Lit::fromIndex(static_cast<std::int32_t>(data_ >> 1));
  }
  [[nodiscard]] constexpr bool learnt() const { return (data_ & 1u) != 0; }

  friend constexpr bool operator==(BinWatch, BinWatch) = default;

 private:
  std::uint32_t data_ = 0xFFFF'FFFFu;
};

static_assert(sizeof(BinWatch) == 4, "binary watches must stay one word");

/// Propagation reason: none, a clause in the arena, or the other
/// literal of a binary clause (tag in the top bit).
class Reason {
 public:
  constexpr Reason() = default;

  [[nodiscard]] static constexpr Reason none() { return Reason(); }
  [[nodiscard]] static constexpr Reason clause(CRef ref) {
    assert(ref < kBinTag);
    Reason r;
    r.data_ = ref;
    return r;
  }
  [[nodiscard]] static constexpr Reason binary(Lit other) {
    Reason r;
    r.data_ = kBinTag | static_cast<std::uint32_t>(other.index());
    return r;
  }

  [[nodiscard]] constexpr bool isNone() const { return data_ == kNoneBits; }
  [[nodiscard]] constexpr bool isBinary() const {
    return data_ != kNoneBits && (data_ & kBinTag) != 0;
  }
  [[nodiscard]] constexpr bool isClause() const {
    return (data_ & kBinTag) == 0;
  }

  /// The arena reference of a clause reason.
  [[nodiscard]] constexpr CRef cref() const {
    assert(isClause());
    return data_;
  }

  /// The other (false) literal of a binary reason.
  [[nodiscard]] constexpr Lit other() const {
    assert(isBinary());
    return Lit::fromIndex(static_cast<std::int32_t>(data_ & ~kBinTag));
  }

  friend constexpr bool operator==(Reason, Reason) = default;

 private:
  static constexpr std::uint32_t kBinTag = 0x8000'0000u;
  static constexpr std::uint32_t kNoneBits = 0xFFFF'FFFFu;  // == kCRefUndef

  std::uint32_t data_ = kNoneBits;
};

/// Flat per-literal occurrence lists over one contiguous pool.
///
/// Pointer/span invalidation rules:
///  * push() may grow the pool (and relocate the *target* list); any
///    raw pointer into the pool must be refreshed via poolPtrAt()
///    afterwards. Offsets of other lists are unchanged.
///  * compact() invalidates all offsets; call it only from quiescent
///    points (the solver's GC hook).
template <typename T>
class FlatOccLists {
 public:
  /// Registers one more literal slot (call twice per new variable).
  void addLiteral() { heads_.emplace_back(); }

  [[nodiscard]] int numLits() const { return static_cast<int>(heads_.size()); }

  [[nodiscard]] std::uint32_t sizeOf(Lit p) const {
    return heads_[idx(p)].size;
  }
  [[nodiscard]] std::uint32_t offsetOf(Lit p) const {
    return heads_[idx(p)].offset;
  }

  /// Pool pointer for a previously fetched offset (refresh after push).
  [[nodiscard]] T* poolPtrAt(std::uint32_t offset) {
    return pool_.data() + offset;
  }

  [[nodiscard]] std::span<T> list(Lit p) {
    const Head& h = heads_[idx(p)];
    return {pool_.data() + h.offset, h.size};
  }
  [[nodiscard]] std::span<const T> list(Lit p) const {
    const Head& h = heads_[idx(p)];
    return {pool_.data() + h.offset, h.size};
  }

  void push(Lit p, const T& w) {
    Head& h = heads_[idx(p)];
    if (h.size == h.cap) grow(h);
    pool_[h.offset + h.size++] = w;
  }

  /// Truncates `p`'s list to its first `newSize` entries.
  void shrinkList(Lit p, std::uint32_t newSize) {
    Head& h = heads_[idx(p)];
    assert(newSize <= h.size);
    h.size = newSize;
  }

  /// Removes the first entry matching `pred` by swapping with the back.
  /// Returns true iff an entry was removed.
  template <typename Pred>
  bool removeOne(Lit p, Pred pred) {
    Head& h = heads_[idx(p)];
    T* base = pool_.data() + h.offset;
    for (std::uint32_t i = 0; i < h.size; ++i) {
      if (pred(base[i])) {
        base[i] = base[h.size - 1];
        --h.size;
        return true;
      }
    }
    return false;
  }

  /// Pool slots abandoned by segment growth since the last compact().
  [[nodiscard]] std::size_t wasted() const { return wasted_; }

  /// Total pool slots (live + slack + abandoned).
  [[nodiscard]] std::size_t poolSize() const { return pool_.size(); }

  /// Defragments the pool when abandoned segments dominate it.
  void compactIfWasteful() {
    if (wasted_ * 2 > pool_.size()) compact();
  }

  /// Rewrites the pool tightly (with a little per-list slack), fixing
  /// up every header. Invalidates all previously fetched offsets.
  void compact() {
    std::vector<T> fresh;
    std::size_t need = 0;
    for (const Head& h : heads_) need += slackedCap(h.size);
    fresh.resize(need);
    std::uint32_t at = 0;
    for (Head& h : heads_) {
      const std::uint32_t cap = slackedCap(h.size);
      for (std::uint32_t i = 0; i < h.size; ++i) {
        fresh[at + i] = pool_[h.offset + i];
      }
      h.offset = at;
      h.cap = cap;
      at += cap;
    }
    pool_ = std::move(fresh);
    wasted_ = 0;
  }

 private:
  struct Head {
    std::uint32_t offset = 0;
    std::uint32_t size = 0;
    std::uint32_t cap = 0;
  };

  [[nodiscard]] static std::size_t idx(Lit p) {
    return static_cast<std::size_t>(p.index());
  }

  /// Compacted capacity: size plus ~25% slack so the next few pushes
  /// do not immediately re-fragment the pool.
  [[nodiscard]] static std::uint32_t slackedCap(std::uint32_t size) {
    return size == 0 ? 0 : size + (size >> 2) + 1;
  }

  /// Moves `h`'s segment to the end of the pool with doubled capacity.
  /// Lists start tiny: most literals watch only a handful of clauses,
  /// and a small first segment keeps the pool (and the bytes the
  /// propagation loop must touch) dense.
  void grow(Head& h) {
    const std::uint32_t newCap = h.cap == 0 ? 2 : h.cap * 2;
    const std::uint32_t newOff = static_cast<std::uint32_t>(pool_.size());
    pool_.resize(pool_.size() + newCap);
    for (std::uint32_t i = 0; i < h.size; ++i) {
      pool_[newOff + i] = pool_[h.offset + i];
    }
    wasted_ += h.cap;
    h.offset = newOff;
    h.cap = newCap;
  }

  std::vector<T> pool_;
  std::vector<Head> heads_;
  std::size_t wasted_ = 0;
};

/// The solver's watch storage: a binary pool and a long pool sharing
/// one interleaved per-literal header table. Each literal's record
/// packs both heads:
///
///   { bin_offset, bin_size | bin_cap, long_offset, long_size, long_cap }
///
/// so the binary phase's header read pulls the long head into cache for
/// the second phase (and vice versa). Growth/compaction rules match
/// FlatOccLists: push may relocate the target segment to the pool tail,
/// compact() runs from the solver's GC hook and invalidates offsets.
class WatchTable {
 public:
  /// Registers one more literal slot (call twice per new variable).
  void addLiteral() { heads_.emplace_back(); }

  [[nodiscard]] int numLits() const { return static_cast<int>(heads_.size()); }

  // ---- binary lists ----------------------------------------------------

  [[nodiscard]] std::span<BinWatch> binList(Lit p) {
    Head& h = heads_[idx(p)];
    return {bin_pool_.data() + h.bin_offset, h.bin_size};
  }
  [[nodiscard]] std::span<const BinWatch> binList(Lit p) const {
    const Head& h = heads_[idx(p)];
    return {bin_pool_.data() + h.bin_offset, h.bin_size};
  }

  void pushBin(Lit p, BinWatch w) {
    Head& h = heads_[idx(p)];
    if (h.bin_size == h.bin_cap) growBin(h);
    bin_pool_[h.bin_offset + h.bin_size++] = w;
  }

  void shrinkBin(Lit p, std::uint32_t newSize) {
    Head& h = heads_[idx(p)];
    assert(newSize <= h.bin_size);
    h.bin_size = newSize;
  }

  // ---- long lists ------------------------------------------------------

  [[nodiscard]] std::uint32_t longSizeOf(Lit p) const {
    return heads_[idx(p)].long_size;
  }
  [[nodiscard]] std::uint32_t longOffsetOf(Lit p) const {
    return heads_[idx(p)].long_offset;
  }

  /// Long-pool pointer for a previously fetched offset (refresh after
  /// pushLong).
  [[nodiscard]] Watcher* longPoolPtrAt(std::uint32_t offset) {
    return long_pool_.data() + offset;
  }

  [[nodiscard]] std::span<Watcher> longList(Lit p) {
    Head& h = heads_[idx(p)];
    return {long_pool_.data() + h.long_offset, h.long_size};
  }

  void pushLong(Lit p, const Watcher& w) {
    Head& h = heads_[idx(p)];
    if (h.long_size == h.long_cap) growLong(h);
    long_pool_[h.long_offset + h.long_size++] = w;
  }

  void shrinkLong(Lit p, std::uint32_t newSize) {
    Head& h = heads_[idx(p)];
    assert(newSize <= h.long_size);
    h.long_size = newSize;
  }

  /// Removes the watcher of clause `ref` from `p`'s long list (swap with
  /// the back; order is not significant). Returns true iff it was found.
  /// Used by inprocessing to detach a clause eagerly before rewriting
  /// its literals — the lazy-detach path only drops watchers of clauses
  /// already marked deleted.
  bool removeLong(Lit p, CRef ref) {
    Head& h = heads_[idx(p)];
    Watcher* base = long_pool_.data() + h.long_offset;
    for (std::uint32_t i = 0; i < h.long_size; ++i) {
      if (base[i].cref == ref) {
        base[i] = base[h.long_size - 1];
        --h.long_size;
        return true;
      }
    }
    return false;
  }

  // ---- pool maintenance ------------------------------------------------

  /// Pool slots abandoned by segment growth since the last compact().
  [[nodiscard]] std::size_t wastedBin() const { return wasted_bin_; }
  [[nodiscard]] std::size_t wastedLong() const { return wasted_long_; }

  /// Backing-store footprint in bytes (pool capacities + the per-literal
  /// header table) — the watch table's contribution to the solver's
  /// cooperative memory accounting.
  [[nodiscard]] std::size_t bytes() const {
    return bin_pool_.capacity() * sizeof(BinWatch) +
           long_pool_.capacity() * sizeof(Watcher) +
           heads_.capacity() * sizeof(Head);
  }

  /// Defragments whichever pool is dominated by abandoned segments.
  void compactIfWasteful() {
    if (wasted_long_ * 2 > long_pool_.size() ||
        wasted_bin_ * 2 > bin_pool_.size()) {
      compact();
    }
  }

  /// Bulk reservation (the bulk-load counting pass): rewrites both
  /// pools so every literal's capacity is exactly its current size plus
  /// the announced extra, preserving entries in order. One allocation
  /// per pool; the pushes that follow never relocate a segment.
  /// Invalidates all previously fetched offsets. The spans are indexed
  /// by Lit::index() and must cover every registered literal.
  void reserveExtra(std::span<const std::uint32_t> binExtra,
                    std::span<const std::uint32_t> longExtra) {
    assert(binExtra.size() == heads_.size() &&
           longExtra.size() == heads_.size());
    std::size_t needBin = 0;
    std::size_t needLong = 0;
    for (std::size_t i = 0; i < heads_.size(); ++i) {
      needBin += heads_[i].bin_size + binExtra[i];
      needLong += heads_[i].long_size + longExtra[i];
    }
    std::vector<BinWatch> freshBin(needBin);
    std::vector<Watcher> freshLong(needLong);
    std::uint32_t atBin = 0;
    std::uint32_t atLong = 0;
    for (std::size_t i = 0; i < heads_.size(); ++i) {
      Head& h = heads_[i];
      for (std::uint32_t k = 0; k < h.bin_size; ++k) {
        freshBin[atBin + k] = bin_pool_[h.bin_offset + k];
      }
      h.bin_offset = atBin;
      h.bin_cap = h.bin_size + binExtra[i];
      atBin += h.bin_cap;
      for (std::uint32_t k = 0; k < h.long_size; ++k) {
        freshLong[atLong + k] = long_pool_[h.long_offset + k];
      }
      h.long_offset = atLong;
      h.long_cap = h.long_size + longExtra[i];
      atLong += h.long_cap;
    }
    bin_pool_ = std::move(freshBin);
    long_pool_ = std::move(freshLong);
    wasted_bin_ = 0;
    wasted_long_ = 0;
  }

  /// Rewrites both pools tightly (with a little per-list slack), fixing
  /// up every header. Invalidates all previously fetched offsets.
  void compact() {
    std::vector<BinWatch> freshBin;
    std::vector<Watcher> freshLong;
    std::size_t needBin = 0;
    std::size_t needLong = 0;
    for (const Head& h : heads_) {
      needBin += slackedCap(h.bin_size);
      needLong += slackedCap(h.long_size);
    }
    freshBin.resize(needBin);
    freshLong.resize(needLong);
    std::uint32_t atBin = 0;
    std::uint32_t atLong = 0;
    for (Head& h : heads_) {
      const std::uint32_t bcap = slackedCap(h.bin_size);
      for (std::uint32_t i = 0; i < h.bin_size; ++i) {
        freshBin[atBin + i] = bin_pool_[h.bin_offset + i];
      }
      h.bin_offset = atBin;
      h.bin_cap = bcap;
      atBin += bcap;

      const std::uint32_t lcap = slackedCap(h.long_size);
      for (std::uint32_t i = 0; i < h.long_size; ++i) {
        freshLong[atLong + i] = long_pool_[h.long_offset + i];
      }
      h.long_offset = atLong;
      h.long_cap = lcap;
      atLong += lcap;
    }
    bin_pool_ = std::move(freshBin);
    long_pool_ = std::move(freshLong);
    wasted_bin_ = 0;
    wasted_long_ = 0;
  }

 private:
  /// Interleaved per-literal header: both phases of propagate() read
  /// the same record.
  struct Head {
    std::uint32_t bin_offset = 0;
    std::uint32_t bin_size = 0;
    std::uint32_t bin_cap = 0;
    std::uint32_t long_offset = 0;
    std::uint32_t long_size = 0;
    std::uint32_t long_cap = 0;
  };

  [[nodiscard]] static std::size_t idx(Lit p) {
    return static_cast<std::size_t>(p.index());
  }

  [[nodiscard]] static std::uint32_t slackedCap(std::uint32_t size) {
    return size == 0 ? 0 : size + (size >> 2) + 1;
  }

  void growBin(Head& h) {
    const std::uint32_t newCap = h.bin_cap == 0 ? 2 : h.bin_cap * 2;
    const std::uint32_t newOff = static_cast<std::uint32_t>(bin_pool_.size());
    bin_pool_.resize(bin_pool_.size() + newCap);
    for (std::uint32_t i = 0; i < h.bin_size; ++i) {
      bin_pool_[newOff + i] = bin_pool_[h.bin_offset + i];
    }
    wasted_bin_ += h.bin_cap;
    h.bin_offset = newOff;
    h.bin_cap = newCap;
  }

  void growLong(Head& h) {
    const std::uint32_t newCap = h.long_cap == 0 ? 2 : h.long_cap * 2;
    const std::uint32_t newOff = static_cast<std::uint32_t>(long_pool_.size());
    long_pool_.resize(long_pool_.size() + newCap);
    for (std::uint32_t i = 0; i < h.long_size; ++i) {
      long_pool_[newOff + i] = long_pool_[h.long_offset + i];
    }
    wasted_long_ += h.long_cap;
    h.long_offset = newOff;
    h.long_cap = newCap;
  }

  std::vector<BinWatch> bin_pool_;
  std::vector<Watcher> long_pool_;
  std::vector<Head> heads_;
  std::size_t wasted_bin_ = 0;
  std::size_t wasted_long_ = 0;
};

}  // namespace msu
