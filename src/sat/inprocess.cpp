/// \file inprocess.cpp
/// \brief Scope-aware inprocessing over the solver's live clause
///        database (Options::inprocess): the in-solver counterpart of
///        the offline SatELite pass in src/simp/.
///
/// The MaxSAT engines drive one incremental oracle through thousands of
/// solve calls, so the arena accumulates clauses that are satisfied at
/// the top level, subsumed by later (often learnt) clauses, or longer
/// than they need to be — and every later propagation pays for them.
/// A pass runs at solve/restart boundaries, budgeted by propagations
/// since the last pass (a retirement notification forces one), and has
/// six stages, each at decision level 0:
///
///  1. *Propagate + strip.* Remove top-level-satisfied clauses and
///     strip level-0-false literals from the survivors.
///  2. *Failed-literal probing + hyper-binary resolution*
///     (probing.cpp). Assume a root of the binary implication graph,
///     propagate: a conflict proves a root unit, and long-clause
///     implications become learnt binaries. Propagation-budgeted,
///     round-robin across passes.
///  3. *Equivalent-literal substitution* (scc.cpp). Literals in one
///     SCC of the binary implication graph are equivalent; every
///     member is rewritten to a representative, shrinking the variable
///     set for all later stages.
///  4. *Backward subsumption + self-subsuming strengthening.* One
///     occurrence-list sweep in SatELite/MiniSat style: a clause C
///     deletes every clause it subsumes and removes `~l` from every
///     clause D with C \ {l} ⊆ D (one flipped literal allowed in the
///     subset check). Binary clauses participate as subsumers; a learnt
///     subsumer of an original clause is first promoted to original so
///     reduceDB cannot delete the only witness of the constraint.
///  5. *Bounded variable elimination* (elimination.cpp). SatELite-
///     style DP resolution of cheap variables, after subsumption so
///     the occurrence/resolvent bounds see a deduplicated database.
///  6. *Learnt-clause vivification.* For each learnt clause (round-
///     robin across passes under a propagation budget), assume the
///     negation of its literals one at a time and propagate: a conflict
///     or an implied literal proves a subset of the clause, which
///     replaces it.
///
/// Stages 3 and 5 remove variables from the search; the witness stack
/// they push (sat/reconstruct.h) and the rules that keep removal sound
/// across the incremental API are the "reconstruction contract" in
/// solver.h. Both are disabled while a ProofTracer is attached;
/// probing's derivations are ordinary RUP lemmas and stay on.
///
/// ## Scope-awareness (why this is sound under retirement)
///
/// Every clause of an encoding scope carries the scope's guard literal
/// `~act`, and guards occur in that one polarity only, so any resolvent
/// or subset derived from scope clauses textually contains the guard —
/// retirement's literal scan deletes it with the scope. The pass
/// preserves that invariant explicitly:
///
///  * Activator literals are never strengthening pivots, never removed
///    from a clause, and never enqueued by a vivification probe. With
///    no positive activator ever assigned, no scope's clauses can
///    propagate anything but their own guard (a dead end: no clause
///    contains a positive activator) or participate in a probe
///    conflict — vivification derivations are scope-free by
///    construction.
///  * A subsumption subset check means the subsumee contains every
///    guard the subsumer carries, so deleting the subsumee never
///    outlives its witness across any retirement order.
///  * Strengthened clauses are rewritten in place and keep their
///    activator tag (ClauseRefView::shrink moves the trailing tag
///    word), so retire()'s fast path and the portfolio's "no tagged
///    clause is ever exported" filter keep working.
///  * A tagged clause is never strengthened against a strictly younger
///    scope's clauses (Options are compared by scope birth), matching
///    the cross-scope layering contract in Solver::addClause.
///  * Frozen variables (soft-clause selectors, assumption handles; see
///    Solver::setFrozen) keep their literals: engine protocols depend
///    on their textual presence, not just on logical equivalence.
///
/// Everything else is equivalence-preserving: subsumption removes
/// implied clauses, and both strengthening flavours replace a clause by
/// an implied subset of itself, so solve results under any assumption
/// set are unchanged — only cheaper to compute.

#include <algorithm>
#include <array>
#include <cassert>
#include <cstdint>
#include <vector>

#include "sat/solver.h"

namespace msu {

namespace {

/// Variable-based Bloom signature: one bit per variable hash, so a
/// flipped literal (self-subsumption pivot) still matches.
std::uint64_t varSignature(std::span<const Lit> lits) {
  std::uint64_t sig = 0;
  for (const Lit p : lits) {
    sig |= std::uint64_t{1} << (static_cast<std::uint32_t>(p.var()) & 63u);
  }
  return sig;
}

/// Subset check with at most one flipped literal, SatELite-style.
/// Returns 0 (no relation), 1 (`c` subsumes `d`) or 2 (`c` self-subsumes
/// `d`: removing `~*flip` strengthens `d`).
int subsumeCheck(std::span<const Lit> c, std::uint64_t sigC,
                 const ClauseRefView d, std::uint64_t sigD, Lit* flip) {
  if (static_cast<int>(c.size()) > d.size() || (sigC & ~sigD) != 0) return 0;
  Lit fl = kUndefLit;
  for (const Lit p : c) {
    bool found = false;
    for (int k = 0; k < d.size(); ++k) {
      if (d[k] == p) {
        found = true;
        break;
      }
      if (d[k] == ~p) {
        if (fl != kUndefLit) return 0;  // two flips: plain resolution
        fl = p;
        found = true;
        break;
      }
    }
    if (!found) return 0;
  }
  if (fl == kUndefLit) return 1;
  *flip = fl;
  return 2;
}

}  // namespace

std::uint64_t Solver::scopeBirthOf(Var tag) const {
  if (tag == kUndefVar) return 0;
  const int slot = scope_index_[tag];
  if (slot < 0) return 0;  // tag no longer names a live scope
  return scopes_[static_cast<std::size_t>(slot)].second.birth;
}

bool Solver::maybeInprocess() {
  if (!opts_.inprocess || !ok_) return ok_;
  if (!inprocessDue()) return true;
  if (budget_.timeExpired()) return true;
  return inprocessPass();
}

bool Solver::inprocessNow() {
  if (!opts_.inprocess || !ok_) return ok_;
  // A pass rewrites the clause database: a warm reused trail
  // (Options::reuse_trail) is explicitly invalidated first, mirroring
  // retirement. solve() itself cancels before its boundary passes.
  if (decisionLevel() > 0) {
    assert(opts_.reuse_trail);
    cancelUntil(0);
  }
  return inprocessPass();
}

bool Solver::inprocessPass() {
  assert(decisionLevel() == 0);
  obs::TraceSpan passSpan(opts_.trace, obs::TraceCat::kInproc, "inprocess");
  inproc_pending_ = false;
  ++stats_.inproc_passes;

  // Stage order: probing first (its units feed everything after), then
  // substitution (a smaller variable set makes every later stage
  // cheaper), subsumption over the rewritten database, elimination
  // (which wants the database already deduplicated so the resolvent
  // bound is meaningful), and vivification last over what remains.
  const bool passOk = inprocPropagateAndStrip() && inprocProbe() &&
                      inprocSubstitute() && inprocSubsume() &&
                      inprocEliminate() && inprocVivify();

  // Drop refs of clauses the pass deleted; the stages only mark them.
  const auto dropDeleted = [&](std::vector<CRef>& refs) {
    std::size_t j = 0;
    for (const CRef ref : refs) {
      if (!arena_[ref].deleted()) refs[j++] = ref;
    }
    refs.resize(j);
  };
  dropDeleted(clauses_);
  dropDeleted(learnts_);

  if (!passOk) return false;

  // Units derived mid-pass may have satisfied further clauses; leave
  // those to the regular simplify() sweep by invalidating its marker.
  if (trailSize() != simp_db_assigns_) {
    rebuildOrderHeap();
    simp_db_assigns_ = -1;
  }
  inproc_last_props_ = stats_.propagations;
  garbageCollectIfNeeded();
  return true;
}

bool Solver::inprocPropagateAndStrip() {
  if (!propagate().isNone()) {
    if (ok_) traceLemma({});
    ok_ = false;
    return false;
  }
  // Satisfied clauses and false literals only appear when the root
  // trail grows; skip the database sweeps (notably the full binary-list
  // walk) when nothing was assigned since the last strip.
  if (trailSize() == inproc_db_assigns_) return true;
  inprocStripList(learnts_);
  if (!ok_) return false;
  inprocStripList(clauses_);
  if (!ok_) return false;
  removeSatisfiedBinaries();
  inproc_db_assigns_ = trailSize();
  return true;
}

void Solver::inprocStripList(std::vector<CRef>& refs) {
  std::size_t j = 0;
  std::vector<Lit> keep;
  for (std::size_t i = 0; i < refs.size(); ++i) {
    const CRef ref = refs[i];
    ClauseRefView c = arena_[ref];
    if (c.deleted()) continue;
    if (!ok_) {
      refs[j++] = ref;
      continue;
    }
    bool sat = false;
    int numFalse = 0;
    for (const Lit p : c.lits()) {
      const lbool v = value(p);
      if (v == lbool::True) {
        sat = true;
        break;
      }
      if (v == lbool::False) ++numFalse;
    }
    if (sat) {
      removeClause(ref);
      ++stats_.inproc_removed_sat;
      continue;
    }
    if (numFalse == 0) {
      refs[j++] = ref;
      continue;
    }
    keep.clear();
    for (const Lit p : c.lits()) {
      if (value(p) != lbool::False) keep.push_back(p);
    }
    if (applyStrengthened(ref, keep, stats_.inproc_strengthened)) {
      refs[j++] = ref;
    }
  }
  refs.resize(j);
}

bool Solver::applyStrengthened(CRef ref, std::span<const Lit> newLits,
                               std::int64_t& shortenedCounter) {
  ClauseRefView c = arena_[ref];
  assert(!c.deleted());

  // Re-filter against the level-0 assignment: units derived earlier in
  // the same pass may have satisfied or falsified literals since the
  // caller computed `newLits`.
  std::vector<Lit> ps;
  ps.reserve(newLits.size());
  bool sat = false;
  for (const Lit p : newLits) {
    const lbool v = value(p);
    if (v == lbool::True) {
      sat = true;
      break;
    }
    if (v != lbool::False) ps.push_back(p);
  }
  if (sat) {
    removeClause(ref);
    ++stats_.inproc_removed_sat;
    return false;
  }
  if (static_cast<int>(ps.size()) == c.size()) return true;  // no-op

  // The clause genuinely shrinks past this point: account it to the
  // caller's counter (strip/subsume -> strengthened, vivify -> vivified)
  // so the stats reflect outcomes, not attempts.
  ++shortenedCounter;
  stats_.inproc_lits_removed +=
      static_cast<std::int64_t>(c.size()) -
      static_cast<std::int64_t>(ps.size());

  traceLemma(ps);
  if (ps.empty()) {
    removeClause(ref);
    ok_ = false;
    return false;
  }
  if (ps.size() == 1) {
    removeClause(ref);
    assert(value(ps[0]) == lbool::Undef);
    uncheckedEnqueue(ps[0]);
    ok_ = propagate().isNone();
    if (!ok_) traceLemma({});
    return false;
  }
  if (ps.size() == 2) {
    const bool learnt = c.learnt();
    removeClause(ref);
    attachBinary(ps[0], ps[1], learnt);
    return false;
  }

  // Rewrite in place: detach, shrink (the activator tag word trails the
  // literals and is preserved), reattach on the first two literals —
  // all of which are unassigned at level 0 after the filter above.
  if (opts_.tracer != nullptr) {
    std::vector<Lit> old(c.lits().begin(), c.lits().end());
    traceDeleted(old);
  }
  detachLong(ref);
  const int oldSize = c.size();
  for (std::size_t k = 0; k < ps.size(); ++k) c[static_cast<int>(k)] = ps[k];
  c.shrink(static_cast<int>(ps.size()));
  arena_.markWastedWords(oldSize - static_cast<int>(ps.size()));
  if (c.learnt() && c.lbd() > static_cast<std::uint32_t>(ps.size())) {
    c.setLbd(static_cast<std::uint32_t>(ps.size()));
  }
  attachClause(ref);
  return true;
}

void Solver::detachLong(CRef ref) {
  ClauseRefView c = arena_[ref];
  const bool w0 = watches_.removeLong(~c[0], ref);
  const bool w1 = watches_.removeLong(~c[1], ref);
  assert(w0 && w1);
  static_cast<void>(w0);
  static_cast<void>(w1);
}

bool Solver::inprocSubsume() {
  /// One backward-subsumption sweep. Occurrence lists, signatures and
  /// candidate order are rebuilt per pass — passes are rare and the
  /// structure must reflect the post-strip database anyway.
  struct Rec {
    CRef ref = kCRefUndef;
    std::uint64_t sig = 0;
    std::uint64_t tagBirth = 0;  ///< 0 = untagged
    std::uint32_t size = 0;
    bool learnt = false;
    bool dead = false;
  };
  if (opts_.inprocess_occ_limit <= 0) return true;  // stage disabled
  // Binary-only databases (common in pure-UP workloads) have nothing to
  // subsume into: binary-vs-binary dedup is not worth the sweep, and
  // building the occurrence structure would be the whole cost.
  if (clauses_.empty() && learnts_.empty()) return true;

  std::vector<Rec> recs;
  recs.reserve(clauses_.size() + learnts_.size());
  // Variable-indexed occurrence lists (MiniSat's `occurs`): a scan of
  // one variable's list sees both polarities, so self-subsumption whose
  // flipped literal is the scan key is still found.
  std::vector<std::vector<int>> occ(static_cast<std::size_t>(numVars()));

  const auto addRecs = [&](const std::vector<CRef>& refs, bool learnt) {
    for (const CRef ref : refs) {
      const ClauseRefView c = arena_[ref];
      if (c.deleted()) continue;
      Rec r;
      r.ref = ref;
      r.sig = varSignature(c.lits());
      r.tagBirth = c.tagged() ? scopeBirthOf(c.tag()) : 0;
      r.size = static_cast<std::uint32_t>(c.size());
      r.learnt = learnt;
      const int id = static_cast<int>(recs.size());
      for (const Lit p : c.lits()) {
        occ[static_cast<std::size_t>(p.var())].push_back(id);
      }
      recs.push_back(r);
    }
  };
  addRecs(clauses_, /*learnt=*/false);
  addRecs(learnts_, /*learnt=*/true);

  std::vector<Lit> scratch;

  // Deletes `rd` as subsumed by the clause `cLits` (a live binary or the
  // clause of `rc`). If the witness is a deletable learnt and the victim
  // is original, the witness is promoted to an original clause first, so
  // reduceDB cannot later remove the constraint's only representative.
  const auto subsume = [&](Rec* rc, Rec& rd) {
    if (rc != nullptr && rc->learnt && !rd.learnt) {
      const ClauseRefView c = arena_[rc->ref];
      // Promote a root-filtered copy: mid-pass units may have falsified
      // interior literals, and a root-satisfied witness needs no
      // promotion at all (both clauses are then permanently satisfied).
      scratch.clear();
      bool satAtRoot = false;
      for (const Lit p : c.lits()) {
        const lbool v = value(p);
        if (v == lbool::True) {
          satAtRoot = true;
          break;
        }
        if (v != lbool::False) scratch.push_back(p);
      }
      // Propagation fixpoints mean an unsatisfied clause keeps >= 2
      // unassigned literals; a root-satisfied witness can stay learnt
      // (both clauses are then permanently satisfied). Anything else
      // would leave the victim without a durable witness: keep it.
      if (!satAtRoot && scratch.size() < 2) return;
      if (!satAtRoot) {
        const Var tag = c.tagged() ? c.tag() : kUndefVar;
        if (scratch.size() == 2) {
          attachBinary(scratch[0], scratch[1], /*learnt=*/false);
          removeClause(rc->ref);
          rc->dead = true;     // lives on outside the arena
          rc->learnt = false;  // later victims must not re-promote it
        } else {
          const CRef fresh = arena_.alloc(scratch, /*learnt=*/false, tag);
          attachClause(fresh);
          clauses_.push_back(fresh);
          removeClause(rc->ref);
          rc->ref = fresh;
          rc->learnt = false;
          rc->size = static_cast<std::uint32_t>(scratch.size());
          rc->sig = varSignature(scratch);
        }
      }
    }
    removeClause(rd.ref);
    rd.dead = true;
    ++stats_.inproc_subsumed;
  };

  // Strengthens `rd` by removing `~flip` (self-subsuming resolution with
  // the subsumer providing `flip`). Scope rules: activator and frozen
  // variables are never pivots, and a tagged victim is never resolved
  // against a strictly younger scope's clause.
  const auto strengthen = [&](std::uint64_t subsumerBirth, Rec& rd, Lit flip) {
    if (is_activator_[flip.var()] != 0 || frozen_[flip.var()] != 0) return;
    if (subsumerBirth > rd.tagBirth) return;
    const ClauseRefView d = arena_[rd.ref];
    scratch.clear();
    for (int k = 0; k < d.size(); ++k) {
      if (d[k] != ~flip) scratch.push_back(d[k]);
    }
    if (applyStrengthened(rd.ref, scratch, stats_.inproc_strengthened)) {
      const ClauseRefView nd = arena_[rd.ref];
      rd.size = static_cast<std::uint32_t>(nd.size());
      rd.sig = varSignature(nd.lits());
    } else {
      rd.dead = true;  // deleted, converted to binary/unit, or satisfied
    }
  };

  // ---- Binary subsumers --------------------------------------------------
  // Each binary clause {a, b} scans occ[a] and occ[~a]: any almost-
  // subsumed clause contains a or ~a, so the two lists cover all cases.
  // Binaries never leave the database outside retirement, so they are
  // safe witnesses without promotion.
  for (int idx = 0; idx < watches_.numLits() && ok_; ++idx) {
    const Lit trigger = Lit::fromIndex(idx);
    const Lit self = ~trigger;
    // Index-based: strengthening a candidate to binary length appends to
    // the binary pool and may relocate this very list.
    for (std::uint32_t b = 0; b < watches_.binList(trigger).size(); ++b) {
      const Lit other = watches_.binList(trigger)[b].implied();
      if (self.index() >= other.index()) continue;  // canonical direction
      const std::array<Lit, 2> bin{self, other};
      const std::uint64_t sigC = varSignature(bin);
      const auto& cands = occ[static_cast<std::size_t>(self.var())];
      if (static_cast<int>(cands.size()) > opts_.inprocess_occ_limit) {
        continue;
      }
      // A scope binary is guard + one literal: its birth is the guard
      // scope's, so the younger-scope rule covers binaries too.
      std::uint64_t binBirth = 0;
      for (const Lit p : bin) {
        if (is_activator_[p.var()] != 0) {
          binBirth = std::max(binBirth, scopeBirthOf(p.var()));
        }
      }
      for (const int di : cands) {
        Rec& rd = recs[static_cast<std::size_t>(di)];
        if (rd.dead || !ok_) continue;
        Lit flip = kUndefLit;
        const int rel = subsumeCheck(bin, sigC, arena_[rd.ref], rd.sig, &flip);
        if (rel == 1) {
          subsume(nullptr, rd);
        } else if (rel == 2) {
          strengthen(binBirth, rd, flip);
        }
      }
    }
  }
  if (!ok_) return false;

  // ---- Long subsumers, smallest first ------------------------------------
  std::vector<int> order(recs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const Rec& ra = recs[static_cast<std::size_t>(a)];
    const Rec& rb = recs[static_cast<std::size_t>(b)];
    if (ra.size != rb.size) return ra.size < rb.size;
    return ra.learnt < rb.learnt;  // prefer original witnesses
  });

  std::vector<Lit> cLits;
  for (const int ci : order) {
    if (!ok_) break;
    Rec& rc = recs[static_cast<std::size_t>(ci)];
    if (rc.dead) continue;
    {
      const ClauseRefView c = arena_[rc.ref];
      if (c.deleted()) {
        rc.dead = true;
        continue;
      }
      cLits.assign(c.lits().begin(), c.lits().end());
      rc.size = static_cast<std::uint32_t>(c.size());  // may have shrunk
    }
    // Scan the occurrence list of the least-occurring variable; every
    // clause `rc` subsumes or self-subsumes contains it (possibly with
    // its literal flipped — the list is variable-indexed).
    Var best = cLits[0].var();
    for (const Lit p : cLits) {
      if (occ[static_cast<std::size_t>(p.var())].size() <
          occ[static_cast<std::size_t>(best)].size()) {
        best = p.var();
      }
    }
    const auto& cands = occ[static_cast<std::size_t>(best)];
    if (static_cast<int>(cands.size()) > opts_.inprocess_occ_limit) continue;
    const std::uint64_t sigC = varSignature(cLits);
    for (const int di : cands) {
      if (di == ci || !ok_) continue;
      Rec& rd = recs[static_cast<std::size_t>(di)];
      if (rd.dead || rd.size < rc.size) continue;
      Lit flip = kUndefLit;
      const int rel =
          subsumeCheck(cLits, sigC, arena_[rd.ref], rd.sig, &flip);
      if (rel == 1) {
        subsume(&rc, rd);
      } else if (rel == 2) {
        strengthen(rc.tagBirth, rd, flip);
        // The victim may have shrunk below the subsumer's size; later
        // subsumers re-check sizes, and stale occ entries are filtered
        // by the full subset check.
      }
    }
  }
  return ok_;
}

bool Solver::inprocVivify() {
  if (opts_.inprocess_viv_props <= 0) return ok_;  // stage disabled
  if (learnts_.empty() || !ok_) return ok_;
  const std::int64_t startProps = stats_.propagations;
  const std::size_t n = learnts_.size();
  if (inproc_viv_cursor_ >= n) inproc_viv_cursor_ = 0;

  std::vector<Lit> oldLits;
  std::vector<Lit> kept;
  std::size_t step = 0;
  inprocessing_ = true;  // probe unwinds must not disturb saved phases
  for (; step < n; ++step) {
    if (stats_.propagations - startProps >= opts_.inprocess_viv_props) break;
    if (!ok_ || budget_.timeExpired()) break;
    const CRef ref = learnts_[(inproc_viv_cursor_ + step) % n];
    ClauseRefView c = arena_[ref];
    if (c.deleted() || c.size() < 3) continue;
    oldLits.assign(c.lits().begin(), c.lits().end());

    // The clause must not serve as its own reason while its negated
    // literals are probed: detach it for the duration.
    detachLong(ref);
    kept.clear();
    bool satisfiedAtRoot = false;
    std::size_t next = 0;
    for (; next < oldLits.size(); ++next) {
      const Lit p = oldLits[next];
      // Guard literals are never probed: with no positive activator
      // ever assigned, scope clauses stay out of every derivation (see
      // the file comment). Frozen literals may be probed — a probe is a
      // throwaway assumption — but are never dropped from the result.
      if (is_activator_[p.var()] != 0) {
        kept.push_back(p);
        continue;
      }
      const lbool v = value(p);
      if (v == lbool::True) {
        if (level(p.var()) == 0) {
          satisfiedAtRoot = true;
        } else {
          kept.push_back(p);  // ¬kept implies p: close the clause here
          ++next;
        }
        break;
      }
      if (v == lbool::False) {
        // Root-false literals are dead whatever their freeze status (the
        // variable is fixed forever); probe-implied ones stay if frozen.
        if (level(p.var()) > 0 && frozen_[p.var()] != 0) kept.push_back(p);
        continue;  // implied false: p is redundant
      }
      newDecisionLevel();
      uncheckedEnqueue(~p);
      if (!propagate().isNone()) {
        kept.push_back(p);  // ¬(kept ∪ {p}) is contradictory
        ++next;
        break;
      }
      kept.push_back(p);
    }
    // An early close proves `kept` alone, but the frozen/guard contract
    // says those literals never leave the clause: carry the tail's over
    // (a weaker — still implied — clause).
    if (!satisfiedAtRoot) {
      for (; next < oldLits.size(); ++next) {
        const Lit p = oldLits[next];
        if (is_activator_[p.var()] != 0 || frozen_[p.var()] != 0) {
          kept.push_back(p);
        }
      }
    }
    cancelUntil(0);

    if (satisfiedAtRoot) {
      removeClause(ref);
      ++stats_.inproc_removed_sat;
      continue;
    }
    // Reattach (literal order is unchanged, so the old watch positions
    // are structurally valid), then route through the common
    // strengthening path even when the probe kept everything: its
    // root-assignment refilter drops literals a mid-pass unit falsified
    // — which may include a frozen watch literal the probe skipped —
    // and re-picks unassigned watches. Shrinks count as vivified.
    attachClause(ref);
    static_cast<void>(applyStrengthened(ref, kept, stats_.inproc_vivified));
  }
  inprocessing_ = false;
  inproc_viv_cursor_ = (inproc_viv_cursor_ + step) % n;
  stats_.inproc_props += stats_.propagations - startProps;
  return ok_;
}

}  // namespace msu
