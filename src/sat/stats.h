/// \file stats.h
/// \brief Counters reported by the CDCL engine; used by benchmarks and by
///        budget accounting.

#pragma once

#include <cstdint>

namespace msu {

/// The one authoritative list of SolverStats counters: forEachField
/// and operator+= are generated from it, so a new counter only has to
/// be added here plus its declaration below.
#define MSU_SOLVER_STATS_FIELDS(X) \
  X(solves)                        \
  X(decisions)                     \
  X(propagations)                  \
  X(conflicts)                     \
  X(restarts)                      \
  X(learnt_clauses)                \
  X(learnt_literals)               \
  X(minimized_literals)            \
  X(removed_clauses)               \
  X(gc_runs)                       \
  X(binary_propagations)           \
  X(long_propagations)             \
  X(blocker_hits)                  \
  X(watch_bytes_visited)           \
  X(promoted_clauses)              \
  X(demoted_clauses)               \
  X(tier_core)                     \
  X(tier_tier2)                    \
  X(tier_local)                    \
  X(retired_scopes)                \
  X(retired_clauses)               \
  X(reclaimed_bytes)               \
  X(recycled_vars)                 \
  X(shared_exported)               \
  X(shared_export_drops)           \
  X(shared_imported)               \
  X(shared_import_drops)           \
  X(shared_import_drains)          \
  X(shared_import_scanned)         \
  X(inproc_passes)                 \
  X(inproc_removed_sat)            \
  X(inproc_subsumed)               \
  X(inproc_strengthened)           \
  X(inproc_vivified)               \
  X(inproc_lits_removed)           \
  X(inproc_props)                  \
  X(inproc_bve_eliminated)         \
  X(inproc_bve_resolvents)         \
  X(inproc_bve_restored)           \
  X(inproc_scc_vars)               \
  X(inproc_scc_rewritten)          \
  X(inproc_probe_probes)           \
  X(inproc_probe_failed)           \
  X(inproc_probe_hbr)              \
  X(reused_trail_lits)             \
  X(restarts_blocked)              \
  X(mode_switches)                 \
  X(mem_bytes)                     \
  X(mem_arena_bytes)               \
  X(mem_watch_bytes)               \
  X(mem_external_bytes)

/// Cumulative CDCL statistics. All counters are monotone over the
/// solver's lifetime except the `tier_*` occupancy gauges, which track
/// the learnt database's current tier populations.
struct SolverStats {
  std::int64_t solves = 0;        ///< calls to solve()
  std::int64_t decisions = 0;     ///< branching decisions
  std::int64_t propagations = 0;  ///< literals propagated (trail pops)
  std::int64_t conflicts = 0;     ///< conflicts analysed
  std::int64_t restarts = 0;      ///< restarts performed
  std::int64_t learnt_clauses = 0;    ///< clauses learnt (total)
  std::int64_t learnt_literals = 0;   ///< literals in learnt clauses
  std::int64_t minimized_literals = 0;  ///< literals removed by minimization
  std::int64_t removed_clauses = 0;   ///< learnt clauses deleted by reduceDB
  std::int64_t gc_runs = 0;           ///< arena garbage collections

  // Propagation-core breakdown (flat watches + binary fast path).
  std::int64_t binary_propagations = 0;  ///< implications via binary watches
  std::int64_t long_propagations = 0;    ///< implications via long clauses
  std::int64_t blocker_hits = 0;         ///< watcher skipped via blocker lit
  std::int64_t watch_bytes_visited = 0;  ///< watcher-entry bytes scanned

  // Tiered learnt-DB accounting (Options::lbd_reduce).
  std::int64_t promoted_clauses = 0;  ///< local/tier2 -> better tier moves
  std::int64_t demoted_clauses = 0;   ///< tier2 -> local aging demotions
  std::int64_t tier_core = 0;         ///< gauge: learnt clauses in core
  std::int64_t tier_tier2 = 0;        ///< gauge: learnt clauses in tier2
  std::int64_t tier_local = 0;        ///< gauge: learnt clauses in local

  // Encoding-lifecycle accounting (Solver::retire).
  std::int64_t retired_scopes = 0;   ///< retire() calls that found a scope
  std::int64_t retired_clauses = 0;  ///< clauses deleted by retirement
  std::int64_t reclaimed_bytes = 0;  ///< clause-storage bytes freed by retire
  std::int64_t recycled_vars = 0;    ///< variables returned to the free list

  // Inter-solver clause sharing (portfolio; Solver::Options::share).
  std::int64_t shared_exported = 0;  ///< learnt clauses published to the pool
  std::int64_t shared_export_drops = 0;  ///< exports refused by the exchange
  std::int64_t shared_imported = 0;      ///< foreign clauses attached
  std::int64_t shared_import_drops = 0;  ///< foreign clauses already sat/void
  std::int64_t shared_import_drains = 0;   ///< level-0 import drains executed
  std::int64_t shared_import_scanned = 0;  ///< publications scanned in drains

  // In-solver inprocessing (Solver::Options::inprocess).
  std::int64_t inproc_passes = 0;       ///< inprocessing passes executed
  std::int64_t inproc_removed_sat = 0;  ///< top-level-satisfied clauses removed
  std::int64_t inproc_subsumed = 0;     ///< clauses deleted by subsumption
  std::int64_t inproc_strengthened = 0;  ///< clauses shortened by strengthening
  std::int64_t inproc_vivified = 0;      ///< learnt clauses shortened by vivify
  std::int64_t inproc_lits_removed = 0;  ///< literals removed by inprocessing
  std::int64_t inproc_props = 0;  ///< propagations spent in vivify probes

  // Round-two inprocessing passes: bounded variable elimination,
  // SCC equivalent-literal substitution, failed-literal probing with
  // hyper-binary resolution (see inprocess/elimination/scc/probing
  // .cpp and the reconstruction contract in solver.h).
  std::int64_t inproc_bve_eliminated = 0;  ///< variables eliminated by BVE
  std::int64_t inproc_bve_resolvents = 0;  ///< resolvent clauses added by BVE
  std::int64_t inproc_bve_restored = 0;   ///< eliminated vars restored on reuse
  std::int64_t inproc_scc_vars = 0;       ///< variables substituted by a root
  std::int64_t inproc_scc_rewritten = 0;  ///< clauses rewritten by substitution
  std::int64_t inproc_probe_probes = 0;   ///< failed-literal probes attempted
  std::int64_t inproc_probe_failed = 0;   ///< failed literals (root units won)
  std::int64_t inproc_probe_hbr = 0;      ///< hyper-binary resolvents attached

  // Warm-started oracle calls + adaptive restarts (Options::reuse_trail
  // / Options::ema_restarts). restart_mode is a gauge: 0 = Luby,
  // 1 = geometric, 2 = EMA focused phase, 3 = EMA stable phase.
  std::int64_t reused_trail_lits = 0;  ///< trail literals kept across solves
  std::int64_t restart_mode = 0;       ///< gauge: current restart policy
  std::int64_t restarts_blocked = 0;   ///< EMA restarts vetoed by trail depth
  std::int64_t mode_switches = 0;      ///< stable/focused phase flips

  // Cooperative memory accounting (Budget::setMaxMemory / SolveService
  // job caps). A gauge: the solver's current clause-storage footprint —
  // arena words, watch-table pools, per-variable state and bookkeeping
  // vectors — refreshed at budget poll sites and at solve() exit.
  // Summing across portfolio workers yields the combined footprint.
  std::int64_t mem_bytes = 0;  ///< gauge: accounted solver bytes

  // Breakdown gauges under mem_bytes (same refresh points): the clause
  // arena's backing store, the watch-table pools + header table, and
  // the bytes an owning layer charged to this solver via
  // Options::external_mem_bytes (parse buffers, formula storage).
  std::int64_t mem_arena_bytes = 0;     ///< gauge: clause-arena bytes
  std::int64_t mem_watch_bytes = 0;     ///< gauge: watch-table bytes
  std::int64_t mem_external_bytes = 0;  ///< gauge: externally charged bytes

  /// Invokes `f(name, value)` for every counter, in declaration order.
  /// Benches and tables build their field lists through this.
  template <typename F>
  void forEachField(F&& f) const {
#define MSU_STATS_VISIT(name) f(#name, name);
    MSU_SOLVER_STATS_FIELDS(MSU_STATS_VISIT)
#undef MSU_STATS_VISIT
    f("restart_mode", restart_mode);
  }

  /// Field-wise sum. The `tier_*` gauges are included on purpose —
  /// summing them across solvers yields the combined live-clause
  /// population — but `restart_mode` is a categorical gauge (a mode
  /// enum, not a quantity): merges keep the receiver's value, so a
  /// portfolio merge reports the decisive worker's mode.
  SolverStats& operator+=(const SolverStats& o) {
#define MSU_STATS_ADD(name) name += o.name;
    MSU_SOLVER_STATS_FIELDS(MSU_STATS_ADD)
#undef MSU_STATS_ADD
    return *this;
  }
};

}  // namespace msu
