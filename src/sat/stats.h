/// \file stats.h
/// \brief Counters reported by the CDCL engine; used by benchmarks and by
///        budget accounting.

#pragma once

#include <cstdint>

namespace msu {

/// Cumulative CDCL statistics (monotone over the solver's lifetime).
struct SolverStats {
  std::int64_t solves = 0;        ///< calls to solve()
  std::int64_t decisions = 0;     ///< branching decisions
  std::int64_t propagations = 0;  ///< literals propagated
  std::int64_t conflicts = 0;     ///< conflicts analysed
  std::int64_t restarts = 0;      ///< restarts performed
  std::int64_t learnt_clauses = 0;    ///< clauses learnt (total)
  std::int64_t learnt_literals = 0;   ///< literals in learnt clauses
  std::int64_t minimized_literals = 0;  ///< literals removed by minimization
  std::int64_t removed_clauses = 0;   ///< learnt clauses deleted by reduceDB
  std::int64_t gc_runs = 0;           ///< arena garbage collections
};

}  // namespace msu
