/// \file fault.h
/// \brief Deterministic fault injection for robustness testing of the
///        cooperative-budget machinery and the SolveService layer.
///
/// A FaultInjector is a small counter box the solver consults at three
/// well-defined points — compiled in unconditionally (the checks are a
/// null-pointer test plus an increment), but inert unless an injector
/// is attached via Solver::Options::fault AND armed by setting one of
/// the trigger counts. Faults are *cooperative*, like every other
/// budget mechanism in this library: they never corrupt state, they
/// only force the solver down its existing abort paths, so a test can
/// drive "the allocator failed at exactly the Nth clause" or "the
/// budget expired between these two polls" bit-for-bit reproducibly.
///
/// Trigger points:
///  * **Budget poll** (`onPoll`): the amortized budget checks in
///    search()/solve(). Arming `expire_at_poll = N` makes the Nth poll
///    report the budget as expired (AbortReason::kFault), simulating a
///    deadline that lands between two specific poll sites.
///  * **Arena allocation** (`onAlloc`): clause allocation in
///    addClause()/recordLearnt()/imports. Arming `fail_alloc_at = N`
///    makes the Nth allocation "fail": the solver treats it exactly
///    like its cooperative memory cap tripping (AbortReason::kMemory)
///    — the clause is still stored (nothing is ever half-constructed),
///    but the solve unwinds at the next poll.
///  * **Solve entry** (`onSolve`): Arming `unknown_at_solve = N` makes
///    the Nth solve() return lbool::Undef immediately
///    (AbortReason::kFault), simulating a spurious oracle give-up —
///    the failure mode MaxSAT engines must survive without corrupting
///    their bound accounting.
///
/// Counters are atomics so a service test can share one injector
/// across a job's engine (one solver per job; the watchdog thread may
/// read the counters concurrently). Determinism holds per job: each
/// job's solver increments its own injector's counters in program
/// order.

#pragma once

#include <atomic>
#include <cstdint>

namespace msu {

/// Deterministic fault-injection counter box (see the file comment).
/// All triggers are off (0) by default; a default-constructed injector
/// attached to a solver changes nothing.
class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Arms: force the Nth budget poll (1-based) to report expiry.
  /// 0 disarms.
  void expireAtPoll(std::int64_t n) { expire_at_poll_ = n; }

  /// Arms: simulate allocation failure at the Nth arena allocation
  /// (1-based). 0 disarms.
  void failAllocAt(std::int64_t n) { fail_alloc_at_ = n; }

  /// Arms: make the Nth solve() (1-based) return Undef immediately.
  /// 0 disarms.
  void unknownAtSolve(std::int64_t n) { unknown_at_solve_ = n; }

  /// Budget-poll hook: true iff this poll must report expiry.
  [[nodiscard]] bool onPoll() {
    const std::int64_t n = polls_.fetch_add(1, std::memory_order_relaxed) + 1;
    return expire_at_poll_ > 0 && n >= expire_at_poll_;
  }

  /// Arena-allocation hook: true iff this allocation must "fail".
  [[nodiscard]] bool onAlloc() {
    const std::int64_t n = allocs_.fetch_add(1, std::memory_order_relaxed) + 1;
    return fail_alloc_at_ > 0 && n >= fail_alloc_at_;
  }

  /// Solve-entry hook: true iff this solve must return Undef.
  [[nodiscard]] bool onSolve() {
    const std::int64_t n = solves_.fetch_add(1, std::memory_order_relaxed) + 1;
    return unknown_at_solve_ > 0 && n == unknown_at_solve_;
  }

  /// Counters seen so far (tests assert against these).
  [[nodiscard]] std::int64_t polls() const {
    return polls_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t allocs() const {
    return allocs_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t solves() const {
    return solves_.load(std::memory_order_relaxed);
  }

 private:
  // Trigger thresholds (0 = disarmed). Plain ints: armed before the
  // solve starts, read-only afterwards.
  std::int64_t expire_at_poll_ = 0;
  std::int64_t fail_alloc_at_ = 0;
  std::int64_t unknown_at_solve_ = 0;

  std::atomic<std::int64_t> polls_{0};
  std::atomic<std::int64_t> allocs_{0};
  std::atomic<std::int64_t> solves_{0};
};

}  // namespace msu
