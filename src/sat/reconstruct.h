/// \file reconstruct.h
/// \brief Model-reconstruction witness stack for variable-eliminating
///        inprocessing (bounded variable elimination and equivalent-
///        literal substitution in inprocess/elimination/scc.cpp).
///
/// Eliminating a variable removes every clause over it from the search,
/// which is satisfiability-preserving but not model-preserving: a model
/// of the reduced formula says nothing about the eliminated variable,
/// and may even falsify some of the removed clauses unless the variable
/// is given the right value. The classic fix (SatELite; CaDiCaL's
/// "extender") is a *witness stack*: every removing transformation
/// pushes, in order, entries of the form
///
///     (witness literal w, clause C)   with   w ∈ C
///
/// meaning "if C is not already satisfied by the model built so far,
/// flip the model so that w holds". Replaying the stack from the most
/// recent entry to the oldest extends any model of the current database
/// to a model of every formula the solver ever held:
///
///  * Bounded variable elimination of v pushes all removed clauses
///    containing v with witness v, then all containing ¬v with witness
///    ¬v. At most one polarity's clauses can be unsatisfied by a model
///    of the resolvents (two unsatisfied clauses of opposite polarity
///    would have a false resolvent), so the flips never conflict.
///  * Equivalent-literal substitution x := r pushes the two halves of
///    the equivalence, (x, {x, ¬r}) and (¬x, {¬x, r}), which replay to
///    exactly x = r under any value of r.
///
/// Replay order matters and is what makes interleaved passes compose:
/// an entry's clause may mention variables removed *later*; their
/// entries sit above it on the stack and have already fixed those
/// variables by the time the older entry is evaluated.
///
/// Entries pushed by elimination are *restorable*: when the solver must
/// bring an eliminated variable back (a new clause or an assumption
/// names it), its entries are extracted — in push order, preserving the
/// rest of the stack — and their clauses re-added to the database.
/// Substitution entries are not restorable; the literal mapping is
/// permanent and future references are rewritten instead.
///
/// The solver guarantees (see the reconstruction contract in solver.h)
/// that no witness entry ever references a scope-owned or activator
/// variable, so scope retirement and variable recycling never
/// invalidate the stack.

#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "cnf/literal.h"

namespace msu {

/// Stack of (witness literal, clause) entries; see the file comment.
class WitnessStack {
 public:
  /// Pushes one witness entry. `clause` must contain `witness`.
  void pushClause(Lit witness, std::span<const Lit> clause,
                  bool restorable) {
    Entry e;
    e.witness = witness;
    e.begin = static_cast<std::uint32_t>(lits_.size());
    e.len = static_cast<std::uint32_t>(clause.size());
    e.restorable = restorable;
    lits_.insert(lits_.end(), clause.begin(), clause.end());
    entries_.push_back(e);
  }

  /// Pushes the two halves of the equivalence x := r (not restorable).
  void pushSubstitution(Lit x, Lit r) {
    const std::array<Lit, 2> pos{x, ~r};
    const std::array<Lit, 2> neg{~x, r};
    pushClause(x, pos, /*restorable=*/false);
    pushClause(~x, neg, /*restorable=*/false);
  }

  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Extends `model` (indexed by variable) to satisfy every removed
  /// clause: replays the stack newest-to-oldest, flipping each witness
  /// whose clause is not already satisfied. An undefined model value
  /// never counts as satisfying a literal.
  void extend(std::vector<lbool>& model) const {
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
      bool sat = false;
      for (std::uint32_t k = 0; k < it->len; ++k) {
        const Lit p = lits_[it->begin + k];
        if (applySign(model[static_cast<std::size_t>(p.var())], p) ==
            lbool::True) {
          sat = true;
          break;
        }
      }
      if (!sat) {
        const Lit w = it->witness;
        model[static_cast<std::size_t>(w.var())] =
            toLbool(w.positive());
      }
    }
  }

  /// Moves every restorable entry whose witness is over `v` into `out`
  /// (clauses in push order) and compacts the remaining entries without
  /// reordering them. Used when an eliminated variable re-enters the
  /// database.
  void extractRestorable(Var v, std::vector<std::vector<Lit>>& out) {
    std::vector<Lit> freshLits;
    std::vector<Entry> freshEntries;
    freshLits.reserve(lits_.size());
    freshEntries.reserve(entries_.size());
    for (const Entry& e : entries_) {
      const auto clause =
          std::span<const Lit>(lits_.data() + e.begin, e.len);
      if (e.restorable && e.witness.var() == v) {
        out.emplace_back(clause.begin(), clause.end());
        continue;
      }
      Entry kept = e;
      kept.begin = static_cast<std::uint32_t>(freshLits.size());
      freshLits.insert(freshLits.end(), clause.begin(), clause.end());
      freshEntries.push_back(kept);
    }
    lits_ = std::move(freshLits);
    entries_ = std::move(freshEntries);
  }

  /// True iff any entry (witness or clause literal) references a marked
  /// variable. Debug aid: retirement asserts the recycled variables are
  /// absent from the stack before recycling them.
  [[nodiscard]] bool referencesAny(const std::vector<char>& marked) const {
    for (const Entry& e : entries_) {
      if (marked[static_cast<std::size_t>(e.witness.var())] != 0) return true;
      for (std::uint32_t k = 0; k < e.len; ++k) {
        const Lit p = lits_[e.begin + k];
        if (marked[static_cast<std::size_t>(p.var())] != 0) return true;
      }
    }
    return false;
  }

  /// Backing-store footprint, for the solver's memory accounting.
  [[nodiscard]] std::int64_t bytes() const {
    return static_cast<std::int64_t>(lits_.capacity() * sizeof(Lit) +
                                     entries_.capacity() * sizeof(Entry));
  }

  void clear() {
    lits_.clear();
    entries_.clear();
  }

 private:
  struct Entry {
    Lit witness;
    std::uint32_t begin = 0;
    std::uint32_t len = 0;
    bool restorable = false;
  };

  std::vector<Lit> lits_;
  std::vector<Entry> entries_;
};

}  // namespace msu
