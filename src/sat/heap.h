/// \file heap.h
/// \brief Indexed binary max-heap over variables ordered by activity,
///        as used by the VSIDS decision heuristic.

#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "cnf/literal.h"

namespace msu {

/// Max-heap of variables keyed by an external activity array. Supports
/// decrease/increase-key via `update` and membership queries in O(1).
class VarOrderHeap {
 public:
  explicit VarOrderHeap(const std::vector<double>& activity)
      : activity_(activity) {}

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] int size() const { return static_cast<int>(heap_.size()); }

  [[nodiscard]] bool contains(Var v) const {
    return v < static_cast<Var>(indices_.size()) && indices_[v] >= 0;
  }

  /// Inserts `v` (must not be present).
  void insert(Var v) {
    growIndex(v);
    assert(!contains(v));
    indices_[v] = static_cast<int>(heap_.size());
    heap_.push_back(v);
    siftUp(indices_[v]);
  }

  /// Re-establishes heap order after `v`'s activity increased (no-op when
  /// absent).
  void update(Var v) {
    if (!contains(v)) return;
    siftUp(indices_[v]);
    siftDown(indices_[v]);
  }

  /// Removes and returns the variable with maximum activity.
  [[nodiscard]] Var removeMax() {
    assert(!empty());
    Var top = heap_[0];
    Var last = heap_.back();
    heap_.pop_back();
    indices_[top] = -1;
    if (!heap_.empty()) {
      heap_[0] = last;
      indices_[last] = 0;
      siftDown(0);
    }
    return top;
  }

  /// Rebuilds the heap from an explicit variable list.
  void build(const std::vector<Var>& vars) {
    for (Var v : heap_) indices_[v] = -1;
    heap_.clear();
    for (Var v : vars) {
      growIndex(v);
      indices_[v] = static_cast<int>(heap_.size());
      heap_.push_back(v);
    }
    for (int i = static_cast<int>(heap_.size()) / 2 - 1; i >= 0; --i) {
      siftDown(i);
    }
  }

 private:
  void growIndex(Var v) {
    if (v >= static_cast<Var>(indices_.size())) {
      indices_.resize(static_cast<std::size_t>(v) + 1, -1);
    }
  }

  [[nodiscard]] bool lt(Var a, Var b) const {
    return activity_[a] > activity_[b];  // max-heap on activity
  }

  void siftUp(int i) {
    Var v = heap_[i];
    while (i > 0) {
      int parent = (i - 1) / 2;
      if (!lt(v, heap_[parent])) break;
      heap_[i] = heap_[parent];
      indices_[heap_[i]] = i;
      i = parent;
    }
    heap_[i] = v;
    indices_[v] = i;
  }

  void siftDown(int i) {
    Var v = heap_[i];
    const int n = static_cast<int>(heap_.size());
    while (true) {
      int child = 2 * i + 1;
      if (child >= n) break;
      if (child + 1 < n && lt(heap_[child + 1], heap_[child])) ++child;
      if (!lt(heap_[child], v)) break;
      heap_[i] = heap_[child];
      indices_[heap_[i]] = i;
      i = child;
    }
    heap_[i] = v;
    indices_[v] = i;
  }

  const std::vector<double>& activity_;
  std::vector<Var> heap_;
  std::vector<int> indices_;  // var -> position or -1
};

}  // namespace msu
