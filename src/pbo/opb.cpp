#include "pbo/opb.h"

#include <algorithm>
#include <cstdint>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <string_view>
#include <vector>

#include "cnf/fastparse.h"

namespace msu {

namespace {

/// Splits the input into whitespace-separated tokens, dropping `*`
/// comment lines. Legacy path only (readOpbLegacy).
std::vector<std::string> tokenize(std::istream& in) {
  std::vector<std::string> tokens;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] == '*') continue;
    std::istringstream ls(line);
    std::string tok;
    while (ls >> tok) tokens.push_back(tok);
  }
  return tokens;
}

[[nodiscard]] bool isRelop(const std::string& tok) {
  return tok == ">=" || tok == "<=" || tok == "=";
}

/// Parses an integer coefficient like "+3", "-12", "7".
[[nodiscard]] Weight parseCoeff(const std::string& tok) {
  try {
    std::size_t pos = 0;
    const long long v = std::stoll(tok, &pos);
    if (pos != tok.size()) throw OpbError("bad coefficient: " + tok);
    return static_cast<Weight>(v);
  } catch (const OpbError&) {
    throw;
  } catch (...) {
    throw OpbError("bad coefficient: " + tok);
  }
}

/// Parses a literal token "x12" or "~x12" (1-based).
[[nodiscard]] Lit parseLitToken(const std::string& tok) {
  std::string body = tok;
  bool negated = false;
  if (!body.empty() && body[0] == '~') {
    negated = true;
    body.erase(body.begin());
  }
  if (body.size() < 2 || body[0] != 'x') {
    throw OpbError("bad variable: " + tok);
  }
  try {
    std::size_t pos = 0;
    const long long id = std::stoll(body.substr(1), &pos);
    if (pos != body.size() - 1 || id <= 0) {
      throw OpbError("bad variable: " + tok);
    }
    return mkLit(static_cast<Var>(id - 1), negated);
  } catch (const OpbError&) {
    throw;
  } catch (...) {
    throw OpbError("bad variable: " + tok);
  }
}

[[nodiscard]] bool isRelopView(std::string_view tok) {
  return tok == ">=" || tok == "<=" || tok == "=";
}

/// Zero-copy twin of parseCoeff over a buffer token.
[[nodiscard]] Weight parseCoeffView(std::string_view tok) {
  std::size_t i = 0;
  bool neg = false;
  if (!tok.empty() && (tok[0] == '+' || tok[0] == '-')) {
    neg = tok[0] == '-';
    i = 1;
  }
  if (i == tok.size()) throw OpbError("bad coefficient: " + std::string(tok));
  std::uint64_t v = 0;
  for (; i < tok.size(); ++i) {
    const char ch = tok[i];
    if (ch < '0' || ch > '9') {
      throw OpbError("bad coefficient: " + std::string(tok));
    }
    v = v * 10 + static_cast<std::uint64_t>(ch - '0');
  }
  const std::uint64_t lim =
      static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max()) +
      (neg ? 1u : 0u);
  if (tok.size() > 20 || v > lim) {
    throw OpbError("bad coefficient: " + std::string(tok));
  }
  return neg ? -static_cast<Weight>(v) : static_cast<Weight>(v);
}

/// Zero-copy twin of parseLitToken: "x12" or "~x12" (1-based).
[[nodiscard]] Lit parseLitTokenView(std::string_view tok) {
  std::string_view body = tok;
  bool negated = false;
  if (!body.empty() && body[0] == '~') {
    negated = true;
    body.remove_prefix(1);
  }
  if (body.size() < 2 || body[0] != 'x') {
    throw OpbError("bad variable: " + std::string(tok));
  }
  body.remove_prefix(1);
  std::uint64_t id = 0;
  for (const char ch : body) {
    if (ch < '0' || ch > '9') throw OpbError("bad variable: " + std::string(tok));
    id = id * 10 + static_cast<std::uint64_t>(ch - '0');
  }
  constexpr std::uint64_t kMaxVarId =
      std::numeric_limits<std::int32_t>::max() / 2;
  if (id == 0 || body.size() > 19 || id > kMaxVarId) {
    throw OpbError("bad variable: " + std::string(tok));
  }
  return mkLit(static_cast<Var>(id - 1), negated);
}

/// The live OPB parser: one pointer-bumping pass over the buffer.
PboProblem parseOpbBuffer(const InputBuffer& buf) {
  FastCursor cur(buf, '*', /*percentEndsInput=*/false);
  PboProblem problem;
  Var maxVar = -1;

  const auto noteVar = [&maxVar](Lit p) { maxVar = std::max(maxVar, p.var()); };

  std::string_view tok = cur.readWord();

  // Optional objective.
  if (tok == "min:") {
    tok = cur.readWord();
    while (!tok.empty() && tok != ";") {
      const std::string_view litTok = cur.readWord();
      if (litTok.empty()) throw OpbError("truncated objective");
      const Weight coeff = parseCoeffView(tok);
      const Lit lit = parseLitTokenView(litTok);
      noteVar(lit);
      if (coeff >= 0) {
        if (coeff > 0) problem.objective.push_back({lit, coeff});
      } else {
        // -c*l == -c + c*(~l) with c = -coeff > 0.
        problem.objective.push_back({~lit, -coeff});
        problem.objectiveOffset += coeff;
      }
      tok = cur.readWord();
    }
    if (tok.empty()) throw OpbError("objective missing ';'");
    tok = cur.readWord();
  }

  // Constraints.
  while (!tok.empty()) {
    std::vector<PbTerm> terms;
    while (!tok.empty() && !isRelopView(tok)) {
      const std::string_view litTok = cur.readWord();
      if (litTok.empty()) throw OpbError("truncated constraint");
      const Weight coeff = parseCoeffView(tok);
      const Lit lit = parseLitTokenView(litTok);
      noteVar(lit);
      terms.push_back({lit, coeff});
      tok = cur.readWord();
    }
    if (tok.empty()) throw OpbError("constraint missing relation");
    const std::string_view relop = tok;
    const std::string_view boundTok = cur.readWord();
    if (boundTok.empty()) throw OpbError("constraint missing bound");
    const Weight bound = parseCoeffView(boundTok);
    if (cur.readWord() != ";") throw OpbError("constraint missing ';'");

    if (relop == "<=" || relop == "=") {
      problem.constraints.push_back({terms, bound});
    }
    if (relop == ">=" || relop == "=") {
      // sum(c*l) >= b  <=>  sum(-c*l) <= -b.
      std::vector<PbTerm> flipped = terms;
      for (PbTerm& t : flipped) t.coeff = -t.coeff;
      problem.constraints.push_back({std::move(flipped), -bound});
    }
    tok = cur.readWord();
  }

  problem.numVars = maxVar + 1;
  return problem;
}

}  // namespace

PboProblem readOpb(std::istream& in) {
  return parseOpbBuffer(InputBuffer::fromStream(in));
}

PboProblem parseOpb(const std::string& text) {
  return parseOpbBuffer(InputBuffer::borrow(text.data(), text.size()));
}

PboProblem loadOpb(const std::string& path) {
  try {
    return parseOpbBuffer(InputBuffer::fromFile(path));
  } catch (const DimacsError& e) {
    throw OpbError(e.what());  // I/O failures surface as this module's error
  }
}

PboProblem readOpbLegacy(std::istream& in) {
  const std::vector<std::string> tokens = tokenize(in);
  PboProblem problem;
  std::size_t i = 0;
  Var maxVar = -1;

  auto noteVar = [&](Lit p) { maxVar = std::max(maxVar, p.var()); };

  // Optional objective.
  if (i < tokens.size() && tokens[i] == "min:") {
    ++i;
    while (i < tokens.size() && tokens[i] != ";") {
      if (i + 1 >= tokens.size()) throw OpbError("truncated objective");
      const Weight coeff = parseCoeff(tokens[i]);
      const Lit lit = parseLitToken(tokens[i + 1]);
      noteVar(lit);
      if (coeff >= 0) {
        if (coeff > 0) problem.objective.push_back({lit, coeff});
      } else {
        // -c*l == -c + c*(~l) with c = -coeff > 0.
        problem.objective.push_back({~lit, -coeff});
        problem.objectiveOffset += coeff;
      }
      i += 2;
    }
    if (i == tokens.size()) throw OpbError("objective missing ';'");
    ++i;  // consume ';'
  }

  // Constraints.
  while (i < tokens.size()) {
    std::vector<PbTerm> terms;
    while (i < tokens.size() && !isRelop(tokens[i])) {
      if (i + 1 >= tokens.size()) throw OpbError("truncated constraint");
      const Weight coeff = parseCoeff(tokens[i]);
      const Lit lit = parseLitToken(tokens[i + 1]);
      noteVar(lit);
      terms.push_back({lit, coeff});
      i += 2;
    }
    if (i >= tokens.size()) throw OpbError("constraint missing relation");
    const std::string relop = tokens[i++];
    if (i >= tokens.size()) throw OpbError("constraint missing bound");
    const Weight bound = parseCoeff(tokens[i++]);
    if (i >= tokens.size() || tokens[i] != ";") {
      throw OpbError("constraint missing ';'");
    }
    ++i;

    if (relop == "<=" || relop == "=") {
      problem.constraints.push_back({terms, bound});
    }
    if (relop == ">=" || relop == "=") {
      // sum(c*l) >= b  <=>  sum(-c*l) <= -b.
      std::vector<PbTerm> flipped = terms;
      for (PbTerm& t : flipped) t.coeff = -t.coeff;
      problem.constraints.push_back({std::move(flipped), -bound});
    }
  }

  problem.numVars = maxVar + 1;
  return problem;
}

void writeOpb(std::ostream& out, const PboProblem& problem) {
  out << "* #variable= " << problem.numVars
      << " #constraint= " << problem.constraints.size() << "\n";
  if (problem.objectiveOffset != 0) {
    out << "* objective offset " << problem.objectiveOffset
        << " (not expressible in OPB; optimum values shift by it)\n";
  }
  if (!problem.objective.empty()) {
    out << "min:";
    for (const PbTerm& t : problem.objective) {
      // Re-expand complemented literals: c*(~x) == c - c*x; the constant
      // joins the (comment-only) offset.
      if (t.lit.positive()) {
        out << " +" << t.coeff << " x" << t.lit.var() + 1;
      } else {
        out << " -" << t.coeff << " x" << t.lit.var() + 1;
      }
    }
    out << " ;\n";
  }
  for (const PbConstraint& pc : problem.constraints) {
    bool first = true;
    Weight bound = pc.bound;
    for (const PbTerm& t : pc.terms) {
      Weight coeff = t.coeff;
      Var v = t.lit.var();
      if (t.lit.negative()) {
        // c*(~x) == c - c*x: move the constant to the bound.
        bound -= coeff;
        coeff = -coeff;
      }
      out << (first ? "" : " ") << (coeff >= 0 ? "+" : "") << coeff << " x"
          << v + 1;
      first = false;
    }
    if (pc.terms.empty()) out << "0 x1";
    out << " <= " << bound << " ;\n";
  }
  // Clauses are not representable in pure OPB; emit them as >= 1
  // pseudo-Boolean constraints.
  for (const Clause& c : problem.clauses) {
    bool first = true;
    Weight bound = 1;
    for (const Lit p : c) {
      Weight coeff = 1;
      if (p.negative()) {
        bound -= 1;
        coeff = -1;
      }
      out << (first ? "" : " ") << (coeff >= 0 ? "+" : "") << coeff << " x"
          << p.var() + 1;
      first = false;
    }
    if (c.empty()) out << "+1 x1 -1 x1";
    out << " >= " << bound << " ;\n";
  }
}

}  // namespace msu
