/// \file maxsat_pbo.h
/// \brief The paper's "pbo" baseline (§2.2): translate MaxSAT to PBO by
///        adding one blocking variable per soft clause and minimizing the
///        number of blocking variables set to 1, then solve with the
///        minisat+-style PBO engine. This is the formulation the paper
///        shows does not scale (every clause pays a blocking variable up
///        front), which msu4 is designed to avoid.

#pragma once

#include "core/maxsat.h"
#include "pbo/pbo_solver.h"

namespace msu {

/// Options for the PBO-based MaxSAT baseline.
struct PboMaxSatOptions {
  Budget budget;
  PbEncoding encoding = PbEncoding::Bdd;
  Solver::Options sat;
};

/// MaxSAT via the PBO formulation. Handles weighted instances natively
/// (weights become objective coefficients).
class PboMaxSatSolver final : public MaxSatSolver {
 public:
  explicit PboMaxSatSolver(PboMaxSatOptions options = {});

  [[nodiscard]] std::string name() const override;

  [[nodiscard]] MaxSatResult solve(const WcnfFormula& formula) override;

  /// The translation itself (exposed for tests and documentation):
  /// clause `w_i` becomes `w_i ∨ b_i`, objective = sum(weight_i * b_i).
  [[nodiscard]] static PboProblem toPbo(const WcnfFormula& formula);

 private:
  PboMaxSatOptions opts_;
};

}  // namespace msu
