#include "pbo/maxsat_pbo.h"

namespace msu {

PboMaxSatSolver::PboMaxSatSolver(PboMaxSatOptions options) : opts_(options) {}

std::string PboMaxSatSolver::name() const {
  return std::string("pbo-") + toString(opts_.encoding);
}

PboProblem PboMaxSatSolver::toPbo(const WcnfFormula& formula) {
  PboProblem p;
  p.numVars = formula.numVars();
  for (const Clause& h : formula.hard()) p.clauses.push_back(h);
  int nextVar = formula.numVars();
  for (const SoftClause& s : formula.soft()) {
    const Lit b = posLit(nextVar++);
    Clause c = s.lits;
    c.push_back(b);
    p.clauses.push_back(std::move(c));
    p.objective.push_back(PbTerm{b, s.weight});
  }
  p.numVars = nextVar;
  return p;
}

MaxSatResult PboMaxSatSolver::solve(const WcnfFormula& formula) {
  MaxSatResult result;
  const PboProblem problem = toPbo(formula);

  PboOptions po;
  po.budget = opts_.budget;
  po.encoding = opts_.encoding;
  po.sat = opts_.sat;
  PboSolver pbo(po);
  const PboResult pr = pbo.solve(problem);

  result.iterations = pr.iterations;
  result.satCalls = pr.iterations;
  result.satStats = pr.satStats;
  switch (pr.status) {
    case PboStatus::Optimum:
      result.status = MaxSatStatus::Optimum;
      result.cost = pr.objective;
      result.lowerBound = pr.objective;
      result.upperBound = pr.objective;
      break;
    case PboStatus::Infeasible:
      result.status = MaxSatStatus::UnsatisfiableHard;
      break;
    case PboStatus::Unknown:
      result.status = MaxSatStatus::Unknown;
      result.lowerBound = 0;
      result.upperBound = pr.model.empty() ? formula.totalSoftWeight()
                                           : pr.upperBound;
      break;
  }
  if (!pr.model.empty()) {
    // Truncate to the original variables (blocking variables come after).
    result.model.assign(pr.model.begin(),
                        pr.model.begin() + formula.numVars());
  }
  return result;
}

}  // namespace msu
