#include "pbo/pbo_solver.h"

#include "encodings/sink.h"

namespace msu {

PboSolver::PboSolver(PboOptions options) : opts_(options) {}

PboResult PboSolver::solve(const PboProblem& problem) {
  PboResult result;
  Solver sat(opts_.sat);
  sat.setBudget(opts_.budget);
  SolverSink sink(sat);

  while (sat.numVars() < problem.numVars) static_cast<void>(sat.newVar());
  for (const Clause& c : problem.clauses) static_cast<void>(sat.addClause(c));
  for (const PbConstraint& pc : problem.constraints) {
    encodePbLeq(sink, pc.terms, pc.bound, opts_.encoding);
  }

  Weight best = 0;
  bool haveModel = false;
  Assignment bestModel;

  auto objectiveValue = [&](const std::vector<lbool>& model) {
    Weight v = 0;
    for (const PbTerm& t : problem.objective) {
      if (applySign(model[static_cast<std::size_t>(t.lit.var())], t.lit) ==
          lbool::True) {
        v += t.coeff;
      }
    }
    return v;
  };

  while (true) {
    ++result.iterations;
    const lbool st = sat.solve();
    if (st == lbool::Undef) {
      result.status = PboStatus::Unknown;
      break;
    }
    if (st == lbool::False) {
      result.status = haveModel ? PboStatus::Optimum : PboStatus::Infeasible;
      break;
    }
    best = objectiveValue(sat.model());
    haveModel = true;
    bestModel.assign(sat.model().begin(),
                     sat.model().begin() + problem.numVars);
    for (lbool& v : bestModel) {
      if (v == lbool::Undef) v = lbool::False;
    }
    if (best == 0) {
      result.status = PboStatus::Optimum;
      break;
    }
    // Strengthen: demand a strictly better objective value.
    encodePbLeq(sink, problem.objective, best - 1, opts_.encoding);
  }

  if (haveModel) {
    result.objective = best + problem.objectiveOffset;
    result.upperBound = best + problem.objectiveOffset;
    result.model = std::move(bestModel);
  }
  result.satStats = sat.stats();
  return result;
}

}  // namespace msu
