/// \file opb.h
/// \brief Reader/writer for the OPB pseudo-Boolean competition format,
///        the standard interchange format of the PBO community the
///        paper's §2.2 baseline belongs to. Understands linear `min:`
///        objectives and `>=` / `<=` / `=` constraints over `x<i>`
///        variables, with `*` comment lines.
///
/// Normalization on read: `>=` flips into the engine's canonical `<=`
/// form; `=` splits into two inequalities; negative objective
/// coefficients are rewritten over complemented literals with a constant
/// offset (`-c*x == -c + c*(~x)`), so `PboProblem::objective` always
/// carries positive coefficients.

#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "pbo/pbo_solver.h"

namespace msu {

/// Error raised on malformed OPB input.
class OpbError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parses an OPB stream. Throws OpbError on malformed input.
///
/// Like the DIMACS readers, these are adapters over the zero-copy
/// lexer in cnf/fastparse.h: `loadOpb` mmaps, `parseOpb` scans the
/// string in place, and the istream overload slurps once. `*` comment
/// lines are strictly line-anchored.
[[nodiscard]] PboProblem readOpb(std::istream& in);

/// Parses an OPB string.
[[nodiscard]] PboProblem parseOpb(const std::string& text);

/// Loads an OPB file from disk (mmap path). Throws OpbError.
[[nodiscard]] PboProblem loadOpb(const std::string& path);

/// Legacy istream tokenizer reader, kept for differential fuzzing and
/// as the bench_parse A/B baseline.
[[nodiscard]] PboProblem readOpbLegacy(std::istream& in);

/// Writes a PboProblem in OPB syntax. Only `<=` constraints and the
/// positive-coefficient objective form are emitted (the canonical shape
/// readOpb produces); complemented objective literals are written by
/// re-expanding the offset rewrite.
void writeOpb(std::ostream& out, const PboProblem& problem);

}  // namespace msu
