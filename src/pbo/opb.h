/// \file opb.h
/// \brief Reader/writer for the OPB pseudo-Boolean competition format,
///        the standard interchange format of the PBO community the
///        paper's §2.2 baseline belongs to. Understands linear `min:`
///        objectives and `>=` / `<=` / `=` constraints over `x<i>`
///        variables, with `*` comment lines.
///
/// Normalization on read: `>=` flips into the engine's canonical `<=`
/// form; `=` splits into two inequalities; negative objective
/// coefficients are rewritten over complemented literals with a constant
/// offset (`-c*x == -c + c*(~x)`), so `PboProblem::objective` always
/// carries positive coefficients.

#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "pbo/pbo_solver.h"

namespace msu {

/// Error raised on malformed OPB input.
class OpbError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parses an OPB stream. Throws OpbError on malformed input.
[[nodiscard]] PboProblem readOpb(std::istream& in);

/// Parses an OPB string.
[[nodiscard]] PboProblem parseOpb(const std::string& text);

/// Writes a PboProblem in OPB syntax. Only `<=` constraints and the
/// positive-coefficient objective form are emitted (the canonical shape
/// readOpb produces); complemented objective literals are written by
/// re-expanding the offset rewrite.
void writeOpb(std::ostream& out, const PboProblem& problem);

}  // namespace msu
