/// \file pbo_solver.h
/// \brief Pseudo-Boolean Optimization via SAT, in the style of minisat+
///        (Eén & Sörensson): encode PB constraints to CNF, then perform
///        model-improving linear search on the objective by repeatedly
///        asserting `objective <= best - 1`.

#pragma once

#include <vector>

#include "cnf/formula.h"
#include "cnf/wcnf.h"
#include "encodings/pb.h"
#include "sat/budget.h"
#include "sat/solver.h"
#include "sat/stats.h"

namespace msu {

/// A pseudo-Boolean "less-or-equal" constraint: `sum(terms) <= bound`.
struct PbConstraint {
  std::vector<PbTerm> terms;
  Weight bound = 0;
};

/// A PBO instance: minimize `objective` subject to CNF clauses and PB
/// constraints.
struct PboProblem {
  int numVars = 0;
  std::vector<Clause> clauses;
  std::vector<PbConstraint> constraints;
  std::vector<PbTerm> objective;  ///< coefficients must be positive

  /// Constant added to the reported objective (used by the OPB reader
  /// to normalize negative coefficients: `-c*x == -c + c*(~x)`).
  Weight objectiveOffset = 0;
};

/// Outcome of a PBO solve.
enum class PboStatus { Optimum, Infeasible, Unknown };

/// Result of a PBO solve.
struct PboResult {
  PboStatus status = PboStatus::Unknown;
  Weight objective = 0;  ///< optimum value when status == Optimum
  Weight upperBound = 0;  ///< best model value seen (valid unless Infeasible)
  Assignment model;       ///< over the problem's original variables
  std::int64_t iterations = 0;
  SolverStats satStats;
};

/// Options for the PBO engine.
struct PboOptions {
  Budget budget;
  PbEncoding encoding = PbEncoding::Bdd;
  Solver::Options sat;
};

/// The PBO engine.
class PboSolver {
 public:
  explicit PboSolver(PboOptions options = {});

  [[nodiscard]] PboResult solve(const PboProblem& problem);

 private:
  PboOptions opts_;
};

}  // namespace msu
