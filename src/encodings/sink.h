/// \file sink.h
/// \brief Abstraction over "something clauses can be added to": the CDCL
///        solver during search, or a plain formula when building CNF
///        offline (tests, file export). All encoders target this
///        interface so every encoding is usable in both settings.
///
/// ## Encoding scopes (the session model)
///
/// Incremental MaxSAT engines re-encode cardinality/PB structures as
/// their bounds and literal sets evolve; the predecessor structure must
/// then be *retired* rather than left to rot in the clause database.
/// The sink makes this a first-class lifecycle:
///
///   ScopeHandle sc = sink.beginScope(); // open a scope
///   encodeAtMost(sink, lits, k, enc);   // clauses get the guard appended
///   sink.endScope(sc);                  // close (emission complete)
///   ...                                 // constraint active while enforced
///   sink.retireScope(sc);               // discard the whole structure
///
/// Scopes are addressed by an opaque ScopeHandle rather than a raw
/// activator Lit, so a selector or blocking literal can never be passed
/// where a scope is expected (and vice versa) without an explicit —
/// visible — conversion.
///
/// Every clause emitted inside a scope is guarded by the scope's
/// activator: the constraint is enforced exactly when the activator is
/// true. A `SolverSink` maps scopes onto the solver's native
/// retirement machinery (clause tagging, physical deletion, variable
/// recycling, automatic activator assumptions — see solver.h); for
/// formula sinks, `retireScope` falls back to the classic logical
/// retirement (unit-asserting the negated activator).
///
/// Scopes must be self-contained: clauses emitted after a scope ends
/// must not mention its variables (they may be recycled at any time
/// after retireScope). `trueLit()` is scope-independent — it is always
/// created unguarded and unowned, so encoders may use it freely inside
/// scopes.

#pragma once

#include <cassert>
#include <span>
#include <vector>

#include "cnf/formula.h"
#include "cnf/literal.h"
#include "cnf/wcnf.h"
#include "sat/solver.h"

namespace msu {

/// Opaque, typed handle for an encoding scope. Wraps the scope's
/// activator literal; the explicit constructor and accessor make every
/// crossing between "scope" and "plain literal" a deliberate act the
/// compiler can police — passing a blocking/selector literal to
/// retireScope, or assuming a scope handle as if it were a bound
/// literal, no longer type-checks.
class ScopeHandle {
 public:
  constexpr ScopeHandle() = default;
  constexpr explicit ScopeHandle(Lit activator) : act_(activator) {}

  /// True iff the handle names a scope (default-constructed ones don't).
  [[nodiscard]] constexpr bool defined() const { return act_ != kUndefLit; }

  /// The guard literal: true exactly while the constraint is enforced.
  /// Needed when a scope's activator doubles as an assumption handle
  /// (AssumableAtMost) — every such escape is explicit at the call site.
  [[nodiscard]] constexpr Lit activator() const { return act_; }

  friend constexpr bool operator==(ScopeHandle, ScopeHandle) = default;

 private:
  Lit act_ = kUndefLit;
};

/// Destination for encoder output: fresh variables plus clauses, with
/// scope-based lifecycle management for retirable constraint groups.
class ClauseSink {
 public:
  virtual ~ClauseSink() = default;

  /// Creates a fresh variable (owned by the innermost open scope, where
  /// the sink supports ownership).
  virtual Var newVar() = 0;

  /// Adds a clause over existing variables. Inside an open scope the
  /// scope's guard literal is appended automatically.
  void addClause(std::span<const Lit> lits) {
    if (scope_stack_.empty()) {
      emitClause(lits);
      return;
    }
    guard_buf_.assign(lits.begin(), lits.end());
    guard_buf_.push_back(~scope_stack_.back());
    emitClause(guard_buf_);
  }

  void addClause(std::initializer_list<Lit> lits) {
    addClause(std::span<const Lit>(lits.begin(), lits.size()));
  }

  /// A literal constrained to be true (lazily created once per sink).
  /// Its complement serves as the constant false. Scope-independent:
  /// created unguarded and never owned by a scope.
  [[nodiscard]] Lit trueLit() {
    if (!true_lit_.defined()) {
      true_lit_ = posLit(newGlobalVar());
      const Lit unit = true_lit_;
      emitClause({&unit, 1});
    }
    return true_lit_;
  }

  /// A literal constrained to be false.
  [[nodiscard]] Lit falseLit() { return ~trueLit(); }

  // ---- Scopes ----------------------------------------------------------

  /// Opens a fresh encoding scope and returns its handle. The default
  /// (offline) implementation guards the scope's clauses with a fresh
  /// free variable; the exported constraint is enforced exactly when
  /// that activator is made true (see setScopeEnforced).
  [[nodiscard]] virtual ScopeHandle beginScope() {
    const Lit act = posLit(newGlobalVar());
    scope_stack_.push_back(act);
    return ScopeHandle(act);
  }

  /// Re-enters a live scope for additional emission (e.g. tightening a
  /// bound over an already-built network).
  virtual void reopenScope(ScopeHandle scope) {
    scope_stack_.push_back(scope.activator());
  }

  /// Closes the innermost scope; must match its handle.
  virtual void endScope(ScopeHandle scope) {
    assert(!scope_stack_.empty() && scope_stack_.back() == scope.activator());
    static_cast<void>(scope);
    scope_stack_.pop_back();
  }

  /// Discards the scope's constraint. Solver sinks delete its clauses
  /// physically and recycle its variables; the default is the logical
  /// fallback: permanently assert the negated activator (emitted raw,
  /// so it stays unconditional even while another scope is open).
  virtual void retireScope(ScopeHandle scope) {
    const Lit unit = ~scope.activator();
    emitClause({&unit, 1});
  }

  /// Chooses whether a live scope's constraint is active (enforced) or
  /// inert. Only meaningful for solver-backed sinks, where the solver
  /// assumes the activator (or its negation) on every solve. On offline
  /// formula sinks a scope is merely an activator-guarded clause group:
  /// the emitted formula enforces the constraint exactly when the
  /// activator holds, and the consumer decides that by asserting or
  /// assuming the activator literal itself.
  virtual void setScopeEnforced(ScopeHandle scope, bool enforced) {
    static_cast<void>(scope);
    static_cast<void>(enforced);
  }

  /// True iff a scope is currently open for emission.
  [[nodiscard]] bool inScope() const { return !scope_stack_.empty(); }

 protected:
  /// Raw clause emission (no guard handling).
  virtual void emitClause(std::span<const Lit> lits) = 0;

  /// Fresh variable outside any scope's ownership.
  virtual Var newGlobalVar() { return newVar(); }

  std::vector<Lit> scope_stack_;  ///< open scopes, innermost last

 private:
  Lit true_lit_ = kUndefLit;
  std::vector<Lit> guard_buf_;
};

/// Sink that feeds a CDCL solver; scopes map onto the solver's native
/// retirement machinery (Solver::newActivator / retire).
class SolverSink final : public ClauseSink {
 public:
  explicit SolverSink(Solver& solver) : solver_(&solver) {}

  using ClauseSink::addClause;

  Var newVar() override { return solver_->newVar(); }

  [[nodiscard]] ScopeHandle beginScope() override {
    const Lit act = solver_->newActivator();
    solver_->openScope(act);
    scope_stack_.push_back(act);
    return ScopeHandle(act);
  }

  void reopenScope(ScopeHandle scope) override {
    solver_->openScope(scope.activator());
    scope_stack_.push_back(scope.activator());
  }

  void endScope(ScopeHandle scope) override {
    assert(!scope_stack_.empty() && scope_stack_.back() == scope.activator());
    scope_stack_.pop_back();
    solver_->closeScope(scope.activator());
  }

  void retireScope(ScopeHandle scope) override {
    solver_->retire(scope.activator());
  }

  void setScopeEnforced(ScopeHandle scope, bool enforced) override {
    solver_->setScopeEnforced(scope.activator(), enforced);
  }

 protected:
  void emitClause(std::span<const Lit> lits) override {
    // A conflicting addition flips the solver to "not okay"; encoders
    // need not observe it (subsequent solves report UNSAT).
    static_cast<void>(solver_->addClause(lits));
  }

  Var newGlobalVar() override {
    return solver_->newVar(/*decisionVar=*/true, /*scoped=*/false);
  }

 private:
  Solver* solver_;
};

/// Sink that appends to a CnfFormula.
class FormulaSink final : public ClauseSink {
 public:
  explicit FormulaSink(CnfFormula& cnf) : cnf_(&cnf) {}

  using ClauseSink::addClause;

  Var newVar() override { return cnf_->newVar(); }

 protected:
  void emitClause(std::span<const Lit> lits) override {
    cnf_->addClause(lits);
  }

 private:
  CnfFormula* cnf_;
};

/// Sink that appends hard clauses to a WcnfFormula.
class WcnfHardSink final : public ClauseSink {
 public:
  explicit WcnfHardSink(WcnfFormula& wcnf) : wcnf_(&wcnf) {}

  using ClauseSink::addClause;

  Var newVar() override { return wcnf_->newVar(); }

 protected:
  void emitClause(std::span<const Lit> lits) override { wcnf_->addHard(lits); }

 private:
  WcnfFormula* wcnf_;
};

}  // namespace msu
