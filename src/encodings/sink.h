/// \file sink.h
/// \brief Abstraction over "something clauses can be added to": the CDCL
///        solver during search, or a plain formula when building CNF
///        offline (tests, file export). All encoders target this
///        interface so every encoding is usable in both settings.

#pragma once

#include <span>

#include "cnf/formula.h"
#include "cnf/literal.h"
#include "cnf/wcnf.h"
#include "sat/solver.h"

namespace msu {

/// Destination for encoder output: fresh variables plus clauses.
class ClauseSink {
 public:
  virtual ~ClauseSink() = default;

  /// Creates a fresh variable.
  virtual Var newVar() = 0;

  /// Adds a clause over existing variables.
  virtual void addClause(std::span<const Lit> lits) = 0;

  void addClause(std::initializer_list<Lit> lits) {
    addClause(std::span<const Lit>(lits.begin(), lits.size()));
  }

  /// A literal constrained to be true (lazily created once per sink).
  /// Its complement serves as the constant false.
  [[nodiscard]] Lit trueLit() {
    if (!true_lit_.defined()) {
      true_lit_ = posLit(newVar());
      addClause({true_lit_});
    }
    return true_lit_;
  }

  /// A literal constrained to be false.
  [[nodiscard]] Lit falseLit() { return ~trueLit(); }

 private:
  Lit true_lit_ = kUndefLit;
};

/// Sink that feeds a CDCL solver.
class SolverSink final : public ClauseSink {
 public:
  explicit SolverSink(Solver& solver) : solver_(&solver) {}

  using ClauseSink::addClause;

  Var newVar() override { return solver_->newVar(); }

  void addClause(std::span<const Lit> lits) override {
    // A conflicting addition flips the solver to "not okay"; encoders
    // need not observe it (subsequent solves report UNSAT).
    static_cast<void>(solver_->addClause(lits));
  }

 private:
  Solver* solver_;
};

/// Sink that appends to a CnfFormula.
class FormulaSink final : public ClauseSink {
 public:
  explicit FormulaSink(CnfFormula& cnf) : cnf_(&cnf) {}

  using ClauseSink::addClause;

  Var newVar() override { return cnf_->newVar(); }

  void addClause(std::span<const Lit> lits) override { cnf_->addClause(lits); }

 private:
  CnfFormula* cnf_;
};

/// Sink that appends hard clauses to a WcnfFormula.
class WcnfHardSink final : public ClauseSink {
 public:
  explicit WcnfHardSink(WcnfFormula& wcnf) : wcnf_(&wcnf) {}

  using ClauseSink::addClause;

  Var newVar() override { return wcnf_->newVar(); }

  void addClause(std::span<const Lit> lits) override { wcnf_->addHard(lits); }

 private:
  WcnfFormula* wcnf_;
};

}  // namespace msu
