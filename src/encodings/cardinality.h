/// \file cardinality.h
/// \brief CNF encodings of cardinality constraints `sum(lits) <= k` (and
///        friends). The DATE'08 paper's two msu4 variants differ only
///        here: v1 encodes with BDDs, v2 with Batcher odd-even sorting
///        networks, both following Eén & Sörensson's minisat+ paper.
///        Sequential counters (Sinz) and totalizers (Bailleux–Boufkhad)
///        are provided as ablation encodings, plus pairwise/ladder
///        special cases for at-most-one.

#pragma once

#include <optional>
#include <span>
#include <vector>

#include "cnf/literal.h"
#include "encodings/sink.h"

namespace msu {

/// Available cardinality encodings.
enum class CardEncoding {
  Bdd,         ///< ITE/BDD counter encoding (msu4 v1)
  Sorter,      ///< Batcher odd-even sorting network (msu4 v2)
  Sequential,  ///< Sinz sequential counter
  Totalizer,   ///< Bailleux–Boufkhad totalizer
  Pairwise,    ///< pairwise (k==1 only; falls back to Sequential otherwise)
  CardNet,     ///< k-truncated odd-even cardinality network (Asín et al.)
};

/// Short lowercase name ("bdd", "sorter", ...).
[[nodiscard]] const char* toString(CardEncoding enc);

/// Encodes `sum(lits) <= k` into the sink.
///
/// If `activator` is given, every clause is guarded so the constraint is
/// only enforced when the activator literal is true (`act -> constraint`),
/// enabling assumption-based retraction. Trivial cases (k < 0 becomes
/// falsum under the activator; k >= |lits| is a no-op) are handled.
void encodeAtMost(ClauseSink& sink, std::span<const Lit> lits, int k,
                  CardEncoding enc,
                  std::optional<Lit> activator = std::nullopt);

/// Encodes `sum(lits) >= k` (via at-most over complements).
void encodeAtLeast(ClauseSink& sink, std::span<const Lit> lits, int k,
                   CardEncoding enc,
                   std::optional<Lit> activator = std::nullopt);

/// Encodes `sum(lits) == k`.
void encodeExactly(ClauseSink& sink, std::span<const Lit> lits, int k,
                   CardEncoding enc,
                   std::optional<Lit> activator = std::nullopt);

/// Encodes "at most one of lits" with the pairwise encoding (quadratic,
/// no auxiliary variables).
void encodeAtMostOnePairwise(ClauseSink& sink, std::span<const Lit> lits,
                             std::optional<Lit> activator = std::nullopt);

/// Encodes "at most one" with the ladder/regular encoding (linear,
/// |lits|-1 auxiliary variables).
void encodeAtMostOneLadder(ClauseSink& sink, std::span<const Lit> lits,
                           std::optional<Lit> activator = std::nullopt);

/// Encodes "exactly one of lits" (at-least-one clause + pairwise AMO).
void encodeExactlyOne(ClauseSink& sink, std::span<const Lit> lits,
                      std::optional<Lit> activator = std::nullopt);

// ---------------------------------------------------------------------
// Reusable building blocks (exposed for incremental use and for tests).
// ---------------------------------------------------------------------

/// Builds a Batcher odd-even sorting network over `lits`.
///
/// Returns output literals sorted "ones first": `out[i]` is true iff at
/// least `i+1` inputs are true. The outputs are full biconditionals, so
/// both `sum <= k` (assert `~out[k]`) and `sum >= k` (assert `out[k-1]`)
/// can be enforced by unit clauses or assumptions — this is what lets
/// msu4 v2 reuse one network across successively tighter bounds.
[[nodiscard]] std::vector<Lit> buildSortingNetwork(ClauseSink& sink,
                                                   std::span<const Lit> lits);

/// Builds the BDD (counter-DAG) for `sum(lits) <= k` and returns a
/// literal equivalent to the constraint (biconditional encoding).
[[nodiscard]] Lit buildAtMostBdd(ClauseSink& sink, std::span<const Lit> lits,
                                 int k);

/// Statistics helper used by micro-benchmarks: number of clauses/vars an
/// encoding emits for given (n, k).
struct EncodingSize {
  std::int64_t clauses = 0;
  std::int64_t auxVars = 0;
};

/// Measures the emitted size of `encodeAtMost` for (n, k).
[[nodiscard]] EncodingSize measureAtMost(int n, int k, CardEncoding enc);

}  // namespace msu
