#include "encodings/amo.h"

#include <cassert>
#include <vector>

#include "encodings/cardinality.h"

namespace msu {

namespace {

/// Emits `lits` as a clause, guarded by the activator when present.
void addGuarded(ClauseSink& sink, std::vector<Lit> lits,
                const std::optional<Lit>& act) {
  if (act) lits.insert(lits.begin(), ~*act);
  sink.addClause(lits);
}

/// Number of bits needed to give each of `n` items a distinct code.
[[nodiscard]] int bitsFor(int n) {
  int bits = 0;
  while ((1 << bits) < n) ++bits;
  return bits;
}

}  // namespace

void encodeAtMostOneCommander(ClauseSink& sink, std::span<const Lit> lits,
                              std::optional<Lit> activator, int groupSize) {
  assert(groupSize >= 2);
  if (lits.size() <= 1) return;
  if (static_cast<int>(lits.size()) <= groupSize + 1) {
    encodeAtMostOnePairwise(sink, lits, activator);
    return;
  }
  // Split into groups; each group gets pairwise AMO plus a commander
  // that is true whenever a member is.
  std::vector<Lit> commanders;
  std::size_t i = 0;
  while (i < lits.size()) {
    const std::size_t end =
        std::min(lits.size(), i + static_cast<std::size_t>(groupSize));
    const std::span<const Lit> group = lits.subspan(i, end - i);
    if (group.size() == 1) {
      commanders.push_back(group[0]);  // a singleton is its own commander
    } else {
      encodeAtMostOnePairwise(sink, group, activator);
      const Lit c = posLit(sink.newVar());
      for (const Lit p : group) addGuarded(sink, {~p, c}, activator);
      commanders.push_back(c);
    }
    i = end;
  }
  encodeAtMostOneCommander(sink, commanders, activator, groupSize);
}

void encodeAtMostOneProduct(ClauseSink& sink, std::span<const Lit> lits,
                            std::optional<Lit> activator) {
  const int n = static_cast<int>(lits.size());
  if (n <= 1) return;
  if (n <= 3) {
    encodeAtMostOnePairwise(sink, lits, activator);
    return;
  }
  int rows = 1;
  while (rows * rows < n) ++rows;
  const int cols = (n + rows - 1) / rows;

  std::vector<Lit> rowVar, colVar;
  rowVar.reserve(static_cast<std::size_t>(rows));
  colVar.reserve(static_cast<std::size_t>(cols));
  for (int r = 0; r < rows; ++r) rowVar.push_back(posLit(sink.newVar()));
  for (int c = 0; c < cols; ++c) colVar.push_back(posLit(sink.newVar()));

  for (int idx = 0; idx < n; ++idx) {
    const int r = idx / cols;
    const int c = idx % cols;
    addGuarded(sink, {~lits[static_cast<std::size_t>(idx)],
                      rowVar[static_cast<std::size_t>(r)]},
               activator);
    addGuarded(sink, {~lits[static_cast<std::size_t>(idx)],
                      colVar[static_cast<std::size_t>(c)]},
               activator);
  }
  encodeAtMostOnePairwise(sink, rowVar, activator);
  encodeAtMostOnePairwise(sink, colVar, activator);
}

void encodeAtMostOneBinary(ClauseSink& sink, std::span<const Lit> lits,
                           std::optional<Lit> activator) {
  const int n = static_cast<int>(lits.size());
  if (n <= 1) return;
  const int bits = bitsFor(n);
  std::vector<Lit> bit;
  bit.reserve(static_cast<std::size_t>(bits));
  for (int b = 0; b < bits; ++b) bit.push_back(posLit(sink.newVar()));
  for (int idx = 0; idx < n; ++idx) {
    for (int b = 0; b < bits; ++b) {
      const bool set = ((idx >> b) & 1) != 0;
      addGuarded(sink,
                 {~lits[static_cast<std::size_t>(idx)],
                  set ? bit[static_cast<std::size_t>(b)]
                      : ~bit[static_cast<std::size_t>(b)]},
                 activator);
    }
  }
}

void encodeAtMostOneBimander(ClauseSink& sink, std::span<const Lit> lits,
                             std::optional<Lit> activator, int groupSize) {
  assert(groupSize >= 1);
  const int n = static_cast<int>(lits.size());
  if (n <= 1) return;
  const int groups = (n + groupSize - 1) / groupSize;
  if (groups <= 1) {
    encodeAtMostOnePairwise(sink, lits, activator);
    return;
  }
  const int bits = bitsFor(groups);
  std::vector<Lit> bit;
  bit.reserve(static_cast<std::size_t>(bits));
  for (int b = 0; b < bits; ++b) bit.push_back(posLit(sink.newVar()));

  for (int g = 0; g < groups; ++g) {
    const std::size_t start = static_cast<std::size_t>(g * groupSize);
    const std::size_t end =
        std::min(lits.size(), start + static_cast<std::size_t>(groupSize));
    const std::span<const Lit> group = lits.subspan(start, end - start);
    encodeAtMostOnePairwise(sink, group, activator);
    for (const Lit p : group) {
      for (int b = 0; b < bits; ++b) {
        const bool set = ((g >> b) & 1) != 0;
        addGuarded(sink,
                   {~p, set ? bit[static_cast<std::size_t>(b)]
                            : ~bit[static_cast<std::size_t>(b)]},
                   activator);
      }
    }
  }
}

}  // namespace msu
