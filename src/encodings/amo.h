/// \file amo.h
/// \brief Additional at-most-one encodings beyond the pairwise and
///        ladder forms in cardinality.h: commander (Klieber & Kwon),
///        product (Chen), binary (Frisch et al.) and bimander (Hölldobler
///        & Nguyen). AMO constraints are the k=1 special case msu4's
///        optional "at least one blocking variable" bookkeeping interacts
///        with, and the workhorse of the EDA instance generators (one-hot
///        fault selection in design debugging, hole exclusivity in
///        pigeonhole, ...).

#pragma once

#include <optional>
#include <span>

#include "cnf/literal.h"
#include "encodings/sink.h"

namespace msu {

/// Commander encoding: recursive groups of `groupSize` (>= 2) literals,
/// each reporting to a fresh commander variable; O(n) clauses, O(n/g)
/// auxiliary variables.
void encodeAtMostOneCommander(ClauseSink& sink, std::span<const Lit> lits,
                              std::optional<Lit> activator = std::nullopt,
                              int groupSize = 3);

/// Product encoding: literals placed on a ceil(sqrt(n)) grid with
/// at-most-one rows and columns; O(n + sqrt(n)^2) clauses,
/// 2*ceil(sqrt(n)) auxiliary variables.
void encodeAtMostOneProduct(ClauseSink& sink, std::span<const Lit> lits,
                            std::optional<Lit> activator = std::nullopt);

/// Binary encoding: each literal implies its index's binary code over
/// ceil(log2 n) fresh bits; n*ceil(log2 n) clauses.
void encodeAtMostOneBinary(ClauseSink& sink, std::span<const Lit> lits,
                           std::optional<Lit> activator = std::nullopt);

/// Bimander encoding: literals split into groups with pairwise AMO
/// inside each group and binary group codes across groups — a hybrid of
/// the pairwise and binary forms.
void encodeAtMostOneBimander(ClauseSink& sink, std::span<const Lit> lits,
                             std::optional<Lit> activator = std::nullopt,
                             int groupSize = 2);

}  // namespace msu
