#include "encodings/cardinality.h"

#include <cassert>
#include <map>
#include <utility>

#include "encodings/cardnet.h"
#include "encodings/totalizer.h"

namespace msu {
namespace {

/// Adds `clause` to the sink, appending `~activator` when present.
void addGuarded(ClauseSink& sink, std::vector<Lit> clause,
                std::optional<Lit> act) {
  if (act) clause.push_back(~*act);
  sink.addClause(clause);
}

/// Comparator of a sorting network: returns (hi, lo) = (a|b, a&b) with
/// biconditional semantics. Constant inputs (the sink's true/false
/// literals) are simplified away without emitting clauses.
std::pair<Lit, Lit> comparator(ClauseSink& sink, Lit a, Lit b, Lit tru) {
  const Lit fls = ~tru;
  if (a == fls) return {b, fls};
  if (b == fls) return {a, fls};
  if (a == tru) return {tru, b};
  if (b == tru) return {tru, a};
  const Lit hi = posLit(sink.newVar());
  const Lit lo = posLit(sink.newVar());
  // hi <-> a | b
  sink.addClause({~a, hi});
  sink.addClause({~b, hi});
  sink.addClause({a, b, ~hi});
  // lo <-> a & b
  sink.addClause({~lo, a});
  sink.addClause({~lo, b});
  sink.addClause({~a, ~b, lo});
  return {hi, lo};
}

/// Batcher odd-even merge of two descending-sorted sequences of equal
/// power-of-two length.
std::vector<Lit> oddEvenMerge(ClauseSink& sink, const std::vector<Lit>& a,
                              const std::vector<Lit>& b, Lit tru) {
  assert(a.size() == b.size());
  const std::size_t n = a.size();
  if (n == 1) {
    auto [hi, lo] = comparator(sink, a[0], b[0], tru);
    return {hi, lo};
  }
  auto pick = [](const std::vector<Lit>& v, std::size_t start) {
    std::vector<Lit> out;
    for (std::size_t i = start; i < v.size(); i += 2) out.push_back(v[i]);
    return out;
  };
  const std::vector<Lit> d =
      oddEvenMerge(sink, pick(a, 0), pick(b, 0), tru);  // evens
  const std::vector<Lit> e =
      oddEvenMerge(sink, pick(a, 1), pick(b, 1), tru);  // odds
  std::vector<Lit> out(2 * n);
  out[0] = d[0];
  for (std::size_t i = 0; i + 1 < n; ++i) {
    auto [hi, lo] = comparator(sink, d[i + 1], e[i], tru);
    out[2 * i + 1] = hi;
    out[2 * i + 2] = lo;
  }
  out[2 * n - 1] = e[n - 1];
  return out;
}

/// Recursive odd-even mergesort over a power-of-two sized input.
std::vector<Lit> oddEvenSort(ClauseSink& sink, std::vector<Lit> v, Lit tru) {
  if (v.size() <= 1) return v;
  const std::size_t half = v.size() / 2;
  std::vector<Lit> lo(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(half));
  std::vector<Lit> hi(v.begin() + static_cast<std::ptrdiff_t>(half), v.end());
  return oddEvenMerge(sink, oddEvenSort(sink, std::move(lo), tru),
                      oddEvenSort(sink, std::move(hi), tru), tru);
}

/// Sinz sequential-counter encoding of `sum(lits) <= k` (k >= 1).
/// Register definitions are emitted unguarded (they only define fresh
/// variables); the bound-violation clauses carry the guard.
void sequentialAtMost(ClauseSink& sink, std::span<const Lit> lits, int k,
                      std::optional<Lit> act) {
  const int n = static_cast<int>(lits.size());
  assert(k >= 1 && k < n);
  // s[i][j]: among lits[0..i] at least j+1 are true (j < k).
  std::vector<std::vector<Lit>> s(static_cast<std::size_t>(n - 1));
  for (auto& row : s) {
    row.resize(static_cast<std::size_t>(k));
    for (Lit& p : row) p = posLit(sink.newVar());
  }
  // Base: lits[0] -> s[0][0].
  sink.addClause({~lits[0], s[0][0]});
  for (int i = 1; i < n - 1; ++i) {
    // Carry: s[i-1][j] -> s[i][j].
    for (int j = 0; j < k; ++j) {
      sink.addClause({~s[i - 1][j], s[i][j]});
    }
    // Count: lits[i] -> s[i][0]; lits[i] & s[i-1][j-1] -> s[i][j].
    sink.addClause({~lits[i], s[i][0]});
    for (int j = 1; j < k; ++j) {
      sink.addClause({~lits[i], ~s[i - 1][j - 1], s[i][j]});
    }
  }
  // Violation: lits[i] & s[i-1][k-1] -> false, guarded.
  for (int i = 1; i < n; ++i) {
    addGuarded(sink, {~lits[i], ~s[i - 1][k - 1]}, act);
  }
}

}  // namespace

const char* toString(CardEncoding enc) {
  switch (enc) {
    case CardEncoding::Bdd:
      return "bdd";
    case CardEncoding::Sorter:
      return "sorter";
    case CardEncoding::Sequential:
      return "sequential";
    case CardEncoding::Totalizer:
      return "totalizer";
    case CardEncoding::Pairwise:
      return "pairwise";
    case CardEncoding::CardNet:
      return "cardnet";
  }
  return "?";
}

std::vector<Lit> buildSortingNetwork(ClauseSink& sink,
                                     std::span<const Lit> lits) {
  std::vector<Lit> in(lits.begin(), lits.end());
  if (in.empty()) return {};
  std::size_t padded = 1;
  while (padded < in.size()) padded *= 2;
  const Lit tru = sink.trueLit();
  while (in.size() < padded) in.push_back(~tru);
  std::vector<Lit> out = oddEvenSort(sink, std::move(in), tru);
  out.resize(lits.size());  // tail positions are constant false padding
  return out;
}

Lit buildAtMostBdd(ClauseSink& sink, std::span<const Lit> lits, int k) {
  const int n = static_cast<int>(lits.size());
  const Lit tru = sink.trueLit();
  if (k < 0) return ~tru;
  if (k >= n) return tru;

  // Memoized counter DAG: node(i, cnt) is the BDD for "at most k of
  // lits[i..) are true given cnt already true".
  std::map<std::pair<int, int>, Lit> memo;
  auto node = [&](auto&& self, int i, int cnt) -> Lit {
    if (cnt > k) return ~tru;
    if (cnt + (n - i) <= k) return tru;  // always satisfiable from here
    const auto key = std::make_pair(i, cnt);
    if (auto it = memo.find(key); it != memo.end()) return it->second;

    const Lit t = self(self, i + 1, cnt + 1);  // lits[i] true
    const Lit e = self(self, i + 1, cnt);      // lits[i] false
    Lit v;
    if (t == e) {
      v = t;
    } else {
      v = posLit(sink.newVar());
      const Lit x = lits[i];
      // v <-> ITE(x, t, e), with redundant clauses for propagation.
      sink.addClause({~v, ~x, t});
      sink.addClause({~v, x, e});
      sink.addClause({v, ~x, ~t});
      sink.addClause({v, x, ~e});
      sink.addClause({~t, ~e, v});
      sink.addClause({t, e, ~v});
    }
    memo.emplace(key, v);
    return v;
  };
  return node(node, 0, 0);
}

void encodeAtMost(ClauseSink& sink, std::span<const Lit> lits, int k,
                  CardEncoding enc, std::optional<Lit> activator) {
  const int n = static_cast<int>(lits.size());
  if (k >= n) return;  // trivially true
  if (k < 0) {
    // Falsum (under the activator).
    addGuarded(sink, {}, activator);
    return;
  }
  if (k == 0) {
    for (Lit p : lits) addGuarded(sink, {~p}, activator);
    return;
  }
  switch (enc) {
    case CardEncoding::Bdd: {
      const Lit root = buildAtMostBdd(sink, lits, k);
      addGuarded(sink, {root}, activator);
      return;
    }
    case CardEncoding::Sorter: {
      const std::vector<Lit> out = buildSortingNetwork(sink, lits);
      addGuarded(sink, {~out[static_cast<std::size_t>(k)]}, activator);
      return;
    }
    case CardEncoding::Sequential:
      sequentialAtMost(sink, lits, k, activator);
      return;
    case CardEncoding::Totalizer: {
      Totalizer tot(sink, lits);
      addGuarded(sink, {~tot.outputs()[static_cast<std::size_t>(k)]},
                 activator);
      return;
    }
    case CardEncoding::Pairwise:
      if (k == 1) {
        encodeAtMostOnePairwise(sink, lits, activator);
      } else {
        sequentialAtMost(sink, lits, k, activator);
      }
      return;
    case CardEncoding::CardNet: {
      const std::vector<Lit> out = buildCardinalityNetwork(sink, lits, k);
      addGuarded(sink, {~out[static_cast<std::size_t>(k)]}, activator);
      return;
    }
  }
}

void encodeAtLeast(ClauseSink& sink, std::span<const Lit> lits, int k,
                   CardEncoding enc, std::optional<Lit> activator) {
  const int n = static_cast<int>(lits.size());
  if (k <= 0) return;  // trivially true
  if (k > n) {
    addGuarded(sink, {}, activator);
    return;
  }
  if (k == 1) {
    addGuarded(sink, std::vector<Lit>(lits.begin(), lits.end()), activator);
    return;
  }
  std::vector<Lit> neg;
  neg.reserve(lits.size());
  for (Lit p : lits) neg.push_back(~p);
  encodeAtMost(sink, neg, n - k, enc, activator);
}

void encodeExactly(ClauseSink& sink, std::span<const Lit> lits, int k,
                   CardEncoding enc, std::optional<Lit> activator) {
  encodeAtMost(sink, lits, k, enc, activator);
  encodeAtLeast(sink, lits, k, enc, activator);
}

void encodeAtMostOnePairwise(ClauseSink& sink, std::span<const Lit> lits,
                             std::optional<Lit> activator) {
  for (std::size_t i = 0; i < lits.size(); ++i) {
    for (std::size_t j = i + 1; j < lits.size(); ++j) {
      addGuarded(sink, {~lits[i], ~lits[j]}, activator);
    }
  }
}

void encodeAtMostOneLadder(ClauseSink& sink, std::span<const Lit> lits,
                           std::optional<Lit> activator) {
  const int n = static_cast<int>(lits.size());
  if (n <= 1) return;
  if (n == 2) {
    addGuarded(sink, {~lits[0], ~lits[1]}, activator);
    return;
  }
  // s[i]: some literal among lits[0..i] is true.
  std::vector<Lit> s(static_cast<std::size_t>(n - 1));
  for (Lit& p : s) p = posLit(sink.newVar());
  sink.addClause({~lits[0], s[0]});
  for (int i = 1; i < n - 1; ++i) {
    sink.addClause({~s[i - 1], s[i]});
    sink.addClause({~lits[i], s[i]});
  }
  for (int i = 1; i < n; ++i) {
    addGuarded(sink, {~lits[i], ~s[i - 1]}, activator);
  }
}

void encodeExactlyOne(ClauseSink& sink, std::span<const Lit> lits,
                      std::optional<Lit> activator) {
  addGuarded(sink, std::vector<Lit>(lits.begin(), lits.end()), activator);
  if (lits.size() <= 8) {
    encodeAtMostOnePairwise(sink, lits, activator);
  } else {
    encodeAtMostOneLadder(sink, lits, activator);
  }
}

EncodingSize measureAtMost(int n, int k, CardEncoding enc) {
  CnfFormula cnf(n);
  std::vector<Lit> lits;
  lits.reserve(static_cast<std::size_t>(n));
  for (Var v = 0; v < n; ++v) lits.push_back(posLit(v));
  FormulaSink sink(cnf);
  encodeAtMost(sink, lits, k, enc);
  return EncodingSize{cnf.numClauses(), cnf.numVars() - n};
}

}  // namespace msu
