/// \file totalizer.h
/// \brief Bailleux–Boufkhad totalizer with incremental input extension —
///        the cardinality substrate used by the incremental variants of
///        msu3/msu4 (and as an ablation encoding inside msu4 itself).

#pragma once

#include <span>
#include <vector>

#include "cnf/literal.h"
#include "encodings/sink.h"

namespace msu {

/// A totalizer over a growing set of input literals.
///
/// `outputs()[i]` is true iff at least `i+1` inputs are true (full
/// biconditional semantics), so `sum <= k` is enforced by the unit clause
/// or assumption `~outputs()[k]`, and `sum >= k` by `outputs()[k-1]`.
///
/// `addInputs` merges additional inputs into the tree without touching
/// previously emitted clauses — this is what makes the constraint usable
/// incrementally as core-guided algorithms discover new blocking
/// variables.
///
/// Scoped emission: a totalizer built inside a sink scope (see sink.h)
/// is retirable wholesale — OLL wraps each per-core totalizer in its
/// own scope and retires it once every bound is paid off. A scoped
/// totalizer must stay self-contained: do not call addInputs (or
/// reference the outputs from new clauses) after its scope has ended,
/// since retirement recycles the counting variables. The long-lived
/// trees of msu3/msu4's incremental bound managers are deliberately
/// built unscoped.
class Totalizer {
 public:
  /// Builds a totalizer over `inputs` (may be empty and extended later).
  /// When `bothPolarities` is false only the "at most" direction is
  /// emitted (smaller, sufficient for `sum <= k` assertions).
  Totalizer(ClauseSink& sink, std::span<const Lit> inputs,
            bool bothPolarities = true);

  /// Merges more inputs into the totalizer.
  void addInputs(std::span<const Lit> inputs);

  /// Output literals, ones-first; size equals the number of inputs.
  [[nodiscard]] const std::vector<Lit>& outputs() const { return outputs_; }

  /// Number of inputs added so far.
  [[nodiscard]] int numInputs() const {
    return static_cast<int>(outputs_.size());
  }

 private:
  /// Merges two sorted-count output vectors into a fresh one.
  [[nodiscard]] std::vector<Lit> merge(const std::vector<Lit>& left,
                                       const std::vector<Lit>& right);

  /// Builds a balanced tree over `inputs`, returning its output vector.
  [[nodiscard]] std::vector<Lit> build(std::span<const Lit> inputs);

  ClauseSink* sink_;
  bool both_;
  std::vector<Lit> outputs_;
};

}  // namespace msu
