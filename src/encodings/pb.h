/// \file pb.h
/// \brief CNF encodings of pseudo-Boolean constraints
///        `sum(coeff_i * lit_i) <= bound`, following the minisat+
///        translation toolkit (Eén & Sörensson, JSAT'06) the paper's PBO
///        baseline relies on: BDD decomposition and binary adder networks
///        with a lexicographic comparator. (minisat+'s mixed-radix sorter
///        translation is intentionally out of scope; the cardinality
///        sorter in cardinality.h covers the unit-coefficient case.)
///
/// Emits through the (possibly scoped) ClauseSink: wlinear wraps each
/// successive `sum <= upper-1` constraint in an encoding scope and
/// retires the previous one, so the adder/BDD auxiliaries of stale
/// bounds are physically deleted and recycled (see sink.h).

#pragma once

#include <optional>
#include <span>
#include <vector>

#include "cnf/literal.h"
#include "cnf/wcnf.h"
#include "encodings/sink.h"

namespace msu {

/// One term of a pseudo-Boolean constraint.
struct PbTerm {
  Lit lit;
  Weight coeff = 1;
};

/// Available PB encodings.
enum class PbEncoding {
  Bdd,    ///< BDD decomposition (pseudo-polynomial, strong propagation)
  Adder,  ///< binary adder network + lexicographic comparator (compact)
};

/// Short lowercase name.
[[nodiscard]] const char* toString(PbEncoding enc);

/// Encodes `sum(terms) <= bound` into the sink. Negative coefficients are
/// normalized away (`c*x == c + (-c)*(~x)`). If `activator` is given the
/// constraint is guarded (`act -> constraint`).
void encodePbLeq(ClauseSink& sink, std::span<const PbTerm> terms,
                 Weight bound, PbEncoding enc,
                 std::optional<Lit> activator = std::nullopt);

/// Builds the BDD for `sum(terms) <= bound` (positive coefficients) and
/// returns a literal equivalent to the constraint.
[[nodiscard]] Lit buildPbLeqBdd(ClauseSink& sink,
                                std::span<const PbTerm> terms, Weight bound);

/// Builds a binary adder network for `sum(terms)` (positive coefficients)
/// and returns the result bits, least significant first.
[[nodiscard]] std::vector<Lit> buildAdderNetwork(
    ClauseSink& sink, std::span<const PbTerm> terms);

/// Builds a literal implying `bits <= bound` (unsigned binary compare,
/// bits least significant first).
[[nodiscard]] Lit buildLeqConst(ClauseSink& sink, std::span<const Lit> bits,
                                Weight bound);

}  // namespace msu
