#include "encodings/totalizer.h"

#include <cassert>

namespace msu {

Totalizer::Totalizer(ClauseSink& sink, std::span<const Lit> inputs,
                     bool bothPolarities)
    : sink_(&sink), both_(bothPolarities) {
  outputs_ = build(inputs);
}

void Totalizer::addInputs(std::span<const Lit> inputs) {
  if (inputs.empty()) return;
  std::vector<Lit> sub = build(inputs);
  if (outputs_.empty()) {
    outputs_ = std::move(sub);
  } else {
    outputs_ = merge(outputs_, sub);
  }
}

std::vector<Lit> Totalizer::build(std::span<const Lit> inputs) {
  if (inputs.empty()) return {};
  if (inputs.size() == 1) return {inputs[0]};
  const std::size_t half = inputs.size() / 2;
  const std::vector<Lit> left = build(inputs.subspan(0, half));
  const std::vector<Lit> right = build(inputs.subspan(half));
  return merge(left, right);
}

std::vector<Lit> Totalizer::merge(const std::vector<Lit>& left,
                                  const std::vector<Lit>& right) {
  const int p = static_cast<int>(left.size());
  const int q = static_cast<int>(right.size());
  std::vector<Lit> out(static_cast<std::size_t>(p + q));
  for (Lit& r : out) r = posLit(sink_->newVar());

  // Forward: left>=i and right>=j imply out>=i+j.
  for (int i = 0; i <= p; ++i) {
    for (int j = 0; j <= q; ++j) {
      if (i + j == 0) continue;
      std::vector<Lit> clause;
      if (i > 0) clause.push_back(~left[i - 1]);
      if (j > 0) clause.push_back(~right[j - 1]);
      clause.push_back(out[static_cast<std::size_t>(i + j - 1)]);
      sink_->addClause(clause);
    }
  }
  if (both_) {
    // Reverse: out>=i+j+1 implies left>=i+1 or right>=j+1.
    for (int i = 0; i <= p; ++i) {
      for (int j = 0; j <= q; ++j) {
        if (i + j == p + q) continue;
        std::vector<Lit> clause;
        if (i < p) clause.push_back(left[i]);
        if (j < q) clause.push_back(right[j]);
        clause.push_back(~out[static_cast<std::size_t>(i + j)]);
        sink_->addClause(clause);
      }
    }
  }
  return out;
}

}  // namespace msu
