#include "encodings/pb.h"

#include <algorithm>
#include <cassert>
#include <map>

namespace msu {
namespace {

/// Rewrites terms so every coefficient is positive; adjusts the bound.
std::vector<PbTerm> normalize(std::span<const PbTerm> terms, Weight& bound) {
  std::vector<PbTerm> out;
  out.reserve(terms.size());
  for (const PbTerm& t : terms) {
    if (t.coeff == 0) continue;
    if (t.coeff > 0) {
      out.push_back(t);
    } else {
      // c*x == c + (-c)*(~x)
      out.push_back(PbTerm{~t.lit, -t.coeff});
      bound -= t.coeff;
    }
  }
  return out;
}

/// Tseitin definition s <-> a XOR b XOR c.
Lit defineXor3(ClauseSink& sink, Lit a, Lit b, Lit c) {
  const Lit s = posLit(sink.newVar());
  sink.addClause({~a, ~b, ~c, s});
  sink.addClause({~a, ~b, c, ~s});
  sink.addClause({~a, b, ~c, ~s});
  sink.addClause({~a, b, c, s});
  sink.addClause({a, ~b, ~c, ~s});
  sink.addClause({a, ~b, c, s});
  sink.addClause({a, b, ~c, s});
  sink.addClause({a, b, c, ~s});
  return s;
}

/// Tseitin definition s <-> a XOR b.
Lit defineXor2(ClauseSink& sink, Lit a, Lit b) {
  const Lit s = posLit(sink.newVar());
  sink.addClause({~a, ~b, ~s});
  sink.addClause({~a, b, s});
  sink.addClause({a, ~b, s});
  sink.addClause({a, b, ~s});
  return s;
}

/// Tseitin definition m <-> majority(a, b, c).
Lit defineMajority(ClauseSink& sink, Lit a, Lit b, Lit c) {
  const Lit m = posLit(sink.newVar());
  sink.addClause({~a, ~b, m});
  sink.addClause({~a, ~c, m});
  sink.addClause({~b, ~c, m});
  sink.addClause({a, b, ~m});
  sink.addClause({a, c, ~m});
  sink.addClause({b, c, ~m});
  return m;
}

/// Tseitin definition o <-> a AND b.
Lit defineAnd2(ClauseSink& sink, Lit a, Lit b) {
  const Lit o = posLit(sink.newVar());
  sink.addClause({~o, a});
  sink.addClause({~o, b});
  sink.addClause({~a, ~b, o});
  return o;
}

}  // namespace

const char* toString(PbEncoding enc) {
  switch (enc) {
    case PbEncoding::Bdd:
      return "pb-bdd";
    case PbEncoding::Adder:
      return "pb-adder";
  }
  return "?";
}

Lit buildPbLeqBdd(ClauseSink& sink, std::span<const PbTerm> terms,
                  Weight bound) {
  const Lit tru = sink.trueLit();
  std::vector<PbTerm> ts(terms.begin(), terms.end());
  // Large coefficients first gives the smallest counter DAGs.
  std::sort(ts.begin(), ts.end(), [](const PbTerm& a, const PbTerm& b) {
    return a.coeff > b.coeff;
  });
  const int n = static_cast<int>(ts.size());
  std::vector<Weight> suffix(static_cast<std::size_t>(n) + 1, 0);
  for (int i = n - 1; i >= 0; --i) {
    assert(ts[static_cast<std::size_t>(i)].coeff > 0);
    suffix[i] = suffix[i + 1] + ts[static_cast<std::size_t>(i)].coeff;
  }
  if (bound < 0) return ~tru;
  if (suffix[0] <= bound) return tru;

  std::map<std::pair<int, Weight>, Lit> memo;
  auto node = [&](auto&& self, int i, Weight b) -> Lit {
    if (b < 0) return ~tru;
    if (suffix[i] <= b) return tru;
    const auto key = std::make_pair(i, b);
    if (auto it = memo.find(key); it != memo.end()) return it->second;

    const PbTerm& t = ts[static_cast<std::size_t>(i)];
    const Lit hi = self(self, i + 1, b - t.coeff);
    const Lit lo = self(self, i + 1, b);
    Lit v;
    if (hi == lo) {
      v = hi;
    } else {
      v = posLit(sink.newVar());
      const Lit x = t.lit;
      sink.addClause({~v, ~x, hi});
      sink.addClause({~v, x, lo});
      sink.addClause({v, ~x, ~hi});
      sink.addClause({v, x, ~lo});
      sink.addClause({~hi, ~lo, v});
      sink.addClause({hi, lo, ~v});
    }
    memo.emplace(key, v);
    return v;
  };
  return node(node, 0, bound);
}

std::vector<Lit> buildAdderNetwork(ClauseSink& sink,
                                   std::span<const PbTerm> terms) {
  // Bucket literals by the bits of their coefficients.
  std::vector<std::vector<Lit>> buckets;
  for (const PbTerm& t : terms) {
    assert(t.coeff > 0);
    Weight c = t.coeff;
    int bit = 0;
    while (c != 0) {
      if ((c & 1) != 0) {
        if (static_cast<std::size_t>(bit) >= buckets.size()) {
          buckets.resize(static_cast<std::size_t>(bit) + 1);
        }
        buckets[static_cast<std::size_t>(bit)].push_back(t.lit);
      }
      c >>= 1;
      ++bit;
    }
  }
  // Reduce each bucket with full/half adders, pushing carries upward.
  // Note: buckets may grow (and reallocate) while a bit is processed, so
  // all accesses are by index.
  std::vector<Lit> result;
  for (std::size_t bit = 0; bit < buckets.size(); ++bit) {
    while (buckets[bit].size() >= 3) {
      const Lit a = buckets[bit][buckets[bit].size() - 1];
      const Lit b = buckets[bit][buckets[bit].size() - 2];
      const Lit c = buckets[bit][buckets[bit].size() - 3];
      buckets[bit].resize(buckets[bit].size() - 3);
      const Lit sum = defineXor3(sink, a, b, c);
      const Lit carry = defineMajority(sink, a, b, c);
      if (bit + 1 >= buckets.size()) buckets.resize(bit + 2);
      buckets[bit].push_back(sum);
      buckets[bit + 1].push_back(carry);
    }
    if (buckets[bit].size() == 2) {
      const Lit a = buckets[bit][0];
      const Lit b = buckets[bit][1];
      buckets[bit].clear();
      const Lit sum = defineXor2(sink, a, b);
      const Lit carry = defineAnd2(sink, a, b);
      if (bit + 1 >= buckets.size()) buckets.resize(bit + 2);
      buckets[bit].push_back(sum);
      buckets[bit + 1].push_back(carry);
    }
    result.push_back(buckets[bit].empty() ? sink.falseLit()
                                          : buckets[bit][0]);
  }
  return result;
}

Lit buildLeqConst(ClauseSink& sink, std::span<const Lit> bits, Weight bound) {
  const Lit tru = sink.trueLit();
  if (bound < 0) return ~tru;
  // The bound dominates every representable value: trivially true.
  if (static_cast<std::size_t>(bits.size()) < 63 &&
      bound >= (Weight{1} << bits.size())) {
    return tru;
  }
  // le[i]: bits[i..0] interpreted as binary is <= bound[i..0].
  Lit le = tru;  // empty suffix
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const bool kbit = ((bound >> i) & 1) != 0;
    const Lit r = bits[i];
    Lit next = posLit(sink.newVar());
    if (kbit) {
      // next <-> ~r | le
      sink.addClause({r, next});
      sink.addClause({~le, next});
      sink.addClause({~next, ~r, le});
    } else {
      // next <-> ~r & le
      sink.addClause({~next, ~r});
      sink.addClause({~next, le});
      sink.addClause({r, ~le, next});
    }
    le = next;
  }
  // Bits above the bound's width must simply not exceed it; they are part
  // of `bits` and handled by the loop. If the bound has more bits than the
  // network, the remaining bound bits are all >= the value: still <=.
  return le;
}

void encodePbLeq(ClauseSink& sink, std::span<const PbTerm> terms, Weight bound,
                 PbEncoding enc, std::optional<Lit> activator) {
  Weight b = bound;
  const std::vector<PbTerm> ts = normalize(terms, b);
  auto assertLit = [&](Lit root) {
    std::vector<Lit> clause{root};
    if (activator) clause.push_back(~*activator);
    sink.addClause(clause);
  };
  Weight total = 0;
  for (const PbTerm& t : ts) total += t.coeff;
  if (total <= b) return;  // trivially true
  if (b < 0) {
    std::vector<Lit> clause;
    if (activator) clause.push_back(~*activator);
    sink.addClause(clause);
    return;
  }
  switch (enc) {
    case PbEncoding::Bdd:
      assertLit(buildPbLeqBdd(sink, ts, b));
      return;
    case PbEncoding::Adder: {
      const std::vector<Lit> bits = buildAdderNetwork(sink, ts);
      assertLit(buildLeqConst(sink, bits, b));
      return;
    }
  }
}

}  // namespace msu
