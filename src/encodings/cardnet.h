/// \file cardnet.h
/// \brief k-Cardinality networks (Asín, Nieuwenhuis, Oliveras &
///        Rodríguez-Carbonell): odd-even merge networks truncated to the
///        first k+1 outputs. Same arc-consistent propagation as the full
///        Batcher sorter used by msu4 v2, at O(n log^2 k) instead of
///        O(n log^2 n) size — the natural "alternative encoding" the
///        paper's §5 asks to be explored.
///
/// Emits through the (possibly scoped) ClauseSink: msu4-cnet builds
/// each network inside an encoding scope, so superseded networks are
/// physically retired and their wires recycled (see sink.h). The
/// constant true/false wires come from the sink's scope-independent
/// trueLit().

#pragma once

#include <span>
#include <vector>

#include "cnf/literal.h"
#include "encodings/sink.h"

namespace msu {

/// Builds a cardinality network over `lits` producing the first
/// `min(|lits|, k+1)` sorted ("ones-first") outputs: `out[i]` is true if
/// at least `i+1` inputs are true, valid for `i <= k`. Enforce
/// `sum <= k` by asserting `~out[k]` (when `k < |lits|`).
///
/// Only the input->output ("at most") direction is emitted, which is
/// what upper-bound constraints need.
[[nodiscard]] std::vector<Lit> buildCardinalityNetwork(
    ClauseSink& sink, std::span<const Lit> lits, int k);

}  // namespace msu
