#include "encodings/cardnet.h"

#include <algorithm>
#include <cassert>

namespace msu {

namespace {

/// Forward-only comparator: hi = a|b, lo = a&b, with just the
/// input->output clauses upper-bound constraints need. Constants
/// short-circuit without emitting anything.
std::pair<Lit, Lit> halfComparator(ClauseSink& sink, Lit a, Lit b, Lit tru) {
  const Lit fls = ~tru;
  if (a == fls) return {b, fls};
  if (b == fls) return {a, fls};
  if (a == tru) return {tru, b};
  if (b == tru) return {tru, a};
  const Lit hi = posLit(sink.newVar());
  const Lit lo = posLit(sink.newVar());
  sink.addClause({~a, hi});
  sink.addClause({~b, hi});
  sink.addClause({~a, ~b, lo});
  return {hi, lo};
}

[[nodiscard]] std::vector<Lit> evensOf(const std::vector<Lit>& v) {
  std::vector<Lit> out;
  for (std::size_t i = 0; i < v.size(); i += 2) out.push_back(v[i]);
  return out;
}

[[nodiscard]] std::vector<Lit> oddsOf(const std::vector<Lit>& v) {
  std::vector<Lit> out;
  for (std::size_t i = 1; i < v.size(); i += 2) out.push_back(v[i]);
  return out;
}

/// Truncated odd-even merge: `a` and `b` are sorted ones-first, equal
/// power-of-two length n; returns the first `min(2n, m)` merged outputs.
/// Kept output positions only ever read sub-merge positions below
/// `m/2 + 1`, which is what makes the truncation sound.
std::vector<Lit> truncatedMerge(ClauseSink& sink, const std::vector<Lit>& a,
                                const std::vector<Lit>& b, int m, Lit tru) {
  assert(a.size() == b.size());
  const int n = static_cast<int>(a.size());
  if (m <= 0) return {};
  if (n == 1) {
    auto [hi, lo] = halfComparator(sink, a[0], b[0], tru);
    std::vector<Lit> out{hi, lo};
    out.resize(static_cast<std::size_t>(std::min(2, m)));
    return out;
  }
  const int subM = std::min(n, m / 2 + 1);
  const std::vector<Lit> d =
      truncatedMerge(sink, evensOf(a), evensOf(b), subM, tru);
  const std::vector<Lit> e =
      truncatedMerge(sink, oddsOf(a), oddsOf(b), subM, tru);

  const int length = std::min(2 * n, m);
  std::vector<Lit> out(static_cast<std::size_t>(length));
  out[0] = d[0];
  for (int pos = 1; pos < length; pos += 2) {
    if (pos == 2 * n - 1) {
      out[static_cast<std::size_t>(pos)] = e[static_cast<std::size_t>(n - 1)];
      break;
    }
    const int i = (pos - 1) / 2;
    auto [hi, lo] = halfComparator(sink, d[static_cast<std::size_t>(i + 1)],
                                   e[static_cast<std::size_t>(i)], tru);
    out[static_cast<std::size_t>(pos)] = hi;
    if (pos + 1 < length) out[static_cast<std::size_t>(pos + 1)] = lo;
  }
  return out;
}

/// Recursive cardinality network: returns the first `min(|v|, m)` sorted
/// outputs over `v`.
std::vector<Lit> cardRec(ClauseSink& sink, std::span<const Lit> v, int m,
                         Lit tru) {
  if (m <= 0) return {};
  if (v.size() <= 1) return {v.begin(), v.end()};
  const std::size_t half = v.size() / 2;
  std::vector<Lit> left = cardRec(sink, v.subspan(0, half), m, tru);
  std::vector<Lit> right = cardRec(sink, v.subspan(half), m, tru);

  // Align to a common power-of-two length; false padding at the tail of
  // a ones-first sequence is exact, not an approximation.
  std::size_t padded = 1;
  while (padded < std::max(left.size(), right.size())) padded *= 2;
  left.resize(padded, ~tru);
  right.resize(padded, ~tru);

  std::vector<Lit> out = truncatedMerge(
      sink, left, right, std::min<int>(m, static_cast<int>(v.size())), tru);
  if (out.size() > v.size()) out.resize(v.size());  // drop pad positions
  return out;
}

}  // namespace

std::vector<Lit> buildCardinalityNetwork(ClauseSink& sink,
                                         std::span<const Lit> lits, int k) {
  if (lits.empty() || k < 0) return {};
  const Lit tru = sink.trueLit();
  return cardRec(sink, lits, k + 1, tru);
}

}  // namespace msu
