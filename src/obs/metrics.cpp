#include "obs/metrics.h"

#include <ostream>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace msu {
namespace obs {

int Histogram::bucketIndex(std::int64_t v) {
  if (v <= 1) return 0;
  // Smallest i with v <= 2^i, i.e. the bit width of v-1.
  int i = 0;
  std::uint64_t x = static_cast<std::uint64_t>(v - 1);
  while (x != 0) {
    x >>= 1;
    ++i;
  }
  return i < kBuckets ? i : kBuckets - 1;
}

std::int64_t Histogram::bucketUpperBound(int i) {
  if (i >= kBuckets - 1) return -1;  // +Inf
  return std::int64_t{1} << i;
}

MetricsRegistry::Entry& MetricsRegistry::findOrCreate(const std::string& name,
                                                      const std::string& help,
                                                      Kind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    if (it->second.kind != kind)
      throw std::logic_error("metric '" + name +
                             "' re-registered with a different kind");
    return it->second;
  }
  Entry e;
  e.kind = kind;
  e.help = help;
  switch (kind) {
    case Kind::kCounter:
      e.counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      e.gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram:
      e.histogram = std::make_unique<Histogram>();
      break;
  }
  return metrics_.emplace(name, std::move(e)).first->second;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help) {
  return *findOrCreate(name, help, Kind::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& help) {
  return *findOrCreate(name, help, Kind::kGauge).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help) {
  return *findOrCreate(name, help, Kind::kHistogram).histogram;
}

void MetricsRegistry::writeProm(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, e] : metrics_) {
    if (!e.help.empty()) out << "# HELP " << name << " " << e.help << "\n";
    switch (e.kind) {
      case Kind::kCounter:
        out << "# TYPE " << name << " counter\n";
        out << name << " " << e.counter->value() << "\n";
        break;
      case Kind::kGauge:
        out << "# TYPE " << name << " gauge\n";
        out << name << " " << e.gauge->value() << "\n";
        break;
      case Kind::kHistogram: {
        out << "# TYPE " << name << " histogram\n";
        std::int64_t cum = 0;
        for (int i = 0; i < Histogram::kBuckets; ++i) {
          cum += e.histogram->bucketCount(i);
          const std::int64_t ub = Histogram::bucketUpperBound(i);
          out << name << "_bucket{le=\"";
          if (ub < 0)
            out << "+Inf";
          else
            out << ub;
          out << "\"} " << cum << "\n";
        }
        out << name << "_sum " << e.histogram->sum() << "\n";
        out << name << "_count " << e.histogram->count() << "\n";
        break;
      }
    }
  }
}

std::int64_t peakRssBytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::int64_t>(ru.ru_maxrss);  // already bytes
#else
  return static_cast<std::int64_t>(ru.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

}  // namespace obs
}  // namespace msu
