#include "obs/trace.h"

#include <algorithm>
#include <fstream>
#include <ostream>

namespace msu {
namespace obs {

namespace {

std::uint64_t nextTracerId() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

/// Thread-local cache of the last (tracer, buffer) pair this thread
/// used. Keyed by a process-unique tracer id, never by address, so a
/// Tracer allocated at a recycled address cannot hit a stale entry.
struct TlsRef {
  std::uint64_t tracer_id = 0;
  void* buffer = nullptr;
};
thread_local TlsRef tls_ref;

}  // namespace

const char* traceCatName(TraceCat cat) {
  switch (cat) {
    case TraceCat::kOracle:
      return "oracle";
    case TraceCat::kCore:
      return "core";
    case TraceCat::kInproc:
      return "inproc";
    case TraceCat::kRestart:
      return "restart";
    case TraceCat::kShare:
      return "share";
    case TraceCat::kCube:
      return "cube";
    case TraceCat::kJob:
      return "job";
    case TraceCat::kWorker:
      return "worker";
  }
  return "?";
}

Tracer::Tracer() : Tracer(Options{}) {}

Tracer::Tracer(Options opts)
    : capacity_(std::max<std::size_t>(opts.capacity_per_thread, 16)),
      tracer_id_(nextTracerId()),
      epoch_(std::chrono::steady_clock::now()) {}

Tracer::~Tracer() {
  // Invalidate this thread's cache eagerly; other threads' caches are
  // keyed by tracer_id_ which is never reissued, so they miss safely.
  if (tls_ref.tracer_id == tracer_id_) tls_ref = TlsRef{};
}

std::int64_t Tracer::nowUs() const {
  return timestampUs(std::chrono::steady_clock::now());
}

std::int64_t Tracer::timestampUs(
    std::chrono::steady_clock::time_point tp) const {
  if (tp <= epoch_) return 0;
  return std::chrono::duration_cast<std::chrono::microseconds>(tp - epoch_)
      .count();
}

Tracer::ThreadBuffer* Tracer::buffer() {
  if (tls_ref.tracer_id == tracer_id_)
    return static_cast<ThreadBuffer*>(tls_ref.buffer);
  return registerThread();
}

Tracer::ThreadBuffer* Tracer::registerThread() {
  std::lock_guard<std::mutex> lock(mu_);
  const auto me = std::this_thread::get_id();
  for (const auto& b : buffers_) {
    if (b->owner == me) {
      tls_ref = TlsRef{tracer_id_, b.get()};
      return b.get();
    }
  }
  buffers_.push_back(std::make_unique<ThreadBuffer>(capacity_));
  ThreadBuffer* b = buffers_.back().get();
  b->owner = me;
  b->tid = static_cast<std::uint32_t>(buffers_.size() - 1);
  tls_ref = TlsRef{tracer_id_, b};
  return b;
}

void Tracer::emit(const TraceEvent& e) {
  ThreadBuffer* b = buffer();
  // Single-writer ring: only the owner thread ever touches the slots
  // or advances head, so a relaxed load + release store suffice. The
  // release pairs with the exporter's acquire so a published head
  // implies a fully written slot.
  const std::uint64_t h = b->head.load(std::memory_order_relaxed);
  TraceEvent& slot = b->events[h % capacity_];
  slot = e;
  slot.tid = b->tid;
  b->head.store(h + 1, std::memory_order_release);
}

void Tracer::instant(TraceCat cat, const char* name, const char* argName,
                     std::int64_t arg) {
  if (!enabled()) return;
  TraceEvent e;
  e.name = name;
  e.arg_name = argName;
  e.ts_us = nowUs();
  e.dur_us = -1;
  e.arg = arg;
  e.cat = cat;
  emit(e);
}

void Tracer::span(TraceCat cat, const char* name, std::int64_t startUs,
                  std::int64_t endUs, const char* argName, std::int64_t arg) {
  if (!enabled()) return;
  TraceEvent e;
  e.name = name;
  e.arg_name = argName;
  e.ts_us = startUs;
  e.dur_us = std::max<std::int64_t>(0, endUs - startUs);
  e.arg = arg;
  e.cat = cat;
  emit(e);
}

std::int64_t Tracer::emitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::int64_t total = 0;
  for (const auto& b : buffers_)
    total +=
        static_cast<std::int64_t>(b->head.load(std::memory_order_acquire));
  return total;
}

std::int64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::int64_t total = 0;
  for (const auto& b : buffers_) {
    const std::uint64_t h = b->head.load(std::memory_order_acquire);
    if (h > capacity_) total += static_cast<std::int64_t>(h - capacity_);
  }
  return total;
}

int Tracer::threadsSeen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(buffers_.size());
}

namespace {

/// Escapes a string for a JSON string literal. Event names are our own
/// static literals, but keep the exporter defensive anyway.
void writeJsonString(std::ostream& out, const char* s) {
  out << '"';
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          out << "\\u0020";  // control chars: emit a space escape
        else
          out << c;
    }
  }
  out << '"';
}

void writeEvent(std::ostream& out, const TraceEvent& e) {
  out << "{\"name\":";
  writeJsonString(out, e.name != nullptr ? e.name : "?");
  out << ",\"cat\":\"" << traceCatName(e.cat) << "\"";
  if (e.dur_us < 0) {
    out << ",\"ph\":\"i\",\"s\":\"t\"";
  } else {
    out << ",\"ph\":\"X\",\"dur\":" << e.dur_us;
  }
  out << ",\"ts\":" << e.ts_us << ",\"pid\":1,\"tid\":" << e.tid;
  if (e.arg_name != nullptr) {
    out << ",\"args\":{";
    writeJsonString(out, e.arg_name);
    out << ":" << e.arg << "}";
  }
  out << "}";
}

}  // namespace

void Tracer::exportChromeTrace(std::ostream& out) const {
  std::vector<TraceEvent> all;
  std::int64_t drops = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& b : buffers_) {
      const std::uint64_t h = b->head.load(std::memory_order_acquire);
      const std::uint64_t n = std::min<std::uint64_t>(h, capacity_);
      if (h > capacity_) drops += static_cast<std::int64_t>(h - capacity_);
      for (std::uint64_t i = h - n; i < h; ++i)
        all.push_back(b->events[i % capacity_]);
    }
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : all) {
    if (!first) out << ",\n";
    first = false;
    writeEvent(out, e);
  }
  out << "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped\":" << drops
      << "}}\n";
}

bool Tracer::exportChromeTrace(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  exportChromeTrace(out);
  return static_cast<bool>(out);
}

}  // namespace obs
}  // namespace msu
