/// \file trace.h
/// \brief Lock-free per-thread ring-buffer tracer with a Chrome
///        trace_event JSON exporter.
///
/// The tracer answers the question the end-of-run SolverStats tallies
/// cannot: *when* did the time go? Every instrumented seam (oracle
/// solve() calls, core trimming, inprocess passes, restart segments,
/// shared-clause import drains, cube splits/steals, service job
/// lifecycle) emits spans or instants into a fixed-capacity ring buffer
/// owned by the emitting thread. Exported files open directly in
/// Perfetto (https://ui.perfetto.dev) or chrome://tracing.
///
/// ## Concurrency model (single-writer rings)
///
/// Each thread registers once (cold path, mutex) and receives its own
/// ring buffer. All subsequent emission is wait-free: the owning thread
/// writes the event slot, then release-stores a monotonically
/// increasing head cursor. Nobody else ever writes the buffer, so there
/// are no CAS loops and no lost updates. Drop accounting is exact by
/// construction: a ring of capacity C with head H has dropped
/// max(0, H - C) events (the overwritten prefix).
///
/// The exporter acquire-loads every head and reads the surviving
/// suffix. Export is defined at *quiescence* only: all emitting threads
/// must have finished (joined, or provably past their last emit) before
/// exportChromeTrace() runs. This is the natural shape for every caller
/// in this tree (CLI after solve(), bench after the run, tests after
/// join) and it keeps the hot path free of reader/writer coordination.
///
/// ## Cost model
///
/// Disabled (`enabled() == false`, the default) the RAII guards cost
/// one pointer test; a null Tracer* costs the same. Callers therefore
/// thread a `Tracer*` (nullptr = off) through Options structs exactly
/// like the existing ProofTracer / FaultInjector observer pointers.
/// Enabled, an emit is one clock read plus one ring-slot store. The
/// measured numbers live in bench/README.md ("Decision record: tracer
/// overhead") and are gated in CI via bench/BENCH_ablation_trace.json.
///
/// Compile-time kill switch: building with -DMSU_OBS_NOOP turns the
/// emission API (TraceSpan, instant()) into empty inlines so the
/// instrumentation vanishes entirely; used to measure the disabled-path
/// overhead honestly (A/B of two builds, see bench/README.md).
///
/// All event names and arg names must be string literals (or otherwise
/// outlive the Tracer): the ring stores `const char*`, never copies.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace msu {
namespace obs {

/// Event category; becomes the "cat" field in the exported JSON so
/// Perfetto can filter (e.g. show only "share" events).
enum class TraceCat : std::uint8_t {
  kOracle,   ///< SAT oracle solve() calls.
  kCore,     ///< Core extraction / trimming / minimization.
  kInproc,   ///< Inprocessing passes.
  kRestart,  ///< Restart segments inside one solve() call.
  kShare,    ///< Shared-clause import drains / exchange traffic.
  kCube,     ///< Cube-and-conquer splits, steals, per-cube conquests.
  kJob,      ///< Service job lifecycle (submit/queue/run/done).
  kWorker,   ///< Portfolio / cube worker lifetimes.
};

/// Returns the stable string for a category ("oracle", "share", ...).
const char* traceCatName(TraceCat cat);

/// One ring slot. `dur_us < 0` marks an instant event ("ph":"i"),
/// otherwise a complete span ("ph":"X"). At most one named integer
/// argument per event keeps the slot fixed-size and the write wait-free.
struct TraceEvent {
  const char* name = nullptr;      ///< Static string; never owned.
  const char* arg_name = nullptr;  ///< Optional; static string.
  std::int64_t ts_us = 0;          ///< Start, microseconds since epoch().
  std::int64_t dur_us = -1;        ///< Span duration; -1 = instant.
  std::int64_t arg = 0;
  std::uint32_t tid = 0;  ///< Registration-order thread id.
  TraceCat cat = TraceCat::kOracle;
};

class Tracer {
 public:
  struct Options {
    /// Ring capacity per emitting thread, in events. When a thread
    /// emits more, the oldest events are overwritten and counted as
    /// dropped. 1<<14 events ≈ 0.75 MiB per thread.
    std::size_t capacity_per_thread = std::size_t{1} << 14;
  };

  Tracer();
  explicit Tracer(Options opts);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Emission gate. Guards and instant() self-check it, so flipping
  /// this off makes every instrumented seam cost one load+branch.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void setEnabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Microseconds since this tracer's construction (steady clock).
  std::int64_t nowUs() const;

  /// Converts an externally captured steady_clock time point into this
  /// tracer's timebase (for layers like the service that already hold
  /// timestamps). Times before construction clamp to 0.
  std::int64_t timestampUs(std::chrono::steady_clock::time_point tp) const;

  /// Emits an instant event on the calling thread.
  void instant(TraceCat cat, const char* name, const char* argName = nullptr,
               std::int64_t arg = 0);

  /// Emits a complete span [startUs, endUs] on the calling thread.
  /// Usually called via TraceSpan, but layers that clock their own
  /// intervals (service queue time) call it directly.
  void span(TraceCat cat, const char* name, std::int64_t startUs,
            std::int64_t endUs, const char* argName = nullptr,
            std::int64_t arg = 0);

  /// Total events ever emitted (including later-overwritten ones).
  std::int64_t emitted() const;
  /// Events overwritten because a per-thread ring wrapped. Exact.
  std::int64_t dropped() const;
  /// Events currently held in the rings (= emitted() - dropped()).
  std::int64_t retained() const { return emitted() - dropped(); }
  /// Number of threads that have emitted at least one event.
  int threadsSeen() const;

  /// Writes the surviving events as Chrome trace_event JSON
  /// ({"traceEvents":[...]}), sorted by timestamp. Quiescence contract:
  /// see the file comment. Drop counts are recorded in the trace
  /// metadata so a truncated trace is self-describing.
  void exportChromeTrace(std::ostream& out) const;

  /// Convenience: export to a file. Returns false on I/O failure.
  bool exportChromeTrace(const std::string& path) const;

 private:
  struct ThreadBuffer {
    explicit ThreadBuffer(std::size_t cap) : events(cap) {}
    std::vector<TraceEvent> events;
    /// Events ever written by the owner thread. The owner release-stores
    /// after filling the slot; the exporter acquire-loads.
    std::atomic<std::uint64_t> head{0};
    std::thread::id owner;
    std::uint32_t tid = 0;
  };

  ThreadBuffer* buffer();
  ThreadBuffer* registerThread();
  void emit(const TraceEvent& e);

  const std::size_t capacity_;
  const std::uint64_t tracer_id_;  ///< Process-unique, for the TLS cache.
  const std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> enabled_{false};

  mutable std::mutex mu_;  ///< Guards buffers_ growth (cold path only).
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

#ifndef MSU_OBS_NOOP

/// RAII span guard: clocks construction→destruction and emits one
/// complete event. With a null or disabled tracer the whole guard is a
/// pointer test. Typical use:
///
///   obs::TraceSpan span(opts_.trace, obs::TraceCat::kOracle, "solve");
///   ...
///   span.arg("conflicts", delta);   // optional, any time before scope end
class TraceSpan {
 public:
  TraceSpan(Tracer* t, TraceCat cat, const char* name)
      : t_(t != nullptr && t->enabled() ? t : nullptr),
        name_(name),
        cat_(cat) {
    if (t_ != nullptr) start_us_ = t_->nowUs();
  }
  ~TraceSpan() {
    if (t_ != nullptr)
      t_->span(cat_, name_, start_us_, t_->nowUs(), arg_name_, arg_);
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches the event's single integer argument (last call wins).
  void arg(const char* name, std::int64_t value) {
    arg_name_ = name;
    arg_ = value;
  }

  /// True when the guard will emit (tracer present and enabled at
  /// construction) — lets callers skip arg computation when off.
  bool active() const { return t_ != nullptr; }

 private:
  Tracer* t_;
  const char* name_;
  const char* arg_name_ = nullptr;
  std::int64_t start_us_ = 0;
  std::int64_t arg_ = 0;
  TraceCat cat_;
};

/// Instant-emit helper that tolerates a null tracer (mirrors the guard).
inline void traceInstant(Tracer* t, TraceCat cat, const char* name,
                         const char* argName = nullptr, std::int64_t arg = 0) {
  if (t != nullptr && t->enabled()) t->instant(cat, name, argName, arg);
}

#else  // MSU_OBS_NOOP: compile the emission API away entirely.

class TraceSpan {
 public:
  TraceSpan(Tracer*, TraceCat, const char*) {}
  void arg(const char*, std::int64_t) {}
  bool active() const { return false; }
};

inline void traceInstant(Tracer*, TraceCat, const char*,
                         const char* = nullptr, std::int64_t = 0) {}

#endif  // MSU_OBS_NOOP

}  // namespace obs
}  // namespace msu
