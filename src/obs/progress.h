/// \file progress.h
/// \brief Live anytime-progress sink: the lock-free channel between a
///        running MaxSAT job and whoever polls it.
///
/// Core-guided search is anytime — lower bounds rise with each core,
/// upper bounds fall with each incumbent model — but until this layer
/// the bounds were only visible at the end (MaxSatResult) or via the
/// onBounds callback, which runs on the *solving* thread. A
/// ProgressSink is a handful of atomics an engine-side writer updates
/// and any observer thread (SolveService::poll(), a UI) reads without
/// coordination.
///
/// Writers: engines report bounds through MaxSatOptions::onBounds (the
/// service wraps the callback to feed the sink); OracleSession adds
/// conflict/solve-call/memory deltas after every oracle call. Multiple
/// concurrent writers per job are expected (portfolio/cube workers),
/// so bound updates are monotone CAS folds — a stale worker can never
/// loosen a published bound, which is what makes the poll() contract
/// ("bounds only tighten") testable.

#pragma once

#include <atomic>
#include <cstdint>

namespace msu {
namespace obs {

struct ProgressSink {
  /// No upper bound published yet (no model found so far).
  static constexpr std::int64_t kNoUpper = -1;

  std::atomic<std::int64_t> lower_bound{0};
  std::atomic<std::int64_t> upper_bound{kNoUpper};
  std::atomic<std::int64_t> conflicts{0};
  std::atomic<std::int64_t> sat_calls{0};
  std::atomic<std::int64_t> mem_bytes{0};

  /// Folds a (lower, upper) report in monotonically: lower only rises,
  /// upper only falls. Safe against racing writers with stale views.
  void noteBounds(std::int64_t lower, std::int64_t upper) {
    std::int64_t cur = lower_bound.load(std::memory_order_relaxed);
    while (lower > cur && !lower_bound.compare_exchange_weak(
                              cur, lower, std::memory_order_relaxed)) {
    }
    cur = upper_bound.load(std::memory_order_relaxed);
    while ((cur == kNoUpper || upper < cur) &&
           !upper_bound.compare_exchange_weak(cur, upper,
                                              std::memory_order_relaxed)) {
    }
  }

  void addConflicts(std::int64_t d) {
    if (d > 0) conflicts.fetch_add(d, std::memory_order_relaxed);
  }
  void addSatCalls(std::int64_t d) {
    if (d > 0) sat_calls.fetch_add(d, std::memory_order_relaxed);
  }
  /// mem_bytes tracks the writer's current estimate (a gauge, not a
  /// sum): the session overwrites its own contribution via add() of the
  /// delta since its last report, so concurrent sessions of one job
  /// aggregate instead of clobbering each other.
  void addMemBytes(std::int64_t delta) {
    mem_bytes.fetch_add(delta, std::memory_order_relaxed);
  }
};

}  // namespace obs
}  // namespace msu
