/// \file metrics.h
/// \brief Central metrics registry: counters, gauges, and log2-bucketed
///        histograms with Prometheus-style text exposition.
///
/// Where the tracer (obs/trace.h) answers "when did the time go", the
/// registry answers "how much, in aggregate, right now" — the shape a
/// daemon scrapes. Registration (name → metric) is mutex-guarded and
/// cold; every emission path (Counter::add, Gauge::set,
/// Histogram::observe) is a handful of relaxed atomics and safe from
/// any thread.
///
/// Conventions, matching the Prometheus exposition format the
/// writeProm() snapshot emits:
///  * counters end in `_total`, monotonically increase;
///  * gauges are instantaneous values (queue depth, mem bytes);
///  * histograms use power-of-two bucket upper bounds (1, 2, 4, ...,
///    +Inf) — cheap to index (one bit-scan), wide dynamic range, and
///    units are whatever the caller observes (we use microseconds for
///    latencies, counts for drain sizes; the metric name says which).
///
/// The registry hands out stable references: metrics are never removed,
/// so a `Counter&` captured once may be bumped forever without
/// re-locking. SolverStats integration lives in harness/tables
/// (exportStatsToMetrics) so this layer stays dependency-free.

#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace msu {
namespace obs {

/// Monotonic counter.
class Counter {
 public:
  void add(std::int64_t delta = 1) {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Instantaneous value; set() overwrites, add() adjusts.
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t delta) {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed log2 histogram: bucket i holds observations v with
/// v <= 2^i (bucket 0 additionally catches v <= 1, including 0 and
/// clamped negatives); the last bucket is +Inf. observe() is lock-free.
class Histogram {
 public:
  /// Upper bounds 2^0 .. 2^(kBuckets-2), then +Inf: covers up to ~2.1e9
  /// (35 minutes in microseconds) with per-bucket resolution of 2x.
  static constexpr int kBuckets = 32;

  void observe(std::int64_t v) {
    buckets_[bucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v > 0 ? v : 0, std::memory_order_relaxed);
  }

  std::int64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::int64_t bucketCount(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Smallest bucket whose upper bound is >= v (clamped into range).
  static int bucketIndex(std::int64_t v);
  /// Upper bound of bucket i; -1 encodes +Inf (the last bucket).
  static std::int64_t bucketUpperBound(int i);

 private:
  std::atomic<std::int64_t> buckets_[kBuckets] = {};
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
};

/// Name-keyed registry. counter()/gauge()/histogram() find-or-create;
/// requesting an existing name with a different kind throws
/// std::logic_error (a naming bug, not a runtime condition).
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name, const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& help = "");
  Histogram& histogram(const std::string& name, const std::string& help = "");

  /// Prometheus text exposition snapshot (# HELP / # TYPE lines, then
  /// samples; histograms expand to _bucket{le=...}/_sum/_count).
  /// Metrics appear in name order; safe to call while emitters run
  /// (values are a relaxed snapshot, not a consistent cut).
  void writeProm(std::ostream& out) const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& findOrCreate(const std::string& name, const std::string& help,
                      Kind kind);

  mutable std::mutex mu_;
  std::map<std::string, Entry> metrics_;
};

/// Process-wide peak resident set size in bytes (getrusage ru_maxrss),
/// or 0 where the platform offers no equivalent. The OS-truth companion
/// to the solver's cooperative accounting (SolverStats::mem_bytes):
/// the cooperative gauge is what budgets enforce, this is what the
/// kernel actually charged — the memory-budget benches record both.
[[nodiscard]] std::int64_t peakRssBytes();

}  // namespace obs
}  // namespace msu
