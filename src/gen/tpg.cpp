#include "gen/tpg.h"

#include <cassert>
#include <random>

namespace msu {

CnfFormula buildTpgMiter(const Circuit& circuit, const StuckAtFault& fault) {
  assert(fault.gate >= 0 && fault.gate < circuit.numGates());
  CnfFormula cnf;
  std::vector<Var> inputs;
  for (int i = 0; i < circuit.numInputs(); ++i) inputs.push_back(cnf.newVar());

  // Fault-free copy.
  const std::vector<Var> good = tseitinEncodeInto(circuit, cnf, inputs);

  // Faulty copy: encode gates after the fault site against a variable
  // pinned to the stuck value at the site. Gates before (and including)
  // the site reuse the fault-free copy's variables — standard fault-cone
  // sharing in ATPG encodings.
  std::vector<Var> bad = good;
  const Var stuck = cnf.newVar();
  cnf.addClause({Lit(stuck, !fault.stuckAt)});  // pin to the stuck value
  bad[static_cast<std::size_t>(fault.gate)] = stuck;

  // Re-encode every gate downstream of the fault with fresh variables.
  std::vector<char> touched(static_cast<std::size_t>(circuit.numGates()), 0);
  touched[static_cast<std::size_t>(fault.gate)] = 1;
  for (int g = circuit.numInputs(); g < circuit.numGates(); ++g) {
    if (g == fault.gate) continue;
    const Gate& gate = circuit.gate(g);
    bool downstream = false;
    for (int f : gate.fanin) {
      if (touched[static_cast<std::size_t>(f)]) {
        downstream = true;
        break;
      }
    }
    if (!downstream) continue;
    touched[static_cast<std::size_t>(g)] = 1;
    // Fresh variable + Tseitin clauses over the faulty-copy fanin vars.
    const Var out = cnf.newVar();
    bad[static_cast<std::size_t>(g)] = out;
    // Reuse the circuit encoder by building a tiny one-gate circuit view:
    // emit the gate clauses directly through a single-gate encode.
    Circuit one(static_cast<int>(gate.fanin.size()));
    std::vector<int> localIns;
    for (std::size_t i = 0; i < gate.fanin.size(); ++i) {
      localIns.push_back(static_cast<int>(i));
    }
    one.addGate(gate.type, localIns);
    std::vector<Var> map;
    for (int f : gate.fanin) map.push_back(bad[static_cast<std::size_t>(f)]);
    // tseitinEncodeInto allocates the gate's output var itself; to pin it
    // to `out`, encode then add equivalence clauses.
    const std::vector<Var> gv = tseitinEncodeInto(one, cnf, map);
    const Var enc = gv.back();
    cnf.addClause({posLit(enc), negLit(out)});
    cnf.addClause({negLit(enc), posLit(out)});
  }

  // Some output must differ.
  Clause someDiff;
  for (int o : circuit.outputs()) {
    const Lit a = posLit(good[static_cast<std::size_t>(o)]);
    const Lit b = posLit(bad[static_cast<std::size_t>(o)]);
    const Lit x = posLit(cnf.newVar());
    cnf.addClause({~x, a, b});
    cnf.addClause({~x, ~a, ~b});
    cnf.addClause({x, ~a, b});
    cnf.addClause({x, a, ~b});
    someDiff.push_back(x);
  }
  cnf.addClause(std::move(someDiff));
  return cnf;
}

std::vector<int> deadGates(const Circuit& circuit) {
  std::vector<char> live(static_cast<std::size_t>(circuit.numGates()), 0);
  std::vector<int> stack(circuit.outputs().begin(), circuit.outputs().end());
  while (!stack.empty()) {
    const int g = stack.back();
    stack.pop_back();
    if (live[static_cast<std::size_t>(g)]) continue;
    live[static_cast<std::size_t>(g)] = 1;
    for (int f : circuit.gate(g).fanin) stack.push_back(f);
  }
  std::vector<int> dead;
  for (int g = circuit.numInputs(); g < circuit.numGates(); ++g) {
    if (!live[static_cast<std::size_t>(g)]) dead.push_back(g);
  }
  return dead;
}

RedundantFaultCircuit redundantFaultCircuit(const RandomCircuitParams& params,
                                            std::uint64_t spliceSeed) {
  Circuit circuit = randomCircuit(params);
  std::mt19937_64 rng(spliceSeed);

  // Append a structurally different but equivalent copy of the whole
  // circuit: the redundancy proof below then embeds an equivalence
  // check, so refuting the fault requires real reasoning (a fault on
  // `o | (o & g)` alone would be propagation-trivial).
  const Circuit rewritten = rewriteCircuit(circuit, spliceSeed + 1);
  const std::size_t numOuts = circuit.outputs().size();
  const std::vector<int> remap = appendCircuit(circuit, rewritten);

  std::vector<int> outs = circuit.outputs();
  assert(!outs.empty());
  const std::size_t which = rng() % numOuts;
  const int o = outs[which];
  const int oPrime =
      remap[static_cast<std::size_t>(rewritten.outputs()[which])];
  // A side signal from anywhere in the combined netlist.
  const int g = static_cast<int>(
      rng() % static_cast<std::uint64_t>(circuit.numGates()));
  const int h = circuit.addGate(GateType::And, {oPrime, g});
  const int r = circuit.addGate(GateType::Or, {o, h});
  outs[which] = r;  // out = o | (o' & g) == o  since o' == o (absorption)
  circuit.setOutputs(std::move(outs));

  RedundantFaultCircuit result;
  result.circuit = std::move(circuit);
  result.untestable = StuckAtFault{h, false};  // s-a-0: masked by absorption
  result.testable = StuckAtFault{h, true};     // s-a-1: exposed when o == 0
  return result;
}

CnfFormula untestableFaultInstance(const RandomCircuitParams& params,
                                   std::uint64_t faultSeed) {
  const RedundantFaultCircuit rf = redundantFaultCircuit(params, faultSeed);
  return buildTpgMiter(rf.circuit, rf.untestable);
}

}  // namespace msu
