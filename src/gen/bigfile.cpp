#include "gen/bigfile.h"

#include <algorithm>
#include <cassert>
#include <charconv>
#include <cstddef>

namespace msu {

namespace {

/// xorshift64: fast, deterministic, good enough for workload shaping.
struct XorShift64 {
  std::uint64_t s;
  explicit XorShift64(std::uint64_t seed) : s(seed | 1) {}
  std::uint64_t next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }
  /// Uniform in [1, n].
  int upTo(int n) { return static_cast<int>(next() % static_cast<std::uint64_t>(n)) + 1; }
};

void appendInt(std::string& out, std::int64_t v) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

/// Appends one random clause body ("lit lit lit 0\n") drawn over
/// p.vars; distinct variables, random polarity.
void appendClauseBody(std::string& out, const BigFileParams& p,
                      XorShift64& rng) {
  for (int k = 0; k < p.clause_len; ++k) {
    int v = rng.upTo(p.vars);
    const bool neg = (rng.next() & 1) != 0;
    appendInt(out, neg ? -static_cast<std::int64_t>(v) : v);
    out.push_back(' ');
  }
  out.append("0\n");
}

}  // namespace

std::string makeBigCnfText(const BigFileParams& p) {
  XorShift64 rng(p.seed);
  std::string body;
  body.reserve(static_cast<std::size_t>(p.target_bytes) + 64);
  std::int64_t clauses = 0;
  while (static_cast<std::int64_t>(body.size()) < p.target_bytes) {
    appendClauseBody(body, p, rng);
    ++clauses;
  }
  std::string out = "c synthetic parse workload (gen/bigfile)\np cnf ";
  appendInt(out, p.vars);
  out.push_back(' ');
  appendInt(out, clauses);
  out.push_back('\n');
  out += body;
  return out;
}

std::string makeBigWcnfText(const BigFileParams& p) {
  XorShift64 rng(p.seed);
  const std::int64_t top = p.max_weight + 1;
  std::string body;
  body.reserve(static_cast<std::size_t>(p.target_bytes) + 64);
  std::int64_t clauses = 0;
  const auto hardCut = static_cast<std::uint64_t>(
      p.hard_fraction * 4294967296.0);  // fraction of the 32-bit range
  while (static_cast<std::int64_t>(body.size()) < p.target_bytes) {
    const bool hard = (rng.next() & 0xFFFFFFFFu) < hardCut;
    appendInt(body, hard ? top : rng.upTo(static_cast<int>(p.max_weight)));
    body.push_back(' ');
    appendClauseBody(body, p, rng);
    ++clauses;
  }
  std::string out = "p wcnf ";
  appendInt(out, p.vars);
  out.push_back(' ');
  appendInt(out, clauses);
  out.push_back(' ');
  appendInt(out, top);
  out.push_back('\n');
  out += body;
  return out;
}

std::string makeBigOpbText(const BigFileParams& p) {
  XorShift64 rng(p.seed);
  std::string body;
  body.reserve(static_cast<std::size_t>(p.target_bytes) + 256);
  // Objective over a prefix of the universe.
  body += "min:";
  const int objVars = std::min(p.vars, 64);
  for (int i = 1; i <= objVars; ++i) {
    body += " +";
    appendInt(body, 1 + static_cast<std::int64_t>(rng.next() % 5));
    body += " x";
    appendInt(body, i);
  }
  body += " ;\n";
  std::int64_t constraints = 0;
  while (static_cast<std::int64_t>(body.size()) < p.target_bytes) {
    // Clausal constraint: sum of +-1 literals >= 1 - #negated.
    int negs = 0;
    for (int k = 0; k < p.clause_len; ++k) {
      const int v = rng.upTo(p.vars);
      const bool neg = (rng.next() & 1) != 0;
      body += neg ? " -1 x" : " +1 x";
      if (neg) ++negs;
      appendInt(body, v);
    }
    body += " >= ";
    appendInt(body, 1 - negs);
    body += " ;\n";
    ++constraints;
  }
  std::string out = "* #variable= ";
  appendInt(out, p.vars);
  out += " #constraint= ";
  appendInt(out, constraints);
  out.push_back('\n');
  out += body;
  return out;
}

}  // namespace msu
