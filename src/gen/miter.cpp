#include "gen/miter.h"

#include <cassert>

namespace msu {

CnfFormula buildMiter(const Circuit& left, const Circuit& right) {
  assert(left.numInputs() == right.numInputs());
  assert(left.outputs().size() == right.outputs().size());
  CnfFormula cnf;
  std::vector<Var> inputs;
  inputs.reserve(static_cast<std::size_t>(left.numInputs()));
  for (int i = 0; i < left.numInputs(); ++i) inputs.push_back(cnf.newVar());

  const std::vector<Var> lv = tseitinEncodeInto(left, cnf, inputs);
  const std::vector<Var> rv = tseitinEncodeInto(right, cnf, inputs);

  Clause someDiff;
  for (std::size_t o = 0; o < left.outputs().size(); ++o) {
    const Lit a = posLit(lv[static_cast<std::size_t>(
        left.outputs()[o])]);
    const Lit b = posLit(rv[static_cast<std::size_t>(
        right.outputs()[o])]);
    const Lit x = posLit(cnf.newVar());
    // x <-> a XOR b
    cnf.addClause({~x, a, b});
    cnf.addClause({~x, ~a, ~b});
    cnf.addClause({x, ~a, b});
    cnf.addClause({x, a, ~b});
    someDiff.push_back(x);
  }
  cnf.addClause(std::move(someDiff));
  return cnf;
}

CnfFormula equivalenceInstance(const RandomCircuitParams& params,
                               std::uint64_t rewriteSeed) {
  const Circuit c = randomCircuit(params);
  const Circuit r = rewriteCircuit(c, rewriteSeed);
  return buildMiter(c, r);
}

}  // namespace msu
