/// \file pigeonhole.h
/// \brief Pigeonhole-principle formulas PHP(p, h): p pigeons, h holes,
///        unsatisfiable when p > h. A classic resolution-hard control
///        family: hard for every solver, with known MaxSAT optima that
///        make good test oracles.

#pragma once

#include "cnf/formula.h"

namespace msu {

/// PHP(pigeons, holes): variable x_{i,j} = pigeon i sits in hole j.
/// Clauses: each pigeon in some hole (p clauses); no two pigeons share a
/// hole (h * C(p,2) clauses). Unsatisfiable iff pigeons > holes.
[[nodiscard]] CnfFormula pigeonhole(int pigeons, int holes);

/// MaxSAT optimum cost (minimum falsified clauses) of PHP(h+1, h):
/// exactly 1 — dropping one "pigeon in some hole" clause leaves a
/// satisfiable formula, and no assignment satisfies everything.
[[nodiscard]] inline int pigeonholeOptCost(int holes) {
  return holes >= 1 ? 1 : 0;
}

}  // namespace msu
