#include "gen/bmc.h"

#include <cassert>

namespace msu {
namespace {

/// Adds x <-> a XOR b.
void defXor(CnfFormula& cnf, Lit x, Lit a, Lit b) {
  cnf.addClause({~x, a, b});
  cnf.addClause({~x, ~a, ~b});
  cnf.addClause({x, ~a, b});
  cnf.addClause({x, a, ~b});
}

/// Adds x <-> a AND b.
void defAnd(CnfFormula& cnf, Lit x, Lit a, Lit b) {
  cnf.addClause({~x, a});
  cnf.addClause({~x, b});
  cnf.addClause({x, ~a, ~b});
}

}  // namespace

CnfFormula bmcCounterInstance(const BmcCounterParams& params) {
  const int n = params.bits;
  const int k = params.steps;
  assert(n >= 1 && k >= 1);
  assert(static_cast<std::int64_t>(k) + 1 < (std::int64_t{1} << n));

  CnfFormula cnf;
  // State bits of step 0.
  std::vector<Lit> state;
  for (int b = 0; b < n; ++b) state.push_back(posLit(cnf.newVar()));
  // Initial state: zero.
  for (Lit s : state) cnf.addClause({~s});

  for (int step = 0; step < k; ++step) {
    const Lit enable = posLit(cnf.newVar());
    // Ripple increment by `enable`: next = state + enable.
    std::vector<Lit> next;
    Lit carry = enable;
    for (int b = 0; b < n; ++b) {
      const Lit sum = posLit(cnf.newVar());
      defXor(cnf, sum, state[static_cast<std::size_t>(b)], carry);
      if (b + 1 < n) {
        const Lit nextCarry = posLit(cnf.newVar());
        defAnd(cnf, nextCarry, state[static_cast<std::size_t>(b)], carry);
        carry = nextCarry;
      }
      next.push_back(sum);
    }
    state = std::move(next);
  }

  // Safety violation: value == k+1 at the final step (impossible).
  const auto target = static_cast<std::uint64_t>(k) + 1;
  for (int b = 0; b < n; ++b) {
    const bool bit = ((target >> b) & 1u) != 0;
    const Lit s = state[static_cast<std::size_t>(b)];
    cnf.addClause({bit ? s : ~s});
  }
  return cnf;
}

}  // namespace msu
