#include "gen/debug.h"

#include <algorithm>
#include <cassert>
#include <random>

namespace msu {

DebugInstance designDebugInstance(const DebugParams& params, bool partial) {
  std::mt19937_64 rng(params.seed);
  DebugInstance inst;

  const Circuit correct = randomCircuit(params.circuit);
  const int internalGates = correct.numGates() - correct.numInputs();
  assert(internalGates > 0);

  // Pick error sites whose combined effect is observable on sampled
  // vectors; re-draw if sampling never exposes them.
  Circuit faulty;
  std::vector<int> sites;
  std::vector<std::vector<bool>> vectors;
  std::vector<std::vector<bool>> correctOutputs;
  const int numErrors = std::max(params.numErrors, 1);
  for (int attempt = 0; attempt < 64; ++attempt) {
    sites.clear();
    faulty = correct;
    while (static_cast<int>(sites.size()) < numErrors) {
      const int site =
          correct.numInputs() +
          static_cast<int>(rng() % static_cast<std::uint64_t>(internalGates));
      if (std::find(sites.begin(), sites.end(), site) != sites.end()) {
        continue;
      }
      sites.push_back(site);
      faulty = injectGateError(faulty, site);
    }
    vectors.clear();
    correctOutputs.clear();
    int mismatches = 0;
    for (int tries = 0;
         tries < 256 && static_cast<int>(vectors.size()) < params.numVectors;
         ++tries) {
      std::vector<bool> in(static_cast<std::size_t>(correct.numInputs()));
      for (std::size_t i = 0; i < in.size(); ++i) in[i] = (rng() & 1) != 0;
      const std::vector<bool> good = correct.evaluate(in);
      const std::vector<bool> bad = faulty.evaluate(in);
      const bool mismatch = good != bad;
      // Prefer exposing vectors; accept matching ones once we have one.
      if (mismatch || mismatches > 0) {
        vectors.push_back(in);
        correctOutputs.push_back(good);
        if (mismatch) ++mismatches;
      }
    }
    if (mismatches > 0 && static_cast<int>(vectors.size()) >=
                              std::min(params.numVectors, 1)) {
      inst.errorGate = sites.front();
      inst.errorGates = sites;
      inst.mismatchVectors = mismatches;
      break;
    }
  }
  assert(inst.errorGate >= 0 && "no observable error site found");

  // Encode one copy of the faulty circuit per vector. Gate clauses are
  // collected in a scratch CNF per copy so we can classify them soft.
  WcnfFormula& wcnf = inst.wcnf;
  for (std::size_t t = 0; t < vectors.size(); ++t) {
    CnfFormula scratch;
    std::vector<Var> inputVars;
    std::vector<Lit> ioUnits;
    for (int i = 0; i < faulty.numInputs(); ++i) {
      const Var v = scratch.newVar();
      inputVars.push_back(v);
      ioUnits.push_back(Lit(v, !vectors[t][static_cast<std::size_t>(i)]));
    }
    const int gateClauseStart = scratch.numClauses();
    const std::vector<Var> gv = tseitinEncodeInto(faulty, scratch, inputVars);
    const int gateClauseEnd = scratch.numClauses();
    for (std::size_t o = 0; o < faulty.outputs().size(); ++o) {
      const Var ov = gv[static_cast<std::size_t>(faulty.outputs()[o])];
      ioUnits.push_back(Lit(ov, !correctOutputs[t][o]));
    }

    // Import the scratch clauses with a variable offset.
    const int offset = wcnf.numVars();
    wcnf.ensureVars(offset + scratch.numVars());
    auto shift = [offset](const Clause& c) {
      Clause out;
      out.reserve(c.size());
      for (Lit p : c) out.push_back(Lit(p.var() + offset, p.negative()));
      return out;
    };
    for (int ci = gateClauseStart; ci < gateClauseEnd; ++ci) {
      wcnf.addSoft(shift(scratch.clause(ci)), 1);
    }
    for (Lit u : ioUnits) {
      const Clause unit{Lit(u.var() + offset, u.negative())};
      if (partial) {
        wcnf.addHard(unit);
      } else {
        wcnf.addSoft(unit, 1);
      }
    }
  }
  return inst;
}

}  // namespace msu
