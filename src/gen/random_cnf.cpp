#include "gen/random_cnf.h"

#include <algorithm>
#include <random>

namespace msu {

CnfFormula randomKSat(const RandomCnfParams& params) {
  CnfFormula cnf(params.numVars);
  std::mt19937_64 rng(params.seed);
  std::uniform_int_distribution<Var> pickVar(0, params.numVars - 1);
  Clause c;
  for (int i = 0; i < params.numClauses; ++i) {
    c.clear();
    // Draw distinct variables.
    while (static_cast<int>(c.size()) < params.clauseLen) {
      const Var v = pickVar(rng);
      bool dup = false;
      for (Lit p : c) {
        if (p.var() == v) {
          dup = true;
          break;
        }
      }
      if (dup) continue;
      c.push_back(Lit(v, (rng() & 1) != 0));
    }
    cnf.addClause(Clause(c));
  }
  return cnf;
}

CnfFormula randomUnsat3Sat(int numVars, double ratio, std::uint64_t seed) {
  RandomCnfParams p;
  p.numVars = numVars;
  p.numClauses = static_cast<int>(static_cast<double>(numVars) * ratio);
  p.clauseLen = 3;
  p.seed = seed;
  return randomKSat(p);
}

}  // namespace msu
