/// \file arith.h
/// \brief Deterministic arithmetic circuits — the classic equivalence-
///        checking workloads. Two structurally different adder
///        architectures (ripple-carry and Kogge–Stone parallel-prefix)
///        compute the same function, so their miter is UNSAT and
///        refuting it requires genuine reasoning; multiplier
///        commutativity miters are the famously hard end of the family.

#pragma once

#include "gen/circuit.h"

namespace msu {

/// n-bit ripple-carry adder. Inputs: a[0..n) then b[0..n) (LSB first).
/// Outputs: sum[0..n) then carry-out.
[[nodiscard]] Circuit rippleCarryAdder(int bits);

/// n-bit Kogge–Stone (parallel-prefix) adder. Same interface as
/// rippleCarryAdder; radically different structure (log-depth prefix
/// tree of generate/propagate pairs).
[[nodiscard]] Circuit koggeStoneAdder(int bits);

/// n x n array multiplier. Inputs: a[0..n) then b[0..n). Outputs the
/// 2n-bit product (LSB first).
[[nodiscard]] Circuit arrayMultiplier(int bits);

/// Miter of the two adder architectures (UNSAT: they are equivalent).
[[nodiscard]] CnfFormula adderEquivalenceMiter(int bits);

/// Miter asserting a*b != b*a for the array multiplier (UNSAT:
/// multiplication commutes) — the classic hard equivalence instance.
/// Feasible sizes for second-scale budgets: 3-5 bits.
[[nodiscard]] CnfFormula multiplierCommutativityMiter(int bits);

}  // namespace msu
