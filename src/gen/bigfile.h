/// \file bigfile.h
/// \brief Synthetic huge-instance *text* generators for the parse
///        pipeline benches: they emit DIMACS CNF, (old-style) WCNF and
///        OPB documents of a requested byte size directly as strings,
///        without building a formula object first. Generation must be
///        much faster than parsing so bench_parse measures the parser,
///        not the generator — clause text is written with to_chars into
///        one preallocated buffer, no iostreams.
///
/// The instances are 3-SAT-style random clauses over a fixed variable
/// universe; they are *parser workloads*, not interesting search
/// instances (the pipeline bench only runs the first propagation).
/// Generation is deterministic in the seed, so the old/new parser A/B
/// sides of a bench record see byte-identical input.

#pragma once

#include <cstdint>
#include <string>

namespace msu {

/// Parameters of a generated instance text.
struct BigFileParams {
  /// Approximate size of the emitted document in bytes; generation
  /// stops at the first clause boundary past the target.
  std::int64_t target_bytes = 16ll << 20;

  /// Variable universe (literals are drawn uniformly from it).
  int vars = 200000;

  /// Literals per clause.
  int clause_len = 3;

  /// RNG seed (xorshift64); same seed, same document.
  std::uint64_t seed = 1;

  /// WCNF only: soft-clause weights are drawn from [1, max_weight].
  std::int64_t max_weight = 9;

  /// WCNF only: roughly this fraction of clauses is emitted hard
  /// (weight == top).
  double hard_fraction = 0.3;
};

/// DIMACS CNF document of ~target_bytes (`p cnf` header + clauses).
[[nodiscard]] std::string makeBigCnfText(const BigFileParams& p);

/// Old-style DIMACS WCNF document (`p wcnf <v> <c> <top>`; a clause of
/// weight top is hard).
[[nodiscard]] std::string makeBigWcnfText(const BigFileParams& p);

/// OPB document: a `min:` objective over the first variables plus
/// clausal `>=` constraints (the canonical CNF-as-PB encoding).
[[nodiscard]] std::string makeBigOpbText(const BigFileParams& p);

}  // namespace msu
