/// \file bmc.h
/// \brief Bounded model checking unrollings — the paper's model-checking
///        instance class. A parameterized sequential design (an n-bit
///        counter with an enable input) is unrolled for k steps with a
///        safety property that holds, yielding unsatisfiable CNF whose
///        refutation requires arithmetic reasoning across the unrolling.

#pragma once

#include <cstdint>

#include "cnf/formula.h"

namespace msu {

/// Parameters of a BMC counter instance.
struct BmcCounterParams {
  int bits = 6;    ///< register width
  int steps = 10;  ///< unrolling depth k
};

/// Builds the BMC instance: an n-bit register starts at 0 and each step
/// adds the (free) enable input bit. After k steps the value is at most
/// k; asserting `value == k+1` at the final step is therefore
/// unsatisfiable (requires k+1 < 2^bits, checked by assertion).
[[nodiscard]] CnfFormula bmcCounterInstance(const BmcCounterParams& params);

}  // namespace msu
