/// \file random_cnf.h
/// \brief Random CNF instance generators: uniform k-SAT (used
///        over-constrained to obtain unsatisfiable MaxSAT instances, the
///        classic B&B-friendly workload) and helpers.

#pragma once

#include <cstdint>

#include "cnf/formula.h"

namespace msu {

/// Parameters of a uniform random k-SAT instance.
struct RandomCnfParams {
  int numVars = 50;
  int numClauses = 300;
  int clauseLen = 3;
  std::uint64_t seed = 1;
};

/// Generates a uniform random k-SAT formula: each clause draws
/// `clauseLen` distinct variables and random polarities. Tautologies and
/// duplicate clauses are permitted (as in the standard model).
[[nodiscard]] CnfFormula randomKSat(const RandomCnfParams& params);

/// Generates an over-constrained random 3-SAT instance (clause/variable
/// ratio about `ratio`, default well above the phase transition so the
/// instance is almost surely unsatisfiable).
[[nodiscard]] CnfFormula randomUnsat3Sat(int numVars, double ratio,
                                         std::uint64_t seed);

}  // namespace msu
