/// \file tpg.h
/// \brief Test-pattern-generation (TPG) instances — the third EDA
///        instance class the paper's suite draws from. A stuck-at fault
///        is injected into a circuit and the TPG miter asks for an input
///        vector that distinguishes faulty from fault-free behaviour.
///        For *untestable* (redundant) faults — here: faults on logic
///        outside every output cone — the miter is unsatisfiable, which
///        is exactly the hard UNSAT class ATPG tools hand to SAT solvers.

#pragma once

#include <cstdint>
#include <optional>

#include "cnf/formula.h"
#include "gen/circuit.h"

namespace msu {

/// A stuck-at fault site.
struct StuckAtFault {
  int gate = -1;     ///< faulted gate id
  bool stuckAt = false;  ///< forced value
};

/// Builds the TPG miter for `fault` in `circuit`: fault-free and faulty
/// copies share inputs; some output must differ. Satisfiable iff the
/// fault is testable.
[[nodiscard]] CnfFormula buildTpgMiter(const Circuit& circuit,
                                       const StuckAtFault& fault);

/// Gates with no path to any primary output (trivially untestable
/// sites), in increasing id order.
[[nodiscard]] std::vector<int> deadGates(const Circuit& circuit);

/// A circuit with a deliberately *redundant* fault site: one output `o`
/// is rewritten as `OR(o, AND(o, g))` (absorption), so stuck-at-0 on the
/// inserted AND gate never changes any output — untestable, and proving
/// it requires reasoning through the shared logic cone (unlike a fault
/// on dead logic, which is structurally trivial).
struct RedundantFaultCircuit {
  Circuit circuit;
  StuckAtFault untestable;  ///< stuck-at-0 on the absorption AND
  StuckAtFault testable;    ///< stuck-at-1 on the same gate (usually SAT)
};

/// Builds the absorption-redundancy construction on a random circuit.
[[nodiscard]] RedundantFaultCircuit redundantFaultCircuit(
    const RandomCircuitParams& params, std::uint64_t spliceSeed);

/// Generates an *unsatisfiable* TPG instance: the miter of the
/// redundant (untestable) fault.
[[nodiscard]] CnfFormula untestableFaultInstance(
    const RandomCircuitParams& params, std::uint64_t faultSeed);

}  // namespace msu
