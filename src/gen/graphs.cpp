#include "gen/graphs.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <random>
#include <set>

namespace msu {

Graph randomGraph(int numVertices, double edgeProbability,
                  std::uint64_t seed) {
  assert(numVertices >= 0);
  std::mt19937_64 rng(seed);
  std::bernoulli_distribution coin(edgeProbability);
  Graph g;
  g.numVertices = numVertices;
  for (int u = 0; u < numVertices; ++u) {
    for (int v = u + 1; v < numVertices; ++v) {
      if (coin(rng)) g.edges.emplace_back(u, v);
    }
  }
  return g;
}

Graph ringWithChords(int numVertices, int extraChords, std::uint64_t seed) {
  assert(numVertices >= 3);
  std::mt19937_64 rng(seed);
  Graph g;
  g.numVertices = numVertices;
  std::set<std::pair<int, int>> seen;
  for (int v = 0; v < numVertices; ++v) {
    const int u = (v + 1) % numVertices;
    const auto e = std::minmax(u, v);
    g.edges.emplace_back(e.first, e.second);
    seen.insert(e);
  }
  int attempts = 8 * extraChords + 32;
  while (extraChords > 0 && attempts-- > 0) {
    const int u =
        static_cast<int>(rng() % static_cast<std::uint64_t>(numVertices));
    const int v =
        static_cast<int>(rng() % static_cast<std::uint64_t>(numVertices));
    if (u == v) continue;
    const auto e = std::minmax(u, v);
    if (!seen.insert(e).second) continue;
    g.edges.emplace_back(e.first, e.second);
    --extraChords;
  }
  return g;
}

WcnfFormula coloringInstance(const Graph& g, int k) {
  assert(k >= 1);
  WcnfFormula w(g.numVertices * k);
  const auto var = [k](int v, int c) { return static_cast<Var>(v * k + c); };
  for (int v = 0; v < g.numVertices; ++v) {
    // Hard: at least one color ...
    Clause atLeast;
    for (int c = 0; c < k; ++c) atLeast.push_back(posLit(var(v, c)));
    w.addHard(atLeast);
    // ... and at most one (pairwise; k is small in practice).
    for (int c1 = 0; c1 < k; ++c1) {
      for (int c2 = c1 + 1; c2 < k; ++c2) {
        w.addHard({negLit(var(v, c1)), negLit(var(v, c2))});
      }
    }
  }
  // Soft: one clause (¬u_c ∨ ¬v_c) per edge and color. A monochromatic
  // edge falsifies exactly the clause of its shared color (the at-most-
  // one constraint satisfies the others), so cost == #monochromatic
  // edges.
  for (const auto& [u, v] : g.edges) {
    for (int c = 0; c < k; ++c) {
      w.addSoft({negLit(var(u, c)), negLit(var(v, c))}, 1);
    }
  }
  return w;
}

WcnfFormula maxCutInstance(const Graph& g, const std::vector<Weight>& weights) {
  assert(weights.empty() || weights.size() == g.edges.size());
  WcnfFormula w(g.numVertices);
  for (std::size_t i = 0; i < g.edges.size(); ++i) {
    const auto [u, v] = g.edges[i];
    const Weight wt = weights.empty() ? 1 : weights[i];
    w.addSoft({posLit(static_cast<Var>(u)), posLit(static_cast<Var>(v))}, wt);
    w.addSoft({negLit(static_cast<Var>(u)), negLit(static_cast<Var>(v))}, wt);
  }
  return w;
}

WcnfFormula vertexCoverInstance(const Graph& g) {
  WcnfFormula w(g.numVertices);
  for (const auto& [u, v] : g.edges) {
    w.addHard({posLit(static_cast<Var>(u)), posLit(static_cast<Var>(v))});
  }
  for (int v = 0; v < g.numVertices; ++v) {
    w.addSoft({negLit(static_cast<Var>(v))}, 1);
  }
  return w;
}

WcnfFormula timetablingInstance(const TimetableParams& params) {
  assert(params.numSlots >= 1 && params.numEvents >= 1);
  std::mt19937_64 rng(params.seed);
  const int e = params.numEvents;
  const int s = params.numSlots;
  WcnfFormula w(e * s);
  const auto var = [s](int event, int slot) {
    return static_cast<Var>(event * s + slot);
  };
  for (int ev = 0; ev < e; ++ev) {
    Clause atLeast;
    for (int slot = 0; slot < s; ++slot) {
      atLeast.push_back(posLit(var(ev, slot)));
    }
    w.addHard(atLeast);
    for (int s1 = 0; s1 < s; ++s1) {
      for (int s2 = s1 + 1; s2 < s; ++s2) {
        w.addHard({negLit(var(ev, s1)), negLit(var(ev, s2))});
      }
    }
  }
  std::bernoulli_distribution clash(params.conflictProbability);
  for (int e1 = 0; e1 < e; ++e1) {
    for (int e2 = e1 + 1; e2 < e; ++e2) {
      if (!clash(rng)) continue;
      for (int slot = 0; slot < s; ++slot) {
        w.addHard({negLit(var(e1, slot)), negLit(var(e2, slot))});
      }
    }
  }
  for (int ev = 0; ev < e; ++ev) {
    for (int p = 0; p < params.preferencesPerEvent; ++p) {
      const int slot = static_cast<int>(rng() % static_cast<std::uint64_t>(s));
      const Weight weight =
          1 + static_cast<Weight>(
                  rng() %
                      static_cast<std::uint64_t>(params.maxPreferenceWeight));
      w.addSoft({posLit(var(ev, slot))}, weight);
    }
  }
  return w;
}

int chromaticPenaltyBruteForce(const Graph& g, int k) {
  assert(g.numVertices <= 16);
  std::vector<int> color(static_cast<std::size_t>(g.numVertices), 0);
  int best = static_cast<int>(g.edges.size()) + 1;
  const auto evaluate = [&] {
    int clashes = 0;
    for (const auto& [u, v] : g.edges) {
      if (color[static_cast<std::size_t>(u)] ==
          color[static_cast<std::size_t>(v)]) {
        ++clashes;
      }
    }
    return clashes;
  };
  // Odometer over k^n colorings.
  while (true) {
    best = std::min(best, evaluate());
    int pos = 0;
    while (pos < g.numVertices) {
      if (++color[static_cast<std::size_t>(pos)] < k) break;
      color[static_cast<std::size_t>(pos)] = 0;
      ++pos;
    }
    if (pos == g.numVertices) break;
  }
  return best;
}

Weight maxCutBruteForce(const Graph& g, const std::vector<Weight>& weights) {
  assert(g.numVertices <= 24);
  Weight best = 0;
  for (std::uint32_t mask = 0; mask < (1u << g.numVertices); ++mask) {
    Weight cut = 0;
    for (std::size_t i = 0; i < g.edges.size(); ++i) {
      const auto [u, v] = g.edges[i];
      const bool du = ((mask >> u) & 1u) != 0;
      const bool dv = ((mask >> v) & 1u) != 0;
      if (du != dv) cut += weights.empty() ? 1 : weights[i];
    }
    best = std::max(best, cut);
  }
  return best;
}

int vertexCoverBruteForce(const Graph& g) {
  assert(g.numVertices <= 24);
  int best = g.numVertices;
  for (std::uint32_t mask = 0; mask < (1u << g.numVertices); ++mask) {
    bool covers = true;
    for (const auto& [u, v] : g.edges) {
      if (((mask >> u) & 1u) == 0 && ((mask >> v) & 1u) == 0) {
        covers = false;
        break;
      }
    }
    if (covers) best = std::min(best, std::popcount(mask));
  }
  return best;
}

}  // namespace msu
