/// \file debug.h
/// \brief Design-debugging MaxSAT instances in the style of Safarpour et
///        al. (FMCAD'07), the application motivating the paper: a
///        circuit with an injected gate error is constrained by
///        input/output vectors from the correct design. The constraints
///        are inconsistent, and maximum satisfiability points at the
///        erroneous gate (minimum number of gate clauses to give up).

#pragma once

#include <cstdint>

#include "cnf/wcnf.h"
#include "gen/circuit.h"

namespace msu {

/// Parameters of a design-debugging instance.
struct DebugParams {
  RandomCircuitParams circuit;  ///< the correct design
  int numVectors = 4;           ///< I/O vectors (at least one exposes a bug)
  int numErrors = 1;            ///< injected gate errors (distinct sites)
  std::uint64_t seed = 1;       ///< error-site + vector sampling seed
};

/// A generated design-debugging instance.
struct DebugInstance {
  WcnfFormula wcnf;        ///< hard I/O constraints + soft gate clauses
  int errorGate = -1;      ///< the first injected error site (ground truth)
  std::vector<int> errorGates;  ///< all injected sites
  int mismatchVectors = 0; ///< vectors on which faulty != correct
};

/// Builds a design-debugging instance.
///
/// For each vector, a fresh CNF copy of the *faulty* circuit is
/// constrained (hard) to the correct design's input/output behaviour;
/// the gate-function clauses are soft. With `partial == false` the
/// I/O constraints are soft too (plain MaxSAT, as evaluated in the
/// paper's Table 2).
[[nodiscard]] DebugInstance designDebugInstance(const DebugParams& params,
                                                bool partial = true);

}  // namespace msu
