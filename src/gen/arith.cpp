#include "gen/arith.h"

#include <cassert>

#include "gen/miter.h"

namespace msu {
namespace {

/// Full adder over gate ids: returns (sum, carry).
/// carry = ab | c(a^b) — the standard decomposition, no majority gate.
std::pair<int, int> fullAdder(Circuit& c, int a, int b, int cin) {
  const int axb = c.addGate(GateType::Xor, {a, b});
  const int sum = c.addGate(GateType::Xor, {axb, cin});
  const int ab = c.addGate(GateType::And, {a, b});
  const int caxb = c.addGate(GateType::And, {axb, cin});
  const int carry = c.addGate(GateType::Or, {ab, caxb});
  return {sum, carry};
}

/// Half adder: returns (sum, carry).
std::pair<int, int> halfAdder(Circuit& c, int a, int b) {
  return {c.addGate(GateType::Xor, {a, b}), c.addGate(GateType::And, {a, b})};
}

}  // namespace

Circuit rippleCarryAdder(int bits) {
  assert(bits >= 1);
  Circuit c(2 * bits);
  const auto a = [&](int i) { return i; };
  const auto b = [&](int i) { return bits + i; };

  std::vector<int> sums;
  auto [s0, carry] = halfAdder(c, a(0), b(0));
  sums.push_back(s0);
  for (int i = 1; i < bits; ++i) {
    auto [si, ci] = fullAdder(c, a(i), b(i), carry);
    sums.push_back(si);
    carry = ci;
  }
  for (int s : sums) c.addOutput(s);
  c.addOutput(carry);
  return c;
}

Circuit koggeStoneAdder(int bits) {
  assert(bits >= 1);
  Circuit c(2 * bits);
  const auto a = [&](int i) { return i; };
  const auto b = [&](int i) { return bits + i; };

  // Generate/propagate pairs per bit.
  std::vector<int> g(static_cast<std::size_t>(bits));
  std::vector<int> p(static_cast<std::size_t>(bits));
  for (int i = 0; i < bits; ++i) {
    g[static_cast<std::size_t>(i)] = c.addGate(GateType::And, {a(i), b(i)});
    p[static_cast<std::size_t>(i)] = c.addGate(GateType::Xor, {a(i), b(i)});
  }

  // Parallel-prefix combine: (g,p) o (g',p') = (g | p&g', p&p').
  // For carry computation, AND-propagate suffices (XOR-p only for sums).
  std::vector<int> gp(static_cast<std::size_t>(bits));
  for (int i = 0; i < bits; ++i) {
    gp[static_cast<std::size_t>(i)] = c.addGate(
        GateType::Or, {a(i), b(i)});  // carry-propagate (inclusive)
  }
  std::vector<int> G = g;
  std::vector<int> P = gp;
  for (int dist = 1; dist < bits; dist *= 2) {
    std::vector<int> G2 = G;
    std::vector<int> P2 = P;
    for (int i = dist; i < bits; ++i) {
      const auto iu = static_cast<std::size_t>(i);
      const auto ju = static_cast<std::size_t>(i - dist);
      const int pg = c.addGate(GateType::And, {P[iu], G[ju]});
      G2[iu] = c.addGate(GateType::Or, {G[iu], pg});
      P2[iu] = c.addGate(GateType::And, {P[iu], P[ju]});
    }
    G = std::move(G2);
    P = std::move(P2);
  }

  // sum_0 = p_0; sum_i = p_i XOR carry_i where carry_i = G_{i-1}.
  c.addOutput(p[0]);
  for (int i = 1; i < bits; ++i) {
    c.addOutput(c.addGate(
        GateType::Xor,
        {p[static_cast<std::size_t>(i)], G[static_cast<std::size_t>(i - 1)]}));
  }
  c.addOutput(G[static_cast<std::size_t>(bits - 1)]);  // carry out
  return c;
}

Circuit arrayMultiplier(int bits) {
  assert(bits >= 1);
  Circuit c(2 * bits);
  const auto a = [&](int i) { return i; };
  const auto b = [&](int i) { return bits + i; };

  // Partial products bucketed by output bit, then column compression
  // with half/full adders (carries ripple into the next column).
  std::vector<std::vector<int>> columns(static_cast<std::size_t>(2 * bits));
  for (int i = 0; i < bits; ++i) {
    for (int j = 0; j < bits; ++j) {
      columns[static_cast<std::size_t>(i + j)].push_back(
          c.addGate(GateType::And, {a(i), b(j)}));
    }
  }
  for (std::size_t col = 0; col < columns.size(); ++col) {
    while (columns[col].size() >= 3) {
      const int x = columns[col][columns[col].size() - 1];
      const int y = columns[col][columns[col].size() - 2];
      const int z = columns[col][columns[col].size() - 3];
      columns[col].resize(columns[col].size() - 3);
      const auto [sum, carry] = fullAdder(c, x, y, z);
      columns[col].push_back(sum);
      if (col + 1 < columns.size()) {
        columns[col + 1].push_back(carry);
      }
    }
    if (columns[col].size() == 2) {
      const int x = columns[col][0];
      const int y = columns[col][1];
      columns[col].clear();
      const auto [sum, carry] = halfAdder(c, x, y);
      columns[col].push_back(sum);
      if (col + 1 < columns.size()) {
        columns[col + 1].push_back(carry);
      }
    }
    if (columns[col].empty()) {
      // Top column can be empty when no carry reaches it: emit constant 0
      // as x AND ~x of input 0.
      const int notA0 = c.addGate(GateType::Not, {0});
      columns[col].push_back(c.addGate(GateType::And, {0, notA0}));
    }
    c.addOutput(columns[col][0]);
  }
  return c;
}

CnfFormula adderEquivalenceMiter(int bits) {
  return buildMiter(rippleCarryAdder(bits), koggeStoneAdder(bits));
}

CnfFormula multiplierCommutativityMiter(int bits) {
  // b*a is the same circuit with the input halves swapped: express it as
  // the original multiplier preceded by BUF gates crossing the inputs.
  const Circuit mul = arrayMultiplier(bits);
  Circuit swapped(2 * bits);
  std::vector<int> remap(static_cast<std::size_t>(mul.numGates()), -1);
  for (int i = 0; i < bits; ++i) {
    remap[static_cast<std::size_t>(i)] = bits + i;         // a_i <- b_i
    remap[static_cast<std::size_t>(bits + i)] = i;         // b_i <- a_i
  }
  for (int gid = mul.numInputs(); gid < mul.numGates(); ++gid) {
    const Gate& gate = mul.gate(gid);
    std::vector<int> ins;
    for (int f : gate.fanin) ins.push_back(remap[static_cast<std::size_t>(f)]);
    remap[static_cast<std::size_t>(gid)] =
        swapped.addGate(gate.type, std::move(ins));
  }
  std::vector<int> outs;
  for (int o : mul.outputs()) {
    outs.push_back(remap[static_cast<std::size_t>(o)]);
  }
  swapped.setOutputs(std::move(outs));
  return buildMiter(mul, swapped);
}

}  // namespace msu
