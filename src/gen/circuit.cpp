#include "gen/circuit.h"

#include <cassert>
#include <random>

namespace msu {

const char* toString(GateType t) {
  switch (t) {
    case GateType::Input:
      return "INPUT";
    case GateType::And:
      return "AND";
    case GateType::Or:
      return "OR";
    case GateType::Xor:
      return "XOR";
    case GateType::Nand:
      return "NAND";
    case GateType::Nor:
      return "NOR";
    case GateType::Not:
      return "NOT";
    case GateType::Buf:
      return "BUF";
  }
  return "?";
}

Circuit::Circuit(int numInputs) : num_inputs_(numInputs) {
  gates_.resize(static_cast<std::size_t>(numInputs));
}

int Circuit::addGate(GateType type, std::vector<int> fanin) {
  assert(type != GateType::Input);
  const int id = numGates();
  for ([[maybe_unused]] int f : fanin) assert(f >= 0 && f < id);
  assert(!fanin.empty());
  if (type == GateType::Not || type == GateType::Buf) {
    assert(fanin.size() == 1);
  }
  gates_.push_back(Gate{type, std::move(fanin)});
  return id;
}

std::vector<bool> Circuit::simulate(const std::vector<bool>& inputs) const {
  assert(static_cast<int>(inputs.size()) == num_inputs_);
  std::vector<bool> value(gates_.size(), false);
  for (int i = 0; i < num_inputs_; ++i) {
    value[static_cast<std::size_t>(i)] = inputs[static_cast<std::size_t>(i)];
  }
  for (std::size_t g = static_cast<std::size_t>(num_inputs_);
       g < gates_.size(); ++g) {
    const Gate& gate = gates_[g];
    bool v = false;
    switch (gate.type) {
      case GateType::Input:
        break;
      case GateType::And:
      case GateType::Nand: {
        v = true;
        for (int f : gate.fanin) v = v && value[static_cast<std::size_t>(f)];
        if (gate.type == GateType::Nand) v = !v;
        break;
      }
      case GateType::Or:
      case GateType::Nor: {
        v = false;
        for (int f : gate.fanin) v = v || value[static_cast<std::size_t>(f)];
        if (gate.type == GateType::Nor) v = !v;
        break;
      }
      case GateType::Xor: {
        v = false;
        for (int f : gate.fanin) v = v != value[static_cast<std::size_t>(f)];
        break;
      }
      case GateType::Not:
        v = !value[static_cast<std::size_t>(gate.fanin[0])];
        break;
      case GateType::Buf:
        v = value[static_cast<std::size_t>(gate.fanin[0])];
        break;
    }
    value[g] = v;
  }
  return value;
}

std::vector<bool> Circuit::evaluate(const std::vector<bool>& inputs) const {
  const std::vector<bool> value = simulate(inputs);
  std::vector<bool> out;
  out.reserve(outputs_.size());
  for (int o : outputs_) out.push_back(value[static_cast<std::size_t>(o)]);
  return out;
}

Circuit randomCircuit(const RandomCircuitParams& params) {
  Circuit c(params.numInputs);
  std::mt19937_64 rng(params.seed);
  const GateType kinds[] = {GateType::And, GateType::Or,   GateType::Xor,
                            GateType::Nand, GateType::Nor, GateType::Not};
  for (int g = 0; g < params.numGates; ++g) {
    const GateType t = kinds[rng() % std::size(kinds)];
    const int avail = c.numGates();
    int fanin = 2;
    if (t == GateType::Not) {
      fanin = 1;
    } else if (t != GateType::Xor && params.maxFanin > 2) {
      fanin = 2 + static_cast<int>(rng() % static_cast<std::uint64_t>(
                                             params.maxFanin - 1));
    }
    std::vector<int> ins;
    for (int i = 0; i < fanin; ++i) {
      // Bias toward recent gates: choose from the last half when possible.
      const int lo = (rng() % 4 != 0 && avail > 2) ? avail / 2 : 0;
      const int pick =
          lo + static_cast<int>(rng() % static_cast<std::uint64_t>(avail - lo));
      ins.push_back(pick);
    }
    c.addGate(t, std::move(ins));
  }
  // Outputs: the last few gates (most downstream logic).
  std::vector<int> outs;
  for (int i = 0; i < params.numOutputs; ++i) {
    outs.push_back(c.numGates() - 1 - i);
  }
  c.setOutputs(std::move(outs));
  return c;
}

namespace {

/// Emits the Tseitin clauses of one gate given fanin/output variables.
void encodeGate(CnfFormula& cnf, const Gate& gate, Var out,
                const std::vector<Var>& faninVars) {
  const Lit g = posLit(out);
  switch (gate.type) {
    case GateType::Input:
      return;
    case GateType::And:
    case GateType::Nand: {
      const Lit o = gate.type == GateType::And ? g : ~g;
      // o <-> AND(fanins)
      Clause all;
      for (Var f : faninVars) {
        cnf.addClause({~o, posLit(f)});
        all.push_back(negLit(f));
      }
      all.push_back(o);
      cnf.addClause(std::move(all));
      return;
    }
    case GateType::Or:
    case GateType::Nor: {
      const Lit o = gate.type == GateType::Or ? g : ~g;
      // o <-> OR(fanins)
      Clause all;
      for (Var f : faninVars) {
        cnf.addClause({o, negLit(f)});
        all.push_back(posLit(f));
      }
      all.push_back(~o);
      cnf.addClause(std::move(all));
      return;
    }
    case GateType::Xor: {
      assert(faninVars.size() == 2);
      const Lit a = posLit(faninVars[0]);
      const Lit b = posLit(faninVars[1]);
      cnf.addClause({~g, a, b});
      cnf.addClause({~g, ~a, ~b});
      cnf.addClause({g, ~a, b});
      cnf.addClause({g, a, ~b});
      return;
    }
    case GateType::Not: {
      const Lit a = posLit(faninVars[0]);
      cnf.addClause({~g, ~a});
      cnf.addClause({g, a});
      return;
    }
    case GateType::Buf: {
      const Lit a = posLit(faninVars[0]);
      cnf.addClause({~g, a});
      cnf.addClause({g, ~a});
      return;
    }
  }
}

}  // namespace

std::vector<Var> tseitinEncodeInto(const Circuit& circuit, CnfFormula& cnf,
                                   const std::vector<Var>& inputVars) {
  assert(static_cast<int>(inputVars.size()) == circuit.numInputs());
  std::vector<Var> gateVar(static_cast<std::size_t>(circuit.numGates()),
                           kUndefVar);
  for (int i = 0; i < circuit.numInputs(); ++i) {
    gateVar[static_cast<std::size_t>(i)] =
        inputVars[static_cast<std::size_t>(i)];
  }
  std::vector<Var> fanin;
  for (int g = circuit.numInputs(); g < circuit.numGates(); ++g) {
    const Gate& gate = circuit.gate(g);
    const Var out = cnf.newVar();
    gateVar[static_cast<std::size_t>(g)] = out;
    fanin.clear();
    for (int f : gate.fanin) {
      fanin.push_back(gateVar[static_cast<std::size_t>(f)]);
    }
    encodeGate(cnf, gate, out, fanin);
  }
  return gateVar;
}

TseitinResult tseitinEncode(const Circuit& circuit) {
  TseitinResult result;
  std::vector<Var> inputVars;
  inputVars.reserve(static_cast<std::size_t>(circuit.numInputs()));
  for (int i = 0; i < circuit.numInputs(); ++i) {
    inputVars.push_back(result.cnf.newVar());
  }
  result.gateVar = tseitinEncodeInto(circuit, result.cnf, inputVars);
  return result;
}

Circuit rewriteCircuit(const Circuit& circuit, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  Circuit out(circuit.numInputs());
  // old gate id -> new gate id computing the same function.
  std::vector<int> remap(static_cast<std::size_t>(circuit.numGates()), -1);
  for (int i = 0; i < circuit.numInputs(); ++i) {
    remap[static_cast<std::size_t>(i)] = i;
  }
  for (int g = circuit.numInputs(); g < circuit.numGates(); ++g) {
    const Gate& gate = circuit.gate(g);
    std::vector<int> ins;
    ins.reserve(gate.fanin.size());
    for (int f : gate.fanin) ins.push_back(remap[static_cast<std::size_t>(f)]);
    // Occasionally permute fanins (harmless for symmetric gates).
    if (ins.size() >= 2 && rng() % 2 == 0) std::swap(ins[0], ins[1]);

    int id;
    const bool demorgan = rng() % 3 == 0;
    if (demorgan && gate.type == GateType::And) {
      // AND(a,b,..) == NOT(OR(NOT a, NOT b, ..))
      std::vector<int> negs;
      for (int f : ins) negs.push_back(out.addGate(GateType::Not, {f}));
      id = out.addGate(GateType::Not,
                       {out.addGate(GateType::Or, std::move(negs))});
    } else if (demorgan && gate.type == GateType::Or) {
      std::vector<int> negs;
      for (int f : ins) negs.push_back(out.addGate(GateType::Not, {f}));
      id = out.addGate(GateType::Not,
                       {out.addGate(GateType::And, std::move(negs))});
    } else if (demorgan && gate.type == GateType::Nand) {
      std::vector<int> negs;
      for (int f : ins) negs.push_back(out.addGate(GateType::Not, {f}));
      id = out.addGate(GateType::Or, std::move(negs));
    } else if (demorgan && gate.type == GateType::Nor) {
      std::vector<int> negs;
      for (int f : ins) negs.push_back(out.addGate(GateType::Not, {f}));
      id = out.addGate(GateType::And, std::move(negs));
    } else {
      id = out.addGate(gate.type, std::move(ins));
    }
    // Occasionally insert a double negation on the result.
    if (rng() % 5 == 0) {
      id = out.addGate(GateType::Not, {out.addGate(GateType::Not, {id})});
    }
    remap[static_cast<std::size_t>(g)] = id;
  }
  std::vector<int> outs;
  for (int o : circuit.outputs()) {
    outs.push_back(remap[static_cast<std::size_t>(o)]);
  }
  out.setOutputs(std::move(outs));
  return out;
}

std::vector<int> appendCircuit(Circuit& base, const Circuit& other) {
  assert(base.numInputs() == other.numInputs());
  std::vector<int> remap(static_cast<std::size_t>(other.numGates()), -1);
  for (int i = 0; i < other.numInputs(); ++i) {
    remap[static_cast<std::size_t>(i)] = i;
  }
  for (int g = other.numInputs(); g < other.numGates(); ++g) {
    const Gate& gate = other.gate(g);
    std::vector<int> ins;
    ins.reserve(gate.fanin.size());
    for (int f : gate.fanin) ins.push_back(remap[static_cast<std::size_t>(f)]);
    remap[static_cast<std::size_t>(g)] =
        base.addGate(gate.type, std::move(ins));
  }
  return remap;
}

Circuit injectGateError(const Circuit& circuit, int gateId) {
  assert(gateId >= circuit.numInputs() && gateId < circuit.numGates());
  // Rebuild with the chosen gate's type flipped to a different function.
  Circuit fresh(circuit.numInputs());
  for (int g = circuit.numInputs(); g < circuit.numGates(); ++g) {
    Gate gate = circuit.gate(g);
    if (g == gateId) {
      switch (gate.type) {
        case GateType::And:
          gate.type = GateType::Or;
          break;
        case GateType::Or:
          gate.type = GateType::And;
          break;
        case GateType::Xor:
          gate.type = GateType::Or;
          break;
        case GateType::Nand:
          gate.type = GateType::Nor;
          break;
        case GateType::Nor:
          gate.type = GateType::Nand;
          break;
        case GateType::Not:
          gate.type = GateType::Buf;
          break;
        case GateType::Buf:
          gate.type = GateType::Not;
          break;
        case GateType::Input:
          break;
      }
    }
    fresh.addGate(gate.type, gate.fanin);
  }
  fresh.setOutputs(circuit.outputs());
  return fresh;
}

}  // namespace msu
