/// \file circuit.h
/// \brief Combinational circuits: representation, random generation,
///        simulation, semantics-preserving rewriting and Tseitin CNF
///        encoding. These are the building blocks for the EDA-style
///        instance families (equivalence-checking miters, BMC
///        unrollings, design-debugging instances) that substitute for
///        the paper's proprietary industrial suite.

#pragma once

#include <cstdint>
#include <vector>

#include "cnf/formula.h"

namespace msu {

/// Gate kinds. `Input` gates have no fanin.
enum class GateType : std::uint8_t {
  Input,
  And,
  Or,
  Xor,
  Nand,
  Nor,
  Not,
  Buf,
};

/// Short name ("AND", ...).
[[nodiscard]] const char* toString(GateType t);

/// A gate: a type plus fanin gate ids (indices into Circuit::gates).
struct Gate {
  GateType type = GateType::Input;
  std::vector<int> fanin;
};

/// A combinational circuit as a topologically ordered gate list: gate
/// `i` only references gates `< i`; the first `numInputs` gates are the
/// primary inputs.
class Circuit {
 public:
  Circuit() = default;

  /// Creates a circuit with `numInputs` primary inputs.
  explicit Circuit(int numInputs);

  [[nodiscard]] int numInputs() const { return num_inputs_; }
  [[nodiscard]] int numGates() const { return static_cast<int>(gates_.size()); }
  [[nodiscard]] const std::vector<Gate>& gates() const { return gates_; }
  [[nodiscard]] const Gate& gate(int i) const {
    return gates_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] const std::vector<int>& outputs() const { return outputs_; }

  /// Appends a gate; fanins must reference existing gates. Returns id.
  int addGate(GateType type, std::vector<int> fanin);

  /// Marks gate `id` as a primary output.
  void addOutput(int id) { outputs_.push_back(id); }

  /// Replaces the output list.
  void setOutputs(std::vector<int> outs) { outputs_ = std::move(outs); }

  /// Simulates the circuit: returns the value of every gate.
  [[nodiscard]] std::vector<bool> simulate(
      const std::vector<bool>& inputs) const;

  /// Simulates and returns only the primary output values.
  [[nodiscard]] std::vector<bool> evaluate(
      const std::vector<bool>& inputs) const;

 private:
  int num_inputs_ = 0;
  std::vector<Gate> gates_;
  std::vector<int> outputs_;
};

/// Parameters of the random circuit generator.
struct RandomCircuitParams {
  int numInputs = 8;
  int numGates = 60;     ///< internal gates (excluding inputs)
  int numOutputs = 2;
  int maxFanin = 3;      ///< for AND/OR/NAND/NOR gates
  std::uint64_t seed = 1;
};

/// Generates a random combinational DAG with mixed gate types; fanins
/// are biased toward recent gates so depth grows realistically.
[[nodiscard]] Circuit randomCircuit(const RandomCircuitParams& params);

/// Result of a Tseitin encoding: the CNF plus the variable of each gate.
struct TseitinResult {
  CnfFormula cnf;
  std::vector<Var> gateVar;  ///< gate id -> CNF variable
};

/// Tseitin-encodes the circuit into CNF (fresh variables starting at 0).
/// No output constraint is added; callers assert output literals.
[[nodiscard]] TseitinResult tseitinEncode(const Circuit& circuit);

/// Tseitin-encodes into an existing formula, mapping circuit inputs to
/// the given variables (enables sharing inputs across circuit copies).
[[nodiscard]] std::vector<Var> tseitinEncodeInto(const Circuit& circuit,
                                                 CnfFormula& cnf,
                                                 const std::vector<Var>&
                                                     inputVars);

/// Semantics-preserving rewrite: applies De Morgan transformations and
/// double-negation insertions driven by `seed`, yielding a structurally
/// different but functionally identical circuit (the "optimized design"
/// side of an equivalence-checking miter).
[[nodiscard]] Circuit rewriteCircuit(const Circuit& circuit,
                                     std::uint64_t seed);

/// Error injection for design debugging: returns a copy with one gate's
/// type replaced (e.g. AND -> OR). `gateId` must be an internal gate.
[[nodiscard]] Circuit injectGateError(const Circuit& circuit, int gateId);

/// Appends `other`'s internal gates to `base` (the two must have the
/// same number of inputs, which are shared). Returns the mapping from
/// `other` gate ids to `base` gate ids. `base`'s outputs are untouched.
std::vector<int> appendCircuit(Circuit& base, const Circuit& other);

}  // namespace msu
