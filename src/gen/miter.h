/// \file miter.h
/// \brief Equivalence-checking miters: CNF instances asserting that two
///        circuits differ on some input — unsatisfiable exactly when the
///        circuits are equivalent. Paired with `rewriteCircuit` this
///        produces the paper's equivalence-checking instance class.

#pragma once

#include <cstdint>

#include "cnf/formula.h"
#include "gen/circuit.h"

namespace msu {

/// Builds the miter CNF of two circuits with identical interfaces:
/// shared inputs, XOR per output pair, and a final clause asserting some
/// XOR is 1. UNSAT iff the circuits are equivalent.
[[nodiscard]] CnfFormula buildMiter(const Circuit& left,
                                    const Circuit& right);

/// Convenience: a complete equivalence-checking instance — a random
/// circuit mitered against a semantics-preserving rewrite of itself.
/// Always unsatisfiable.
[[nodiscard]] CnfFormula equivalenceInstance(const RandomCircuitParams& params,
                                             std::uint64_t rewriteSeed);

}  // namespace msu
