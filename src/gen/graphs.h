/// \file graphs.h
/// \brief Graph-optimization MaxSAT generators: graph coloring, max-cut
///        and minimum vertex cover. The paper's introduction motivates
///        MaxSAT with scheduling and routing workloads; these are their
///        canonical graph kernels (frequency assignment = coloring,
///        register allocation = coloring, layout netlength = max-cut),
///        and they exercise partial *and* weighted MaxSAT paths the EDA
///        generators do not.

#pragma once

#include <cstdint>
#include <vector>

#include "cnf/wcnf.h"

namespace msu {

/// An undirected graph as an edge list over vertices `0..numVertices-1`.
struct Graph {
  int numVertices = 0;
  std::vector<std::pair<int, int>> edges;
};

/// Erdős–Rényi G(n, p) sampler (no self-loops, no duplicate edges).
[[nodiscard]] Graph randomGraph(int numVertices, double edgeProbability,
                                std::uint64_t seed);

/// Random connected "ring + chords" graph: a Hamiltonian cycle plus
/// `extraChords` random chords — structured, guaranteed connected.
[[nodiscard]] Graph ringWithChords(int numVertices, int extraChords,
                                   std::uint64_t seed);

/// Graph k-coloring as partial MaxSAT: hard one-color-per-vertex
/// constraints, one soft clause per edge asking its endpoints to differ.
/// Optimum cost == minimum number of monochromatic edges over all
/// k-colorings (0 iff the graph is k-colorable).
///
/// Variable layout: vertex v, color c -> variable `v*k + c`.
[[nodiscard]] WcnfFormula coloringInstance(const Graph& g, int k);

/// Max-cut as plain MaxSAT: one variable per vertex (side of the cut),
/// two soft clauses per edge `(u ∨ v)`, `(¬u ∨ ¬v)` — an edge inside a
/// part falsifies exactly one of them. With edge weights, both clauses
/// carry the edge's weight. Optimum cost == total weight - max cut.
[[nodiscard]] WcnfFormula maxCutInstance(const Graph& g,
                                         const std::vector<Weight>& weights =
                                             {});

/// Minimum vertex cover as partial MaxSAT: hard edge-coverage clauses
/// `(u ∨ v)`, soft unit clauses `(¬v)` (prefer leaving vertices out).
/// Optimum cost == size of a minimum vertex cover.
[[nodiscard]] WcnfFormula vertexCoverInstance(const Graph& g);

/// Parameters of a timetabling (scheduling) instance.
struct TimetableParams {
  int numEvents = 12;
  int numSlots = 4;
  double conflictProbability = 0.3;  ///< chance two events clash
  int preferencesPerEvent = 2;       ///< soft slot preferences
  Weight maxPreferenceWeight = 5;
  std::uint64_t seed = 1;
};

/// Timetabling as weighted partial MaxSAT (the paper's "scheduling"
/// motivation): every event takes exactly one slot (hard), conflicting
/// events never share a slot (hard), and each event carries weighted
/// soft preferences for specific slots. Optimum cost == minimum total
/// preference weight that must be given up.
///
/// Variable layout: event e, slot s -> variable `e*numSlots + s`.
[[nodiscard]] WcnfFormula timetablingInstance(const TimetableParams& params);

/// Exhaustive minimum number of monochromatic edges over k-colorings
/// (reference for tests; exponential in numVertices).
[[nodiscard]] int chromaticPenaltyBruteForce(const Graph& g, int k);

/// Exhaustive max-cut weight (reference for tests).
[[nodiscard]] Weight maxCutBruteForce(const Graph& g,
                                      const std::vector<Weight>& weights = {});

/// Exhaustive minimum vertex cover size (reference for tests).
[[nodiscard]] int vertexCoverBruteForce(const Graph& g);

}  // namespace msu
